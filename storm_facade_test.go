package storm

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"
)

func TestImportJSONLFacade(t *testing.T) {
	jsonl := `{"lng": 1.0, "lat": 2.0, "v": 10}
{"lng": 3.0, "lat": 4.0, "v": 20}
`
	res, err := ImportJSONL("j", func() (io.Reader, error) { return strings.NewReader(jsonl), nil }, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
	v, _ := res.Dataset.Numeric("v", 1)
	if v != 20 {
		t.Errorf("v = %v", v)
	}
}

func TestImportSQLDumpFacade(t *testing.T) {
	dump := `CREATE TABLE t (lon DOUBLE, lat DOUBLE, name VARCHAR(8));
INSERT INTO t VALUES (1, 2, 'a'), (3, 4, 'b');`
	res, err := ImportSQLDump("t", func() (io.Reader, error) { return strings.NewReader(dump), nil }, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
}

func TestImportKVFacade(t *testing.T) {
	kv := "k1\t{\"lon\": 1, \"lat\": 2}\n"
	res, err := ImportKV("kv", func() (io.Reader, error) { return strings.NewReader(kv), nil }, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Fatalf("rows = %d", res.Rows)
	}
}

func TestDiscoverSchemaFacade(t *testing.T) {
	csv := "lon,lat,v\n1,2,3\n"
	src := csvSource(t, csv)
	schema, err := DiscoverSchema(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if schema.X != "lon" || schema.Y != "lat" {
		t.Errorf("schema roles: %+v", schema)
	}
}

// csvSource adapts a string to a Source through the facade import helper's
// underlying connector type.
func csvSource(t *testing.T, content string) Source {
	t.Helper()
	res, err := ImportCSV("probe", ',', func() (io.Reader, error) { return strings.NewReader(content), nil }, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Rebuild the raw source for discovery (import consumed nothing
	// permanent; opener re-reads).
	return csvRaw{content: content}
}

type csvRaw struct{ content string }

func (c csvRaw) Name() string { return "probe" }
func (c csvRaw) Rows(fn func(map[string]string) error) error {
	lines := strings.Split(strings.TrimSpace(c.content), "\n")
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		row := map[string]string{}
		for i, h := range header {
			if i < len(parts) {
				row[h] = parts[i]
			}
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

func TestStoreFacadeRoundTrip(t *testing.T) {
	store, err := OpenStore(3)
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateOSM(OSMConfig{N: 500, Seed: 9})
	if err := SaveDataset(store, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(store, "osm")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 500 {
		t.Fatalf("len = %d", got.Len())
	}
	// The loaded dataset is registerable and queryable.
	db := Open(Config{Seed: 9})
	h, err := db.Register(got, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := h.Estimate(context.Background(), UniverseRange(), Options{
		Kind: Avg, Attr: "altitude", MaxSamples: 200,
	})
	if err != nil || snap.Samples != 200 {
		t.Fatalf("query over loaded dataset: %+v, %v", snap, err)
	}
	// Single-node store also works (replication clamp).
	if _, err := OpenStore(1); err != nil {
		t.Errorf("single-node store: %v", err)
	}
}

func TestFacadeUpdatePath(t *testing.T) {
	db := Open(Config{Seed: 10})
	ds := GenerateOSM(OSMConfig{N: 2000, Seed: 10})
	h, err := db.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := Range{MinX: 500, MinY: 500, MaxX: 501, MaxY: 501, MinT: 0, MaxT: 1}
	id := h.Insert(Row{Pos: Vec{500.5, 500.5, 0.5}, Num: map[string]float64{"altitude": 42}})
	if h.Count(probe) != 1 {
		t.Fatal("insert not visible")
	}
	if !h.Delete(id) {
		t.Fatal("delete failed")
	}
	n, err := h.DeleteRange(UniverseRange())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("range delete removed %d", n)
	}
	if h.Len() != 0 {
		t.Errorf("len after wipe = %d", h.Len())
	}
}

func TestFacadeQuantiles(t *testing.T) {
	db := Open(Config{Seed: 11})
	ds := GenerateOSM(OSMConfig{N: 20000, Seed: 11})
	h, err := db.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	med, err := h.Estimate(context.Background(), UniverseRange(), Options{
		Kind: Median, Attr: "altitude", MaxSamples: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	p90, err := h.Estimate(context.Background(), UniverseRange(), Options{
		Kind: Quantile, QuantileP: 0.9, Attr: "altitude", MaxSamples: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(med.Value < p90.Value) {
		t.Errorf("median %v should be below p90 %v", med.Value, p90.Value)
	}
	if math.IsNaN(med.Value) || math.IsNaN(p90.Value) {
		t.Error("NaN quantiles")
	}
}

func TestFacadeGroupBy(t *testing.T) {
	db := Open(Config{Seed: 12})
	ds := GenerateStations(StationsConfig{Stations: 5, ReadingsPerStation: 100, Seed: 12})
	h, err := db.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := h.GroupByOnline(context.Background(), UniverseRange(), "temp", "station",
		Options{MaxSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	var last GroupsSnapshot
	for s := range ch {
		last = s
	}
	if len(last.Groups) != 5 {
		t.Errorf("groups = %d", len(last.Groups))
	}
}

func TestFacadeExplain(t *testing.T) {
	db := Open(Config{Seed: 13})
	ds := GenerateOSM(OSMConfig{N: 5000, Seed: 13})
	h, err := db.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := h.Explain(SpatialRange(-112.4, 40.2, -111.4, 41.2))
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 5000 || plan.Matching == 0 {
		t.Errorf("plan = %+v", plan)
	}
}
