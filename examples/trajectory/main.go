// Trajectory: the paper's Figure 6(a) demo. Reconstruct one user's
// movement path from online samples of their geo-tagged tweets; the
// approximation sharpens as more samples arrive, and the generator's
// ground-truth trajectory lets us print the actual error at each stage.
package main

import (
	"context"
	"fmt"
	"log"

	"storm"
	"storm/internal/analytics"
	"storm/internal/viz"
)

func main() {
	db := storm.Open(storm.Config{Seed: 13})

	fmt.Println("generating and indexing 200k tweets from 30 users...")
	tweets, truth := storm.GenerateTweets(storm.TweetsConfig{N: 200_000, Users: 30, Seed: 13})
	h, err := db.Register(tweets, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the most prolific user.
	var user string
	best := 0
	for u, path := range truth {
		if len(path) > best {
			user, best = u, len(path)
		}
	}
	fmt.Printf("reconstructing %s (%d true positions)\n", user, best)

	q := storm.Range{MinX: -130, MinY: 20, MaxX: -60, MaxY: 55, MinT: 0, MaxT: 30 * 86400}
	ch, err := h.TrajectoryOnline(context.Background(), q, "user", user, 0,
		storm.AnalyticOptions{ReportEvery: 50, MaxSamples: 800})
	if err != nil {
		log.Fatal(err)
	}

	var final *storm.Path
	for snap := range ch {
		err := analytics.PathError(truth[user], snap.Path)
		fmt.Printf("  %4d samples: avg path error %.5f°\n", snap.Path.Samples, err)
		final = snap.Path
	}
	if final != nil {
		fmt.Println("\napproximate trajectory (S = start, E = end):")
		fmt.Println(viz.TrajectoryPlot(final, 68, 20))
	}
}
