// Distributed: STORM on a (simulated) cluster of commodity machines. The
// dataset is Hilbert-partitioned across shards, each with a local RS-tree;
// a coordinator draws uniform samples across shards weighted by per-shard
// matching counts and merges per-shard partial estimates — the deployment
// the paper describes over a DFS.
package main

import (
	"fmt"
	"log"

	"storm"
	"storm/internal/distr"
)

func main() {
	fmt.Println("generating 1M OSM-like points...")
	ds := storm.GenerateOSM(storm.OSMConfig{N: 1_000_000, Seed: 17})

	for _, shards := range []int{1, 4, 8} {
		cluster, err := distr.Build(ds, distr.Config{Shards: shards, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- %d shard(s) --\n", shards)
		for _, s := range cluster.Shards() {
			fmt.Printf("  shard %d: %d records\n", s.ID, s.Len())
		}

		q := storm.Range{MinX: -76, MinY: 38.7, MaxX: -72, MaxY: 42.7,
			MinT: 0, MaxT: 86400 * 365}.Rect()
		fmt.Printf("  matching records across shards: %d\n", cluster.Count(q))

		cluster.ResetNet()
		est, err := cluster.EstimateAvg(q, "altitude", 2000, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		net := cluster.Net()
		fmt.Printf("  coordinator online AVG: %s\n", est)
		fmt.Printf("  network: %d messages, %d samples moved\n", net.Messages, net.SamplesMoved)

		// Scatter/gather alternative: shards compute partial estimates in
		// parallel, coordinator merges Welford accumulators.
		merged, err := cluster.ParallelPartialAvg(q, "altitude", 2000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  merged parallel partials: mean %.2f over %d samples\n", merged.Mean(), merged.N())
	}
}
