// Exploration: the paper's interactive-analytics flow. A user zooms the
// map from Salt Lake City out to the whole USA while an online KDE over
// tweets is still running; the session cancels the stale query and starts
// the new one immediately — no waiting (Figure 5 of the paper).
package main

import (
	"context"
	"fmt"
	"log"

	"storm"
	"storm/internal/viz"
)

func main() {
	db := storm.Open(storm.Config{Seed: 7})

	fmt.Println("generating and indexing 300k tweets...")
	tweets, _ := storm.GenerateTweets(storm.TweetsConfig{N: 300_000, Seed: 7})
	h, err := db.Register(tweets, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	session := storm.NewSession(h)

	slc := storm.Range{MinX: -112.4, MinY: 40.2, MaxX: -111.4, MaxY: 41.2, MinT: 0, MaxT: 30 * 86400}
	usa := storm.Range{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50, MinT: 0, MaxT: 30 * 86400}

	// Query 1: density around Salt Lake City. Pretend the user watches
	// only the first few refinements before zooming out.
	fmt.Println("\n-- zoomed into Salt Lake City --")
	ch1, err := session.KDEOnline(context.Background(), slc,
		storm.KDEOptions{Nx: 48, Ny: 16},
		storm.AnalyticOptions{ReportEvery: 200, MaxSamples: 100_000})
	if err != nil {
		log.Fatal(err)
	}
	var slcMap *storm.DensityMap
	for i := 0; i < 3; i++ {
		snap, ok := <-ch1
		if !ok {
			break
		}
		slcMap = snap.Map
		fmt.Printf("  refinement %d: %d samples\n", i+1, snap.Map.Samples)
	}
	if slcMap != nil {
		fmt.Println(viz.Heatmap(slcMap, 0))
	}

	// Query 2 replaces query 1 mid-flight: the session cancels it.
	fmt.Println("\n-- zoomed out to the USA (previous query cancelled) --")
	ch2, err := session.KDEOnline(context.Background(), usa,
		storm.KDEOptions{Nx: 60, Ny: 24},
		storm.AnalyticOptions{ReportEvery: 500, MaxSamples: 4000})
	if err != nil {
		log.Fatal(err)
	}
	// Query 1's stream terminates promptly after cancellation.
	for range ch1 {
	}
	fmt.Println("  (SLC query stream closed)")

	var usaMap *storm.DensityMap
	for snap := range ch2 {
		usaMap = snap.Map
		if snap.Done {
			fmt.Printf("  final: %d samples\n", snap.Map.Samples)
		}
	}
	if usaMap != nil {
		fmt.Println(viz.Heatmap(usaMap, 0))
		fmt.Println("city clusters emerge from a few thousand samples of 300k tweets.")
	}
}
