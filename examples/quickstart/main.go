// Quickstart: open STORM, index a dataset, and run an online aggregation
// that stops at a 1% relative-error target — the paper's introduction
// scenario ("average electricity usage ... 973 kWh with a standard
// deviation of 25 kWh and 95% confidence") on synthetic OSM data.
package main

import (
	"context"
	"fmt"
	"log"

	"storm"
)

func main() {
	db := storm.Open(storm.Config{Seed: 1})

	// 500k OSM-like points with an altitude attribute.
	fmt.Println("generating and indexing 500k points...")
	ds := storm.GenerateOSM(storm.OSMConfig{N: 500_000, Seed: 1})
	h, err := db.Register(ds, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Average altitude around Salt Lake City, first 90 days.
	q := storm.Range{
		MinX: -112.4, MinY: 40.2, MaxX: -111.4, MaxY: 41.2,
		MinT: 0, MaxT: 90 * 86400,
	}
	fmt.Printf("query range matches %d of %d records\n", h.Count(q), h.Len())

	// Stream online snapshots until the 1% relative-error target is met.
	ch, err := h.EstimateOnline(context.Background(), q, storm.Options{
		Kind:           storm.Avg,
		Attr:           "altitude",
		Confidence:     0.95,
		TargetRelError: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	for snap := range ch {
		fmt.Printf("  %s  (%.1fms elapsed)\n", snap.Estimate, float64(snap.Elapsed.Microseconds())/1000)
		if snap.Done {
			fmt.Println("target accuracy reached — query stopped early.")
		}
	}

	// Exact answer for comparison: run the sampler to exhaustion.
	exact, err := h.Estimate(context.Background(), q, storm.Options{Kind: storm.Avg, Attr: "altitude"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact answer: %s\n", exact.Estimate)
}
