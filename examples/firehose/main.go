// Firehose: the paper's live-stream scenario end to end. A paced
// producer pushes synthetic pings through the buffered ingest path
// (package ingest: sharded acceptance, background batched drains into
// the indexes, backpressure) while concurrent queries watch the stream
// through a sliding `LAST`-window — the engine anchors the window at the
// dataset's event-time watermark, so answers track the stream's leading
// edge. The ingestor also keeps a WindowReservoir: an exactly uniform
// O(k) sample of the live window, read here without touching the
// indexes. See INGEST.md for the architecture.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"storm"
	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/ingest"
	"storm/internal/stats"
)

func main() {
	db := storm.Open(storm.Config{Seed: 7})

	fmt.Println("indexing a 200k-ping backlog (one year of event time)...")
	base := storm.GenerateOSM(storm.OSMConfig{N: 200_000, Seed: 7})
	h, err := db.Register(base, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The stream buffer: 8 acceptance shards, drained in the background
	// into h.InsertBatch, plus a 60s window reservoir (k=512).
	in := ingest.New(h, ingest.Config{
		Shards:        8,
		FlushInterval: 20 * time.Millisecond,
		Window:        60 * time.Second,
		WindowSamples: 512,
		Seed:          7,
		Name:          "firehose",
	})
	defer in.Close()

	// Producer: ~4s of wall time, event time starting at the backlog's
	// one-year watermark and advancing, so LAST windows slide with the
	// stream's leading edge.
	var produced, backpressured atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := stats.NewRNG(99)
		eventT := 86400.0 * 365 // the OSM backlog ends here
		deadline := time.Now().Add(4 * time.Second)
		for time.Now().Before(deadline) {
			chunk := make([]data.Row, 256)
			for i := range chunk {
				eventT += 0.004 // ~250 events per second of event time
				chunk[i] = data.Row{
					Pos: geo.Vec{rng.Uniform(-112.4, -111.4), rng.Uniform(40.2, 41.2), eventT},
					Num: map[string]float64{"speed": rng.Uniform(0, 30)},
				}
			}
			// Backpressure contract: on ErrBackpressure nothing of the
			// chunk was buffered — back off and retry the whole chunk.
			for in.AppendBatch(chunk) != nil {
				backpressured.Add(1)
				time.Sleep(time.Millisecond)
			}
			produced.Add(uint64(len(chunk)))
			time.Sleep(time.Millisecond)
		}
	}()

	// Consumer: windowed estimates over the last 60 seconds of EVENT
	// time, while the stream is still arriving.
	region := geo.Range{MinX: -112.4, MinY: 40.2, MaxX: -111.4, MaxY: 41.2,
		MinT: 0, MaxT: 1e18}
	for i := 0; ; i++ {
		time.Sleep(400 * time.Millisecond)
		snap, err := h.Estimate(context.Background(), region, engine.Options{
			Kind: estimator.Avg, Attr: "speed",
			Last: 60 * time.Second, MaxSamples: 800, Seed: int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		wm, _ := in.Watermark()
		fmt.Printf("  watermark %9.1fs  pending %6d  LAST 60s: AVG(speed) = %s\n",
			wm, in.Pending(), snap.Estimate)
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	// Drain what's left, then read the stream-side window sample: an
	// exactly uniform k-subset of the live 60s window, O(k), no index.
	in.Flush()
	sample := in.WindowSample()
	wm, _ := in.Watermark()
	fresh := 0
	for _, r := range sample {
		if r.Pos[2] >= wm-60 {
			fresh++
		}
	}
	fmt.Printf("\nproduced %d records (%d backpressure retries)\n",
		produced.Load(), backpressured.Load())
	fmt.Printf("reservoir: %d-record uniform sample of the live window, all %d in [wm-60s, wm]\n",
		len(sample), fresh)
	if fresh != len(sample) {
		log.Fatal("window sample leaked records outside the window")
	}

	// The same window through the query language over HTTP would be:
	//   SELECT AVG(speed) FROM osm LAST 60s WITH ERROR 2%
	// (see QUERYLANG.md "Sliding windows" and OPERATIONS.md "POST /ingest").
}
