// Liveupdates: the paper's third demo component. The tweets dataset is
// "constantly updated with new tweets"; queries whose time range narrows
// to the most recent history reflect the new records immediately, because
// the sampling indexes (RS-tree and LS-tree) maintain their structures —
// and the RS-tree its sample buffers — under ad-hoc inserts.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"storm"
	"storm/internal/stats"
)

func main() {
	db := storm.Open(storm.Config{Seed: 19})

	fmt.Println("generating and indexing a 100k-tweet backlog (days 0-30)...")
	tweets, _ := storm.GenerateTweets(storm.TweetsConfig{N: 100_000, Seed: 19})
	h, err := db.Register(tweets, storm.IndexOptions{LSTree: true})
	if err != nil {
		log.Fatal(err)
	}

	// The "most recent history" window: day 30 onward. Empty initially.
	recent := storm.Range{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50,
		MinT: 30 * 86400, MaxT: 31 * 86400}
	fmt.Printf("records in the last-day window before ingest: %d\n", h.Count(recent))

	// A live feed inserts tweets for day 30 while queries run in parallel.
	const feed = 5_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := stats.NewRNG(99)
		for i := 0; i < feed; i++ {
			t := 30*86400 + rng.Uniform(0, 86400)
			h.Insert(storm.Row{
				Pos: storm.Vec{-74.0 + rng.NormFloat64()*0.3, 40.7 + rng.NormFloat64()*0.3, t},
				Str: map[string]string{"user": "live-user", "text": "love this city"},
			})
		}
	}()

	// Interleave queries with the ingest: counts rise monotonically.
	prev := -1
	for i := 0; i < 5; i++ {
		time.Sleep(15 * time.Millisecond)
		cnt := h.Count(recent)
		fmt.Printf("  poll %d: %5d records in the last-day window\n", i+1, cnt)
		if cnt < prev {
			log.Fatalf("count went backwards: %d -> %d", prev, cnt)
		}
		prev = cnt
	}
	wg.Wait()

	// Final online estimate over only the fresh records.
	cnt := h.Count(recent)
	fmt.Printf("after ingest: %d records in the window (inserted %d)\n", cnt, feed)
	samples, err := h.Sample(recent, 500, storm.Auto, storm.WithoutReplacement, 7)
	if err != nil {
		log.Fatal(err)
	}
	fresh := 0
	for _, e := range samples {
		if e.Pos.T() >= 30*86400 {
			fresh++
		}
	}
	fmt.Printf("sampled %d records from the window; all %d are fresh inserts\n", len(samples), fresh)

	ctx := context.Background()
	ch, err := h.TermsOnline(ctx, recent, "text", 5, storm.AnalyticOptions{MaxSamples: 300})
	if err != nil {
		log.Fatal(err)
	}
	var last *storm.TermSnapshot
	for s := range ch {
		last = s.Terms
	}
	fmt.Printf("top terms in the fresh window: ")
	for i, t := range last.Top {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.Text)
	}
	fmt.Println()
}
