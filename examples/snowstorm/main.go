// Snowstorm: the paper's Figure 6(b) scenario. A heavy snow hits Atlanta
// between days 10 and 13; online short-text understanding over a
// spatio-temporal window on downtown Atlanta surfaces the storm vocabulary
// (snow, ice, outage, ...) and the population's mood from a few hundred
// sampled tweets — and cross-checking against the weather dataset confirms
// the cold snap, the paper's multi-source integration point.
package main

import (
	"context"
	"fmt"
	"log"

	"storm"
	"storm/internal/viz"
)

func main() {
	db := storm.Open(storm.Config{Seed: 11})

	fmt.Println("generating and indexing 400k tweets (with snowstorm) and weather data...")
	tweets, _ := storm.GenerateTweets(storm.TweetsConfig{N: 400_000, Seed: 11, Snowstorm: true})
	ht, err := db.Register(tweets, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	weather := storm.GenerateStations(storm.StationsConfig{
		Stations: 2_000, ReadingsPerStation: 720, Seed: 11, ColdSnap: true,
	})
	hw, err := db.Register(weather, storm.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Downtown Atlanta during the event window.
	atlanta := storm.Range{
		MinX: -85.4, MinY: 32.7, MaxX: -83.4, MaxY: 34.7,
		MinT: 10 * 86400, MaxT: 13 * 86400,
	}

	// 1. What are people talking about? Online term analysis.
	fmt.Println("\n-- online short-text understanding, downtown Atlanta, days 10-13 --")
	ch, err := ht.TermsOnline(context.Background(), atlanta, "text", 10,
		storm.AnalyticOptions{MaxSamples: 500})
	if err != nil {
		log.Fatal(err)
	}
	var terms *storm.TermSnapshot
	for snap := range ch {
		terms = snap.Terms
	}
	fmt.Print(viz.TermTable(terms))

	// 2. Confirm with the measurement network: average temperature in the
	// same window versus the month overall (online aggregation).
	during, err := hw.Estimate(context.Background(), atlanta, storm.Options{
		Kind: storm.Avg, Attr: "temp", TargetRelError: 0.05, MaxSamples: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	month := atlanta
	month.MinT, month.MaxT = 0, 30*86400
	overall, err := hw.Estimate(context.Background(), month, storm.Options{
		Kind: storm.Avg, Attr: "temp", TargetRelError: 0.05, MaxSamples: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- cross-check against the weather network --")
	fmt.Printf("  avg temp, storm window: %s\n", during.Estimate)
	fmt.Printf("  avg temp, whole month:  %s\n", overall.Estimate)
	fmt.Println("\nboth sources sampled online; neither query scanned its full dataset.")
}
