// Package dfs simulates the distributed file system STORM uses as its
// storage engine (the paper deploys over a DFS beneath a distributed
// MongoDB installation). Files are split into fixed-size chunks, chunks
// are replicated across simulated storage nodes, and reads/writes charge
// per-node I/O so the distributed benchmarks can report balanced load.
//
// The simulation keeps chunk payloads in memory; what matters to STORM is
// the placement and accounting behaviour, not durability.
package dfs

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultChunkSize is the default chunk size in bytes (64 KiB — small, so
// test files produce multiple chunks).
const DefaultChunkSize = 64 * 1024

// Config controls cluster shape.
type Config struct {
	// Nodes is the number of storage nodes (>= 1).
	Nodes int
	// Replication is the number of copies per chunk (>= 1, <= Nodes).
	Replication int
	// ChunkSize in bytes; 0 means DefaultChunkSize.
	ChunkSize int
}

// NodeStats summarizes one storage node's activity.
type NodeStats struct {
	Node        int
	Chunks      int
	BytesStored int64
	Reads       uint64
	Writes      uint64
}

// chunk is one replicated piece of a file.
type chunk struct {
	data  []byte
	nodes []int // replica placement
}

type file struct {
	chunks []chunk
	size   int64
}

// Cluster is a simulated DFS cluster. It is safe for concurrent use.
type Cluster struct {
	mu     sync.Mutex
	cfg    Config
	files  map[string]*file
	stats  []NodeStats
	placeI int // round-robin placement cursor
}

// New returns a cluster with the given configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("dfs: need at least one node")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.Nodes {
		return nil, fmt.Errorf("dfs: replication %d exceeds node count %d", cfg.Replication, cfg.Nodes)
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.ChunkSize < 1 {
		return nil, fmt.Errorf("dfs: chunk size %d invalid", cfg.ChunkSize)
	}
	c := &Cluster{cfg: cfg, files: make(map[string]*file), stats: make([]NodeStats, cfg.Nodes)}
	for i := range c.stats {
		c.stats[i].Node = i
	}
	return c, nil
}

// Write stores a file, replacing any previous content at the path. Chunks
// are placed round-robin with Replication copies each.
func (c *Cluster) Write(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("dfs: empty path")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.files[path]; ok {
		c.dropLocked(old)
	}
	f := &file{size: int64(len(data))}
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += c.cfg.ChunkSize {
		end := off + c.cfg.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		payload := make([]byte, end-off)
		copy(payload, data[off:end])
		ch := chunk{data: payload, nodes: c.placeLocked()}
		for _, n := range ch.nodes {
			c.stats[n].Chunks++
			c.stats[n].BytesStored += int64(len(payload))
			c.stats[n].Writes++
		}
		f.chunks = append(f.chunks, ch)
		if len(data) == 0 {
			break
		}
	}
	c.files[path] = f
	return nil
}

// placeLocked picks Replication distinct nodes round-robin.
func (c *Cluster) placeLocked() []int {
	nodes := make([]int, c.cfg.Replication)
	for i := range nodes {
		nodes[i] = (c.placeI + i) % c.cfg.Nodes
	}
	c.placeI = (c.placeI + 1) % c.cfg.Nodes
	return nodes
}

// Read returns the file's full content, charging one read per chunk on the
// least-loaded replica (crude load balancing).
func (c *Cluster) Read(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	out := make([]byte, 0, f.size)
	for _, ch := range f.chunks {
		best := ch.nodes[0]
		for _, n := range ch.nodes[1:] {
			if c.stats[n].Reads < c.stats[best].Reads {
				best = n
			}
		}
		c.stats[best].Reads++
		out = append(out, ch.data...)
	}
	return out, nil
}

// Delete removes a file; deleting a missing file is an error.
func (c *Cluster) Delete(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	c.dropLocked(f)
	delete(c.files, path)
	return nil
}

func (c *Cluster) dropLocked(f *file) {
	for _, ch := range f.chunks {
		for _, n := range ch.nodes {
			c.stats[n].Chunks--
			c.stats[n].BytesStored -= int64(len(ch.data))
		}
	}
}

// Exists reports whether the path holds a file.
func (c *Cluster) Exists(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.files[path]
	return ok
}

// List returns all file paths, sorted.
func (c *Cluster) List() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.files))
	for p := range c.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size returns a file's size in bytes.
func (c *Cluster) Size(path string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", path)
	}
	return f.size, nil
}

// Stats returns per-node statistics.
func (c *Cluster) Stats() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, len(c.stats))
	copy(out, c.stats)
	return out
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }
