package dfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c, err := New(Config{Nodes: 3, Replication: 2, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello distributed file system, this spans several chunks")
	if err := c.Write("a/b.txt", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}
	size, err := c.Size("a/b.txt")
	if err != nil || size != int64(len(payload)) {
		t.Errorf("size = %d, %v", size, err)
	}
}

func TestEmptyFile(t *testing.T) {
	c, _ := New(Config{Nodes: 2, Replication: 1})
	if err := c.Write("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("empty")
	if err != nil || len(got) != 0 {
		t.Errorf("empty read = %v, %v", got, err)
	}
}

func TestOverwriteReclaims(t *testing.T) {
	c, _ := New(Config{Nodes: 2, Replication: 2, ChunkSize: 8})
	c.Write("f", make([]byte, 64))
	c.Write("f", make([]byte, 8))
	var total int64
	for _, s := range c.Stats() {
		total += s.BytesStored
	}
	if total != 8*2 {
		t.Errorf("stored bytes = %d, want 16 (old chunks reclaimed)", total)
	}
}

func TestDelete(t *testing.T) {
	c, _ := New(Config{Nodes: 2, Replication: 1})
	c.Write("f", []byte("x"))
	if !c.Exists("f") {
		t.Fatal("file should exist")
	}
	if err := c.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("f") {
		t.Error("deleted file still exists")
	}
	if err := c.Delete("f"); err == nil {
		t.Error("double delete should error")
	}
	if _, err := c.Read("f"); err == nil {
		t.Error("reading deleted file should error")
	}
	var total int64
	for _, s := range c.Stats() {
		total += s.BytesStored
	}
	if total != 0 {
		t.Errorf("bytes after delete = %d", total)
	}
}

func TestReplicationPlacement(t *testing.T) {
	c, _ := New(Config{Nodes: 4, Replication: 3, ChunkSize: 4})
	c.Write("f", make([]byte, 12)) // 3 chunks x 3 replicas
	chunks := 0
	for _, s := range c.Stats() {
		chunks += s.Chunks
	}
	if chunks != 9 {
		t.Errorf("replica chunks = %d, want 9", chunks)
	}
}

func TestLoadSpreadsAcrossNodes(t *testing.T) {
	c, _ := New(Config{Nodes: 4, Replication: 1, ChunkSize: 8})
	for i := 0; i < 16; i++ {
		c.Write(fmt.Sprintf("f%d", i), make([]byte, 8))
	}
	for _, s := range c.Stats() {
		if s.Chunks != 4 {
			t.Errorf("node %d has %d chunks, want 4 (round-robin)", s.Node, s.Chunks)
		}
	}
}

func TestReadLoadBalancing(t *testing.T) {
	c, _ := New(Config{Nodes: 2, Replication: 2, ChunkSize: 1024})
	c.Write("f", make([]byte, 100))
	for i := 0; i < 10; i++ {
		c.Read("f")
	}
	st := c.Stats()
	if st[0].Reads == 0 || st[1].Reads == 0 {
		t.Errorf("reads not balanced: %d / %d", st[0].Reads, st[1].Reads)
	}
}

func TestList(t *testing.T) {
	c, _ := New(Config{Nodes: 1, Replication: 1})
	c.Write("b", []byte("1"))
	c.Write("a", []byte("2"))
	got := c.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes should be rejected")
	}
	if _, err := New(Config{Nodes: 2, Replication: 3}); err == nil {
		t.Error("replication > nodes should be rejected")
	}
	if _, err := New(Config{Nodes: 1, ChunkSize: -1}); err == nil {
		t.Error("negative chunk size should be rejected")
	}
	c, _ := New(Config{Nodes: 1})
	if err := c.Write("", []byte("x")); err == nil {
		t.Error("empty path should be rejected")
	}
}

func TestConcurrentWritesAndReads(t *testing.T) {
	c, _ := New(Config{Nodes: 4, Replication: 2, ChunkSize: 32})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("file-%d", i)
			payload := bytes.Repeat([]byte{byte(i)}, 100)
			for j := 0; j < 50; j++ {
				if err := c.Write(path, payload); err != nil {
					t.Error(err)
					return
				}
				got, err := c.Read(path)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("roundtrip failed for %s", path)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
