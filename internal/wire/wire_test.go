package wire

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
)

// sampleMsgs returns one populated instance of every message type,
// exercising empty strings, NaN/Inf floats, empty and non-empty slices.
func sampleMsgs() []Msg {
	inf := math.Inf(1)
	return []Msg{
		&Error{Code: ErrCodeUnknownStream, Msg: "stream 7 not open"},
		&Error{},
		&Ping{},
		&Pong{Shards: 4},
		&Build{Target: Target{DS: "osm", Shard: 3}, Of: 8, Seed: -42, Fanout: 16, PoolPages: 1024},
		&BuildOK{Count: 125000},
		&Count{Target: Target{DS: "tweets", Shard: 0}, Query: geo.Rect{Min: geo.Vec{20, 20, -inf}, Max: geo.Vec{60, 60, inf}}},
		&CountOK{N: 9999},
		&Open{Target: Target{DS: "osm", Shard: 1}, Stream: 77, Query: geo.Rect{Min: geo.Vec{0, 0, 0}, Max: geo.Vec{1, 1, 1}}, Seed: 12345, Exclude: []data.ID{1, 5, 9}},
		&Open{Target: Target{DS: "osm", Shard: 1}, Stream: 78, Seed: 1},
		&OpenOK{N: 4242},
		&Fetch{Target: Target{DS: "osm", Shard: 2}, Stream: 77, N: 32},
		&Entries{Entries: []data.Entry{{ID: 3, Pos: geo.Vec{1.5, -2.5, 3.25}}, {ID: 9, Pos: geo.Vec{0, 0, 0}}}},
		&Entries{},
		&Close{Target: Target{DS: "osm", Shard: 2}, Stream: 77},
		&CloseOK{},
		&Insert{Target: Target{DS: "stations", Shard: 0}, ID: 2001, Pos: geo.Vec{10, 20, 30},
			Num: []NumAttr{{Name: "speed", Val: 88.5}, {Name: "temp", Val: math.NaN()}},
			Str: []StrAttr{{Name: "tag", Val: "snow"}, {Name: "user", Val: ""}}},
		&InsertOK{},
		&Delete{Target: Target{DS: "osm", Shard: 5}, ID: 17, Pos: geo.Vec{-1, -2, -3}},
		&DeleteOK{Found: true},
		&Summary{Target: Target{DS: "tweets", Shard: 1}, Attr: "len"},
		&SummaryOK{Found: true, Count: 100, Sum: 55.5, Min: -inf, Max: inf, NonFinite: 2},
		&Bounds{Target: Target{DS: "osm", Shard: 0}},
		&BoundsOK{Rect: geo.EmptyRect()},
		&Len{Target: Target{DS: "osm", Shard: 7}},
		&LenOK{N: 31250},
	}
}

// msgEqual compares messages treating NaN as equal to itself, which
// reflect.DeepEqual already does for float64 fields via bit patterns only
// when identical; we compare re-encoded bytes instead for robustness.
func msgEqual(t *testing.T, a, b Msg) bool {
	t.Helper()
	if a.WireKind() != b.WireKind() {
		return false
	}
	return string(AppendFrame(nil, a)) == string(AppendFrame(nil, b))
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, m := range sampleMsgs() {
		frame := AppendFrame(nil, m)
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.WireKind(), err)
		}
		if n != len(frame) {
			t.Fatalf("%v: consumed %d of %d bytes", m.WireKind(), n, len(frame))
		}
		if !msgEqual(t, m, got) {
			t.Fatalf("%v: round-trip mismatch:\n in: %#v\nout: %#v", m.WireKind(), m, got)
		}
	}
}

func TestRoundTripPreservesFloatBits(t *testing.T) {
	in := &Entries{Entries: []data.Entry{{ID: 1, Pos: geo.Vec{math.NaN(), math.Inf(-1), -0.0}}}}
	got, _, err := DecodeFrame(AppendFrame(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*Entries).Entries[0].Pos
	for i := 0; i < geo.Dims; i++ {
		if math.Float64bits(out[i]) != math.Float64bits(in.Entries[0].Pos[i]) {
			t.Fatalf("dim %d: bits %x != %x", i, math.Float64bits(out[i]), math.Float64bits(in.Entries[0].Pos[i]))
		}
	}
}

func TestDecodeFrameRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {1, 0, 0},
		"zero length":    {0, 0, 0, 0, byte(KindPing)},
		"oversized":      {0xff, 0xff, 0xff, 0xff, byte(KindPing)},
		"unknown kind":   {1, 0, 0, 0, 0xee},
		"truncated body": AppendFrame(nil, &CountOK{N: 7})[:8],
		"trailing bytes": func() []byte {
			f := AppendFrame(nil, &Ping{})
			f[0] += 2 // claim two extra payload bytes
			return append(f, 0xab, 0xcd)
		}(),
		"huge exclude count": func() []byte {
			f := AppendFrame(nil, &Open{Target: Target{DS: "d"}})
			// Overwrite the exclude-count u32 with an absurd value. It sits
			// 25 bytes from the end: before the terms count (4 bytes) and
			// the window (1 + 8 + 8 bytes).
			i := len(f) - 25
			f[i], f[i+1], f[i+2], f[i+3] = 0xff, 0xff, 0xff, 0x7f
			return f
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestAppendFrameChains(t *testing.T) {
	var buf []byte
	msgs := sampleMsgs()
	for _, m := range msgs {
		buf = AppendFrame(buf, m)
	}
	for i := 0; len(buf) > 0; i++ {
		m, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !msgEqual(t, msgs[i], m) {
			t.Fatalf("frame %d: mismatch", i)
		}
		buf = buf[n:]
	}
}

// echoHandler answers Count with its query volume and everything else
// with Pong, for transport plumbing tests.
type echoHandler struct {
	mu     sync.Mutex
	served int
}

func (h *echoHandler) Handle(req Msg) Msg {
	h.mu.Lock()
	h.served++
	h.mu.Unlock()
	switch m := req.(type) {
	case *Count:
		return &CountOK{N: uint64(m.Query.Volume())}
	case *Fetch:
		ents := make([]data.Entry, m.N)
		for i := range ents {
			ents[i] = data.Entry{ID: data.ID(i), Pos: geo.Vec{float64(i), 0, 0}}
		}
		return &Entries{Entries: ents}
	case *Ping:
		return &Pong{Shards: 1}
	default:
		return &Error{Code: ErrCodeBadRequest, Msg: "unexpected"}
	}
}

func TestLoopbackTransport(t *testing.T) {
	h := &echoHandler{}
	lb := NewLoopback(h)
	resp, err := lb.RoundTrip(&Count{Query: geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{2, 3, 4})}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(*CountOK).N; got != 24 {
		t.Fatalf("N = %d, want 24", got)
	}
	if c := lb.Counts(); c != (Counts{}) {
		t.Fatalf("loopback reported traffic: %+v", c)
	}
}

func TestTCPTransport(t *testing.T) {
	h := &echoHandler{}
	srv, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewTCPClient(srv.Addr())
	defer cl.Close()

	// Sequential requests reuse the pooled connection.
	for i := 1; i <= 3; i++ {
		resp, err := cl.RoundTrip(&Fetch{N: uint32(i)}, time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if got := len(resp.(*Entries).Entries); got != i {
			t.Fatalf("round %d: %d entries", i, got)
		}
	}

	// Concurrent requests each get their own connection.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.RoundTrip(&Ping{}, time.Second); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c := cl.Counts()
	if c.MsgsSent != 11 || c.MsgsRecv != 11 {
		t.Fatalf("client counts = %+v, want 11 msgs each way", c)
	}
	if c.BytesSent == 0 || c.BytesRecv == 0 {
		t.Fatalf("client byte counts empty: %+v", c)
	}
	sc := srv.Counts()
	if sc.MsgsRecv != 11 || sc.MsgsSent != 11 {
		t.Fatalf("server counts = %+v", sc)
	}
}

func TestTCPDeadline(t *testing.T) {
	block := make(chan struct{})
	h := handlerFunc(func(req Msg) Msg {
		if _, ok := req.(*Fetch); ok {
			<-block
		}
		return &Pong{}
	})
	srv, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	cl := NewTCPClient(srv.Addr())
	defer cl.Close()

	start := time.Now()
	_, err = cl.RoundTrip(&Fetch{N: 1}, 30*time.Millisecond)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline took %v", d)
	}
	// The client must recover: the dead connection was dropped, a fresh
	// one serves the next request.
	if _, err := cl.RoundTrip(&Ping{}, time.Second); err != nil {
		t.Fatalf("post-timeout request: %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cl := NewTCPClient("127.0.0.1:1") // nothing listens here
	defer cl.Close()
	if _, err := cl.RoundTrip(&Ping{}, 100*time.Millisecond); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestServerPanicGuard(t *testing.T) {
	h := handlerFunc(func(req Msg) Msg {
		if _, ok := req.(*Fetch); ok {
			panic("boom")
		}
		return &Pong{}
	})
	srv, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewTCPClient(srv.Addr())
	defer cl.Close()
	resp, err := cl.RoundTrip(&Fetch{N: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := resp.(*Error); !ok || e.Code != ErrCodeGeneric {
		t.Fatalf("resp = %#v, want generic Error", resp)
	}
	// Connection survives the panic.
	if _, err := cl.RoundTrip(&Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
}

type handlerFunc func(Msg) Msg

func (f handlerFunc) Handle(req Msg) Msg { return f(req) }

func TestKindStringTotal(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range sampleMsgs() {
		s := m.WireKind().String()
		if s == "" || s[0] == 'K' {
			t.Fatalf("kind %d has no name", m.WireKind())
		}
		seen[s] = true
	}
	if !seen["fetch"] || !seen["entries"] {
		t.Fatal("expected canonical kind names")
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestMsgTypesCoverAllKinds(t *testing.T) {
	// Every kind newMsg knows must appear in sampleMsgs, so the
	// round-trip test is total over the protocol.
	covered := map[Kind]bool{}
	for _, m := range sampleMsgs() {
		covered[m.WireKind()] = true
	}
	for k := Kind(1); k <= KindLenOK; k++ {
		m := newMsg(k)
		if m == nil {
			t.Fatalf("newMsg(%d) = nil inside kind range", k)
		}
		if reflect.TypeOf(m).Kind() != reflect.Ptr {
			t.Fatalf("newMsg(%d) not a pointer", k)
		}
		if !covered[k] {
			t.Fatalf("kind %v not covered by sampleMsgs", k)
		}
	}
}
