package wire

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Handler serves wire requests. Implementations must be safe for
// concurrent use; the shard host in package distr is the canonical one.
type Handler interface {
	// Handle serves one request and returns its response. Failures are
	// returned as *Error messages, not Go errors, so they serialize.
	Handle(req Msg) Msg
}

// Counts is a transport's traffic tally. The loopback transport always
// reports zeros — it moves no bytes — which is how package distr knows to
// keep its simulated NetStats charges for ablation comparability.
type Counts struct {
	// MsgsSent/MsgsRecv count frames written and read by this endpoint.
	MsgsSent, MsgsRecv uint64
	// BytesSent/BytesRecv count frame bytes (length prefix included).
	BytesSent, BytesRecv uint64
}

// Transport carries one request/response exchange to a shard endpoint.
// Implementations must be safe for concurrent use.
type Transport interface {
	// RoundTrip sends req and waits for the response, observing timeout
	// when positive. Remote failures surface as *Error responses; carrier
	// failures (dial, deadline, broken conn) as Go errors.
	RoundTrip(req Msg, timeout time.Duration) (Msg, error)
	// Counts returns the traffic moved through this transport so far.
	Counts() Counts
	// Close releases the transport's connections.
	Close() error
}

// Loopback is the in-process transport: RoundTrip dispatches straight to
// the handler with no serialization, no deadline and no traffic counts —
// byte-identical in behavior and cost to the pre-wire direct calls.
type Loopback struct {
	h Handler
}

// NewLoopback returns a loopback transport over h.
func NewLoopback(h Handler) *Loopback { return &Loopback{h: h} }

// RoundTrip implements Transport by direct dispatch. The timeout is
// ignored: in-process calls cannot hang on a network.
func (l *Loopback) RoundTrip(req Msg, _ time.Duration) (Msg, error) {
	resp := l.h.Handle(req)
	if resp == nil {
		return nil, fmt.Errorf("wire: loopback handler returned no response for %v", req.WireKind())
	}
	return resp, nil
}

// Counts implements Transport; a loopback moves no bytes.
func (l *Loopback) Counts() Counts { return Counts{} }

// Close implements Transport.
func (l *Loopback) Close() error { return nil }

// counters is the shared atomic tally embedded by counting transports.
type counters struct {
	msgsSent, msgsRecv   atomic.Uint64
	bytesSent, bytesRecv atomic.Uint64
}

func (c *counters) sent(bytes int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(uint64(bytes))
}

func (c *counters) recv(bytes int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(uint64(bytes))
}

func (c *counters) snapshot() Counts {
	return Counts{
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
}
