package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// readFrame reads exactly one frame from r into a fresh buffer and
// decodes it, returning the message and the frame's size on the wire.
func readFrame(r io.Reader) (Msg, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 1 || n > MaxFrame {
		return nil, 0, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return nil, 0, err
	}
	m, size, err := DecodeFrame(buf)
	if err != nil {
		return nil, 0, err
	}
	return m, size, nil
}

// tcpConn is one pooled client connection with its buffered reader and a
// reusable write buffer.
type tcpConn struct {
	c   net.Conn
	br  *bufio.Reader
	buf []byte
}

// TCPClient is the coordinator-side TCP transport to one shard host. It
// keeps a small pool of idle connections, dials lazily, applies the
// per-request timeout as a connection deadline covering both the write and
// the response read, and drops a connection on any carrier error so a
// failure never poisons later requests. One TCPClient is shared by every
// shard the host serves, so its Counts cover the whole address.
type TCPClient struct {
	addr string

	mu     sync.Mutex
	idle   []*tcpConn
	closed bool

	counters
}

// maxIdleConns bounds the per-address connection pool. The coordinator
// fans out one in-flight request per shard, so a handful of connections
// covers a host serving several shards without a thundering herd.
const maxIdleConns = 4

// DialTimeout bounds connection establishment to a shard host. Kept
// short: a dead host should surface as a crash fault quickly, and the PR 4
// retry path handles the rest.
const DialTimeout = 2 * time.Second

// MinCallTimeout is the floor for a caller-shrunk per-request timeout.
// Deadline-aware fetches cap their transport timeout at the time left on
// the query's deadline; below this floor a request cannot plausibly
// complete, so callers send it with MinCallTimeout (and let the deadline
// check on return discard the result) rather than guarantee a spurious
// transport failure that would mark a healthy shard down.
const MinCallTimeout = time.Millisecond

// NewTCPClient returns a TCP transport to the shard host at addr. No
// connection is made until the first RoundTrip.
func NewTCPClient(addr string) *TCPClient {
	return &TCPClient{addr: addr}
}

// Addr returns the host address this client dials.
func (t *TCPClient) Addr() string { return t.addr }

func (t *TCPClient) get() (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("wire: client to %s is closed", t.addr)
	}
	if n := len(t.idle); n > 0 {
		c := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", t.addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c, br: bufio.NewReader(c)}, nil
}

func (t *TCPClient) put(c *tcpConn) {
	t.mu.Lock()
	if !t.closed && len(t.idle) < maxIdleConns {
		t.idle = append(t.idle, c)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	c.c.Close()
}

// RoundTrip implements Transport: one framed request, one framed
// response, both under the same deadline. Any carrier error closes the
// connection; the caller's retry path decides what to do next.
func (t *TCPClient) RoundTrip(req Msg, timeout time.Duration) (Msg, error) {
	c, err := t.get()
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		c.c.SetDeadline(time.Now().Add(timeout))
	} else {
		c.c.SetDeadline(time.Time{})
	}
	c.buf = AppendFrame(c.buf[:0], req)
	if _, err := c.c.Write(c.buf); err != nil {
		c.c.Close()
		return nil, fmt.Errorf("wire: write to %s: %w", t.addr, err)
	}
	t.sent(len(c.buf))
	resp, size, err := readFrame(c.br)
	if err != nil {
		c.c.Close()
		return nil, fmt.Errorf("wire: read from %s: %w", t.addr, err)
	}
	t.recv(size)
	t.put(c)
	return resp, nil
}

// Counts implements Transport.
func (t *TCPClient) Counts() Counts { return t.snapshot() }

// Close implements Transport, closing every pooled connection.
func (t *TCPClient) Close() error {
	t.mu.Lock()
	t.closed = true
	idle := t.idle
	t.idle = nil
	t.mu.Unlock()
	for _, c := range idle {
		c.c.Close()
	}
	return nil
}

// Server accepts framed requests over TCP and dispatches them to a
// Handler — the shard-host side of the transport. Each connection is
// served by one goroutine in request order, matching the client's one
// in-flight request per connection.
type Server struct {
	h  Handler
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	counters
}

// NewServer listens on addr (":0" picks a free port) and starts serving h.
func NewServer(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{h: h, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Counts returns the traffic served so far.
func (s *Server) Counts() Counts { return s.snapshot() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	var wbuf []byte
	for {
		req, size, err := readFrame(br)
		if err != nil {
			return
		}
		s.recv(size)
		resp := s.dispatch(req)
		wbuf = AppendFrame(wbuf[:0], resp)
		if _, err := c.Write(wbuf); err != nil {
			return
		}
		s.sent(len(wbuf))
	}
}

// dispatch runs the handler with a panic guard: a bug serving one request
// must answer with a generic Error, not take the whole host down.
func (s *Server) dispatch(req Msg) (resp Msg) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Error{Code: ErrCodeGeneric, Msg: fmt.Sprintf("panic serving %v: %v", req.WireKind(), r)}
		}
	}()
	resp = s.h.Handle(req)
	if resp == nil {
		resp = &Error{Code: ErrCodeGeneric, Msg: fmt.Sprintf("no response for %v", req.WireKind())}
	}
	return resp
}

// Close stops accepting, closes live connections and waits for the serve
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
