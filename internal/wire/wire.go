// Package wire defines the coordinator↔shard RPC protocol of the
// distributed STORM deployment: a compact length-prefixed binary codec for
// the shard round shapes (count rounds, the batched simulate→fetch sample
// protocol, insert/delete mirroring, attribute summaries for lost-mass
// bounds) plus the transports that carry it — an in-process loopback that
// dispatches messages without serialization and a TCP transport with
// per-request deadlines (see transport.go and tcp.go).
//
// # Frame format
//
// Every message travels as one frame:
//
//	u32  payload length (little endian, kind byte included)
//	u8   message kind (see Kind)
//	...  payload, fixed little-endian fields in struct order
//
// Scalars are fixed-width little endian; float64 travels as its IEEE-754
// bits, so positions and summary bounds round-trip bit-exactly. Strings
// and slices are u32 length-prefixed. A frame never exceeds MaxFrame;
// decoding is fully bounds-checked and returns an error — never panics —
// on malformed input (FuzzWireCodec enforces this).
//
// The package deliberately has no opinion about retries, fault injection
// or shard placement: those live in package distr, above the transport.
package wire

import (
	"fmt"
	"math"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/pred"
)

// Kind identifies a wire message type (the byte after the length prefix).
type Kind uint8

// The wire message kinds. Requests and responses are distinct kinds so a
// response can never be misread as a request.
const (
	// KindError is the generic failure response to any request.
	KindError Kind = 1 + iota
	// KindPing probes shard liveness; KindPong answers it.
	KindPing
	KindPong
	// KindBuild asks a shard host to build one shard of a dataset;
	// KindBuildOK acknowledges with the shard's record count.
	KindBuild
	KindBuildOK
	// KindCount is the coordinator's count round for one shard;
	// KindCountOK answers with the shard's matching count.
	KindCount
	KindCountOK
	// KindOpen opens a per-query without-replacement sample stream;
	// KindOpenOK answers with the stream's matching count.
	KindOpen
	KindOpenOK
	// KindFetch pulls a demand-sized sample batch from an open stream;
	// KindEntries carries the samples back.
	KindFetch
	KindEntries
	// KindClose releases an open stream; KindCloseOK acknowledges.
	KindClose
	KindCloseOK
	// KindInsert mirrors one inserted record to the owning shard;
	// KindInsertOK acknowledges.
	KindInsert
	KindInsertOK
	// KindDelete removes one record from a shard; KindDeleteOK reports
	// whether the shard held it.
	KindDelete
	KindDeleteOK
	// KindSummary requests a shard's attribute digest (count/sum/min/max)
	// for lost-mass bounds; KindSummaryOK carries it back.
	KindSummary
	KindSummaryOK
	// KindBounds requests the bounding box of a shard's tree (insert
	// routing); KindBoundsOK carries it back.
	KindBounds
	KindBoundsOK
	// KindLen requests a shard's record count; KindLenOK answers it.
	KindLen
	KindLenOK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		KindError: "error", KindPing: "ping", KindPong: "pong",
		KindBuild: "build", KindBuildOK: "build-ok",
		KindCount: "count", KindCountOK: "count-ok",
		KindOpen: "open", KindOpenOK: "open-ok",
		KindFetch: "fetch", KindEntries: "entries",
		KindClose: "close", KindCloseOK: "close-ok",
		KindInsert: "insert", KindInsertOK: "insert-ok",
		KindDelete: "delete", KindDeleteOK: "delete-ok",
		KindSummary: "summary", KindSummaryOK: "summary-ok",
		KindBounds: "bounds", KindBoundsOK: "bounds-ok",
		KindLen: "len", KindLenOK: "len-ok",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MaxFrame bounds one frame's payload (kind byte included): large enough
// for a 1M-entry sample batch or exclude list, small enough that a
// corrupted length prefix cannot OOM the reader.
const MaxFrame = 64 << 20

// Error codes carried by the Error message, so clients can distinguish
// retryable states from protocol misuse.
const (
	// ErrCodeGeneric is an unclassified server-side failure.
	ErrCodeGeneric uint8 = iota
	// ErrCodeUnknownDataset means the host has no such dataset.
	ErrCodeUnknownDataset
	// ErrCodeUnknownShard means the host has not built that shard of the
	// dataset (e.g. the shard process restarted and lost it); the client
	// re-issues Build.
	ErrCodeUnknownShard
	// ErrCodeUnknownStream means the stream id is not open on the shard
	// (e.g. lost in a restart); the coordinator reopens with an exclude
	// list of already-emitted records.
	ErrCodeUnknownStream
	// ErrCodeBadRequest means the request was malformed or out of order.
	ErrCodeBadRequest
)

// Msg is implemented by every wire message.
type Msg interface {
	// WireKind returns the message's frame kind byte.
	WireKind() Kind
	// encode appends the payload (kind byte excluded) to the encoder.
	encode(e *encoder)
	// decode parses the payload (kind byte excluded) from the decoder.
	decode(d *decoder)
}

// Error is the failure response to any request.
type Error struct {
	// Code classifies the failure (ErrCode* constants).
	Code uint8
	// Msg is the human-readable cause.
	Msg string
}

// WireKind implements Msg.
func (*Error) WireKind() Kind { return KindError }

// Error implements the error interface, so an *Error response can travel
// up a client call stack directly.
func (m *Error) Error() string { return fmt.Sprintf("wire: remote error (code %d): %s", m.Code, m.Msg) }

func (m *Error) encode(e *encoder) { e.u8(m.Code); e.str(m.Msg) }
func (m *Error) decode(d *decoder) { m.Code = d.u8(); m.Msg = d.str() }

// Ping probes a shard host's liveness.
type Ping struct{}

// WireKind implements Msg.
func (*Ping) WireKind() Kind      { return KindPing }
func (m *Ping) encode(e *encoder) {}
func (m *Ping) decode(d *decoder) {}

// Pong answers a Ping.
type Pong struct {
	// Shards is how many shard backends the host currently serves.
	Shards uint32
}

// WireKind implements Msg.
func (*Pong) WireKind() Kind      { return KindPong }
func (m *Pong) encode(e *encoder) { e.u32(m.Shards) }
func (m *Pong) decode(d *decoder) { m.Shards = d.u32() }

// Target addresses one shard of one dataset on a host; it prefixes every
// shard-scoped request. Replication (DESIGN.md §4.8) needs no replica
// field here: a replica is the same (DS, Shard) served by a different
// host, so replica identity is purely coordinator-side routing — which
// transport the request goes out on — and the wire protocol is unchanged
// at any replication factor.
type Target struct {
	// DS names the dataset.
	DS string
	// Shard is the shard index within the dataset's cluster.
	Shard uint32
}

func (t *Target) encode(e *encoder) { e.str(t.DS); e.u32(t.Shard) }
func (t *Target) decode(d *decoder) { t.DS = d.str(); t.Shard = d.u32() }

// Build asks a shard host to materialize one shard of a dataset it holds
// locally: partition the dataset into Of contiguous Hilbert ranges and
// build an RS-tree (plus summaries) over range Shard.
type Build struct {
	// Target names the (dataset, shard) to build.
	Target
	// Of is the total shard count of the dataset's cluster.
	Of uint32
	// Seed is the cluster seed; the shard's tree seed derives from it
	// exactly as the in-process cluster derives it.
	Seed int64
	// Fanout is the shard RS-tree fanout (0 = default).
	Fanout uint32
	// PoolPages sizes the shard's simulated buffer pool (0 disables).
	PoolPages uint32
}

// WireKind implements Msg.
func (*Build) WireKind() Kind { return KindBuild }
func (m *Build) encode(e *encoder) {
	m.Target.encode(e)
	e.u32(m.Of)
	e.i64(m.Seed)
	e.u32(m.Fanout)
	e.u32(m.PoolPages)
}
func (m *Build) decode(d *decoder) {
	m.Target.decode(d)
	m.Of = d.u32()
	m.Seed = d.i64()
	m.Fanout = d.u32()
	m.PoolPages = d.u32()
}

// BuildOK acknowledges a Build.
type BuildOK struct {
	// Count is the number of records on the built shard.
	Count uint64
}

// WireKind implements Msg.
func (*BuildOK) WireKind() Kind      { return KindBuildOK }
func (m *BuildOK) encode(e *encoder) { e.u64(m.Count) }
func (m *BuildOK) decode(d *decoder) { m.Count = d.u64() }

// Window is a trailing event-time window resolved against the dataset
// watermark at the coordinator — the wire form of a `LAST <dur>` clause.
// Shards intersect the query rectangle's time axis with [Lo, Hi] locally,
// so the same records qualify whether the shard is in-process or across
// TCP. Set == false means the query carries no window; an inverted window
// (Lo > Hi) is valid and matches nothing (the coordinator resolved the
// clause against a dataset that has never held a record).
type Window struct {
	// Set reports whether the query has a window at all.
	Set bool
	// Lo and Hi bound the live event times, inclusive, in the time axis's
	// native unit (seconds).
	Lo, Hi float64
}

// Apply narrows r's time axis to the window, returning r unchanged when
// the window is unset. Narrowing an already-disjoint rect yields an empty
// rect (Min > Max on the time axis), which every index treats as zero.
func (wn Window) Apply(r geo.Rect) geo.Rect {
	if !wn.Set {
		return r
	}
	if r.Min[2] < wn.Lo {
		r.Min[2] = wn.Lo
	}
	if r.Max[2] > wn.Hi {
		r.Max[2] = wn.Hi
	}
	return r
}

// Count is the coordinator's count-round request for one shard.
type Count struct {
	// Target names the shard.
	Target
	// Query is the query rectangle.
	Query geo.Rect
	// Where is the query's attribute predicate in normal form (empty =
	// none). Shards compile it against their local dataset and prune with
	// their local summaries, so the predicate travels instead of the
	// rejected records.
	Where []pred.Term
	// Window is the query's resolved `LAST` window (Set == false = none);
	// the shard narrows the rectangle's time axis before counting.
	Window Window
}

// WireKind implements Msg.
func (*Count) WireKind() Kind { return KindCount }
func (m *Count) encode(e *encoder) {
	m.Target.encode(e)
	e.rect(m.Query)
	e.terms(m.Where)
	e.window(m.Window)
}
func (m *Count) decode(d *decoder) {
	m.Target.decode(d)
	m.Query = d.rect()
	m.Where = d.terms()
	m.Window = d.window()
}

// CountOK answers a Count.
type CountOK struct {
	// N is the shard's matching count |P_s ∩ q|.
	N uint64
}

// WireKind implements Msg.
func (*CountOK) WireKind() Kind      { return KindCountOK }
func (m *CountOK) encode(e *encoder) { e.u64(m.N) }
func (m *CountOK) decode(d *decoder) { m.N = d.u64() }

// Open opens a per-query without-replacement sample stream on a shard —
// the shard half of the coordinator's initialization round.
type Open struct {
	// Target names the shard.
	Target
	// Stream is the coordinator-assigned stream id (unique per cluster).
	Stream uint64
	// Query is the query rectangle.
	Query geo.Rect
	// Seed drives the shard-local sampler RNG, exactly as the in-process
	// cluster seeds it.
	Seed int64
	// Exclude lists record IDs the stream must never emit — the
	// coordinator's already-received samples when it reopens a stream
	// after a shard restart. Empty on first open.
	Exclude []data.ID
	// Where is the query's attribute predicate in normal form (empty =
	// none); the shard prunes and filters locally so only qualifying
	// samples cross the wire.
	Where []pred.Term
	// Window is the query's resolved `LAST` window (Set == false = none);
	// the shard narrows the rectangle's time axis before sampling, so a
	// windowed stream draws from the identical population on every
	// transport.
	Window Window
}

// WireKind implements Msg.
func (*Open) WireKind() Kind { return KindOpen }
func (m *Open) encode(e *encoder) {
	m.Target.encode(e)
	e.u64(m.Stream)
	e.rect(m.Query)
	e.i64(m.Seed)
	e.u32(uint32(len(m.Exclude)))
	for _, id := range m.Exclude {
		e.u64(id)
	}
	e.terms(m.Where)
	e.window(m.Window)
}
func (m *Open) decode(d *decoder) {
	m.Target.decode(d)
	m.Stream = d.u64()
	m.Query = d.rect()
	m.Seed = d.i64()
	n := int(d.u32())
	if !d.need(n * 8) {
		return
	}
	m.Exclude = make([]data.ID, n)
	for i := range m.Exclude {
		m.Exclude[i] = d.u64()
	}
	m.Where = d.terms()
	m.Window = d.window()
}

// OpenOK answers an Open.
type OpenOK struct {
	// N is the stream's matching count (exclude-filtered).
	N uint64
}

// WireKind implements Msg.
func (*OpenOK) WireKind() Kind      { return KindOpenOK }
func (m *OpenOK) encode(e *encoder) { e.u64(m.N) }
func (m *OpenOK) decode(d *decoder) { m.N = d.u64() }

// Fetch pulls up to N samples from an open stream — one demand-sized
// request of the batched simulate→fetch→assemble protocol.
type Fetch struct {
	// Target names the shard.
	Target
	// Stream is the stream to pull from.
	Stream uint64
	// N is the maximum number of samples wanted.
	N uint32
}

// WireKind implements Msg.
func (*Fetch) WireKind() Kind { return KindFetch }
func (m *Fetch) encode(e *encoder) {
	m.Target.encode(e)
	e.u64(m.Stream)
	e.u32(m.N)
}
func (m *Fetch) decode(d *decoder) {
	m.Target.decode(d)
	m.Stream = d.u64()
	m.N = d.u32()
}

// Entries answers a Fetch with the drawn samples, in draw order.
type Entries struct {
	// Entries are the samples; fewer than requested means the stream ran
	// short (exhaustion).
	Entries []data.Entry
}

// WireKind implements Msg.
func (*Entries) WireKind() Kind { return KindEntries }
func (m *Entries) encode(e *encoder) {
	e.u32(uint32(len(m.Entries)))
	for _, ent := range m.Entries {
		e.u64(ent.ID)
		e.vec(ent.Pos)
	}
}
func (m *Entries) decode(d *decoder) {
	n := int(d.u32())
	if !d.need(n * (8 + 8*geo.Dims)) {
		return
	}
	m.Entries = make([]data.Entry, n)
	for i := range m.Entries {
		m.Entries[i].ID = d.u64()
		m.Entries[i].Pos = d.vec()
	}
}

// Close releases an open stream.
type Close struct {
	// Target names the shard.
	Target
	// Stream is the stream to release.
	Stream uint64
}

// WireKind implements Msg.
func (*Close) WireKind() Kind      { return KindClose }
func (m *Close) encode(e *encoder) { m.Target.encode(e); e.u64(m.Stream) }
func (m *Close) decode(d *decoder) { m.Target.decode(d); m.Stream = d.u64() }

// CloseOK acknowledges a Close.
type CloseOK struct{}

// WireKind implements Msg.
func (*CloseOK) WireKind() Kind      { return KindCloseOK }
func (m *CloseOK) encode(e *encoder) {}
func (m *CloseOK) decode(d *decoder) {}

// NumAttr is one numeric attribute value of a mirrored insert.
type NumAttr struct {
	// Name is the column name; Val its value for the record.
	Name string
	Val  float64
}

// StrAttr is one string attribute value of a mirrored insert.
type StrAttr struct {
	// Name is the column name; Val its value for the record.
	Name string
	Val  string
}

// Insert mirrors one inserted record to the shard that owns its
// neighborhood. The attribute payload lets a remote shard append the row
// to its local dataset copy (IDs stay aligned because every insert is
// mirrored in order).
type Insert struct {
	// Target names the shard.
	Target
	// ID is the record's dataset-assigned id.
	ID data.ID
	// Pos is the record's (x, y, t) position.
	Pos geo.Vec
	// Num and Str carry the record's attribute values, sorted by name so
	// encoding is canonical.
	Num []NumAttr
	Str []StrAttr
}

// WireKind implements Msg.
func (*Insert) WireKind() Kind { return KindInsert }
func (m *Insert) encode(e *encoder) {
	m.Target.encode(e)
	e.u64(m.ID)
	e.vec(m.Pos)
	e.u32(uint32(len(m.Num)))
	for _, a := range m.Num {
		e.str(a.Name)
		e.f64(a.Val)
	}
	e.u32(uint32(len(m.Str)))
	for _, a := range m.Str {
		e.str(a.Name)
		e.str(a.Val)
	}
}
func (m *Insert) decode(d *decoder) {
	m.Target.decode(d)
	m.ID = d.u64()
	m.Pos = d.vec()
	n := int(d.u32())
	if !d.need(n * 12) {
		return
	}
	m.Num = make([]NumAttr, n)
	for i := range m.Num {
		m.Num[i].Name = d.str()
		m.Num[i].Val = d.f64()
	}
	n = int(d.u32())
	if !d.need(n * 8) {
		return
	}
	m.Str = make([]StrAttr, n)
	for i := range m.Str {
		m.Str[i].Name = d.str()
		m.Str[i].Val = d.str()
	}
}

// InsertOK acknowledges an Insert.
type InsertOK struct{}

// WireKind implements Msg.
func (*InsertOK) WireKind() Kind      { return KindInsertOK }
func (m *InsertOK) encode(e *encoder) {}
func (m *InsertOK) decode(d *decoder) {}

// Delete removes one record from a shard's index.
type Delete struct {
	// Target names the shard.
	Target
	// ID and Pos identify the record.
	ID  data.ID
	Pos geo.Vec
}

// WireKind implements Msg.
func (*Delete) WireKind() Kind { return KindDelete }
func (m *Delete) encode(e *encoder) {
	m.Target.encode(e)
	e.u64(m.ID)
	e.vec(m.Pos)
}
func (m *Delete) decode(d *decoder) {
	m.Target.decode(d)
	m.ID = d.u64()
	m.Pos = d.vec()
}

// DeleteOK answers a Delete.
type DeleteOK struct {
	// Found reports whether the shard held (and removed) the record.
	Found bool
}

// WireKind implements Msg.
func (*DeleteOK) WireKind() Kind      { return KindDeleteOK }
func (m *DeleteOK) encode(e *encoder) { e.b(m.Found) }
func (m *DeleteOK) decode(d *decoder) { m.Found = d.b() }

// Summary requests a shard's digest of one numeric attribute — the
// coordinator-side metadata behind degraded lost-mass bounds.
type Summary struct {
	// Target names the shard.
	Target
	// Attr is the numeric column name.
	Attr string
}

// WireKind implements Msg.
func (*Summary) WireKind() Kind      { return KindSummary }
func (m *Summary) encode(e *encoder) { m.Target.encode(e); e.str(m.Attr) }
func (m *Summary) decode(d *decoder) { m.Target.decode(d); m.Attr = d.str() }

// SummaryOK answers a Summary.
type SummaryOK struct {
	// Found reports whether the shard has a digest for the attribute.
	Found bool
	// Count/Sum/Min/Max/NonFinite mirror distr.AttrSummary.
	Count     uint64
	Sum       float64
	Min       float64
	Max       float64
	NonFinite uint64
}

// WireKind implements Msg.
func (*SummaryOK) WireKind() Kind { return KindSummaryOK }
func (m *SummaryOK) encode(e *encoder) {
	e.b(m.Found)
	e.u64(m.Count)
	e.f64(m.Sum)
	e.f64(m.Min)
	e.f64(m.Max)
	e.u64(m.NonFinite)
}
func (m *SummaryOK) decode(d *decoder) {
	m.Found = d.b()
	m.Count = d.u64()
	m.Sum = d.f64()
	m.Min = d.f64()
	m.Max = d.f64()
	m.NonFinite = d.u64()
}

// Bounds requests the bounding box of a shard's tree (insert routing).
type Bounds struct {
	// Target names the shard.
	Target
}

// WireKind implements Msg.
func (*Bounds) WireKind() Kind      { return KindBounds }
func (m *Bounds) encode(e *encoder) { m.Target.encode(e) }
func (m *Bounds) decode(d *decoder) { m.Target.decode(d) }

// BoundsOK answers a Bounds request. An empty tree encodes the ±Inf empty
// rectangle, which round-trips exactly through the IEEE bits.
type BoundsOK struct {
	// Rect is the shard tree's minimum bounding rectangle.
	Rect geo.Rect
}

// WireKind implements Msg.
func (*BoundsOK) WireKind() Kind      { return KindBoundsOK }
func (m *BoundsOK) encode(e *encoder) { e.rect(m.Rect) }
func (m *BoundsOK) decode(d *decoder) { m.Rect = d.rect() }

// Len requests a shard's live record count.
type Len struct {
	// Target names the shard.
	Target
}

// WireKind implements Msg.
func (*Len) WireKind() Kind      { return KindLen }
func (m *Len) encode(e *encoder) { m.Target.encode(e) }
func (m *Len) decode(d *decoder) { m.Target.decode(d) }

// LenOK answers a Len request.
type LenOK struct {
	// N is the shard's record count.
	N uint64
}

// WireKind implements Msg.
func (*LenOK) WireKind() Kind      { return KindLenOK }
func (m *LenOK) encode(e *encoder) { e.u64(m.N) }
func (m *LenOK) decode(d *decoder) { m.N = d.u64() }

// newMsg returns a zero message of the given kind, or nil for an unknown
// kind byte.
func newMsg(k Kind) Msg {
	switch k {
	case KindError:
		return &Error{}
	case KindPing:
		return &Ping{}
	case KindPong:
		return &Pong{}
	case KindBuild:
		return &Build{}
	case KindBuildOK:
		return &BuildOK{}
	case KindCount:
		return &Count{}
	case KindCountOK:
		return &CountOK{}
	case KindOpen:
		return &Open{}
	case KindOpenOK:
		return &OpenOK{}
	case KindFetch:
		return &Fetch{}
	case KindEntries:
		return &Entries{}
	case KindClose:
		return &Close{}
	case KindCloseOK:
		return &CloseOK{}
	case KindInsert:
		return &Insert{}
	case KindInsertOK:
		return &InsertOK{}
	case KindDelete:
		return &Delete{}
	case KindDeleteOK:
		return &DeleteOK{}
	case KindSummary:
		return &Summary{}
	case KindSummaryOK:
		return &SummaryOK{}
	case KindBounds:
		return &Bounds{}
	case KindBoundsOK:
		return &BoundsOK{}
	case KindLen:
		return &Len{}
	case KindLenOK:
		return &LenOK{}
	default:
		return nil
	}
}

// encoder appends fixed little-endian fields to a byte buffer.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) b(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *encoder) u64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) vec(v geo.Vec) {
	for i := 0; i < geo.Dims; i++ {
		e.f64(v[i])
	}
}
func (e *encoder) rect(r geo.Rect) { e.vec(r.Min); e.vec(r.Max) }

// window encodes a Window: set flag, then both bounds. Fixed-width so the
// fields travel even when unset, keeping decode∘encode the identity.
func (e *encoder) window(wn Window) { e.b(wn.Set); e.f64(wn.Lo); e.f64(wn.Hi) }

// terms encodes a predicate term list: count, then per term the attribute
// name, both bounds and both openness flags.
func (e *encoder) terms(ts []pred.Term) {
	e.u32(uint32(len(ts)))
	for _, t := range ts {
		e.str(t.Attr)
		e.f64(t.Lo)
		e.f64(t.Hi)
		e.b(t.LoOpen)
		e.b(t.HiOpen)
	}
}

// decoder reads fixed little-endian fields from a byte slice; the first
// malformed read sets err and every later read returns zero values, so
// message decode methods never bounds-panic.
type decoder struct {
	buf []byte
	off int
	err error
}

// need reports whether at least n more bytes remain, setting the error
// state otherwise. Slice decoders call it with the minimum encoded size of
// the announced element count before allocating.
func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("wire: truncated frame (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// b decodes a bool, rejecting bytes other than 0/1 so that decode∘encode
// is the identity on accepted frames (the fuzz invariant).
func (d *decoder) b() bool {
	v := d.u8()
	if v > 1 && d.err == nil {
		d.err = fmt.Errorf("wire: non-canonical bool byte %d", v)
	}
	return v != 0
}
func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
func (d *decoder) vec() geo.Vec {
	var v geo.Vec
	for i := 0; i < geo.Dims; i++ {
		v[i] = d.f64()
	}
	return v
}
func (d *decoder) rect() geo.Rect {
	var r geo.Rect
	r.Min = d.vec()
	r.Max = d.vec()
	return r
}

// window decodes a Window (see encoder.window).
func (d *decoder) window() Window {
	var wn Window
	wn.Set = d.b()
	wn.Lo = d.f64()
	wn.Hi = d.f64()
	return wn
}

// terms decodes a predicate term list. A term's minimum encoded size is 22
// bytes (name length prefix, two bounds, two flags), bounding allocation
// before the count is trusted. nil is returned for an empty list so that
// decode∘encode is the identity.
func (d *decoder) terms() []pred.Term {
	n := int(d.u32())
	if n == 0 || !d.need(n*22) {
		return nil
	}
	ts := make([]pred.Term, n)
	for i := range ts {
		ts[i].Attr = d.str()
		ts[i].Lo = d.f64()
		ts[i].Hi = d.f64()
		ts[i].LoOpen = d.b()
		ts[i].HiOpen = d.b()
	}
	return ts
}

// AppendFrame appends m's frame (length prefix, kind, payload) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, m Msg) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	e := encoder{buf: dst}
	e.u8(uint8(m.WireKind()))
	m.encode(&e)
	dst = e.buf
	n := len(dst) - start - 4
	dst[start] = byte(n)
	dst[start+1] = byte(n >> 8)
	dst[start+2] = byte(n >> 16)
	dst[start+3] = byte(n >> 24)
	return dst
}

// DecodeFrame parses one frame from the front of b, returning the message
// and the total bytes consumed. It returns an error — never panics — on
// truncated or malformed input, and rejects unknown kinds, oversized
// frames, and payloads with trailing garbage.
func DecodeFrame(b []byte) (Msg, int, error) {
	if len(b) < 5 {
		return nil, 0, fmt.Errorf("wire: frame shorter than header (%d bytes)", len(b))
	}
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n < 1 || n > MaxFrame {
		return nil, 0, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if len(b) < 4+n {
		return nil, 0, fmt.Errorf("wire: truncated frame: header says %d bytes, have %d", n, len(b)-4)
	}
	k := Kind(b[4])
	m := newMsg(k)
	if m == nil {
		return nil, 0, fmt.Errorf("wire: unknown message kind %d", uint8(k))
	}
	d := decoder{buf: b[5 : 4+n]}
	m.decode(&d)
	if d.err != nil {
		return nil, 0, d.err
	}
	if d.off != len(d.buf) {
		return nil, 0, fmt.Errorf("wire: %v frame has %d trailing payload bytes", k, len(d.buf)-d.off)
	}
	return m, 4 + n, nil
}
