package wire

import (
	"testing"
)

// FuzzWireCodec feeds arbitrary bytes to the frame decoder. Invariants:
// the decoder never panics, and any frame it accepts re-encodes to the
// exact same bytes (decode∘encode is the identity on valid frames), so a
// hostile or corrupted peer can neither crash a host nor smuggle a frame
// that means different things to different endpoints.
//
// The seed corpus in testdata/fuzz/FuzzWireCodec holds one encoded frame
// per message kind plus malformed prefixes; `make fuzz-smoke` runs this
// alongside FuzzParseFaultPlan.
func FuzzWireCodec(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(AppendFrame(nil, m))
	}
	// Malformed seeds: truncations, bad kinds, absurd lengths.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Add([]byte{1, 0, 0, 0, 0xee})
	f.Add(AppendFrame(nil, &Ping{})[:4])

	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n < 5 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendFrame(nil, m)
		if string(re) != string(b[:n]) {
			t.Fatalf("decode/encode not identity:\n in: %x\nout: %x", b[:n], re)
		}
		// A re-decoded frame must succeed and consume everything.
		m2, n2, err := DecodeFrame(re)
		if err != nil || n2 != len(re) || m2.WireKind() != m.WireKind() {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
	})
}
