package sampling

import "storm/internal/data"

// IDSet is a growable bitset over record IDs. Record IDs are dense indices
// into the dataset's columns (see package data), so a bitset gives the
// samplers' consumed-sets O(1) membership at one bit per record — the
// map[data.ID]struct{} it replaces cost ~50ns and an allocation per insert,
// which dominated the RS-tree's materialization scans (hundreds of
// thousands of lookups per large query).
//
// The zero value is ready to use. Not safe for concurrent use; every
// sampler owns its set.
type IDSet struct {
	bits []uint64
}

// NewIDSet returns a set pre-sized for IDs in [0, capacity), avoiding
// growth reallocations in the hot loop.
func NewIDSet(capacity int) *IDSet {
	if capacity < 0 {
		capacity = 0
	}
	return &IDSet{bits: make([]uint64, (capacity+63)/64)}
}

// Add inserts id, growing the set if needed.
func (s *IDSet) Add(id data.ID) {
	w := id >> 6
	if w >= uint64(len(s.bits)) {
		s.grow(w)
	}
	s.bits[w] |= 1 << (id & 63)
}

// Contains reports whether id is in the set.
func (s *IDSet) Contains(id data.ID) bool {
	w := id >> 6
	if w >= uint64(len(s.bits)) {
		return false
	}
	return s.bits[w]&(1<<(id&63)) != 0
}

// grow extends the word slice to cover word index w, doubling to amortize.
func (s *IDSet) grow(w uint64) {
	n := uint64(len(s.bits)) * 2
	if n < w+1 {
		n = w + 1
	}
	if n < 4 {
		n = 4
	}
	next := make([]uint64, n)
	copy(next, s.bits)
	s.bits = next
}
