// Package sampling defines STORM's spatial online sampling abstraction
// (Definition 1 in the paper) and implements the three baseline methods the
// paper compares against: QueryFirst, SampleFirst and Olken's RandomPath.
//
// A Sampler is a per-query object that returns uniform random samples from
// P ∩ Q one at a time, for an a-priori unknown sample count k: the consumer
// keeps calling Next until it is satisfied (accuracy target met, time
// budget exhausted, or the user cancels). The STORM indexes (packages
// lstree and rstree) implement the same interface.
//
// # Concurrency
//
// Every Sampler in this package keeps all of its mutable state (cursors,
// permutations, seen-sets, its RNG) query-local and only reads the shared
// tree or dataset, so any number of samplers may run concurrently over the
// same index as long as index mutations are serialized against them by the
// caller (package engine uses a per-dataset RWMutex). An individual
// Sampler serves one query from one goroutine.
package sampling

import (
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// Mode selects between sampling with and without replacement.
type Mode int

const (
	// WithoutReplacement returns each matching record at most once; the
	// stream is exhausted after |P ∩ Q| samples. Online aggregation over
	// without-replacement samples converges to the exact answer.
	WithoutReplacement Mode = iota
	// WithReplacement returns independent uniform samples forever (as
	// long as the range is non-empty).
	WithReplacement
)

// Sampler returns uniform random samples from a query range one at a time.
//
// Next returns ok = false when the stream is exhausted: a without-
// replacement sampler over a range with q matching records is exhausted
// after q samples; a with-replacement sampler is exhausted only when the
// range is empty.
type Sampler interface {
	Next() (e data.Entry, ok bool)
	Name() string
}

// QueryFirst is the paper's first strawman: compute P ∩ Q in full, then
// stream a random permutation of the result. Its cost is O(r(N) + q) to
// produce the first sample — the cost of a full range-reporting query —
// after which samples are free. For interactive workloads where the user
// stops after k << q samples, the up-front cost dominates.
type QueryFirst struct {
	tree    *rtree.Tree
	query   geo.Rect
	mode    Mode
	rng     *stats.RNG
	acct    iosim.Accountant
	filter  *rtree.TreeFilter
	matched []data.Entry
	fetched bool
	cursor  int
	draws   uint64
}

// NewQueryFirst returns a QueryFirst sampler over the given tree and range.
func NewQueryFirst(t *rtree.Tree, q geo.Rect, mode Mode, rng *stats.RNG) *QueryFirst {
	return NewQueryFirstWhere(t, q, mode, rng, nil)
}

// NewQueryFirstWhere returns a QueryFirst sampler whose up-front range
// report is predicate-pruned: subtrees with a None digest verdict are
// skipped and only qualifying records enter the permutation. A nil filter
// is exactly NewQueryFirst.
func NewQueryFirstWhere(t *rtree.Tree, q geo.Rect, mode Mode, rng *stats.RNG, f *rtree.TreeFilter) *QueryFirst {
	return &QueryFirst{tree: t, query: q, mode: mode, rng: rng, acct: t.Device(), filter: f}
}

// AttributeIO redirects this query's page charges to a for race-free
// per-query I/O accounting.
func (s *QueryFirst) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.acct = a
	}
}

// Name implements Sampler.
func (s *QueryFirst) Name() string { return "RangeReport" }

// Next implements Sampler.
func (s *QueryFirst) Next() (data.Entry, bool) {
	if !s.fetched {
		s.matched = s.tree.ReportAllWhereTo(s.acct, s.query, s.filter)
		s.fetched = true
	}
	n := len(s.matched)
	if n == 0 {
		return data.Entry{}, false
	}
	if s.mode == WithReplacement {
		s.draws++
		return s.matched[s.rng.Intn(n)], true
	}
	if s.cursor >= n {
		return data.Entry{}, false
	}
	// Incremental Fisher–Yates: each emitted prefix is a uniform
	// without-replacement sample.
	j := s.cursor + s.rng.Intn(n-s.cursor)
	s.matched[s.cursor], s.matched[j] = s.matched[j], s.matched[s.cursor]
	e := s.matched[s.cursor]
	s.cursor++
	s.draws++
	return e, true
}

// SamplerStats implements StatsReporter: Scans records the up-front full
// range report once it has run.
func (s *QueryFirst) SamplerStats() SamplerStats {
	st := SamplerStats{Draws: s.draws}
	if s.fetched {
		st.Scans = 1
	}
	if s.filter != nil {
		st.Pruned = s.filter.Pruned
	}
	return st
}

// SampleFirst is the paper's second strawman: draw a uniform record from
// the whole data set and keep it only if it falls inside Q. Each accepted
// sample costs O(N/q) attempts in expectation — catastrophic for selective
// queries, and it never terminates when q = 0, so the implementation gives
// up after a configurable attempt budget.
type SampleFirst struct {
	ds    *data.Dataset
	query geo.Rect
	mode  Mode
	rng   *stats.RNG
	dev   iosim.Accountant
	// perPage is how many records share a simulated data page.
	perPage int
	// MaxAttempts bounds the rejection loop per sample; when exceeded,
	// the sampler degrades to one full filtered scan (counted as an
	// explosion) and serves the remaining matching records from it
	// instead of surfacing a short stream. Defaults to 200·N attempts.
	MaxAttempts int
	// Filter, when non-nil, rejects records it declines — the engine uses
	// it to hide records deleted from the indexes, which remain in the
	// append-only columnar store SampleFirst draws from. Rejection keeps
	// the accepted stream uniform over the live matching records.
	Filter func(data.ID) bool
	// Pred, when non-nil, restricts the accepted stream to records
	// satisfying a compiled attribute predicate. SampleFirst has no index
	// to prune with, so the predicate only tightens the rejection loop —
	// this is the honest rejection baseline pushdown is compared against.
	// Must be set before the first draw.
	Pred     *pred.Compiled
	seen     *IDSet
	batch    *iosim.Batcher // reused by NextBatch; charges go to dev
	attempts uint64         // total attempts, for instrumentation
	accepted uint64         // rejection-loop accepts (excludes scan serves)
	draws    uint64         // accepted samples returned
	// Degraded-scan state: pending holds the remaining matching records,
	// permuted incrementally from cursor.
	scanned    bool
	pending    []data.Entry
	cursor     int
	explosions uint64
}

// NewSampleFirst returns a SampleFirst sampler over the raw dataset. dev
// charges a page access per inspected record (records are perPage to a
// simulated page); pass iosim.Discard to skip accounting.
func NewSampleFirst(ds *data.Dataset, q geo.Rect, mode Mode, rng *stats.RNG, dev iosim.Accountant, perPage int) *SampleFirst {
	if perPage <= 0 {
		perPage = 64
	}
	if dev == nil {
		dev = iosim.Discard
	}
	s := &SampleFirst{
		ds: ds, query: q, mode: mode, rng: rng, dev: dev, perPage: perPage,
		MaxAttempts: 200 * ds.Len(),
	}
	if mode == WithoutReplacement {
		s.seen = NewIDSet(ds.Len())
	}
	return s
}

// AttributeIO redirects this query's page charges to a for race-free
// per-query I/O accounting.
func (s *SampleFirst) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.dev = a
	}
}

// Name implements Sampler.
func (s *SampleFirst) Name() string { return "SampleFirst" }

// Attempts returns the total number of records inspected so far.
func (s *SampleFirst) Attempts() uint64 { return s.attempts }

// SamplerStats implements StatsReporter: every attempt that did not
// become a returned sample is a rejection of the whole-dataset loop;
// Explosions counts a degradation to the filtered scan, Scans the scan
// itself.
func (s *SampleFirst) SamplerStats() SamplerStats {
	st := SamplerStats{
		Draws:      s.draws,
		Rejects:    s.attempts - s.accepted,
		Explosions: s.explosions,
	}
	if s.scanned {
		st.Scans = 1
	}
	return st
}

// Next implements Sampler.
func (s *SampleFirst) Next() (data.Entry, bool) {
	n := s.ds.Len()
	if n == 0 {
		return data.Entry{}, false
	}
	if s.scanned {
		return s.scanNext()
	}
	for tries := 0; tries < s.MaxAttempts; tries++ {
		s.attempts++
		id := data.ID(s.rng.Intn(n))
		s.dev.Access(iosim.PageID(uint64(id) / uint64(s.perPage)))
		pos := s.ds.Pos(id)
		if !s.query.Contains(pos) {
			continue
		}
		if s.Pred != nil && !s.Pred.Match(id) {
			continue
		}
		if s.Filter != nil && !s.Filter(id) {
			continue
		}
		if s.mode == WithoutReplacement {
			if s.seen.Contains(id) {
				continue
			}
			s.seen.Add(id)
		}
		s.accepted++
		s.draws++
		return data.Entry{ID: id, Pos: pos}, true
	}
	return s.scanNext()
}

// scanNext degrades to the filtered-scan fallback: when the rejection loop
// exhausts its attempt budget (vanishingly selective query-and-predicate
// combinations, or a without-replacement stream near exhaustion), one full
// scan — every data page charged once — collects the still-unserved
// matching records, and subsequent draws come from them. The incremental
// Fisher–Yates over the remainder is an exact uniform continuation of the
// without-replacement stream; with-replacement draws pick uniformly from
// the matching set. This trades one O(N/B) scan for a stream that cannot
// come back short while qualifying records remain.
func (s *SampleFirst) scanNext() (data.Entry, bool) {
	if !s.scanned {
		s.scanned = true
		s.explosions++
		n := s.ds.Len()
		for p := 0; p <= (n-1)/s.perPage; p++ {
			s.dev.Access(iosim.PageID(p))
		}
		for i := 0; i < n; i++ {
			id := data.ID(i)
			pos := s.ds.Pos(id)
			if !s.query.Contains(pos) {
				continue
			}
			if s.Pred != nil && !s.Pred.Match(id) {
				continue
			}
			if s.Filter != nil && !s.Filter(id) {
				continue
			}
			if s.mode == WithoutReplacement && s.seen.Contains(id) {
				continue
			}
			s.pending = append(s.pending, data.Entry{ID: id, Pos: pos})
		}
	}
	m := len(s.pending)
	if s.mode == WithReplacement {
		if m == 0 {
			return data.Entry{}, false
		}
		s.draws++
		return s.pending[s.rng.Intn(m)], true
	}
	if s.cursor >= m {
		return data.Entry{}, false
	}
	j := s.cursor + s.rng.Intn(m-s.cursor)
	s.pending[s.cursor], s.pending[j] = s.pending[j], s.pending[s.cursor]
	e := s.pending[s.cursor]
	s.cursor++
	s.seen.Add(e.ID)
	s.draws++
	return e, true
}
