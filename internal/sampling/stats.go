package sampling

// SamplerStats is a point-in-time snapshot of a sampler's cumulative
// per-query instrumentation counters. The counters are plain (non-atomic)
// fields owned by the sampler's single goroutine — keeping the per-draw
// hot path free of atomic traffic — and consumers that need live metrics
// (package engine) diff successive snapshots at batch boundaries and
// flush the deltas into an obs.Registry.
type SamplerStats struct {
	// Draws is how many samples the sampler has returned to its consumer.
	Draws uint64
	// Rejects is how many consumed draws or attempts were discarded
	// before acceptance: out-of-range buffer draws for the RS-tree,
	// failed whole-dataset attempts for SampleFirst, failed root-to-leaf
	// walks for RandomPath, duplicate suppressions for the LS-tree.
	Rejects uint64
	// Explosions is how many frontier subtrees were materialized
	// (RS-tree only; zero elsewhere).
	Explosions uint64
	// Scans is how many full range-report scans were performed: level
	// scans for the LS-tree, the up-front report for QueryFirst, the
	// degraded filtered scan for SampleFirst.
	Scans uint64
	// Pruned is how many subtrees predicate pushdown excluded from the
	// descent (node-summary None verdicts); zero without a predicate.
	Pruned uint64
}

// StatsReporter is implemented by samplers that expose per-query
// instrumentation counters. All samplers in this package and the
// lstree/rstree index samplers implement it; consumers type-assert so
// third-party Sampler implementations remain valid without it.
type StatsReporter interface {
	SamplerStats() SamplerStats
}
