package sampling

import (
	"storm/internal/data"
	"storm/internal/iosim"
)

// BatchSampler is implemented by samplers with a batched fast path.
//
// NextBatch fills dst[:n] with the next min(k, len(dst)) samples of the
// stream and returns n; n < k means the stream is exhausted (matching
// Next's ok = false). The stream contract is strict: for any fixed seed,
// the concatenation of NextBatch results is byte-identical to the sequence
// of repeated Next calls, in any interleaving of the two. Batching only
// amortizes per-sample overheads (lock acquisitions, I/O charge
// bookkeeping, allocation) — never the draw distribution.
type BatchSampler interface {
	Sampler
	NextBatch(dst []data.Entry, k int) int
}

// NextBatch draws up to min(k, len(dst)) samples from s into dst and
// returns how many were drawn, using the sampler's batched fast path when
// it has one and falling back to repeated Next otherwise. This is the one
// call sites use, so every Sampler is batchable.
func NextBatch(s Sampler, dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	if bs, ok := s.(BatchSampler); ok {
		return bs.NextBatch(dst, k)
	}
	n := 0
	for n < k {
		e, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n
}

// reuseBatcher returns batch if it already forwards to acct, otherwise a
// fresh Batcher targeting acct. Samplers keep their Batcher across
// NextBatch calls so its run buffers are allocated once per query.
func reuseBatcher(batch *iosim.Batcher, acct iosim.Accountant) *iosim.Batcher {
	if batch != nil && batch.Target() == acct {
		return batch
	}
	return iosim.NewBatcher(acct)
}

var _ BatchSampler = (*QueryFirst)(nil)

// NextBatch implements BatchSampler. QueryFirst has no per-sample I/O to
// amortize (all I/O happens in the one up-front range report), so the fast
// path just inlines the permutation loop.
func (s *QueryFirst) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	if !s.fetched {
		s.matched = s.tree.ReportAllWhereTo(s.acct, s.query, s.filter)
		s.fetched = true
	}
	n := len(s.matched)
	if n == 0 {
		return 0
	}
	if s.mode == WithReplacement {
		for i := 0; i < k; i++ {
			dst[i] = s.matched[s.rng.Intn(n)]
		}
		return k
	}
	got := 0
	for got < k && s.cursor < n {
		j := s.cursor + s.rng.Intn(n-s.cursor)
		s.matched[s.cursor], s.matched[j] = s.matched[j], s.matched[s.cursor]
		dst[got] = s.matched[s.cursor]
		s.cursor++
		got++
	}
	return got
}

var _ BatchSampler = (*SampleFirst)(nil)

// NextBatch implements BatchSampler. The rejection loop is identical to
// Next's — same RNG consumption, so the stream matches — but page charges
// for the whole batch are coalesced into run-length batches, taking the
// device lock once per flush instead of once per inspected record.
func (s *SampleFirst) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	prev := s.dev
	s.batch = reuseBatcher(s.batch, prev)
	s.dev = s.batch
	got := 0
	for got < k {
		e, ok := s.Next()
		if !ok {
			break
		}
		dst[got] = e
		got++
	}
	s.dev = prev
	s.batch.Flush()
	return got
}

var _ BatchSampler = (*RandomPath)(nil)

// NextBatch implements BatchSampler: repeated root-to-leaf walks with the
// batch's node charges coalesced (one device lock per flush rather than
// per visited node).
func (s *RandomPath) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	prev := s.acct
	s.batch = reuseBatcher(s.batch, prev)
	s.acct = s.batch
	got := 0
	for got < k {
		e, ok := s.Next()
		if !ok {
			break
		}
		dst[got] = e
		got++
	}
	s.acct = prev
	s.batch.Flush()
	return got
}
