package sampling

import (
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// batchTestEntries builds a uniform point set over [0,100]^3.
func batchTestEntries(n int, seed int64) []data.Entry {
	rng := stats.NewRNG(seed)
	out := make([]data.Entry, n)
	for i := range out {
		out[i] = data.Entry{
			ID:  data.ID(i),
			Pos: geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)},
		}
	}
	return out
}

var batchQuery = geo.NewRect(geo.Vec{25, 25, 0}, geo.Vec{70, 70, 100})

// checkBatchEquivalence draws one stream serially and one via NextBatch
// with varying batch sizes; the two must be byte-identical.
func checkBatchEquivalence(t *testing.T, label string, mk func(seed int64) Sampler, limit int) {
	t.Helper()
	serial := func(seed int64) []data.ID {
		s := mk(seed)
		var out []data.ID
		for len(out) < limit {
			e, ok := s.Next()
			if !ok {
				break
			}
			out = append(out, e.ID)
		}
		return out
	}
	want := serial(9)
	if len(want) == 0 {
		t.Fatalf("%s: empty reference stream", label)
	}
	for _, sizes := range [][]int{{1}, {17}, {256}, {2, 99, 5}} {
		s := mk(9)
		buf := make([]data.Entry, 256)
		var got []data.ID
		for i := 0; len(got) < limit; i++ {
			k := sizes[i%len(sizes)]
			if k > limit-len(got) {
				k = limit - len(got)
			}
			n := NextBatch(s, buf, k)
			for _, e := range buf[:n] {
				got = append(got, e.ID)
			}
			if n < k {
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s sizes %v: lengths differ: %d vs %d", label, sizes, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s sizes %v: diverge at %d: %d vs %d", label, sizes, i, got[i], want[i])
			}
		}
	}
}

func TestQueryFirstBatchEquivalence(t *testing.T) {
	entries := batchTestEntries(8000, 3)
	tr := rtree.MustNew(rtree.Config{Fanout: 16})
	tr.BulkLoad(entries)
	for _, mode := range []Mode{WithoutReplacement, WithReplacement} {
		checkBatchEquivalence(t, "QueryFirst", func(seed int64) Sampler {
			return NewQueryFirst(tr, batchQuery, mode, stats.NewRNG(seed))
		}, 2000)
	}
}

func TestSampleFirstBatchEquivalence(t *testing.T) {
	entries := batchTestEntries(8000, 5)
	ds := data.NewDataset("batch-test")
	for _, e := range entries {
		ds.AppendFast(e.Pos)
	}
	dev := iosim.NewDevice(64, iosim.DefaultCostModel())
	for _, mode := range []Mode{WithoutReplacement, WithReplacement} {
		checkBatchEquivalence(t, "SampleFirst", func(seed int64) Sampler {
			return NewSampleFirst(ds, batchQuery, mode, stats.NewRNG(seed), dev, 64)
		}, 1500)
	}
}

func TestRandomPathBatchEquivalence(t *testing.T) {
	entries := batchTestEntries(8000, 7)
	tr := rtree.MustNew(rtree.Config{Fanout: 16})
	tr.BulkLoad(entries)
	for _, mode := range []Mode{WithoutReplacement, WithReplacement} {
		checkBatchEquivalence(t, "RandomPath", func(seed int64) Sampler {
			return NewRandomPath(tr, batchQuery, mode, stats.NewRNG(seed))
		}, 1500)
	}
}

// TestBatchedChargesMatchSerial verifies that the batched fast path charges
// exactly the I/O the serial path does — the device totals after a batched
// stream must equal the totals after the same serial stream.
func TestBatchedChargesMatchSerial(t *testing.T) {
	entries := batchTestEntries(8000, 11)

	run := func(batched bool) iosim.Stats {
		dev := iosim.NewDevice(32, iosim.DefaultCostModel())
		tr := rtree.MustNew(rtree.Config{Fanout: 16, Device: dev})
		tr.BulkLoad(entries)
		dev.DropCache()
		dev.ResetStats()
		s := NewRandomPath(tr, batchQuery, WithoutReplacement, stats.NewRNG(13))
		if batched {
			buf := make([]data.Entry, 128)
			for drawn := 0; drawn < 1000; {
				k := 128
				if k > 1000-drawn {
					k = 1000 - drawn
				}
				n := s.NextBatch(buf, k)
				if n == 0 {
					break
				}
				drawn += n
			}
		} else {
			for drawn := 0; drawn < 1000; drawn++ {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
		return dev.Stats()
	}

	serial, batch := run(false), run(true)
	if serial != batch {
		t.Errorf("I/O accounting diverges:\n  serial  %v\n  batched %v", serial, batch)
	}
}
