package sampling

import (
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// RandomPath adapts Olken's random-path sampling to R-trees with subtree
// counts, the method the paper cites as the best prior art. Each sample is
// obtained by one or more random root-to-leaf walks:
//
//  1. At an internal node, pick a Q-intersecting child with probability
//     proportional to its subtree count, accumulating the correction factor
//     W(u)/count(child-universe) along the way.
//  2. At the leaf, pick an entry uniformly.
//  3. Accept the walk with the accumulated correction probability and only
//     if the entry actually lies inside Q; otherwise restart.
//
// The acceptance/rejection correction makes the accepted samples exactly
// uniform on P ∩ Q even though different root-to-leaf paths have different
// branching normalizers. Each walk touches O(log N) nodes; k samples touch
// Ω(k) distinct leaf pages, which is why the method loses badly to the
// LS/RS-trees on disk-resident data (paper Figure 3a).
//
// With a predicate filter attached (NewRandomPathWhere), children whose
// attribute digests rule the predicate out are excluded from the descent
// alongside the non-Q-intersecting ones, and the correction factor is
// accumulated over the surviving weight: the same telescoping argument
// makes every accepted walk land on each reachable entry with identical
// probability 1/W_elig(root), and pruned subtrees hold no qualifying
// records, so the leaf-level predicate check keeps the accepted stream
// exactly uniform over the qualifying records.
type RandomPath struct {
	tree   *rtree.Tree
	query  geo.Rect
	mode   Mode
	rng    *stats.RNG
	acct   iosim.Accountant
	filter *rtree.TreeFilter
	elig   []*rtree.Node  // per-node scratch: eligible children of the walk
	batch  *iosim.Batcher // reused by NextBatch; charges go to acct
	seen   *IDSet
	// remaining is the exact number of matching records left to emit in
	// without-replacement mode; -1 until first computed.
	remaining int
	// MaxWalks bounds the number of restart attempts per sample.
	MaxWalks int
	walks    uint64
	draws    uint64
}

// NewRandomPath returns a RandomPath sampler over the tree and range.
func NewRandomPath(t *rtree.Tree, q geo.Rect, mode Mode, rng *stats.RNG) *RandomPath {
	return NewRandomPathWhere(t, q, mode, rng, nil)
}

// NewRandomPathWhere returns a RandomPath sampler that additionally prunes
// by attribute predicate: subtrees with a None digest verdict are excluded
// from the weighted descent and leaf picks failing the predicate are
// rejected, so accepted samples are uniform over the qualifying records. A
// nil filter is exactly NewRandomPath.
func NewRandomPathWhere(t *rtree.Tree, q geo.Rect, mode Mode, rng *stats.RNG, f *rtree.TreeFilter) *RandomPath {
	s := &RandomPath{
		tree: t, query: q, mode: mode, rng: rng, acct: t.Device(),
		filter:    f,
		remaining: -1,
		MaxWalks:  1 << 22,
	}
	if mode == WithoutReplacement {
		s.seen = NewIDSet(t.Len())
	}
	return s
}

// AttributeIO redirects this query's page charges to a for race-free
// per-query I/O accounting.
func (s *RandomPath) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.acct = a
	}
}

// Name implements Sampler.
func (s *RandomPath) Name() string { return "RandomPath" }

// Walks returns the total number of root-to-leaf walks performed.
func (s *RandomPath) Walks() uint64 { return s.walks }

// SamplerStats implements StatsReporter: every walk that did not return a
// sample (rejected descent, duplicate in without-replacement mode) counts
// as a rejection.
func (s *RandomPath) SamplerStats() SamplerStats {
	st := SamplerStats{Draws: s.draws, Rejects: s.walks - s.draws}
	if s.filter != nil {
		st.Pruned = s.filter.Pruned
	}
	return st
}

// Next implements Sampler.
func (s *RandomPath) Next() (data.Entry, bool) {
	if s.mode == WithoutReplacement {
		if s.remaining < 0 {
			s.remaining = s.tree.CountWhere(s.query, s.filter)
		}
		if s.remaining == 0 {
			return data.Entry{}, false
		}
	}
	for tries := 0; tries < s.MaxWalks; tries++ {
		s.walks++
		e, ok := s.walk()
		if !ok {
			continue
		}
		if s.mode == WithoutReplacement {
			if s.seen.Contains(e.ID) {
				continue
			}
			s.seen.Add(e.ID)
			s.remaining--
		}
		s.draws++
		return e, true
	}
	return data.Entry{}, false
}

// walk performs one random root-to-leaf descent; ok is false on rejection.
func (s *RandomPath) walk() (data.Entry, bool) {
	n := s.tree.Root()
	s.acct.Access(n.PageID())
	if n.Count() == 0 {
		return data.Entry{}, false
	}
	accept := 1.0
	first := true
	for !n.IsLeaf() {
		// Weight the eligible children by subtree count: Q-intersecting
		// and, with a predicate attached, not provably disqualified by
		// the child's attribute digests (pruned subtrees hold zero
		// qualifying records, so excluding them loses no mass).
		s.elig = s.elig[:0]
		var total int
		for _, c := range n.Children() {
			if !c.MBR().Intersects(s.query) {
				continue
			}
			if s.filter.Verdict(c) == pred.None {
				continue
			}
			s.elig = append(s.elig, c)
			total += c.Count()
		}
		if total == 0 {
			return data.Entry{}, false
		}
		if !first {
			// Correction factor: the probability of accepting this
			// node's branch so the overall sample is uniform. The
			// root level contributes only the constant 1/W_0 shared
			// by every path, so it is skipped.
			accept *= float64(total) / float64(n.Count())
		}
		first = false
		pick := s.rng.Intn(total)
		var next *rtree.Node
		for _, c := range s.elig {
			if pick < c.Count() {
				next = c
				break
			}
			pick -= c.Count()
		}
		n = next
		s.acct.Access(n.PageID())
	}
	entries := n.Entries()
	if len(entries) == 0 {
		return data.Entry{}, false
	}
	e := entries[s.rng.Intn(len(entries))]
	if !s.query.Contains(e.Pos) {
		return data.Entry{}, false
	}
	if !s.filter.Match(e.ID) {
		return data.Entry{}, false
	}
	if accept < 1 && s.rng.Float64() >= accept {
		return data.Entry{}, false
	}
	return e, true
}
