package sampling

import (
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// RandomPath adapts Olken's random-path sampling to R-trees with subtree
// counts, the method the paper cites as the best prior art. Each sample is
// obtained by one or more random root-to-leaf walks:
//
//  1. At an internal node, pick a Q-intersecting child with probability
//     proportional to its subtree count, accumulating the correction factor
//     W(u)/count(child-universe) along the way.
//  2. At the leaf, pick an entry uniformly.
//  3. Accept the walk with the accumulated correction probability and only
//     if the entry actually lies inside Q; otherwise restart.
//
// The acceptance/rejection correction makes the accepted samples exactly
// uniform on P ∩ Q even though different root-to-leaf paths have different
// branching normalizers. Each walk touches O(log N) nodes; k samples touch
// Ω(k) distinct leaf pages, which is why the method loses badly to the
// LS/RS-trees on disk-resident data (paper Figure 3a).
type RandomPath struct {
	tree  *rtree.Tree
	query geo.Rect
	mode  Mode
	rng   *stats.RNG
	acct  iosim.Accountant
	batch *iosim.Batcher // reused by NextBatch; charges go to acct
	seen  *IDSet
	// remaining is the exact number of matching records left to emit in
	// without-replacement mode; -1 until first computed.
	remaining int
	// MaxWalks bounds the number of restart attempts per sample.
	MaxWalks int
	walks    uint64
	draws    uint64
}

// NewRandomPath returns a RandomPath sampler over the tree and range.
func NewRandomPath(t *rtree.Tree, q geo.Rect, mode Mode, rng *stats.RNG) *RandomPath {
	s := &RandomPath{
		tree: t, query: q, mode: mode, rng: rng, acct: t.Device(),
		remaining: -1,
		MaxWalks:  1 << 22,
	}
	if mode == WithoutReplacement {
		s.seen = NewIDSet(t.Len())
	}
	return s
}

// AttributeIO redirects this query's page charges to a for race-free
// per-query I/O accounting.
func (s *RandomPath) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.acct = a
	}
}

// Name implements Sampler.
func (s *RandomPath) Name() string { return "RandomPath" }

// Walks returns the total number of root-to-leaf walks performed.
func (s *RandomPath) Walks() uint64 { return s.walks }

// SamplerStats implements StatsReporter: every walk that did not return a
// sample (rejected descent, duplicate in without-replacement mode) counts
// as a rejection.
func (s *RandomPath) SamplerStats() SamplerStats {
	return SamplerStats{Draws: s.draws, Rejects: s.walks - s.draws}
}

// Next implements Sampler.
func (s *RandomPath) Next() (data.Entry, bool) {
	if s.mode == WithoutReplacement {
		if s.remaining < 0 {
			s.remaining = s.tree.Count(s.query)
		}
		if s.remaining == 0 {
			return data.Entry{}, false
		}
	}
	for tries := 0; tries < s.MaxWalks; tries++ {
		s.walks++
		e, ok := s.walk()
		if !ok {
			continue
		}
		if s.mode == WithoutReplacement {
			if s.seen.Contains(e.ID) {
				continue
			}
			s.seen.Add(e.ID)
			s.remaining--
		}
		s.draws++
		return e, true
	}
	return data.Entry{}, false
}

// walk performs one random root-to-leaf descent; ok is false on rejection.
func (s *RandomPath) walk() (data.Entry, bool) {
	n := s.tree.Root()
	s.acct.Access(n.PageID())
	if n.Count() == 0 {
		return data.Entry{}, false
	}
	accept := 1.0
	first := true
	for !n.IsLeaf() {
		// Weight the Q-intersecting children by subtree count.
		var total int
		for _, c := range n.Children() {
			if c.MBR().Intersects(s.query) {
				total += c.Count()
			}
		}
		if total == 0 {
			return data.Entry{}, false
		}
		if !first {
			// Correction factor: the probability of accepting this
			// node's branch so the overall sample is uniform. The
			// root level contributes only the constant 1/W_0 shared
			// by every path, so it is skipped.
			accept *= float64(total) / float64(n.Count())
		}
		first = false
		pick := s.rng.Intn(total)
		var next *rtree.Node
		for _, c := range n.Children() {
			if !c.MBR().Intersects(s.query) {
				continue
			}
			if pick < c.Count() {
				next = c
				break
			}
			pick -= c.Count()
		}
		n = next
		s.acct.Access(n.PageID())
	}
	entries := n.Entries()
	if len(entries) == 0 {
		return data.Entry{}, false
	}
	e := entries[s.rng.Intn(len(entries))]
	if !s.query.Contains(e.Pos) {
		return data.Entry{}, false
	}
	if accept < 1 && s.rng.Float64() >= accept {
		return data.Entry{}, false
	}
	return e, true
}
