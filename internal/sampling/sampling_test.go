package sampling

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// fixture builds a dataset + tree with a known query range.
type fixture struct {
	ds      *data.Dataset
	entries []data.Entry
	tree    *rtree.Tree
	query   geo.Rect
	inQuery map[data.ID]bool
	q       int
}

func newFixture(t testing.TB, n int, seed int64) *fixture {
	t.Helper()
	rng := stats.NewRNG(seed)
	ds := data.NewDataset("test")
	for i := 0; i < n; i++ {
		ds.AppendFast(geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)})
	}
	entries := ds.Entries()
	tree := rtree.MustNew(rtree.Config{Fanout: 16})
	tree.BulkLoad(entries)
	query := geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})
	f := &fixture{ds: ds, entries: entries, tree: tree, query: query,
		inQuery: make(map[data.ID]bool)}
	for _, e := range entries {
		if query.Contains(e.Pos) {
			f.inQuery[e.ID] = true
		}
	}
	f.q = len(f.inQuery)
	return f
}

// drainAll pulls every sample from a without-replacement sampler.
func drainAll(s Sampler, limit int) []data.Entry {
	var out []data.Entry
	for len(out) < limit {
		e, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// checkWithoutReplacement asserts the stream equals P ∩ Q exactly once each.
func checkWithoutReplacement(t *testing.T, f *fixture, s Sampler) {
	t.Helper()
	got := drainAll(s, f.q+10)
	if len(got) != f.q {
		t.Fatalf("%s: drained %d samples, want exactly q=%d", s.Name(), len(got), f.q)
	}
	seen := make(map[data.ID]bool)
	for _, e := range got {
		if !f.inQuery[e.ID] {
			t.Fatalf("%s: sample %d outside query", s.Name(), e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("%s: duplicate sample %d", s.Name(), e.ID)
		}
		seen[e.ID] = true
	}
}

// checkUniformFirstSample runs many independent samplers and chi-square
// tests the distribution of the first sample over the matching records.
func checkUniformFirstSample(t *testing.T, f *fixture, mk func(seed int64) Sampler) {
	t.Helper()
	counts := make(map[data.ID]int)
	const trials = 30000
	for i := 0; i < trials; i++ {
		s := mk(int64(1000 + i))
		e, ok := s.Next()
		if !ok {
			t.Fatal("sampler empty on first draw")
		}
		if !f.inQuery[e.ID] {
			t.Fatalf("first sample %d outside query", e.ID)
		}
		counts[e.ID]++
	}
	obs := make([]int, 0, f.q)
	exp := make([]float64, 0, f.q)
	for id := range f.inQuery {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)/float64(f.q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	// 99.9% critical value: deterministic seeds keep this stable.
	crit := stats.ChiSquareQuantile(0.999, f.q-1)
	if stat > crit {
		t.Errorf("first-sample chi-square %v exceeds crit %v (df=%d): not uniform", stat, crit, f.q-1)
	}
}

func TestQueryFirstWithoutReplacement(t *testing.T) {
	f := newFixture(t, 2000, 1)
	s := NewQueryFirst(f.tree, f.query, WithoutReplacement, stats.NewRNG(42))
	checkWithoutReplacement(t, f, s)
}

func TestQueryFirstUniform(t *testing.T) {
	f := newFixture(t, 300, 2)
	checkUniformFirstSample(t, f, func(seed int64) Sampler {
		return NewQueryFirst(f.tree, f.query, WithoutReplacement, stats.NewRNG(seed))
	})
}

func TestQueryFirstWithReplacementNeverExhausts(t *testing.T) {
	f := newFixture(t, 500, 3)
	s := NewQueryFirst(f.tree, f.query, WithReplacement, stats.NewRNG(7))
	got := drainAll(s, f.q*3)
	if len(got) != f.q*3 {
		t.Fatalf("with-replacement stream ended after %d", len(got))
	}
}

func TestQueryFirstEmptyRange(t *testing.T) {
	f := newFixture(t, 500, 4)
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	for _, mode := range []Mode{WithoutReplacement, WithReplacement} {
		s := NewQueryFirst(f.tree, empty, mode, stats.NewRNG(1))
		if _, ok := s.Next(); ok {
			t.Error("empty range should yield no samples")
		}
	}
}

func TestSampleFirstWithoutReplacement(t *testing.T) {
	f := newFixture(t, 2000, 5)
	s := NewSampleFirst(f.ds, f.query, WithoutReplacement, stats.NewRNG(42), iosim.Discard, 64)
	checkWithoutReplacement(t, f, s)
}

func TestSampleFirstUniform(t *testing.T) {
	f := newFixture(t, 300, 6)
	checkUniformFirstSample(t, f, func(seed int64) Sampler {
		return NewSampleFirst(f.ds, f.query, WithReplacement, stats.NewRNG(seed), iosim.Discard, 64)
	})
}

func TestSampleFirstEmptyRangeTerminates(t *testing.T) {
	f := newFixture(t, 500, 7)
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	s := NewSampleFirst(f.ds, empty, WithReplacement, stats.NewRNG(1), iosim.Discard, 64)
	s.MaxAttempts = 10000
	if _, ok := s.Next(); ok {
		t.Fatal("empty range should exhaust via MaxAttempts")
	}
	if s.Attempts() != 10000 {
		t.Errorf("attempts = %d, want 10000", s.Attempts())
	}
}

func TestSampleFirstEmptyDataset(t *testing.T) {
	ds := data.NewDataset("empty")
	q := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1, 1, 1})
	s := NewSampleFirst(ds, q, WithReplacement, stats.NewRNG(1), iosim.Discard, 64)
	if _, ok := s.Next(); ok {
		t.Fatal("empty dataset should yield nothing")
	}
}

func TestRandomPathWithoutReplacement(t *testing.T) {
	f := newFixture(t, 2000, 8)
	s := NewRandomPath(f.tree, f.query, WithoutReplacement, stats.NewRNG(42))
	checkWithoutReplacement(t, f, s)
}

func TestRandomPathUniform(t *testing.T) {
	f := newFixture(t, 300, 9)
	checkUniformFirstSample(t, f, func(seed int64) Sampler {
		return NewRandomPath(f.tree, f.query, WithReplacement, stats.NewRNG(seed))
	})
}

// TestRandomPathUniformSkewed stresses the acceptance/rejection correction:
// a heavily skewed point distribution means root-to-leaf paths have very
// different branching normalizers, which an uncorrected count-weighted walk
// would bias toward dense regions clipped by the query boundary.
func TestRandomPathUniformSkewed(t *testing.T) {
	rng := stats.NewRNG(77)
	ds := data.NewDataset("skew")
	// Dense cluster near the query's edge plus sparse uniform points.
	for i := 0; i < 600; i++ {
		if i < 500 {
			ds.AppendFast(geo.Vec{19 + rng.Uniform(0, 2), 19 + rng.Uniform(0, 2), rng.Uniform(0, 100)})
		} else {
			ds.AppendFast(geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)})
		}
	}
	entries := ds.Entries()
	tree := rtree.MustNew(rtree.Config{Fanout: 8})
	tree.BulkLoad(entries)
	query := geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})
	f := &fixture{ds: ds, entries: entries, tree: tree, query: query, inQuery: map[data.ID]bool{}}
	for _, e := range entries {
		if query.Contains(e.Pos) {
			f.inQuery[e.ID] = true
		}
	}
	f.q = len(f.inQuery)
	if f.q < 20 {
		t.Fatalf("fixture degenerate: q=%d", f.q)
	}
	checkUniformFirstSample(t, f, func(seed int64) Sampler {
		return NewRandomPath(f.tree, f.query, WithReplacement, stats.NewRNG(seed))
	})
}

func TestRandomPathEmptyRange(t *testing.T) {
	f := newFixture(t, 500, 10)
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	s := NewRandomPath(f.tree, empty, WithoutReplacement, stats.NewRNG(1))
	if _, ok := s.Next(); ok {
		t.Fatal("empty range should yield nothing")
	}
}

// TestSamplerMeansAgree feeds each sampler's output into a mean and checks
// all agree with the true mean — an end-to-end unbiasedness smoke test.
func TestSamplerMeansAgree(t *testing.T) {
	f := newFixture(t, 5000, 11)
	trueMean := 0.0
	for id := range f.inQuery {
		trueMean += f.ds.Pos(id).X()
	}
	trueMean /= float64(f.q)

	mks := []func() Sampler{
		func() Sampler { return NewQueryFirst(f.tree, f.query, WithoutReplacement, stats.NewRNG(1)) },
		func() Sampler {
			return NewSampleFirst(f.ds, f.query, WithoutReplacement, stats.NewRNG(2), iosim.Discard, 64)
		},
		func() Sampler { return NewRandomPath(f.tree, f.query, WithoutReplacement, stats.NewRNG(3)) },
	}
	for _, mk := range mks {
		s := mk()
		var sum float64
		k := f.q / 2
		for i := 0; i < k; i++ {
			e, ok := s.Next()
			if !ok {
				t.Fatalf("%s exhausted early", s.Name())
			}
			sum += e.Pos.X()
		}
		got := sum / float64(k)
		if math.Abs(got-trueMean) > 2.5 { // x in [20,60], stddev ~11.5, se ~0.4
			t.Errorf("%s: sample mean %v too far from true %v", s.Name(), got, trueMean)
		}
	}
}

func TestSampleFirstChargesIO(t *testing.T) {
	f := newFixture(t, 2000, 12)
	dev := iosim.NewDevice(0, iosim.DefaultCostModel())
	s := NewSampleFirst(f.ds, f.query, WithReplacement, stats.NewRNG(5), dev, 64)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	if dev.Stats().Logical == 0 {
		t.Error("SampleFirst should charge page accesses")
	}
	if dev.Stats().Logical < 100 {
		t.Error("each attempt should charge at least one access")
	}
}
