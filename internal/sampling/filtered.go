package sampling

import (
	"storm/internal/data"
	"storm/internal/iosim"
	"storm/internal/pred"
)

// Filtered is the rejection baseline for attribute predicates: it wraps any
// inner Sampler and discards draws that fail a compiled predicate. The
// inner stream is uniform over P ∩ Q, so the accepted stream is uniform
// over the qualifying records — at the cost of 1/selectivity inner draws
// per accepted sample. The planner picks this strategy for high-selectivity
// predicates where pruned descent cannot beat plain sampling; pushdown is
// the alternative for selective ones.
//
// Rejections are counted in the wrapper and surface through SamplerStats
// (merged with the inner sampler's counters), feeding the engine's
// reject_ratio. Filtered forwards AttributeIO and Close to the inner
// sampler when it supports them.
type Filtered struct {
	inner Sampler
	pred  *pred.Compiled
	// MaxAttempts bounds consecutive rejected inner draws per Next call so
	// a with-replacement inner stream (infinite by contract) cannot spin
	// forever on a predicate with no qualifying records. Defaults to 2²².
	MaxAttempts int
	draws       uint64
	rejects     uint64
	buf         []data.Entry // scratch for NextBatch
}

// NewFiltered wraps inner so only records matching c are emitted. c must be
// non-nil; use the inner sampler directly when there is no predicate.
func NewFiltered(inner Sampler, c *pred.Compiled) *Filtered {
	return &Filtered{inner: inner, pred: c, MaxAttempts: 1 << 22}
}

// Name implements Sampler.
func (s *Filtered) Name() string { return s.inner.Name() + "+reject" }

// AttributeIO forwards per-query I/O attribution to the inner sampler.
func (s *Filtered) AttributeIO(a iosim.Accountant) {
	if x, ok := s.inner.(interface{ AttributeIO(iosim.Accountant) }); ok {
		x.AttributeIO(a)
	}
}

// Close releases the inner sampler's resources when it holds any.
func (s *Filtered) Close() error {
	if c, ok := s.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Next implements Sampler.
func (s *Filtered) Next() (data.Entry, bool) {
	for tries := 0; s.MaxAttempts <= 0 || tries < s.MaxAttempts; tries++ {
		e, ok := s.inner.Next()
		if !ok {
			return data.Entry{}, false
		}
		if s.pred.Match(e.ID) {
			s.draws++
			return e, true
		}
		s.rejects++
	}
	return data.Entry{}, false
}

var _ BatchSampler = (*Filtered)(nil)

// NextBatch implements BatchSampler: inner batches are pulled through the
// inner sampler's own fast path and filtered into dst. The inner stream's
// byte-identity contract plus deterministic filtering keeps the emitted
// sequence identical to repeated Next calls.
func (s *Filtered) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	if cap(s.buf) < k {
		s.buf = make([]data.Entry, k)
	}
	got, attempts := 0, 0
	for got < k {
		want := k - got
		n := NextBatch(s.inner, s.buf[:want], want)
		for _, e := range s.buf[:n] {
			if s.pred.Match(e.ID) {
				dst[got] = e
				got++
				s.draws++
			} else {
				s.rejects++
			}
		}
		if n < want {
			break // inner stream exhausted
		}
		attempts += want
		if s.MaxAttempts > 0 && attempts >= s.MaxAttempts {
			break
		}
	}
	return got
}

// SamplerStats implements StatsReporter, merging the inner sampler's
// counters (when it reports any) with the wrapper's rejections. Draws stay
// the inner sampler's — reject_ratio then reads "rejections per inner
// draw", which is exactly the rejection-sampling overhead.
func (s *Filtered) SamplerStats() SamplerStats {
	var st SamplerStats
	if r, ok := s.inner.(StatsReporter); ok {
		st = r.SamplerStats()
	}
	st.Rejects += s.rejects
	return st
}

// Accepted returns how many samples passed the predicate.
func (s *Filtered) Accepted() uint64 { return s.draws }
