// Package geo provides the geometric primitives used throughout STORM:
// spatio-temporal points, minimum bounding rectangles (MBRs) and range
// predicates in up to three dimensions (x, y, t).
//
// STORM treats time as a third coordinate so that a single index structure
// can answer spatio-temporal range queries. Pure-spatial data sets simply
// leave the temporal coordinate at zero and issue queries whose temporal
// extent covers everything.
package geo

import (
	"fmt"
	"math"
)

// Dims is the number of coordinate dimensions STORM indexes: x, y and t.
const Dims = 3

// Vec is a point in the (x, y, t) coordinate space. The temporal axis is
// stored as a float64 (seconds since an arbitrary epoch) so that a single
// arithmetic path covers all three dimensions.
type Vec [Dims]float64

// X returns the first spatial coordinate.
func (v Vec) X() float64 { return v[0] }

// Y returns the second spatial coordinate.
func (v Vec) Y() float64 { return v[1] }

// T returns the temporal coordinate.
func (v Vec) T() float64 { return v[2] }

// Add returns v + o component-wise.
func (v Vec) Add(o Vec) Vec {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o component-wise.
func (v Vec) Sub(o Vec) Vec {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v scaled by s in every dimension.
func (v Vec) Scale(s float64) Vec {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Dist2D returns the Euclidean distance between the spatial (x, y)
// projections of v and o, ignoring time. Spatial analytics such as KDE and
// clustering use spatial distance only.
func (v Vec) Dist2D(o Vec) float64 {
	dx := v[0] - o[0]
	dy := v[1] - o[1]
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist returns the full Euclidean distance in all three dimensions.
func (v Vec) Dist(o Vec) float64 {
	var s float64
	for i := range v {
		d := v[i] - o[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// String implements fmt.Stringer.
func (v Vec) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v[0], v[1], v[2])
}

// Rect is a closed axis-aligned box [Min, Max] in (x, y, t) space. It is the
// MBR type used by every index structure. The zero value is the empty
// rectangle (see EmptyRect); use NewRect or RectFromPoint to build one.
type Rect struct {
	Min, Max Vec
}

// EmptyRect returns the identity element for Extend: a rectangle that
// contains nothing and extends to whatever it is merged with.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{
		Min: Vec{inf, inf, inf},
		Max: Vec{-inf, -inf, -inf},
	}
}

// NewRect returns the rectangle spanning min and max. It panics if any
// min coordinate exceeds the corresponding max coordinate, because a
// malformed MBR silently corrupts every index built over it.
func NewRect(min, max Vec) Rect {
	for i := 0; i < Dims; i++ {
		if min[i] > max[i] {
			panic(fmt.Sprintf("geo: invalid rect: min[%d]=%v > max[%d]=%v", i, min[i], i, max[i]))
		}
	}
	return Rect{Min: min, Max: max}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Vec) Rect {
	return Rect{Min: p, Max: p}
}

// IsEmpty reports whether r contains no points (Min > Max on any axis).
func (r Rect) IsEmpty() bool {
	for i := 0; i < Dims; i++ {
		if r.Min[i] > r.Max[i] {
			return true
		}
	}
	return false
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Vec) bool {
	for i := 0; i < Dims; i++ {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o is entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := 0; i < Dims; i++ {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	for i := 0; i < Dims; i++ {
		if r.Min[i] > o.Max[i] || r.Max[i] < o.Min[i] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of r and o; the result is empty when the
// rectangles do not intersect.
func (r Rect) Intersect(o Rect) Rect {
	var out Rect
	for i := 0; i < Dims; i++ {
		out.Min[i] = math.Max(r.Min[i], o.Min[i])
		out.Max[i] = math.Min(r.Max[i], o.Max[i])
	}
	return out
}

// Extend returns the smallest rectangle covering both r and o.
func (r Rect) Extend(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	var out Rect
	for i := 0; i < Dims; i++ {
		out.Min[i] = math.Min(r.Min[i], o.Min[i])
		out.Max[i] = math.Max(r.Max[i], o.Max[i])
	}
	return out
}

// ExtendPoint returns the smallest rectangle covering r and p.
func (r Rect) ExtendPoint(p Vec) Rect {
	return r.Extend(RectFromPoint(p))
}

// Volume returns the d-dimensional volume of r, or zero if r is empty.
// Degenerate axes (Min == Max) contribute a factor of zero, so callers that
// need a tie-breaking measure should prefer Margin.
func (r Rect) Volume() float64 {
	if r.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := 0; i < Dims; i++ {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Margin returns the sum of edge lengths of r (the R*-tree "margin"
// heuristic), or zero for an empty rectangle.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	var m float64
	for i := 0; i < Dims; i++ {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Center returns the midpoint of r.
func (r Rect) Center() Vec {
	var c Vec
	for i := 0; i < Dims; i++ {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Enlargement returns how much r's volume grows when extended to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Extend(o).Volume() - r.Volume()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

// Range is a user-facing spatio-temporal query range: a spatial rectangle
// combined with a temporal interval. Convert to the internal Rect
// representation with Rect().
type Range struct {
	MinX, MinY float64
	MaxX, MaxY float64
	MinT, MaxT float64
}

// UniverseRange returns a range covering all representable points.
func UniverseRange() Range {
	inf := math.Inf(1)
	return Range{MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf, MinT: -inf, MaxT: inf}
}

// SpatialRange returns a range over the given spatial box and all of time.
func SpatialRange(minX, minY, maxX, maxY float64) Range {
	inf := math.Inf(1)
	return Range{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY, MinT: -inf, MaxT: inf}
}

// Rect converts the range to the internal 3-D rectangle.
func (q Range) Rect() Rect {
	return Rect{
		Min: Vec{q.MinX, q.MinY, q.MinT},
		Max: Vec{q.MaxX, q.MaxY, q.MaxT},
	}
}

// Valid reports whether the range is well-formed (min <= max on all axes,
// no NaNs).
func (q Range) Valid() bool {
	if q.MinX > q.MaxX || q.MinY > q.MaxY || q.MinT > q.MaxT {
		return false
	}
	for _, v := range []float64{q.MinX, q.MinY, q.MaxX, q.MaxY, q.MinT, q.MaxT} {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}
