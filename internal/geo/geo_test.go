package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := NewRect(Vec{0, 0, 0}, Vec{10, 10, 10})
	cases := []struct {
		p    Vec
		want bool
	}{
		{Vec{5, 5, 5}, true},
		{Vec{0, 0, 0}, true},    // min boundary inclusive
		{Vec{10, 10, 10}, true}, // max boundary inclusive
		{Vec{-0.001, 5, 5}, false},
		{Vec{5, 10.001, 5}, false},
		{Vec{5, 5, -1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Vec{0, 0, 0}, Vec{5, 5, 5})
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(Vec{4, 4, 4}, Vec{8, 8, 8}), true},
		{NewRect(Vec{5, 5, 5}, Vec{9, 9, 9}), true}, // touching corner counts
		{NewRect(Vec{6, 0, 0}, Vec{9, 5, 5}), false},
		{NewRect(Vec{0, 0, 5.1}, Vec{5, 5, 9}), false},
		{NewRect(Vec{1, 1, 1}, Vec{2, 2, 2}), true}, // contained
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Contains(Vec{0, 0, 0}) {
		t.Error("empty rect should contain nothing")
	}
	if e.Volume() != 0 || e.Margin() != 0 {
		t.Error("empty rect should have zero volume and margin")
	}
	r := NewRect(Vec{1, 2, 3}, Vec{4, 5, 6})
	if got := e.Extend(r); got != r {
		t.Errorf("Extend from empty = %v, want %v", got, r)
	}
	if got := r.Extend(e); got != r {
		t.Errorf("Extend with empty = %v, want %v", got, r)
	}
}

func TestExtendAndVolume(t *testing.T) {
	a := NewRect(Vec{0, 0, 0}, Vec{1, 1, 1})
	b := NewRect(Vec{2, 2, 2}, Vec{3, 4, 5})
	u := a.Extend(b)
	want := NewRect(Vec{0, 0, 0}, Vec{3, 4, 5})
	if u != want {
		t.Fatalf("Extend = %v, want %v", u, want)
	}
	if got := u.Volume(); got != 3*4*5 {
		t.Errorf("Volume = %v, want 60", got)
	}
	if got := u.Margin(); got != 3+4+5 {
		t.Errorf("Margin = %v, want 12", got)
	}
}

func TestIntersect(t *testing.T) {
	a := NewRect(Vec{0, 0, 0}, Vec{5, 5, 5})
	b := NewRect(Vec{3, 3, 3}, Vec{8, 8, 8})
	got := a.Intersect(b)
	want := NewRect(Vec{3, 3, 3}, Vec{5, 5, 5})
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := NewRect(Vec{9, 9, 9}, Vec{10, 10, 10})
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := NewRect(Vec{0, 0, 0}, Vec{2, 2, 2})
	if got := a.Enlargement(a); got != 0 {
		t.Errorf("self-enlargement = %v, want 0", got)
	}
	b := NewRect(Vec{0, 0, 0}, Vec{4, 2, 2})
	if got := a.Enlargement(b); got != 8 {
		t.Errorf("Enlargement = %v, want 8", got)
	}
}

func TestNewRectPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with min > max should panic")
		}
	}()
	NewRect(Vec{1, 0, 0}, Vec{0, 1, 1})
}

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	if v.X() != 1 || v.Y() != 2 || v.T() != 3 {
		t.Error("accessors wrong")
	}
	if got := v.Add(Vec{1, 1, 1}); got != (Vec{2, 3, 4}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(Vec{1, 1, 1}); got != (Vec{0, 1, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vec{0, 0, 0}).Dist2D(Vec{3, 4, 100}); got != 5 {
		t.Errorf("Dist2D = %v, want 5 (time ignored)", got)
	}
	if got := (Vec{0, 0, 0}).Dist(Vec{2, 3, 6}); got != 7 {
		t.Errorf("Dist = %v, want 7", got)
	}
}

func TestRange(t *testing.T) {
	q := Range{MinX: 0, MinY: 1, MaxX: 2, MaxY: 3, MinT: 4, MaxT: 5}
	r := q.Rect()
	if r.Min != (Vec{0, 1, 4}) || r.Max != (Vec{2, 3, 5}) {
		t.Errorf("Rect = %v", r)
	}
	if !q.Valid() {
		t.Error("range should be valid")
	}
	bad := Range{MinX: 2, MaxX: 1}
	if bad.Valid() {
		t.Error("inverted range should be invalid")
	}
	nan := Range{MinX: math.NaN()}
	if nan.Valid() {
		t.Error("NaN range should be invalid")
	}
	if !UniverseRange().Rect().Contains(Vec{1e300, -1e300, 0}) {
		t.Error("universe should contain everything")
	}
	sp := SpatialRange(0, 0, 1, 1)
	if !sp.Rect().Contains(Vec{0.5, 0.5, 1e18}) {
		t.Error("spatial range should span all time")
	}
}

// Property: Extend is commutative, associative-compatible and monotone.
func TestExtendProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 [3]float64) bool {
		ra := rectFromCorners(Vec(a1), Vec(a2))
		rb := rectFromCorners(Vec(b1), Vec(b2))
		u := ra.Extend(rb)
		return u == rb.Extend(ra) &&
			u.ContainsRect(ra) && u.ContainsRect(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a rect contains a point iff intersecting its degenerate rect.
func TestContainsIntersectConsistency(t *testing.T) {
	f := func(a1, a2, p [3]float64) bool {
		r := rectFromCorners(Vec(a1), Vec(a2))
		pt := Vec(p)
		return r.Contains(pt) == r.Intersects(RectFromPoint(pt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// rectFromCorners builds a valid rect from two arbitrary corners.
func rectFromCorners(a, b Vec) Rect {
	var lo, hi Vec
	for i := 0; i < Dims; i++ {
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return NewRect(lo, hi)
}
