package bench

import (
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/lstree"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// A1Config sizes the buffer-pool ablation: the RS-tree's I/O advantage in
// Figure 3(a) hinges on canonical node pages staying resident; this
// experiment sweeps the pool size to show where the advantage comes from.
type A1Config struct {
	N         int
	QFrac     float64
	K         int // samples drawn per run
	Fanout    int
	PoolFracs []float64
	Seed      int64
}

func (c A1Config) withDefaults() A1Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.QFrac == 0 {
		c.QFrac = 0.05
	}
	if c.K == 0 {
		c.K = 2000
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if len(c.PoolFracs) == 0 {
		c.PoolFracs = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.25}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A1Point is one pool-size measurement.
type A1Point struct {
	Method   string
	PoolFrac float64
	Reads    uint64
	HitRate  float64
}

// A1 sweeps the buffer-pool size for the RS-tree and RandomPath samplers.
// Expected shape: the RS-tree's physical reads collapse once the pool
// covers its canonical working set, while RandomPath barely improves
// because each sample touches fresh random leaf pages.
func A1(cfg A1Config) ([]A1Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, cfg.QFrac).Rect()
	entries := ds.Entries()
	basePages := cfg.N / cfg.Fanout * 2

	var out []A1Point
	for _, frac := range cfg.PoolFracs {
		pool := int(frac * float64(basePages))

		devRS := newDevice(pool)
		rsIdx, err := rstree.Build(entries, rstree.Config{Fanout: cfg.Fanout, Device: devRS, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		devRS.DropCache()
		devRS.ResetStats()
		s := rsIdx.Sampler(q, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed))
		for i := 0; i < cfg.K; i++ {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		record("a1", "RS-tree", s, devRS)
		st := devRS.Stats()
		out = append(out, A1Point{Method: "RS-tree", PoolFrac: frac, Reads: st.Reads,
			HitRate: float64(st.Hits) / float64(st.Logical)})

		devRP := newDevice(pool)
		plain := mustPlainTree(entries, cfg.Fanout, devRP)
		devRP.DropCache()
		devRP.ResetStats()
		rp := sampling.NewRandomPath(plain, q, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed))
		for i := 0; i < cfg.K; i++ {
			if _, ok := rp.Next(); !ok {
				break
			}
		}
		record("a1", "RandomPath", rp, devRP)
		st = devRP.Stats()
		out = append(out, A1Point{Method: "RandomPath", PoolFrac: frac, Reads: st.Reads,
			HitRate: float64(st.Hits) / float64(st.Logical)})
	}
	return out, nil
}

// A2Config sizes the RS-tree sample-buffer ablation.
type A2Config struct {
	N        int
	QFrac    float64
	K        int
	Fanout   int
	BufSizes []int
	Seed     int64
}

func (c A2Config) withDefaults() A2Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.QFrac == 0 {
		c.QFrac = 0.05
	}
	if c.K == 0 {
		c.K = 2000
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if len(c.BufSizes) == 0 {
		c.BufSizes = []int{4, 8, 16, 32, 64, 128}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A2Point is one buffer-size measurement.
type A2Point struct {
	BufSize int
	WallMS  float64
	// Reads is the number of physical page reads under a small buffer
	// pool.
	Reads uint64
	// Explosions counts lazily exploded parts: small sample buffers
	// exhaust quickly and force exploration into child subtrees.
	Explosions uint64
	// Rejects counts consumed draws that fell outside the query — the
	// acceptance/rejection cost of keeping boundary subtrees whole,
	// which shrinks as explosions prune non-matching mass.
	Rejects uint64
	// AccessesPerSample is logical page accesses per sample drawn.
	AccessesPerSample float64
}

// A2 sweeps the per-node sample buffer size S(u). Small buffers exhaust
// quickly and force subtree materializations (cold page reads); large
// buffers waste memory for no further gain and keep boundary subtrees
// unsplit longer (more acceptance/rejection overhead) — the "size of S(u)
// is properly calculated" design point of the paper.
func A2(cfg A2Config) ([]A2Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, cfg.QFrac).Rect()
	entries := ds.Entries()

	pool := cfg.N / cfg.Fanout / 50 // ~2% of leaf pages
	if pool < 8 {
		pool = 8
	}
	var out []A2Point
	for _, bufSize := range cfg.BufSizes {
		dev := newDevice(pool)
		idx, err := rstree.Build(entries, rstree.Config{
			Fanout: cfg.Fanout, BufferSize: bufSize, Device: dev, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		dev.DropCache()
		dev.ResetStats()
		s := idx.Sampler(q, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed))
		start := time.Now()
		got := 0
		for got < cfg.K {
			if _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		elapsed := time.Since(start)
		record("a2", "RS-tree", s, dev)
		st := dev.Stats()
		out = append(out, A2Point{
			BufSize:           bufSize,
			WallMS:            float64(elapsed.Microseconds()) / 1000,
			Reads:             st.Reads,
			Explosions:        s.Explosions(),
			Rejects:           s.Rejects(),
			AccessesPerSample: float64(st.Logical) / float64(got),
		})
	}
	return out, nil
}

// A3Config sizes the update experiment (demo component 3).
type A3Config struct {
	N       int
	Updates int
	Fanout  int
	Seed    int64
}

func (c A3Config) withDefaults() A3Config {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.Updates == 0 {
		c.Updates = 20_000
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A3Result reports update throughput and post-update sample correctness.
type A3Result struct {
	Index            string
	InsertsPerSecond float64
	DeletesPerSecond float64
	// FreshSampled is true when a query after the updates sampled at
	// least one newly inserted record and no deleted record.
	FreshSampled bool
}

// A3 measures ad-hoc update throughput on both indexes and verifies the
// paper's updates claim: "a correct set of online spatio-temporal samples
// can always be returned with respect to the latest records".
func A3(cfg A3Config) ([]A3Result, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	entries := ds.Entries()
	rng := stats.NewRNG(cfg.Seed + 5)

	// Fresh inserts land inside this probe window.
	probe := geo.Range{MinX: -112.0, MinY: 40.6, MaxX: -111.8, MaxY: 40.9, MinT: 0, MaxT: 86400 * 365}
	rect := probe.Rect()
	mkInsert := func(i int) data.Entry {
		return data.Entry{
			ID: data.ID(cfg.N + i),
			Pos: geo.Vec{
				rng.Uniform(probe.MinX, probe.MaxX),
				rng.Uniform(probe.MinY, probe.MaxY),
				rng.Uniform(0, 86400*365),
			},
		}
	}

	var out []A3Result
	run := func(name string, insert func(data.Entry), del func(data.Entry) bool, sample func() sampling.Sampler) {
		inserts := make([]data.Entry, cfg.Updates)
		for i := range inserts {
			inserts[i] = mkInsert(i)
		}
		start := time.Now()
		for _, e := range inserts {
			insert(e)
		}
		insRate := float64(cfg.Updates) / time.Since(start).Seconds()

		victims := make([]data.Entry, 0, cfg.Updates/2)
		perm := rng.Perm(len(entries))
		for _, i := range perm[:cfg.Updates/2] {
			victims = append(victims, entries[i])
		}
		start = time.Now()
		for _, e := range victims {
			del(e)
		}
		delRate := float64(len(victims)) / time.Since(start).Seconds()

		deleted := make(map[data.ID]bool, len(victims))
		for _, e := range victims {
			deleted[e.ID] = true
		}
		s := sample()
		sawFresh := false
		ok := true
		for i := 0; i < 20_000; i++ {
			e, more := s.Next()
			if !more {
				break
			}
			if e.ID >= data.ID(cfg.N) {
				sawFresh = true
			}
			if deleted[e.ID] {
				ok = false
				break
			}
		}
		out = append(out, A3Result{
			Index:            name,
			InsertsPerSecond: insRate,
			DeletesPerSecond: delRate,
			FreshSampled:     sawFresh && ok,
		})
	}

	rsIdx, err := rstree.Build(entries, rstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	run("RS-tree", rsIdx.Insert, rsIdx.Delete, func() sampling.Sampler {
		return rsIdx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed+9))
	})

	lsIdx, err := lstree.Build(entries, lstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	run("LS-tree", lsIdx.Insert, lsIdx.Delete, func() sampling.Sampler {
		return lsIdx.Sampler(rect, stats.NewRNG(cfg.Seed+9))
	})
	return out, nil
}

// A5Config sizes the index construction-cost experiment.
type A5Config struct {
	Sizes  []int
	Fanout int
	Seed   int64
}

func (c A5Config) withDefaults() A5Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100_000, 500_000, 2_000_000}
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A5Point is one build measurement.
type A5Point struct {
	Index   string
	N       int
	BuildMS float64
	// Nodes is the total R-tree node count (all levels for the LS-tree).
	Nodes int
	// SizeRatio is total stored entries over N: 1.0 for a plain R-tree,
	// ~2.0 for the LS-tree's geometric levels, and >1 for the RS-tree's
	// sample buffers.
	SizeRatio float64
}

// A5 measures what each index costs to build — the space blow-up is the
// design tension the paper notes ("LS-tree needs to maintain multiple
// trees, which can be a challenge") and the RS-tree's answer to it.
func A5(cfg A5Config) ([]A5Point, error) {
	cfg = cfg.withDefaults()
	var out []A5Point
	for _, n := range cfg.Sizes {
		ds := osmData(n, cfg.Seed)
		entries := ds.Entries()

		start := time.Now()
		plain := mustPlainTree(entries, cfg.Fanout, nil)
		out = append(out, A5Point{
			Index: "R-tree", N: n,
			BuildMS:   float64(time.Since(start).Microseconds()) / 1000,
			Nodes:     plain.NodeCount(),
			SizeRatio: 1,
		})

		start = time.Now()
		ls, err := lstree.Build(entries, lstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		lsNodes, lsEntries := 0, 0
		for i := 0; i < ls.Levels(); i++ {
			lsNodes += ls.Level(i).NodeCount()
			lsEntries += ls.Level(i).Len()
		}
		out = append(out, A5Point{
			Index: "LS-tree", N: n,
			BuildMS:   float64(time.Since(start).Microseconds()) / 1000,
			Nodes:     lsNodes,
			SizeRatio: float64(lsEntries) / float64(n),
		})

		start = time.Now()
		rs, err := rstree.Build(entries, rstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		nodes := rs.Tree().NodeCount()
		// Every node stores a buffer of at most Fanout entries; leaves
		// buffer all of theirs, so stored entries ≈ N (leaf buffers) +
		// internal buffers.
		leaves := (n + cfg.Fanout - 1) / cfg.Fanout
		internal := nodes - leaves
		buffered := n + internal*cfg.Fanout
		out = append(out, A5Point{
			Index: "RS-tree", N: n,
			BuildMS:   float64(time.Since(start).Microseconds()) / 1000,
			Nodes:     nodes,
			SizeRatio: 1 + float64(buffered)/float64(n),
		})
	}
	return out, nil
}

// A6Config sizes the packing ablation: why the RS-tree sits on a Hilbert
// R-tree rather than an arbitrary one.
type A6Config struct {
	N       int
	Queries int
	QFrac   float64
	Fanout  int
	Seed    int64
}

func (c A6Config) withDefaults() A6Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.QFrac == 0 {
		c.QFrac = 0.02
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A6Point is one packing measurement.
type A6Point struct {
	Packing string
	// AvgReads is the mean physical page reads per range query (cold).
	AvgReads float64
	// AvgCanonical is the mean canonical-set size r(N) per query;
	// smaller means tighter node MBRs and cheaper RS-tree frontiers.
	AvgCanonical float64
}

// A6 compares Hilbert packing, STR packing, and one-by-one Guttman
// insertion on the same data, measuring range-report I/O and canonical-set
// size over a batch of queries. Hilbert and STR produce comparably tight
// trees, with STR's tiling usually a touch tighter on box queries — the
// reason STR is now the default bulk-load packing (Hilbert stays
// selectable via rtree.Config.Packing and remains how inserts are placed
// in Hilbert mode); an insertion-built tree is markedly worse.
func A6(cfg A6Config) ([]A6Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	entries := ds.Entries()
	bounds := ds.Bounds()

	rng := stats.NewRNG(cfg.Seed + 3)
	queries := make([]geo.Rect, cfg.Queries)
	for i := range queries {
		// Random city-anchored boxes with the configured selectivity.
		base := queryFor(ds, cfg.QFrac)
		w := (base.MaxX - base.MinX) / 2
		hgt := (base.MaxY - base.MinY) / 2
		cx := rng.Uniform(base.MinX, base.MaxX)
		cy := rng.Uniform(base.MinY, base.MaxY)
		queries[i] = geo.Range{
			MinX: cx - w, MinY: cy - hgt, MaxX: cx + w, MaxY: cy + hgt,
			MinT: 0, MaxT: 86400 * 365,
		}.Rect()
	}

	build := func(name string) (*rtree.Tree, *iosim.Device, error) {
		dev := newDevice(0)
		var t *rtree.Tree
		switch name {
		case "hilbert":
			t = rtree.MustNew(rtree.Config{Fanout: cfg.Fanout, Device: dev, Hilbert: true, Bounds: bounds, Packing: rtree.PackHilbert})
			t.BulkLoad(entries)
		case "str (default)":
			t = rtree.MustNew(rtree.Config{Fanout: cfg.Fanout, Device: dev})
			t.BulkLoad(entries)
		case "insert-built":
			t = rtree.MustNew(rtree.Config{Fanout: cfg.Fanout, Device: dev})
			for _, e := range entries {
				t.Insert(e)
			}
		}
		return t, dev, nil
	}

	var out []A6Point
	for _, name := range []string{"str (default)", "hilbert", "insert-built"} {
		t, dev, err := build(name)
		if err != nil {
			return nil, err
		}
		var reads, canonical float64
		for _, q := range queries {
			dev.DropCache()
			dev.ResetStats()
			t.ReportAll(q)
			reads += float64(dev.Stats().Reads)
			canonical += float64(t.CanonicalSize(q))
		}
		out = append(out, A6Point{
			Packing:      name,
			AvgReads:     reads / float64(cfg.Queries),
			AvgCanonical: canonical / float64(cfg.Queries),
		})
	}
	return out, nil
}

// A4Config sizes the distributed scaling experiment.
type A4Config struct {
	N      int
	K      int
	Shards []int
	Seed   int64
}

func (c A4Config) withDefaults() A4Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.K == 0 {
		c.K = 5000
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A4Point is one shard-count measurement.
type A4Point struct {
	Shards int
	// WallMS is the serial coordinator (Next per sample, per-refill shard
	// fetches); WallBatchMS pulls the same K through NextBatch's one
	// demand-sized request per shard per round.
	WallMS      float64
	WallBatchMS float64
	// Messages/BatchMessages are the network messages each protocol sent.
	Messages      uint64
	BatchMessages uint64
	// MaxShardShare is the largest fraction of samples served by one
	// shard — balance for a query spanning the whole space.
	MaxShardShare float64
}

// A4 measures coordinator sampling across 1..8 simulated shards: message
// counts grow with shard count while per-shard load stays proportional to
// per-shard matching counts.
func A4(cfg A4Config) ([]A4Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()

	var out []A4Point
	for _, shards := range cfg.Shards {
		c, err := distr.Build(ds, distr.Config{Shards: shards, Seed: cfg.Seed, Obs: Obs})
		if err != nil {
			return nil, err
		}
		c.ResetNet()
		s := c.Sampler(q)
		start := time.Now()
		for i := 0; i < cfg.K; i++ {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		elapsed := time.Since(start)

		// Same pull through the batched protocol on an identical cluster.
		cb, err := distr.Build(ds, distr.Config{Shards: shards, Seed: cfg.Seed, Obs: Obs})
		if err != nil {
			return nil, err
		}
		cb.ResetNet()
		sb := cb.Sampler(q)
		batchBuf := make([]data.Entry, cfg.K)
		startB := time.Now()
		sb.NextBatch(batchBuf, cfg.K)
		elapsedB := time.Since(startB)
		// Partition balance: the Hilbert split should keep shard record
		// shares near 1/shards.
		total := 0
		maxShare := 0.0
		for _, sh := range c.Shards() {
			total += sh.Len()
		}
		for _, sh := range c.Shards() {
			share := float64(sh.Len()) / float64(total)
			if share > maxShare {
				maxShare = share
			}
		}
		out = append(out, A4Point{
			Shards:        shards,
			WallMS:        float64(elapsed.Microseconds()) / 1000,
			WallBatchMS:   float64(elapsedB.Microseconds()) / 1000,
			Messages:      c.Net().Messages,
			BatchMessages: cb.Net().Messages,
			MaxShardShare: maxShare,
		})
	}
	return out, nil
}
