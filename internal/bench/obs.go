package bench

import (
	"strings"

	"storm/internal/iosim"
	"storm/internal/obs"
	"storm/internal/sampling"
)

// Obs, when non-nil, receives per-method telemetry from every figure and
// ablation run under names of the form storm.bench.<figure>.<method>.*.
// cmd/stormbench sets it for the -metrics mode; it is nil by default so the
// hot benchmark loops stay instrumentation-free unless asked. The registry
// is read between figures, not concurrently with them, so figure code may
// write to it without extra synchronisation beyond the metrics' own atomics.
var Obs *obs.Registry

// metricName lowers a human method label ("RS-tree", "str (default)") into
// a metric-name segment.
func metricName(label string) string {
	s := strings.ToLower(label)
	s = strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(s)
	return s
}

// record flushes one sampler run's telemetry into Obs: the sampler's draw
// accounting (when it implements sampling.StatsReporter) and the device's
// physical I/O counters. No-op when Obs is nil or the run used no device.
func record(figure, method string, s sampling.Sampler, dev *iosim.Device) {
	if Obs == nil {
		return
	}
	prefix := "storm.bench." + figure + "." + metricName(method) + "."
	if sr, ok := s.(sampling.StatsReporter); ok {
		st := sr.SamplerStats()
		Obs.Counter(prefix + "draws").Add(st.Draws)
		Obs.Counter(prefix + "rejects").Add(st.Rejects)
		Obs.Counter(prefix + "explosions").Add(st.Explosions)
		Obs.Counter(prefix + "scans").Add(st.Scans)
	}
	if dev != nil {
		st := dev.Stats()
		Obs.Counter(prefix + "io.reads").Add(st.Reads)
		Obs.Counter(prefix + "io.hits").Add(st.Hits)
		Obs.Counter(prefix + "io.evictions").Add(st.Evictions)
	}
}
