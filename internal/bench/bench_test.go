package bench

import (
	"math"
	"testing"
)

// Small configurations keep these tests quick; the full-size runs live in
// cmd/stormbench and the root benchmarks.

func TestQueryForHitsTarget(t *testing.T) {
	ds := osmData(100_000, 1)
	for _, frac := range []float64{0.02, 0.05, 0.2} {
		q := queryFor(ds, frac)
		got := float64(exactCount(ds, q)) / float64(ds.Len())
		if got < frac*0.5 || got > frac*2.5 {
			t.Errorf("queryFor(%v) selectivity = %v", frac, got)
		}
	}
}

func TestFig3aShape(t *testing.T) {
	pts, err := Fig3a(Fig3aConfig{
		N: 100_000, QFrac: 0.05,
		Fractions: []float64{0.002, 0.01, 0.05, 0.10},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]Fig3aPoint{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	for _, m := range []string{"RandomPath", "RS-tree", "RangeReport", "LS-tree"} {
		if len(byMethod[m]) != 4 {
			t.Fatalf("method %s has %d points", m, len(byMethod[m]))
		}
	}
	// Shape 1: at the smallest k, both STORM indexes beat RangeReport on
	// physical reads by a wide margin.
	small := func(m string) Fig3aPoint { return byMethod[m][0] }
	if small("RS-tree").Reads*5 > small("RangeReport").Reads {
		t.Errorf("small k: RS-tree reads %d not well below RangeReport %d",
			small("RS-tree").Reads, small("RangeReport").Reads)
	}
	if small("LS-tree").Reads*5 > small("RangeReport").Reads {
		t.Errorf("small k: LS-tree reads %d not well below RangeReport %d",
			small("LS-tree").Reads, small("RangeReport").Reads)
	}
	// Shape 2: RangeReport cost is flat in k (same full query each time).
	rr := byMethod["RangeReport"]
	if rr[len(rr)-1].Reads > rr[0].Reads*2 {
		t.Errorf("RangeReport reads should be flat: %d -> %d", rr[0].Reads, rr[len(rr)-1].Reads)
	}
	// Shape 3: RandomPath physical reads grow roughly linearly with k and
	// exceed the RS-tree's everywhere.
	rp := byMethod["RandomPath"]
	if rp[len(rp)-1].Reads < rp[0].Reads*5 {
		t.Errorf("RandomPath reads should grow with k: %d -> %d", rp[0].Reads, rp[len(rp)-1].Reads)
	}
	for i := range rp {
		if rp[i].Reads < byMethod["RS-tree"][i].Reads {
			t.Errorf("k/q=%v: RandomPath reads %d below RS-tree %d",
				rp[i].KOverQ, rp[i].Reads, byMethod["RS-tree"][i].Reads)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	pts, err := Fig3b(Fig3bConfig{
		N: 100_000, QFrac: 0.05,
		Checkpoints: []int{16, 64, 256, 1024},
		Trials:      3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]Fig3bPoint{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	for _, m := range []string{"RS-tree", "LS-tree"} {
		series := byMethod[m]
		if len(series) != 4 {
			t.Fatalf("method %s has %d points", m, len(series))
		}
		// Error decreases overall and ends small.
		if series[len(series)-1].RelErr >= series[0].RelErr {
			t.Errorf("%s: error did not fall (%v -> %v)", m, series[0].RelErr, series[len(series)-1].RelErr)
		}
		if series[len(series)-1].RelErr > 0.05 {
			t.Errorf("%s: final error %v too high", m, series[len(series)-1].RelErr)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	pts, err := Fig5(Fig5Config{N: 100_000, Grid: 12, Checkpoints: []int{50, 200, 1000}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byRegion := map[string][]Fig5Point{}
	for _, p := range pts {
		byRegion[p.Region] = append(byRegion[p.Region], p)
	}
	for _, reg := range []string{"SLC", "USA"} {
		series := byRegion[reg]
		if len(series) == 0 {
			t.Fatalf("no points for %s", reg)
		}
		last := series[len(series)-1]
		if last.RelErr >= series[0].RelErr {
			t.Errorf("%s: KDE error did not fall (%v -> %v)", reg, series[0].RelErr, last.RelErr)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	pts, user, err := Fig6a(Fig6aConfig{N: 50_000, Users: 10, Checkpoints: []int{10, 50, 200}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if user == "" || len(pts) < 2 {
		t.Fatalf("user=%q points=%d", user, len(pts))
	}
	if pts[len(pts)-1].PathErr >= pts[0].PathErr {
		t.Errorf("trajectory error did not fall: %v -> %v", pts[0].PathErr, pts[len(pts)-1].PathErr)
	}
}

func TestFig6bShape(t *testing.T) {
	res, err := Fig6b(Fig6bConfig{N: 100_000, Checkpoints: []int{10, 100, 500}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	if last.Recall < 0.8 {
		t.Errorf("final top-term recall %v too low", last.Recall)
	}
	if last.Recall < res.Points[0].Recall-0.1 {
		t.Errorf("recall fell: %v -> %v", res.Points[0].Recall, last.Recall)
	}
	if last.Sentiment >= 0 {
		t.Errorf("snowstorm sentiment %v should be negative", last.Sentiment)
	}
	if len(res.TopTerms) == 0 {
		t.Error("no top terms")
	}
}

func TestA1Shape(t *testing.T) {
	pts, err := A1(A1Config{N: 100_000, K: 1000, PoolFracs: []float64{0, 0.05, 0.25}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]A1Point{}
	for _, p := range pts {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	rs := byMethod["RS-tree"]
	// A modest pool slashes RS-tree physical reads.
	if rs[2].Reads*2 > rs[0].Reads {
		t.Errorf("RS-tree reads should collapse with a pool: %d -> %d", rs[0].Reads, rs[2].Reads)
	}
}

func TestA2Shape(t *testing.T) {
	pts, err := A2(A2Config{N: 100_000, K: 1000, Fanout: 16, BufSizes: []int{4, 64}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Tiny buffers exhaust fast, forcing far more lazy explosions; big
	// buffers instead pay acceptance/rejection on unsplit boundary
	// subtrees. Both sides of the trade-off must be visible.
	if pts[0].Explosions <= pts[1].Explosions {
		t.Errorf("buffer=4 explosions %d should exceed buffer=64's %d",
			pts[0].Explosions, pts[1].Explosions)
	}
	if pts[0].Rejects >= pts[1].Rejects {
		t.Errorf("buffer=4 rejects %d should be below buffer=64's %d",
			pts[0].Rejects, pts[1].Rejects)
	}
}

func TestA3UpdatesCorrect(t *testing.T) {
	res, err := A3(A3Config{N: 50_000, Updates: 5_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.InsertsPerSecond <= 0 || r.DeletesPerSecond <= 0 {
			t.Errorf("%s: nonpositive rates %+v", r.Index, r)
		}
		if !r.FreshSampled {
			t.Errorf("%s: post-update samples incorrect", r.Index)
		}
	}
}

func TestA5Shape(t *testing.T) {
	pts, err := A5(A5Config{Sizes: []int{50_000}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	byIndex := map[string]A5Point{}
	for _, p := range pts {
		byIndex[p.Index] = p
	}
	// LS-tree stores about 2N entries (geometric levels).
	if r := byIndex["LS-tree"].SizeRatio; r < 1.7 || r > 2.3 {
		t.Errorf("LS-tree size ratio = %v, want ~2", r)
	}
	if byIndex["R-tree"].SizeRatio != 1 {
		t.Errorf("R-tree size ratio = %v", byIndex["R-tree"].SizeRatio)
	}
	// Both sampling indexes cost more to build than the plain tree.
	if byIndex["LS-tree"].BuildMS <= byIndex["R-tree"].BuildMS/2 {
		t.Errorf("LS-tree build %v suspiciously below R-tree %v",
			byIndex["LS-tree"].BuildMS, byIndex["R-tree"].BuildMS)
	}
	for _, p := range pts {
		if p.Nodes <= 0 || p.BuildMS <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestA6Shape(t *testing.T) {
	pts, err := A6(A6Config{N: 60_000, Queries: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]A6Point{}
	for _, p := range pts {
		byName[p.Packing] = p
	}
	// Bulk-loaded trees beat the insertion-built tree on range I/O.
	if byName["hilbert"].AvgReads >= byName["insert-built"].AvgReads {
		t.Errorf("hilbert reads %v not below insert-built %v",
			byName["hilbert"].AvgReads, byName["insert-built"].AvgReads)
	}
	if byName["str (default)"].AvgReads >= byName["insert-built"].AvgReads {
		t.Errorf("str reads %v not below insert-built %v",
			byName["str (default)"].AvgReads, byName["insert-built"].AvgReads)
	}
	for _, p := range pts {
		if p.AvgCanonical <= 0 {
			t.Errorf("degenerate canonical size for %s", p.Packing)
		}
	}
}

func TestA4Shape(t *testing.T) {
	pts, err := A4(A4Config{N: 100_000, K: 2000, Shards: []int{1, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Messages <= pts[0].Messages {
		t.Errorf("more shards should cost more messages: %d -> %d", pts[0].Messages, pts[1].Messages)
	}
	if math.Abs(pts[1].MaxShardShare-0.25) > 0.05 {
		t.Errorf("4-shard balance: max share %v, want ~0.25", pts[1].MaxShardShare)
	}
}

func TestA7Shape(t *testing.T) {
	pts, err := A7(A7Config{N: 100_000, K: 2000, Shards: 8, Kill: []int{0, 2}, CrashAfter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	healthy, degraded := pts[0], pts[1]
	if healthy.Crashes != 0 || healthy.Population != healthy.HealthyPop {
		t.Errorf("kill=0 run should be healthy: %+v", healthy)
	}
	if degraded.Crashes != 2 {
		t.Errorf("kill=2 crashes = %d, want 2", degraded.Crashes)
	}
	if degraded.Population >= degraded.HealthyPop {
		t.Errorf("kill=2 effective population %d not shrunk from %d",
			degraded.Population, degraded.HealthyPop)
	}
	// Degrading must not wreck the estimate: both runs target the same
	// spatial mean, so the points stay within a few CI widths.
	if diff := math.Abs(healthy.Value - degraded.Value); diff > 10*healthy.HalfWidth+10*degraded.HalfWidth {
		t.Errorf("degraded estimate drifted: %v vs %v", degraded.Value, healthy.Value)
	}
}
