package bench

import (
	"fmt"
	"sort"

	"storm/internal/analytics"
	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/rstree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// Fig5Config sizes the Figure 5 experiment: interactive online KDE over
// tweets, zoomed into Salt Lake City and out to the whole USA.
type Fig5Config struct {
	N           int // tweets; default 1M
	Grid        int // grid cells per side; default 24
	Checkpoints []int
	Seed        int64
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.Grid == 0 {
		c.Grid = 24
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = []int{50, 100, 250, 500, 1000, 2500, 5000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig5Point is one measurement: region × checkpoint.
type Fig5Point struct {
	Region  string
	Samples int
	// RelErr is the mean per-cell error of the online density map
	// against the exact (all-records) density map, normalized by the
	// exact map's mean density.
	RelErr float64
}

// Fig5 reproduces Figure 5's quantitative core: the online KDE's density
// map converges to the exact map as samples accumulate, for both a city
// zoom-in (SLC) and a country zoom-out (USA). The demo screenshots show
// the maps; the benchmark reports the error curve that makes "the density
// estimate improves with query time" measurable.
func Fig5(cfg Fig5Config) ([]Fig5Point, error) {
	cfg = cfg.withDefaults()
	ds, _ := tweetData(cfg.N, cfg.Seed, false)
	idx, err := rstree.Build(ds.Entries(), rstree.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	regions := []struct {
		name string
		r    geo.Range
	}{
		{"SLC", withTime(slcRegion, 0, 30*86400)},
		{"USA", withTime(usaRegion, 0, 30*86400)},
	}

	var out []Fig5Point
	for _, reg := range regions {
		rect := reg.r.Rect()
		bw := (reg.r.MaxX - reg.r.MinX) / 10
		exact, err := analytics.NewKDE(rect, cfg.Grid, cfg.Grid, analytics.Epanechnikov, bw, 0.95)
		if err != nil {
			return nil, err
		}
		matched := 0
		for i := 0; i < ds.Len(); i++ {
			if rect.Contains(ds.Pos(uint64(i))) {
				exact.Add(ds.Pos(uint64(i)))
				matched++
			}
		}
		if matched == 0 {
			return nil, fmt.Errorf("bench: region %s matched nothing", reg.name)
		}
		ref := exact.Snapshot()

		online, err := analytics.NewKDE(rect, cfg.Grid, cfg.Grid, analytics.Epanechnikov, bw, 0.95)
		if err != nil {
			return nil, err
		}
		s := idx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed+99))
		k := 0
		ci := 0
		for ci < len(cfg.Checkpoints) {
			e, ok := s.Next()
			if !ok {
				break
			}
			online.Add(e.Pos)
			k++
			if k == cfg.Checkpoints[ci] {
				out = append(out, Fig5Point{
					Region:  reg.name,
					Samples: k,
					RelErr:  online.Snapshot().RelError(ref),
				})
				ci++
			}
		}
	}
	return out, nil
}

func withTime(r geo.Range, t0, t1 float64) geo.Range {
	r.MinT, r.MaxT = t0, t1
	return r
}

// Fig6aConfig sizes the Figure 6(a) experiment: online approximate
// trajectory reconstruction for one user.
type Fig6aConfig struct {
	N           int // tweets; default 200k
	Users       int // default 40 so each user has a long trajectory
	Checkpoints []int
	Seed        int64
}

func (c Fig6aConfig) withDefaults() Fig6aConfig {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.Users == 0 {
		c.Users = 40
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = []int{10, 25, 50, 100, 250, 500, 1000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig6aPoint is one measurement of trajectory quality.
type Fig6aPoint struct {
	Samples int
	// PathErr is the average spatial distance from the ground-truth
	// trajectory to the reconstructed path (degrees).
	PathErr float64
}

// Fig6a reproduces Figure 6(a)'s quantitative core: the trajectory
// reconstructed from online samples of one user's tweets approaches the
// user's ground-truth movement path as samples accumulate.
func Fig6a(cfg Fig6aConfig) ([]Fig6aPoint, string, error) {
	cfg = cfg.withDefaults()
	ds, truth := tweetDataUsers(cfg.N, cfg.Users, cfg.Seed)
	idx, err := rstree.Build(ds.Entries(), rstree.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, "", err
	}
	users, err := ds.StringColumn("user")
	if err != nil {
		return nil, "", err
	}

	// Most active user.
	var user string
	best := 0
	for u, p := range truth {
		if len(p) > best {
			user, best = u, len(p)
		}
	}

	q := withTime(usaRegion, 0, 30*86400)
	rect := q.Rect()
	s := idx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed+7))
	tr := analytics.NewTrajectory()
	var out []Fig6aPoint
	accepted := 0
	ci := 0
	for ci < len(cfg.Checkpoints) && cfg.Checkpoints[ci] <= best {
		e, ok := s.Next()
		if !ok {
			break
		}
		if users[e.ID] != user {
			continue
		}
		tr.Add(e.Pos)
		accepted++
		if accepted == cfg.Checkpoints[ci] {
			out = append(out, Fig6aPoint{
				Samples: accepted,
				PathErr: analytics.PathError(truth[user], tr.Snapshot(0)),
			})
			ci++
		}
	}
	return out, user, nil
}

// tweetDataUsers is tweetData with an explicit user count (trajectory
// experiments want few, very active users).
func tweetDataUsers(n, users int, seed int64) (*data.Dataset, map[string][]geo.Vec) {
	key := fmt.Sprintf("%d-%d-u%d", n, seed, users)
	if d, ok := tweetCache[key]; ok {
		return d, tweetTruthCache[key]
	}
	d, tr := gen.Tweets(gen.TweetsConfig{N: n, Users: users, Seed: seed})
	tweetCache[key] = d
	tweetTruthCache[key] = tr
	return d, tr
}

// Fig6bConfig sizes the Figure 6(b) experiment: online short-text
// understanding over the Atlanta snowstorm window.
type Fig6bConfig struct {
	N           int // tweets; default 400k
	TopK        int // top-term list size; default 10
	Checkpoints []int
	Seed        int64
}

func (c Fig6bConfig) withDefaults() Fig6bConfig {
	if c.N == 0 {
		c.N = 400_000
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = []int{10, 25, 50, 100, 250, 500, 1000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig6bPoint is one measurement of term-ranking quality.
type Fig6bPoint struct {
	Samples int
	// Recall is |topK(online) ∩ topK(exact)| / K.
	Recall float64
	// Sentiment is the online sentiment estimate at the checkpoint.
	Sentiment float64
}

// Fig6bResult carries the curve plus the final vocabulary, which should be
// dominated by snowstorm terms (the paper highlights snow, ice, outage,
// shit, hell, why).
type Fig6bResult struct {
	Points   []Fig6bPoint
	TopTerms []string
}

// Fig6b reproduces Figure 6(b)'s quantitative core: the online top-k term
// list over downtown Atlanta during the snowstorm window converges to the
// exact top-k, and the sampled population reads as unhappy.
func Fig6b(cfg Fig6bConfig) (*Fig6bResult, error) {
	cfg = cfg.withDefaults()
	ds, _ := tweetData(cfg.N, cfg.Seed, true)
	texts, err := ds.StringColumn("text")
	if err != nil {
		return nil, err
	}
	idx, err := rstree.Build(ds.Entries(), rstree.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	atlanta := geo.Range{MinX: -85.4, MinY: 32.7, MaxX: -83.4, MaxY: 34.7,
		MinT: 10 * 86400, MaxT: 13 * 86400}
	rect := atlanta.Rect()

	exact := analytics.NewTermStats()
	matched := 0
	for i := 0; i < ds.Len(); i++ {
		if rect.Contains(ds.Pos(uint64(i))) {
			exact.Add(texts[i])
			matched++
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("bench: Atlanta window matched nothing")
	}
	ref := exact.Snapshot(cfg.TopK)

	online := analytics.NewTermStats()
	s := idx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(cfg.Seed+13))
	res := &Fig6bResult{}
	k := 0
	ci := 0
	for ci < len(cfg.Checkpoints) {
		e, ok := s.Next()
		if !ok {
			break
		}
		online.Add(texts[e.ID])
		k++
		if k == cfg.Checkpoints[ci] {
			snap := online.Snapshot(cfg.TopK)
			res.Points = append(res.Points, Fig6bPoint{
				Samples:   k,
				Recall:    analytics.TopTermRecall(snap, ref),
				Sentiment: snap.Sentiment,
			})
			ci++
		}
	}
	final := online.Snapshot(cfg.TopK)
	for _, t := range final.Top {
		res.TopTerms = append(res.TopTerms, t.Text)
	}
	sort.Strings(res.TopTerms)
	return res, nil
}
