package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/stats"
)

// A11Config sizes the accuracy/latency-contract ablation: the same seeded
// AVG query runs under ERROR/WITHIN contracts across a sweep of error
// targets and deadlines, against the uncapped snapshot-stream baseline.
type A11Config struct {
	N          int             // dataset size
	Runs       int             // seeded runs per configuration
	ErrTargets []float64       // relative-error targets (fractions)
	Deadlines  []time.Duration // contract deadlines; 0 = error-only
	Seed       int64
}

func (c A11Config) withDefaults() A11Config {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.Runs == 0 {
		c.Runs = 20
	}
	if len(c.ErrTargets) == 0 {
		c.ErrTargets = []float64{0.05, 0.01, 0.002}
	}
	if len(c.Deadlines) == 0 {
		c.Deadlines = []time.Duration{0, 5 * time.Millisecond, 100 * time.Millisecond}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A11Point is one (error target, deadline, mode) measurement over Runs
// seeded queries.
type A11Point struct {
	// Mode is "contract" (one-shot EstimateContract answer) or "stream"
	// (the uncapped EstimateOnline baseline at the same error target).
	Mode string
	// ErrTarget is the relative-error target; DeadlineMS the contract
	// deadline (0 = none; streams never have one).
	ErrTarget  float64
	DeadlineMS float64
	Runs       int
	// Met/Degraded/Missed count the contract verdicts (contract mode
	// only; the stream baseline always runs to its target).
	Met, Degraded, Missed int
	// P50MS/P95MS are the per-query wall-clock latency percentiles.
	P50MS, P95MS float64
	// MeanSamples and MeanAchieved average the final sample counts and
	// achieved relative errors.
	MeanSamples  float64
	MeanAchieved float64
	// MeanSnapshots is the average number of answers delivered per query:
	// 1 for contracts, the emitted snapshot count for streams.
	MeanSnapshots float64
}

// A11Result is the ablation's output table.
type A11Result struct {
	Points []A11Point
	// ColdPlans counts planner invocations that fell back to priors —
	// after the warmup queries this should stay at the warmup's own count.
	ColdPlans uint64
}

// a11Data builds the ablation dataset: uniform positions with a value
// attribute ~ N(100, 20), the same shape the engine's contract tests and
// the synthetic OSM generator use (CV ≈ 0.2).
func a11Data(n int, seed int64) *data.Dataset {
	ds := data.NewDataset("a11")
	ds.AddNumericColumn("value")
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		pos := geo.Vec{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		id := ds.AppendFast(pos)
		ds.SetNumeric("value", id, 100+rng.NormFloat64()*20)
	}
	return ds
}

// percentile returns the p-quantile (0..1) of xs by nearest-rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// A11 measures what query contracts buy and cost: for each error target ×
// deadline the seeded AVG query runs under an ERROR/WITHIN contract (one
// answer, graded verdict, planner-chosen stopping rule) and the table
// reports the met/degraded/missed split with the latency distribution.
// The uncapped snapshot-stream baseline runs the same error targets with
// no deadline — the pre-contract way to reach an accuracy, paying an
// open-ended latency and a stream of intermediate snapshots for it.
func A11(cfg A11Config) (A11Result, error) {
	cfg = cfg.withDefaults()
	ds := a11Data(cfg.N, cfg.Seed)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}

	eng := engine.New(engine.Config{Seed: cfg.Seed, BufferPoolPages: 4096, Obs: Obs})
	h, err := eng.Register(ds, engine.IndexOptions{})
	if err != nil {
		return A11Result{}, err
	}

	// Warm the dataset's response profile (throughput and CV telemetry):
	// production contract planning is steady-state planning, and the cold
	// first-query fallback is covered by the engine's unit tests.
	for s := int64(1); s <= 3; s++ {
		if _, err := h.Estimate(context.Background(), all, engine.Options{
			Kind: estimator.Avg, Attr: "value", MaxSamples: 2000, Seed: s,
		}); err != nil {
			return A11Result{}, err
		}
	}

	var res A11Result
	for _, target := range cfg.ErrTargets {
		for _, deadline := range cfg.Deadlines {
			p := A11Point{
				Mode: "contract", ErrTarget: target, Runs: cfg.Runs,
				DeadlineMS: float64(deadline) / float64(time.Millisecond),
			}
			var lats []float64
			for i := 0; i < cfg.Runs; i++ {
				r, err := h.EstimateContract(context.Background(), all, engine.Options{
					Kind: estimator.Avg, Attr: "value", Seed: cfg.Seed + int64(i),
				}, engine.Contract{RelError: target, Confidence: 0.95, Deadline: deadline})
				if err != nil {
					return A11Result{}, err
				}
				switch r.Status {
				case engine.ContractMet:
					p.Met++
				case engine.ContractDegraded:
					p.Degraded++
				case engine.ContractMissed:
					p.Missed++
				}
				lats = append(lats, float64(r.Elapsed)/float64(time.Millisecond))
				p.MeanSamples += float64(r.Samples)
				if !math.IsInf(r.AchievedRelError, 0) {
					p.MeanAchieved += r.AchievedRelError
				}
			}
			p.P50MS, p.P95MS = percentile(lats, 0.50), percentile(lats, 0.95)
			p.MeanSamples /= float64(cfg.Runs)
			p.MeanAchieved /= float64(cfg.Runs)
			p.MeanSnapshots = 1
			res.Points = append(res.Points, p)
		}

		// Uncapped stream baseline: same accuracy, no deadline, snapshot
		// stream drained to its final answer.
		p := A11Point{Mode: "stream", ErrTarget: target, Runs: cfg.Runs}
		var lats []float64
		for i := 0; i < cfg.Runs; i++ {
			ch, err := h.EstimateOnline(context.Background(), all, engine.Options{
				Kind: estimator.Avg, Attr: "value",
				TargetRelError: target, Confidence: 0.95, Seed: cfg.Seed + int64(i),
			})
			if err != nil {
				return A11Result{}, err
			}
			snaps := 0
			var last engine.Snapshot
			for s := range ch {
				last = s
				snaps++
			}
			lats = append(lats, float64(last.Elapsed)/float64(time.Millisecond))
			p.MeanSamples += float64(last.Samples)
			if rel := last.RelativeErrorBound(); !math.IsInf(rel, 0) {
				p.MeanAchieved += rel
			}
			p.MeanSnapshots += float64(snaps)
		}
		p.Met = cfg.Runs // the uncapped stream always runs to its target
		p.P50MS, p.P95MS = percentile(lats, 0.50), percentile(lats, 0.95)
		p.MeanSamples /= float64(cfg.Runs)
		p.MeanAchieved /= float64(cfg.Runs)
		p.MeanSnapshots /= float64(cfg.Runs)
		res.Points = append(res.Points, p)
	}

	if Obs != nil {
		res.ColdPlans = Obs.Counter("storm.engine.contracts.cold_plans").Value()
	}
	return res, nil
}

// DeadlineLabel renders the point's deadline for the table ("-" when
// none).
func (p A11Point) DeadlineLabel() string {
	if p.DeadlineMS == 0 {
		return "-"
	}
	return fmt.Sprintf("%gms", p.DeadlineMS)
}
