package bench

import (
	"fmt"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/wire"
)

// A9Config sizes the transport ablation: the same batched sample drain
// through an in-process loopback cluster and through shard hosts behind
// real TCP sockets.
type A9Config struct {
	N      int // dataset size
	K      int // samples drained per run
	Shards int
	Hosts  int // TCP shard-host processes (in-process listeners)
	Batch  int // NextBatch size per round
	Seed   int64
}

func (c A9Config) withDefaults() A9Config {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.K == 0 {
		c.K = 20_000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A9Point is one transport's measurement.
type A9Point struct {
	Transport string // "loopback" or "tcp"
	Samples   int
	Rounds    int
	WallMS    float64
	// RoundUS is the mean wall time of one NextBatch round in µs — the
	// interactive-latency cost of putting sockets under the coordinator.
	RoundUS float64
	// Messages and SamplesMoved come from the cluster's NetStats: the
	// loopback cluster reports the simulated protocol charges (comparable
	// with ablation A4), the TCP cluster reports transport-measured
	// request+response counts and real encoded bytes.
	Messages     uint64
	SamplesMoved uint64
	BytesSent    uint64
	BytesRecv    uint64
	// Identical reports whether this transport's sample stream was
	// byte-identical to the loopback baseline (always true for the
	// baseline itself).
	Identical bool
}

// A9 measures what cluster mode costs: the identical seeded drain runs
// through the loopback transport and through real TCP shard hosts, so the
// wall-clock delta is pure transport overhead — the sample streams are
// verified byte-identical before the numbers are reported.
func A9(cfg A9Config) ([]A9Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()
	dcfg := distr.Config{Shards: cfg.Shards, Seed: cfg.Seed, Obs: Obs}

	local, err := distr.Build(ds, dcfg)
	if err != nil {
		return nil, err
	}
	defer local.Close()

	hosts := make([]*wire.Server, cfg.Hosts)
	addrs := make([]string, cfg.Hosts)
	for i := range hosts {
		h := distr.NewHost()
		h.AddDataset(ds)
		srv, err := wire.NewServer("127.0.0.1:0", h)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		hosts[i], addrs[i] = srv, srv.Addr()
	}
	remote, err := distr.BuildRemote(ds, dcfg, addrs)
	if err != nil {
		return nil, err
	}
	defer remote.Close()

	run := func(name string, c *distr.Cluster) (A9Point, []data.ID) {
		c.ResetNet()
		s := c.Sampler(q)
		defer s.Close()
		buf := make([]data.Entry, cfg.Batch)
		ids := make([]data.ID, 0, cfg.K)
		rounds := 0
		start := time.Now()
		for len(ids) < cfg.K {
			want := cfg.Batch
			if rem := cfg.K - len(ids); rem < want {
				want = rem
			}
			got := s.NextBatch(buf, want)
			for _, e := range buf[:got] {
				ids = append(ids, e.ID)
			}
			rounds++
			if got < want {
				break // population exhausted
			}
		}
		elapsed := time.Since(start)
		net := c.Net()
		p := A9Point{
			Transport:    name,
			Samples:      len(ids),
			Rounds:       rounds,
			WallMS:       float64(elapsed.Microseconds()) / 1e3,
			Messages:     net.Messages,
			SamplesMoved: net.SamplesMoved,
			BytesSent:    net.BytesSent,
			BytesRecv:    net.BytesRecv,
		}
		if rounds > 0 {
			p.RoundUS = float64(elapsed.Microseconds()) / float64(rounds)
		}
		return p, ids
	}

	lp, lids := run("loopback", local)
	lp.Identical = true
	tp, tids := run("tcp", remote)
	tp.Identical = len(lids) == len(tids)
	for i := 0; tp.Identical && i < len(lids); i++ {
		tp.Identical = lids[i] == tids[i]
	}
	if !tp.Identical {
		return nil, fmt.Errorf("bench A9: TCP stream diverged from loopback under seed %d", cfg.Seed)
	}
	return []A9Point{lp, tp}, nil
}
