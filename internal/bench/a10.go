package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/stats"
	"storm/internal/wire"
)

// A10Config sizes the predicate-pushdown ablation: the same seeded WHERE
// aggregate runs with node-summary pruning and with the rejection
// baseline across a sweep of predicate selectivities.
type A10Config struct {
	N             int       // dataset size
	K             int       // samples drawn per query
	Selectivities []float64 // fractions of records each predicate keeps
	Shards        int       // shards for the wire-identity leg
	Hosts         int       // TCP shard hosts for the wire-identity leg
	WireK         int       // samples drained in the wire-identity leg
	Seed          int64
}

func (c A10Config) withDefaults() A10Config {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.K == 0 {
		c.K = 1_000
	}
	if len(c.Selectivities) == 0 {
		c.Selectivities = []float64{0.5, 0.1, 0.01, 0.001}
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.WireK == 0 {
		c.WireK = 2_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A10Point is one (selectivity, strategy) measurement.
type A10Point struct {
	// Selectivity is the requested qualifying fraction; Qualifying the
	// exact count the threshold realized.
	Selectivity float64
	Qualifying  int
	Strategy    string // "pushdown" or "rejection"
	Samples     int
	// Draws is the total sampler work consumed — delivered plus rejected
	// draws — the quantity rejection inflates by ~1/selectivity and
	// pruning keeps near the delivered count.
	Draws uint64
	// Rejects is the discarded share of Draws; Pruned the subtrees the
	// node summaries excluded from descents (pushdown only).
	Rejects uint64
	Pruned  uint64
	// LogicalIO is the query's attributed logical page accesses.
	LogicalIO uint64
	WallMS    float64
}

// A10Result is the ablation's output: the sweep table plus the
// wire-identity verification of the distributed pushdown path.
type A10Result struct {
	Points []A10Point
	// WireIdentical reports that the predicate-pushdown sample stream
	// drained through real TCP shard hosts was byte-identical to the
	// loopback cluster's under the same seed.
	WireIdentical bool
}

// a10Data builds a dataset whose numeric attribute is spatially
// correlated — value tracks the x coordinate with small noise — so STR
// leaves carry tight value digests and node-summary pruning has
// structure to exploit. A spatially uncorrelated attribute is pushdown's
// worst case (every leaf envelope spans the whole value range and
// nothing prunes); correlation is the common case for sensor readings,
// elevations, densities and timestamps-as-attributes.
func a10Data(n int, seed int64) *data.Dataset {
	ds := data.NewDataset("a10")
	ds.AddNumericColumn("value")
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		pos := geo.Vec{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		id := ds.AppendFast(pos)
		ds.SetNumeric("value", id, 10*pos.X()+rng.NormFloat64()*2)
	}
	return ds
}

// a10Threshold returns the value cutoff whose ≥-predicate keeps the
// requested fraction of records (empirical quantile, exact by scan).
func a10Threshold(ds *data.Dataset, frac float64) float64 {
	col, _ := ds.NumericColumn("value")
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	idx := int(math.Round(float64(len(sorted)) * (1 - frac)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// A10 measures what predicate pushdown buys: for each selectivity the
// identical seeded AVG(value) WHERE value ≥ τ query runs once with
// node-summary pruning and once as the rejection baseline, and the table
// reports sampler work, pruned subtrees, and logical I/O. It then drains
// the same pushdown predicate through a loopback cluster and through
// real TCP shard hosts and verifies the streams byte-identical — the
// wire really ships the predicate, not a coordinator-side filter.
func A10(cfg A10Config) (A10Result, error) {
	cfg = cfg.withDefaults()
	ds := a10Data(cfg.N, cfg.Seed)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}

	eng := engine.New(engine.Config{Seed: cfg.Seed, BufferPoolPages: 4096, Obs: Obs})
	h, err := eng.Register(ds, engine.IndexOptions{})
	if err != nil {
		return A10Result{}, err
	}
	drawn := eng.Obs().Counter("storm.engine.samples.drawn")
	rejects := eng.Obs().Counter("storm.engine.sampler.rejects")
	pruned := eng.Obs().Counter("storm.engine.pushdown.pruned_nodes")

	var res A10Result
	for _, sel := range cfg.Selectivities {
		terms := []pred.Term{{Attr: "value", Lo: a10Threshold(ds, sel), Hi: math.Inf(1)}}
		for _, strat := range []engine.PushdownStrategy{engine.PushdownForce, engine.PushdownOff} {
			d0, r0, p0 := drawn.Value(), rejects.Value(), pruned.Value()
			start := time.Now()
			snap, err := h.Estimate(context.Background(), all, engine.Options{
				Kind: estimator.Avg, Attr: "value",
				Where: terms, Pushdown: strat,
				Method: engine.MethodRSTree, MaxSamples: cfg.K, Seed: cfg.Seed,
			})
			if err != nil {
				return A10Result{}, err
			}
			elapsed := time.Since(start)
			if !snap.Done {
				return A10Result{}, fmt.Errorf("bench A10: query did not finish at selectivity %g", sel)
			}
			dd, rd := drawn.Value()-d0, rejects.Value()-r0
			res.Points = append(res.Points, A10Point{
				Selectivity: sel,
				Qualifying:  snap.Population,
				Strategy:    strat.String(),
				Samples:     snap.Samples,
				Draws:       dd + rd,
				Rejects:     rd,
				Pruned:      pruned.Value() - p0,
				LogicalIO:   snap.IO.Logical,
				WallMS:      float64(elapsed.Microseconds()) / 1e3,
			})
		}
	}

	identical, err := a10WireIdentity(cfg, ds, all.Rect())
	if err != nil {
		return A10Result{}, err
	}
	res.WireIdentical = identical
	return res, nil
}

// a10WireIdentity drains the same seeded pushdown predicate through the
// loopback cluster and through TCP shard hosts and compares the streams.
func a10WireIdentity(cfg A10Config, ds *data.Dataset, q geo.Rect) (bool, error) {
	terms := []pred.Term{{Attr: "value", Lo: a10Threshold(ds, 0.1), Hi: math.Inf(1)}}
	dcfg := distr.Config{Shards: cfg.Shards, Seed: cfg.Seed, Obs: Obs}

	local, err := distr.Build(ds, dcfg)
	if err != nil {
		return false, err
	}
	defer local.Close()

	addrs := make([]string, cfg.Hosts)
	for i := range addrs {
		h := distr.NewHost()
		h.AddDataset(ds)
		srv, err := wire.NewServer("127.0.0.1:0", h)
		if err != nil {
			return false, err
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	remote, err := distr.BuildRemote(ds, dcfg, addrs)
	if err != nil {
		return false, err
	}
	defer remote.Close()

	drain := func(c *distr.Cluster) []data.ID {
		s := c.SamplerWhere(q, terms)
		defer s.Close()
		buf := make([]data.Entry, 256)
		ids := make([]data.ID, 0, cfg.WireK)
		for len(ids) < cfg.WireK {
			want := cfg.WireK - len(ids)
			if want > len(buf) {
				want = len(buf)
			}
			got := s.NextBatch(buf, want)
			for _, e := range buf[:got] {
				ids = append(ids, e.ID)
			}
			if got < want {
				break
			}
		}
		return ids
	}
	lids, tids := drain(local), drain(remote)
	if len(lids) != len(tids) {
		return false, fmt.Errorf("bench A10: TCP predicate stream length %d != loopback %d", len(tids), len(lids))
	}
	for i := range lids {
		if lids[i] != tids[i] {
			return false, fmt.Errorf("bench A10: TCP predicate stream diverged from loopback at sample %d", i)
		}
	}
	return true, nil
}
