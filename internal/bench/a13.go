package bench

import (
	"fmt"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/estimator"
)

// A13Config sizes the replication ablation: the query's hottest shard
// loses a copy mid-stream, and the three modes compare an unreplicated
// cluster degrading onto the survivors against an R=2 cluster failing the
// stream over to the surviving replica, with the no-fault baseline.
type A13Config struct {
	N      int
	K      int // samples per query
	Shards int
	// CrashAfter is how many fetches the doomed copy serves before dying
	// (the "mid-query" part of the scenario).
	CrashAfter int
	Seed       int64
}

func (c A13Config) withDefaults() A13Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.K == 0 {
		c.K = 5000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.CrashAfter == 0 {
		c.CrashAfter = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A13Point is one mode's measurement.
type A13Point struct {
	Mode     string
	Replicas int
	// Population is the estimator's final effective N; HealthyPop the
	// pre-crash matching count. A failover run ends with the two equal —
	// the population stays intact — where a degraded run shrinks it.
	Population int
	HealthyPop int
	Value      float64
	HalfWidth  float64
	// LostLow/LostHigh are the lost-mass worst-case bounds on the
	// full-population mean (degraded mode only; zero elsewhere).
	LostLow  float64
	LostHigh float64
	WallMS   float64
	Crashes  uint64
	// Failovers echoes storm.distr.replicas.failovers for the run: streams
	// reopened on a surviving copy instead of degrading.
	Failovers uint64
	Degraded  bool
}

// A13 measures what replication buys: an AVG query whose hottest shard
// loses a copy mid-stream. "r1-degraded" has no second copy, so the
// coordinator re-weights onto the survivors and reports the honest
// shrunken-population CI plus worst-case lost-mass bounds; "r2-failover"
// reopens the dead copy's remainder on the surviving replica and finishes
// over the full population with the healthy CI width; "healthy" is the
// no-fault baseline. The failover run must end non-degraded with the full
// population or the ablation reports an error rather than a table.
func A13(cfg A13Config) ([]A13Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()

	// Crash the shard holding the most matching records (see A7): with
	// Hilbert partitioning a selective query concentrates on few shards,
	// so killing a spatially irrelevant copy would measure nothing.
	probe, err := distr.Build(ds, distr.Config{Shards: cfg.Shards, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	target, best := 0, -1
	for i, sh := range probe.Shards() {
		if n := sh.Index().Count(q); n > best {
			target, best = i, n
		}
	}

	modes := []struct {
		name     string
		replicas int
		plan     *distr.FaultPlan
	}{
		{"healthy", 1, nil},
		// A plain shard target scripts every copy, so at R=1 this is the
		// copy: the shard is gone and the query degrades.
		{"r1-degraded", 1, &distr.FaultPlan{Seed: cfg.Seed, Shards: map[int]distr.ShardFaultPlan{
			target: {Crash: true, CrashAfterFetches: cfg.CrashAfter},
		}}},
		// A '<shard>.<replica>' target scripts one copy: replica 0 dies
		// mid-stream and the fetch path fails over to replica 1.
		{"r2-failover", 2, &distr.FaultPlan{Seed: cfg.Seed, Replicas: map[distr.ReplicaTarget]distr.ShardFaultPlan{
			{Shard: target, Replica: 0}: {Crash: true, CrashAfterFetches: cfg.CrashAfter},
		}}},
	}

	col, err := ds.NumericColumn("altitude")
	if err != nil {
		return nil, err
	}
	var out []A13Point
	for _, mode := range modes {
		c, err := distr.Build(ds, distr.Config{
			Shards:   cfg.Shards,
			Seed:     cfg.Seed,
			Replicas: mode.replicas,
			Obs:      Obs,
			Faults:   mode.plan,
		})
		if err != nil {
			return nil, err
		}
		healthy := c.Count(q)
		est, err := estimator.New(estimator.Avg, 0.95, healthy, true)
		if err != nil {
			return nil, err
		}
		// Drive the sampler by hand (EstimateAvg's loop) so the degraded
		// mode's lost-mass bounds are readable off the sampler at the end.
		start := time.Now()
		s := c.Sampler(q)
		buf := make([]data.Entry, 1024)
		for drawn := 0; drawn < cfg.K; {
			want := cfg.K - drawn
			if want > len(buf) {
				want = len(buf)
			}
			n := s.NextBatch(buf, want)
			for _, e := range buf[:n] {
				est.Add(col[e.ID])
			}
			_, lostPop := s.Degradation()
			est.SetPopulation(healthy - lostPop)
			drawn += n
			if n < want {
				break
			}
		}
		elapsed := time.Since(start)
		snap := est.Snapshot()
		p := A13Point{
			Mode:       mode.name,
			Replicas:   mode.replicas,
			Population: snap.Population,
			HealthyPop: healthy,
			Value:      snap.Value,
			HalfWidth:  snap.HalfWidth,
			WallMS:     float64(elapsed.Microseconds()) / 1000,
			Crashes:    c.FaultStats().Crashes,
			Failovers:  c.ReplicaStats().Failovers,
			Degraded:   s.Degraded(),
		}
		if s.Degraded() {
			if lo, hi, lostN, ok := s.LostMassBounds("altitude"); ok {
				if low, high, ok := estimator.LostMassBounds(snap, lo, hi, lostN); ok {
					p.LostLow, p.LostHigh = low, high
				}
			}
		}
		switch mode.name {
		case "r1-degraded":
			if !s.Degraded() {
				return nil, fmt.Errorf("bench A13: r1-degraded mode did not degrade (crashes=%d)", p.Crashes)
			}
		case "r2-failover":
			if s.Degraded() || p.Failovers == 0 || p.Population != healthy {
				return nil, fmt.Errorf("bench A13: r2-failover mode did not fail over cleanly (degraded=%v, failovers=%d, pop=%d/%d)",
					s.Degraded(), p.Failovers, p.Population, healthy)
			}
		}
		s.Close()
		c.Close()
		out = append(out, p)
	}
	return out, nil
}
