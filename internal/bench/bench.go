// Package bench implements STORM's benchmark harness: one function per
// paper figure (and per ablation), each regenerating the corresponding
// curve or table from scratch on synthetic data. The cmd/stormbench binary
// and the repository-root testing.B benchmarks are thin wrappers over this
// package, so a figure is reproduced identically from either entry point.
//
// EXPERIMENTS.md records the paper-vs-measured comparison for every
// experiment here.
package bench

import (
	"fmt"

	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/rtree"
)

// slcRegion is the Salt Lake City zoom-in used by several experiments.
var slcRegion = geo.Range{MinX: -112.4, MinY: 40.2, MaxX: -111.4, MaxY: 41.2}

// usaRegion is the whole-country zoom-out.
var usaRegion = geo.Range{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}

// queryFor returns a spatio-temporal query whose selectivity over the OSM
// dataset is roughly the requested fraction, found by shrinking a box
// around a dense city until the count lands near the target. The paper
// fixes one range query Q and varies k; targetFrac positions q/N.
func queryFor(ds *data.Dataset, targetFrac float64) geo.Range {
	// The generator clusters around cities; a box around NYC with a
	// full-year time window is dense enough to tune by scaling.
	base := geo.Range{MinX: -76, MinY: 38.7, MaxX: -72, MaxY: 42.7, MinT: 0, MaxT: 86400 * 365}
	count := func(r geo.Range) int {
		rect := r.Rect()
		c := 0
		for i := 0; i < ds.Len(); i++ {
			if rect.Contains(ds.Pos(uint64(i))) {
				c++
			}
		}
		return c
	}
	target := int(targetFrac * float64(ds.Len()))
	lo, hi := 0.01, 1.0 // scale factor on the box half-extent
	cx, cy := (base.MinX+base.MaxX)/2, (base.MinY+base.MaxY)/2
	hw, hh := (base.MaxX-base.MinX)/2, (base.MaxY-base.MinY)/2
	scaled := func(s float64) geo.Range {
		r := base
		r.MinX, r.MaxX = cx-hw*s, cx+hw*s
		r.MinY, r.MaxY = cy-hh*s, cy+hh*s
		return r
	}
	if count(scaled(hi)) < target {
		return scaled(hi)
	}
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		if count(scaled(mid)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return scaled(hi)
}

// newDevice builds the simulated disk used by the figure experiments: an
// LRU buffer pool sized as a fraction of the tree's pages.
func newDevice(pages int) *iosim.Device {
	return iosim.NewDevice(pages, iosim.DefaultCostModel())
}

// mustPlainTree bulk-loads an STR R-tree over the entries.
func mustPlainTree(entries []data.Entry, fanout int, dev iosim.Accountant) *rtree.Tree {
	t := rtree.MustNew(rtree.Config{Fanout: fanout, Device: dev})
	t.BulkLoad(entries)
	return t
}

// trueAvg computes the exact average of a column over a range.
func trueAvg(ds *data.Dataset, col []float64, q geo.Range) (float64, int) {
	rect := q.Rect()
	var sum float64
	n := 0
	for i := 0; i < ds.Len(); i++ {
		if rect.Contains(ds.Pos(uint64(i))) {
			sum += col[i]
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// osmData memoizes the OSM dataset per size so running several figures in
// one stormbench invocation generates it once.
var osmCache = map[string]*data.Dataset{}

func osmData(n int, seed int64) *data.Dataset {
	key := fmt.Sprintf("%d-%d", n, seed)
	if ds, ok := osmCache[key]; ok {
		return ds
	}
	ds := gen.OSM(gen.OSMConfig{N: n, Seed: seed})
	osmCache[key] = ds
	return ds
}

var tweetCache = map[string]*data.Dataset{}
var tweetTruthCache = map[string]map[string][]geo.Vec{}

func tweetData(n int, seed int64, snowstorm bool) (*data.Dataset, map[string][]geo.Vec) {
	key := fmt.Sprintf("%d-%d-%v", n, seed, snowstorm)
	if ds, ok := tweetCache[key]; ok {
		return ds, tweetTruthCache[key]
	}
	ds, truth := gen.Tweets(gen.TweetsConfig{N: n, Seed: seed, Snowstorm: snowstorm})
	tweetCache[key] = ds
	tweetTruthCache[key] = truth
	return ds, truth
}
