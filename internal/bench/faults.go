package bench

import (
	"math"
	"sort"
	"time"

	"storm/internal/distr"
)

// A7Config sizes the fault ablation: kill k of Shards shards mid-query and
// measure the accuracy and latency cost of degrading onto the survivors.
type A7Config struct {
	N      int
	K      int // samples per query
	Shards int
	Kill   []int // shards killed per run; each must be < Shards
	// CrashAfter is how many fetches a doomed shard serves before dying
	// (the "mid-query" part of the scenario).
	CrashAfter int
	Seed       int64
}

func (c A7Config) withDefaults() A7Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.K == 0 {
		c.K = 5000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if len(c.Kill) == 0 {
		c.Kill = []int{0, 1, 2, 4}
	}
	if c.CrashAfter == 0 {
		// The batched coordinator issues one demand-sized fetch per shard
		// per ~1k-sample round, so a few fetches is already "mid-query".
		c.CrashAfter = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A7Point is one kill-count measurement.
type A7Point struct {
	Killed int
	// Population is the estimator's effective N after degradation (the
	// surviving matching count); HealthyPop is the pre-crash count.
	Population int
	HealthyPop int
	// Value and HalfWidth are the final AVG estimate and its 95% CI
	// half-width; RelWidth is HalfWidth/|Value|.
	Value     float64
	HalfWidth float64
	RelWidth  float64
	WallMS    float64
	// Crashes/Retries/Timeouts echo the storm.distr.faults.* counters for
	// the run, tying each column back to the injected events.
	Crashes  uint64
	Retries  uint64
	Timeouts uint64
}

// A7 measures graceful degradation: an AVG query over an 8-shard cluster
// while k shards crash mid-query. The coordinator re-weights onto the
// survivors and shrinks the effective population, so the query completes
// with an honest (wider) CI instead of stalling; the CI-width and latency
// columns quantify the cost of each lost shard.
func A7(cfg A7Config) ([]A7Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()

	// Kill the shards holding the most matching records: with Hilbert
	// partitioning a selective query concentrates on few shards, so killing
	// spatially irrelevant ones would measure nothing. Probe a healthy
	// build for per-shard matching counts.
	probe, err := distr.Build(ds, distr.Config{Shards: cfg.Shards, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	byMatch := make([]int, cfg.Shards)
	matching := make([]int, cfg.Shards)
	for i, sh := range probe.Shards() {
		byMatch[i] = i
		matching[i] = sh.Index().Count(q)
	}
	sort.Slice(byMatch, func(a, b int) bool { return matching[byMatch[a]] > matching[byMatch[b]] })

	var out []A7Point
	for _, kill := range cfg.Kill {
		if kill >= cfg.Shards {
			kill = cfg.Shards - 1 // always leave at least one survivor
		}
		var plan *distr.FaultPlan
		if kill > 0 {
			plan = &distr.FaultPlan{Seed: cfg.Seed, Shards: map[int]distr.ShardFaultPlan{}}
			for _, shard := range byMatch[:kill] {
				plan.Shards[shard] = distr.ShardFaultPlan{
					Crash: true, CrashAfterFetches: cfg.CrashAfter,
				}
			}
		}
		c, err := distr.Build(ds, distr.Config{
			Shards: cfg.Shards,
			Seed:   cfg.Seed,
			Obs:    Obs,
			Faults: plan,
		})
		if err != nil {
			return nil, err
		}
		healthy := c.Count(q)
		start := time.Now()
		est, err := c.EstimateAvg(q, "altitude", cfg.K, 0.95)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		st := c.FaultStats()
		rel := math.Inf(1)
		if est.Value != 0 {
			rel = est.HalfWidth / math.Abs(est.Value)
		}
		out = append(out, A7Point{
			Killed:     kill,
			Population: est.Population,
			HealthyPop: healthy,
			Value:      est.Value,
			HalfWidth:  est.HalfWidth,
			RelWidth:   rel,
			WallMS:     float64(elapsed.Microseconds()) / 1000,
			Crashes:    st.Crashes,
			Retries:    st.Retries,
			Timeouts:   st.Timeouts,
		})
	}
	return out, nil
}
