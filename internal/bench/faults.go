package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/estimator"
)

// A7Config sizes the fault ablation: kill k of Shards shards mid-query and
// measure the accuracy and latency cost of degrading onto the survivors.
type A7Config struct {
	N      int
	K      int // samples per query
	Shards int
	Kill   []int // shards killed per run; each must be < Shards
	// CrashAfter is how many fetches a doomed shard serves before dying
	// (the "mid-query" part of the scenario).
	CrashAfter int
	Seed       int64
}

func (c A7Config) withDefaults() A7Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.K == 0 {
		c.K = 5000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if len(c.Kill) == 0 {
		c.Kill = []int{0, 1, 2, 4}
	}
	if c.CrashAfter == 0 {
		// The batched coordinator issues one demand-sized fetch per shard
		// per ~1k-sample round, so a few fetches is already "mid-query".
		c.CrashAfter = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A7Point is one kill-count measurement.
type A7Point struct {
	Killed int
	// Population is the estimator's effective N after degradation (the
	// surviving matching count); HealthyPop is the pre-crash count.
	Population int
	HealthyPop int
	// Value and HalfWidth are the final AVG estimate and its 95% CI
	// half-width; RelWidth is HalfWidth/|Value|.
	Value     float64
	HalfWidth float64
	RelWidth  float64
	WallMS    float64
	// Crashes/Retries/Timeouts echo the storm.distr.faults.* counters for
	// the run, tying each column back to the injected events.
	Crashes  uint64
	Retries  uint64
	Timeouts uint64
}

// A7 measures graceful degradation: an AVG query over an 8-shard cluster
// while k shards crash mid-query. The coordinator re-weights onto the
// survivors and shrinks the effective population, so the query completes
// with an honest (wider) CI instead of stalling; the CI-width and latency
// columns quantify the cost of each lost shard.
func A7(cfg A7Config) ([]A7Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()

	// Kill the shards holding the most matching records: with Hilbert
	// partitioning a selective query concentrates on few shards, so killing
	// spatially irrelevant ones would measure nothing. Probe a healthy
	// build for per-shard matching counts.
	probe, err := distr.Build(ds, distr.Config{Shards: cfg.Shards, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	byMatch := make([]int, cfg.Shards)
	matching := make([]int, cfg.Shards)
	for i, sh := range probe.Shards() {
		byMatch[i] = i
		matching[i] = sh.Index().Count(q)
	}
	sort.Slice(byMatch, func(a, b int) bool { return matching[byMatch[a]] > matching[byMatch[b]] })

	var out []A7Point
	for _, kill := range cfg.Kill {
		if kill >= cfg.Shards {
			kill = cfg.Shards - 1 // always leave at least one survivor
		}
		var plan *distr.FaultPlan
		if kill > 0 {
			plan = &distr.FaultPlan{Seed: cfg.Seed, Shards: map[int]distr.ShardFaultPlan{}}
			for _, shard := range byMatch[:kill] {
				plan.Shards[shard] = distr.ShardFaultPlan{
					Crash: true, CrashAfterFetches: cfg.CrashAfter,
				}
			}
		}
		c, err := distr.Build(ds, distr.Config{
			Shards: cfg.Shards,
			Seed:   cfg.Seed,
			Obs:    Obs,
			Faults: plan,
		})
		if err != nil {
			return nil, err
		}
		healthy := c.Count(q)
		start := time.Now()
		est, err := c.EstimateAvg(q, "altitude", cfg.K, 0.95)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		st := c.FaultStats()
		rel := math.Inf(1)
		if est.Value != 0 {
			rel = est.HalfWidth / math.Abs(est.Value)
		}
		out = append(out, A7Point{
			Killed:     kill,
			Population: est.Population,
			HealthyPop: healthy,
			Value:      est.Value,
			HalfWidth:  est.HalfWidth,
			RelWidth:   rel,
			WallMS:     float64(elapsed.Microseconds()) / 1000,
			Crashes:    st.Crashes,
			Retries:    st.Retries,
			Timeouts:   st.Timeouts,
		})
	}
	return out, nil
}

// A8Config sizes the recovery ablation: the query's hottest shard crashes
// mid-stream, and the three modes compare never coming back (degraded,
// with lost-mass bounds), coming back mid-query (re-admitted), and never
// crashing at all.
type A8Config struct {
	N      int
	K      int // samples per query
	Shards int
	// CrashAfter is how many fetches the doomed shard serves before dying;
	// RecoverAfter is the recovery clock for the "recover" mode (coordinator
	// observations of the down shard before it rejoins).
	CrashAfter   int
	RecoverAfter int
	Seed         int64
}

func (c A8Config) withDefaults() A8Config {
	if c.N == 0 {
		c.N = 500_000
	}
	if c.K == 0 {
		c.K = 5000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.CrashAfter == 0 {
		c.CrashAfter = 2
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A8Point is one mode's measurement.
type A8Point struct {
	Mode string
	// Population is the estimator's final effective N; HealthyPop the
	// pre-crash matching count. A recovered run ends with the two equal.
	Population int
	HealthyPop int
	Value      float64
	HalfWidth  float64
	// LostLow/LostHigh are the lost-mass worst-case bounds on the
	// full-population mean (degraded mode only; zero elsewhere).
	LostLow  float64
	LostHigh float64
	WallMS   float64
	Crashes  uint64
	Readmits uint64
}

// A8 measures kill-then-recover: an AVG query whose hottest shard crashes
// mid-stream. "degraded" never gets it back and reports the honest
// surviving-population CI plus worst-case lost-mass bounds over the full
// population; "recover" re-admits the shard mid-query and converges back
// onto the full population; "healthy" is the no-fault baseline.
func A8(cfg A8Config) ([]A8Point, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, 0.2).Rect()

	// Crash the shard holding the most matching records (see A7).
	probe, err := distr.Build(ds, distr.Config{Shards: cfg.Shards, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	target, best := 0, -1
	for i, sh := range probe.Shards() {
		if n := sh.Index().Count(q); n > best {
			target, best = i, n
		}
	}

	modes := []struct {
		name string
		plan *distr.FaultPlan
	}{
		{"healthy", nil},
		{"degraded", &distr.FaultPlan{Seed: cfg.Seed, Shards: map[int]distr.ShardFaultPlan{
			target: {Crash: true, CrashAfterFetches: cfg.CrashAfter},
		}}},
		{"recover", &distr.FaultPlan{Seed: cfg.Seed, Shards: map[int]distr.ShardFaultPlan{
			target: {Crash: true, CrashAfterFetches: cfg.CrashAfter, RecoverAfter: cfg.RecoverAfter},
		}}},
	}

	col, err := ds.NumericColumn("altitude")
	if err != nil {
		return nil, err
	}
	var out []A8Point
	for _, mode := range modes {
		c, err := distr.Build(ds, distr.Config{
			Shards: cfg.Shards,
			Seed:   cfg.Seed,
			Obs:    Obs,
			Faults: mode.plan,
		})
		if err != nil {
			return nil, err
		}
		healthy := c.Count(q)
		est, err := estimator.New(estimator.Avg, 0.95, healthy, true)
		if err != nil {
			return nil, err
		}
		// Drive the sampler by hand (EstimateAvg's loop) so the degraded
		// mode's lost-mass bounds are readable off the sampler at the end.
		start := time.Now()
		s := c.Sampler(q)
		buf := make([]data.Entry, 1024)
		for drawn := 0; drawn < cfg.K; {
			want := cfg.K - drawn
			if want > len(buf) {
				want = len(buf)
			}
			n := s.NextBatch(buf, want)
			for _, e := range buf[:n] {
				est.Add(col[e.ID])
			}
			_, lostPop := s.Degradation()
			est.SetPopulation(healthy - lostPop)
			drawn += n
			if n < want {
				break
			}
		}
		elapsed := time.Since(start)
		snap := est.Snapshot()
		p := A8Point{
			Mode:       mode.name,
			Population: snap.Population,
			HealthyPop: healthy,
			Value:      snap.Value,
			HalfWidth:  snap.HalfWidth,
			WallMS:     float64(elapsed.Microseconds()) / 1000,
			Crashes:    c.FaultStats().Crashes,
			Readmits:   uint64(s.Readmits()),
		}
		if s.Degraded() {
			if lo, hi, lostN, ok := s.LostMassBounds("altitude"); ok {
				if low, high, ok := estimator.LostMassBounds(snap, lo, hi, lostN); ok {
					p.LostLow, p.LostHigh = low, high
				}
			}
		}
		if mode.name == "recover" && (s.Degraded() || s.Readmits() == 0) {
			return nil, fmt.Errorf("bench: recover mode did not complete its crash→readmit cycle (readmits=%d, degraded=%v)",
				s.Readmits(), s.Degraded())
		}
		out = append(out, p)
	}
	return out, nil
}
