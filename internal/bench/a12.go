package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/ingest"
	"storm/internal/stats"
)

// A12Config sizes the streaming-ingest ablation: a synthetic firehose is
// appended through an ingest.Ingestor draining into a live engine handle
// while concurrent clients run `LAST <dur>` windowed queries, across a
// sweep of buffer-shard counts, against the static-load query baseline.
type A12Config struct {
	BaseN   int // records preloaded before the stream starts
	Inserts int // records streamed per shard configuration
	// Rate is the firehose's offered arrival rate in records/sec. The
	// producers pace to it (an open-loop feed, like a real stream with an
	// arrival rate); "sustained" means the drain keeps the achieved rate
	// at the offered rate without the backlog hitting backpressure.
	Rate         float64
	Producers    int // concurrent paced producer goroutines
	QueryClients int // concurrent windowed-query clients during ingest
	// QueryInterval is each client's think time between queries — the
	// paper's interactive-monitoring cadence (a dashboard tick), not a
	// saturating closed loop. 0 means the default; negative means no
	// think time (queries back-to-back).
	QueryInterval time.Duration
	Shards        []int         // buffer-shard sweep
	Window        time.Duration // LAST window duration (event-time seconds)
	QuerySamples  int           // sample budget per windowed COUNT query
	StaticQueries int           // queries in the no-ingest baseline
	Seed          int64
}

func (c A12Config) withDefaults() A12Config {
	if c.BaseN == 0 {
		c.BaseN = 200_000
	}
	if c.Inserts == 0 {
		c.Inserts = 3_000_000
	}
	if c.Rate == 0 {
		c.Rate = 1_150_000
	}
	if c.Producers == 0 {
		c.Producers = 2
	}
	if c.QueryClients == 0 {
		c.QueryClients = 2
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = 25 * time.Millisecond
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Window == 0 {
		c.Window = 60 * time.Second
	}
	if c.QuerySamples == 0 {
		c.QuerySamples = 1000
	}
	if c.StaticQueries == 0 {
		c.StaticQueries = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// A12Point is one buffer-shard configuration's measurement.
type A12Point struct {
	Shards int
	// InsertsPerSec is the achieved end-to-end throughput: streamed
	// records over the wall time from the first append to the final
	// flush, with the query clients running the whole time. It reaches
	// the offered Rate only when both the producers and the drain keep
	// pace.
	InsertsPerSec float64
	ElapsedMS     float64
	// Backpressure counts Append calls rejected with ErrBackpressure
	// (each is one producer retry).
	Backpressure uint64
	// Queries is how many windowed COUNT queries completed during the
	// stream; QP50MS/QP95MS are their wall-clock latency percentiles.
	Queries int
	QP50MS  float64
	QP95MS  float64
	// RatioP95 is QP95MS over the static baseline's p95.
	RatioP95 float64
	// WindowRetained is the reservoir's retained-record count at the end
	// of the stream (memory held for the O(k) live-window sample).
	WindowRetained int
}

// A12Result is the ablation's output table plus the shared baseline.
type A12Result struct {
	StaticP50MS, StaticP95MS float64
	Points                   []A12Point
}

// a12Engine builds a fresh engine preloaded with BaseN synthetic records
// (event times uniform in [0, a12BaseT)) through the batched insert path,
// so every shard configuration starts from an identical warm handle.
const a12BaseT = 100.0

func a12Engine(cfg A12Config) (*engine.Handle, error) {
	ds := data.NewDataset("a12")
	// No simulated buffer pool: A12 measures the real CPU cost of the
	// drain and query paths, and the iosim charge accounting on every
	// node touch would dominate the insert rate it is trying to measure.
	eng := engine.New(engine.Config{Seed: cfg.Seed, Obs: Obs})
	h, err := eng.Register(ds, engine.IndexOptions{})
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	const chunk = 16384
	batch := make([]data.Row, 0, chunk)
	for i := 0; i < cfg.BaseN; i++ {
		batch = append(batch, data.Row{Pos: geo.Vec{
			rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * a12BaseT,
		}})
		if len(batch) == chunk || i == cfg.BaseN-1 {
			h.InsertBatch(batch)
			batch = batch[:0]
		}
	}
	return h, nil
}

// a12Query runs one windowed COUNT estimate and returns its latency.
func a12Query(h *engine.Handle, cfg A12Config, qr geo.Range, seed int64) (float64, error) {
	start := time.Now()
	_, err := h.Estimate(context.Background(), qr, engine.Options{
		Kind: estimator.Count, Last: cfg.Window,
		MaxSamples: cfg.QuerySamples, Seed: seed,
	})
	return float64(time.Since(start)) / float64(time.Millisecond), err
}

// a12QueryPhase runs cfg.QueryClients concurrent clients, each issuing
// windowed COUNT queries on the think-time tick, until stop is set (and at
// least one query has run) or maxQueries queries have completed. The static
// baseline and the under-ingest phase both run through here, so client-vs-
// client contention is priced into both and the p95 ratio isolates what the
// ingest load itself adds.
func a12QueryPhase(h *engine.Handle, cfg A12Config, qr geo.Range, seedBase int64, stop *atomic.Bool, maxQueries int) ([]float64, error) {
	var (
		mu    sync.Mutex
		lats  []float64
		qerr  error
		seq   atomic.Int64
		count atomic.Int64
		wg    sync.WaitGroup
	)
	seq.Store(seedBase)
	for c := 0; c < cfg.QueryClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop != nil && stop.Load() {
					return
				}
				if maxQueries > 0 && count.Add(1) > int64(maxQueries) {
					return
				}
				ms, err := a12Query(h, cfg, qr, seq.Add(1))
				mu.Lock()
				if err != nil && qerr == nil {
					qerr = err
				}
				lats = append(lats, ms)
				mu.Unlock()
				if cfg.QueryInterval > 0 {
					time.Sleep(cfg.QueryInterval)
				}
			}
		}()
	}
	wg.Wait()
	return lats, qerr
}

// A12 measures what the sharded ingest buffer buys: for each buffer-shard
// count the synthetic firehose streams Inserts records through an
// Ingestor draining into the handle's batched insert path, while
// QueryClients clients run `LAST <window>` COUNT queries non-stop. The
// table reports sustained insert throughput, producer backpressure, and
// the concurrent query latency distribution against the static baseline
// (same engine, same queries, no ingest running).
func A12(cfg A12Config) (A12Result, error) {
	cfg = cfg.withDefaults()
	qr := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 1e12}
	// dt advances the stream's event clock per record: the full stream
	// spans several windows, so the trailing window slides while it runs.
	dt := cfg.Window.Seconds() * 3 / float64(cfg.Inserts)

	// The firehose is generated up front so producer goroutines spend
	// their cycles appending, not drawing random numbers inside the
	// measured interval.
	stream := make([]data.Row, cfg.Inserts)
	{
		rng := stats.NewRNG(cfg.Seed + 99)
		for i := range stream {
			stream[i] = data.Row{Pos: geo.Vec{
				rng.Float64() * 100, rng.Float64() * 100,
				a12BaseT + float64(i)*dt,
			}}
		}
	}

	// Static baseline: the identical preloaded engine and the identical
	// concurrent query clients, with no stream running.
	var res A12Result
	{
		h, err := a12Engine(cfg)
		if err != nil {
			return res, err
		}
		lats, err := a12QueryPhase(h, cfg, qr, cfg.Seed, nil, cfg.StaticQueries)
		if err != nil {
			return res, err
		}
		res.StaticP50MS = percentile(lats, 0.50)
		res.StaticP95MS = percentile(lats, 0.95)
	}

	for _, shards := range cfg.Shards {
		// Collect the previous configuration's engine before timing this
		// one: on a small machine a GC cycle against hundreds of MB of a
		// dead predecessor otherwise lands inside the measured stream.
		runtime.GC()
		h, err := a12Engine(cfg)
		if err != nil {
			return res, err
		}
		// MaxBatch at 4096: at the measured drain rate one sink call holds
		// the dataset write lock for ~3ms, keeping a concurrent query's
		// worst-case wait within the same order as its own run time while
		// the drain still keeps pace with the offered rate.
		in := ingest.New(h, ingest.Config{
			Shards: shards, FlushRecords: 8192, MaxBatch: 4096,
			Window: cfg.Window, Seed: cfg.Seed,
			Obs: Obs, Name: fmt.Sprintf("a12-s%d", shards),
		})

		// Query clients run for the duration of the stream.
		var (
			stop    atomic.Bool
			lats    []float64
			qerr    error
			queryWG sync.WaitGroup
		)
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			lats, qerr = a12QueryPhase(h, cfg, qr, cfg.Seed*7919, &stop, 0)
		}()

		// Paced producers: chunks are claimed from a shared cursor (so
		// arrival order tracks event-time order, like a partitioned feed)
		// and each chunk is held back until the offered rate says it is
		// due. AppendBatch is all-or-nothing, so a backpressured chunk is
		// retried whole after a backoff.
		const chunk = 512
		var (
			seq        atomic.Int64
			bp         atomic.Uint64
			producerWG sync.WaitGroup
			perr       error
			pmu        sync.Mutex
		)
		start := time.Now()
		for p := 0; p < cfg.Producers; p++ {
			producerWG.Add(1)
			go func() {
				defer producerWG.Done()
				for {
					lo := int(seq.Add(chunk)) - chunk
					if lo >= len(stream) {
						return
					}
					hi := lo + chunk
					if hi > len(stream) {
						hi = len(stream)
					}
					for float64(lo) > cfg.Rate*time.Since(start).Seconds() {
						time.Sleep(time.Millisecond)
					}
					for {
						err := in.AppendBatch(stream[lo:hi])
						if err == nil {
							break
						}
						if errors.Is(err, ingest.ErrBackpressure) {
							bp.Add(1)
							time.Sleep(time.Millisecond)
							continue
						}
						pmu.Lock()
						if perr == nil {
							perr = err
						}
						pmu.Unlock()
						return
					}
				}
			}()
		}
		producerWG.Wait()
		in.Flush()
		elapsed := time.Since(start)
		stop.Store(true)
		queryWG.Wait()
		retained := 0
		if w := in.Window(); w != nil {
			retained = w.Retained()
		}
		if err := in.Close(); err != nil {
			return res, err
		}
		if perr != nil {
			return res, perr
		}
		if qerr != nil {
			return res, qerr
		}
		if wm, ok := h.Watermark(); !ok || wm < a12BaseT+float64(cfg.Inserts-1)*dt {
			return res, fmt.Errorf("a12: watermark %.3f did not reach the stream's end", wm)
		}

		p := A12Point{
			Shards:         shards,
			InsertsPerSec:  float64(cfg.Inserts) / elapsed.Seconds(),
			ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
			Backpressure:   bp.Load(),
			Queries:        len(lats),
			QP50MS:         percentile(lats, 0.50),
			QP95MS:         percentile(lats, 0.95),
			WindowRetained: retained,
		}
		if res.StaticP95MS > 0 {
			p.RatioP95 = p.QP95MS / res.StaticP95MS
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
