package bench

import (
	"fmt"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/lstree"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// Fig3aConfig sizes the Figure 3(a) experiment: "time taken for different
// methods to produce spatial online samples of increasing size" for one
// fixed range query Q.
type Fig3aConfig struct {
	// N is the dataset size (the paper uses full OSM; default 2M).
	N int
	// QFrac positions q/N (the paper's Q has q = 1 billion over OSM;
	// default 0.05).
	QFrac float64
	// Fractions are the k/q sample fractions on the x-axis; defaults to
	// the paper's 0–10% sweep.
	Fractions []float64
	// Fanout and BufferPoolFrac shape the simulated disk; the pool is
	// sized as a fraction of the level-0 tree's node count.
	Fanout         int
	BufferPoolFrac float64
	Seed           int64
	// IncludeSampleFirst adds the extra strawman curve.
	IncludeSampleFirst bool
}

func (c Fig3aConfig) withDefaults() Fig3aConfig {
	if c.N == 0 {
		c.N = 2_000_000
	}
	if c.QFrac == 0 {
		c.QFrac = 0.05
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10}
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.BufferPoolFrac == 0 {
		// Small relative to the query's leaf working set, so RandomPath's
		// scattered leaf accesses thrash while the RS-tree's compact
		// canonical working set stays resident — the disk-resident regime
		// the paper's Figure 3(a) measures.
		c.BufferPoolFrac = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig3aPoint is one measurement: method × k.
type Fig3aPoint struct {
	Method string
	KOverQ float64
	K      int
	// WallMS is the wall-clock time to produce the k samples.
	WallMS float64
	// Reads is the number of physical page reads (buffer pool misses).
	Reads uint64
	// CostUnits is the simulated latency cost (reads dominate).
	CostUnits float64
}

// Fig3a reproduces Figure 3(a): for a fixed query Q, the cost of drawing k
// online samples as k/q grows, for RandomPath, RS-tree, RangeReport
// (QueryFirst) and LS-tree. Shape expectations: RangeReport is flat and
// high (pays r(N)+q regardless of k), RandomPath grows linearly in k and
// crosses it, the STORM indexes stay low throughout.
func Fig3a(cfg Fig3aConfig) ([]Fig3aPoint, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	q := queryFor(ds, cfg.QFrac)
	rect := q.Rect()
	entries := ds.Entries()
	bounds := ds.Bounds()

	// One device per index so buffer pools do not interfere. Pool size is
	// a fraction of the base tree's pages.
	basePages := cfg.N / cfg.Fanout * 2
	pool := int(cfg.BufferPoolFrac * float64(basePages))

	devPlain := newDevice(pool)
	plain := rtree.MustNew(rtree.Config{Fanout: cfg.Fanout, Device: devPlain})
	plain.BulkLoad(entries)

	devRS := newDevice(pool)
	rsIdx, err := rstree.Build(entries, rstree.Config{Fanout: cfg.Fanout, Device: devRS, Bounds: bounds, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	devLS := newDevice(pool)
	lsIdx, err := lstree.Build(entries, lstree.Config{Fanout: cfg.Fanout, Device: devLS, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	qCount := plain.Count(rect)
	if qCount == 0 {
		return nil, fmt.Errorf("bench: query matched nothing")
	}

	type method struct {
		name string
		dev  *iosim.Device
		mk   func(seed int64) sampling.Sampler
	}
	methods := []method{
		{"RandomPath", devPlain, func(seed int64) sampling.Sampler {
			return sampling.NewRandomPath(plain, rect, sampling.WithoutReplacement, stats.NewRNG(seed))
		}},
		{"RS-tree", devRS, func(seed int64) sampling.Sampler {
			return rsIdx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(seed))
		}},
		{"RangeReport", devPlain, func(seed int64) sampling.Sampler {
			return sampling.NewQueryFirst(plain, rect, sampling.WithoutReplacement, stats.NewRNG(seed))
		}},
		{"LS-tree", devLS, func(seed int64) sampling.Sampler {
			return lsIdx.Sampler(rect, stats.NewRNG(seed))
		}},
	}
	if cfg.IncludeSampleFirst {
		devSF := newDevice(pool)
		methods = append(methods, method{"SampleFirst", devSF, func(seed int64) sampling.Sampler {
			return sampling.NewSampleFirst(ds, rect, sampling.WithoutReplacement, stats.NewRNG(seed), devSF, cfg.Fanout)
		}})
	}

	var out []Fig3aPoint
	for _, m := range methods {
		for _, frac := range cfg.Fractions {
			k := int(frac * float64(qCount))
			if k < 1 {
				k = 1
			}
			// Cold-ish run: drop the cache so every (method, k) pays
			// its own I/O, as the paper's per-point measurements do.
			m.dev.DropCache()
			m.dev.ResetStats()
			s := m.mk(cfg.Seed + int64(k))
			start := time.Now()
			got := 0
			for got < k {
				if _, ok := s.Next(); !ok {
					break
				}
				got++
			}
			elapsed := time.Since(start)
			record("fig3a", m.name, s, m.dev)
			st := m.dev.Stats()
			out = append(out, Fig3aPoint{
				Method:    m.name,
				KOverQ:    frac,
				K:         got,
				WallMS:    float64(elapsed.Microseconds()) / 1000,
				Reads:     st.Reads,
				CostUnits: st.CostUnits,
			})
		}
	}
	return out, nil
}

// Fig3bConfig sizes the Figure 3(b) experiment.
type Fig3bConfig struct {
	N     int
	QFrac float64
	// Checkpoints are the sample counts at which relative error is
	// recorded (the paper's x-axis is time; sample count is the
	// hardware-independent proxy, and wall time is reported alongside).
	Checkpoints []int
	Fanout      int
	Seed        int64
	// Trials averages the relative error over several independent runs
	// to smooth single-run noise; default 5.
	Trials int
}

func (c Fig3bConfig) withDefaults() Fig3bConfig {
	if c.N == 0 {
		c.N = 2_000_000
	}
	if c.QFrac == 0 {
		c.QFrac = 0.05
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	}
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	return c
}

// Fig3bPoint is one measurement: method × checkpoint.
type Fig3bPoint struct {
	Method  string
	Samples int
	// TimeMS is the average wall time to reach the checkpoint.
	TimeMS float64
	// RelErr is the average |estimate − truth| / truth at the checkpoint.
	RelErr float64
}

// Fig3b reproduces Figure 3(b): the relative error of an online
// avg(altitude) estimate as query time grows, for the RS-tree and LS-tree.
// Expected shape: both curves fall like 1/√k toward zero.
func Fig3b(cfg Fig3bConfig) ([]Fig3bPoint, error) {
	cfg = cfg.withDefaults()
	ds := osmData(cfg.N, cfg.Seed)
	col, err := ds.NumericColumn("altitude")
	if err != nil {
		return nil, err
	}
	q := queryFor(ds, cfg.QFrac)
	rect := q.Rect()
	truth, n := trueAvg(ds, col, q)
	if n == 0 || truth == 0 {
		return nil, fmt.Errorf("bench: degenerate Figure 3b query")
	}
	entries := ds.Entries()

	rsIdx, err := rstree.Build(entries, rstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	lsIdx, err := lstree.Build(entries, lstree.Config{Fanout: cfg.Fanout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	type method struct {
		name string
		mk   func(seed int64) sampling.Sampler
	}
	methods := []method{
		{"RS-tree", func(seed int64) sampling.Sampler {
			return rsIdx.Sampler(rect, sampling.WithoutReplacement, stats.NewRNG(seed))
		}},
		{"LS-tree", func(seed int64) sampling.Sampler {
			return lsIdx.Sampler(rect, stats.NewRNG(seed))
		}},
	}

	out := make([]Fig3bPoint, 0, len(methods)*len(cfg.Checkpoints))
	for _, m := range methods {
		sumErr := make([]float64, len(cfg.Checkpoints))
		sumMS := make([]float64, len(cfg.Checkpoints))
		for trial := 0; trial < cfg.Trials; trial++ {
			s := m.mk(cfg.Seed + int64(trial)*1009)
			var acc float64
			k := 0
			ci := 0
			start := time.Now()
			for ci < len(cfg.Checkpoints) {
				e, ok := s.Next()
				if !ok {
					break
				}
				acc += col[e.ID]
				k++
				if k == cfg.Checkpoints[ci] {
					est := acc / float64(k)
					sumErr[ci] += abs(est-truth) / abs(truth)
					sumMS[ci] += float64(time.Since(start).Microseconds()) / 1000
					ci++
				}
			}
			record("fig3b", m.name, s, nil)
		}
		for i, k := range cfg.Checkpoints {
			out = append(out, Fig3bPoint{
				Method:  m.name,
				Samples: k,
				TimeMS:  sumMS[i] / float64(cfg.Trials),
				RelErr:  sumErr[i] / float64(cfg.Trials),
			})
		}
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// exactCount is a helper used by tests to cross-check query selection.
func exactCount(ds *data.Dataset, q geo.Range) int {
	rect := q.Rect()
	c := 0
	for i := 0; i < ds.Len(); i++ {
		if rect.Contains(ds.Pos(data.ID(i))) {
			c++
		}
	}
	return c
}
