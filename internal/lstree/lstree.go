// Package lstree implements STORM's first sampling index, the LS-tree
// ("level sampling").
//
// The index maintains a geometric hierarchy of coin-flip samples
// P_0 ⊇ P_1 ⊇ … ⊇ P_ℓ where P_0 = P and each P_{i+1} keeps every element
// of P_i independently with probability ½, stopping once the top level is
// small. An ordinary R-tree T_i is built over each level; the total size
// is O(N) because level sizes form a geometric series.
//
// A query runs plain range reporting on T_ℓ first: because level membership
// is independent of identity, the matching records at level i form a
// probability-(1/2^i) coin-flip sample of P ∩ Q. Those records are emitted
// in random order; when level i is exhausted the sampler falls through to
// level i−1, skipping records it has already reported (P_{i+1} ⊆ P_i).
// After level 0 the stream has reported exactly P ∩ Q, so online
// aggregation over it converges to the exact answer.
//
// The expected cost of drawing k samples is O(k) reported records plus the
// range-reporting overhead of the levels above log(q/k) — and because each
// level is scanned by an ordinary range query, the I/O pattern is
// sequential: O(k/B) page reads rather than RandomPath's Ω(k).
//
// # Concurrency
//
// The level trees are shared and read-only on the query path; everything a
// query mutates (the per-level pending list, its permutation cursor, the
// cross-level dedup set) lives in the Sampler, so any number of Samplers
// may run concurrently against one Index. Insert and Delete mutate the
// level trees and the index's structural RNG and must be serialized
// against in-flight samplers by the caller (package engine uses a
// per-dataset RWMutex). Each individual Sampler is single-goroutine.
package lstree

import (
	"fmt"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// DefaultTopLevelMax is the default size threshold at which the level
// hierarchy stops: the topmost level has at most this many records.
const DefaultTopLevelMax = 1024

// Config controls LS-tree construction.
type Config struct {
	// Fanout is the per-level R-tree fanout; 0 means rtree.DefaultFanout.
	Fanout int
	// Device charges page accesses across all levels; nil disables.
	Device iosim.Accountant
	// TopLevelMax stops level creation once a level is this small;
	// 0 means DefaultTopLevelMax.
	TopLevelMax int
	// Seed drives the coin flips that assign records to levels.
	Seed int64
	// Attrs, when non-nil (typically the backing *data.Dataset), enables
	// per-level attribute summaries so predicate queries (SamplerWhere,
	// CountWhere) can prune level subtrees by digest. Without it,
	// predicates still filter records but nothing is pruned.
	Attrs rtree.AttrSource
}

// Index is an LS-tree over a point set. Queries (Samplers, Count) may run
// concurrently; Insert and Delete require exclusive access.
type Index struct {
	cfg    Config
	levels []*rtree.Tree // levels[0] indexes all of P
	// sums holds one attribute-summary maintainer per level (parallel to
	// levels) when Config.Attrs is set; nil otherwise. Built eagerly on
	// the write path (Build/maybeGrow) so the query path never appends.
	sums []*rtree.Summaries
	// rng drives structural randomness (level coin flips); it is touched
	// only by Build/Insert/maybeGrow, which run under the caller's write
	// lock, never by queries.
	rng  *stats.RNG
	size int
}

// Build constructs an LS-tree over the given entries.
func Build(entries []data.Entry, cfg Config) (*Index, error) {
	if cfg.Fanout == 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	if cfg.Device == nil {
		cfg.Device = iosim.Discard
	}
	if cfg.TopLevelMax == 0 {
		cfg.TopLevelMax = DefaultTopLevelMax
	}
	if cfg.TopLevelMax < 1 {
		return nil, fmt.Errorf("lstree: TopLevelMax must be positive")
	}
	idx := &Index{cfg: cfg, rng: stats.NewRNG(cfg.Seed), size: len(entries)}

	level := entries
	for {
		t, err := rtree.New(rtree.Config{Fanout: cfg.Fanout, Device: cfg.Device})
		if err != nil {
			return nil, fmt.Errorf("lstree: %w", err)
		}
		t.BulkLoad(level)
		idx.levels = append(idx.levels, t)
		idx.addSummaries(t)
		if len(level) <= cfg.TopLevelMax {
			break
		}
		next := make([]data.Entry, 0, len(level)/2+16)
		for _, e := range level {
			if idx.rng.Bernoulli(0.5) {
				next = append(next, e)
			}
		}
		level = next
	}
	return idx, nil
}

// Levels returns the number of levels (ℓ + 1).
func (x *Index) Levels() int { return len(x.levels) }

// Level returns the R-tree at level i; level 0 indexes all of P. Exposed
// for tests and for the benchmark harness's structural reports.
func (x *Index) Level(i int) *rtree.Tree { return x.levels[i] }

// Len returns the number of indexed records (level-0 size).
func (x *Index) Len() int { return x.size }

// Count returns |P ∩ q| using the level-0 tree.
func (x *Index) Count(q geo.Rect) int { return x.levels[0].Count(q) }

// Insert adds a record. The record joins levels 0..L where L is drawn from
// a Geometric(½) distribution, preserving the coin-flip invariant that each
// level-i record appears at level i+1 with independent probability ½.
// When sustained inserts push the top level past twice the construction
// threshold, a new level is grown above it (each top-level record kept
// with an independent ½ coin flip), so query cost stays logarithmic as the
// data set grows.
func (x *Index) Insert(e data.Entry) {
	top := x.rng.Geometric(0.5)
	if top > len(x.levels)-1 {
		top = len(x.levels) - 1
	}
	for i := 0; i <= top; i++ {
		x.levels[i].Insert(e)
	}
	x.size++
	x.maybeGrow()
}

// maybeGrow adds a level when the current top has outgrown the threshold.
// The new level samples the top level with independent coin flips, which
// is exactly the distribution the level would have had at build time.
func (x *Index) maybeGrow() {
	topTree := x.levels[len(x.levels)-1]
	if topTree.Len() <= 2*x.cfg.TopLevelMax {
		return
	}
	universe := topTree.Bounds()
	next := make([]data.Entry, 0, topTree.Len()/2+16)
	topTree.Search(universe, func(e data.Entry) bool {
		if x.rng.Bernoulli(0.5) {
			next = append(next, e)
		}
		return true
	})
	t, err := rtree.New(rtree.Config{Fanout: x.cfg.Fanout, Device: x.cfg.Device})
	if err != nil {
		// Config was validated at Build; growth never changes it.
		panic(fmt.Sprintf("lstree: growing level: %v", err))
	}
	t.BulkLoad(next)
	x.levels = append(x.levels, t)
	x.addSummaries(t)
}

// addSummaries attaches an attribute-summary maintainer to a freshly built
// level tree when summaries are enabled. Runs on the write path only, so
// concurrent queries never observe sums growing.
func (x *Index) addSummaries(t *rtree.Tree) {
	if x.cfg.Attrs == nil {
		return
	}
	s := rtree.NewSummaries(t, x.cfg.Attrs)
	s.Precompute()
	x.sums = append(x.sums, s)
}

// CountWhere returns the number of level-0 records in q satisfying c,
// pruning by level-0 digests when summaries are enabled. A nil predicate
// is exactly Count.
func (x *Index) CountWhere(q geo.Rect, c *pred.Compiled) int {
	if c == nil {
		return x.Count(q)
	}
	var sums *rtree.Summaries
	if x.sums != nil {
		sums = x.sums[0]
	}
	return x.levels[0].CountWhere(q, rtree.NewTreeFilter(c, sums))
}

// Delete removes a record from every level that contains it. It returns
// true if the record existed at level 0.
func (x *Index) Delete(e data.Entry) bool {
	if !x.levels[0].Delete(e) {
		return false
	}
	for i := 1; i < len(x.levels); i++ {
		if !x.levels[i].Delete(e) {
			break // levels are nested: absent here means absent above
		}
	}
	x.size--
	return true
}

// Sampler returns a without-replacement online sampler for q. Samples are
// drawn level-by-level as described in the package comment. rng drives the
// per-level permutations and is independent of the index's structural
// randomness, so a fixed rng seed reproduces the same stream regardless of
// concurrent queries. Samplers of the same Index may run concurrently.
func (x *Index) Sampler(q geo.Rect, rng *stats.RNG) *Sampler {
	return x.SamplerWhere(q, rng, nil)
}

// SamplerWhere returns a without-replacement online sampler for q
// restricted to records satisfying c. Level membership is independent of
// attribute values, so each level's predicate-filtered matches remain a
// coin-flip sample of the qualifying records and the level-by-level stream
// stays exactly uniform over them. When summaries are enabled, each level
// scan prunes subtrees by digest. A nil predicate is exactly Sampler.
func (x *Index) SamplerWhere(q geo.Rect, rng *stats.RNG, c *pred.Compiled) *Sampler {
	s := &Sampler{
		index: x,
		query: q,
		rng:   rng,
		acct:  x.cfg.Device,
		level: len(x.levels),
		seen:  sampling.NewIDSet(x.size),
	}
	if c != nil {
		s.filters = make([]*rtree.TreeFilter, len(x.levels))
		for i := range x.levels {
			var sums *rtree.Summaries
			if x.sums != nil {
				sums = x.sums[i]
			}
			s.filters[i] = rtree.NewTreeFilter(c, sums)
		}
	}
	return s
}

// Sampler is the LS-tree's online sample stream for one query. It
// implements sampling.Sampler and sampling.BatchSampler. All mutable query
// state is local to the Sampler; the level trees are only read.
type Sampler struct {
	index *Index
	query geo.Rect
	rng   *stats.RNG
	acct  iosim.Accountant
	batch *iosim.Batcher // reused by NextBatch; charges go to acct
	level int            // next level to scan (counts down); len(levels) before start
	// filters holds one predicate filter per level (parallel to the
	// index's levels); nil when the query has no predicate.
	filters []*rtree.TreeFilter
	// pending holds the current level's unreported matches; the prefix
	// [0, cursor) has been emitted.
	pending []data.Entry
	cursor  int
	seen    *sampling.IDSet

	// instrumentation (single-goroutine, flushed by consumers at batch
	// boundaries — see sampling.StatsReporter)
	draws   uint64
	rejects uint64
	scans   uint64
}

// AttributeIO redirects this query's page charges to a (typically an
// iosim.Counter forwarding to the shared device) for race-free per-query
// I/O accounting.
func (s *Sampler) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.acct = a
	}
}

var _ sampling.Sampler = (*Sampler)(nil)
var _ sampling.BatchSampler = (*Sampler)(nil)

// Name implements sampling.Sampler.
func (s *Sampler) Name() string { return "LS-tree" }

// Next implements sampling.Sampler. The i-th call returns the i-th element
// of an online without-replacement sample of P ∩ Q; ok is false once all
// matching records have been reported.
func (s *Sampler) Next() (data.Entry, bool) {
	for {
		if s.cursor < len(s.pending) {
			// Incremental Fisher–Yates within the level.
			j := s.cursor + s.rng.Intn(len(s.pending)-s.cursor)
			s.pending[s.cursor], s.pending[j] = s.pending[j], s.pending[s.cursor]
			e := s.pending[s.cursor]
			s.cursor++
			if s.seen.Contains(e.ID) {
				s.rejects++
				continue
			}
			s.seen.Add(e.ID)
			s.draws++
			return e, true
		}
		if s.level == 0 {
			return data.Entry{}, false
		}
		s.level--
		var f *rtree.TreeFilter
		if s.filters != nil {
			f = s.filters[s.level]
		}
		s.pending = s.index.levels[s.level].ReportAllWhereTo(s.acct, s.query, f)
		s.cursor = 0
		s.scans++
	}
}

// SamplerStats implements sampling.StatsReporter: Rejects counts
// duplicate suppressions (records already emitted from a higher level)
// and Scans counts level range-reports performed so far.
func (s *Sampler) SamplerStats() sampling.SamplerStats {
	st := sampling.SamplerStats{Draws: s.draws, Rejects: s.rejects, Scans: s.scans}
	for _, f := range s.filters {
		st.Pruned += f.Pruned
	}
	return st
}

// NextBatch implements sampling.BatchSampler. Per-draw logic and RNG
// consumption are exactly Next's, so the stream is byte-identical; the
// range-report page charges of any level scans the batch triggers are
// coalesced through a run-length batcher (one device lock per flush).
func (s *Sampler) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	prev := s.acct
	if s.batch == nil || s.batch.Target() != prev {
		s.batch = iosim.NewBatcher(prev)
	}
	s.acct = s.batch
	got := 0
	for got < k {
		e, ok := s.Next()
		if !ok {
			break
		}
		dst[got] = e
		got++
	}
	s.acct = prev
	s.batch.Flush()
	return got
}
