package lstree

import (
	"testing"

	"storm/internal/data"
	"storm/internal/stats"
)

// TestNextBatchMatchesNext: for a fixed seed the NextBatch stream must be
// byte-identical to the Next stream, including across level fall-throughs.
func TestNextBatchMatchesNext(t *testing.T) {
	entries := genEntries(20000, 51)
	idx, err := Build(entries, Config{Fanout: 16, TopLevelMax: 128, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}

	serial := func(seed int64) []data.ID {
		s := idx.Sampler(testQuery, stats.NewRNG(seed))
		var out []data.ID
		for {
			e, ok := s.Next()
			if !ok {
				break
			}
			out = append(out, e.ID)
		}
		return out
	}
	batched := func(seed int64, sizes []int) []data.ID {
		s := idx.Sampler(testQuery, stats.NewRNG(seed))
		buf := make([]data.Entry, 512)
		var out []data.ID
		for i := 0; ; i++ {
			got := s.NextBatch(buf, sizes[i%len(sizes)])
			for _, e := range buf[:got] {
				out = append(out, e.ID)
			}
			if got < sizes[i%len(sizes)] {
				break
			}
		}
		return out
	}

	want := serial(7)
	if len(want) == 0 {
		t.Fatal("empty reference stream")
	}
	for _, sizes := range [][]int{{1}, {13}, {512}, {3, 200, 1}} {
		got := batched(7, sizes)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: lengths differ: %d vs %d", sizes, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: streams diverge at %d: %d vs %d", sizes, i, got[i], want[i])
			}
		}
	}
}
