package lstree

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/stats"
)

func genEntries(n int, seed int64) []data.Entry {
	rng := stats.NewRNG(seed)
	out := make([]data.Entry, n)
	for i := range out {
		out[i] = data.Entry{
			ID:  data.ID(i),
			Pos: geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)},
		}
	}
	return out
}

func matching(entries []data.Entry, q geo.Rect) map[data.ID]bool {
	m := make(map[data.ID]bool)
	for _, e := range entries {
		if q.Contains(e.Pos) {
			m[e.ID] = true
		}
	}
	return m
}

var testQuery = geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})

func TestBuildLevels(t *testing.T) {
	entries := genEntries(20000, 1)
	idx, err := Build(entries, Config{Fanout: 16, TopLevelMax: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Levels() < 5 {
		t.Errorf("expected several levels for 20k entries, got %d", idx.Levels())
	}
	if idx.Level(0).Len() != len(entries) {
		t.Fatalf("level 0 has %d entries", idx.Level(0).Len())
	}
	// Levels shrink roughly geometrically and are nested in expectation.
	for i := 1; i < idx.Levels(); i++ {
		prev, cur := idx.Level(i-1).Len(), idx.Level(i).Len()
		if cur >= prev {
			t.Errorf("level %d (%d) not smaller than level %d (%d)", i, cur, i-1, prev)
		}
		ratio := float64(cur) / float64(prev)
		if prev > 2000 && (ratio < 0.4 || ratio > 0.6) {
			t.Errorf("level %d/%d ratio %v far from 1/2", i, i-1, ratio)
		}
	}
	// Top level must respect the threshold.
	if top := idx.Level(idx.Levels() - 1).Len(); top > 256 {
		t.Errorf("top level %d exceeds TopLevelMax", top)
	}
	// Total size is O(N): well under 3N.
	total := 0
	for i := 0; i < idx.Levels(); i++ {
		total += idx.Level(i).Len()
	}
	if total > 3*len(entries) {
		t.Errorf("total level size %d too large for N=%d", total, len(entries))
	}
}

func TestLevelsAreNested(t *testing.T) {
	entries := genEntries(5000, 2)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	universe := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{100, 100, 100})
	for i := 1; i < idx.Levels(); i++ {
		lower := make(map[data.ID]bool)
		for _, e := range idx.Level(i - 1).ReportAll(universe) {
			lower[e.ID] = true
		}
		for _, e := range idx.Level(i).ReportAll(universe) {
			if !lower[e.ID] {
				t.Fatalf("level %d entry %d missing from level %d", i, e.ID, i-1)
			}
		}
	}
}

func TestSamplerWithoutReplacementComplete(t *testing.T) {
	entries := genEntries(8000, 3)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	s := idx.Sampler(testQuery, stats.NewRNG(9))
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if !want[e.ID] {
			t.Fatalf("sample %d outside query", e.ID)
		}
		if got[e.ID] {
			t.Fatalf("duplicate sample %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d samples, want %d", len(got), len(want))
	}
}

// TestSamplerUniformFirstSample checks marginal uniformity: the LS-tree's
// guarantee is over the index's construction coins as well as the query
// randomness (conditioned on one index, the first sample can only come from
// the fixed top-level subset), so each trial rebuilds the index.
func TestSamplerUniformFirstSample(t *testing.T) {
	entries := genEntries(300, 4)
	want := matching(entries, testQuery)
	q := len(want)
	if q < 10 {
		t.Fatalf("fixture degenerate: q=%d", q)
	}
	counts := make(map[data.ID]int)
	const trials = 15000
	for i := 0; i < trials; i++ {
		idx, err := Build(entries, Config{Fanout: 8, TopLevelMax: 32, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		s := idx.Sampler(testQuery, stats.NewRNG(int64(1000+i)))
		e, ok := s.Next()
		if !ok {
			t.Fatal("no first sample")
		}
		counts[e.ID]++
	}
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("first-sample chi-square %v > crit %v: not uniform", stat, crit)
	}
}

// TestSamplerUniformPrefix checks that a k-sample prefix hits every
// matching record with equal probability k/q (marginal over index
// construction), the without-replacement counterpart of first-sample
// uniformity — it exercises the cross-level dedup and fall-through logic.
func TestSamplerUniformPrefix(t *testing.T) {
	entries := genEntries(200, 14)
	want := matching(entries, testQuery)
	q := len(want)
	if q < 25 {
		t.Fatalf("fixture degenerate: q=%d", q)
	}
	const k = 15
	const trials = 10000
	counts := make(map[data.ID]int)
	for i := 0; i < trials; i++ {
		idx, err := Build(entries, Config{Fanout: 8, TopLevelMax: 16, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		s := idx.Sampler(testQuery, stats.NewRNG(int64(7000+i)))
		for j := 0; j < k; j++ {
			e, ok := s.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			counts[e.ID]++
		}
	}
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)*k/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("prefix chi-square %v > crit %v: prefix not uniform", stat, crit)
	}
}

func TestSamplerEmptyRange(t *testing.T) {
	entries := genEntries(1000, 5)
	idx, err := Build(entries, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	s := idx.Sampler(empty, stats.NewRNG(1))
	if _, ok := s.Next(); ok {
		t.Fatal("empty range should yield nothing")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, err := Build(nil, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Levels() != 1 {
		t.Errorf("empty index should have 1 level, got %d", idx.Levels())
	}
	s := idx.Sampler(testQuery, stats.NewRNG(1))
	if _, ok := s.Next(); ok {
		t.Fatal("empty index should yield nothing")
	}
}

func TestInsertJoinsLevels(t *testing.T) {
	entries := genEntries(4000, 6)
	idx, err := Build(entries, Config{Fanout: 16, TopLevelMax: 64, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Insert records and verify they become sampleable.
	added := make([]data.Entry, 500)
	for i := range added {
		added[i] = data.Entry{
			ID:  data.ID(100000 + i),
			Pos: geo.Vec{30, 30, 50}, // inside testQuery
		}
		idx.Insert(added[i])
	}
	if idx.Len() != 4500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	// Level-0 must contain all of them.
	got := matching(idx.Level(0).ReportAll(testQuery), testQuery)
	for _, e := range added {
		if !got[e.ID] {
			t.Fatalf("inserted entry %d missing from level 0", e.ID)
		}
	}
	// Levels stay nested after inserts.
	universe := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{100, 100, 100})
	for i := 1; i < idx.Levels(); i++ {
		lower := make(map[data.ID]bool)
		for _, e := range idx.Level(i - 1).ReportAll(universe) {
			lower[e.ID] = true
		}
		for _, e := range idx.Level(i).ReportAll(universe) {
			if !lower[e.ID] {
				t.Fatalf("after insert: level %d entry %d missing below", i, e.ID)
			}
		}
	}
	// About half of the inserts should have reached level 1.
	l1 := 0
	for _, e := range idx.Level(1).ReportAll(testQuery) {
		if e.ID >= 100000 {
			l1++
		}
	}
	if l1 < 180 || l1 > 320 {
		t.Errorf("level-1 promotion count %d far from 250", l1)
	}
}

// TestLevelGrowth verifies that sustained inserts grow the hierarchy: the
// top level stays bounded and new levels keep the coin-flip invariant.
func TestLevelGrowth(t *testing.T) {
	entries := genEntries(500, 15)
	idx, err := Build(entries, Config{Fanout: 8, TopLevelMax: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	levelsBefore := idx.Levels()
	rng := stats.NewRNG(77)
	for i := 0; i < 8000; i++ {
		idx.Insert(data.Entry{
			ID:  data.ID(10000 + i),
			Pos: geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)},
		})
	}
	if idx.Levels() <= levelsBefore {
		t.Fatalf("levels did not grow: %d -> %d", levelsBefore, idx.Levels())
	}
	if top := idx.Level(idx.Levels() - 1).Len(); top > 2*64 {
		t.Errorf("top level %d exceeds growth threshold", top)
	}
	// Nesting invariant still holds across every level.
	universe := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{100, 100, 100})
	for i := 1; i < idx.Levels(); i++ {
		lower := make(map[data.ID]bool)
		for _, e := range idx.Level(i - 1).ReportAll(universe) {
			lower[e.ID] = true
		}
		for _, e := range idx.Level(i).ReportAll(universe) {
			if !lower[e.ID] {
				t.Fatalf("after growth: level %d entry %d missing below", i, e.ID)
			}
		}
	}
	// Sampling still drains the whole query range exactly once each.
	want := matching(idx.Level(0).ReportAll(universe), testQuery)
	s := idx.Sampler(testQuery, stats.NewRNG(5))
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if got[e.ID] {
			t.Fatalf("duplicate %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
}

func TestDeleteRemovesEverywhere(t *testing.T) {
	entries := genEntries(3000, 7)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	victim := entries[42]
	if !idx.Delete(victim) {
		t.Fatal("delete failed")
	}
	if idx.Len() != 2999 {
		t.Fatalf("Len = %d", idx.Len())
	}
	universe := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{100, 100, 100})
	for i := 0; i < idx.Levels(); i++ {
		for _, e := range idx.Level(i).ReportAll(universe) {
			if e.ID == victim.ID {
				t.Fatalf("deleted entry still at level %d", i)
			}
		}
	}
	if idx.Delete(victim) {
		t.Error("double delete should return false")
	}
}

func TestSampleAfterUpdates(t *testing.T) {
	entries := genEntries(2000, 8)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Delete half the matching records, insert some new ones.
	want := matching(entries, testQuery)
	i := 0
	for id := range want {
		if i%2 == 0 {
			if !idx.Delete(entries[id]) {
				t.Fatal("delete failed")
			}
			delete(want, id)
		}
		i++
	}
	for j := 0; j < 50; j++ {
		e := data.Entry{ID: data.ID(50000 + j), Pos: geo.Vec{40, 40, 50}}
		idx.Insert(e)
		want[e.ID] = true
	}
	s := idx.Sampler(testQuery, stats.NewRNG(23))
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if !want[e.ID] {
			t.Fatalf("sample %d should not match after updates", e.ID)
		}
		if got[e.ID] {
			t.Fatalf("duplicate %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
}

func TestSampleMeanUnbiased(t *testing.T) {
	entries := genEntries(10000, 9)
	idx, err := Build(entries, Config{Fanout: 32, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	var trueMean float64
	for _, e := range entries {
		if want[e.ID] {
			trueMean += e.Pos.X()
		}
	}
	trueMean /= float64(len(want))

	s := idx.Sampler(testQuery, stats.NewRNG(31))
	var sum float64
	k := 400
	for i := 0; i < k; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		sum += e.Pos.X()
	}
	got := sum / float64(k)
	if math.Abs(got-trueMean) > 2 {
		t.Errorf("sample mean %v too far from %v", got, trueMean)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build(nil, Config{TopLevelMax: -1}); err == nil {
		t.Error("negative TopLevelMax should error")
	}
	if _, err := Build(nil, Config{Fanout: 3}); err == nil {
		t.Error("tiny fanout should propagate rtree error")
	}
}
