// Package estimator implements STORM's online estimators: unbiased
// aggregate estimates computed incrementally from spatial online samples,
// with confidence intervals that tighten as samples arrive (the "feature
// module" of the paper's architecture).
//
// The statistical machinery is the standard online-aggregation toolkit the
// paper builds on (Hellerstein et al., Haas): the sample mean is an
// unbiased estimator of the population mean, its variance shrinks as 1/k
// (times a finite-population correction for without-replacement sampling),
// and the central limit theorem yields confidence intervals. SUM and COUNT
// scale the mean by the known population size q = |P ∩ Q|, which STORM
// obtains exactly from R-tree subtree counts.
package estimator

import (
	"fmt"
	"math"

	"storm/internal/stats"
)

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance of the observations.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Merge combines another accumulator into w (Chan et al. parallel merge);
// used by the distributed coordinator.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
}

// Kind identifies the aggregate an Estimator targets.
type Kind int

// Supported aggregate kinds.
const (
	Avg Kind = iota
	Sum
	Count
	Min // exact over the records sampled so far; no CI
	Max // exact over the records sampled so far; no CI
	// Variance estimates the population variance; its CI uses the
	// normal approximation SE(s²) ≈ s²·√(2/(k-1)), adequate for the
	// moderately-tailed attributes online aggregation targets.
	Variance
	// Stddev is the square root of Variance (delta-method CI).
	Stddev
	// Median and Quant are order statistics served by the Quantile
	// estimator (New rejects them; the engine routes them there).
	Median
	Quant
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Avg:
		return "AVG"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Variance:
		return "VARIANCE"
	case Stddev:
		return "STDDEV"
	case Median:
		return "MEDIAN"
	case Quant:
		return "QUANTILE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Estimate is a point-in-time snapshot of an online estimator.
type Estimate struct {
	Kind Kind
	// Value is the current unbiased point estimate.
	Value float64
	// HalfWidth is the half-width of the confidence interval around
	// Value at the estimator's confidence level; +Inf before two samples
	// have arrived, 0 once the estimate is exact.
	HalfWidth float64
	// Confidence is the configured confidence level, e.g. 0.95.
	Confidence float64
	// Samples is the number of samples consumed.
	Samples int
	// Population is q = |P ∩ Q| when known, else -1.
	Population int
	// Exact reports that the estimate is no longer an estimate: the
	// sample has exhausted the population.
	Exact bool
}

// RelativeErrorBound returns HalfWidth / |Value|, the guaranteed relative
// error at the confidence level, or +Inf when the value is zero.
func (e Estimate) RelativeErrorBound() float64 {
	if e.Value == 0 {
		if e.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e.HalfWidth / math.Abs(e.Value)
}

// String formats the estimate the way STORM's query interface reports it.
func (e Estimate) String() string {
	if e.Exact {
		return fmt.Sprintf("%s = %.6g (exact, %d records)", e.Kind, e.Value, e.Samples)
	}
	return fmt.Sprintf("%s ≈ %.6g ± %.4g (%.0f%% confidence, %d samples)",
		e.Kind, e.Value, e.HalfWidth, e.Confidence*100, e.Samples)
}

// Estimator is an online aggregate estimator fed one sampled attribute
// value at a time.
type Estimator struct {
	kind       Kind
	confidence float64
	population int // q, or -1 when unknown
	withoutRep bool
	w          Welford
	min, max   float64
}

// New returns an estimator for the given aggregate.
//
// population is q = |P ∩ Q| when known (required for Sum and Count, used
// for the finite-population correction otherwise); pass -1 when unknown.
// withoutReplacement must reflect how the feeding sampler operates so the
// finite-population correction is applied correctly.
func New(kind Kind, confidence float64, population int, withoutReplacement bool) (*Estimator, error) {
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("estimator: confidence %v outside (0, 1)", confidence)
	}
	if (kind == Sum || kind == Count) && population < 0 {
		return nil, fmt.Errorf("estimator: %v requires a known population size", kind)
	}
	if kind == Median || kind == Quant {
		return nil, fmt.Errorf("estimator: %v is served by the Quantile estimator", kind)
	}
	return &Estimator{
		kind:       kind,
		confidence: confidence,
		population: population,
		withoutRep: withoutReplacement,
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}, nil
}

// MustNew is New for arguments known to be valid.
func MustNew(kind Kind, confidence float64, population int, withoutReplacement bool) *Estimator {
	e, err := New(kind, confidence, population, withoutReplacement)
	if err != nil {
		panic(err)
	}
	return e
}

// SetPopulation re-targets the estimator at a population of size n (pass
// -1 for unknown). The distributed coordinator calls this when shards are
// lost mid-query: the sample stream then covers only the surviving
// population, and shrinking the effective N keeps the point estimate,
// SUM/COUNT scaling, and finite-population correction honest over the
// survivors instead of silently biasing toward a population that can no
// longer be sampled (graceful degradation; see DESIGN.md §4.3).
func (e *Estimator) SetPopulation(n int) {
	if n < 0 {
		n = -1
	}
	e.population = n
}

// Population returns the estimator's current effective population size
// (q = |P ∩ Q| over the reachable shards), or -1 when unknown.
func (e *Estimator) Population() int { return e.population }

// Add feeds one sampled attribute value. NaN values (records missing the
// attribute) are skipped entirely, mirroring SQL NULL semantics: they
// contribute to neither the aggregate nor the sample count.
func (e *Estimator) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	e.w.Add(x)
	if x < e.min {
		e.min = x
	}
	if x > e.max {
		e.max = x
	}
}

// Samples returns the number of non-NaN samples consumed.
func (e *Estimator) Samples() int { return e.w.N() }

// Snapshot returns the current estimate.
func (e *Estimator) Snapshot() Estimate {
	k := e.w.N()
	out := Estimate{
		Kind:       e.kind,
		Confidence: e.confidence,
		Samples:    k,
		Population: e.population,
	}
	exhausted := e.withoutRep && e.population >= 0 && k >= e.population

	switch e.kind {
	case Min:
		out.Value = e.min
		out.HalfWidth = math.Inf(1)
		out.Exact = exhausted
		if k == 0 {
			out.Value = math.NaN()
		}
		return out
	case Max:
		out.Value = e.max
		out.HalfWidth = math.Inf(1)
		out.Exact = exhausted
		if k == 0 {
			out.Value = math.NaN()
		}
		return out
	case Count:
		// With exact range counting available, COUNT is trivially the
		// population; the estimator form exists for API symmetry and
		// for sources without counts.
		out.Value = float64(e.population)
		out.Exact = true
		return out
	}

	mean := e.w.Mean()
	variance := e.w.SampleVariance()

	if e.kind == Variance || e.kind == Stddev {
		// Population variance estimated by the unbiased sample
		// variance. The paper's example reports "a standard deviation
		// of 25 kWh" alongside the mean, so both are first-class.
		out.Value = variance
		if e.kind == Stddev {
			out.Value = math.Sqrt(variance)
		}
		if exhausted {
			out.Exact = true
			return out
		}
		if k < 2 {
			out.HalfWidth = math.Inf(1)
			return out
		}
		z := stats.ZScore(e.confidence)
		seVar := variance * math.Sqrt(2/float64(k-1))
		if e.kind == Variance {
			out.HalfWidth = z * seVar
		} else if variance > 0 {
			// Delta method: SE(s) ≈ SE(s²) / (2s).
			out.HalfWidth = z * seVar / (2 * math.Sqrt(variance))
		}
		return out
	}

	scale := 1.0
	if e.kind == Sum {
		scale = float64(e.population)
	}
	out.Value = mean * scale

	if exhausted {
		out.Exact = true
		out.HalfWidth = 0
		return out
	}
	if k < 2 {
		out.HalfWidth = math.Inf(1)
		return out
	}

	se := math.Sqrt(variance / float64(k))
	if e.withoutRep && e.population > 1 {
		// Finite-population correction for sampling without
		// replacement from a population of size q.
		fpc := float64(e.population-k) / float64(e.population-1)
		if fpc < 0 {
			fpc = 0
		}
		se *= math.Sqrt(fpc)
	}
	crit := stats.StudentTQuantile(e.confidence, k-1)
	out.HalfWidth = crit * se * scale
	return out
}
