package estimator

import (
	"math"
	"testing"
)

func TestLostMassBoundsAvg(t *testing.T) {
	// Surviving: 100 records, mean 10 ± 2. Lost: 50 records in [0, 20].
	e := Estimate{Kind: Avg, Value: 10, HalfWidth: 2, Population: 100}
	low, high, ok := LostMassBounds(e, 0, 20, 50)
	if !ok {
		t.Fatal("expected bounds")
	}
	// low  = (8·100 + 0·50) / 150 = 5.333…
	// high = (12·100 + 20·50) / 150 = 14.666…
	if math.Abs(low-800.0/150) > 1e-12 || math.Abs(high-2200.0/150) > 1e-12 {
		t.Errorf("avg bounds = [%v, %v], want [%v, %v]", low, high, 800.0/150, 2200.0/150)
	}
	if low > high {
		t.Error("inverted bounds")
	}
}

func TestLostMassBoundsSum(t *testing.T) {
	// Surviving sum 1000 ± 100; lost: 10 records in [-5, 30].
	e := Estimate{Kind: Sum, Value: 1000, HalfWidth: 100, Population: 200}
	low, high, ok := LostMassBounds(e, -5, 30, 10)
	if !ok {
		t.Fatal("expected bounds")
	}
	if low != 900-50 || high != 1100+300 {
		t.Errorf("sum bounds = [%v, %v], want [850, 1400]", low, high)
	}
}

// TestLostMassBoundsCoverage pins the covering property the statistical
// suites rely on: whenever the surviving CI contains the surviving
// aggregate, the widened interval contains the full-population aggregate,
// for any lost values inside [lo, hi].
func TestLostMassBoundsCoverage(t *testing.T) {
	const (
		popS      = 80
		survMean  = 42.5
		halfWidth = 3.0
		lo, hi    = 0.0, 100.0
		lostN     = 20
	)
	e := Estimate{Kind: Avg, Value: survMean + 1, HalfWidth: halfWidth, Population: popS} // CI covers survMean
	low, high, ok := LostMassBounds(e, lo, hi, lostN)
	if !ok {
		t.Fatal("expected bounds")
	}
	// Extreme lost-value mixes: all-lo, all-hi, and a middle mix.
	for _, lostMean := range []float64{lo, hi, 37.0} {
		full := (survMean*popS + lostMean*lostN) / (popS + lostN)
		if full < low-1e-12 || full > high+1e-12 {
			t.Errorf("full mean %v (lost mean %v) outside widened [%v, %v]", full, lostMean, low, high)
		}
	}
}

func TestLostMassBoundsRejectsBadInput(t *testing.T) {
	good := Estimate{Kind: Avg, Value: 10, HalfWidth: 2, Population: 100}
	cases := []struct {
		name   string
		e      Estimate
		lo, hi float64
		lostN  int
	}{
		{"nothing lost", good, 0, 20, 0},
		{"negative lost", good, 0, 20, -3},
		{"inverted value bounds", good, 20, 0, 50},
		{"NaN lo", good, math.NaN(), 20, 50},
		{"infinite hi", good, 0, math.Inf(1), 50},
		{"NaN value", Estimate{Kind: Avg, Value: math.NaN(), HalfWidth: 2, Population: 100}, 0, 20, 50},
		{"infinite half-width", Estimate{Kind: Avg, Value: 10, HalfWidth: math.Inf(1), Population: 100}, 0, 20, 50},
		{"unknown avg population", Estimate{Kind: Avg, Value: 10, HalfWidth: 2, Population: -1}, 0, 20, 50},
		{"unsupported kind", Estimate{Kind: Count, Value: 10, HalfWidth: 2, Population: 100}, 0, 20, 50},
	}
	for _, tc := range cases {
		if _, _, ok := LostMassBounds(tc.e, tc.lo, tc.hi, tc.lostN); ok {
			t.Errorf("%s: expected ok=false", tc.name)
		}
	}
}

func TestLostMassBoundsExactEstimate(t *testing.T) {
	// A degraded-but-exhausted query: the survivors were fully sampled, so
	// HalfWidth is 0 and the widened interval is purely the lost-mass
	// uncertainty.
	e := Estimate{Kind: Avg, Value: 10, HalfWidth: 0, Population: 100, Exact: true}
	low, high, ok := LostMassBounds(e, 5, 15, 100)
	if !ok {
		t.Fatal("expected bounds")
	}
	if math.Abs(low-7.5) > 1e-12 || math.Abs(high-12.5) > 1e-12 {
		t.Errorf("bounds = [%v, %v], want [7.5, 12.5]", low, high)
	}
}
