// Lost-mass worst-case bounds: combining a surviving-population estimate
// with hard per-shard value bounds into an interval over the full
// pre-crash population.
package estimator

import "math"

// LostMassBounds widens a degraded estimate into worst-case bounds over
// the full pre-crash population. e is the estimate over the surviving
// population (its Population already shrunk to the survivors), [lo, hi]
// are hard bounds on the attribute values of the lostN lost records (the
// coordinator's per-shard min/max summaries), and the result [low, high]
// bounds the full-population aggregate: if e's confidence interval covers
// the surviving aggregate — which it does with the estimate's nominal
// probability — then [low, high] covers the full-population truth with at
// least that probability, because every lost value provably lies in
// [lo, hi].
//
// Only AVG and SUM are supported (COUNT is answered exactly before any
// sampling; order statistics and moments do not decompose this way):
//
//	AVG: full mean = (survivingMean·popS + lostSum) / (popS + lostN),
//	     lostSum ∈ [lo·lostN, hi·lostN]
//	SUM: full sum  = survivingSum + lostSum, same lostSum bounds
//
// ok is false when the inputs cannot produce a finite bound: nothing
// lost, an unsupported kind, an unknown or empty surviving population
// with nothing sampled, or a still-infinite confidence interval.
func LostMassBounds(e Estimate, lo, hi float64, lostN int) (low, high float64, ok bool) {
	if lostN <= 0 || math.IsNaN(e.Value) || math.IsInf(e.HalfWidth, 0) || math.IsNaN(e.HalfWidth) {
		return 0, 0, false
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo > hi {
		return 0, 0, false
	}
	l := float64(lostN)
	switch e.Kind {
	case Avg:
		if e.Population < 0 {
			return 0, 0, false
		}
		popS := float64(e.Population)
		low = ((e.Value-e.HalfWidth)*popS + lo*l) / (popS + l)
		high = ((e.Value+e.HalfWidth)*popS + hi*l) / (popS + l)
		return low, high, true
	case Sum:
		low = (e.Value - e.HalfWidth) + lo*l
		high = (e.Value + e.HalfWidth) + hi*l
		return low, high, true
	}
	return 0, 0, false
}
