package estimator

import (
	"sort"
)

// GroupBy maintains one online estimator per group key, for queries such
// as "average temperature per state". Each sampled record contributes to
// its group's estimator; group means are unbiased conditioned on at least
// one sample landing in the group, the standard behaviour of online
// group-by aggregation (Xu et al.).
type GroupBy struct {
	kind       Kind
	confidence float64
	groups     map[string]*Estimator
}

// NewGroupBy returns an online group-by estimator. Group population sizes
// are generally unknown, so only Avg is supported (Sum/Count would require
// per-group population counts).
func NewGroupBy(kind Kind, confidence float64) *GroupBy {
	return &GroupBy{
		kind:       kind,
		confidence: confidence,
		groups:     make(map[string]*Estimator),
	}
}

// Add feeds one sampled record's group key and value.
func (g *GroupBy) Add(key string, value float64) {
	est, ok := g.groups[key]
	if !ok {
		est = MustNew(g.kind, g.confidence, -1, true)
		g.groups[key] = est
	}
	est.Add(value)
}

// Groups returns the number of groups seen so far.
func (g *GroupBy) Groups() int { return len(g.groups) }

// GroupEstimate pairs a group key with its estimate.
type GroupEstimate struct {
	Key string
	Estimate
}

// Snapshot returns per-group estimates sorted by key for deterministic
// presentation.
func (g *GroupBy) Snapshot() []GroupEstimate {
	out := make([]GroupEstimate, 0, len(g.groups))
	for k, est := range g.groups {
		out = append(out, GroupEstimate{Key: k, Estimate: est.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
