package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"storm/internal/stats"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Errorf("variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.SampleVariance()-32.0/7) > 1e-12 {
		t.Errorf("sample variance = %v, want %v", w.SampleVariance(), 32.0/7)
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var w1, w2, all Welford
		for _, x := range a {
			w1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			w2.Add(x)
			all.Add(x)
		}
		w1.Merge(w2)
		if w1.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(w1.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(w1.Variance()-all.Variance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAvgEstimatorConverges(t *testing.T) {
	rng := stats.NewRNG(1)
	pop := make([]float64, 10000)
	var trueSum float64
	for i := range pop {
		pop[i] = rng.NormFloat64()*10 + 100
		trueSum += pop[i]
	}
	trueMean := trueSum / float64(len(pop))

	est := MustNew(Avg, 0.95, len(pop), true)
	perm := rng.Perm(len(pop))
	var lastHW float64 = math.Inf(1)
	for i, idx := range perm {
		est.Add(pop[idx])
		if i == 99 || i == 999 {
			snap := est.Snapshot()
			if math.Abs(snap.Value-trueMean) > 4*10/math.Sqrt(float64(i+1)) {
				t.Errorf("k=%d: estimate %v too far from %v", i+1, snap.Value, trueMean)
			}
			if snap.HalfWidth >= lastHW {
				t.Errorf("k=%d: CI should shrink (%v -> %v)", i+1, lastHW, snap.HalfWidth)
			}
			lastHW = snap.HalfWidth
			if snap.Exact {
				t.Error("should not be exact before exhaustion")
			}
		}
	}
	final := est.Snapshot()
	if !final.Exact {
		t.Error("exhausted sample should be exact")
	}
	if math.Abs(final.Value-trueMean) > 1e-9 {
		t.Errorf("exhausted estimate %v != true %v", final.Value, trueMean)
	}
	if final.HalfWidth != 0 {
		t.Errorf("exact estimate should have zero half-width, got %v", final.HalfWidth)
	}
}

func TestSumEstimator(t *testing.T) {
	pop := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	est := MustNew(Sum, 0.95, len(pop), true)
	for _, x := range pop {
		est.Add(x)
	}
	snap := est.Snapshot()
	if !snap.Exact || snap.Value != 55 {
		t.Errorf("sum = %v exact=%v, want 55 exact", snap.Value, snap.Exact)
	}
}

func TestSumRequiresPopulation(t *testing.T) {
	if _, err := New(Sum, 0.95, -1, true); err == nil {
		t.Error("SUM without population should error")
	}
	if _, err := New(Count, 0.95, -1, true); err == nil {
		t.Error("COUNT without population should error")
	}
}

func TestCountIsExact(t *testing.T) {
	est := MustNew(Count, 0.95, 1234, true)
	snap := est.Snapshot()
	if !snap.Exact || snap.Value != 1234 {
		t.Errorf("count snapshot = %+v", snap)
	}
}

func TestMinMax(t *testing.T) {
	min := MustNew(Min, 0.95, 3, true)
	max := MustNew(Max, 0.95, 3, true)
	for _, x := range []float64{5, -2, 7} {
		min.Add(x)
		max.Add(x)
	}
	if got := min.Snapshot(); got.Value != -2 || !got.Exact {
		t.Errorf("min = %+v", got)
	}
	if got := max.Snapshot(); got.Value != 7 || !got.Exact {
		t.Errorf("max = %+v", got)
	}
}

func TestNaNValuesSkipped(t *testing.T) {
	est := MustNew(Avg, 0.95, 10, true)
	est.Add(math.NaN())
	est.Add(4)
	est.Add(math.NaN())
	est.Add(6)
	if est.Samples() != 2 {
		t.Errorf("samples = %d, want 2 (NaNs skipped)", est.Samples())
	}
	if got := est.Snapshot().Value; got != 5 {
		t.Errorf("value = %v", got)
	}
}

func TestConfidenceValidation(t *testing.T) {
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		if _, err := New(Avg, c, 10, true); err == nil {
			t.Errorf("confidence %v should be rejected", c)
		}
	}
}

func TestEarlySnapshots(t *testing.T) {
	est := MustNew(Avg, 0.95, 100, true)
	snap := est.Snapshot()
	if snap.Samples != 0 || !math.IsInf(snap.HalfWidth, 1) {
		t.Errorf("zero-sample snapshot = %+v", snap)
	}
	est.Add(5)
	snap = est.Snapshot()
	if !math.IsInf(snap.HalfWidth, 1) {
		t.Error("one-sample CI should be infinite")
	}
	if snap.Value != 5 {
		t.Errorf("one-sample value = %v", snap.Value)
	}
}

// TestCICoverage draws many independent samples of a population and checks
// the 95% CI covers the true mean close to 95% of the time.
func TestCICoverage(t *testing.T) {
	rng := stats.NewRNG(7)
	pop := make([]float64, 2000)
	var trueSum float64
	for i := range pop {
		pop[i] = rng.ExpFloat64() * 50 // skewed population
		trueSum += pop[i]
	}
	trueMean := trueSum / float64(len(pop))

	const trials = 2000
	const k = 100
	covered := 0
	for trial := 0; trial < trials; trial++ {
		est := MustNew(Avg, 0.95, len(pop), true)
		// Without-replacement sample of size k.
		perm := rng.Perm(len(pop))
		for _, idx := range perm[:k] {
			est.Add(pop[idx])
		}
		snap := est.Snapshot()
		if math.Abs(snap.Value-trueMean) <= snap.HalfWidth {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.985 {
		t.Errorf("CI coverage = %v, want ≈0.95", rate)
	}
}

func TestFinitePopulationCorrectionShrinksCI(t *testing.T) {
	// Identical samples, one estimator knows it has seen half the
	// population without replacement, the other samples with replacement.
	rng := stats.NewRNG(3)
	wor := MustNew(Avg, 0.95, 200, true)
	wr := MustNew(Avg, 0.95, 200, false)
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		wor.Add(x)
		wr.Add(x)
	}
	if wor.Snapshot().HalfWidth >= wr.Snapshot().HalfWidth {
		t.Error("without-replacement CI should be tighter (FPC)")
	}
}

func TestEstimateString(t *testing.T) {
	est := MustNew(Avg, 0.95, 100, true)
	est.Add(1)
	est.Add(3)
	s := est.Snapshot().String()
	if s == "" {
		t.Error("empty string")
	}
	if got := est.Snapshot().RelativeErrorBound(); got <= 0 {
		t.Errorf("relative error bound = %v", got)
	}
}

func TestGroupBy(t *testing.T) {
	g := NewGroupBy(Avg, 0.95)
	g.Add("a", 1)
	g.Add("a", 3)
	g.Add("b", 10)
	if g.Groups() != 2 {
		t.Fatalf("groups = %d", g.Groups())
	}
	snaps := g.Snapshot()
	if len(snaps) != 2 || snaps[0].Key != "a" || snaps[1].Key != "b" {
		t.Fatalf("snapshot keys wrong: %+v", snaps)
	}
	if snaps[0].Value != 2 || snaps[1].Value != 10 {
		t.Errorf("group means = %v, %v", snaps[0].Value, snaps[1].Value)
	}
}

func TestQuantile(t *testing.T) {
	q, err := NewQuantile(0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 2000; i++ {
		q.Add(rng.NormFloat64())
	}
	snap := q.Snapshot()
	if math.Abs(snap.Value) > 0.1 {
		t.Errorf("median of N(0,1) sample = %v", snap.Value)
	}
	if snap.Lo > snap.Value || snap.Hi < snap.Value {
		t.Errorf("bounds [%v, %v] do not bracket %v", snap.Lo, snap.Hi, snap.Value)
	}
}

func TestQuantileValidation(t *testing.T) {
	if _, err := NewQuantile(0, 0.95); err == nil {
		t.Error("p=0 should be rejected")
	}
	if _, err := NewQuantile(0.5, 1); err == nil {
		t.Error("confidence=1 should be rejected")
	}
}

func TestQuantileEmpty(t *testing.T) {
	q, _ := NewQuantile(0.5, 0.95)
	snap := q.Snapshot()
	if !math.IsNaN(snap.Value) {
		t.Error("empty quantile should be NaN")
	}
}

func TestVarianceEstimator(t *testing.T) {
	rng := stats.NewRNG(11)
	pop := make([]float64, 5000)
	for i := range pop {
		pop[i] = rng.NormFloat64() * 10 // true variance 100, stddev 10
	}
	ve := MustNew(Variance, 0.95, len(pop), true)
	se := MustNew(Stddev, 0.95, len(pop), true)
	for _, x := range pop[:1000] {
		ve.Add(x)
		se.Add(x)
	}
	vs := ve.Snapshot()
	if math.Abs(vs.Value-100) > 15 {
		t.Errorf("variance estimate = %v, want ~100", vs.Value)
	}
	if vs.HalfWidth <= 0 || math.IsInf(vs.HalfWidth, 1) {
		t.Errorf("variance CI = %v", vs.HalfWidth)
	}
	ss := se.Snapshot()
	if math.Abs(ss.Value-10) > 1 {
		t.Errorf("stddev estimate = %v, want ~10", ss.Value)
	}
	if math.Abs(ss.Value*ss.Value-vs.Value) > 1e-9 {
		t.Errorf("stddev² (%v) != variance (%v)", ss.Value*ss.Value, vs.Value)
	}
	// Exhaustion marks exact.
	for _, x := range pop[1000:] {
		ve.Add(x)
	}
	if !ve.Snapshot().Exact {
		t.Error("exhausted variance should be exact")
	}
}

func TestVarianceCIShrinks(t *testing.T) {
	rng := stats.NewRNG(13)
	e := MustNew(Variance, 0.95, 1<<20, true)
	for i := 0; i < 50; i++ {
		e.Add(rng.NormFloat64())
	}
	hw50 := e.Snapshot().HalfWidth
	for i := 0; i < 5000; i++ {
		e.Add(rng.NormFloat64())
	}
	if hw := e.Snapshot().HalfWidth; hw >= hw50 {
		t.Errorf("variance CI did not shrink: %v -> %v", hw50, hw)
	}
}

func TestMedianKindRejectedByNew(t *testing.T) {
	if _, err := New(Median, 0.95, 10, true); err == nil {
		t.Error("Median kind should be rejected by New")
	}
	if _, err := New(Quant, 0.95, 10, true); err == nil {
		t.Error("Quant kind should be rejected by New")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Avg: "AVG", Sum: "SUM", Count: "COUNT", Min: "MIN", Max: "MAX",
		Variance: "VARIANCE", Stddev: "STDDEV", Median: "MEDIAN", Quant: "QUANTILE",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", int(k), k.String())
		}
	}
}
