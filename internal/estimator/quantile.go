package estimator

import (
	"fmt"
	"math"
	"sort"

	"storm/internal/stats"
)

// Quantile estimates a population quantile from an online sample by
// keeping all sampled values and reporting the sample quantile, with a
// distribution-free confidence interval from the binomial order-statistic
// bound: the population p-quantile lies between sample order statistics
// floor(kp - z√(kp(1-p))) and ceil(kp + z√(kp(1-p))) with the configured
// confidence.
type Quantile struct {
	p          float64
	confidence float64
	values     []float64
	sorted     bool
}

// NewQuantile returns an online estimator for the p-quantile (0 < p < 1).
func NewQuantile(p, confidence float64) (*Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("estimator: quantile p %v outside (0, 1)", p)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("estimator: confidence %v outside (0, 1)", confidence)
	}
	return &Quantile{p: p, confidence: confidence}, nil
}

// Add feeds one sampled value; NaNs are ignored.
func (q *Quantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	q.values = append(q.values, x)
	q.sorted = false
}

// Samples returns the number of values consumed.
func (q *Quantile) Samples() int { return len(q.values) }

// QuantileEstimate is a snapshot of an online quantile estimator.
type QuantileEstimate struct {
	P          float64
	Value      float64
	Lo, Hi     float64 // confidence bounds (sample order statistics)
	Confidence float64
	Samples    int
}

// Snapshot returns the current quantile estimate. With fewer than two
// samples the bounds are infinite.
func (q *Quantile) Snapshot() QuantileEstimate {
	k := len(q.values)
	out := QuantileEstimate{P: q.p, Confidence: q.confidence, Samples: k}
	if k == 0 {
		out.Value = math.NaN()
		out.Lo, out.Hi = math.Inf(-1), math.Inf(1)
		return out
	}
	if !q.sorted {
		sort.Float64s(q.values)
		q.sorted = true
	}
	idx := int(q.p * float64(k))
	if idx >= k {
		idx = k - 1
	}
	out.Value = q.values[idx]

	z := stats.ZScore(q.confidence)
	spread := z * math.Sqrt(float64(k)*q.p*(1-q.p))
	lo := int(math.Floor(q.p*float64(k) - spread))
	hi := int(math.Ceil(q.p*float64(k) + spread))
	if lo < 0 {
		out.Lo = math.Inf(-1)
	} else {
		out.Lo = q.values[lo]
	}
	if hi >= k {
		out.Hi = math.Inf(1)
	} else {
		out.Hi = q.values[hi]
	}
	return out
}
