package data

import (
	"math"
	"testing"

	"storm/internal/geo"
)

func TestAppendAndAccess(t *testing.T) {
	ds := NewDataset("d")
	ds.AddNumericColumn("temp")
	ds.AddStringColumn("user")
	id := ds.Append(Row{
		Pos: geo.Vec{1, 2, 3},
		Num: map[string]float64{"temp": 20.5},
		Str: map[string]string{"user": "alice"},
	})
	if id != 0 || ds.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, ds.Len())
	}
	if ds.Pos(id) != (geo.Vec{1, 2, 3}) {
		t.Errorf("Pos = %v", ds.Pos(id))
	}
	v, err := ds.Numeric("temp", id)
	if err != nil || v != 20.5 {
		t.Errorf("Numeric = %v, %v", v, err)
	}
	s, err := ds.String("user", id)
	if err != nil || s != "alice" {
		t.Errorf("String = %q, %v", s, err)
	}
}

func TestMissingValuesAreNaN(t *testing.T) {
	ds := NewDataset("d")
	ds.AddNumericColumn("x")
	id := ds.Append(Row{Pos: geo.Vec{0, 0, 0}})
	v, err := ds.Numeric("x", id)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("missing numeric = %v, want NaN", v)
	}
}

func TestLazyColumnCreation(t *testing.T) {
	ds := NewDataset("d")
	ds.Append(Row{Pos: geo.Vec{0, 0, 0}}) // row 0: no columns yet
	ds.Append(Row{Pos: geo.Vec{1, 1, 1}, Num: map[string]float64{"alt": 5}})
	// Row 0 must have NaN in the lazily created column.
	v0, err := ds.Numeric("alt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v0) {
		t.Errorf("pre-existing row = %v, want NaN", v0)
	}
	v1, _ := ds.Numeric("alt", 1)
	if v1 != 5 {
		t.Errorf("row 1 = %v", v1)
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	ds := NewDataset("d")
	ds.AppendFast(geo.Vec{0, 0, 0})
	if _, err := ds.Numeric("nope", 0); err == nil {
		t.Error("unknown numeric column should error")
	}
	if _, err := ds.String("nope", 0); err == nil {
		t.Error("unknown string column should error")
	}
	if _, err := ds.NumericColumn("nope"); err == nil {
		t.Error("unknown numeric column slice should error")
	}
	if _, err := ds.StringColumn("nope"); err == nil {
		t.Error("unknown string column slice should error")
	}
	if err := ds.SetNumeric("nope", 0, 1); err == nil {
		t.Error("SetNumeric on unknown column should error")
	}
	if err := ds.SetString("nope", 0, "x"); err == nil {
		t.Error("SetString on unknown column should error")
	}
}

func TestEntriesAndBounds(t *testing.T) {
	ds := NewDataset("d")
	ds.AppendFast(geo.Vec{0, 5, 1})
	ds.AppendFast(geo.Vec{10, -5, 2})
	entries := ds.Entries()
	if len(entries) != 2 || entries[1].ID != 1 {
		t.Fatalf("entries = %v", entries)
	}
	b := ds.Bounds()
	if b.Min != (geo.Vec{0, -5, 1}) || b.Max != (geo.Vec{10, 5, 2}) {
		t.Errorf("bounds = %v", b)
	}
	if !NewDataset("e").Bounds().IsEmpty() {
		t.Error("empty dataset bounds should be empty")
	}
}

func TestAppendFastAndSet(t *testing.T) {
	ds := NewDataset("d")
	ds.AddNumericColumn("v")
	ds.AddStringColumn("s")
	id := ds.AppendFast(geo.Vec{1, 1, 1})
	if err := ds.SetNumeric("v", id, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetString("s", id, "hi"); err != nil {
		t.Fatal(err)
	}
	v, _ := ds.Numeric("v", id)
	s, _ := ds.String("s", id)
	if v != 3.5 || s != "hi" {
		t.Errorf("got %v, %q", v, s)
	}
}

func TestColumnListings(t *testing.T) {
	ds := NewDataset("d")
	ds.AddNumericColumn("a")
	ds.AddNumericColumn("b")
	ds.AddStringColumn("c")
	if len(ds.NumericColumns()) != 2 || len(ds.StringColumns()) != 1 {
		t.Errorf("columns = %v / %v", ds.NumericColumns(), ds.StringColumns())
	}
	if !ds.HasNumeric("a") || ds.HasNumeric("c") {
		t.Error("HasNumeric wrong")
	}
	if !ds.HasString("c") || ds.HasString("a") {
		t.Error("HasString wrong")
	}
	// Re-declaring is a no-op, not a reset.
	ds.AppendFast(geo.Vec{0, 0, 0})
	ds.SetNumeric("a", 0, 9)
	ds.AddNumericColumn("a")
	v, _ := ds.Numeric("a", 0)
	if v != 9 {
		t.Error("re-declare should not clear data")
	}
}
