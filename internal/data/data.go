// Package data defines the record and dataset representations shared by
// STORM's indexes, samplers and estimators.
//
// Indexes store only (ID, position) pairs; the attribute payload lives in a
// columnar Dataset addressed by record ID. This keeps index nodes small
// (they model disk pages) and lets an estimator fetch just the one column a
// query aggregates.
package data

import (
	"fmt"
	"math"

	"storm/internal/geo"
)

// ID identifies a record within a dataset. IDs are dense indices into the
// dataset's columns.
type ID = uint64

// Entry is the unit stored in spatial indexes: a record ID plus its
// position in (x, y, t) space.
type Entry struct {
	ID  ID
	Pos geo.Vec
}

// Dataset is a columnar in-memory table of spatio-temporal records. Row i
// has position Pos(i), numeric attributes in float64 columns and string
// attributes in string columns. Datasets are append-only through Append*;
// deletion is handled at the index layer (a deleted ID simply stops being
// returned by samplers).
type Dataset struct {
	name string
	pos  []geo.Vec
	num  map[string][]float64
	str  map[string][]string
}

// NewDataset returns an empty dataset with the given name.
func NewDataset(name string) *Dataset {
	return &Dataset{
		name: name,
		num:  make(map[string][]float64),
		str:  make(map[string][]string),
	}
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.pos) }

// Pos returns the position of record id.
func (d *Dataset) Pos(id ID) geo.Vec { return d.pos[id] }

// Entry returns the index entry for record id.
func (d *Dataset) Entry(id ID) Entry { return Entry{ID: id, Pos: d.pos[id]} }

// Entries materializes index entries for every record. Used for bulk
// loading; samplers never need the full list.
func (d *Dataset) Entries() []Entry {
	out := make([]Entry, len(d.pos))
	for i := range d.pos {
		out[i] = Entry{ID: ID(i), Pos: d.pos[i]}
	}
	return out
}

// Bounds returns the MBR of all record positions, or an empty rect for an
// empty dataset.
func (d *Dataset) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range d.pos {
		r = r.ExtendPoint(p)
	}
	return r
}

// AddNumericColumn declares a numeric column. Existing rows get NaN.
func (d *Dataset) AddNumericColumn(name string) {
	if _, ok := d.num[name]; ok {
		return
	}
	col := make([]float64, len(d.pos))
	for i := range col {
		col[i] = math.NaN()
	}
	d.num[name] = col
}

// AddStringColumn declares a string column. Existing rows get "".
func (d *Dataset) AddStringColumn(name string) {
	if _, ok := d.str[name]; ok {
		return
	}
	d.str[name] = make([]string, len(d.pos))
}

// NumericColumns returns the names of all numeric columns.
func (d *Dataset) NumericColumns() []string {
	out := make([]string, 0, len(d.num))
	for k := range d.num {
		out = append(out, k)
	}
	return out
}

// StringColumns returns the names of all string columns.
func (d *Dataset) StringColumns() []string {
	out := make([]string, 0, len(d.str))
	for k := range d.str {
		out = append(out, k)
	}
	return out
}

// HasNumeric reports whether the dataset has a numeric column of that name.
func (d *Dataset) HasNumeric(name string) bool {
	_, ok := d.num[name]
	return ok
}

// HasString reports whether the dataset has a string column of that name.
func (d *Dataset) HasString(name string) bool {
	_, ok := d.str[name]
	return ok
}

// Numeric returns the value of a numeric column for record id. It returns
// an error for unknown columns so query evaluation can surface a clean
// message instead of panicking deep inside an estimator loop.
func (d *Dataset) Numeric(name string, id ID) (float64, error) {
	col, ok := d.num[name]
	if !ok {
		return 0, fmt.Errorf("data: dataset %q has no numeric column %q", d.name, name)
	}
	return col[id], nil
}

// NumericColumn returns the backing slice of a numeric column (read-only by
// convention) for tight estimator loops.
func (d *Dataset) NumericColumn(name string) ([]float64, error) {
	col, ok := d.num[name]
	if !ok {
		return nil, fmt.Errorf("data: dataset %q has no numeric column %q", d.name, name)
	}
	return col, nil
}

// String returns the value of a string column for record id.
func (d *Dataset) String(name string, id ID) (string, error) {
	col, ok := d.str[name]
	if !ok {
		return "", fmt.Errorf("data: dataset %q has no string column %q", d.name, name)
	}
	return col[id], nil
}

// StringColumn returns the backing slice of a string column.
func (d *Dataset) StringColumn(name string) ([]string, error) {
	col, ok := d.str[name]
	if !ok {
		return nil, fmt.Errorf("data: dataset %q has no string column %q", d.name, name)
	}
	return col, nil
}

// Row carries one record's attributes during appends and imports.
type Row struct {
	Pos geo.Vec
	Num map[string]float64
	Str map[string]string
}

// Grow ensures capacity for n more records in the position store and
// every declared column, growing by at least a doubling. Batch writers
// (engine.Handle.InsertBatch) call it once per batch so the per-record
// appends never pay a mid-batch reallocation — with Go's 1.25x growth
// policy for large slices, per-record growth was the dominant memory
// traffic of the streaming drain path.
func (d *Dataset) Grow(n int) {
	need := len(d.pos) + n
	if need <= cap(d.pos) {
		return
	}
	if min := 2 * cap(d.pos); need < min {
		need = min
	}
	pos := make([]geo.Vec, len(d.pos), need)
	copy(pos, d.pos)
	d.pos = pos
	for name, col := range d.num {
		nc := make([]float64, len(col), need)
		copy(nc, col)
		d.num[name] = nc
	}
	for name, col := range d.str {
		sc := make([]string, len(col), need)
		copy(sc, col)
		d.str[name] = sc
	}
}

// Append adds a row and returns its assigned ID. Columns absent from the
// row receive NaN / "".
func (d *Dataset) Append(row Row) ID {
	id := ID(len(d.pos))
	d.pos = append(d.pos, row.Pos)
	for name, col := range d.num {
		v, ok := row.Num[name]
		if !ok {
			v = math.NaN()
		}
		d.num[name] = append(col, v)
	}
	for name, col := range d.str {
		d.str[name] = append(col, row.Str[name])
	}
	// Columns mentioned by the row but not yet declared are created lazily.
	for name, v := range row.Num {
		if _, ok := d.num[name]; !ok {
			d.AddNumericColumn(name)
			col := d.num[name]
			col[id] = v
			d.num[name] = col
		}
	}
	for name, v := range row.Str {
		if _, ok := d.str[name]; !ok {
			d.AddStringColumn(name)
			col := d.str[name]
			col[id] = v
			d.str[name] = col
		}
	}
	return id
}

// AppendFast adds a record position only, for bulk generators that fill
// columns directly afterwards via column slices. It returns the new ID.
// All declared columns are extended with zero values (not NaN) because
// generators overwrite them immediately.
func (d *Dataset) AppendFast(pos geo.Vec) ID {
	id := ID(len(d.pos))
	d.pos = append(d.pos, pos)
	for name, col := range d.num {
		d.num[name] = append(col, 0)
	}
	for name, col := range d.str {
		d.str[name] = append(col, "")
	}
	return id
}

// SetNumeric sets a numeric attribute of an existing record.
func (d *Dataset) SetNumeric(name string, id ID, v float64) error {
	col, ok := d.num[name]
	if !ok {
		return fmt.Errorf("data: dataset %q has no numeric column %q", d.name, name)
	}
	col[id] = v
	return nil
}

// SetString sets a string attribute of an existing record.
func (d *Dataset) SetString(name string, id ID, v string) error {
	col, ok := d.str[name]
	if !ok {
		return fmt.Errorf("data: dataset %q has no string column %q", d.name, name)
	}
	col[id] = v
	return nil
}
