package query_test

import (
	"testing"

	"storm/internal/pred"
	"storm/internal/query"
)

// FuzzParseWhere fuzzes the WHERE clause's attribute-predicate grammar:
// no input may panic the parser, and every accepted clause must
// round-trip through the canonical form — pred.Normalize(terms).String()
// is a fixpoint (re-parsing the canonical comparisons and re-normalizing
// reproduces it exactly). The fixpoint is the strongest property that
// holds for free-form input: the original clause may normalize (duplicate
// attributes intersect, vacuous terms drop, BETWEEN desugars), but the
// canonical form may not drift.
//
// Run the full fuzzer with:
//
//	go test -run FuzzParseWhere -fuzz FuzzParseWhere -fuzztime 30s ./internal/query/
//
// Without -fuzz, the checked-in corpus under testdata/fuzz/FuzzParseWhere
// plus the f.Add seeds run as regression cases on every ordinary
// `go test`.
func FuzzParseWhere(f *testing.F) {
	for _, seed := range []string{
		"",
		"speed >= 30",
		"speed >= 30 AND speed < 80",
		"speed > 0 AND speed < 0",
		"noise = 0.5",
		"BETWEEN(speed, 10, 20)",
		"BETWEEN(speed, 10, 20) AND noise <= 0.25",
		"REGION(-1, -1, 1, 1) AND speed >= 30",
		"TIME(0, 100) AND speed >= 30 AND REGION(0, 0, 1, 1)",
		"speed >= 1e+06",
		"speed <= -2.5e-09",
		"a >= 3 AND a >= 4 AND a < 10",
		"a = 1 AND b = 2 AND c = 3",
		"speed >",
		"speed >= fast",
		"BETWEEN(speed, 10)",
		"speed == 3",
		"speed >= 1e999",
		"_x-1.y < .5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		// The raw input alone exercises the whole grammar for panics.
		query.Parse(clause)

		q, err := query.Parse("COUNT FROM d WHERE " + clause)
		if err != nil {
			return
		}
		canon := pred.Normalize(q.Where).String()
		if canon == "" {
			return
		}
		q2, err := query.Parse("COUNT FROM d WHERE " + canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, clause, err)
		}
		if again := pred.Normalize(q2.Where).String(); again != canon {
			t.Fatalf("canonical String is not a fixpoint for %q: %q -> %q", clause, canon, again)
		}
	})
}

// FuzzParseContract fuzzes the contract clauses (ERROR <pct> AT
// CONFIDENCE <pct>, WITHIN <duration>): no input may panic the parser,
// and every accepted contract must round-trip through the canonical form
// — Query.ContractClause() is a fixpoint (re-parsing the rendered clause
// reproduces the exact targets, including the deadline down to the
// nanosecond). Free-form input may normalize (percent signs divide by
// 100, duration units convert), but the canonical form may not drift.
//
// Run the full fuzzer with:
//
//	go test -run FuzzParseContract -fuzz FuzzParseContract -fuzztime 30s ./internal/query/
//
// Without -fuzz, the checked-in corpus under
// testdata/fuzz/FuzzParseContract plus the f.Add seeds run as regression
// cases on every ordinary `go test`.
func FuzzParseContract(f *testing.F) {
	for _, seed := range []string{
		"",
		"ERROR 2% AT CONFIDENCE 95%",
		"ERROR 2% AT CONFIDENCE 95% WITHIN 500ms",
		"ERROR 0.02 AT CONFIDENCE 0.95 WITHIN 500ms",
		"WITH ERROR 5 AT CONFIDENCE 0.99",
		"ERROR 1e-9 AT CONFIDENCE 0.5 WITHIN 1.5s",
		"ERROR 0.1 AT CONFIDENCE 0.9999999 WITHIN 2m",
		"ERROR 2% AT CONFIDENCE 95% WITHIN 0.000001ms",
		"ERROR 2% AT CONFIDENCE 95% WITHIN 1125899906ms",
		"ERROR 2%",
		"WITHIN 500ms",
		"ERROR 2% AT 95%",
		"ERROR AT CONFIDENCE 95%",
		"ERROR 2% AT CONFIDENCE 150%",
		"ERROR -2% AT CONFIDENCE 95%",
		"ERROR 2% AT CONFIDENCE 95% WITHIN -1s",
		"ERROR 2% AT CONFIDENCE 95% WITHIN 9e99s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		// The raw input alone exercises the whole grammar for panics.
		query.Parse(clause)

		q, err := query.Parse("SELECT AVG(x) FROM d " + clause)
		if err != nil || !q.Contract {
			return
		}
		canon := q.ContractClause()
		if canon == "" {
			t.Fatalf("contract query for %q rendered an empty clause", clause)
		}
		q2, err := query.Parse("SELECT AVG(x) FROM d " + canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, clause, err)
		}
		if q2.RelError != q.RelError || q2.Confidence != q.Confidence || q2.Within != q.Within || !q2.Contract {
			t.Fatalf("canonical form %q of %q re-parses to different targets: %+v vs %+v", canon, clause, q2, q)
		}
		if again := q2.ContractClause(); again != canon {
			t.Fatalf("canonical ContractClause is not a fixpoint for %q: %q -> %q", clause, canon, again)
		}
	})
}

// FuzzParseWindow fuzzes the sliding-window clause (LAST <duration>): no
// input may panic the parser, and every accepted window must round-trip
// through the canonical form — Query.WindowClause() is a fixpoint
// (re-parsing the rendered clause reproduces Last to the nanosecond).
// Free-form input may normalize (s/m/h units convert to decimal
// milliseconds), but the canonical form may not drift.
//
// Run the full fuzzer with:
//
//	go test -run FuzzParseWindow -fuzz FuzzParseWindow -fuzztime 30s ./internal/query/
//
// Without -fuzz, the checked-in corpus under testdata/fuzz/FuzzParseWindow
// plus the f.Add seeds run as regression cases on every ordinary
// `go test`.
func FuzzParseWindow(f *testing.F) {
	for _, seed := range []string{
		"",
		"LAST 5m",
		"LAST 300s",
		"LAST 1h",
		"LAST 500ms",
		"LAST 0.5s",
		"LAST 90",
		"LAST 1e-3s",
		"LAST 2.5h",
		"LAST 5m WITH CONFIDENCE 95%",
		"LAST 5m ERROR 2% AT CONFIDENCE 95% WITHIN 500ms",
		"WHERE speed >= 30 LAST 5m",
		"LAST 0s",
		"LAST -5m",
		"LAST",
		"LAST 5d",
		"LAST 9e99h",
		"LAST 5m LAST 10m",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		// The raw input alone exercises the whole grammar for panics.
		query.Parse(clause)

		q, err := query.Parse("SELECT AVG(x) FROM d " + clause)
		if err != nil || q.Last <= 0 {
			return
		}
		canon := q.WindowClause()
		if canon == "" {
			t.Fatalf("windowed query for %q rendered an empty clause", clause)
		}
		q2, err := query.Parse("SELECT AVG(x) FROM d " + canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, clause, err)
		}
		if q2.Last != q.Last {
			t.Fatalf("canonical form %q of %q re-parses to a different window: %v vs %v", canon, clause, q2.Last, q.Last)
		}
		if again := q2.WindowClause(); again != canon {
			t.Fatalf("canonical WindowClause is not a fixpoint for %q: %q -> %q", clause, canon, again)
		}
	})
}
