package query

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"storm/internal/data"
	"storm/internal/engine"
	"storm/internal/geo"
	"storm/internal/viz"
)

// Execute parses and runs one STORM statement against the engine, writing
// online progress and the final result to w. It blocks until the query
// terminates (target met, budget spent, sample exhausted, or ctx
// cancelled).
func Execute(ctx context.Context, eng *engine.Engine, statement string, w io.Writer) error {
	q, err := Parse(statement)
	if err != nil {
		return err
	}
	return Run(ctx, eng, q, w)
}

// Run executes a parsed query.
func Run(ctx context.Context, eng *engine.Engine, q *Query, w io.Writer) error {
	if q.Op == OpShow {
		names := eng.Datasets()
		sort.Strings(names)
		for _, n := range names {
			h, err := eng.Dataset(n)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "%s\t%d records\tnumeric: %s\tstring: %s\n",
				n, h.Len(),
				strings.Join(sortedStrings(h.Data().NumericColumns()), ","),
				strings.Join(sortedStrings(h.Data().StringColumns()), ","))
		}
		return nil
	}

	if q.Op == OpDrop {
		if err := eng.Unregister(q.Dataset); err != nil {
			return err
		}
		fmt.Fprintf(w, "dropped dataset %s\n", q.Dataset)
		return nil
	}

	h, err := eng.Dataset(q.Dataset)
	if err != nil {
		return err
	}
	r := q.Range()

	// Analytics scope to `LAST <dur>` by narrowing the range's time axis
	// up front; single-aggregate estimates and contracts hand Options.Last
	// to the engine instead (so distributed queries ship the window to
	// shards rather than baking it into the rectangle).
	switch q.Op {
	case OpKDE, OpTerms, OpTrajectory, OpHotspots, OpCluster:
		wr, ok := windowRange(h, q, r)
		if !ok {
			return emptyWindow(w, q)
		}
		r = wr
	}

	switch q.Op {
	case OpInsert:
		for _, row := range q.Rows {
			h.Insert(data.Row{Pos: geo.Vec{row[0], row[1], row[2]}})
		}
		fmt.Fprintf(w, "inserted %d record(s) into %s\n", len(q.Rows), q.Dataset)
		return nil

	case OpDelete:
		n, err := h.DeleteRange(r)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "deleted %d record(s) from %s\n", n, q.Dataset)
		return nil

	case OpEstimate:
		if q.Explain {
			er, ok := windowRange(h, q, r)
			if !ok {
				return emptyWindow(w, q)
			}
			plan, err := h.ExplainWhere(er, q.Where, engine.PushdownAuto)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "dataset:        %s (%d records)\n", plan.Dataset, plan.N)
			fmt.Fprintf(w, "matching:       %d (selectivity %.3f%%)\n", plan.Matching, plan.Selectivity*100)
			fmt.Fprintf(w, "canonical size: %d parts (tree height %d)\n", plan.CanonicalSize, plan.TreeHeight)
			fmt.Fprintf(w, "sampler:        %s\n", plan.Method)
			if plan.Where != "" {
				strategy := "rejection"
				if plan.Pushdown {
					strategy = "pushdown"
				}
				fmt.Fprintf(w, "predicate:      %s (est. selectivity %.3f%%, qualifying %d, strategy %s)\n",
					plan.Where, plan.WhereSelectivity*100, plan.Qualifying, strategy)
			}
			if q.Contract {
				cp, err := h.ExplainContract(r, contractOptions(q), queryContract(q))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "contract:       %s\n", cp.Target)
				feas := "feasible"
				if !cp.Feasible {
					feas = "infeasible"
				}
				profile := "warm profile"
				if cp.Cold {
					profile = "cold plan (priors)"
				}
				switch {
				case cp.Exact:
					fmt.Fprintf(w, "plan:           exact over %d qualifying records (%s)\n", cp.Qualifying, profile)
				default:
					fmt.Fprintf(w, "plan:           %d samples predicted (cv %.3g, %.3g samples/ms, ~%.1fms) — %s, %s\n",
						cp.Samples, cp.CV, cp.RateSPMS, cp.PredictedMS, feas, profile)
				}
				if !cp.Feasible {
					fmt.Fprintf(w, "prediction:     ~%.3g%% relative error within the deadline's ~%d-sample budget\n",
						cp.PredictedRelError*100, cp.Budget)
				}
				fmt.Fprintf(w, "stopping rule:  check target every %d samples\n", cp.ReportEvery)
			}
			return nil
		}
		if q.Contract {
			if q.GroupBy != "" || len(q.MultiAggs) > 1 {
				return fmt.Errorf("query: contracts apply to single-aggregate estimates (no GROUP BY or aggregate lists)")
			}
			res, err := h.EstimateContract(ctx, r, contractOptions(q), queryContract(q))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s  t=%s sampler=%s\n", res, res.Elapsed.Round(100_000), res.Method)
			return nil
		}
		opts := engine.Options{
			Kind:           q.Agg,
			Attr:           q.Attr,
			QuantileP:      q.QuantileP,
			Confidence:     q.Confidence,
			TargetRelError: q.RelError,
			TimeBudget:     q.Within,
			MaxSamples:     q.Samples,
			Method:         q.Method,
			Where:          q.Where,
			Last:           q.Last,
		}
		if len(q.MultiAggs) > 1 {
			if opts.MaxSamples == 0 && opts.TimeBudget == 0 {
				opts.MaxSamples = 2000
			}
			// Multi-aggregate streams share one sampler built from the
			// range alone; the window narrows the range here.
			mr, ok := windowRange(h, q, r)
			if !ok {
				return emptyWindow(w, q)
			}
			ch, err := h.EstimateMultiOnline(ctx, mr, q.MultiAggs, opts)
			if err != nil {
				return err
			}
			var last engine.MultiSnapshot
			for s := range ch {
				last = s
			}
			fmt.Fprintf(w, "joint estimates over %d samples (sampler %s):\n", last.Samples, last.Method)
			for _, est := range last.Estimates {
				fmt.Fprintf(w, "  %s\n", est)
			}
			return nil
		}
		if q.GroupBy != "" {
			if opts.MaxSamples == 0 && opts.TimeBudget == 0 {
				opts.MaxSamples = 2000
			}
			gr, ok := windowRange(h, q, r)
			if !ok {
				return emptyWindow(w, q)
			}
			ch, err := h.GroupByOnline(ctx, gr, q.Attr, q.GroupBy, opts)
			if err != nil {
				return err
			}
			var last engine.GroupsSnapshot
			for s := range ch {
				last = s
			}
			fmt.Fprintf(w, "%d groups over %d samples:\n", len(last.Groups), last.Samples)
			for _, g := range last.Groups {
				fmt.Fprintf(w, "  %-20s %s\n", g.Key, g.Estimate)
			}
			return nil
		}
		ch, err := h.EstimateOnline(ctx, r, opts)
		if err != nil {
			return err
		}
		for s := range ch {
			marker := ""
			if s.Done {
				marker = " [final]"
			}
			fmt.Fprintf(w, "%s  t=%s sampler=%s%s\n", s.Estimate, s.Elapsed.Round(100_000), s.Method, marker)
		}
		return nil

	case OpKDE:
		kopts := engine.KDEOptions{Nx: q.GridX, Ny: q.GridY}
		aopts := engine.AnalyticOptions{TimeBudget: q.Within, MaxSamples: q.Samples, Method: q.Method}
		if aopts.MaxSamples == 0 && aopts.TimeBudget == 0 {
			aopts.MaxSamples = 2000
		}
		ch, err := h.KDEOnline(ctx, r, kopts, aopts)
		if err != nil {
			return err
		}
		var last engine.KDESnapshot
		for s := range ch {
			last = s
			fmt.Fprintf(w, "kde: %d samples, t=%s\n", s.Map.Samples, s.Elapsed.Round(100_000))
		}
		if last.Map != nil {
			fmt.Fprintln(w, viz.Heatmap(last.Map, 0))
		}
		return nil

	case OpTerms:
		aopts := engine.AnalyticOptions{TimeBudget: q.Within, MaxSamples: q.Samples, Method: q.Method}
		if aopts.MaxSamples == 0 && aopts.TimeBudget == 0 {
			aopts.MaxSamples = 1000
		}
		topN := q.TopN
		if topN == 0 {
			topN = 10
		}
		ch, err := h.TermsOnline(ctx, r, q.Attr, topN, aopts)
		if err != nil {
			return err
		}
		var last engine.TermsSnapshot
		for s := range ch {
			last = s
		}
		if last.Terms != nil {
			fmt.Fprint(w, viz.TermTable(last.Terms))
		}
		return nil

	case OpTrajectory:
		aopts := engine.AnalyticOptions{TimeBudget: q.Within, MaxSamples: q.Samples, Method: q.Method}
		if aopts.MaxSamples == 0 && aopts.TimeBudget == 0 {
			aopts.MaxSamples = 500
		}
		ch, err := h.TrajectoryOnline(ctx, r, q.UserCol, q.User, 0, aopts)
		if err != nil {
			return err
		}
		var last engine.TrajectorySnapshot
		for s := range ch {
			last = s
		}
		if last.Path != nil {
			fmt.Fprintf(w, "trajectory of %s: %d sampled points, %d segment(s)\n",
				q.User, last.Path.Samples, len(last.Path.Segments))
			fmt.Fprintln(w, viz.TrajectoryPlot(last.Path, 60, 20))
		}
		return nil

	case OpHotspots:
		kopts := engine.KDEOptions{Nx: q.GridX, Ny: q.GridY}
		aopts := engine.AnalyticOptions{TimeBudget: q.Within, MaxSamples: q.Samples, Method: q.Method}
		if aopts.MaxSamples == 0 && aopts.TimeBudget == 0 {
			aopts.MaxSamples = 2000
		}
		ch, err := h.KDEOnline(ctx, r, kopts, aopts)
		if err != nil {
			return err
		}
		var last engine.KDESnapshot
		for s := range ch {
			last = s
		}
		if last.Map != nil {
			spots := last.Map.Hotspots(q.K)
			fmt.Fprintf(w, "top %d density hotspots over %d samples:\n", len(spots), last.Map.Samples)
			for i, sp := range spots {
				sep := ""
				if sp.Separated {
					sep = "  [separated]"
				}
				fmt.Fprintf(w, "  #%d (%.4f, %.4f) density %.4g ± %.2g%s\n",
					i+1, sp.X, sp.Y, sp.Density, sp.HalfWidth, sep)
			}
		}
		return nil

	case OpCluster:
		aopts := engine.AnalyticOptions{TimeBudget: q.Within, MaxSamples: q.Samples, Method: q.Method}
		if aopts.MaxSamples == 0 && aopts.TimeBudget == 0 {
			aopts.MaxSamples = 1000
		}
		ch, err := h.ClusterOnline(ctx, r, q.K, aopts)
		if err != nil {
			return err
		}
		var last engine.ClusterSnapshot
		for s := range ch {
			last = s
		}
		if last.Clustering != nil {
			fmt.Fprintf(w, "clusters over %d samples (inertia %.4g):\n",
				last.Clustering.Samples, last.Clustering.Inertia)
			for i, c := range last.Clustering.Clusters {
				fmt.Fprintf(w, "  #%d center=(%.4f, %.4f) size=%d\n", i, c.Center.X(), c.Center.Y(), c.Size)
			}
		}
		return nil

	default:
		return fmt.Errorf("query: unsupported operation %d", q.Op)
	}
}

// contractOptions maps a contract-mode statement onto engine options; the
// contract itself (queryContract) carries the targets.
func contractOptions(q *Query) engine.Options {
	return engine.Options{
		Kind:       q.Agg,
		Attr:       q.Attr,
		QuantileP:  q.QuantileP,
		MaxSamples: q.Samples,
		Method:     q.Method,
		Where:      q.Where,
		Last:       q.Last,
	}
}

// windowRange narrows r to the statement's `LAST <dur>` window for paths
// that scope by range narrowing (analytics, multi-aggregate, GROUP BY,
// EXPLAIN). ok is false when the window misses the queried time span
// entirely — the result is then empty by construction, and the narrowed
// range would not pass the engine's Range.Valid checks.
func windowRange(h *engine.Handle, q *Query, r geo.Range) (geo.Range, bool) {
	if q.Last <= 0 {
		return r, true
	}
	wr := h.WindowRange(r, q.Last)
	return wr, wr.Valid()
}

// emptyWindow reports a window that covers no part of the queried time
// span (empty dataset, or the window slid past the TIME clause).
func emptyWindow(w io.Writer, q *Query) error {
	fmt.Fprintf(w, "empty result: LAST %s window covers no records in the queried range\n", q.Last)
	return nil
}

// queryContract extracts the statement's contract clauses.
func queryContract(q *Query) engine.Contract {
	return engine.Contract{RelError: q.RelError, Confidence: q.Confidence, Deadline: q.Within}
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
