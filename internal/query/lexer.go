// Package query implements STORM's keyword-based query language: a small
// declarative surface over the engine's online estimators and analytics
// (the paper's "query interface ... supports a keyword based query
// language with a query parser").
//
// Examples:
//
//	ESTIMATE AVG(temp) FROM mesowest WHERE REGION(-112.2, 40.3, -111.6, 40.9)
//	    AND TIME(0, 7776000) WITH CONFIDENCE 95% ERROR 1% WITHIN 500ms
//	COUNT FROM osm WHERE REGION(-125, 24, -66, 50)
//	KDE FROM tweets WHERE REGION(-112.2, 40.3, -111.6, 41.0) GRID 32x32 SAMPLES 2000
//	TERMS(text) FROM tweets WHERE REGION(-85.4, 32.7, -83.4, 34.7) AND TIME(864000, 1123200) TOP 10
//	TRAJECTORY(user, 'user-00042') FROM tweets SAMPLES 300
//	CLUSTER(5) FROM tweets WHERE REGION(-125, 24, -66, 50) SAMPLES 1000
//	SHOW DATASETS
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , % x < <= > >= =
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes a query string. Identifiers are case-insensitive (stored
// upper-case); quoted strings keep their case.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '%' || c == '=':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '<' || c == '>':
			// Attribute comparisons: two-char lookahead folds "<=" / ">="
			// into one token.
			text := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				text += "="
			}
			toks = append(toks, token{kind: tokPunct, text: text, pos: i})
			i += len(text)
		case c == '\'' || c == '"':
			quote := input[i]
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at position %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c == '-' || c == '+' || c == '.' || unicode.IsDigit(c):
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.' ||
				input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '-' || input[j] == '+') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			// Attach a trailing unit (ms, s, m, h) to the number so the
			// parser can handle durations like "500ms".
			unitStart := j
			for j < len(input) && unicode.IsLetter(rune(input[j])) {
				j++
			}
			text := input[i:unitStart]
			unit := strings.ToLower(input[unitStart:j])
			if unit != "" && unit != "ms" && unit != "s" && unit != "m" && unit != "h" && unit != "x" {
				return nil, fmt.Errorf("query: unknown unit %q at position %d", unit, unitStart)
			}
			if unit == "x" {
				// "32x32" grid shorthand: emit number, punct x; rewind.
				toks = append(toks, token{kind: tokNumber, text: text, pos: i})
				toks = append(toks, token{kind: tokPunct, text: "x", pos: unitStart})
				i = unitStart + 1
				continue
			}
			toks = append(toks, token{kind: tokNumber, text: text + unit, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) ||
				input[j] == '_' || input[j] == '-' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
