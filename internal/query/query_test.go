package query

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/stats"
)

func TestParseEstimate(t *testing.T) {
	q, err := Parse(`ESTIMATE AVG(temp) FROM mesowest WHERE REGION(-112.2, 40.3, -111.6, 40.9) AND TIME(0, 7776000) WITH CONFIDENCE 95% ERROR 1% WITHIN 500ms USING RSTREE`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpEstimate || q.Agg != estimator.Avg || q.Attr != "temp" || q.Dataset != "mesowest" {
		t.Fatalf("query = %+v", q)
	}
	if q.Region == nil || q.Region[0] != -112.2 || q.Region[3] != 40.9 {
		t.Errorf("region = %v", q.Region)
	}
	if q.Time == nil || q.Time[1] != 7776000 {
		t.Errorf("time = %v", q.Time)
	}
	if q.Confidence != 0.95 || q.RelError != 0.01 {
		t.Errorf("confidence=%v error=%v", q.Confidence, q.RelError)
	}
	if q.Within != 500*time.Millisecond {
		t.Errorf("within = %v", q.Within)
	}
	if q.Method != engine.MethodRSTree {
		t.Errorf("method = %v", q.Method)
	}
}

func TestParseCount(t *testing.T) {
	q, err := Parse(`COUNT FROM osm WHERE REGION(-125, 24, -66, 50)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpEstimate || q.Agg != estimator.Count || q.Dataset != "osm" {
		t.Fatalf("query = %+v", q)
	}
	// ESTIMATE COUNT also works.
	q2, err := Parse(`ESTIMATE COUNT FROM osm`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Agg != estimator.Count {
		t.Errorf("agg = %v", q2.Agg)
	}
}

func TestParseKDE(t *testing.T) {
	q, err := Parse(`KDE FROM tweets WHERE REGION(-112.2, 40.3, -111.6, 41.0) GRID 32x16 SAMPLES 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpKDE || q.GridX != 32 || q.GridY != 16 || q.Samples != 2000 {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseTerms(t *testing.T) {
	q, err := Parse(`TERMS(text) FROM tweets WHERE REGION(-85.4, 32.7, -83.4, 34.7) AND TIME(864000, 1123200) TOP 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpTerms || q.Attr != "text" || q.TopN != 10 {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseTrajectory(t *testing.T) {
	q, err := Parse(`TRAJECTORY(user, 'user-00042') FROM tweets SAMPLES 300`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpTrajectory || q.UserCol != "user" || q.User != "user-00042" || q.Samples != 300 {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseCluster(t *testing.T) {
	q, err := Parse(`CLUSTER(5) FROM tweets WHERE REGION(-125, 24, -66, 50) SAMPLES 1000 USING AUTO`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpCluster || q.K != 5 {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseNewAggregates(t *testing.T) {
	q, err := Parse(`ESTIMATE STDDEV(temp) FROM d SAMPLES 100`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != estimator.Stddev {
		t.Errorf("agg = %v", q.Agg)
	}
	q, err = Parse(`ESTIMATE VARIANCE(temp) FROM d`)
	if err != nil || q.Agg != estimator.Variance {
		t.Errorf("variance: %v, %v", q, err)
	}
	q, err = Parse(`ESTIMATE MEDIAN(temp) FROM d`)
	if err != nil || q.Agg != estimator.Median {
		t.Errorf("median: %v, %v", q, err)
	}
	q, err = Parse(`ESTIMATE QUANTILE(temp, 0.9) FROM d`)
	if err != nil || q.Agg != estimator.Quant || q.QuantileP != 0.9 {
		t.Errorf("quantile: %+v, %v", q, err)
	}
}

func TestParseMultiAggregate(t *testing.T) {
	q, err := Parse(`ESTIMATE AVG(temp), STDDEV(temp), MEDIAN(temp) FROM d SAMPLES 500`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MultiAggs) != 3 {
		t.Fatalf("multi aggs = %d", len(q.MultiAggs))
	}
	if q.MultiAggs[1].Kind != estimator.Stddev || q.MultiAggs[2].Kind != estimator.Median {
		t.Errorf("aggs = %+v", q.MultiAggs)
	}
	// Single aggregate leaves MultiAggs empty.
	q2, _ := Parse(`ESTIMATE AVG(temp) FROM d`)
	if len(q2.MultiAggs) != 0 {
		t.Errorf("single agg MultiAggs = %d", len(q2.MultiAggs))
	}
	// COUNT can't participate.
	if _, err := Parse(`ESTIMATE AVG(x), COUNT FROM d`); err == nil {
		t.Error("COUNT in multi list should fail")
	}
}

func TestExecuteMultiAggregate(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 16})
	ds := gen.Uniform(10000, 16, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := Execute(context.Background(), eng,
		`ESTIMATE AVG(value), STDDEV(value), QUANTILE(value, 0.9) FROM uniform WHERE REGION(20,20,60,60) SAMPLES 800`, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"joint estimates", "AVG", "STDDEV", "QUANTILE"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi output missing %q:\n%s", want, out)
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse(`ESTIMATE AVG(temp) FROM mesowest WHERE REGION(0,0,1,1) GROUP BY station SAMPLES 500`)
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy != "station" {
		t.Errorf("group by = %q", q.GroupBy)
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse(`EXPLAIN ESTIMATE AVG(x) FROM d WHERE REGION(0,0,1,1)`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || q.Agg != estimator.Avg {
		t.Errorf("explain query = %+v", q)
	}
	q, err = Parse(`EXPLAIN COUNT FROM d`)
	if err != nil || !q.Explain {
		t.Errorf("explain count: %+v, %v", q, err)
	}
}

func TestParseShow(t *testing.T) {
	q, err := Parse(`SHOW DATASETS`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpShow {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	if _, err := Parse(`estimate avg(temp) from d where region(0,0,1,1)`); err != nil {
		t.Errorf("lower-case query rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE x",
		"ESTIMATE MODE(x) FROM d",                           // unknown aggregate
		"ESTIMATE QUANTILE(x, 1.5) FROM d",                  // p out of range
		"ESTIMATE QUANTILE(x) FROM d",                       // missing p
		"EXPLAIN KDE FROM d",                                // EXPLAIN only for estimates
		"ESTIMATE AVG(x) FROM d GROUP BY",                   // missing group column
		"ESTIMATE AVG(x)",                                   // missing FROM
		"ESTIMATE AVG(x) FROM d WHERE BOGUS(1)",             // bad predicate
		"ESTIMATE AVG(x) FROM d WHERE REGION(1, 2, 3)",      // arity
		"ESTIMATE AVG(x) FROM d WHERE REGION(5, 0, 1, 1)",   // inverted
		"ESTIMATE AVG(x) FROM d WHERE TIME(10, 1)",          // inverted
		"ESTIMATE AVG(x) FROM d WITH CONFIDENCE 150%",       // bad confidence
		"ESTIMATE AVG(x) FROM d SAMPLES 0",                  // zero samples
		"ESTIMATE AVG(x) FROM d USING BTREE",                // unknown method
		"ESTIMATE AVG(x) FROM d trailing junk (",            // trailing
		"KDE FROM d GRID 0x4",                               // bad grid
		"TERMS() FROM d",                                    // missing attr
		"TRAJECTORY(user) FROM d",                           // missing user
		"CLUSTER(2.5) FROM d",                               // non-integer
		"ESTIMATE AVG(x) FROM d WHERE REGION(1, 2, 3, 'a')", // string coord
		"SHOW TABLES",
		"ESTIMATE AVG(x) FROM d WITHIN 5d", // unknown unit
		"ESTIMATE AVG(x) FROM d LAST 0s",   // empty window
		"ESTIMATE AVG(x) FROM d LAST",      // missing duration
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]time.Duration{
		"WITHIN 500ms": 500 * time.Millisecond,
		"WITHIN 2s":    2 * time.Second,
		"WITHIN 1m":    time.Minute,
		"WITHIN 1h":    time.Hour,
		"WITHIN 250":   250 * time.Millisecond, // bare number = ms
	}
	for clause, want := range cases {
		q, err := Parse("ESTIMATE AVG(x) FROM d " + clause)
		if err != nil {
			t.Errorf("%q: %v", clause, err)
			continue
		}
		if q.Within != want {
			t.Errorf("%q: got %v, want %v", clause, q.Within, want)
		}
	}
}

func TestParseWindow(t *testing.T) {
	cases := map[string]time.Duration{
		"LAST 5m":    5 * time.Minute,
		"LAST 300s":  5 * time.Minute,
		"LAST 1h":    time.Hour,
		"LAST 500ms": 500 * time.Millisecond,
		"LAST 250":   250 * time.Millisecond, // bare number = ms
	}
	for clause, want := range cases {
		q, err := Parse("ESTIMATE AVG(x) FROM d " + clause)
		if err != nil {
			t.Errorf("%q: %v", clause, err)
			continue
		}
		if q.Last != want {
			t.Errorf("%q: got %v, want %v", clause, q.Last, want)
		}
	}

	// LAST composes with WHERE, contract clauses and USING.
	q, err := Parse(`ESTIMATE AVG(x) FROM d WHERE REGION(0, 0, 1, 1) AND speed >= 30 LAST 5m ERROR 2% AT CONFIDENCE 95% WITHIN 500ms USING RSTREE`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Last != 5*time.Minute || !q.Contract || len(q.Where) != 1 || q.Region == nil {
		t.Fatalf("composed query = %+v", q)
	}
	if got := q.WindowClause(); got != "LAST 300000ms" {
		t.Errorf("WindowClause = %q", got)
	}
	if q2, _ := Parse("ESTIMATE AVG(x) FROM d"); q2.WindowClause() != "" {
		t.Error("unwindowed query should render an empty WindowClause")
	}
}

func TestQueryRange(t *testing.T) {
	q, _ := Parse("COUNT FROM d WHERE REGION(1, 2, 3, 4) AND TIME(5, 6)")
	r := q.Range()
	want := geo.Range{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4, MinT: 5, MaxT: 6}
	if r != want {
		t.Errorf("range = %+v", r)
	}
	q2, _ := Parse("COUNT FROM d")
	r2 := q2.Range()
	if !r2.Rect().Contains(geo.Vec{1e9, -1e9, 1e18}) {
		t.Error("unbounded query should cover everything")
	}
}

// End-to-end: execute statements against a real engine.
func TestExecuteEndToEnd(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3})
	ds := gen.Uniform(20000, 5, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	tweets, _ := gen.Tweets(gen.TweetsConfig{N: 20000, Users: 50, Seed: 7, Snowstorm: true})
	if _, err := eng.Register(tweets, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}

	run := func(stmt string) string {
		t.Helper()
		var buf bytes.Buffer
		if err := Execute(context.Background(), eng, stmt, &buf); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		return buf.String()
	}

	out := run(`ESTIMATE AVG(value) FROM uniform WHERE REGION(20, 20, 60, 60) SAMPLES 500`)
	if !strings.Contains(out, "AVG") || !strings.Contains(out, "[final]") {
		t.Errorf("estimate output:\n%s", out)
	}
	out = run(`COUNT FROM uniform WHERE REGION(20, 20, 60, 60)`)
	if !strings.Contains(out, "COUNT") || !strings.Contains(out, "exact") {
		t.Errorf("count output:\n%s", out)
	}
	out = run(`KDE FROM tweets WHERE REGION(-125, 24, -66, 50) GRID 24x12 SAMPLES 500`)
	if !strings.Contains(out, "kde: ") || !strings.Contains(out, "+") {
		t.Errorf("kde output:\n%s", out)
	}
	out = run(`TERMS(text) FROM tweets WHERE REGION(-85.4, 32.7, -83.4, 34.7) AND TIME(864000, 1123200) TOP 5 SAMPLES 300`)
	if !strings.Contains(out, "top terms") || !strings.Contains(out, "sentiment") {
		t.Errorf("terms output:\n%s", out)
	}
	users, _ := tweets.StringColumn("user")
	out = run(`TRAJECTORY(user, '` + users[0] + `') FROM tweets SAMPLES 100`)
	if !strings.Contains(out, "trajectory of") {
		t.Errorf("trajectory output:\n%s", out)
	}
	out = run(`CLUSTER(3) FROM tweets WHERE REGION(-125, 24, -66, 50) SAMPLES 400`)
	if !strings.Contains(out, "clusters over") {
		t.Errorf("cluster output:\n%s", out)
	}
	out = run(`SHOW DATASETS`)
	if !strings.Contains(out, "uniform") || !strings.Contains(out, "tweets") {
		t.Errorf("show output:\n%s", out)
	}
	out = run(`ESTIMATE MEDIAN(value) FROM uniform WHERE REGION(20, 20, 60, 60) SAMPLES 500`)
	if !strings.Contains(out, "MEDIAN") {
		t.Errorf("median output:\n%s", out)
	}
	out = run(`ESTIMATE STDDEV(value) FROM uniform WHERE REGION(20, 20, 60, 60) SAMPLES 500`)
	if !strings.Contains(out, "STDDEV") {
		t.Errorf("stddev output:\n%s", out)
	}
	out = run(`EXPLAIN ESTIMATE AVG(value) FROM uniform WHERE REGION(20, 20, 60, 60)`)
	if !strings.Contains(out, "sampler:") || !strings.Contains(out, "selectivity") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestParseAndExecuteHotspots(t *testing.T) {
	q, err := Parse(`HOTSPOTS(5) FROM tweets WHERE REGION(-125, 24, -66, 50) GRID 16x8 SAMPLES 400`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpHotspots || q.K != 5 || q.GridX != 16 {
		t.Fatalf("query = %+v", q)
	}
	if _, err := Parse(`HOTSPOTS(0) FROM d`); err == nil {
		t.Error("k=0 should be rejected")
	}

	eng := engine.New(engine.Config{Seed: 15})
	ds, _ := gen.Tweets(gen.TweetsConfig{N: 20000, Users: 50, Seed: 15})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Execute(context.Background(), eng,
		`HOTSPOTS(3) FROM tweets WHERE REGION(-125, 24, -66, 50) GRID 16x8 SAMPLES 500`, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "top 3 density hotspots") || !strings.Contains(out, "#1") {
		t.Errorf("hotspots output:\n%s", out)
	}
}

func TestParseInsertDelete(t *testing.T) {
	q, err := Parse(`INSERT INTO d VALUES (1, 2, 3), (4, 5, 6)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpInsert || len(q.Rows) != 2 || q.Rows[1] != [3]float64{4, 5, 6} {
		t.Fatalf("insert query = %+v", q)
	}
	q, err = Parse(`DELETE FROM d WHERE REGION(0, 0, 1, 1) AND TIME(5, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpDelete || q.Region == nil || q.Time == nil {
		t.Fatalf("delete query = %+v", q)
	}
	// DELETE without WHERE is refused.
	if _, err := Parse(`DELETE FROM d`); err == nil {
		t.Error("DELETE without WHERE should fail")
	}
	if _, err := Parse(`INSERT INTO d VALUES (1, 2)`); err == nil {
		t.Error("short tuple should fail")
	}
}

func TestExecuteUpdates(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 10})
	ds := gen.Uniform(5000, 10, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := eng.Register(ds, engine.IndexOptions{LSTree: true}); err != nil {
		t.Fatal(err)
	}
	run := func(stmt string) string {
		t.Helper()
		var buf bytes.Buffer
		if err := Execute(context.Background(), eng, stmt, &buf); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		return buf.String()
	}
	before := run(`COUNT FROM uniform WHERE REGION(200, 200, 201, 201)`)
	if !strings.Contains(before, "COUNT = 0") {
		t.Fatalf("expected empty probe region:\n%s", before)
	}
	out := run(`INSERT INTO uniform VALUES (200.5, 200.5, 50), (200.6, 200.6, 51)`)
	if !strings.Contains(out, "inserted 2") {
		t.Errorf("insert output: %s", out)
	}
	after := run(`COUNT FROM uniform WHERE REGION(200, 200, 201, 201)`)
	if !strings.Contains(after, "COUNT = 2") {
		t.Errorf("count after insert:\n%s", after)
	}
	out = run(`DELETE FROM uniform WHERE REGION(200, 200, 201, 201)`)
	if !strings.Contains(out, "deleted 2") {
		t.Errorf("delete output: %s", out)
	}
	final := run(`COUNT FROM uniform WHERE REGION(200, 200, 201, 201)`)
	if !strings.Contains(final, "COUNT = 0") {
		t.Errorf("count after delete:\n%s", final)
	}
}

func TestExecuteGroupBy(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 9})
	ds := gen.Stations(gen.StationsConfig{Stations: 20, ReadingsPerStation: 50, Seed: 9})
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := Execute(context.Background(), eng,
		`ESTIMATE AVG(temp) FROM mesowest GROUP BY station SAMPLES 600`, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "groups over") || !strings.Contains(out, "st-") {
		t.Errorf("group-by output:\n%s", out)
	}
}

func TestDropDataset(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 17})
	ds := gen.Uniform(500, 17, geo.SpatialRange(0, 0, 1, 1))
	if _, err := eng.Register(ds, engine.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Execute(context.Background(), eng, `DROP DATASET uniform`, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped dataset uniform") {
		t.Errorf("output: %s", buf.String())
	}
	if err := Execute(context.Background(), eng, `COUNT FROM uniform`, &buf); err == nil {
		t.Error("dropped dataset should be unknown")
	}
	if err := Execute(context.Background(), eng, `DROP DATASET uniform`, &buf); err == nil {
		t.Error("double drop should error")
	}
	if _, err := Parse(`DROP TABLE x`); err == nil {
		t.Error("DROP TABLE should be rejected")
	}
}

// TestParseNeverPanics feeds random garbage and mutated statements to the
// parser: every input must return cleanly (a *Query or an error), never
// panic — the REPL and HTTP server pass user input straight in.
func TestParseNeverPanics(t *testing.T) {
	rng := stats.NewRNG(99)
	alphabet := []byte("ESTIMATE AVG(x),%'\"0123456789.()WHEREREGIONTIMEfromds \t\nms")
	valid := []string{
		"ESTIMATE AVG(temp) FROM d WHERE REGION(1,2,3,4) AND TIME(5,6) WITH CONFIDENCE 95% ERROR 1% WITHIN 500ms SAMPLES 10 USING rstree",
		"HOTSPOTS(3) FROM d GRID 8x8",
		"INSERT INTO d VALUES (1,2,3)",
		"DELETE FROM d WHERE REGION(0,0,1,1)",
	}
	check := func(input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", input, r)
			}
		}()
		Parse(input)
	}
	// Pure random strings.
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		check(string(b))
	}
	// Mutations of valid statements (truncations, swaps, deletions).
	for i := 0; i < 3000; i++ {
		s := []byte(valid[rng.Intn(len(valid))])
		switch rng.Intn(3) {
		case 0:
			s = s[:rng.Intn(len(s)+1)]
		case 1:
			if len(s) > 1 {
				a, b := rng.Intn(len(s)), rng.Intn(len(s))
				s[a], s[b] = s[b], s[a]
			}
		case 2:
			if len(s) > 0 {
				p := rng.Intn(len(s))
				s = append(s[:p], s[p+1:]...)
			}
		}
		check(string(s))
	}
}

func TestExecuteErrors(t *testing.T) {
	eng := engine.New(engine.Config{Seed: 3})
	var buf bytes.Buffer
	if err := Execute(context.Background(), eng, "COUNT FROM missing", &buf); err == nil {
		t.Error("unknown dataset should error")
	}
	if err := Execute(context.Background(), eng, "garbage", &buf); err == nil {
		t.Error("parse error should surface")
	}
}

func TestParseWhereComparisons(t *testing.T) {
	q, err := Parse("ESTIMATE AVG(temp) FROM ds WHERE REGION(-1, -1, 1, 1) AND speed >= 30 AND speed < 80 AND BETWEEN(noise, 0.1, 0.9) AND depth = 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Region == nil {
		t.Fatal("REGION lost alongside attribute comparisons")
	}
	if len(q.Where) != 4 {
		t.Fatalf("want 4 predicate terms, got %d: %+v", len(q.Where), q.Where)
	}
	p := pred.Normalize(q.Where)
	want := "depth = 5 AND noise >= 0.1 AND noise <= 0.9 AND speed >= 30 AND speed < 80"
	if got := p.String(); got != want {
		t.Fatalf("canonical predicate = %q, want %q", got, want)
	}
}

func TestParseWhereErrors(t *testing.T) {
	for _, bad := range []string{
		"COUNT FROM ds WHERE speed",
		"COUNT FROM ds WHERE speed >=",
		"COUNT FROM ds WHERE speed >= fast",
		"COUNT FROM ds WHERE BETWEEN(speed, 1)",
		"COUNT FROM ds WHERE 3 >= speed",
		"DELETE FROM ds WHERE speed >= 3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}
