package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"storm/internal/engine"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/pred"
)

// Op is the top-level operation of a parsed query.
type Op int

// Supported operations.
const (
	OpEstimate Op = iota
	OpKDE
	OpTerms
	OpTrajectory
	OpCluster
	OpShow
	OpInsert
	OpDelete
	OpHotspots
	OpDrop
)

// Query is the parsed AST of one STORM statement.
type Query struct {
	Op      Op
	Agg     estimator.Kind // OpEstimate
	Attr    string         // aggregate attribute / terms text column
	Dataset string
	// Explain requests the optimizer plan instead of execution.
	Explain bool
	// QuantileP is the p of QUANTILE(attr, p).
	QuantileP float64
	// GroupBy names a string column for per-group aggregation.
	GroupBy string
	// Rows holds (x, y, t) tuples for OpInsert.
	Rows [][3]float64
	// MultiAggs holds all aggregates of a multi-aggregate ESTIMATE
	// (len >= 2); Agg/Attr/QuantileP mirror the first entry.
	MultiAggs []engine.AggSpec
	// Region is (minLon, minLat, maxLon, maxLat); nil means everywhere.
	Region *[4]float64
	// Time is (minT, maxT); nil means all of time.
	Time *[2]float64
	// Where holds the WHERE clause's attribute predicates (comparisons
	// like "speed >= 30" and the BETWEEN(attr, lo, hi) sugar), as parsed;
	// the engine normalizes them. Attributes named REGION, TIME or
	// BETWEEN are shadowed by those keywords.
	Where []pred.Term
	// WITH clauses.
	Confidence float64       // 0 = default
	RelError   float64       // 0 = none
	Within     time.Duration // 0 = none
	Samples    int           // 0 = none
	Method     engine.Method
	// Last scopes the query to the trailing window "LAST <dur>" of the
	// stream: records with time in [watermark-dur, watermark]. 0 = no
	// window. Composes with WHERE (intersection) and contract clauses
	// (the contract budget is sized against the windowed population).
	Last time.Duration
	// Contract marks contract mode — the "ERROR <pct> AT CONFIDENCE
	// <pct>" form was used. The statement then returns ONE answer with
	// its guarantee verdict (engine.EstimateContract) instead of a
	// snapshot stream; RelError/Confidence are the contract's targets and
	// Within its deadline.
	Contract bool
	// Task-specific fields.
	GridX, GridY int    // KDE
	TopN         int    // TERMS
	K            int    // CLUSTER
	UserCol      string // TRAJECTORY
	User         string // TRAJECTORY
}

// Range converts the query's region/time into an engine range.
func (q *Query) Range() geo.Range {
	r := geo.UniverseRange()
	if q.Region != nil {
		r.MinX, r.MinY, r.MaxX, r.MaxY = q.Region[0], q.Region[1], q.Region[2], q.Region[3]
	}
	if q.Time != nil {
		r.MinT, r.MaxT = q.Time[0], q.Time[1]
	}
	return r
}

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one STORM statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %s after statement", tok)
	}
	return q, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) keyword() string {
	t := p.peek()
	if t.kind != tokIdent {
		return ""
	}
	return strings.ToUpper(t.text)
}

func (p *parser) expectKeyword(kw string) error {
	if p.keyword() != kw {
		return fmt.Errorf("query: expected %s, got %s", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("query: expected %q, got %s", s, t)
	}
	p.next()
	return nil
}

func (p *parser) number() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected a number, got %s", t)
	}
	p.next()
	v, err := strconv.ParseFloat(strings.TrimRight(t.text, "ms"), 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) integer() (int, error) {
	v, err := p.number()
	if err != nil {
		return 0, err
	}
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("query: expected an integer, got %v", v)
	}
	return int(v), nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: expected an identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (*Query, error) {
	switch p.keyword() {
	case "EXPLAIN":
		p.next()
		q, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if q.Op != OpEstimate {
			return nil, fmt.Errorf("query: EXPLAIN applies to ESTIMATE/COUNT statements")
		}
		q.Explain = true
		return q, nil
	case "ESTIMATE", "SELECT":
		// SELECT is an alias for ESTIMATE: dashboard clients speak SQL.
		p.next()
		return p.parseEstimate()
	case "COUNT":
		p.next()
		q := &Query{Op: OpEstimate, Agg: estimator.Count}
		return q, p.parseFromWhereWith(q)
	case "KDE":
		p.next()
		q := &Query{Op: OpKDE}
		return q, p.parseFromWhereWith(q)
	case "TERMS":
		p.next()
		q := &Query{Op: OpTerms}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Attr = attr
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, p.parseFromWhereWith(q)
	case "TRAJECTORY":
		p.next()
		q := &Query{Op: OpTrajectory}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.UserCol = col
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokString && t.kind != tokIdent {
			return nil, fmt.Errorf("query: expected a user name, got %s", t)
		}
		q.User = t.text
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, p.parseFromWhereWith(q)
	case "HOTSPOTS":
		p.next()
		q := &Query{Op: OpHotspots}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		k, err := p.integer()
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, fmt.Errorf("query: HOTSPOTS count must be positive")
		}
		q.K = k
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, p.parseFromWhereWith(q)
	case "CLUSTER":
		p.next()
		q := &Query{Op: OpCluster}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		k, err := p.integer()
		if err != nil {
			return nil, err
		}
		q.K = k
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, p.parseFromWhereWith(q)
	case "SHOW":
		p.next()
		if err := p.expectKeyword("DATASETS"); err != nil {
			return nil, err
		}
		return &Query{Op: OpShow}, nil
	case "DROP":
		p.next()
		if err := p.expectKeyword("DATASET"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Query{Op: OpDrop, Dataset: name}, nil
	case "INSERT":
		p.next()
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VALUES"); err != nil {
			return nil, err
		}
		q := &Query{Op: OpInsert, Dataset: name}
		for {
			vals, err := p.numberList(3)
			if err != nil {
				return nil, err
			}
			q.Rows = append(q.Rows, [3]float64{vals[0], vals[1], vals[2]})
			if t := p.peek(); t.kind == tokPunct && t.text == "," {
				p.next()
				continue
			}
			break
		}
		return q, nil
	case "DELETE":
		p.next()
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		q := &Query{Op: OpDelete, Dataset: name}
		if p.keyword() != "WHERE" {
			return nil, fmt.Errorf("query: DELETE requires a WHERE clause (refusing to delete everything implicitly)")
		}
		p.next()
		for {
			switch p.keyword() {
			case "REGION":
				p.next()
				vals, err := p.numberList(4)
				if err != nil {
					return nil, err
				}
				var r [4]float64
				copy(r[:], vals)
				if r[0] > r[2] || r[1] > r[3] {
					return nil, fmt.Errorf("query: REGION min exceeds max")
				}
				q.Region = &r
			case "TIME":
				p.next()
				vals, err := p.numberList(2)
				if err != nil {
					return nil, err
				}
				if vals[0] > vals[1] {
					return nil, fmt.Errorf("query: TIME min exceeds max")
				}
				tt := [2]float64{vals[0], vals[1]}
				q.Time = &tt
			default:
				return nil, fmt.Errorf("query: expected REGION or TIME in WHERE, got %s", p.peek())
			}
			if p.keyword() != "AND" {
				break
			}
			p.next()
		}
		return q, nil
	default:
		return nil, fmt.Errorf("query: expected a statement keyword (SELECT, ESTIMATE, COUNT, KDE, HOTSPOTS, TERMS, TRAJECTORY, CLUSTER, INSERT, DELETE, SHOW), got %s", p.peek())
	}
}

func (p *parser) parseEstimate() (*Query, error) {
	q := &Query{Op: OpEstimate}
	first, err := p.parseOneAgg()
	if err != nil {
		return nil, err
	}
	q.Agg, q.Attr, q.QuantileP = first.Kind, first.Attr, first.QuantileP

	// A comma introduces a multi-aggregate query: every statistic is
	// computed from one shared sample stream.
	if t := p.peek(); t.kind == tokPunct && t.text == "," {
		q.MultiAggs = append(q.MultiAggs, first)
		for p.peek().kind == tokPunct && p.peek().text == "," {
			p.next()
			spec, err := p.parseOneAgg()
			if err != nil {
				return nil, err
			}
			if spec.Kind == estimator.Count {
				return nil, fmt.Errorf("query: COUNT cannot join a multi-aggregate list (it is exact; use a separate COUNT)")
			}
			q.MultiAggs = append(q.MultiAggs, spec)
		}
		if q.Agg == estimator.Count {
			return nil, fmt.Errorf("query: COUNT cannot join a multi-aggregate list")
		}
	}
	return q, p.parseFromWhereWith(q)
}

// parseOneAgg parses one "KIND(attr[, p])" aggregate.
func (p *parser) parseOneAgg() (engine.AggSpec, error) {
	var spec engine.AggSpec
	switch p.keyword() {
	case "AVG":
		spec.Kind = estimator.Avg
	case "SUM":
		spec.Kind = estimator.Sum
	case "COUNT":
		spec.Kind = estimator.Count
	case "MIN":
		spec.Kind = estimator.Min
	case "MAX":
		spec.Kind = estimator.Max
	case "VARIANCE", "VAR":
		spec.Kind = estimator.Variance
	case "STDDEV":
		spec.Kind = estimator.Stddev
	case "MEDIAN":
		spec.Kind = estimator.Median
	case "QUANTILE":
		spec.Kind = estimator.Quant
	default:
		return spec, fmt.Errorf("query: unknown aggregate %s", p.peek())
	}
	p.next()
	if spec.Kind == estimator.Count {
		return spec, nil
	}
	if err := p.expectPunct("("); err != nil {
		return spec, err
	}
	attr, err := p.ident()
	if err != nil {
		return spec, err
	}
	spec.Attr = attr
	if spec.Kind == estimator.Quant {
		if err := p.expectPunct(","); err != nil {
			return spec, err
		}
		pv, err := p.number()
		if err != nil {
			return spec, err
		}
		if pv <= 0 || pv >= 1 {
			return spec, fmt.Errorf("query: quantile p %v outside (0, 1)", pv)
		}
		spec.QuantileP = pv
	}
	return spec, p.expectPunct(")")
}

// parseFromWhereWith parses the common FROM / WHERE / trailing clauses.
func (p *parser) parseFromWhereWith(q *Query) error {
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	q.Dataset = name

	if p.keyword() == "WHERE" {
		p.next()
		for {
			switch p.keyword() {
			case "REGION":
				p.next()
				vals, err := p.numberList(4)
				if err != nil {
					return err
				}
				var r [4]float64
				copy(r[:], vals)
				if r[0] > r[2] || r[1] > r[3] {
					return fmt.Errorf("query: REGION min exceeds max")
				}
				q.Region = &r
			case "TIME":
				p.next()
				vals, err := p.numberList(2)
				if err != nil {
					return err
				}
				if vals[0] > vals[1] {
					return fmt.Errorf("query: TIME min exceeds max")
				}
				t := [2]float64{vals[0], vals[1]}
				q.Time = &t
			case "BETWEEN":
				// BETWEEN(attr, lo, hi) is closed-interval sugar for
				// "attr >= lo AND attr <= hi" (parse-time only: it never
				// appears in canonical output).
				p.next()
				if err := p.expectPunct("("); err != nil {
					return err
				}
				attr, err := p.ident()
				if err != nil {
					return err
				}
				if err := p.expectPunct(","); err != nil {
					return err
				}
				lo, err := p.number()
				if err != nil {
					return err
				}
				if err := p.expectPunct(","); err != nil {
					return err
				}
				hi, err := p.number()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.Where = append(q.Where, pred.Term{Attr: attr, Lo: lo, Hi: hi})
			default:
				term, err := p.parseComparison()
				if err != nil {
					return err
				}
				q.Where = append(q.Where, term)
			}
			if p.keyword() != "AND" {
				break
			}
			p.next()
		}
	}

	for {
		switch p.keyword() {
		case "WITH":
			p.next() // WITH introduces CONFIDENCE/ERROR; handled below
		case "CONFIDENCE":
			p.next()
			v, err := p.number()
			if err != nil {
				return err
			}
			if p.peek().kind == tokPunct && p.peek().text == "%" {
				p.next()
				v /= 100
			}
			if v <= 0 || v >= 1 {
				return fmt.Errorf("query: confidence %v outside (0, 1)", v)
			}
			q.Confidence = v
		case "ERROR":
			p.next()
			v, err := p.number()
			if err != nil {
				return err
			}
			if p.peek().kind == tokPunct && p.peek().text == "%" {
				p.next()
				v /= 100
			}
			if v <= 0 {
				return fmt.Errorf("query: error target must be positive")
			}
			q.RelError = v
			// "ERROR <pct> AT CONFIDENCE <pct>" is the contract form: the
			// statement becomes a one-answer contract query instead of a
			// snapshot stream (a bare ERROR clause remains the stream
			// path's stopping target).
			if p.keyword() == "AT" {
				p.next()
				if err := p.expectKeyword("CONFIDENCE"); err != nil {
					return err
				}
				c, err := p.number()
				if err != nil {
					return err
				}
				if p.peek().kind == tokPunct && p.peek().text == "%" {
					p.next()
					c /= 100
				}
				if c <= 0 || c >= 1 {
					return fmt.Errorf("query: confidence %v outside (0, 1)", c)
				}
				q.Confidence = c
				q.Contract = true
			}
		case "WITHIN":
			p.next()
			d, err := p.duration()
			if err != nil {
				return err
			}
			q.Within = d
		case "LAST":
			p.next()
			d, err := p.duration()
			if err != nil {
				return err
			}
			if d <= 0 {
				return fmt.Errorf("query: LAST duration must be positive")
			}
			q.Last = d
		case "SAMPLES":
			p.next()
			n, err := p.integer()
			if err != nil {
				return err
			}
			if n < 1 {
				return fmt.Errorf("query: SAMPLES must be positive")
			}
			q.Samples = n
		case "USING":
			p.next()
			m, err := p.ident()
			if err != nil {
				return err
			}
			switch strings.ToUpper(m) {
			case "RSTREE", "RS-TREE":
				q.Method = engine.MethodRSTree
			case "LSTREE", "LS-TREE":
				q.Method = engine.MethodLSTree
			case "RANDOMPATH":
				q.Method = engine.MethodRandomPath
			case "QUERYFIRST", "RANGEREPORT":
				q.Method = engine.MethodQueryFirst
			case "SAMPLEFIRST":
				q.Method = engine.MethodSampleFirst
			case "DISTRIBUTED":
				q.Method = engine.MethodDistributed
			case "AUTO":
				q.Method = engine.Auto
			default:
				return fmt.Errorf("query: unknown method %q", m)
			}
		case "GRID":
			p.next()
			nx, err := p.integer()
			if err != nil {
				return err
			}
			if err := p.expectPunct("x"); err != nil {
				return err
			}
			ny, err := p.integer()
			if err != nil {
				return err
			}
			if nx < 1 || ny < 1 {
				return fmt.Errorf("query: GRID dimensions must be positive")
			}
			q.GridX, q.GridY = nx, ny
		case "TOP":
			p.next()
			n, err := p.integer()
			if err != nil {
				return err
			}
			if n < 1 {
				return fmt.Errorf("query: TOP must be positive")
			}
			q.TopN = n
		case "GROUP":
			p.next()
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			col, err := p.ident()
			if err != nil {
				return err
			}
			q.GroupBy = col
		case "":
			return nil
		default:
			return fmt.Errorf("query: unexpected clause %s", p.peek())
		}
	}
}

// parseComparison parses one "attr op number" attribute constraint of a
// WHERE clause into a predicate term; op is one of < <= > >= =.
func (p *parser) parseComparison() (pred.Term, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return pred.Term{}, fmt.Errorf("query: expected REGION, TIME, BETWEEN or an attribute comparison in WHERE, got %s", t)
	}
	p.next()
	attr := t.text
	op := p.peek()
	if op.kind != tokPunct || (op.text != "<" && op.text != "<=" && op.text != ">" && op.text != ">=" && op.text != "=") {
		return pred.Term{}, fmt.Errorf("query: expected a comparison operator after %q, got %s", attr, op)
	}
	p.next()
	v, err := p.number()
	if err != nil {
		return pred.Term{}, err
	}
	term := pred.Term{Attr: attr, Lo: math.Inf(-1), Hi: math.Inf(1)}
	switch op.text {
	case "<":
		term.Hi, term.HiOpen = v, true
	case "<=":
		term.Hi = v
	case ">":
		term.Lo, term.LoOpen = v, true
	case ">=":
		term.Lo = v
	case "=":
		term.Lo, term.Hi = v, v
	}
	return term, nil
}

// numberList parses "(" n, n, ... ")" with exactly count numbers.
func (p *parser) numberList(count int) ([]float64, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	out := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, p.expectPunct(")")
}

// duration parses a number token with an optional ms/s/m/h unit suffix.
func (p *parser) duration() (time.Duration, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected a duration, got %s", t)
	}
	p.next()
	text := t.text
	unit := time.Millisecond
	switch {
	case strings.HasSuffix(text, "ms"):
		text = strings.TrimSuffix(text, "ms")
	case strings.HasSuffix(text, "s"):
		text = strings.TrimSuffix(text, "s")
		unit = time.Second
	case strings.HasSuffix(text, "m"):
		text = strings.TrimSuffix(text, "m")
		unit = time.Minute
	case strings.HasSuffix(text, "h"):
		text = strings.TrimSuffix(text, "h")
		unit = time.Hour
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("query: bad duration %q", t.text)
	}
	ns := v * float64(unit)
	if ns >= maxDurationNS {
		return 0, fmt.Errorf("query: duration %q too large", t.text)
	}
	// Round, don't truncate: ContractClause renders durations as decimal
	// milliseconds and rounding makes parse∘render the identity (the
	// decimal's float error is under half a nanosecond below the cap).
	return time.Duration(math.Round(ns)), nil
}

// maxDurationNS caps parsed durations at 2^50 nanoseconds (~13 days) —
// beyond any meaningful query budget, and the range where decimal
// millisecond rendering round-trips exactly: below the cap the combined
// division and multiplication float error stays under 0.2 ns, so the
// rounded re-parse reproduces the nanosecond count.
const maxDurationNS = 1 << 50

// ContractClause renders the query's contract in the canonical form the
// parser round-trips: "ERROR <e> AT CONFIDENCE <c>[ WITHIN <ms>ms]" with
// fractional (not percent) targets. Empty for non-contract queries.
// Parsing the rendered clause reproduces RelError, Confidence and Within
// exactly — the fixpoint FuzzParseContract checks.
func (q *Query) ContractClause() string {
	if !q.Contract {
		return ""
	}
	var b strings.Builder
	b.WriteString("ERROR ")
	b.WriteString(strconv.FormatFloat(q.RelError, 'f', -1, 64))
	b.WriteString(" AT CONFIDENCE ")
	b.WriteString(strconv.FormatFloat(q.Confidence, 'f', -1, 64))
	if q.Within > 0 {
		b.WriteString(" WITHIN ")
		b.WriteString(strconv.FormatFloat(float64(q.Within)/float64(time.Millisecond), 'f', -1, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// WindowClause renders the query's sliding window in the canonical form
// the parser round-trips: "LAST <ms>ms" with a decimal millisecond count.
// Empty for unwindowed queries. Parsing the rendered clause reproduces
// Last exactly (same rounding argument as ContractClause) — the fixpoint
// FuzzParseWindow checks.
func (q *Query) WindowClause() string {
	if q.Last <= 0 {
		return ""
	}
	return "LAST " + strconv.FormatFloat(float64(q.Last)/float64(time.Millisecond), 'f', -1, 64) + "ms"
}
