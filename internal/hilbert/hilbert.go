// Package hilbert implements Hilbert space-filling curve encoding and
// decoding in two and three dimensions. STORM's RS-tree is built over a
// Hilbert R-tree: points are sorted by the Hilbert value of their quantized
// coordinates, which gives leaves with compact, low-overlap MBRs and a
// total order that makes insertion placement deterministic.
//
// The implementation follows the compact algorithm of Skilling ("Programming
// the Hilbert curve", AIP 2004): transpose-form conversion between Hilbert
// index and axis coordinates, generalized to any dimension and order.
package hilbert

import "fmt"

// Curve maps between d-dimensional integer coordinates in [0, 2^order) and
// positions along a Hilbert curve of the given order.
type Curve struct {
	dims  int
	order uint
}

// New returns a Hilbert curve over dims dimensions (2 or 3) with the given
// order (bits per dimension, 1..21 so 3*order fits into 63 bits).
func New(dims int, order uint) (*Curve, error) {
	if dims != 2 && dims != 3 {
		return nil, fmt.Errorf("hilbert: unsupported dimension %d (want 2 or 3)", dims)
	}
	if order < 1 || order > 21 {
		return nil, fmt.Errorf("hilbert: order %d out of range [1, 21]", order)
	}
	return &Curve{dims: dims, order: order}, nil
}

// MustNew is New for parameters known to be valid at compile time.
func MustNew(dims int, order uint) *Curve {
	c, err := New(dims, order)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c *Curve) Dims() int { return c.dims }

// Order returns the number of bits per dimension.
func (c *Curve) Order() uint { return c.order }

// Max returns the exclusive upper bound for each coordinate, 2^order.
func (c *Curve) Max() uint64 { return 1 << c.order }

// Encode returns the Hilbert index of the given coordinates. Each
// coordinate must lie in [0, 2^order); out-of-range coordinates are clamped
// rather than rejected because quantization at the callers can produce the
// boundary value.
func (c *Curve) Encode(coords ...uint64) uint64 {
	if len(coords) != c.dims {
		panic(fmt.Sprintf("hilbert: got %d coords, curve has %d dims", len(coords), c.dims))
	}
	x := make([]uint64, c.dims)
	maxv := c.Max() - 1
	for i, v := range coords {
		if v > maxv {
			v = maxv
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.transposeToIndex(x)
}

// Decode returns the coordinates of the given Hilbert index.
func (c *Curve) Decode(h uint64) []uint64 {
	x := c.indexToTranspose(h)
	c.transposeToAxes(x)
	return x
}

// axesToTranspose converts coordinates in place into the "transpose" form
// of the Hilbert index (Skilling's algorithm).
func (c *Curve) axesToTranspose(x []uint64) {
	n := len(x)
	m := uint64(1) << (c.order - 1)

	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts transpose form in place back into coordinates.
func (c *Curve) transposeToAxes(x []uint64) {
	n := len(x)
	m := uint64(2) << (c.order - 1)

	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// transposeToIndex interleaves the transpose-form words into a single
// Hilbert index: bit b of word i becomes bit (b*n + (n-1-i)) of the index.
func (c *Curve) transposeToIndex(x []uint64) uint64 {
	n := len(x)
	var h uint64
	for b := int(c.order) - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			h = (h << 1) | ((x[i] >> uint(b)) & 1)
		}
	}
	return h
}

// indexToTranspose splits a Hilbert index into transpose-form words,
// inverting transposeToIndex.
func (c *Curve) indexToTranspose(h uint64) []uint64 {
	n := c.dims
	x := make([]uint64, n)
	bits := int(c.order) * n
	for b := 0; b < bits; b++ {
		// Bit (bits-1-b) of h is the next most significant interleaved bit.
		bit := (h >> uint(bits-1-b)) & 1
		i := b % n
		x[i] = (x[i] << 1) | bit
	}
	return x
}

// Quantizer maps floating-point coordinates in a bounding box onto the
// integer lattice of a Hilbert curve.
type Quantizer struct {
	curve      *Curve
	min, scale []float64
}

// NewQuantizer returns a quantizer for the given per-dimension bounds.
// Degenerate dimensions (lo == hi) map every value to lattice cell zero.
func NewQuantizer(curve *Curve, lo, hi []float64) (*Quantizer, error) {
	if len(lo) != curve.dims || len(hi) != curve.dims {
		return nil, fmt.Errorf("hilbert: bounds dimension mismatch")
	}
	q := &Quantizer{
		curve: curve,
		min:   make([]float64, curve.dims),
		scale: make([]float64, curve.dims),
	}
	cells := float64(curve.Max())
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, fmt.Errorf("hilbert: bound %d inverted (%v > %v)", i, lo[i], hi[i])
		}
		q.min[i] = lo[i]
		if hi[i] > lo[i] {
			q.scale[i] = cells / (hi[i] - lo[i])
		}
	}
	return q, nil
}

// Value3 is Value specialized for three dimensions — the per-record hot
// path of streaming inserts. It performs no allocation and unrolls the
// transpose loops over the three axis words; the result is bit-identical
// to Value(x, y, z). Panics if the curve is not three-dimensional.
func (q *Quantizer) Value3(xf, yf, zf float64) uint64 {
	if q.curve.dims != 3 {
		panic("hilbert: Value3 on a non-3D curve")
	}
	cells := q.curve.Max() - 1
	quant := func(v float64, i int) uint64 {
		c := (v - q.min[i]) * q.scale[i]
		switch {
		case c <= 0:
			return 0
		case uint64(c) >= cells:
			return cells
		default:
			return uint64(c)
		}
	}
	x0, x1, x2 := quant(xf, 0), quant(yf, 1), quant(zf, 2)

	// axesToTranspose, dims unrolled (see the generic version for the
	// algorithm; this is the same Skilling transform).
	m := uint64(1) << (q.curve.order - 1)
	for qb := m; qb > 1; qb >>= 1 {
		p := qb - 1
		if x0&qb != 0 {
			x0 ^= p
		}
		if x1&qb != 0 {
			x0 ^= p
		} else {
			t := (x0 ^ x1) & p
			x0 ^= t
			x1 ^= t
		}
		if x2&qb != 0 {
			x0 ^= p
		} else {
			t := (x0 ^ x2) & p
			x0 ^= t
			x2 ^= t
		}
	}
	x1 ^= x0
	x2 ^= x1
	var t uint64
	for qb := m; qb > 1; qb >>= 1 {
		if x2&qb != 0 {
			t ^= qb - 1
		}
	}
	x0 ^= t
	x1 ^= t
	x2 ^= t

	// transposeToIndex, dims unrolled.
	var h uint64
	for b := int(q.curve.order) - 1; b >= 0; b-- {
		h = h<<3 | (x0>>uint(b)&1)<<2 | (x1>>uint(b)&1)<<1 | (x2 >> uint(b) & 1)
	}
	return h
}

// Value returns the Hilbert index of the given floating-point coordinates,
// clamped into the quantizer's bounding box.
func (q *Quantizer) Value(coords ...float64) uint64 {
	if len(coords) != q.curve.dims {
		panic("hilbert: coordinate dimension mismatch")
	}
	cells := q.curve.Max() - 1
	ints := make([]uint64, len(coords))
	for i, v := range coords {
		c := (v - q.min[i]) * q.scale[i]
		switch {
		case c <= 0:
			ints[i] = 0
		case uint64(c) >= cells:
			ints[i] = cells
		default:
			ints[i] = uint64(c)
		}
	}
	return q.curve.Encode(ints...)
}
