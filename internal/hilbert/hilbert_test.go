package hilbert

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 8); err == nil {
		t.Error("dims=4 should be rejected")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("order=0 should be rejected")
	}
	if _, err := New(3, 22); err == nil {
		t.Error("order=22 should be rejected (3*22 > 63)")
	}
	if _, err := New(2, 16); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// TestEncodeBijective2D checks that every cell of a small 2-D curve maps to
// a distinct index and decodes back.
func TestEncodeBijective2D(t *testing.T) {
	c := MustNew(2, 4) // 16x16 grid
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			h := c.Encode(x, y)
			if h >= 256 {
				t.Fatalf("index %d out of range", h)
			}
			if seen[h] {
				t.Fatalf("duplicate index %d at (%d,%d)", h, x, y)
			}
			seen[h] = true
			d := c.Decode(h)
			if d[0] != x || d[1] != y {
				t.Fatalf("Decode(Encode(%d,%d)) = %v", x, y, d)
			}
		}
	}
}

// TestEncodeBijective3D does the same over a small 3-D curve.
func TestEncodeBijective3D(t *testing.T) {
	c := MustNew(3, 3) // 8x8x8
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			for z := uint64(0); z < 8; z++ {
				h := c.Encode(x, y, z)
				if h >= 512 {
					t.Fatalf("index %d out of range", h)
				}
				if seen[h] {
					t.Fatalf("duplicate index %d", h)
				}
				seen[h] = true
				d := c.Decode(h)
				if d[0] != x || d[1] != y || d[2] != z {
					t.Fatalf("roundtrip failed at (%d,%d,%d): %v", x, y, z, d)
				}
			}
		}
	}
}

// TestCurveContinuity verifies the defining Hilbert property: consecutive
// indices map to cells at L1 distance exactly 1.
func TestCurveContinuity(t *testing.T) {
	for _, dims := range []int{2, 3} {
		c := MustNew(dims, 3)
		total := uint64(1) << (3 * uint(dims))
		prev := c.Decode(0)
		for h := uint64(1); h < total; h++ {
			cur := c.Decode(h)
			dist := uint64(0)
			for i := range cur {
				if cur[i] > prev[i] {
					dist += cur[i] - prev[i]
				} else {
					dist += prev[i] - cur[i]
				}
			}
			if dist != 1 {
				t.Fatalf("dims=%d: cells for h=%d and h=%d are at distance %d", dims, h-1, h, dist)
			}
			prev = cur
		}
	}
}

// Property: round trip holds for random coordinates at full order.
func TestRoundTripProperty(t *testing.T) {
	c2 := MustNew(2, 21)
	c3 := MustNew(3, 21)
	f := func(x, y, z uint64) bool {
		m := c2.Max()
		x, y, z = x%m, y%m, z%m
		d2 := c2.Decode(c2.Encode(x, y))
		if d2[0] != x || d2[1] != y {
			return false
		}
		d3 := c3.Decode(c3.Encode(x, y, z))
		return d3[0] == x && d3[1] == y && d3[2] == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	c := MustNew(2, 4)
	h := c.Encode(1000, 1000) // clamped to 15,15
	want := c.Encode(15, 15)
	if h != want {
		t.Errorf("clamped encode = %d, want %d", h, want)
	}
}

func TestEncodePanicsOnDimsMismatch(t *testing.T) {
	c := MustNew(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong arity should panic")
		}
	}()
	c.Encode(1, 2, 3)
}

func TestQuantizer(t *testing.T) {
	c := MustNew(2, 8)
	q, err := NewQuantizer(c, []float64{0, 0}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Same cell for nearby points, different for far ones.
	a := q.Value(10, 10)
	b := q.Value(10.01, 10.01)
	far := q.Value(90, 90)
	if a != b {
		t.Errorf("nearby points should share a cell at order 8: %d vs %d", a, b)
	}
	if a == far {
		t.Error("distant points should differ")
	}
	// Out-of-box values clamp instead of wrapping.
	lo := q.Value(-50, -50)
	hi := q.Value(500, 500)
	if lo != q.Value(0, 0) || hi != q.Value(100, 100) {
		t.Error("clamping broken")
	}
}

func TestQuantizerDegenerateDimension(t *testing.T) {
	c := MustNew(3, 8)
	q, err := NewQuantizer(c, []float64{0, 0, 5}, []float64{10, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	// All t values map to the same lattice plane without panicking.
	if q.Value(1, 1, 5) != q.Value(1, 1, 99) {
		t.Error("degenerate dimension should collapse")
	}
}

func TestQuantizerErrors(t *testing.T) {
	c := MustNew(2, 8)
	if _, err := NewQuantizer(c, []float64{0}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := NewQuantizer(c, []float64{5, 0}, []float64{1, 1}); err == nil {
		t.Error("inverted bounds should error")
	}
}

// TestLocality spot-checks that Hilbert ordering keeps close points close:
// the average index distance of adjacent cells must be far below that of a
// row-major ordering.
func TestLocality(t *testing.T) {
	c := MustNew(2, 6) // 64x64
	var hilbertSum, rowSum float64
	n := 0
	for x := uint64(0); x < 63; x++ {
		for y := uint64(0); y < 64; y++ {
			h1 := c.Encode(x, y)
			h2 := c.Encode(x+1, y)
			d := int64(h1) - int64(h2)
			if d < 0 {
				d = -d
			}
			hilbertSum += float64(d)
			r1 := x*64 + y
			r2 := (x+1)*64 + y
			rowSum += float64(r2 - r1)
			n++
		}
	}
	if hilbertSum/float64(n) >= rowSum/float64(n) {
		t.Errorf("hilbert locality (%.1f) not better than row-major (%.1f)",
			hilbertSum/float64(n), rowSum/float64(n))
	}
}

func TestValue3MatchesValue(t *testing.T) {
	for _, order := range []uint{1, 4, 16, 21} {
		c := MustNew(3, order)
		q, err := NewQuantizer(c, []float64{-10, 0, 3}, []float64{10, 100, 7})
		if err != nil {
			t.Fatal(err)
		}
		f := func(x, y, z float64) bool {
			return q.Value3(x, y, z) == q.Value(x, y, z)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("order %d: %v", order, err)
		}
		// Clamped corners too (quick rarely lands outside float extremes).
		for _, v := range [][3]float64{{-1e9, -1e9, -1e9}, {1e9, 1e9, 1e9}, {-10, 100, 5}} {
			if got, want := q.Value3(v[0], v[1], v[2]), q.Value(v[0], v[1], v[2]); got != want {
				t.Errorf("order %d corner %v: Value3 %d != Value %d", order, v, got, want)
			}
		}
	}
}

func TestValue3PanicsOnNon3D(t *testing.T) {
	c := MustNew(2, 8)
	q, _ := NewQuantizer(c, []float64{0, 0}, []float64{1, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	q.Value3(0, 0, 0)
}
