package iosim

// This file adds the batched charging path used by the samplers' NextBatch
// fast loops. The contract everywhere is *stats equivalence*: charging a
// page sequence through a batch must leave every counter and the LRU pool
// in exactly the state that charging the same sequence one access at a time
// would have — batching buys fewer lock acquisitions and map operations,
// never different numbers.

// BatchAccountant is implemented by accountants that can charge a
// run-length encoded access sequence in one call. The sequence is the
// concatenation, in order, of counts[i] consecutive accesses of pages[i];
// the return value is how many of those accesses were buffer hits.
// Accountants lacking the fast path are driven through Access in a loop by
// AccessRuns, so callers never need to type-switch themselves.
type BatchAccountant interface {
	Accountant
	AccessBatch(pages []PageID, counts []int) (hits uint64)
}

// AccessRuns charges a run-length access sequence to any Accountant, using
// the batched fast path when available.
func AccessRuns(a Accountant, pages []PageID, counts []int) (hits uint64) {
	if ba, ok := a.(BatchAccountant); ok {
		return ba.AccessBatch(pages, counts)
	}
	for i, p := range pages {
		for j := 0; j < counts[i]; j++ {
			if a.Access(p) {
				hits++
			}
		}
	}
	return hits
}

// AccessBatch implements BatchAccountant: it replays the run-length access
// sequence under a single lock acquisition. Consecutive accesses of a
// cached page after the first are hits by definition (the page cannot be
// evicted between them), so each run costs one map lookup instead of
// counts[i].
func (d *Device) AccessBatch(pages []PageID, counts []int) (hits uint64) {
	if len(pages) == 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, p := range pages {
		n := counts[i]
		if n <= 0 {
			continue
		}
		d.stats.Logical += uint64(n)
		if el, ok := d.entries[p]; ok {
			d.moveToFront(el)
			d.stats.Hits += uint64(n)
			d.addCost(d.cost.HitCost, n)
			hits += uint64(n)
			continue
		}
		d.stats.Reads++
		d.stats.CostUnits += d.cost.ReadCost
		d.admit(p)
		if n > 1 {
			// The remaining n-1 accesses of the run hit the page just
			// admitted (capacity 0 pools admit nothing, so they stay
			// misses there).
			if d.capacity == 0 {
				d.stats.Reads += uint64(n - 1)
				d.addCost(d.cost.ReadCost, n-1)
			} else {
				d.stats.Hits += uint64(n - 1)
				d.addCost(d.cost.HitCost, n-1)
				hits += uint64(n - 1)
			}
		}
	}
	return hits
}

// addCost accumulates n copies of c by repeated addition so that batched
// stats are bit-identical to the serial per-access accumulation (a single
// c*n multiply rounds differently). Caller holds d.mu.
func (d *Device) addCost(c float64, n int) {
	for j := 0; j < n; j++ {
		d.stats.CostUnits += c
	}
}

// AccessBatch implements BatchAccountant for per-query attribution: the
// run totals are added to the counter's atomics and the sequence is
// forwarded to the underlying accountant's batch path. Run extensions —
// the accesses after the first of each multi-access run — are also
// tallied as Coalesced: their hit verdicts are decided by the
// back-to-back replay, not by a pool lookup a concurrent query could
// have interfered with, which is exactly how per-query attribution and
// batched charging can disagree (see Stats.Coalesced).
func (c *Counter) AccessBatch(pages []PageID, counts []int) (hits uint64) {
	var logical, coalesced uint64
	for _, n := range counts {
		if n > 0 {
			logical += uint64(n)
			coalesced += uint64(n - 1)
		}
	}
	if logical == 0 {
		return 0
	}
	c.logical.Add(logical)
	if coalesced > 0 {
		c.coalesced.Add(coalesced)
	}
	hits = AccessRuns(c.next, pages, counts)
	c.hits.Add(hits)
	return hits
}

// AccessBatch on Discard reports every access as a hit, matching Access.
func (discard) AccessBatch(pages []PageID, counts []int) (hits uint64) {
	for _, n := range counts {
		if n > 0 {
			hits += uint64(n)
		}
	}
	return hits
}

// batcherCap is the run capacity at which a Batcher self-flushes. Samplers
// touch a handful of distinct pages per draw, so 128 runs cover dozens of
// samples per downstream lock acquisition while keeping the accumulator a
// few cache lines.
const batcherCap = 128

// Batcher is an Accountant that coalesces Access charges into an
// order-preserving run-length sequence and forwards them downstream in
// batches: consecutive accesses of the same page extend the current run,
// a different page starts a new one. It exists for single-goroutine hot
// loops (a sampler's NextBatch) that would otherwise take the device lock
// on every draw; Flush (or any Write/Invalidate, which must stay ordered
// relative to reads) delivers the pending sequence.
//
// Access optimistically returns true — the hit verdict is not known until
// the flush. Callers that need per-access verdicts must not batch.
// A Batcher is not safe for concurrent use.
type Batcher struct {
	next   Accountant
	pages  []PageID
	counts []int
}

// NewBatcher returns a Batcher forwarding to next (Discard when nil).
func NewBatcher(next Accountant) *Batcher {
	if next == nil {
		next = Discard
	}
	return &Batcher{
		next:   next,
		pages:  make([]PageID, 0, batcherCap),
		counts: make([]int, 0, batcherCap),
	}
}

// Target returns the accountant the batcher forwards to.
func (b *Batcher) Target() Accountant { return b.next }

// Access implements Accountant by queueing the charge. It always reports a
// hit; the true verdict is accounted downstream at flush time.
func (b *Batcher) Access(p PageID) bool {
	if n := len(b.pages); n > 0 && b.pages[n-1] == p {
		b.counts[n-1]++
		return true
	}
	if len(b.pages) == batcherCap {
		b.Flush()
	}
	b.pages = append(b.pages, p)
	b.counts = append(b.counts, 1)
	return true
}

// Write implements Accountant. Pending reads are flushed first so the
// downstream pool observes reads and writes in their true order.
func (b *Batcher) Write(p PageID) {
	b.Flush()
	b.next.Write(p)
}

// Invalidate implements Accountant, flushing pending reads first.
func (b *Batcher) Invalidate(p PageID) {
	b.Flush()
	b.next.Invalidate(p)
}

// Flush delivers the queued access sequence downstream and empties the
// accumulator.
func (b *Batcher) Flush() {
	if len(b.pages) == 0 {
		return
	}
	AccessRuns(b.next, b.pages, b.counts)
	b.pages = b.pages[:0]
	b.counts = b.counts[:0]
}
