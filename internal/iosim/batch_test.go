package iosim

import (
	"testing"

	"storm/internal/stats"
)

// randomRuns builds a run-length access sequence with plenty of repeats,
// mimicking a sampler that re-charges its frontier pages.
func randomRuns(rng *stats.RNG, runs, pageSpace, maxRun int) ([]PageID, []int) {
	pages := make([]PageID, runs)
	counts := make([]int, runs)
	for i := range pages {
		pages[i] = PageID(rng.Intn(pageSpace))
		counts[i] = 1 + rng.Intn(maxRun)
	}
	return pages, counts
}

func replaySerial(d *Device, pages []PageID, counts []int) (hits uint64) {
	for i, p := range pages {
		for j := 0; j < counts[i]; j++ {
			if d.Access(p) {
				hits++
			}
		}
	}
	return hits
}

// TestAccessBatchMatchesSerial is the batching contract: AccessBatch must
// leave the device stats and LRU pool in exactly the state the equivalent
// serial Access sequence would.
func TestAccessBatchMatchesSerial(t *testing.T) {
	for _, capacity := range []int{0, 1, 4, 64} {
		rng := stats.NewRNG(7)
		pages, counts := randomRuns(rng, 500, 100, 4)

		serial := NewDevice(capacity, DefaultCostModel())
		serialHits := replaySerial(serial, pages, counts)

		batched := NewDevice(capacity, DefaultCostModel())
		batchedHits := batched.AccessBatch(pages, counts)

		if serialHits != batchedHits {
			t.Errorf("capacity %d: hits %d (batched) vs %d (serial)", capacity, batchedHits, serialHits)
		}
		if s, b := serial.Stats(), batched.Stats(); s != b {
			t.Errorf("capacity %d: stats diverge:\n  serial  %v\n  batched %v", capacity, s, b)
		}

		// The pools must agree too: a probe sequence must produce the same
		// hit pattern on both devices.
		probe, probeCounts := randomRuns(rng, 200, 100, 1)
		for i, p := range probe {
			_ = probeCounts[i]
			if serial.Access(p) != batched.Access(p) {
				t.Fatalf("capacity %d: LRU pools diverge at probe %d (page %d)", capacity, i, p)
			}
		}
	}
}

// TestBatcherOrderPreserved drives the same interleaved read/write sequence
// through a Batcher and directly, checking final stats equality — flushes
// triggered by Write must keep reads ordered before the write.
func TestBatcherOrderPreserved(t *testing.T) {
	rng := stats.NewRNG(11)
	type op struct {
		write bool
		page  PageID
	}
	ops := make([]op, 3000)
	for i := range ops {
		ops[i] = op{write: rng.Intn(10) == 0, page: PageID(rng.Intn(50))}
	}

	serial := NewDevice(8, DefaultCostModel())
	for _, o := range ops {
		if o.write {
			serial.Write(o.page)
		} else {
			serial.Access(o.page)
		}
	}

	dev := NewDevice(8, DefaultCostModel())
	b := NewBatcher(dev)
	for _, o := range ops {
		if o.write {
			b.Write(o.page)
		} else {
			b.Access(o.page)
		}
	}
	b.Flush()

	if s, d := serial.Stats(), dev.Stats(); s != d {
		t.Errorf("stats diverge:\n  serial  %v\n  batched %v", s, d)
	}
}

// TestBatcherAutoFlush checks that exceeding the run capacity does not drop
// or reorder charges.
func TestBatcherAutoFlush(t *testing.T) {
	dev := NewDevice(4, DefaultCostModel())
	b := NewBatcher(dev)
	const n = 10 * batcherCap
	for i := 0; i < n; i++ {
		b.Access(PageID(i)) // all distinct: one run each
	}
	b.Flush()
	if got := dev.Stats().Logical; got != n {
		t.Errorf("logical accesses = %d, want %d", got, n)
	}
}

// TestCounterAccessBatch checks per-query attribution through the batched
// path: counter totals and device totals must both match the serial run.
func TestCounterAccessBatch(t *testing.T) {
	rng := stats.NewRNG(13)
	pages, counts := randomRuns(rng, 300, 40, 3)

	serialDev := NewDevice(16, DefaultCostModel())
	serialCtr := NewCounter(serialDev)
	replaySerialCounter := func() {
		for i, p := range pages {
			for j := 0; j < counts[i]; j++ {
				serialCtr.Access(p)
			}
		}
	}
	replaySerialCounter()

	dev := NewDevice(16, DefaultCostModel())
	ctr := NewCounter(dev)
	ctr.AccessBatch(pages, counts)

	s, b := serialCtr.Snapshot(), ctr.Snapshot()
	// The batched counter additionally records run extensions as
	// Coalesced (the serial path has none); every verdict field must
	// still match exactly.
	var wantCoalesced uint64
	for _, n := range counts {
		if n > 1 {
			wantCoalesced += uint64(n - 1)
		}
	}
	if b.Coalesced != wantCoalesced {
		t.Errorf("batched Coalesced = %d, want %d", b.Coalesced, wantCoalesced)
	}
	if s.Coalesced != 0 {
		t.Errorf("serial Coalesced = %d, want 0", s.Coalesced)
	}
	b.Coalesced = 0
	if s != b {
		t.Errorf("counter snapshots diverge beyond Coalesced:\n  serial  %v\n  batched %v", s, b)
	}
	if s, b := serialDev.Stats(), dev.Stats(); s != b {
		t.Errorf("device stats diverge:\n  serial  %v\n  batched %v", s, b)
	}
}
