package iosim

import "testing"

// TestCoalescedAttribution pins the raw-vs-adjusted I/O contract: a
// per-query Counter driven through the batched path records run
// extensions as Coalesced, the raw stats keep the PR 2 charging verdicts
// unchanged, and BatchAdjusted removes exactly the manufactured hits.
func TestCoalescedAttribution(t *testing.T) {
	dev := NewDevice(4, DefaultCostModel())
	c := NewCounter(dev)

	// Three runs: page 1 x3, page 2 x1, page 1 x2. Logical = 6,
	// coalesced extensions = (3-1) + 0 + (2-1) = 3.
	pages := []PageID{1, 2, 1}
	counts := []int{3, 1, 2}
	hits := c.AccessBatch(pages, counts)

	// Cold pool: first access of each run misses for page 1 and 2, the
	// third run's page 1 is resident -> 1 lookup hit + 3 coalesced hits.
	if hits != 4 {
		t.Fatalf("hits = %d, want 4", hits)
	}
	raw := c.Snapshot()
	if raw.Logical != 6 || raw.Hits != 4 || raw.Reads != 2 {
		t.Fatalf("raw stats = %+v", raw)
	}
	if raw.Coalesced != 3 {
		t.Fatalf("coalesced = %d, want 3", raw.Coalesced)
	}

	adj := raw.BatchAdjusted()
	if adj.Coalesced != 0 {
		t.Fatalf("adjusted view must zero Coalesced: %+v", adj)
	}
	if adj.Logical != 3 || adj.Hits != 1 || adj.Reads != 2 {
		t.Fatalf("adjusted stats = %+v", adj)
	}
	if adj.Reads != adj.Logical-adj.Hits {
		t.Fatalf("adjusted identity broken: %+v", adj)
	}

	// The shared device must never report Coalesced — its stats are the
	// batching-equivalence ground truth.
	if ds := dev.Stats(); ds.Coalesced != 0 {
		t.Fatalf("device stats grew a Coalesced count: %+v", ds)
	}
}

// TestSerialCounterHasNoCoalesced pins that per-access charging (the PR 1
// attribution path) never manufactures hits: Coalesced stays zero and
// BatchAdjusted is the identity.
func TestSerialCounterHasNoCoalesced(t *testing.T) {
	dev := NewDevice(4, DefaultCostModel())
	c := NewCounter(dev)
	for _, p := range []PageID{1, 1, 1, 2, 1, 1} {
		c.Access(p)
	}
	raw := c.Snapshot()
	if raw.Coalesced != 0 {
		t.Fatalf("serial path set Coalesced: %+v", raw)
	}
	if adj := raw.BatchAdjusted(); adj != raw {
		t.Fatalf("BatchAdjusted should be identity on serial stats: %+v vs %+v", adj, raw)
	}
}

// TestCoalescedDivergenceUnderInterleaving demonstrates the disagreement
// the adjusted view exists to bound: on a capacity-1 pool, two queries
// alternating over distinct pages evict each other on every access when
// charged serially, but a batched flush replays each query's run
// back-to-back and grants the extensions as hits. The raw per-query hit
// counts differ across the two schedules; the batch-adjusted ones do not.
func TestCoalescedDivergenceUnderInterleaving(t *testing.T) {
	runFor := func(q PageID) ([]PageID, []int) {
		return []PageID{q}, []int{3} // each query touches its own page 3x
	}

	// Schedule A: serial interleaving on a shared capacity-1 pool.
	devA := NewDevice(1, DefaultCostModel())
	qa1, qa2 := NewCounter(devA), NewCounter(devA)
	for i := 0; i < 3; i++ {
		qa1.Access(1)
		qa2.Access(2)
	}
	serial1 := qa1.Snapshot()
	if serial1.Hits != 0 {
		t.Fatalf("interleaved serial run should never hit: %+v", serial1)
	}

	// Schedule B: the same accesses flushed as batches.
	devB := NewDevice(1, DefaultCostModel())
	qb1, qb2 := NewCounter(devB), NewCounter(devB)
	p1, n1 := runFor(1)
	p2, n2 := runFor(2)
	qb1.AccessBatch(p1, n1)
	qb2.AccessBatch(p2, n2)
	// Interleave once more at single-access granularity to evict.
	qb1.Access(1)
	qb2.Access(2)
	qb1.AccessBatch(p1, n1)
	qb2.AccessBatch(p2, n2)

	batched1 := qb1.Snapshot()
	if batched1.Hits <= serial1.Hits {
		t.Fatalf("expected batching to manufacture hits: serial %+v, batched %+v",
			serial1, batched1)
	}
	if batched1.Coalesced == 0 {
		t.Fatal("batched run should record coalesced accesses")
	}
	// The adjusted view strips every manufactured hit: what remains are
	// lookup-verdict hits, which the thrashing schedule has none of.
	adj := batched1.BatchAdjusted()
	if adj.Hits != 0 {
		t.Fatalf("adjusted hits = %d, want 0 (all hits were coalesced): %+v",
			adj.Hits, batched1)
	}
	if adj.Reads != adj.Logical-adj.Hits {
		t.Fatalf("adjusted identity broken: %+v", adj)
	}
}

// TestBatchAdjustedCapacityZero pins the clamp: on an uncached device the
// batch path charges run extensions as reads, so the adjusted view must
// shrink Reads to preserve Reads = Logical - Hits rather than underflow.
func TestBatchAdjustedCapacityZero(t *testing.T) {
	dev := NewDevice(0, DefaultCostModel())
	c := NewCounter(dev)
	c.AccessBatch([]PageID{7}, []int{5})
	raw := c.Snapshot()
	if raw.Logical != 5 || raw.Hits != 0 || raw.Reads != 5 || raw.Coalesced != 4 {
		t.Fatalf("raw stats = %+v", raw)
	}
	adj := raw.BatchAdjusted()
	if adj.Logical != 1 || adj.Hits != 0 || adj.Reads != 1 {
		t.Fatalf("adjusted stats = %+v", adj)
	}
}

// TestDeviceEvictionCount pins the new Evictions counter: a capacity-2
// pool accessed over 4 distinct pages evicts twice.
func TestDeviceEvictionCount(t *testing.T) {
	dev := NewDevice(2, DefaultCostModel())
	for _, p := range []PageID{1, 2, 3, 4} {
		dev.Access(p)
	}
	st := dev.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (stats %+v)", st.Evictions, st)
	}
	// Batched charging must evict identically (stats equivalence).
	dev2 := NewDevice(2, DefaultCostModel())
	dev2.AccessBatch([]PageID{1, 2, 3, 4}, []int{1, 1, 1, 1})
	if st2 := dev2.Stats(); st2.Evictions != st.Evictions {
		t.Fatalf("batched evictions = %d, serial = %d", st2.Evictions, st.Evictions)
	}
}
