package iosim

import (
	"sync"
	"testing"
)

func TestColdReadThenHit(t *testing.T) {
	d := NewDevice(10, DefaultCostModel())
	if d.Access(1) {
		t.Error("first access should miss")
	}
	if !d.Access(1) {
		t.Error("second access should hit")
	}
	s := d.Stats()
	if s.Reads != 1 || s.Hits != 1 || s.Logical != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	d := NewDevice(2, DefaultCostModel())
	d.Access(1)
	d.Access(2)
	d.Access(3) // evicts 1
	if d.Access(1) {
		t.Error("evicted page should miss")
	}
	// Page 3 was just re-admitted recently; 2 was evicted by 1's re-admit.
	if !d.Access(3) {
		t.Error("page 3 should still be cached")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	d := NewDevice(2, DefaultCostModel())
	d.Access(1)
	d.Access(2)
	d.Access(1) // 1 becomes most recent
	d.Access(3) // evicts 2, not 1
	if !d.Access(1) {
		t.Error("recently used page should survive eviction")
	}
	if d.Access(2) {
		t.Error("least recently used page should be evicted")
	}
}

func TestZeroCapacityNeverCaches(t *testing.T) {
	d := NewDevice(0, DefaultCostModel())
	for i := 0; i < 5; i++ {
		if d.Access(1) {
			t.Fatal("zero-capacity device should never hit")
		}
	}
	if got := d.Stats().Reads; got != 5 {
		t.Errorf("reads = %d, want 5", got)
	}
}

func TestWriteAdmits(t *testing.T) {
	d := NewDevice(4, DefaultCostModel())
	d.Write(7)
	if !d.Access(7) {
		t.Error("written page should be cached")
	}
	if got := d.Stats().Writes; got != 1 {
		t.Errorf("writes = %d", got)
	}
}

func TestInvalidate(t *testing.T) {
	d := NewDevice(4, DefaultCostModel())
	d.Access(1)
	d.Invalidate(1)
	if d.Access(1) {
		t.Error("invalidated page should miss")
	}
	// Invalidating an absent page is a no-op.
	d.Invalidate(99)
}

func TestDropCacheAndResetStats(t *testing.T) {
	d := NewDevice(4, DefaultCostModel())
	d.Access(1)
	d.Access(2)
	d.ResetStats()
	if s := d.Stats(); s.Logical != 0 || s.Reads != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if !d.Access(1) {
		t.Error("ResetStats should not drop cached pages")
	}
	d.DropCache()
	if d.Access(1) {
		t.Error("DropCache should evict everything")
	}
}

func TestCostAccumulation(t *testing.T) {
	cm := CostModel{ReadCost: 10, WriteCost: 5, HitCost: 1}
	d := NewDevice(4, cm)
	d.Access(1) // miss: 10
	d.Access(1) // hit: 1
	d.Write(2)  // write: 5
	if got := d.Stats().CostUnits; got != 16 {
		t.Errorf("cost = %v, want 16", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewDevice(8, DefaultCostModel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Access(PageID(base*100 + j%16))
			}
		}(i)
	}
	wg.Wait()
	if got := d.Stats().Logical; got != 8000 {
		t.Errorf("logical accesses = %d, want 8000", got)
	}
}

func TestDiscardAccountant(t *testing.T) {
	// Must be safe and side-effect free.
	Discard.Write(1)
	Discard.Invalidate(1)
	if !Discard.Access(1) {
		t.Error("Discard.Access should report a hit")
	}
}

func TestNegativeCapacityClamped(t *testing.T) {
	d := NewDevice(-5, DefaultCostModel())
	if d.Capacity() != 0 {
		t.Errorf("capacity = %d, want 0", d.Capacity())
	}
}
