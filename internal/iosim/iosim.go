// Package iosim simulates a block storage device with an LRU buffer pool.
//
// STORM's evaluation (Figure 3a of the paper) hinges on I/O behaviour:
// Olken-style RandomPath sampling touches Ω(k) distinct disk blocks while
// the LS-tree and RS-tree pay roughly O(k/B). Measuring wall time alone on
// an in-memory reproduction would hide that difference, so the R-tree maps
// every node to a simulated page and each node visit is charged through
// this package. The counters give deterministic, hardware-independent I/O
// costs, and the optional latency model converts them into simulated time.
package iosim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageID identifies a simulated disk page.
type PageID uint64

// Stats is a snapshot of accumulated I/O activity.
type Stats struct {
	Reads     uint64  // physical page reads (buffer pool misses)
	Writes    uint64  // physical page writes
	Hits      uint64  // buffer pool hits
	Logical   uint64  // total logical page accesses (hits + misses)
	Evictions uint64  // pages evicted from the buffer pool
	CostUnits float64 // accumulated simulated latency cost

	// Coalesced counts accesses whose hit verdict was decided by batch
	// run-coalescing rather than an individual pool lookup: inside a
	// flushed run of n consecutive accesses of one page, the n-1
	// accesses after the first are hits *by construction* (the run is
	// replayed back-to-back under one device lock, so the page cannot
	// be evicted between them). A serial, per-access execution of the
	// same query could have interleaved with other queries and charged
	// some of them as misses — so a per-query Counter's raw Hits and a
	// serial replay's Hits can legitimately disagree by up to
	// Coalesced. Only per-query Counters fill this field (the shared
	// Device's stats stay bit-identical between serial and batched
	// charging, which is the iosim batching contract).
	Coalesced uint64
}

// BatchAdjusted returns the conservative, coalescing-free view of the
// stats: the Coalesced accesses — guaranteed hits manufactured by batch
// replay — are removed from Logical and Hits, leaving the accesses whose
// verdicts came from genuine buffer-pool lookups. Reporting both views
// (raw and adjusted) lets an operator bound how much of a query's hit
// rate was earned by locality versus granted by batching.
func (s Stats) BatchAdjusted() Stats {
	adj := s
	adj.Coalesced = 0
	if adj.Logical >= s.Coalesced {
		adj.Logical -= s.Coalesced
	} else {
		adj.Logical = 0
	}
	// On a caching device every coalesced access is a hit; on a
	// capacity-0 device the batch path charges run-extensions as reads,
	// so clamp rather than underflow.
	if adj.Hits >= s.Coalesced {
		adj.Hits -= s.Coalesced
	} else {
		adj.Hits = 0
	}
	// Keep the Reads = Logical - Hits identity on the adjusted view
	// (removes coalesced reads on capacity-0 devices, no-op otherwise).
	if adj.Reads > adj.Logical-adj.Hits {
		adj.Reads = adj.Logical - adj.Hits
	}
	return adj
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d logical=%d cost=%.1f",
		s.Reads, s.Writes, s.Hits, s.Logical, s.CostUnits)
}

// CostModel converts physical I/O into simulated latency cost units.
// The defaults loosely mirror a spinning disk relative to RAM: a random
// page read costs 1.0 units while a buffer hit costs 0.001.
type CostModel struct {
	ReadCost  float64
	WriteCost float64
	HitCost   float64
}

// DefaultCostModel returns the cost model used by the benchmark harness.
func DefaultCostModel() CostModel {
	return CostModel{ReadCost: 1.0, WriteCost: 1.0, HitCost: 0.001}
}

// lruNode is one page slot of the buffer pool's intrusive LRU list.
// Evicted nodes are recycled through the device's free list, so a pool at
// capacity admits and evicts without allocating.
type lruNode struct {
	page       PageID
	prev, next *lruNode
}

// Device is a simulated block device fronted by an LRU buffer pool of a
// fixed capacity (in pages). A capacity of zero disables caching: every
// access is a physical read. Device is safe for concurrent use.
type Device struct {
	mu       sync.Mutex
	capacity int
	cost     CostModel
	stats    Stats

	head, tail *lruNode // head = most recently used
	free       *lruNode // recycled nodes, linked through next
	size       int
	entries    map[PageID]*lruNode
}

// NewDevice returns a device whose buffer pool holds capacity pages.
func NewDevice(capacity int, cost CostModel) *Device {
	if capacity < 0 {
		capacity = 0
	}
	return &Device{
		capacity: capacity,
		cost:     cost,
		entries:  make(map[PageID]*lruNode, capacity),
	}
}

// moveToFront makes n the most recently used node. Caller holds d.mu.
func (d *Device) moveToFront(n *lruNode) {
	if d.head == n {
		return
	}
	// Unlink (n is in the list and is not the head, so n.prev != nil).
	n.prev.next = n.next
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		d.tail = n.prev
	}
	// Relink at the head.
	n.prev = nil
	n.next = d.head
	d.head.prev = n
	d.head = n
}

// pushFront links a node for p at the head, reusing a free node when one
// exists. Caller holds d.mu.
func (d *Device) pushFront(p PageID) *lruNode {
	n := d.free
	if n != nil {
		d.free = n.next
	} else {
		n = &lruNode{}
	}
	n.page = p
	n.prev = nil
	n.next = d.head
	if d.head != nil {
		d.head.prev = n
	} else {
		d.tail = n
	}
	d.head = n
	d.size++
	return n
}

// unlink removes n from the list and recycles it. Caller holds d.mu.
func (d *Device) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		d.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		d.tail = n.prev
	}
	d.size--
	n.prev = nil
	n.next = d.free
	d.free = n
}

// Access charges one logical read of the page, simulating a buffer pool
// lookup. It returns true when the access was a buffer hit.
func (d *Device) Access(p PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Logical++
	if el, ok := d.entries[p]; ok {
		d.moveToFront(el)
		d.stats.Hits++
		d.stats.CostUnits += d.cost.HitCost
		return true
	}
	d.stats.Reads++
	d.stats.CostUnits += d.cost.ReadCost
	d.admit(p)
	return false
}

// Write charges one physical write of the page and admits it to the pool.
func (d *Device) Write(p PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Writes++
	d.stats.CostUnits += d.cost.WriteCost
	if el, ok := d.entries[p]; ok {
		d.moveToFront(el)
		return
	}
	d.admit(p)
}

// admit inserts p at the LRU front, evicting if over capacity.
// Caller holds d.mu.
func (d *Device) admit(p PageID) {
	if d.capacity == 0 {
		return
	}
	d.entries[p] = d.pushFront(p)
	for d.size > d.capacity {
		back := d.tail
		delete(d.entries, back.page)
		d.unlink(back)
		d.stats.Evictions++
	}
}

// Invalidate drops the page from the buffer pool (e.g. after a node is
// freed during deletion).
func (d *Device) Invalidate(p PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.entries[p]; ok {
		delete(d.entries, p)
		d.unlink(el)
	}
}

// Stats returns a snapshot of the accumulated counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters without touching buffer pool contents,
// so a benchmark can measure a query phase in isolation from the build.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// DropCache empties the buffer pool, forcing cold-cache behaviour.
func (d *Device) DropCache() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.head != nil {
		d.unlink(d.head)
	}
	clear(d.entries)
}

// Capacity returns the buffer pool capacity in pages.
func (d *Device) Capacity() int { return d.capacity }

// Accountant is the narrow interface index structures use to charge I/O.
// A nil-safe no-op implementation is available via Discard.
type Accountant interface {
	Access(PageID) bool
	Write(PageID)
	Invalidate(PageID)
}

// Discard is an Accountant that charges nothing, for purely in-memory use.
var Discard Accountant = discard{}

type discard struct{}

func (discard) Access(PageID) bool { return true }
func (discard) Write(PageID)       {}
func (discard) Invalidate(PageID)  {}

// Counter is an Accountant that tallies the accesses charged through it
// and forwards each charge to an underlying Accountant (typically the
// shared Device). All counters are atomic, so one Counter per query gives
// race-free per-query I/O attribution while the shared device keeps the
// global totals: concurrent queries each charge through their own Counter
// into the same pool, and nobody needs Stats/ResetStats windows (which
// cannot isolate one query once queries overlap).
type Counter struct {
	next      Accountant
	logical   atomic.Uint64
	hits      atomic.Uint64
	writes    atomic.Uint64
	invalids  atomic.Uint64
	coalesced atomic.Uint64
}

// NewCounter returns a Counter forwarding to next (Discard when nil).
func NewCounter(next Accountant) *Counter {
	if next == nil {
		next = Discard
	}
	return &Counter{next: next}
}

// Access implements Accountant.
func (c *Counter) Access(p PageID) bool {
	c.logical.Add(1)
	hit := c.next.Access(p)
	if hit {
		c.hits.Add(1)
	}
	return hit
}

// Write implements Accountant.
func (c *Counter) Write(p PageID) {
	c.writes.Add(1)
	c.next.Write(p)
}

// Invalidate implements Accountant.
func (c *Counter) Invalidate(p PageID) {
	c.invalids.Add(1)
	c.next.Invalidate(p)
}

// Snapshot returns the I/O attributed through this counter so far. Hits
// reflect the underlying pool's verdicts, so Reads = Logical - Hits is the
// physical reads this query caused (a Discard backend reports every access
// as a hit, leaving Reads at zero). Coalesced counts the accesses whose
// hit verdict was granted by batch run-coalescing (see Stats.Coalesced);
// Snapshot().BatchAdjusted() is the view with those removed.
func (c *Counter) Snapshot() Stats {
	logical := c.logical.Load()
	hits := c.hits.Load()
	return Stats{
		Logical:   logical,
		Hits:      hits,
		Reads:     logical - hits,
		Writes:    c.writes.Load(),
		Coalesced: c.coalesced.Load(),
	}
}
