package iosim

import (
	"testing"

	"storm/internal/stats"
)

// refLRU is a simple reference LRU model: a slice ordered most-recent-first.
type refLRU struct {
	cap   int
	pages []PageID
}

func (m *refLRU) touch(p PageID) bool {
	for i, q := range m.pages {
		if q == p {
			copy(m.pages[1:i+1], m.pages[:i])
			m.pages[0] = p
			return true
		}
	}
	if m.cap == 0 {
		return false
	}
	m.pages = append([]PageID{p}, m.pages...)
	if len(m.pages) > m.cap {
		m.pages = m.pages[:m.cap]
	}
	return false
}

func (m *refLRU) invalidate(p PageID) {
	for i, q := range m.pages {
		if q == p {
			m.pages = append(m.pages[:i], m.pages[i+1:]...)
			return
		}
	}
}

// TestDeviceMatchesReferenceLRU drives random access/write/invalidate
// sequences and checks the device's hit/miss behaviour against the model.
func TestDeviceMatchesReferenceLRU(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, capacity := range []int{0, 1, 3, 8, 32} {
		d := NewDevice(capacity, DefaultCostModel())
		m := &refLRU{cap: capacity}
		for op := 0; op < 5000; op++ {
			p := PageID(rng.Intn(48))
			switch rng.Intn(10) {
			case 0:
				d.Write(p)
				m.touch(p)
			case 1:
				d.Invalidate(p)
				m.invalidate(p)
			default:
				got := d.Access(p)
				want := m.touch(p)
				if got != want {
					t.Fatalf("cap=%d op=%d page=%d: hit=%v, model=%v", capacity, op, p, got, want)
				}
			}
		}
	}
}
