package iosim

import (
	"sync"
	"testing"
)

func TestCounterForwardsAndCounts(t *testing.T) {
	dev := NewDevice(2, DefaultCostModel())
	c := NewCounter(dev)

	c.Access(1) // miss
	c.Access(1) // hit
	c.Access(2) // miss
	c.Write(2)
	c.Invalidate(1)

	s := c.Snapshot()
	if s.Logical != 3 {
		t.Errorf("logical = %d, want 3", s.Logical)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
	if s.Reads != 2 {
		t.Errorf("reads = %d, want 2", s.Reads)
	}
	if s.Writes != 1 {
		t.Errorf("writes = %d, want 1", s.Writes)
	}
	// The shared device saw the same traffic.
	if d := dev.Stats(); d.Logical != 3 || d.Writes != 1 {
		t.Errorf("device stats = %+v, want logical 3, writes 1", d)
	}
}

func TestCounterNilNextDiscards(t *testing.T) {
	// A Discard backend reports every access as a hit, so Reads stays 0.
	c := NewCounter(nil)
	c.Access(7)
	if s := c.Snapshot(); s.Logical != 1 || s.Hits != 1 || s.Reads != 0 {
		t.Errorf("snapshot = %+v, want logical 1, hits 1, reads 0", s)
	}
}

// TestCountersConcurrent drives several per-query counters over one shared
// device from separate goroutines (the engine's attribution pattern); run
// with -race it checks the whole accounting path is race-free, and the
// per-counter totals must sum to the device's.
func TestCountersConcurrent(t *testing.T) {
	dev := NewDevice(8, DefaultCostModel())
	const workers = 8
	const accesses = 500
	counters := make([]*Counter, workers)
	var wg sync.WaitGroup
	for i := range counters {
		counters[i] = NewCounter(dev)
		wg.Add(1)
		go func(c *Counter, base uint64) {
			defer wg.Done()
			for j := uint64(0); j < accesses; j++ {
				c.Access(PageID(base + j%16))
			}
		}(counters[i], uint64(i*4))
	}
	wg.Wait()

	var logical uint64
	for i, c := range counters {
		s := c.Snapshot()
		if s.Logical != accesses {
			t.Errorf("counter %d: logical = %d, want %d", i, s.Logical, accesses)
		}
		if s.Reads+s.Hits != s.Logical {
			t.Errorf("counter %d: reads %d + hits %d != logical %d", i, s.Reads, s.Hits, s.Logical)
		}
		logical += s.Logical
	}
	if d := dev.Stats(); d.Logical != logical {
		t.Errorf("device logical = %d, counters sum to %d", d.Logical, logical)
	}
}
