package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/sampling"
)

// TestConcurrentQueriesWithUpdates is the concurrency stress test: many
// goroutines run mixed estimate and KDE queries against one dataset while
// a writer interleaves inserts and deletes. Run under -race it exercises
// the shared-immutable/query-local split end to end; the assertions check
// that every estimate stays unbiased (inserted rows follow the same
// distribution, so the population mean is stable) and every confidence
// interval is well-formed.
func TestConcurrentQueriesWithUpdates(t *testing.T) {
	_, h := buildHandleWithPool(t, 20000, true, 256)
	truth, cnt := trueMean(h, testRange, "value")
	if cnt == 0 {
		t.Fatal("empty test range")
	}

	const readers = 8
	const queriesPerReader = 3
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, readers*queriesPerReader+1)

	methods := []Method{MethodRSTree, MethodLSTree, Auto}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				if (g+i)%3 == 2 {
					// KDE query.
					ch, err := h.KDEOnline(ctx, testRange, KDEOptions{Nx: 8, Ny: 8},
						AnalyticOptions{MaxSamples: 400, ReportEvery: 100})
					if err != nil {
						errs <- err
						return
					}
					var last KDESnapshot
					for s := range ch {
						last = s
					}
					if last.Map == nil || !last.Done {
						errs <- fmt.Errorf("reader %d: KDE finished without a map", g)
					}
					continue
				}
				m := methods[(g+i)%len(methods)]
				snap, err := h.Estimate(ctx, testRange, Options{
					Kind: estimator.Avg, Attr: "value",
					MaxSamples: 800, ReportEvery: 200, Method: m,
				})
				if err != nil {
					errs <- err
					return
				}
				if snap.Samples == 0 {
					errs <- fmt.Errorf("reader %d: no samples (method %v)", g, m)
					continue
				}
				if snap.HalfWidth < 0 || math.IsNaN(snap.HalfWidth) {
					errs <- fmt.Errorf("reader %d: invalid half-width %v", g, snap.HalfWidth)
				}
				// Unbiasedness: updates draw from the same distribution, so
				// the mean stays near the pre-update truth. Allow 5 CI
				// half-widths plus slack for the population drift.
				if diff := math.Abs(snap.Value - truth); diff > 5*snap.HalfWidth+5 {
					errs <- fmt.Errorf("reader %d: estimate %.2f vs truth %.2f (hw %.2f)", g, snap.Value, truth, snap.HalfWidth)
				}
			}
		}(g)
	}

	// Writer: interleave inserts and deletes while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if i%3 == 2 {
				h.Delete(data.ID(i * 7 % 20000))
				continue
			}
			h.Insert(data.Row{
				Pos: geo.Vec{30 + float64(i%30), 30 + float64(i%25), float64(i % 100)},
				Num: map[string]float64{"value": 100},
			})
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// buildHandleWithPool is buildHandle with an I/O-simulating buffer pool,
// so per-query attribution paths run during the stress test.
func buildHandleWithPool(t testing.TB, n int, lstree bool, pages int) (*Engine, *Handle) {
	t.Helper()
	e := New(Config{Seed: 42, Fanout: 32, BufferPoolPages: pages})
	ds := gen.Uniform(n, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	h, err := e.Register(ds, IndexOptions{LSTree: lstree})
	if err != nil {
		t.Fatal(err)
	}
	return e, h
}

// TestSameSeedSameStreamSerialVsConcurrent is the seed-plumbing regression
// test: a query's explicit seed must fully determine its sample stream, no
// matter what else runs at the same time. The serial reference stream is
// compared against copies raced against each other and against queries
// with different seeds (which perturb the lazy buffer cache).
func TestSameSeedSameStreamSerialVsConcurrent(t *testing.T) {
	for _, method := range []Method{MethodRSTree, MethodLSTree} {
		t.Run(method.String(), func(t *testing.T) {
			_, h := buildHandle(t, 10000, true)
			const seed = 12345
			const k = 500
			ref, err := h.Sample(testRange, k, method, sampling.WithoutReplacement, seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(ref) == 0 {
				t.Fatal("empty reference stream")
			}

			const dup = 6
			streams := make([][]data.Entry, dup)
			var wg sync.WaitGroup
			for i := 0; i < dup; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if i%2 == 1 {
						// Perturb shared cache state with an unrelated query.
						_, _ = h.Sample(testRange, k, method, sampling.WithoutReplacement, int64(999+i))
					}
					s, err := h.Sample(testRange, k, method, sampling.WithoutReplacement, seed)
					if err != nil {
						t.Error(err)
						return
					}
					streams[i] = s
				}(i)
			}
			wg.Wait()

			for i, s := range streams {
				if len(s) != len(ref) {
					t.Fatalf("stream %d: %d samples, reference %d", i, len(s), len(ref))
				}
				for j := range s {
					if s[j].ID != ref[j].ID {
						t.Fatalf("stream %d diverges from reference at sample %d: %d vs %d", i, j, s[j].ID, ref[j].ID)
					}
				}
			}
		})
	}
}

// TestPerQueryIOAttribution checks that concurrent queries each see their
// own I/O counters: totals must be positive, internally consistent, and
// (summed) no larger than what the shared device recorded.
func TestPerQueryIOAttribution(t *testing.T) {
	e, h := buildHandleWithPool(t, 20000, false, 128)
	ctx := context.Background()

	const n = 4
	var wg sync.WaitGroup
	snaps := make([]Snapshot, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := h.Estimate(ctx, testRange, Options{
				Kind: estimator.Avg, Attr: "value",
				MaxSamples: 500, ReportEvery: 100, Method: MethodRSTree,
			})
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = snap
		}(i)
	}
	wg.Wait()

	var sumLogical uint64
	for i, s := range snaps {
		if s.IO.Logical == 0 {
			t.Errorf("query %d: no attributed I/O", i)
		}
		if s.IO.Logical != s.IO.Reads+s.IO.Hits {
			t.Errorf("query %d: logical %d != reads %d + hits %d", i, s.IO.Logical, s.IO.Reads, s.IO.Hits)
		}
		sumLogical += s.IO.Logical
	}
	if dev := e.Device().Stats().Logical; sumLogical > dev {
		t.Errorf("attributed logical I/O %d exceeds device total %d", sumLogical, dev)
	}
}
