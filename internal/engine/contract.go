package engine

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/stats"
)

// Contract is a per-query accuracy/latency service contract — the query
// language's "ERROR 2% AT CONFIDENCE 95% WITHIN 500ms" clauses (BlinkDB-
// style). Instead of watching an open-ended snapshot stream and deciding
// when to stop, the caller states the guarantee it needs and receives ONE
// answer carrying the guarantee's verdict (see EstimateContract).
type Contract struct {
	// RelError is the target relative CI half-width (0.02 = "within 2% of
	// the truth at the confidence level"); 0 means no accuracy target
	// (deadline-only contract).
	RelError float64
	// Confidence is the level backing the error target; 0 means 0.95.
	Confidence float64
	// Deadline bounds the query's wall-clock execution time; 0 means no
	// deadline (error-only contract). At least one of RelError and
	// Deadline must be set.
	Deadline time.Duration
}

// withDefaults fills the confidence default (fallback, then 0.95).
func (c Contract) withDefaults(fallback float64) Contract {
	if c.Confidence == 0 {
		c.Confidence = fallback
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	return c
}

// String renders the contract in the query language's clause form.
func (c Contract) String() string {
	var parts []string
	if c.RelError > 0 {
		conf := c.Confidence
		if conf == 0 {
			conf = 0.95
		}
		parts = append(parts, fmt.Sprintf("ERROR %g%% AT CONFIDENCE %g%%", c.RelError*100, conf*100))
	}
	if c.Deadline > 0 {
		parts = append(parts, fmt.Sprintf("WITHIN %v", c.Deadline))
	}
	if len(parts) == 0 {
		return "unconstrained"
	}
	return strings.Join(parts, " ")
}

// Scale relaxes the contract for per-query QoS degradation under overload
// (the server's alternative to shedding contract queries with 429s): a
// factor above 1 widens the error target and shrinks the deadline
// proportionally, so every admitted query still gets an answer with an
// honest — just weaker — guarantee. Factors at or below 1 return the
// contract unchanged.
func (c Contract) Scale(factor float64) Contract {
	if factor <= 1 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return c
	}
	if c.RelError > 0 {
		c.RelError *= factor
	}
	if c.Deadline > 0 {
		d := time.Duration(float64(c.Deadline) / factor)
		if d < contractMinDeadline {
			d = contractMinDeadline
		}
		c.Deadline = d
	}
	return c
}

// ContractStatus is the guarantee verdict of a contract query.
type ContractStatus int

// Contract verdicts. Met means both bounds held (the error target was
// reached — or the answer is exact — within the deadline). Degraded means
// the query answered on time but had to relax accuracy: the deadline (or
// a sample cap / shard loss) stopped it before the error target, and the
// answer carries its achieved, wider CI instead. Missed means the
// contract's latency bound was broken or no usable estimate exists at all
// (fewer than two samples, or the query was cancelled early).
const (
	ContractMet ContractStatus = iota
	ContractDegraded
	ContractMissed
)

// String implements fmt.Stringer.
func (s ContractStatus) String() string {
	switch s {
	case ContractMet:
		return "met"
	case ContractDegraded:
		return "degraded"
	case ContractMissed:
		return "missed"
	default:
		return fmt.Sprintf("ContractStatus(%d)", int(s))
	}
}

// ContractPlan is the contract planner's pre-execution prediction: the
// sample budget, throughput and convergence-time estimates behind the
// chosen stopping rule. It is the EXPLAIN output of a contract query
// (ExplainContract). Predictions steer the plan only — execution always
// runs to the contract's own stopping rule, so a mispredicted rate or CV
// costs prediction quality, never correctness.
type ContractPlan struct {
	// Target is the contract being planned.
	Target Contract
	// Qualifying is the predicted qualifying population |P ∩ q ∩ σ|, from
	// the range count and the PR 7 predicate selectivity estimate.
	Qualifying int
	// CV is the coefficient-of-variation estimate used for the sample-
	// budget prediction: the dataset's profiled EWMA for the attribute, or
	// the cold prior.
	CV float64
	// RateSPMS is the predicted sampling throughput in samples per
	// millisecond (profiled EWMA, or the cold prior).
	RateSPMS float64
	// Samples is the predicted sample count needed to reach the error
	// target: k = ceil((z·cv/ε)²), capped by the qualifying population
	// (without-replacement exhaustion makes the answer exact). 0 for
	// deadline-only contracts.
	Samples int
	// Budget is the sample count affordable within the deadline at the
	// predicted rate; 0 when the contract has no deadline.
	Budget int
	// PredictedMS is the predicted time to reach the error target, the
	// larger of the rate extrapolation and the per-dataset time-to-CI
	// telemetry's milestone scaling. 0 for deadline-only contracts.
	PredictedMS float64
	// PredictedRelError is the relative error the planner expects to
	// deliver: the target when Feasible, else the error affordable within
	// the deadline's sample budget.
	PredictedRelError float64
	// Feasible is the planner's prediction that the error target fits the
	// deadline (always true without one of the two bounds).
	Feasible bool
	// Cold marks a plan made without per-dataset telemetry — the first
	// query on a fresh dataset falls back to conservative priors.
	Cold bool
	// Exact predicts an exact answer: COUNT, or a sample need that covers
	// the whole qualifying population without replacement.
	Exact bool
	// ReportEvery is the chosen stopping-rule check interval (samples
	// between target checks): roughly 16 checks on the way to the
	// predicted budget, clamped to the engine's batch bounds.
	ReportEvery int
}

// ContractResult is the single answer of a contract query: the final
// snapshot plus the contract's verdict and what was achieved.
type ContractResult struct {
	// Snapshot is the final (Done) snapshot of the run — the one answer a
	// contract query returns instead of a stream.
	Snapshot
	// Status is the guarantee verdict.
	Status ContractStatus
	// Contract is the effective contract the query ran under (confidence
	// defaults applied).
	Contract Contract
	// AchievedRelError is the final relative CI half-width — the CI the
	// answer actually carries (0 when exact, +Inf when the estimate is
	// zero with a nonzero half-width).
	AchievedRelError float64
	// Plan is the planner's pre-execution prediction, for comparison
	// against what the run achieved.
	Plan ContractPlan
}

// String renders the answer with its guarantee, e.g.
// "AVG ≈ 1430.2 ± 12.3 (95% confidence, 2176 samples) — contract met
// (error 0.9% ≤ 2%, 212ms ≤ 500ms)".
func (r ContractResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — contract %s (", r.Estimate, r.Status)
	c := r.Contract
	sep := ""
	if c.RelError > 0 {
		cmp := "≤"
		if !(r.AchievedRelError <= c.RelError*contractSlack) {
			cmp = ">"
		}
		if math.IsInf(r.AchievedRelError, 1) {
			fmt.Fprintf(&b, "error unbounded, target %.3g%%", c.RelError*100)
		} else {
			fmt.Fprintf(&b, "error %.3g%% %s %.3g%%", r.AchievedRelError*100, cmp, c.RelError*100)
		}
		sep = ", "
	}
	if c.Deadline > 0 {
		cmp := "≤"
		if r.Elapsed > c.Deadline {
			cmp = ">"
		}
		fmt.Fprintf(&b, "%s%v %s %v", sep, r.Elapsed.Round(100*time.Microsecond), cmp, c.Deadline)
	}
	b.WriteString(")")
	return b.String()
}

// Contract planning priors and tolerances. The cold priors are used only
// until the dataset's first queries feed its profile; they affect the
// plan's predictions (Feasible, PredictedMS), never the stopping rule, so
// a wrong prior cannot break a guarantee.
const (
	// contractColdCV is the coefficient-of-variation prior for an
	// unprofiled attribute (a unit-CV population: stddev equal to the
	// mean).
	contractColdCV = 1.0
	// contractColdRateSPMS is the sampling-throughput prior (samples per
	// millisecond) for an unprofiled dataset.
	contractColdRateSPMS = 50.0
	// contractMinDeadline floors QoS-scaled deadlines so an overloaded
	// server still gives every contract query a usable slice.
	contractMinDeadline = 5 * time.Millisecond
	// contractGraceDiv and contractGraceMin define the latency grace
	// (deadline/div + min) an answer may overshoot the deadline by before
	// the contract counts as missed rather than degraded: the evaluator
	// checks the clock between batches, so one in-flight fetch can land
	// past the line.
	contractGraceDiv = 4
	contractGraceMin = 25 * time.Millisecond
	// contractSlack absorbs float rounding when comparing the achieved
	// relative error against the target.
	contractSlack = 1 + 1e-9
	// profileAlpha is the EWMA weight of the newest observation in the
	// per-dataset contract profile.
	profileAlpha = 0.3
)

// contractProfile is a dataset's BlinkDB-style response profile: EWMAs of
// sampling throughput and per-attribute coefficient of variation, fed by
// every completed estimate on the handle. The contract planner reads it to
// predict sample budgets and convergence times; a fresh dataset (zero
// observations) plans from cold priors instead.
type contractProfile struct {
	mu sync.Mutex
	// queries counts profile observations (completed estimates with at
	// least two samples).
	queries int
	// rateSPMS is the EWMA sampling throughput in samples per millisecond.
	rateSPMS float64
	// cv maps attribute name to its EWMA coefficient of variation,
	// reconstructed from each query's final CI (cv ≈ relErr·√k/z). The
	// without-replacement FPC makes this an underestimate at large
	// sampling fractions — acceptable for planning, where the stopping
	// rule, not the prediction, enforces the guarantee.
	cv map[string]float64
}

// observe folds one completed estimate into the profile.
func (p *contractProfile) observe(attr string, confidence float64, e estimator.Estimate, elapsed time.Duration) {
	if e.Samples < 2 {
		return
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	if ms <= 0 {
		return
	}
	rate := float64(e.Samples) / ms
	cv := 0.0
	if !e.Exact && e.Value != 0 && !math.IsInf(e.HalfWidth, 0) {
		if z := stats.ZScore(confidence); z > 0 {
			cv = (e.HalfWidth / math.Abs(e.Value)) * math.Sqrt(float64(e.Samples)) / z
		}
	}
	if math.IsNaN(cv) || math.IsInf(cv, 0) {
		cv = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queries++
	p.rateSPMS = ewma(p.rateSPMS, rate)
	if cv > 0 {
		if p.cv == nil {
			p.cv = make(map[string]float64)
		}
		p.cv[attr] = ewma(p.cv[attr], cv)
	}
}

// snapshot returns the profiled rate, the attribute's CV (0 when the
// attribute has never been profiled) and the observation count.
func (p *contractProfile) snapshot(attr string) (rateSPMS, cv float64, queries int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rateSPMS, p.cv[attr], p.queries
}

// ewma blends a new observation into an exponentially weighted moving
// average; the first observation seeds it directly.
func ewma(old, obs float64) float64 {
	if old == 0 {
		return obs
	}
	return old*(1-profileAlpha) + obs*profileAlpha
}

// validateContract rejects contracts the engine cannot honor.
func validateContract(opts Options, c Contract) error {
	if c.RelError < 0 {
		return fmt.Errorf("engine: contract error target %v is negative", c.RelError)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("engine: contract deadline %v is negative", c.Deadline)
	}
	if c.RelError == 0 && c.Deadline == 0 {
		return fmt.Errorf("engine: empty contract: set an error target, a deadline, or both")
	}
	if c.Confidence != 0 && (c.Confidence <= 0 || c.Confidence >= 1) {
		return fmt.Errorf("engine: contract confidence %v outside (0, 1)", c.Confidence)
	}
	if c.RelError > 0 {
		switch opts.Kind {
		case estimator.Min, estimator.Max, estimator.Median, estimator.Quant:
			return fmt.Errorf("engine: ERROR contracts require a CLT estimator (AVG/SUM/COUNT/VARIANCE/STDDEV), got %v; use a deadline-only contract", opts.Kind)
		}
	}
	return nil
}

// planContract builds the plan for a contract query. Caller holds h.mu
// (read side suffices) and has applied the contract's defaults.
func (h *Handle) planContract(q geo.Rect, opts Options, c Contract) (ContractPlan, error) {
	plan, emptyPred, err := h.planWhere(opts.Where, opts.Pushdown)
	if err != nil {
		return ContractPlan{}, err
	}
	// A LAST window narrows the population the contract must cover:
	// budgets, feasibility and exhaustion all size against the windowed
	// count, so a contract over a fresh 5-minute window is planned for
	// thousands of records, not the dataset's millions.
	q = h.window(opts.Last).Apply(q)
	matching := h.rs.Count(q)
	qual := matching
	switch {
	case emptyPred:
		qual = 0
	case plan != nil:
		// PR 7 selectivity estimate: predicted qualifying fraction of the
		// range matches, from the dataset-level attribute envelope. The
		// execution path computes the exact count; the planner only needs
		// a budget-sizing prediction.
		qual = int(math.Round(float64(matching) * plan.est))
	}
	cp := ContractPlan{Target: c, Qualifying: qual, ReportEvery: minPullBatch, Feasible: true}
	if opts.Kind == estimator.Count || qual == 0 {
		// Exact (or empty) immediately: range counting answers COUNT
		// without sampling.
		cp.Exact = true
		return cp, nil
	}

	rate, cv, profiled := h.prof.snapshot(opts.Attr)
	cp.Cold = profiled == 0 || cv == 0
	if cv == 0 {
		cv = contractColdCV
	}
	if rate == 0 {
		rate = contractColdRateSPMS
	}
	cp.CV, cp.RateSPMS = cv, rate

	if c.RelError > 0 {
		z := stats.ZScore(c.Confidence)
		need := z * cv / c.RelError
		k := int(math.Ceil(need * need))
		if k < minPullBatch {
			k = minPullBatch
		}
		if k >= qual {
			// Without-replacement exhaustion: cheaper to drain the
			// qualifying population exactly.
			k = qual
			cp.Exact = true
		}
		cp.Samples = k
		cp.PredictedMS = float64(k) / rate
		if ms, ok := h.ttciPredict(c.RelError); ok {
			// Cross-check against the per-dataset time-to-CI telemetry
			// (storm.dataset.<name>.ttci.*): take the conservative of the
			// two predictors.
			if ms > cp.PredictedMS {
				cp.PredictedMS = ms
			}
			cp.Cold = false
		}
		cp.PredictedRelError = c.RelError
	}

	if c.Deadline > 0 {
		budgetMS := float64(c.Deadline) / float64(time.Millisecond)
		cp.Budget = int(rate * budgetMS)
		// Exhaustion plans (Exact by draining the qualifying population)
		// are graded too: predicting the drain itself blows the deadline
		// makes the contract just as infeasible as an undersized budget.
		if c.RelError > 0 && cp.Samples > 0 {
			cp.Feasible = cp.PredictedMS <= budgetMS
			if !cp.Feasible && cp.Budget > 1 {
				z := stats.ZScore(c.Confidence)
				cp.PredictedRelError = z * cv / math.Sqrt(float64(cp.Budget))
			}
		}
	}

	// Check the stopping rule often enough to stop near the target but
	// not so often that target checks dominate a long run: ~16 checks
	// before the predicted need, within the engine's batch bounds.
	checkAt := cp.Samples / 16
	if c.RelError == 0 && cp.Budget > 0 {
		checkAt = cp.Budget / 16
	}
	if checkAt < minPullBatch {
		checkAt = minPullBatch
	}
	if checkAt > maxPullBatch {
		checkAt = maxPullBatch
	}
	cp.ReportEvery = checkAt

	if cp.Cold {
		h.eng.met.contractColdPlans.Inc()
	}
	return cp, nil
}

// ttciPredict predicts the time to reach relative error eps from the
// handle's per-dataset time-to-CI milestone histograms: the best-populated
// milestone's mean crossing time, scaled by (relₘ/ε)² (sample need — and
// with it time — grows quadratically as the target tightens). Reports
// ok = false when no milestone has data yet (fresh dataset, or metrics
// disabled).
func (h *Handle) ttciPredict(eps float64) (ms float64, ok bool) {
	if eps <= 0 {
		return 0, false
	}
	best := -1
	var bestCount uint64
	for i, m := range h.dsTTCI {
		if c := m.hist.Snapshot().Count; c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return 0, false
	}
	m := h.dsTTCI[best]
	scale := (m.rel / eps) * (m.rel / eps)
	return m.hist.Snapshot().Mean() * scale, true
}

// ExplainContract returns the contract planner's prediction for a query
// without executing it — the contract-aware EXPLAIN. The plan reports the
// predicted sample budget, throughput, convergence time and feasibility
// verdict; Cold plans came from priors because the dataset has no
// telemetry yet.
func (h *Handle) ExplainContract(q geo.Range, opts Options, c Contract) (ContractPlan, error) {
	opts = opts.withDefaults()
	c = c.withDefaults(opts.Confidence)
	if err := validateContract(opts, c); err != nil {
		return ContractPlan{}, err
	}
	if !q.Valid() {
		return ContractPlan{}, fmt.Errorf("engine: invalid query range %+v", q)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.planContract(q.Rect(), opts, c)
}

// EstimateContract executes an online aggregation query under an
// accuracy/latency contract and returns ONE final answer with its
// guarantee verdict, instead of EstimateOnline's open-ended snapshot
// stream. The planner predicts the sample budget and picks the
// stopping-rule check interval from the dataset's profile and time-to-CI
// telemetry (cold datasets fall back to priors); execution installs the
// contract's error target and deadline as the stopping rule and — for
// distributed datasets — pushes the deadline down to the shard fetch
// boundary, so a slow shard cannot run the query past its budget.
//
// The contract's fields override the corresponding Options fields
// (Confidence, TargetRelError, TimeBudget). Options.MaxSamples is honored
// as an additional cap. The result's counters land in
// storm.engine.contracts.{met,degraded,missed}.
func (h *Handle) EstimateContract(ctx context.Context, q geo.Range, opts Options, c Contract) (ContractResult, error) {
	c = c.withDefaults(opts.Confidence)
	if err := validateContract(opts.withDefaults(), c); err != nil {
		return ContractResult{}, err
	}
	plan, err := h.ExplainContract(q, opts, c)
	if err != nil {
		return ContractResult{}, err
	}
	opts.Confidence = c.Confidence
	opts.TargetRelError = c.RelError
	opts.TimeBudget = c.Deadline
	if opts.ReportEvery == 0 {
		opts.ReportEvery = plan.ReportEvery
	}
	ch, err := h.EstimateOnline(ctx, q, opts)
	if err != nil {
		return ContractResult{}, err
	}
	var last Snapshot
	for s := range ch {
		last = s
	}
	res := ContractResult{
		Snapshot:         last,
		Contract:         c,
		Plan:             plan,
		AchievedRelError: last.RelativeErrorBound(),
	}
	res.Status = contractVerdict(last, c, ctx)
	switch res.Status {
	case ContractMet:
		h.eng.met.contractsMet.Inc()
	case ContractDegraded:
		h.eng.met.contractsDegraded.Inc()
	case ContractMissed:
		h.eng.met.contractsMissed.Inc()
	}
	return res, nil
}

// contractVerdict grades the final snapshot against the contract.
func contractVerdict(s Snapshot, c Contract, ctx context.Context) ContractStatus {
	if !s.Exact && s.Samples < 2 {
		// No usable estimate: the CI is unbounded.
		return ContractMissed
	}
	if c.Deadline > 0 {
		grace := c.Deadline/contractGraceDiv + contractGraceMin
		if s.Elapsed > c.Deadline+grace {
			// The latency bound itself was broken (a stuck fetch, not the
			// accuracy/latency trade the Degraded verdict describes).
			return ContractMissed
		}
	}
	if s.Exact {
		return ContractMet
	}
	if ctx.Err() != nil && (c.Deadline == 0 || s.Elapsed < c.Deadline) {
		// Cancelled before the contract ran its course.
		return ContractMissed
	}
	if c.RelError == 0 {
		// Deadline-only contract: an on-time answer meets it.
		return ContractMet
	}
	if s.RelativeErrorBound() <= c.RelError*contractSlack {
		return ContractMet
	}
	return ContractDegraded
}
