// Package engine is STORM's query and analytics evaluator: it wires the
// sampler, ST-indexing, feature (estimator) and update-manager modules of
// the paper's Figure 2 architecture into online query execution.
//
// A query runs as a loop that pulls one spatial online sample at a time,
// feeds it to an online estimator, and periodically emits Snapshots whose
// confidence intervals tighten over time. The loop terminates when the
// caller's accuracy target is met, the time budget expires, the context is
// cancelled (the user moved on to a different region — the paper's
// interactive-exploration scenario), or the sample is exhausted (the
// estimate is then exact).
//
// # Concurrency
//
// Queries against one Handle run concurrently: each query goroutine holds
// the handle's read lock for its whole run, keeps all mutable state
// (sampler cursors, RNG, estimator, I/O counter) to itself, and only reads
// the shared indexes, which publish their lazy sample buffers
// copy-on-write (see packages rstree and lstree). Insert, Delete and
// DeleteRange take the write lock and therefore serialize against
// in-flight queries; Go's RWMutex blocks new readers once a writer waits,
// so a steady query stream cannot starve updates. Per-query randomness is
// deterministic: a query's seed (explicit or drawn from the engine's
// atomic seed sequence) fully determines its sample stream, independent of
// what other queries run at the same time.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/lstree"
	"storm/internal/obs"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// Method selects the sampling strategy for a query.
type Method int

// Available sampling methods. Auto lets the query optimizer decide.
const (
	Auto Method = iota
	MethodRSTree
	MethodLSTree
	MethodRandomPath
	MethodQueryFirst
	MethodSampleFirst
	// MethodDistributed samples through the dataset's shard cluster
	// coordinator (register with IndexOptions.Shards > 0). The stream is
	// without-replacement only and degrades gracefully on shard loss.
	MethodDistributed
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case MethodRSTree:
		return "rs-tree"
	case MethodLSTree:
		return "ls-tree"
	case MethodRandomPath:
		return "random-path"
	case MethodQueryFirst:
		return "query-first"
	case MethodSampleFirst:
		return "sample-first"
	case MethodDistributed:
		return "distributed"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls engine-wide behaviour.
type Config struct {
	// Seed drives all sampling randomness; a fixed seed makes query
	// results reproducible.
	Seed int64
	// BufferPoolPages sizes the simulated buffer pool shared by all
	// indexes; 0 disables I/O simulation entirely.
	BufferPoolPages int
	// Fanout overrides the index fanout; 0 means rtree.DefaultFanout.
	Fanout int
	// Obs receives the engine's metrics. Nil means the engine creates a
	// private registry (metrics are on by default, retrievable via
	// Engine.Obs); pass a shared registry to merge engine metrics with a
	// server's or benchmark's.
	Obs *obs.Registry
	// NoMetrics disables metric collection entirely: Engine.Obs returns
	// nil and every instrumentation site degrades to a nil check (see
	// package obs). Config.Obs is ignored when set.
	NoMetrics bool
}

// Engine manages datasets, their sampling indexes, and query execution.
type Engine struct {
	mu       sync.RWMutex
	cfg      Config
	datasets map[string]*Handle
	device   *iosim.Device
	seedSeq  int64
	obs      *obs.Registry
	met      *metrics
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, datasets: make(map[string]*Handle)}
	if cfg.BufferPoolPages > 0 {
		e.device = iosim.NewDevice(cfg.BufferPoolPages, iosim.DefaultCostModel())
	}
	if !cfg.NoMetrics {
		e.obs = cfg.Obs
		if e.obs == nil {
			e.obs = obs.NewRegistry()
		}
	}
	e.met = newMetrics(e.obs)
	if e.device != nil {
		// Re-export the shared buffer pool's counters as live gauges:
		// the device owns the numbers, the Funcs read them at scrape
		// time, so nothing is double-counted.
		dev := e.device
		e.obs.PublishFunc("storm.iosim.pool.hits", func() any { return dev.Stats().Hits })
		e.obs.PublishFunc("storm.iosim.pool.misses", func() any { return dev.Stats().Reads })
		e.obs.PublishFunc("storm.iosim.pool.evictions", func() any { return dev.Stats().Evictions })
	}
	return e
}

// Obs returns the engine's metrics registry, or nil when metrics are
// disabled (Config.NoMetrics). The registry serves expvar-format JSON via
// its ServeHTTP — package server mounts it at /metrics.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// Device returns the engine's simulated block device, or nil when I/O
// simulation is disabled.
func (e *Engine) Device() *iosim.Device { return e.device }

// IndexOptions controls which sampling indexes Register builds.
type IndexOptions struct {
	// LSTree additionally builds an LS-tree (the RS-tree is always
	// built: it is the engine's default sampler and range counter).
	LSTree bool
	// Shards additionally builds a simulated distributed cluster with this
	// many shard servers (see package distr); 0 disables. When set, the
	// optimizer prefers MethodDistributed and updates are mirrored into the
	// shard trees.
	Shards int
	// Faults installs a deterministic fault-injection plan on the cluster
	// (ignored without a cluster); nil leaves the cluster healthy. The
	// plan's own Seed field drives the injected fault sequence. Faults are
	// injected at the transport decorator, so the same plan drives
	// simulated and remote clusters identically.
	Faults *distr.FaultPlan
	// ShardAddrs runs the shard cluster remotely instead of simulated:
	// shards are placed on these stormd -role=shard host addresses by
	// consistent hashing and reached over TCP. Each host must already
	// hold a copy of the dataset under the same name (shard hosts
	// regenerate demo datasets from the same generator seed). Shards
	// defaults to len(ShardAddrs) when 0.
	ShardAddrs []string
	// Replicas keeps this many copies of each shard (0 means 1). With
	// R >= 2 the coordinator mirrors updates to every copy and fails
	// queries over to a surviving copy when a shard host dies — snapshots
	// then report failed_over instead of degraded, and answers keep their
	// full population. Ignored without a cluster. See DESIGN.md §4.8.
	Replicas int
}

// Handle is a registered dataset with its indexes. Queries share the
// handle's RWMutex as readers — the indexes publish shared state (RS-tree
// sample buffers) copy-on-write, so any number of queries run in parallel
// against one dataset — while updates (Insert, Delete, DeleteRange) take
// the write side and therefore serialize against in-flight samplers. A
// query holds the read lock for its whole run; Go's RWMutex blocks new
// readers once a writer is waiting, so updates are not starved by a steady
// query stream.
type Handle struct {
	mu   sync.RWMutex
	name string
	ds   *data.Dataset
	rs   *rstree.Index
	ls   *lstree.Index
	// sums maintains the RS-tree's per-node attribute summaries (min/max
	// per numeric column). The planner prunes subtrees and estimates
	// predicate selectivity from them; they are version-keyed, so index
	// updates invalidate exactly the nodes they touch.
	sums *rtree.Summaries
	// cluster is the dataset's simulated shard cluster (IndexOptions.Shards
	// > 0), nil otherwise. Structural mutation is additionally guarded by
	// the cluster's own lock, so queries can fetch from shards while holding
	// only this handle's read lock.
	cluster *distr.Cluster
	eng     *Engine
	// deleted marks records removed from the indexes; the columnar store
	// is append-only, so SampleFirst (which samples the raw store) must
	// filter them out. Guarded by mu: queries read it under RLock, updates
	// write it under Lock.
	deleted map[data.ID]struct{}
	// prof is the dataset's contract profile (sampling throughput and
	// per-attribute CV EWMAs); every completed estimate feeds it and the
	// contract planner reads it. Internally synchronized.
	prof contractProfile
	// dsTTCI holds the dataset's own time-to-CI milestone histograms
	// (storm.dataset.<name>.ttci.*), same thresholds as the engine-wide
	// set; the contract planner extrapolates convergence time from them.
	// Built once at Register, nil with metrics disabled.
	dsTTCI []ttciMilestone
	// wm/wmSet hold the dataset's event-time watermark (float64 bits of
	// the maximum t coordinate ever indexed); `LAST <dur>` windows anchor
	// to it. Lock-free so the streaming ingest path can advance it without
	// the handle lock (see window.go).
	wm    atomic.Uint64
	wmSet atomic.Bool
}

// beginQuery is metrics.beginQuery plus the handle's per-dataset
// time-to-CI milestones, so contract telemetry accrues to the dataset the
// query actually ran on.
func (h *Handle) beginQuery(start time.Time) *queryObs {
	qo := h.eng.met.beginQuery(start)
	qo.ds = h.dsTTCI
	return qo
}

// Register indexes a dataset and makes it queryable. The dataset must not
// be mutated directly afterwards; use Insert/Delete on the handle.
func (e *Engine) Register(ds *data.Dataset, opts IndexOptions) (*Handle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.datasets[ds.Name()]; dup {
		return nil, fmt.Errorf("engine: dataset %q already registered", ds.Name())
	}
	var dev iosim.Accountant = iosim.Discard
	if e.device != nil {
		dev = e.device
	}
	entries := ds.Entries()
	rs, err := rstree.Build(entries, rstree.Config{
		Fanout: e.cfg.Fanout,
		Device: dev,
		Seed:   e.nextSeed(),
	})
	if err != nil {
		return nil, fmt.Errorf("engine: building RS-tree for %q: %w", ds.Name(), err)
	}
	h := &Handle{name: ds.Name(), ds: ds, rs: rs, eng: e, deleted: make(map[data.ID]struct{})}
	for _, en := range entries {
		h.noteTime(en.Pos[2])
	}
	// Bulk-load-time summary build: one tree walk computes every node's
	// attribute digests so the first predicate query pays no lazy
	// recomputation.
	h.sums = rtree.NewSummaries(rs.Tree(), ds)
	h.sums.Precompute()
	if opts.LSTree {
		ls, err := lstree.Build(entries, lstree.Config{
			Fanout: e.cfg.Fanout,
			Device: dev,
			Seed:   e.nextSeed(),
			Attrs:  ds,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: building LS-tree for %q: %w", ds.Name(), err)
		}
		h.ls = ls
	}
	if opts.Shards > 0 || len(opts.ShardAddrs) > 0 {
		cfg := distr.Config{
			Shards:   opts.Shards,
			Replicas: opts.Replicas,
			Fanout:   e.cfg.Fanout,
			Seed:     e.nextSeed(),
			Obs:      e.obs,
			Faults:   opts.Faults,
		}
		var cl *distr.Cluster
		var err error
		if len(opts.ShardAddrs) > 0 {
			cl, err = distr.BuildRemote(ds, cfg, opts.ShardAddrs)
		} else {
			cl, err = distr.Build(ds, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: building cluster for %q: %w", ds.Name(), err)
		}
		h.cluster = cl
	}
	e.datasets[ds.Name()] = h
	// Per-dataset live gauges; torn down by Unregister via the shared
	// name prefix. Publish replaces, so re-registering after Unregister
	// rebinds the Funcs to the new handle.
	prefix := "storm.dataset." + ds.Name() + "."
	e.obs.PublishFunc(prefix+"records", func() any { return h.Len() })
	e.obs.PublishFunc(prefix+"buffer_regens", func() any { return rs.BufferRegens() })
	// Per-dataset convergence telemetry and contract-profile scrape
	// views: the contract planner predicts from these, and operators can
	// watch a dataset warm up. Same prefix, so Unregister tears them
	// down too.
	if e.obs != nil {
		for _, t := range ttciThresholds {
			h.dsTTCI = append(h.dsTTCI, ttciMilestone{rel: t.rel, hist: e.obs.TuningHistogram(prefix+t.short, 0.1, 16)})
		}
	}
	e.obs.PublishFunc(prefix+"contract.rate_spms", func() any {
		rate, _, _ := h.prof.snapshot("")
		return rate
	})
	e.obs.PublishFunc(prefix+"contract.profiled_queries", func() any {
		_, _, n := h.prof.snapshot("")
		return n
	})
	return h, nil
}

// nextSeed derives a fresh deterministic seed; safe for concurrent use.
func (e *Engine) nextSeed() int64 {
	return e.cfg.Seed*1_000_003 + atomic.AddInt64(&e.seedSeq, 1)
}

// Unregister removes a dataset and its indexes from the engine. Queries
// already running against its handle finish normally; new lookups fail.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.datasets[name]
	if !ok {
		return fmt.Errorf("engine: unknown dataset %q", name)
	}
	delete(e.datasets, name)
	e.obs.Unpublish("storm.dataset." + name + ".")
	if h.cluster != nil {
		// Releases the remote cluster's TCP transports; a no-op for
		// simulated clusters.
		h.cluster.Close()
	}
	return nil
}

// Dataset returns the handle for a registered dataset.
func (e *Engine) Dataset(name string) (*Handle, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h, ok := e.datasets[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown dataset %q", name)
	}
	return h, nil
}

// Datasets returns the names of all registered datasets.
func (e *Engine) Datasets() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.datasets))
	for n := range e.datasets {
		names = append(names, n)
	}
	return names
}

// Name returns the dataset name.
func (h *Handle) Name() string { return h.name }

// Data returns the underlying dataset for read access.
func (h *Handle) Data() *data.Dataset { return h.ds }

// Len returns the number of live (indexed) records.
func (h *Handle) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rs.Len()
}

// Count returns |P ∩ q| exactly.
func (h *Handle) Count(q geo.Range) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rs.Count(q.Rect())
}

// Insert appends a record and adds it to every index (the update manager
// path: new data becomes immediately sampleable, the paper's "updates"
// demo component).
func (h *Handle) Insert(row data.Row) data.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.ds.Append(row)
	h.noteTime(row.Pos[2])
	e := data.Entry{ID: id, Pos: row.Pos}
	h.rs.Insert(e)
	if h.ls != nil {
		h.ls.Insert(e)
	}
	if h.cluster != nil {
		h.cluster.Insert(e)
	}
	return id
}

// Delete removes a record from every index; its row remains in the
// columnar store but is no longer reachable by any query. Returns false if
// the record was not indexed.
func (h *Handle) Delete(id data.ID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(id) >= h.ds.Len() {
		return false
	}
	e := data.Entry{ID: id, Pos: h.ds.Pos(id)}
	if !h.rs.Delete(e) {
		return false
	}
	if h.ls != nil {
		h.ls.Delete(e)
	}
	if h.cluster != nil {
		h.cluster.Delete(e)
	}
	h.deleted[id] = struct{}{}
	return true
}

// HasLSTree reports whether the handle has an LS-tree index.
func (h *Handle) HasLSTree() bool { return h.ls != nil }

// Cluster returns the dataset's simulated shard cluster, or nil when the
// dataset was registered without IndexOptions.Shards. Exposed for fault
// diagnostics (Cluster.FaultStats) and benchmarks.
func (h *Handle) Cluster() *distr.Cluster { return h.cluster }

// DeleteRange removes every record inside the range from all indexes and
// returns how many were removed — the update manager's bulk path
// ("DELETE FROM ds WHERE REGION(...)" in the query language).
func (h *Handle) DeleteRange(q geo.Range) (int, error) {
	if !q.Valid() {
		return 0, fmt.Errorf("engine: invalid range %+v", q)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	matches := h.rs.Tree().ReportAll(q.Rect())
	for _, e := range matches {
		h.rs.Delete(e)
		if h.ls != nil {
			h.ls.Delete(e)
		}
		if h.cluster != nil {
			h.cluster.Delete(e)
		}
		h.deleted[e.ID] = struct{}{}
	}
	return len(matches), nil
}

// ioAttributor is implemented by samplers that can charge their page
// accesses through a caller-supplied accountant (per-query attribution).
type ioAttributor interface {
	AttributeIO(iosim.Accountant)
}

// closeSampler releases sampler resources that outlive the pull loop.
// Distributed samplers hold per-shard stream state — server-side state on
// remote shard hosts — that only an explicit close releases; in-process
// samplers have no Close and are left to the GC.
func closeSampler(s sampling.Sampler) {
	if c, ok := s.(interface{ Close() error }); ok {
		c.Close()
	}
}

// newSampler builds a sampler for the query using the requested method;
// Auto applies the optimizer's rules (see choose). A non-nil plan applies
// its WHERE predicate: pushdown plans use the predicate-aware sampler
// variants (node-summary pruning with the acceptance correction that
// keeps samples uniform over qualifying records), rejection plans wrap
// the plain sampler in sampling.Filtered. When I/O simulation is enabled,
// the sampler is wired to a fresh per-query iosim.Counter that forwards
// to the shared device, so each concurrent query's I/O is attributed
// race-free; the returned counter is nil otherwise. Caller holds h.mu
// (read side suffices).
func (h *Handle) newSampler(method Method, q geo.Rect, mode sampling.Mode, rng *stats.RNG, plan *wherePlan) (sampling.Sampler, *iosim.Counter, error) {
	if method == Auto {
		method = h.choose(q)
	}
	var dev iosim.Accountant = iosim.Discard
	var ctr *iosim.Counter
	if h.eng.device != nil {
		ctr = iosim.NewCounter(h.eng.device)
		dev = ctr
	}
	attach := func(s sampling.Sampler) (sampling.Sampler, *iosim.Counter, error) {
		if ctr != nil {
			if a, ok := s.(ioAttributor); ok {
				a.AttributeIO(ctr)
			}
		}
		return s, ctr, nil
	}
	switch method {
	case MethodDistributed:
		if h.cluster == nil {
			return nil, nil, fmt.Errorf("engine: dataset %q has no shard cluster (register with IndexOptions.Shards)", h.name)
		}
		if mode == sampling.WithReplacement {
			return nil, nil, fmt.Errorf("engine: distributed sampling supports without-replacement only")
		}
		if plan != nil {
			// plan.win (the resolved LAST window) rides to the shards with
			// the predicate terms; a window-only plan has nil terms.
			return attach(h.cluster.SamplerWindow(q, plan.terms, plan.win))
		}
		return attach(h.cluster.Sampler(q))
	case MethodRSTree:
		if plan.usePushdown() {
			return attach(h.rs.SamplerWhere(q, mode, rng, plan.treeFilter(h.sums)))
		}
		return attach(plan.reject(h.rs.Sampler(q, mode, rng)))
	case MethodLSTree:
		if h.ls == nil {
			return nil, nil, fmt.Errorf("engine: dataset %q has no LS-tree (register with IndexOptions.LSTree)", h.name)
		}
		if mode == sampling.WithReplacement {
			return nil, nil, fmt.Errorf("engine: LS-tree supports without-replacement sampling only")
		}
		if plan.usePushdown() {
			return attach(h.ls.SamplerWhere(q, rng, plan.compiled))
		}
		return attach(plan.reject(h.ls.Sampler(q, rng)))
	case MethodRandomPath:
		if plan.usePushdown() {
			return attach(sampling.NewRandomPathWhere(h.rs.Tree(), q, mode, rng, plan.treeFilter(h.sums)))
		}
		return attach(plan.reject(sampling.NewRandomPath(h.rs.Tree(), q, mode, rng)))
	case MethodQueryFirst:
		if plan.usePushdown() {
			return attach(sampling.NewQueryFirstWhere(h.rs.Tree(), q, mode, rng, plan.treeFilter(h.sums)))
		}
		return attach(plan.reject(sampling.NewQueryFirst(h.rs.Tree(), q, mode, rng)))
	case MethodSampleFirst:
		sf := sampling.NewSampleFirst(h.ds, q, mode, rng, dev, h.rs.Tree().Fanout())
		if plan != nil {
			// SampleFirst is itself a rejection loop over the raw store;
			// the predicate joins its accept test (with the degraded-scan
			// fallback when acceptance collapses).
			sf.Pred = plan.compiled
		}
		if len(h.deleted) > 0 {
			sf.Filter = func(id data.ID) bool {
				_, gone := h.deleted[id]
				return !gone
			}
		}
		return sf, ctr, nil
	default:
		return nil, nil, fmt.Errorf("engine: unknown method %v", method)
	}
}

// Plan describes what the query optimizer would do for a range — the
// EXPLAIN output of the query language.
type Plan struct {
	// Dataset and N identify the input.
	Dataset string
	N       int
	// Matching is q = |P ∩ Q| and Selectivity is q/N.
	Matching    int
	Selectivity float64
	// Method is the sampler the optimizer picks for Auto.
	Method Method
	// CanonicalSize is r(N), the number of canonical parts of the range.
	CanonicalSize int
	// TreeHeight is the RS-tree's height.
	TreeHeight int
	// Where is the canonical form of the query's WHERE predicate; empty
	// without one.
	Where string
	// Qualifying is |P ∩ q ∩ σ|, the records satisfying both the range
	// and the predicate (equals Matching without a predicate).
	Qualifying int
	// WhereSelectivity is the planner's estimated fraction of range
	// matches satisfying the predicate (1 without one).
	WhereSelectivity float64
	// Pushdown reports whether the planner chose node-summary pruning
	// over the rejection baseline for the predicate.
	Pushdown bool
}

// Explain returns the optimizer's plan for a range without executing it.
func (h *Handle) Explain(q geo.Range) (Plan, error) {
	return h.ExplainWhere(q, nil, PushdownAuto)
}

// choose implements the query optimizer's method selection rules
// (paper §3.2): tiny results are cheapest to report outright; queries
// covering most of the data sample efficiently straight from the raw file;
// everything else uses the RS-tree. A dataset registered with a shard
// cluster is sampled through its coordinator — that is the deployment the
// operator asked for, and the only path with graceful shard-loss
// degradation.
func (h *Handle) choose(q geo.Rect) Method {
	if h.cluster != nil {
		return MethodDistributed
	}
	n := h.rs.Len()
	if n == 0 {
		return MethodRSTree
	}
	cnt := h.rs.Count(q)
	switch {
	case cnt <= 2*h.rs.Tree().Fanout():
		return MethodQueryFirst
	case float64(cnt)/float64(n) >= 0.5:
		return MethodSampleFirst
	default:
		return MethodRSTree
	}
}
