package engine

import (
	"context"
	"math"
	"testing"

	"storm/internal/estimator"
	"storm/internal/pred"
)

func TestPlanWhereStrategy(t *testing.T) {
	_, h := buildHandle(t, 10000, false)
	inf := math.Inf(1)

	// No predicate, or one every record satisfies, plans to nil — the
	// path where pushdown can never lose to rejection.
	if plan, empty, err := h.planWhere(nil, PushdownAuto); plan != nil || empty || err != nil {
		t.Fatalf("nil terms: (%v, %v, %v)", plan, empty, err)
	}
	allPass := []pred.Term{{Attr: "value", Lo: math.Inf(-1), Hi: inf}}
	if plan, empty, err := h.planWhere(allPass, PushdownAuto); plan != nil || empty || err != nil {
		t.Fatalf("all-pass predicate should drop: (%v, %v, %v)", plan, empty, err)
	}
	// One no record can satisfy is proven empty from the root digests.
	if plan, empty, err := h.planWhere([]pred.Term{{Attr: "value", Lo: 1e9, Hi: inf}}, PushdownAuto); plan != nil || !empty || err != nil {
		t.Fatalf("impossible predicate: (%v, %v, %v)", plan, empty, err)
	}
	if _, _, err := h.planWhere([]pred.Term{{Attr: "nope", Lo: 0, Hi: 1}}, PushdownAuto); err == nil {
		t.Fatal("unknown attribute should error")
	}

	// Auto picks by estimated selectivity; Force/Off override it.
	narrow := []pred.Term{{Attr: "value", Lo: 99, Hi: 101}}
	broad := []pred.Term{{Attr: "value", Lo: 25, Hi: inf}}
	if plan, _, _ := h.planWhere(narrow, PushdownAuto); plan == nil || !plan.pushdown {
		t.Fatalf("narrow slab should push down: %+v", plan)
	}
	if plan, _, _ := h.planWhere(broad, PushdownAuto); plan == nil || plan.pushdown {
		t.Fatalf("broad predicate should run as rejection: %+v", plan)
	}
	if plan, _, _ := h.planWhere(broad, PushdownForce); !plan.usePushdown() {
		t.Fatal("PushdownForce ignored")
	}
	if plan, _, _ := h.planWhere(narrow, PushdownOff); plan.usePushdown() {
		t.Fatal("PushdownOff ignored")
	}
}

func TestExplainWhere(t *testing.T) {
	_, h := buildHandle(t, 10000, false)
	terms := []pred.Term{{Attr: "value", Lo: 99, Hi: 101}}
	plan, err := h.ExplainWhere(testRange, terms, PushdownAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Where != "value >= 99 AND value <= 101" {
		t.Errorf("Where = %q", plan.Where)
	}
	if !plan.Pushdown {
		t.Error("narrow slab should plan as pushdown")
	}
	if plan.Qualifying <= 0 || plan.Qualifying >= plan.Matching {
		t.Errorf("qualifying = %d of %d matching", plan.Qualifying, plan.Matching)
	}
	if plan.WhereSelectivity <= 0 || plan.WhereSelectivity >= 1 {
		t.Errorf("where selectivity = %v", plan.WhereSelectivity)
	}
	// No predicate behaves exactly like Explain.
	bare, err := h.ExplainWhere(testRange, nil, PushdownAuto)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Where != "" || bare.Pushdown || bare.Qualifying != bare.Matching || bare.WhereSelectivity != 1 {
		t.Errorf("bare plan = %+v", bare)
	}
}

func TestEstimateWithWhere(t *testing.T) {
	_, h := buildHandle(t, 10000, false)
	terms := []pred.Term{{Attr: "value", Lo: 99, Hi: 101}}
	qual, truth := qualifyingIDs(h, testRange.Rect(), 99, 101)
	if len(qual) < 30 {
		t.Fatal("degenerate fixture")
	}

	// Exhaustion over the qualifying set is exact over the qualifying set.
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Where: terms,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || snap.Samples != len(qual) {
		t.Fatalf("exhausted WHERE query: %+v, want %d exact samples", snap, len(qual))
	}
	if math.Abs(snap.Value-truth) > 1e-9 {
		t.Errorf("exact value %v != qualifying truth %v", snap.Value, truth)
	}

	// COUNT with a predicate stays exact and immediate via pruned counting.
	cnt, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Count, Where: terms})
	if err != nil {
		t.Fatal(err)
	}
	if !cnt.Exact || int(cnt.Value) != len(qual) || cnt.Method != "range-count" {
		t.Errorf("count = %+v, want exact %d", cnt, len(qual))
	}

	// The rejection baseline reports its waste: at ~4% selectivity nearly
	// every raw draw is discarded, so the snapshot's reject ratio must be
	// close to one rejection per draw. The pushdown run must still finish
	// on the same qualifying stream (gen.Uniform's value is spatially
	// uncorrelated, so node digests prune little here — the A10 bench
	// covers the correlated case where pruning collapses the waste).
	rej, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Where: terms,
		Pushdown: PushdownOff, MaxSamples: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rej.RejectRatio < 0.5 {
		t.Errorf("rejection at ~4%% selectivity reported reject ratio %v", rej.RejectRatio)
	}
	push, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Where: terms,
		Pushdown: PushdownForce, MaxSamples: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !push.Done || push.Samples != 50 {
		t.Errorf("pushdown run: %+v", push)
	}

	// An impossible predicate terminates immediately and empty.
	empty, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value",
		Where: []pred.Term{{Attr: "value", Lo: 1e9, Hi: math.Inf(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Done || empty.Samples != 0 {
		t.Errorf("impossible predicate snapshot = %+v", empty)
	}

	// A bad predicate surfaces as a terminal error snapshot.
	bad, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value",
		Where: []pred.Term{{Attr: "nope", Lo: 0, Hi: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Done || bad.Samples != 0 {
		t.Errorf("bad predicate snapshot = %+v", bad)
	}
}
