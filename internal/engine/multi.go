package engine

import (
	"context"
	"fmt"
	"time"

	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// AggSpec names one aggregate of a multi-aggregate query.
type AggSpec struct {
	Kind estimator.Kind
	Attr string
	// QuantileP applies to Kind == Quant.
	QuantileP float64
}

// MultiSnapshot is one progress report of a multi-aggregate query: all
// estimates are computed from the same sample stream, so they are mutually
// consistent (the paper's introduction reports "973 kWh with a standard
// deviation of 25 kWh" — one sample, two statistics).
type MultiSnapshot struct {
	Estimates []estimator.Estimate
	Elapsed   time.Duration
	Samples   int
	Method    string
	Done      bool
}

// multiAgg adapts the two estimator families behind one interface.
type multiAgg interface {
	add(x float64)
	snapshot(population, samples int, withoutRep bool) estimator.Estimate
}

type meanAgg struct{ est *estimator.Estimator }

func (a meanAgg) add(x float64) { a.est.Add(x) }
func (a meanAgg) snapshot(_, _ int, _ bool) estimator.Estimate {
	return a.est.Snapshot()
}

type quantAgg struct {
	kind estimator.Kind
	qe   *estimator.Quantile
}

func (a quantAgg) add(x float64) { a.qe.Add(x) }
func (a quantAgg) snapshot(population, samples int, withoutRep bool) estimator.Estimate {
	snap := a.qe.Snapshot()
	hw := snap.Hi - snap.Value
	if lo := snap.Value - snap.Lo; lo > hw {
		hw = lo
	}
	exhausted := withoutRep && samples >= population
	if exhausted {
		hw = 0
	}
	return estimator.Estimate{
		Kind:       a.kind,
		Value:      snap.Value,
		HalfWidth:  hw,
		Confidence: snap.Confidence,
		Samples:    snap.Samples,
		Population: population,
		Exact:      exhausted,
	}
}

// EstimateMultiOnline runs several aggregates over one shared sample
// stream, streaming joint snapshots. All specs must reference numeric
// columns; COUNT is excluded (it is exact and free — use Count).
func (h *Handle) EstimateMultiOnline(ctx context.Context, q geo.Range, specs []AggSpec, opts Options) (<-chan MultiSnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("engine: no aggregates requested")
	}
	for i, spec := range specs {
		if spec.Kind == estimator.Count {
			return nil, fmt.Errorf("engine: COUNT is exact; use Handle.Count")
		}
		if spec.Attr == "" {
			return nil, fmt.Errorf("engine: aggregate %d (%v) missing an attribute", i, spec.Kind)
		}
		h.mu.RLock()
		_, err := h.ds.NumericColumn(spec.Attr)
		h.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}

	out := make(chan MultiSnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()

		// Re-fetched under the query's lock (see EstimateOnline).
		cols := make([][]float64, len(specs))
		for i, spec := range specs {
			cols[i], _ = h.ds.NumericColumn(spec.Attr)
		}
		population := h.rs.Count(q.Rect())
		withoutRep := opts.Mode == sampling.WithoutReplacement
		aggs := make([]multiAgg, len(specs))
		for i, spec := range specs {
			switch spec.Kind {
			case estimator.Median, estimator.Quant:
				p := spec.QuantileP
				if spec.Kind == estimator.Median {
					p = 0.5
				}
				qe, err := estimator.NewQuantile(p, opts.Confidence)
				if err != nil {
					out <- MultiSnapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
					return
				}
				aggs[i] = quantAgg{kind: spec.Kind, qe: qe}
			default:
				est, err := estimator.New(spec.Kind, opts.Confidence, population, withoutRep)
				if err != nil {
					out <- MultiSnapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
					return
				}
				aggs[i] = meanAgg{est: est}
			}
		}

		emit := func(samples int, method string, done bool) bool {
			snap := MultiSnapshot{
				Estimates: make([]estimator.Estimate, len(aggs)),
				Elapsed:   time.Since(start),
				Samples:   samples,
				Method:    method,
				Done:      done,
			}
			for i, a := range aggs {
				snap.Estimates[i] = a.snapshot(population, samples, withoutRep)
			}
			select {
			case out <- snap:
				return true
			case <-ctx.Done():
				return false
			}
		}

		if population == 0 {
			emit(0, "empty", true)
			return
		}
		seed := opts.Seed
		if seed == 0 {
			seed = h.eng.nextSeed()
		}
		sampler, _, err := h.newSampler(opts.Method, q.Rect(), opts.Mode, stats.NewRNG(seed), nil)
		if err != nil {
			out <- MultiSnapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
			return
		}
		defer closeSampler(sampler)
		var deadline time.Time
		if opts.TimeBudget > 0 {
			deadline = start.Add(opts.TimeBudget)
		}
		k := 0
		for {
			select {
			case <-ctx.Done():
				emit(k, sampler.Name(), true)
				return
			default:
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				emit(k, sampler.Name(), true)
				return
			}
			e, ok := sampler.Next()
			if !ok {
				emit(k, sampler.Name(), true)
				return
			}
			for i, a := range aggs {
				a.add(cols[i][e.ID])
			}
			k++
			if k%opts.ReportEvery == 0 {
				if !emit(k, sampler.Name(), false) {
					return
				}
			}
			if opts.MaxSamples > 0 && k >= opts.MaxSamples {
				emit(k, sampler.Name(), true)
				return
			}
		}
	}()
	return out, nil
}

// EstimateMulti runs EstimateMultiOnline to completion and returns the
// final joint snapshot.
func (h *Handle) EstimateMulti(ctx context.Context, q geo.Range, specs []AggSpec, opts Options) (MultiSnapshot, error) {
	ch, err := h.EstimateMultiOnline(ctx, q, specs, opts)
	if err != nil {
		return MultiSnapshot{}, err
	}
	var last MultiSnapshot
	for s := range ch {
		last = s
	}
	return last, nil
}
