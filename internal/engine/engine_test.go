package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/sampling"
)

func buildHandle(t testing.TB, n int, lstree bool) (*Engine, *Handle) {
	t.Helper()
	e := New(Config{Seed: 42, Fanout: 32})
	ds := gen.Uniform(n, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	h, err := e.Register(ds, IndexOptions{LSTree: lstree})
	if err != nil {
		t.Fatal(err)
	}
	return e, h
}

var testRange = geo.Range{MinX: 20, MinY: 20, MaxX: 60, MaxY: 60, MinT: 0, MaxT: 100}

func trueMean(h *Handle, q geo.Range, attr string) (float64, int) {
	col, _ := h.Data().NumericColumn(attr)
	rect := q.Rect()
	var sum float64
	var cnt int
	for i := 0; i < h.Data().Len(); i++ {
		if rect.Contains(h.Data().Pos(uint64(i))) {
			sum += col[i]
			cnt++
		}
	}
	return sum / float64(cnt), cnt
}

func TestRegisterValidation(t *testing.T) {
	e := New(Config{Seed: 1})
	ds := gen.Uniform(100, 1, geo.SpatialRange(0, 0, 1, 1))
	if _, err := e.Register(ds, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(ds, IndexOptions{}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := e.Dataset("uniform"); err != nil {
		t.Error("registered dataset not found")
	}
	if _, err := e.Dataset("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	if len(e.Datasets()) != 1 {
		t.Errorf("datasets = %v", e.Datasets())
	}
}

func TestEstimateConvergesToExact(t *testing.T) {
	_, h := buildHandle(t, 20000, true)
	want, cnt := trueMean(h, testRange, "value")
	if cnt == 0 {
		t.Fatal("degenerate fixture")
	}
	// Run to exhaustion: the estimate must be exact.
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done || !snap.Exact {
		t.Fatalf("exhausted query should be exact: %+v", snap)
	}
	if math.Abs(snap.Value-want) > 1e-9 {
		t.Errorf("exact value %v != truth %v", snap.Value, want)
	}
	if snap.Samples != cnt {
		t.Errorf("samples %d != population %d", snap.Samples, cnt)
	}
}

func TestEstimateTargetRelError(t *testing.T) {
	_, h := buildHandle(t, 50000, false)
	want, cnt := trueMean(h, testRange, "value")
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", TargetRelError: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Samples >= cnt {
		t.Errorf("target-bounded query used the whole population (%d)", snap.Samples)
	}
	if snap.RelativeErrorBound() > 0.011 && !snap.Exact {
		t.Errorf("terminated with rel error bound %v > target", snap.RelativeErrorBound())
	}
	// The CI must actually cover the truth here (no strict guarantee,
	// but with 95% confidence a failure at this seed means a bug).
	if math.Abs(snap.Value-want) > 2*snap.HalfWidth+1e-9 {
		t.Errorf("estimate %v ± %v far from truth %v", snap.Value, snap.HalfWidth, want)
	}
}

func TestEstimateOnlineStreamsImprovingSnapshots(t *testing.T) {
	_, h := buildHandle(t, 30000, false)
	ch, err := h.EstimateOnline(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 2000, ReportEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for s := range ch {
		snaps = append(snaps, s)
	}
	if len(snaps) < 10 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if !snaps[len(snaps)-1].Done {
		t.Error("last snapshot must be Done")
	}
	// Half-widths shrink overall (compare first reported vs last).
	first := snaps[0]
	last := snaps[len(snaps)-1]
	if last.HalfWidth >= first.HalfWidth {
		t.Errorf("CI did not shrink: %v -> %v", first.HalfWidth, last.HalfWidth)
	}
	if last.Samples != 2000 {
		t.Errorf("final samples = %d", last.Samples)
	}
}

func TestEstimateCancellation(t *testing.T) {
	_, h := buildHandle(t, 30000, false)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := h.EstimateOnline(ctx, testRange, Options{
		Kind: estimator.Avg, Attr: "value", ReportEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for s := range ch {
		n++
		if n == 3 {
			cancel()
		}
		if s.Done {
			break
		}
	}
	// Channel closes promptly after cancellation; a second query can run.
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 100,
	})
	if err != nil || !snap.Done {
		t.Fatalf("query after cancel: %+v, %v", snap, err)
	}
}

func TestCountQueryIsExactAndImmediate(t *testing.T) {
	_, h := buildHandle(t, 10000, false)
	_, cnt := trueMean(h, testRange, "value")
	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Count})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || int(snap.Value) != cnt {
		t.Errorf("count = %+v, want %d", snap, cnt)
	}
}

func TestSumQuery(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	col, _ := h.Data().NumericColumn("value")
	rect := testRange.Rect()
	var want float64
	for i := 0; i < h.Data().Len(); i++ {
		if rect.Contains(h.Data().Pos(uint64(i))) {
			want += col[i]
		}
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Sum, Attr: "value", MaxSamples: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Value-want)/want > 0.05 {
		t.Errorf("sum estimate %v vs truth %v", snap.Value, want)
	}
}

func TestEmptyRangeQueries(t *testing.T) {
	_, h := buildHandle(t, 1000, false)
	empty := geo.Range{MinX: -10, MinY: -10, MaxX: -5, MaxY: -5, MinT: 0, MaxT: 1}
	snap, err := h.Estimate(context.Background(), empty, Options{Kind: estimator.Avg, Attr: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done || snap.Samples != 0 {
		t.Errorf("empty range snapshot = %+v", snap)
	}
}

func TestInvalidOptions(t *testing.T) {
	_, h := buildHandle(t, 100, false)
	if _, err := h.EstimateOnline(context.Background(), testRange, Options{Kind: estimator.Avg}); err == nil {
		t.Error("missing attr should error")
	}
	if _, err := h.EstimateOnline(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "nope"}); err == nil {
		t.Error("unknown attr should error")
	}
	bad := geo.Range{MinX: 5, MaxX: 1}
	if _, err := h.EstimateOnline(context.Background(), bad, Options{Kind: estimator.Count}); err == nil {
		t.Error("invalid range should error")
	}
}

func TestMethodSelection(t *testing.T) {
	_, h := buildHandle(t, 20000, true)
	for _, m := range []Method{MethodRSTree, MethodLSTree, MethodRandomPath, MethodQueryFirst, MethodSampleFirst} {
		snap, err := h.Estimate(context.Background(), testRange, Options{
			Kind: estimator.Avg, Attr: "value", MaxSamples: 500, Method: m,
		})
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if snap.Samples != 500 {
			t.Errorf("method %v: samples = %d", m, snap.Samples)
		}
	}
	// LS-tree without the index errors cleanly.
	_, h2 := buildHandle(t, 1000, false)
	if _, err := h2.Sample(testRange, 10, MethodLSTree, sampling.WithoutReplacement, 1); err == nil {
		t.Error("LS-tree sampling without an LS-tree should error")
	}
}

func TestOptimizerChoices(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	// Tiny result → QueryFirst.
	tiny := geo.Range{MinX: 50, MinY: 50, MaxX: 50.5, MaxY: 50.5, MinT: 0, MaxT: 100}
	if m := h.choose(tiny.Rect()); m != MethodQueryFirst {
		t.Errorf("tiny query chose %v", m)
	}
	// Whole-data query → SampleFirst.
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}
	if m := h.choose(all.Rect()); m != MethodSampleFirst {
		t.Errorf("whole-data query chose %v", m)
	}
	// Selective-but-not-tiny → RS-tree.
	if m := h.choose(testRange.Rect()); m != MethodRSTree {
		t.Errorf("selective query chose %v", m)
	}
}

func TestSampleAPI(t *testing.T) {
	_, h := buildHandle(t, 5000, false)
	got, err := h.Sample(testRange, 100, Auto, sampling.WithoutReplacement, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("samples = %d", len(got))
	}
	rect := testRange.Rect()
	seen := make(map[data.ID]bool)
	for _, e := range got {
		if !rect.Contains(e.Pos) {
			t.Fatal("sample outside range")
		}
		if seen[e.ID] {
			t.Fatal("duplicate sample")
		}
		seen[e.ID] = true
	}
}

func TestInsertDeleteThroughHandle(t *testing.T) {
	_, h := buildHandle(t, 2000, true)
	before := h.Count(testRange)
	id := h.Insert(data.Row{
		Pos: geo.Vec{40, 40, 50},
		Num: map[string]float64{"value": 12345},
	})
	if h.Count(testRange) != before+1 {
		t.Error("insert not visible to count")
	}
	// The inserted record is sampleable.
	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		samples, err := h.Sample(geo.Range{MinX: 39.9, MinY: 39.9, MaxX: 40.1, MaxY: 40.1, MinT: 0, MaxT: 100},
			1000, Auto, sampling.WithoutReplacement, int64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range samples {
			if e.ID == id {
				found = true
			}
		}
	}
	if !found {
		t.Error("inserted record never sampled")
	}
	if !h.Delete(id) {
		t.Fatal("delete failed")
	}
	if h.Count(testRange) != before {
		t.Error("delete not visible to count")
	}
	if h.Delete(id) {
		t.Error("double delete should fail")
	}
	if h.Delete(data.ID(999999)) {
		t.Error("deleting unknown id should fail")
	}
}

func TestTimeBudget(t *testing.T) {
	_, h := buildHandle(t, 50000, false)
	start := time.Now()
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", TimeBudget: 30 * time.Millisecond,
		Method: MethodRandomPath, // slow enough not to exhaust instantly
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Errorf("budgeted query ran %v", elapsed)
	}
	if !snap.Done {
		t.Error("budgeted query must finish Done")
	}
}

func TestKDEOnline(t *testing.T) {
	e := New(Config{Seed: 5})
	ds, _ := gen.Tweets(gen.TweetsConfig{N: 20000, Users: 100, Seed: 11})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Range{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50, MinT: 0, MaxT: 30 * 86400}
	ch, err := h.KDEOnline(context.Background(), q, KDEOptions{Nx: 16, Ny: 16},
		AnalyticOptions{MaxSamples: 1000, ReportEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	var last KDESnapshot
	n := 0
	for s := range ch {
		last = s
		n++
	}
	if n < 5 || !last.Done {
		t.Fatalf("kde snapshots = %d, done = %v", n, last.Done)
	}
	if last.Map.Samples != 1000 {
		t.Errorf("samples = %d", last.Map.Samples)
	}
	if last.Map.MaxDensity() <= 0 {
		t.Error("density map empty")
	}
}

func TestTermsOnline(t *testing.T) {
	e := New(Config{Seed: 6})
	ds, _ := gen.Tweets(gen.TweetsConfig{N: 30000, Users: 200, Seed: 13, Snowstorm: true})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	atlanta := geo.Range{MinX: -85.4, MinY: 32.7, MaxX: -83.4, MaxY: 34.7,
		MinT: 10 * 86400, MaxT: 13 * 86400}
	ch, err := h.TermsOnline(context.Background(), atlanta, "text", 10,
		AnalyticOptions{MaxSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	var last TermsSnapshot
	for s := range ch {
		last = s
	}
	if !last.Done || last.Terms == nil {
		t.Fatal("no final terms snapshot")
	}
	// Snowstorm vocabulary must dominate the Atlanta window.
	snowVocab := map[string]bool{"snow": true, "ice": true, "outage": true,
		"shit": true, "hell": true, "why": true, "stuck": true, "cold": true,
		"power": true, "roads": true, "closed": true, "storm": true,
		"frozen": true, "cancelled": true}
	hits := 0
	for _, term := range last.Terms.Top {
		if snowVocab[term.Text] {
			hits++
		}
	}
	if hits < len(last.Terms.Top)*7/10 {
		t.Errorf("only %d/%d top terms are snowstorm vocabulary: %v", hits, len(last.Terms.Top), last.Terms.Top)
	}
	if last.Terms.Sentiment >= 0 {
		t.Errorf("sentiment %v should be negative during the storm", last.Terms.Sentiment)
	}
	if _, err := h.TermsOnline(context.Background(), atlanta, "nope", 10, AnalyticOptions{}); err == nil {
		t.Error("unknown text column should error")
	}
}

func TestTrajectoryOnline(t *testing.T) {
	e := New(Config{Seed: 7})
	ds, truth := gen.Tweets(gen.TweetsConfig{N: 20000, Users: 20, Seed: 17})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the most active user.
	var user string
	best := 0
	for u, path := range truth {
		if len(path) > best {
			user, best = u, len(path)
		}
	}
	q := geo.Range{MinX: -130, MinY: 20, MaxX: -60, MaxY: 55, MinT: 0, MaxT: 30 * 86400}
	ch, err := h.TrajectoryOnline(context.Background(), q, "user", user, 0,
		AnalyticOptions{MaxSamples: best / 2, ReportEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	var last TrajectorySnapshot
	for s := range ch {
		last = s
	}
	if !last.Done || last.Path.Samples == 0 {
		t.Fatalf("trajectory empty: %+v", last)
	}
	// All reconstructed points belong to the user's true path.
	truthSet := make(map[geo.Vec]bool, len(truth[user]))
	for _, p := range truth[user] {
		truthSet[p] = true
	}
	for _, p := range last.Path.Points() {
		if !truthSet[p] {
			t.Fatalf("reconstructed point %v not on the user's true path", p)
		}
	}
}

func TestClusterOnline(t *testing.T) {
	_, h := buildHandle(t, 10000, false)
	ch, err := h.ClusterOnline(context.Background(), testRange, 3,
		AnalyticOptions{MaxSamples: 600})
	if err != nil {
		t.Fatal(err)
	}
	var last ClusterSnapshot
	for s := range ch {
		last = s
	}
	if !last.Done || len(last.Clustering.Clusters) != 3 {
		t.Fatalf("clustering = %+v", last.Clustering)
	}
	if _, err := h.ClusterOnline(context.Background(), testRange, 0, AnalyticOptions{}); err == nil {
		t.Error("k=0 should error")
	}
}

func TestMedianQuery(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	// Collect exact median of the matching values.
	col, _ := h.Data().NumericColumn("value")
	rect := testRange.Rect()
	var vals []float64
	for i := 0; i < h.Data().Len(); i++ {
		if rect.Contains(h.Data().Pos(uint64(i))) {
			vals = append(vals, col[i])
		}
	}
	sort.Float64s(vals)
	trueMedian := vals[len(vals)/2]

	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Median, Attr: "value", MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done || snap.Kind != estimator.Median {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Values are N(100, 20): the median estimate should be within ~1.5.
	if math.Abs(snap.Value-trueMedian) > 1.5 {
		t.Errorf("median %v vs truth %v", snap.Value, trueMedian)
	}
	if snap.HalfWidth <= 0 || math.IsInf(snap.HalfWidth, 1) {
		t.Errorf("median CI = %v", snap.HalfWidth)
	}
}

func TestQuantileQuery(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Quant, QuantileP: 0.9, Attr: "value", MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// P90 of N(100, 20) ≈ 100 + 1.28×20 ≈ 125.6.
	if math.Abs(snap.Value-125.6) > 3 {
		t.Errorf("p90 = %v, want ~125.6", snap.Value)
	}
	// Exhaustion makes it exact.
	exact, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Median, Attr: "value",
	})
	if err != nil || !exact.Exact {
		t.Errorf("exhausted median: %+v, %v", exact, err)
	}
	// Validation.
	if _, err := h.EstimateOnline(context.Background(), testRange, Options{
		Kind: estimator.Quant, Attr: "value", QuantileP: 1.5,
	}); err == nil {
		t.Error("p out of range should error")
	}
}

func TestVarianceQuery(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Stddev, Attr: "value", MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Value-20) > 2 {
		t.Errorf("stddev = %v, want ~20", snap.Value)
	}
}

func TestGroupByOnline(t *testing.T) {
	e := New(Config{Seed: 21})
	ds := gen.Stations(gen.StationsConfig{Stations: 10, ReadingsPerStation: 200, Seed: 21})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all := geo.Range{MinX: -130, MinY: 20, MaxX: -60, MaxY: 55, MinT: 0, MaxT: 1e9}
	ch, err := h.GroupByOnline(context.Background(), all, "temp", "station", Options{MaxSamples: 1500})
	if err != nil {
		t.Fatal(err)
	}
	var last GroupsSnapshot
	for s := range ch {
		last = s
	}
	if !last.Done || len(last.Groups) != 10 {
		t.Fatalf("groups = %d (done=%v)", len(last.Groups), last.Done)
	}
	// Every group's estimate should be near its station's true mean.
	temps, _ := ds.NumericColumn("temp")
	stations, _ := ds.StringColumn("station")
	sums := map[string]float64{}
	counts := map[string]int{}
	for i := range temps {
		sums[stations[i]] += temps[i]
		counts[stations[i]]++
	}
	for _, g := range last.Groups {
		truth := sums[g.Key] / float64(counts[g.Key])
		if math.Abs(g.Value-truth) > 2 {
			t.Errorf("group %s: estimate %v vs truth %v", g.Key, g.Value, truth)
		}
	}
	// Non-AVG group-by is rejected.
	if _, err := h.GroupByOnline(context.Background(), all, "temp", "station", Options{Kind: estimator.Sum}); err == nil {
		t.Error("SUM group-by should be rejected")
	}
	if _, err := h.GroupByOnline(context.Background(), all, "nope", "station", Options{}); err == nil {
		t.Error("unknown attr should error")
	}
	if _, err := h.GroupByOnline(context.Background(), all, "temp", "nope", Options{}); err == nil {
		t.Error("unknown group column should error")
	}
}

func TestEstimateMulti(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	specs := []AggSpec{
		{Kind: estimator.Avg, Attr: "value"},
		{Kind: estimator.Stddev, Attr: "value"},
		{Kind: estimator.Median, Attr: "value"},
		{Kind: estimator.Quant, Attr: "value", QuantileP: 0.9},
	}
	snap, err := h.EstimateMulti(context.Background(), testRange, specs, Options{MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done || len(snap.Estimates) != 4 || snap.Samples != 2000 {
		t.Fatalf("snapshot = %+v", snap)
	}
	avg, std, med, p90 := snap.Estimates[0], snap.Estimates[1], snap.Estimates[2], snap.Estimates[3]
	// gen.Uniform values are N(100, 20).
	if math.Abs(avg.Value-100) > 2 {
		t.Errorf("avg = %v", avg.Value)
	}
	if math.Abs(std.Value-20) > 2 {
		t.Errorf("stddev = %v", std.Value)
	}
	if !(med.Value < p90.Value) {
		t.Errorf("median %v not below p90 %v", med.Value, p90.Value)
	}
	// All share one sample stream.
	for i, e := range snap.Estimates {
		if e.Samples != 2000 {
			t.Errorf("estimate %d samples = %d", i, e.Samples)
		}
	}
	// Validation.
	if _, err := h.EstimateMultiOnline(context.Background(), testRange, nil, Options{}); err == nil {
		t.Error("empty specs should error")
	}
	if _, err := h.EstimateMultiOnline(context.Background(), testRange,
		[]AggSpec{{Kind: estimator.Count}}, Options{}); err == nil {
		t.Error("COUNT spec should error")
	}
	if _, err := h.EstimateMultiOnline(context.Background(), testRange,
		[]AggSpec{{Kind: estimator.Avg, Attr: "nope"}}, Options{}); err == nil {
		t.Error("unknown attr should error")
	}
}

func TestEstimateMultiExhaustsToExact(t *testing.T) {
	_, h := buildHandle(t, 3000, false)
	specs := []AggSpec{
		{Kind: estimator.Avg, Attr: "value"},
		{Kind: estimator.Median, Attr: "value"},
	}
	snap, err := h.EstimateMulti(context.Background(), testRange, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range snap.Estimates {
		if !e.Exact {
			t.Errorf("estimate %d not exact after exhaustion: %+v", i, e)
		}
	}
}

func TestExplain(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	plan, err := h.Explain(testRange)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 20000 || plan.Matching == 0 || plan.Method != MethodRSTree {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Selectivity <= 0 || plan.Selectivity >= 1 {
		t.Errorf("selectivity = %v", plan.Selectivity)
	}
	if plan.CanonicalSize < 1 || plan.TreeHeight < 1 {
		t.Errorf("plan structure: %+v", plan)
	}
	if _, err := h.Explain(geo.Range{MinX: 5, MaxX: 1}); err == nil {
		t.Error("invalid range should error")
	}
}

func TestSessionAnalytics(t *testing.T) {
	e := New(Config{Seed: 51})
	ds, _ := gen.Tweets(gen.TweetsConfig{N: 15000, Users: 30, Seed: 51, Snowstorm: true})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(h)
	usa := geo.Range{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50, MinT: 0, MaxT: 30 * 86400}

	kdeCh, err := s.KDEOnline(context.Background(), usa, KDEOptions{Nx: 8, Ny: 8},
		AnalyticOptions{MaxSamples: 20000, ReportEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	<-kdeCh // one refinement arrived; KDE is mid-flight

	// Starting terms analysis cancels the KDE.
	termsCh, err := s.TermsOnline(context.Background(), usa, "text", 5,
		AnalyticOptions{MaxSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-kdeCh:
			open = ok
		case <-deadline:
			t.Fatal("cancelled KDE stream never closed")
		}
	}
	var last TermsSnapshot
	for snap := range termsCh {
		last = snap
	}
	if !last.Done || last.Terms.Samples != 300 {
		t.Fatalf("terms after session switch: %+v", last)
	}
}

func TestDeleteRange(t *testing.T) {
	_, h := buildHandle(t, 5000, true)
	probe := geo.Range{MinX: 20, MinY: 20, MaxX: 40, MaxY: 40, MinT: 0, MaxT: 100}
	before := h.Count(probe)
	if before == 0 {
		t.Fatal("degenerate fixture")
	}
	n, err := h.DeleteRange(probe)
	if err != nil {
		t.Fatal(err)
	}
	if n != before {
		t.Errorf("deleted %d, want %d", n, before)
	}
	if got := h.Count(probe); got != 0 {
		t.Errorf("count after delete = %d", got)
	}
	// Other regions untouched.
	if h.Len() != 5000-before {
		t.Errorf("len = %d", h.Len())
	}
	// Deleted records never sampled.
	got, err := h.Sample(geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100},
		2000, Auto, sampling.WithoutReplacement, 3)
	if err != nil {
		t.Fatal(err)
	}
	rect := probe.Rect()
	for _, e := range got {
		if rect.Contains(e.Pos) {
			t.Fatalf("sampled deleted record %d", e.ID)
		}
	}
	if _, err := h.DeleteRange(geo.Range{MinX: 5, MaxX: 1}); err == nil {
		t.Error("invalid range should error")
	}
}

// TestConcurrentQueriesAcrossHandles runs online queries on two datasets in
// parallel; handle-level locking must keep them isolated and deadlock-free.
func TestConcurrentQueriesAcrossHandles(t *testing.T) {
	e := New(Config{Seed: 33})
	var handles []*Handle
	for i := 0; i < 3; i++ {
		ds := gen.Uniform(10000, int64(40+i), geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
		// Distinct names: rename through a fresh dataset.
		renamed := data.NewDataset(fmt.Sprintf("u%d", i))
		renamed.AddNumericColumn("value")
		col, _ := ds.NumericColumn("value")
		for j := 0; j < ds.Len(); j++ {
			id := renamed.AppendFast(ds.Pos(uint64(j)))
			renamed.SetNumeric("value", id, col[j])
		}
		h, err := e.Register(renamed, IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for round := 0; round < 10; round++ {
		for _, h := range handles {
			wg.Add(1)
			go func(h *Handle) {
				defer wg.Done()
				snap, err := h.Estimate(context.Background(), testRange, Options{
					Kind: estimator.Avg, Attr: "value", MaxSamples: 200,
				})
				if err != nil {
					errs <- err
					return
				}
				if !snap.Done || snap.Samples != 200 {
					errs <- fmt.Errorf("bad snapshot %+v", snap)
				}
			}(h)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSessionCancelsPreviousQuery(t *testing.T) {
	_, h := buildHandle(t, 50000, false)
	s := NewSession(h)
	ch1, err := s.EstimateOnline(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", ReportEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ch1 // first snapshot arrived; query is mid-flight
	ch2, err := s.EstimateOnline(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first stream must terminate (cancelled), the second completes.
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-ch1:
			open = ok
		case <-deadline:
			t.Fatal("cancelled query stream never closed")
		}
	}
	var last Snapshot
	for s := range ch2 {
		last = s
	}
	if !last.Done || last.Samples != 100 {
		t.Fatalf("second query: %+v", last)
	}
	s.Stop() // idempotent
	s.Stop()
}
