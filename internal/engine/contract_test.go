package engine

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/sampling"
	"storm/internal/stats"
	"storm/internal/stats/statcheck"
)

func TestContractValidation(t *testing.T) {
	_, h := buildHandle(t, 500, false)
	cases := []struct {
		name string
		opts Options
		c    Contract
		want string // substring of the error, "" = valid
	}{
		{"negative-error", Options{Kind: estimator.Avg, Attr: "value"}, Contract{RelError: -0.02}, "negative"},
		{"negative-deadline", Options{Kind: estimator.Avg, Attr: "value"}, Contract{Deadline: -time.Second}, "negative"},
		{"empty", Options{Kind: estimator.Avg, Attr: "value"}, Contract{}, "empty contract"},
		{"bad-confidence", Options{Kind: estimator.Avg, Attr: "value"}, Contract{RelError: 0.05, Confidence: 1.5}, "confidence"},
		{"quantile-error-target", Options{Kind: estimator.Quant, Attr: "value", QuantileP: 0.9}, Contract{RelError: 0.05}, "CLT"},
		{"median-error-target", Options{Kind: estimator.Median, Attr: "value"}, Contract{RelError: 0.05}, "CLT"},
		{"error-only", Options{Kind: estimator.Avg, Attr: "value"}, Contract{RelError: 0.2}, ""},
		{"deadline-only", Options{Kind: estimator.Avg, Attr: "value"}, Contract{Deadline: time.Second}, ""},
		{"deadline-only-median", Options{Kind: estimator.Median, Attr: "value"}, Contract{Deadline: time.Second}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := h.ExplainContract(testRange, tc.opts, tc.c)
			switch {
			case tc.want == "" && err != nil:
				t.Errorf("unexpected error %v", err)
			case tc.want != "" && err == nil:
				t.Errorf("expected error containing %q, got nil", tc.want)
			case tc.want != "" && !strings.Contains(err.Error(), tc.want):
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestContractColdPlan checks the planner's fallback on a dataset with no
// telemetry: the plan must come from the documented priors (unit CV, the
// cold throughput prior), be flagged Cold, and size the sample budget as
// k = ceil((z·cv/ε)²).
func TestContractColdPlan(t *testing.T) {
	_, h := buildHandle(t, 20_000, false)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}
	c := Contract{RelError: 0.02, Confidence: 0.95, Deadline: time.Second}
	plan, err := h.ExplainContract(all, Options{Kind: estimator.Avg, Attr: "value"}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Cold {
		t.Errorf("fresh dataset planned warm: %+v", plan)
	}
	if plan.CV != contractColdCV || plan.RateSPMS != contractColdRateSPMS {
		t.Errorf("cold priors not used: cv=%v rate=%v", plan.CV, plan.RateSPMS)
	}
	z := stats.ZScore(0.95)
	wantK := int(math.Ceil((z * contractColdCV / 0.02) * (z * contractColdCV / 0.02)))
	if plan.Samples != wantK {
		t.Errorf("Samples = %d, want ceil((z·cv/ε)²) = %d", plan.Samples, wantK)
	}
	if plan.Exact {
		t.Errorf("plan predicted exact with budget %d over %d qualifying", plan.Samples, plan.Qualifying)
	}
	if plan.Qualifying != 20_000 {
		t.Errorf("Qualifying = %d, want 20000", plan.Qualifying)
	}
	if plan.Budget <= 0 {
		t.Errorf("deadline budget not predicted: %+v", plan)
	}
	if plan.ReportEvery < minPullBatch || plan.ReportEvery > maxPullBatch {
		t.Errorf("ReportEvery = %d outside batch bounds [%d, %d]", plan.ReportEvery, minPullBatch, maxPullBatch)
	}

	// A cold prediction that exceeds the qualifying population flips to an
	// exact drain plan.
	tight := Contract{RelError: 0.001, Confidence: 0.95}
	exPlan, err := h.ExplainContract(all, Options{Kind: estimator.Avg, Attr: "value"}, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !exPlan.Exact || exPlan.Samples != 20_000 {
		t.Errorf("exhaustion plan = %+v, want exact over 20000", exPlan)
	}
}

// TestContractWarmProfile checks that completed estimates feed the
// dataset's response profile and flip subsequent plans from priors to
// measured telemetry.
func TestContractWarmProfile(t *testing.T) {
	_, h := buildHandle(t, 20_000, false)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := h.Estimate(context.Background(), all, Options{
			Kind: estimator.Avg, Attr: "value", MaxSamples: 2000, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rate, cv, queries := h.prof.snapshot("value")
	if queries < 3 || rate <= 0 || cv <= 0 {
		t.Fatalf("profile after 3 estimates: rate=%v cv=%v queries=%d", rate, cv, queries)
	}
	// gen.Uniform's value ~ N(100, 20): the recovered CV must be in the
	// neighbourhood of 0.2, not the unit prior.
	if cv < 0.05 || cv > 0.6 {
		t.Errorf("profiled cv = %v, want ≈ 0.2", cv)
	}
	plan, err := h.ExplainContract(all, Options{Kind: estimator.Avg, Attr: "value"},
		Contract{RelError: 0.02, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cold {
		t.Errorf("plan still cold after profiling: %+v", plan)
	}
	if plan.CV == contractColdCV {
		t.Errorf("plan ignored the profiled cv: %+v", plan)
	}
	// A profiled CV of ~0.2 needs ~25× fewer samples than the unit prior.
	z := stats.ZScore(0.95)
	coldK := int(math.Ceil((z / 0.02) * (z / 0.02)))
	if plan.Samples >= coldK {
		t.Errorf("warm budget %d not tighter than cold %d", plan.Samples, coldK)
	}
}

// TestContractMet runs a generously bounded contract end to end: one
// final answer, a met verdict, and the met counter incremented.
func TestContractMet(t *testing.T) {
	e, h := buildHandle(t, 20_000, false)
	c := Contract{RelError: 0.10, Confidence: 0.95, Deadline: 10 * time.Second}
	res, err := h.EstimateContract(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Seed: 11,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("contract answer not final: %+v", res.Snapshot)
	}
	if res.Status != ContractMet {
		t.Fatalf("status = %v (achieved %.4f, elapsed %v), want met", res.Status, res.AchievedRelError, res.Elapsed)
	}
	if !res.Exact && res.AchievedRelError > c.RelError*contractSlack {
		t.Errorf("met verdict with achieved error %v > target %v", res.AchievedRelError, c.RelError)
	}
	if res.Contract.Confidence != 0.95 {
		t.Errorf("effective confidence = %v", res.Contract.Confidence)
	}
	truth, _ := trueMean(h, testRange, "value")
	if !res.Exact && math.Abs(res.Value-truth) > truth*0.5 {
		t.Errorf("estimate %v wildly off truth %v", res.Value, truth)
	}
	if got := e.Obs().Counter("storm.engine.contracts.met").Value(); got != 1 {
		t.Errorf("contracts.met = %d, want 1", got)
	}
	if s := res.String(); !strings.Contains(s, "contract met") {
		t.Errorf("String() = %q, want a met verdict", s)
	}
}

// TestContractDegraded caps sampling below what the error target needs
// (Options.MaxSamples is an additional cap): the answer must arrive with
// the degraded verdict and its achieved, wider CI.
func TestContractDegraded(t *testing.T) {
	e, h := buildHandle(t, 20_000, false)
	c := Contract{RelError: 0.001, Confidence: 0.95}
	res, err := h.EstimateContract(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 100, Mode: sampling.WithReplacement, Seed: 12,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ContractDegraded {
		t.Fatalf("status = %v (achieved %.4f over %d samples), want degraded",
			res.Status, res.AchievedRelError, res.Samples)
	}
	if res.Samples != 100 {
		t.Errorf("samples = %d, want the 100-sample cap", res.Samples)
	}
	if res.AchievedRelError <= c.RelError {
		t.Errorf("degraded verdict but achieved %v ≤ target %v", res.AchievedRelError, c.RelError)
	}
	if got := e.Obs().Counter("storm.engine.contracts.degraded").Value(); got != 1 {
		t.Errorf("contracts.degraded = %d, want 1", got)
	}
}

// TestContractDeadlineOnly checks the WITHIN-only form: an on-time answer
// meets the contract with no accuracy clause involved.
func TestContractDeadlineOnly(t *testing.T) {
	_, h := buildHandle(t, 20_000, false)
	res, err := h.EstimateContract(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 500, Seed: 13,
	}, Contract{Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ContractMet {
		t.Fatalf("status = %v (elapsed %v), want met", res.Status, res.Elapsed)
	}
	if res.AchievedRelError == 0 && !res.Exact {
		t.Errorf("deadline-only answer lost its achieved CI: %+v", res.Snapshot)
	}
}

// TestContractCountExact: COUNT answers from the range count without
// sampling, so the plan and the verdict are exact/met immediately.
func TestContractCountExact(t *testing.T) {
	_, h := buildHandle(t, 5_000, false)
	res, err := h.EstimateContract(context.Background(), testRange, Options{
		Kind: estimator.Count,
	}, Contract{RelError: 0.01, Confidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Exact || !res.Exact || res.Status != ContractMet {
		t.Fatalf("COUNT contract = status %v, exact %v/%v; want exact met", res.Status, res.Plan.Exact, res.Exact)
	}
	_, want := trueMean(h, testRange, "value")
	if int(res.Value) != want {
		t.Errorf("COUNT = %v, want %d", res.Value, want)
	}
}

// TestContractMissedCancelled cancels the query before its (unreachable)
// error target: a cancellation before the contract ran its course is a
// miss, not a degradation.
func TestContractMissedCancelled(t *testing.T) {
	e, h := buildHandle(t, 20_000, false)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	res, err := h.EstimateContract(ctx, testRange, Options{
		Kind: estimator.Avg, Attr: "value", Mode: sampling.WithReplacement, Seed: 14,
	}, Contract{RelError: 1e-7, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ContractMissed {
		t.Fatalf("status = %v after cancellation, want missed", res.Status)
	}
	if got := e.Obs().Counter("storm.engine.contracts.missed").Value(); got != 1 {
		t.Errorf("contracts.missed = %d, want 1", got)
	}
}

func TestContractScale(t *testing.T) {
	c := Contract{RelError: 0.02, Confidence: 0.95, Deadline: 400 * time.Millisecond}
	s := c.Scale(2)
	if s.RelError != 0.04 || s.Deadline != 200*time.Millisecond {
		t.Errorf("Scale(2) = %+v", s)
	}
	if got := c.Scale(0.5); got != c {
		t.Errorf("Scale(0.5) should be a no-op, got %+v", got)
	}
	if got := c.Scale(math.Inf(1)); got != c {
		t.Errorf("Scale(+Inf) should be a no-op, got %+v", got)
	}
	floor := Contract{Deadline: 10 * time.Millisecond}.Scale(1e6)
	if floor.Deadline != contractMinDeadline {
		t.Errorf("scaled deadline = %v, want the %v floor", floor.Deadline, contractMinDeadline)
	}
	if s := (Contract{RelError: 0.02, Deadline: time.Second}).String(); !strings.Contains(s, "ERROR 2%") || !strings.Contains(s, "WITHIN 1s") {
		t.Errorf("Contract.String() = %q", s)
	}
	if s := (Contract{}).String(); s != "unconstrained" {
		t.Errorf("empty Contract.String() = %q", s)
	}
}

// TestStatContractCoverage is the contract statistical suite (run by
// `make test-stats`): over many seeded runs of an ERROR 5% AT CONFIDENCE
// 95% contract, every answer must carry the met verdict and the returned
// 95% confidence intervals must cover the true range mean at their
// nominal rate. Seeds are fixed; a failure is a regression, not noise
// (alpha per check is statcheck.DefaultAlpha = 1e-3). The 3% slack
// absorbs the optional-stopping bias of the contract's stopping rule —
// the run ends on the first batch whose CI is inside the target, which
// clips coverage slightly below a fixed-n design.
func TestStatContractCoverage(t *testing.T) {
	_, h := buildHandle(t, 6_000, false)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}
	truth, _ := trueMean(h, all, "value")
	c := Contract{RelError: 0.05, Confidence: 0.95, Deadline: 30 * time.Second}

	var intervals []statcheck.Interval
	for _, seed := range statcheck.Seeds(0xC0117AC7, 150) {
		res, err := h.EstimateContract(context.Background(), all, Options{
			Kind: estimator.Avg, Attr: "value", Seed: seed,
		}, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != ContractMet {
			t.Fatalf("seed %d: status %v (achieved %.4f, %d samples), want met",
				seed, res.Status, res.AchievedRelError, res.Samples)
		}
		if !res.Exact && res.AchievedRelError > c.RelError*contractSlack {
			t.Fatalf("seed %d: met verdict with achieved error %v > 5%%", seed, res.AchievedRelError)
		}
		intervals = append(intervals, statcheck.IntervalAround(res.Value, res.HalfWidth))
	}
	statcheck.Coverage(t, "contract-met-ci", truth, intervals, 0.95, 0.03, statcheck.DefaultAlpha)
}
