package engine

import (
	"math"
	"time"

	"storm/internal/obs"
	"storm/internal/sampling"
)

// metrics holds the engine's resolved metric handles. Handles are fetched
// once at engine construction, so the query hot path never touches the
// registry map; with metrics disabled (Config.NoMetrics) every handle is
// nil and each write degrades to a single nil check (see package obs).
type metrics struct {
	queriesStarted *obs.Counter
	queriesDone    *obs.Counter
	queriesActive  *obs.Gauge
	// queriesDegraded counts queries that lost at least one shard
	// mid-stream and finished over the surviving population.
	queriesDegraded *obs.Counter
	// queriesRecovered counts queries that re-admitted every shard they
	// had lost (the shards recovered mid-query) and finished back over
	// the full population.
	queriesRecovered *obs.Counter
	// queriesFailedOver counts queries that moved at least one shard
	// stream onto a surviving replica mid-query (Replicas >= 2) and kept
	// the full population — failover, not degradation.
	queriesFailedOver *obs.Counter

	samplesDrawn      *obs.Counter
	samplerRejects    *obs.Counter
	samplerExplosions *obs.Counter
	samplerScans      *obs.Counter

	// pushdownPlans counts planner resolutions (queries and EXPLAINs)
	// that chose predicate pushdown over the rejection baseline;
	// pushdownPruned counts the subtrees node-summary pruning excluded
	// from sampler descents.
	pushdownPlans  *obs.Counter
	pushdownPruned *obs.Counter

	// contractsMet/Degraded/Missed count contract-mode queries
	// (EstimateContract) by their final guarantee verdict;
	// contractColdPlans counts plans made from priors because the dataset
	// had no telemetry yet.
	contractsMet      *obs.Counter
	contractsDegraded *obs.Counter
	contractsMissed   *obs.Counter
	contractColdPlans *obs.Counter

	batchSize *obs.Histogram
	// Latency and CI-width distributions self-tune: their log-spaced
	// bounds rescale upward instead of saturating a top bucket when a
	// cold cache, a huge dataset, or a slow-converging estimate pushes
	// observations past the initial range.
	ciRelWidth     *obs.TuningHistogram
	queryLatencyMS *obs.TuningHistogram

	ttci []ttciMilestone
}

// ttciMilestone is one time-to-CI-width target: the histogram records how
// long queries took to first shrink their relative CI width to rel.
type ttciMilestone struct {
	rel  float64
	hist *obs.TuningHistogram
}

// ttciThresholds are the convergence milestones exported as
// storm.engine.ttci.* histograms, widest first (queries cross them in
// this order). Register additionally builds a per-dataset copy of the
// same milestones under storm.dataset.<name>.ttci.* — the contract
// planner's telemetry (see ttciPredict).
var ttciThresholds = []struct {
	rel   float64
	short string
}{
	{0.10, "ttci.rel10pct_ms"},
	{0.05, "ttci.rel5pct_ms"},
	{0.01, "ttci.rel1pct_ms"},
}

// newMetrics resolves every engine metric against reg. A nil registry
// yields all-nil handles, making every recording site a no-op.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		queriesStarted:    reg.Counter("storm.engine.queries.started"),
		queriesDone:       reg.Counter("storm.engine.queries.done"),
		queriesActive:     reg.Gauge("storm.engine.queries.active"),
		queriesDegraded:   reg.Counter("storm.engine.queries.degraded"),
		queriesRecovered:  reg.Counter("storm.engine.queries.recovered"),
		queriesFailedOver: reg.Counter("storm.engine.queries.failed_over"),
		samplesDrawn:      reg.Counter("storm.engine.samples.drawn"),
		samplerRejects:    reg.Counter("storm.engine.sampler.rejects"),
		samplerExplosions: reg.Counter("storm.engine.sampler.explosions"),
		samplerScans:      reg.Counter("storm.engine.sampler.scans"),
		pushdownPlans:     reg.Counter("storm.engine.pushdown.plans"),
		pushdownPruned:    reg.Counter("storm.engine.pushdown.pruned_nodes"),
		contractsMet:      reg.Counter("storm.engine.contracts.met"),
		contractsDegraded: reg.Counter("storm.engine.contracts.degraded"),
		contractsMissed:   reg.Counter("storm.engine.contracts.missed"),
		contractColdPlans: reg.Counter("storm.engine.contracts.cold_plans"),
		batchSize:         reg.Histogram("storm.engine.batch.size", obs.BatchSizeBuckets),
		ciRelWidth:        reg.TuningHistogram("storm.engine.ci.relwidth", 1e-4, 16),
		queryLatencyMS:    reg.TuningHistogram("storm.engine.query.latency_ms", 0.1, 16),
	}
	for _, t := range ttciThresholds {
		m.ttci = append(m.ttci, ttciMilestone{rel: t.rel, hist: reg.TuningHistogram("storm.engine."+t.short, 0.1, 16)})
	}
	return m
}

// queryObs is one query's metric state: the sampler-stats cursor for
// delta flushing and the milestone cursor for time-to-CI tracking. It is
// query-goroutine-local, so nothing here is atomic — the per-draw hot
// path stays untouched and metric writes happen once per batch or per
// report point.
type queryObs struct {
	met       *metrics
	start     time.Time
	last      sampling.SamplerStats
	milestone int
	// ds holds the handle's per-dataset time-to-CI milestones (same
	// thresholds, same order as met.ttci), observed at the same cursor —
	// they feed the contract planner's per-dataset predictions. Nil when
	// the query runs without a handle context or metrics are off.
	ds []ttciMilestone
}

// beginQuery records a query start and returns its metric state; pair
// with queryObs.end.
func (m *metrics) beginQuery(start time.Time) *queryObs {
	m.queriesStarted.Inc()
	m.queriesActive.Add(1)
	return &queryObs{met: m, start: start}
}

// end records query completion and its total latency.
func (q *queryObs) end() {
	m := q.met
	m.queriesActive.Add(-1)
	m.queriesDone.Inc()
	m.queryLatencyMS.Observe(msSince(q.start))
}

// batch flushes one NextBatch round into the registry: the pull size and
// the sampler's counter deltas since the previous flush. Samplers that do
// not implement StatsReporter still contribute their returned sample
// count.
func (q *queryObs) batch(s sampling.Sampler, n int) {
	m := q.met
	m.batchSize.Observe(float64(n))
	if r, ok := s.(sampling.StatsReporter); ok {
		cur := r.SamplerStats()
		m.samplesDrawn.Add(cur.Draws - q.last.Draws)
		m.samplerRejects.Add(cur.Rejects - q.last.Rejects)
		m.samplerExplosions.Add(cur.Explosions - q.last.Explosions)
		m.samplerScans.Add(cur.Scans - q.last.Scans)
		m.pushdownPruned.Add(cur.Pruned - q.last.Pruned)
		q.last = cur
	} else if n > 0 {
		m.samplesDrawn.Add(uint64(n))
	}
}

// ci records one emitted snapshot's relative CI width and stamps any
// newly crossed time-to-CI milestones. Non-finite widths (an estimate of
// zero, or no samples yet) are skipped rather than polluting the
// distribution.
func (q *queryObs) ci(rel float64) {
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return
	}
	m := q.met
	m.ciRelWidth.Observe(rel)
	for q.milestone < len(m.ttci) && rel <= m.ttci[q.milestone].rel {
		ms := msSince(q.start)
		m.ttci[q.milestone].hist.Observe(ms)
		if q.milestone < len(q.ds) {
			q.ds[q.milestone].hist.Observe(ms)
		}
		q.milestone++
	}
}

// msSince returns the elapsed time since t in (fractional) milliseconds.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
