package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/distr/distrtest"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/pred"
)

// maxEventTime scans the dataset for its true watermark.
func maxEventTime(h *Handle) float64 {
	wm := math.Inf(-1)
	for i := 0; i < h.Data().Len(); i++ {
		if t := h.Data().Pos(uint64(i))[2]; t > wm {
			wm = t
		}
	}
	return wm
}

// windowTruth counts records in rect whose time lies in [wm-d, wm] and
// that satisfy the optional predicate terms.
func windowTruth(h *Handle, q geo.Range, d time.Duration, where []pred.Term) int {
	wm := maxEventTime(h)
	rect := q.Rect()
	var c *pred.Compiled
	if len(where) > 0 {
		c, _ = pred.Normalize(where).Compile(h.Data())
	}
	cnt := 0
	for i := 0; i < h.Data().Len(); i++ {
		p := h.Data().Pos(uint64(i))
		if !rect.Contains(p) || p[2] < wm-d.Seconds() || p[2] > wm {
			continue
		}
		if c != nil && !c.Match(uint64(i)) {
			continue
		}
		cnt++
	}
	return cnt
}

func TestWatermarkLifecycle(t *testing.T) {
	_, h := buildHandle(t, 5000, false)
	wm, ok := h.Watermark()
	if !ok {
		t.Fatal("registered dataset should have a watermark")
	}
	if want := maxEventTime(h); wm != want {
		t.Fatalf("watermark = %v, want dataset max %v", wm, want)
	}
	// An insert behind the watermark does not move it; one ahead does.
	h.Insert(data.Row{Pos: geo.Vec{50, 50, wm - 10}})
	if got, _ := h.Watermark(); got != wm {
		t.Fatalf("late insert moved the watermark: %v -> %v", wm, got)
	}
	h.Insert(data.Row{Pos: geo.Vec{50, 50, wm + 7}})
	if got, _ := h.Watermark(); got != wm+7 {
		t.Fatalf("watermark after ahead insert = %v, want %v", got, wm+7)
	}
	// Deleting everything does not lower it: the window stays anchored at
	// the latest time the stream ever reached.
	if _, err := h.DeleteRange(geo.UniverseRange()); err != nil {
		t.Fatal(err)
	}
	if got, ok := h.Watermark(); !ok || got != wm+7 {
		t.Fatalf("watermark after delete = %v (ok=%v), want %v", got, ok, wm+7)
	}
}

func TestWindowRangeNarrowing(t *testing.T) {
	_, h := buildHandle(t, 2000, false)
	wm, _ := h.Watermark()
	r := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}

	if got := h.WindowRange(r, 0); got != r {
		t.Fatalf("d=0 should leave the range unchanged: %+v", got)
	}
	got := h.WindowRange(r, 30*time.Second)
	if got.MinT != wm-30 || got.MaxT != wm {
		t.Fatalf("window = [%v, %v], want [%v, %v]", got.MinT, got.MaxT, wm-30, wm)
	}
	// A TIME clause inside the window is kept as-is.
	tight := r
	tight.MinT, tight.MaxT = wm-5, wm-1
	if got := h.WindowRange(tight, 30*time.Second); got != tight {
		t.Fatalf("inner TIME clause should survive: %+v", got)
	}
	// A TIME clause entirely before the window comes back time-empty.
	past := r
	past.MinT, past.MaxT = 0, wm-90
	if got := h.WindowRange(past, 10*time.Second); got.MinT <= got.MaxT {
		t.Fatalf("disjoint window should be empty: %+v", got)
	}

	// No watermark (never any records): time-empty.
	e := New(Config{Seed: 9})
	empty, err := e.Register(data.NewDataset("empty"), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.Watermark(); ok {
		t.Fatal("empty dataset should have no watermark")
	}
	if got := empty.WindowRange(r, time.Minute); got.MinT <= got.MaxT {
		t.Fatalf("no-watermark window should be empty: %+v", got)
	}
}

func TestWindowedCountExact(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	const last = 30 * time.Second
	want := windowTruth(h, testRange, last, nil)
	full := windowTruth(h, testRange, 200*time.Second, nil)
	if want == 0 || want == full {
		t.Fatalf("degenerate fixture: windowed %d of %d", want, full)
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Count, Last: last,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || int(snap.Value) != want {
		t.Fatalf("windowed COUNT = %v (exact=%v), want %d", snap.Value, snap.Exact, want)
	}
	if !snap.Windowed {
		t.Fatal("snapshot should be marked windowed")
	}
	wm, _ := h.Watermark()
	if snap.WindowLo != wm-last.Seconds() || snap.WindowHi != wm {
		t.Fatalf("snapshot window = [%v, %v], want [%v, %v]",
			snap.WindowLo, snap.WindowHi, wm-last.Seconds(), wm)
	}
}

func TestWindowedEstimateMatchesNarrowedRange(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	const last = 40 * time.Second
	narrowed := h.WindowRange(testRange, last)
	want, cnt := trueMean(h, narrowed, "value")
	if cnt == 0 {
		t.Fatal("degenerate fixture")
	}
	// Run to exhaustion: the windowed estimate must be exact over exactly
	// the windowed population.
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Last: last,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || snap.Population != cnt {
		t.Fatalf("windowed AVG population = %d (exact=%v), want %d", snap.Population, snap.Exact, cnt)
	}
	if math.Abs(snap.Value-want) > 1e-9 {
		t.Fatalf("windowed AVG = %v, want %v", snap.Value, want)
	}
}

func TestWindowedComposesWithWhere(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	const last = 35 * time.Second
	where := []pred.Term{{Attr: "value", Lo: 40, Hi: math.Inf(1)}}
	want := windowTruth(h, testRange, last, where)
	if want == 0 {
		t.Fatal("degenerate fixture")
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Count, Last: last, Where: where,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(snap.Value) != want {
		t.Fatalf("windowed+WHERE COUNT = %v, want %d", snap.Value, want)
	}
}

func TestWindowedDistributed(t *testing.T) {
	e := New(Config{Seed: 42, Fanout: 32})
	h, err := e.Register(distrtest.Dataset(12000), IndexOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const last = 30 * time.Second
	want := windowTruth(h, testRange, last, nil)
	if want == 0 {
		t.Fatal("degenerate fixture")
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Last: last, Method: MethodDistributed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Population != want {
		t.Fatalf("distributed windowed population = %d, want %d", snap.Population, want)
	}
	if !snap.Windowed {
		t.Fatal("distributed snapshot should be marked windowed")
	}
	narrowed := h.WindowRange(testRange, last)
	localWant, _ := trueMean(h, narrowed, "value")
	if !snap.Exact {
		t.Fatalf("exhausted distributed query should be exact: %+v", snap)
	}
	if math.Abs(snap.Value-localWant) > 1e-9 {
		t.Fatalf("distributed windowed AVG = %v, want %v", snap.Value, localWant)
	}
}

func TestWindowedContractPopulation(t *testing.T) {
	_, h := buildHandle(t, 20000, false)
	const last = 30 * time.Second
	want := windowTruth(h, testRange, last, nil)
	plan, err := h.ExplainContract(testRange, Options{Kind: estimator.Avg, Attr: "value", Last: last},
		Contract{RelError: 0.05, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Qualifying != want {
		t.Fatalf("windowed contract qualifying = %d, want %d", plan.Qualifying, want)
	}
}

func TestWindowedEmptyDataset(t *testing.T) {
	e := New(Config{Seed: 5})
	h, err := e.Register(data.NewDataset("stream"), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := h.Estimate(context.Background(), geo.UniverseRange(), Options{
		Kind: estimator.Count, Last: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || snap.Value != 0 || snap.Population != 0 {
		t.Fatalf("windowed COUNT over empty dataset = %+v, want exact zero", snap)
	}
}

func TestInsertBatch(t *testing.T) {
	e := New(Config{Seed: 11})
	h, err := e.Register(data.NewDataset("stream"), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]data.Row, 500)
	for i := range rows {
		// Deliberately unsorted positions: InsertBatch re-sorts into STR
		// order internally but must return IDs in the rows' given order.
		rows[i] = data.Row{
			Pos: geo.Vec{float64((i * 37) % 100), float64((i * 61) % 100), float64(i)},
			Num: map[string]float64{"v": float64(i)},
		}
	}
	ids := h.InsertBatch(rows)
	if len(ids) != len(rows) {
		t.Fatalf("got %d ids for %d rows", len(ids), len(rows))
	}
	for i, id := range ids {
		if h.Data().Pos(uint64(id)) != rows[i].Pos {
			t.Fatalf("id %d maps to %v, want %v", id, h.Data().Pos(uint64(id)), rows[i].Pos)
		}
	}
	if h.Len() != len(rows) {
		t.Fatalf("len = %d", h.Len())
	}
	if wm, ok := h.Watermark(); !ok || wm != 499 {
		t.Fatalf("watermark = %v (ok=%v), want 499", wm, ok)
	}
	// The batch is immediately queryable, including through a window.
	snap, err := h.Estimate(context.Background(), geo.UniverseRange(), Options{
		Kind: estimator.Count, Last: 99 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(snap.Value) != 100 { // t in [400, 499]
		t.Fatalf("windowed COUNT after batch = %v, want 100", snap.Value)
	}
	if h.InsertBatch(nil) != nil {
		t.Fatal("empty batch should return nil")
	}
}
