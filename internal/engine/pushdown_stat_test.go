package engine

import (
	"context"
	"testing"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/sampling"
	"storm/internal/stats"
	"storm/internal/stats/statcheck"
)

// pushdownSelectivities are the WHERE slabs the pushdown statistical
// suite sweeps: symmetric intervals around the mean of gen.Uniform's
// value ~ N(100, 20), sized so that ~50%, ~10% and ~1% of records
// qualify. Symmetric slabs keep the conditional value distribution
// symmetric, so the t-based CI coverage check is honest even at the
// small qualifying populations the 1% slab leaves.
var pushdownSelectivities = []struct {
	name   string
	lo, hi float64
}{
	{"sel50", 100 - 13.49, 100 + 13.49},
	{"sel10", 100 - 2.513, 100 + 2.513},
	{"sel1", 100 - 0.2507, 100 + 0.2507},
}

// qualifyingIDs scans the store for records inside rect whose value lies
// in [lo, hi] — the ground-truth qualifying set pushdown must sample
// uniformly from.
func qualifyingIDs(h *Handle, rect geo.Rect, lo, hi float64) ([]data.ID, float64) {
	col, _ := h.Data().NumericColumn("value")
	var ids []data.ID
	var sum float64
	for i := 0; i < h.Data().Len(); i++ {
		id := data.ID(i)
		if rect.Contains(h.Data().Pos(id)) && col[i] >= lo && col[i] <= hi {
			ids = append(ids, id)
			sum += col[i]
		}
	}
	if len(ids) == 0 {
		return nil, 0
	}
	return ids, sum / float64(len(ids))
}

// TestStatPushdownUniform is the predicate-pushdown statistical suite
// (run by `make test-stats`): at ~50%/10%/1% selectivity it checks, by
// chi-square at alpha 1e-3, that both the pruning samplers and the
// rejection baseline draw exactly uniformly over the qualifying records
// — never over-sampling records near pruned-subtree boundaries — and
// that the t-based confidence intervals of WHERE aggregates cover the
// true qualifying mean at their nominal rate under both strategies.
// Seeds are fixed; a failure is a regression, not noise (see the
// statcheck package doc for the false-positive budget).
func TestStatPushdownUniform(t *testing.T) {
	_, h := buildHandle(t, 6000, false)
	all := geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100}
	rect := all.Rect()

	samplerConfigs := []struct {
		name     string
		method   Method
		strategy PushdownStrategy
	}{
		{"rstree-pushdown", MethodRSTree, PushdownForce},
		{"rstree-rejection", MethodRSTree, PushdownOff},
		{"randompath-pushdown", MethodRandomPath, PushdownForce},
	}
	seeds := statcheck.Seeds(0xA10, len(pushdownSelectivities)*len(samplerConfigs))
	seedAt := 0

	for _, sel := range pushdownSelectivities {
		qual, truth := qualifyingIDs(h, rect, sel.lo, sel.hi)
		if len(qual) < 20 {
			t.Fatalf("%s: degenerate fixture, %d qualifying records", sel.name, len(qual))
		}
		idx := make(map[data.ID]int, len(qual))
		for j, id := range qual {
			idx[id] = j
		}
		terms := []pred.Term{{Attr: "value", Lo: sel.lo, Hi: sel.hi}}

		// Uniformity: with replacement, every qualifying record must be
		// hit at the same rate, and nothing outside the set may appear.
		for _, cfg := range samplerConfigs {
			seed := seeds[seedAt]
			seedAt++
			t.Run("uniform/"+sel.name+"/"+cfg.name, func(t *testing.T) {
				plan, empty, err := h.planWhere(terms, cfg.strategy)
				if err != nil || empty || plan == nil {
					t.Fatalf("planWhere = (%v, %v, %v)", plan, empty, err)
				}
				if want := cfg.strategy == PushdownForce; plan.pushdown != want {
					t.Fatalf("strategy %v resolved pushdown=%v", cfg.strategy, plan.pushdown)
				}
				s, _, err := h.newSampler(cfg.method, rect, sampling.WithReplacement, stats.NewRNG(seed), plan)
				if err != nil {
					t.Fatal(err)
				}
				defer closeSampler(s)
				draws := 8 * len(qual) // expected count 8 per category (chi-square wants >= 5)
				counts := make([]int, len(qual))
				buf := make([]data.Entry, 256)
				for got := 0; got < draws; {
					want := draws - got
					if want > len(buf) {
						want = len(buf)
					}
					n := sampling.NextBatch(s, buf, want)
					if n == 0 {
						t.Fatalf("sampler dried up at %d/%d draws", got, draws)
					}
					for _, e := range buf[:n] {
						j, ok := idx[e.ID]
						if !ok {
							t.Fatalf("sampled non-qualifying record %d", e.ID)
						}
						counts[j]++
					}
					got += n
				}
				statcheck.Uniform(t, sel.name+"/"+cfg.name, counts, statcheck.DefaultAlpha)
			})
		}

		// CI coverage: the 95% interval of AVG(value) WHERE value ∈ slab
		// must cover the true qualifying mean at its nominal rate whether
		// the qualifying stream comes from pruning or from rejection. The
		// 2% slack absorbs the t-approximation at the smallest run size.
		maxSamples := len(qual) / 2
		if maxSamples > 300 {
			maxSamples = 300
		}
		if maxSamples < 30 {
			maxSamples = 30
		}
		for _, strategy := range []PushdownStrategy{PushdownForce, PushdownOff} {
			strategy := strategy
			t.Run("coverage/"+sel.name+"/"+strategy.String(), func(t *testing.T) {
				var intervals []statcheck.Interval
				for _, seed := range statcheck.Seeds(0xC0F+int64(strategy), 120) {
					snap, err := h.Estimate(context.Background(), all, Options{
						Kind: estimator.Avg, Attr: "value",
						Where: terms, Pushdown: strategy,
						Method: MethodRSTree, MaxSamples: maxSamples, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !snap.Done {
						t.Fatalf("query did not finish: %+v", snap)
					}
					if snap.Population != len(qual) {
						t.Fatalf("population = %d, want qualifying count %d", snap.Population, len(qual))
					}
					intervals = append(intervals, statcheck.IntervalAround(snap.Value, snap.HalfWidth))
				}
				statcheck.Coverage(t, sel.name+"/"+strategy.String(), truth, intervals,
					0.95, 0.02, statcheck.DefaultAlpha)
			})
		}
	}
}
