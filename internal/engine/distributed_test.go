package engine

import (
	"context"
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/obs"
	"storm/internal/sampling"
	"storm/internal/wire"
)

func buildShardedHandle(t testing.TB, n, shards int, faults *distr.FaultPlan) (*Engine, *Handle) {
	t.Helper()
	e := New(Config{Seed: 42, Fanout: 32})
	h, err := e.Register(distrtest.Dataset(n), IndexOptions{Shards: shards, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	return e, h
}

func TestDistributedMethodRouting(t *testing.T) {
	_, h := buildShardedHandle(t, 5000, 4, nil)
	if h.Cluster() == nil {
		t.Fatal("sharded registration should build a cluster")
	}
	// The optimizer prefers the cluster coordinator when one exists.
	plan, err := h.Explain(testRange)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodDistributed {
		t.Errorf("optimizer chose %v, want distributed", plan.Method)
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Method != "distributed-rs-tree" {
		t.Errorf("query ran via %q", snap.Method)
	}
	if !snap.Exact || snap.Degraded {
		t.Errorf("healthy exhaustive run: %+v", snap)
	}
	want, _ := trueMean(h, testRange, "value")
	if math.Abs(snap.Value-want) > 1e-9 {
		t.Errorf("exact distributed AVG = %v, want %v", snap.Value, want)
	}

	// Requesting the method on an unsharded dataset is a config error.
	e2 := New(Config{Seed: 1})
	ds2 := gen.Uniform(500, 3, geo.SpatialRange(0, 0, 100, 100))
	h2, err := e2.Register(ds2, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h2.newSampler(MethodDistributed, testRange.Rect(), sampling.WithoutReplacement, nil, nil); err == nil {
		t.Error("distributed method without a cluster should fail")
	}
	// With-replacement is unsupported on the coordinator.
	if _, _, err := h.newSampler(MethodDistributed, testRange.Rect(), sampling.WithReplacement, nil, nil); err == nil {
		t.Error("with-replacement distributed sampling should fail")
	}
}

func TestDistributedQueryDegrades(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Seed: 42, Fanout: 32, Obs: reg})
	h, err := e.Register(distrtest.Dataset(8000), IndexOptions{
		Shards: 8,
		Faults: &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
			2: {Crash: true, CrashAfterFetches: 1},
			5: {Crash: true, CrashAfterFetches: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthyPop := h.Cluster().Count(testRange.Rect())
	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Fatal("degraded query must still complete")
	}
	if !snap.Degraded || snap.ShardsLost != 2 {
		t.Fatalf("snapshot degradation = (%v, %d), want (true, 2)", snap.Degraded, snap.ShardsLost)
	}
	if snap.Population >= healthyPop {
		t.Errorf("effective population %d not shrunk from %d", snap.Population, healthyPop)
	}
	if !snap.Exact || snap.Samples != snap.Population {
		t.Errorf("exhausted degraded run should be exact over survivors: %+v", snap)
	}
	st := h.Cluster().FaultStats()
	if st.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", st.Crashes)
	}
	ms := reg.Snapshot()
	if got := ms["storm.distr.faults.crashes"]; got != uint64(2) {
		t.Errorf("storm.distr.faults.crashes = %v", got)
	}
	if got := ms["storm.engine.queries.degraded"]; got != uint64(1) {
		t.Errorf("storm.engine.queries.degraded = %v", got)
	}
	// Lost-mass bounds ride along on the degraded snapshot: the widened
	// interval must bound the TRUE full-population mean — the run was exact
	// over the survivors, so coverage here is guaranteed, not statistical.
	if snap.LostMassLow == 0 && snap.LostMassHigh == 0 {
		t.Fatal("degraded AVG snapshot should carry lost-mass bounds")
	}
	if snap.LostMassLow >= snap.LostMassHigh {
		t.Errorf("degenerate lost-mass interval [%v, %v]", snap.LostMassLow, snap.LostMassHigh)
	}
	fullMean, _ := trueMean(h, testRange, "value")
	if fullMean < snap.LostMassLow || fullMean > snap.LostMassHigh {
		t.Errorf("full-population mean %v outside lost-mass bounds [%v, %v]",
			fullMean, snap.LostMassLow, snap.LostMassHigh)
	}
	if snap.Recovered {
		t.Error("nothing recovered in a permanent-crash run")
	}
}

// TestDistributedQueryRecovers is the engine-level tentpole scenario: the
// query's top-matching shard crashes mid-stream and comes back on its
// recover-after schedule. The engine's evaluator re-admits it via the
// sampler, restores the effective N, finishes exact over the FULL
// population, and stamps the snapshot and metrics as recovered, not
// degraded.
func TestDistributedQueryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Seed: 42, Fanout: 32, Obs: reg})
	ds := distrtest.Dataset(8000)

	// Pick the shard holding the most matching records so its crash window
	// (after its first fetch) is always hit mid-query. The probe engine
	// shares the seed, so its cluster partitions the dataset identically.
	probe, err := New(Config{Seed: 42, Fanout: 32}).Register(ds, IndexOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	rect := testRange.Rect()
	target, best := 0, -1
	for i, sh := range probe.Cluster().Shards() {
		if n := sh.Index().Count(rect); n > best {
			target, best = i, n
		}
	}
	if best <= 0 {
		t.Fatal("no shard matches the query")
	}

	h, err := e.Register(ds, IndexOptions{
		Shards: 8,
		Faults: &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
			target: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthyPop := h.Cluster().Count(rect)
	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Fatal("recovered query must complete")
	}
	if snap.Degraded || snap.ShardsLost != 0 {
		t.Fatalf("recovered query still degraded: %+v", snap)
	}
	if !snap.Recovered {
		t.Fatal("snapshot should be stamped recovered")
	}
	if snap.Population != healthyPop || snap.Samples != healthyPop || !snap.Exact {
		t.Errorf("recovered run should exhaust the full population %d: %+v", healthyPop, snap)
	}
	if snap.LostMassLow != 0 || snap.LostMassHigh != 0 {
		t.Errorf("recovered snapshot should carry no lost-mass bounds: [%v, %v]",
			snap.LostMassLow, snap.LostMassHigh)
	}
	want, _ := trueMean(h, testRange, "value")
	if math.Abs(snap.Value-want) > 1e-9 {
		t.Errorf("recovered exact AVG = %v, want %v", snap.Value, want)
	}
	st := h.Cluster().FaultStats()
	if st.Crashes != 1 || st.Readmits != 1 || st.ShardsDown != 0 {
		t.Errorf("fault stats = %+v, want one completed crash→readmit cycle", st)
	}
	ms := reg.Snapshot()
	if got := ms["storm.engine.queries.recovered"]; got != uint64(1) {
		t.Errorf("storm.engine.queries.recovered = %v, want 1", got)
	}
	if got := ms["storm.engine.queries.degraded"]; got != uint64(0) {
		t.Errorf("storm.engine.queries.degraded = %v, want 0 (the loss healed mid-query)", got)
	}
	if got := ms["storm.distr.faults.readmits"]; got != uint64(1) {
		t.Errorf("storm.distr.faults.readmits = %v, want 1", got)
	}
}

func TestDistributedQuantileDegrades(t *testing.T) {
	_, h := buildShardedHandle(t, 6000, 6, &distr.FaultPlan{
		Shards: map[int]distr.ShardFaultPlan{1: {Crash: true, CrashAfterFetches: 1}},
	})
	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Median, Attr: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done || !snap.Degraded || snap.ShardsLost != 1 {
		t.Fatalf("median degradation: %+v", snap)
	}
	if !snap.Exact || snap.Samples != snap.Population {
		t.Errorf("exhausted degraded median should be exact over survivors: %+v", snap)
	}
}

// TestRemoteClusterRegistration registers a dataset against real shard
// hosts behind TCP sockets (IndexOptions.ShardAddrs) and checks the
// engine's query path end to end: the optimizer routes to the cluster,
// the exact exhaustive answer matches ground truth, and — because the
// remote coordinator draws the same seed sequence as a simulated one —
// the estimate is byte-identical to the in-process cluster's.
func TestRemoteClusterRegistration(t *testing.T) {
	const n = 4000
	ds := distrtest.Dataset(n)
	addrs := make([]string, 2)
	for i := range addrs {
		host := distr.NewHost()
		host.AddDataset(distrtest.Dataset(n))
		srv, err := wire.NewServer("127.0.0.1:0", host)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}

	e := New(Config{Seed: 42, Fanout: 32})
	h, err := e.Register(ds, IndexOptions{Shards: 4, ShardAddrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster() == nil || !h.Cluster().Remote() {
		t.Fatal("ShardAddrs registration should build a remote cluster")
	}
	plan, err := h.Explain(testRange)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodDistributed {
		t.Errorf("optimizer chose %v, want distributed", plan.Method)
	}

	snap, err := h.Estimate(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "value", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Exact || snap.Degraded {
		t.Fatalf("healthy exhaustive remote run: %+v", snap)
	}
	want, _ := trueMean(h, testRange, "value")
	if math.Abs(snap.Value-want) > 1e-9 {
		t.Errorf("remote exact AVG = %v, want %v", snap.Value, want)
	}
	if net := h.Cluster().Net(); net.BytesSent == 0 || net.BytesRecv == 0 {
		t.Errorf("remote cluster NetStats = %+v, want measured traffic", net)
	}

	// Same engine config, simulated cluster, same query seed: identical
	// sample stream, identical snapshot.
	_, hSim := buildShardedHandle(t, n, 4, nil)
	simSnap, err := hSim.Estimate(context.Background(), testRange, Options{Kind: estimator.Avg, Attr: "value", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if simSnap.Value != snap.Value || simSnap.Samples != snap.Samples {
		t.Errorf("remote snapshot (value %v, samples %d) diverges from simulated (value %v, samples %d)",
			snap.Value, snap.Samples, simSnap.Value, simSnap.Samples)
	}

	// Updates mirror over the wire through the handle.
	rect := testRange.Rect()
	before := h.Cluster().Count(rect)
	id := h.Insert(data.Row{Pos: geo.Vec{30, 30, 50}, Num: map[string]float64{"value": 1}})
	if got := h.Cluster().Count(rect); got != before+1 {
		t.Errorf("remote cluster count after insert = %d, want %d", got, before+1)
	}
	if !h.Delete(id) {
		t.Fatal("delete of mirrored insert failed")
	}

	// Unregister tears the transports down.
	if err := e.Unregister(ds.Name()); err != nil {
		t.Fatal(err)
	}
}

func TestShardedUpdatesReachCluster(t *testing.T) {
	_, h := buildShardedHandle(t, 2000, 4, nil)
	rect := testRange.Rect()
	before := h.Cluster().Count(rect)
	id := h.Insert(data.Row{Pos: geo.Vec{30, 30, 50}, Num: map[string]float64{"value": 1}})
	if got := h.Cluster().Count(rect); got != before+1 {
		t.Errorf("cluster count after insert = %d, want %d", got, before+1)
	}
	if !h.Delete(id) {
		t.Fatal("delete failed")
	}
	if got := h.Cluster().Count(rect); got != before {
		t.Errorf("cluster count after delete = %d, want %d", got, before)
	}
	if removed, err := h.DeleteRange(testRange); err != nil || removed != before {
		t.Fatalf("DeleteRange removed %d (err %v), want %d", removed, err, before)
	}
	if got := h.Cluster().Count(rect); got != 0 {
		t.Errorf("cluster count after DeleteRange = %d, want 0", got)
	}
}
