package engine

import (
	"fmt"

	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/wire"
)

// PushdownStrategy overrides the planner's pushdown-vs-rejection choice
// for WHERE predicates (Options.Pushdown).
type PushdownStrategy int

// Predicate execution strategies.
const (
	// PushdownAuto lets the planner pick by estimated selectivity:
	// low-selectivity predicates prune subtrees through node attribute
	// summaries, broad predicates use the rejection baseline (whose
	// per-draw cost is lower and which loses almost nothing to
	// rejection when most draws qualify).
	PushdownAuto PushdownStrategy = iota
	// PushdownForce always prunes through node attribute summaries.
	PushdownForce
	// PushdownOff always uses the rejection baseline: draw from the
	// plain range stream and discard non-qualifying samples. Distributed
	// queries ignore it — shards always filter locally (see planWhere).
	PushdownOff
)

// String implements fmt.Stringer.
func (s PushdownStrategy) String() string {
	switch s {
	case PushdownAuto:
		return "auto"
	case PushdownForce:
		return "pushdown"
	case PushdownOff:
		return "rejection"
	default:
		return fmt.Sprintf("PushdownStrategy(%d)", int(s))
	}
}

// rejectionThreshold is the estimated-selectivity cutoff of PushdownAuto:
// predicates expected to keep at least this fraction of range matches run
// as rejection (cheap per draw, few wasted draws), anything rarer prunes
// through node summaries. Pushdown's per-descent overhead is a handful of
// digest comparisons, so even near the threshold it never loses by more
// than that constant; at 1% selectivity it wins by the ~100× rejection
// waste (see EXPERIMENTS.md A10).
const rejectionThreshold = 0.5

// wherePlan is the planner's resolution of a query's WHERE predicate: the
// normalized terms (shipped to shards over the wire), the compiled
// record-level matcher, the selectivity estimate behind the strategy
// choice, and the choice itself. A nil *wherePlan means "no predicate" at
// every use site.
type wherePlan struct {
	terms    []pred.Term
	compiled *pred.Compiled
	// est is the estimated fraction of range matches that satisfy the
	// predicate, from the dataset-level attribute envelope.
	est float64
	// pushdown selects node-summary pruning over the rejection baseline.
	pushdown bool
	// win is the query's resolved `LAST` window for the DISTRIBUTED method
	// only (zero otherwise): it rides to the shards as a wire term so they
	// narrow their own time axes. Local methods narrow the query rectangle
	// up front instead and never read it. A LAST query with no WHERE still
	// carries a plan — one with nil terms and a nil compiled matcher —
	// which is why reject and treeFilter below tolerate nil compiled.
	win wire.Window
}

// usePushdown reports whether the plan wants node pruning (nil-safe).
func (p *wherePlan) usePushdown() bool { return p != nil && p.pushdown }

// reject wraps s in the rejection baseline when the plan carries a
// predicate, and returns s unchanged when there is none (nil plan, or a
// window-only plan with no compiled matcher).
func (p *wherePlan) reject(s sampling.Sampler) sampling.Sampler {
	if p == nil || p.compiled == nil {
		return s
	}
	return sampling.NewFiltered(s, p.compiled)
}

// treeFilter builds a fresh pruning filter over sums. Per call because a
// TreeFilter's Pruned counter is per-query state.
func (p *wherePlan) treeFilter(sums *rtree.Summaries) *rtree.TreeFilter {
	return rtree.NewTreeFilter(p.compiled, sums)
}

// planWhere resolves a query's WHERE terms into an executable plan.
// Caller holds h.mu (read side suffices).
//
// It returns a nil plan when there is no effective predicate: none given,
// vacuous after normalization, or the root digests prove every record
// qualifies — dropping the predicate is then strictly cheapest, which is
// how pushdown never loses to rejection on all-pass predicates. It
// returns empty=true when the root digests prove no record can qualify.
func (h *Handle) planWhere(where []pred.Term, strategy PushdownStrategy) (plan *wherePlan, empty bool, err error) {
	if len(where) == 0 {
		return nil, false, nil
	}
	p := pred.Normalize(where)
	if p.Empty() {
		return nil, false, nil
	}
	c, err := p.Compile(h.ds)
	if err != nil {
		return nil, false, fmt.Errorf("engine: %w", err)
	}
	if root := h.rs.Tree().Root(); root != nil {
		switch rtree.NewTreeFilter(c, h.sums).Verdict(root) {
		case pred.None:
			return nil, true, nil
		case pred.All:
			return nil, false, nil
		}
	}
	pl := &wherePlan{terms: p.Terms, compiled: c, est: p.Selectivity(h.sums.RootStats)}
	switch {
	case strategy == PushdownForce:
		pl.pushdown = true
	case strategy == PushdownOff:
		pl.pushdown = false
	default:
		pl.pushdown = pl.est < rejectionThreshold
	}
	if h.cluster != nil {
		// Distributed predicates always push down: rejecting coordinator-
		// side would ship non-qualifying samples across the wire, and the
		// degraded-population accounting needs shard matching counts to be
		// qualifying counts.
		pl.pushdown = true
	}
	if pl.pushdown {
		h.eng.met.pushdownPlans.Inc()
	}
	return pl, false, nil
}

// qualifying returns the exact qualifying population |P ∩ q ∩ σ| for the
// resolved method — the N the estimator scales SUM/COUNT by, applies the
// finite-population correction against, and declares exactness at.
// Caller holds h.mu.
func (h *Handle) qualifying(q geo.Rect, method Method, plan *wherePlan) int {
	if method == MethodDistributed && h.cluster != nil {
		if plan == nil {
			return h.cluster.Count(q)
		}
		return h.cluster.CountWindow(q, plan.terms, plan.win)
	}
	if plan == nil || plan.compiled == nil {
		return h.rs.Count(q)
	}
	return h.rs.Tree().CountWhere(q, plan.treeFilter(h.sums))
}

// ExplainWhere returns the optimizer's plan for a range and an optional
// WHERE predicate (nil terms behave exactly like Explain) without
// executing it.
func (h *Handle) ExplainWhere(q geo.Range, where []pred.Term, strategy PushdownStrategy) (Plan, error) {
	if !q.Valid() {
		return Plan{}, fmt.Errorf("engine: invalid query range %+v", q)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	rect := q.Rect()
	n := h.rs.Len()
	matching := h.rs.Count(rect)
	plan, emptyPred, err := h.planWhere(where, strategy)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{
		Dataset:          h.name,
		N:                n,
		Matching:         matching,
		Method:           h.choose(rect),
		CanonicalSize:    h.rs.Tree().CanonicalSize(rect),
		TreeHeight:       h.rs.Tree().Height(),
		Qualifying:       matching,
		WhereSelectivity: 1,
	}
	if n > 0 {
		p.Selectivity = float64(matching) / float64(n)
	}
	if len(where) > 0 {
		p.Where = pred.Normalize(where).String()
	}
	switch {
	case emptyPred:
		p.Qualifying, p.WhereSelectivity = 0, 0
	case plan != nil:
		p.WhereSelectivity = plan.est
		p.Pushdown = plan.pushdown
		p.Qualifying = h.qualifying(rect, p.Method, plan)
	}
	return p, nil
}
