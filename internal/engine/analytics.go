package engine

import (
	"context"
	"fmt"
	"time"

	"storm/internal/analytics"
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// AnalyticOptions controls an online analytical task (KDE, clustering,
// trajectory, terms). They share the estimator queries' termination model:
// time budget, sample cap, or cancellation.
type AnalyticOptions struct {
	// TimeBudget stops the task after this duration (0 disables).
	TimeBudget time.Duration
	// MaxSamples stops after this many accepted samples (0 disables, in
	// which case the task runs until exhaustion or cancellation).
	MaxSamples int
	// ReportEvery emits a snapshot every this many accepted samples;
	// 0 means 128.
	ReportEvery int
	// Method picks the sampler; Auto consults the optimizer.
	Method Method
	// Mode selects with/without replacement (default without).
	Mode sampling.Mode
	// Seed overrides the sampling seed (0 derives one).
	Seed int64
	// Filter, when non-nil, keeps only records it accepts (e.g. one
	// user's tweets for trajectory reconstruction). Filtered-out samples
	// do not count toward MaxSamples.
	Filter func(data.ID) bool
}

func (o AnalyticOptions) withDefaults() AnalyticOptions {
	if o.ReportEvery == 0 {
		o.ReportEvery = 128
	}
	return o
}

// sampleLoop drives an analytic: it pulls samples, applies the filter,
// calls consume for accepted ones and snapshot at report points. snapshot
// returning false aborts (consumer gone). Caller holds h.mu (the read side
// suffices: analytics only read the indexes).
func (h *Handle) sampleLoop(ctx context.Context, q geo.Rect, opts AnalyticOptions, consume func(data.Entry), snapshot func(done bool) bool) error {
	seed := opts.Seed
	if seed == 0 {
		seed = h.eng.nextSeed()
	}
	sampler, _, err := h.newSampler(opts.Method, q, opts.Mode, stats.NewRNG(seed), nil)
	if err != nil {
		return err
	}
	defer closeSampler(sampler)
	start := time.Now()
	qo := h.eng.met.beginQuery(start)
	defer qo.end()
	var deadline time.Time
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
	}
	// Samples are pulled in adaptive batches (see batch.go) and consumed
	// with the serial loop's per-sample checks, so report cadence and
	// stopping points are unchanged.
	bufp := getEntryBuf()
	defer putEntryBuf(bufp)
	buf := *bufp
	accepted := 0
	size := minPullBatch
	for {
		select {
		case <-ctx.Done():
			snapshot(true)
			return nil
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			snapshot(true)
			return nil
		}
		want := size
		if opts.Filter == nil && opts.MaxSamples > 0 && want > opts.MaxSamples-accepted {
			// Without a filter every drawn sample is accepted, so clamping
			// the pull avoids drawing past the cap.
			want = opts.MaxSamples - accepted
		}
		n := sampling.NextBatch(sampler, buf, want)
		qo.batch(sampler, n)
		for _, e := range buf[:n] {
			if opts.Filter != nil && !opts.Filter(e.ID) {
				continue
			}
			consume(e)
			accepted++
			if accepted%opts.ReportEvery == 0 {
				if !snapshot(false) {
					return nil
				}
			}
			if opts.MaxSamples > 0 && accepted >= opts.MaxSamples {
				snapshot(true)
				return nil
			}
		}
		if n < want {
			snapshot(true)
			return nil
		}
		size = nextPullSize(size)
	}
}

// KDEOptions configures an online kernel density estimation task.
type KDEOptions struct {
	// Nx, Ny are the grid dimensions; 0 means 32.
	Nx, Ny int
	// Kernel is the smoothing kernel (default Gaussian).
	Kernel analytics.Kernel
	// Bandwidth is the kernel bandwidth; 0 derives one tenth of the
	// query's larger spatial extent.
	Bandwidth float64
	// Confidence for per-cell intervals; 0 means 0.95.
	Confidence float64
}

// KDESnapshot is one progress report of an online KDE.
type KDESnapshot struct {
	Map     *analytics.DensityMap
	Elapsed time.Duration
	Done    bool
}

// KDEOnline estimates the density surface of q from online samples,
// streaming density maps of improving quality — the paper's Figure 5
// population-density demo.
func (h *Handle) KDEOnline(ctx context.Context, q geo.Range, kopts KDEOptions, opts AnalyticOptions) (<-chan KDESnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	if kopts.Nx == 0 {
		kopts.Nx = 32
	}
	if kopts.Ny == 0 {
		kopts.Ny = 32
	}
	if kopts.Confidence == 0 {
		kopts.Confidence = 0.95
	}
	if kopts.Bandwidth == 0 {
		w := q.MaxX - q.MinX
		if hgt := q.MaxY - q.MinY; hgt > w {
			w = hgt
		}
		kopts.Bandwidth = w / 10
	}
	kde, err := analytics.NewKDE(q.Rect(), kopts.Nx, kopts.Ny, kopts.Kernel, kopts.Bandwidth, kopts.Confidence)
	if err != nil {
		return nil, err
	}

	out := make(chan KDESnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()
		err := h.sampleLoop(ctx, q.Rect(), opts,
			func(e data.Entry) { kde.Add(e.Pos) },
			func(done bool) bool {
				select {
				case out <- KDESnapshot{Map: kde.Snapshot(), Elapsed: time.Since(start), Done: done}:
					return true
				case <-ctx.Done():
					return false
				}
			})
		if err != nil {
			out <- KDESnapshot{Done: true}
		}
	}()
	return out, nil
}

// TermsSnapshot is one progress report of online short-text understanding.
type TermsSnapshot struct {
	Terms   *analytics.TermSnapshot
	Elapsed time.Duration
	Done    bool
}

// TermsOnline estimates the term-frequency distribution of a text column
// over q from online samples — the paper's Figure 6(b) short-text demo.
// topN bounds the reported term list.
func (h *Handle) TermsOnline(ctx context.Context, q geo.Range, textCol string, topN int, opts AnalyticOptions) (<-chan TermsSnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	h.mu.RLock()
	_, errCol := h.ds.StringColumn(textCol)
	h.mu.RUnlock()
	if errCol != nil {
		return nil, errCol
	}
	if topN <= 0 {
		topN = 10
	}
	ts := analytics.NewTermStats()
	out := make(chan TermsSnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()
		// Re-fetched under the query's lock: inserts before the lock may
		// have grown the column.
		col, _ := h.ds.StringColumn(textCol)
		err := h.sampleLoop(ctx, q.Rect(), opts,
			func(e data.Entry) { ts.Add(col[e.ID]) },
			func(done bool) bool {
				select {
				case out <- TermsSnapshot{Terms: ts.Snapshot(topN), Elapsed: time.Since(start), Done: done}:
					return true
				case <-ctx.Done():
					return false
				}
			})
		if err != nil {
			out <- TermsSnapshot{Done: true}
		}
	}()
	return out, nil
}

// TrajectorySnapshot is one progress report of online trajectory
// reconstruction.
type TrajectorySnapshot struct {
	Path    *analytics.Path
	Elapsed time.Duration
	Done    bool
}

// TrajectoryOnline reconstructs the approximate movement path of records
// matching userCol == user within q — the paper's Figure 6(a) demo.
// epsilon > 0 enables Douglas–Peucker simplification.
func (h *Handle) TrajectoryOnline(ctx context.Context, q geo.Range, userCol, user string, epsilon float64, opts AnalyticOptions) (<-chan TrajectorySnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	h.mu.RLock()
	_, errCol := h.ds.StringColumn(userCol)
	h.mu.RUnlock()
	if errCol != nil {
		return nil, errCol
	}
	// col is (re-)fetched under the query goroutine's lock below; the
	// filter closure runs only inside that goroutine.
	var col []string
	baseFilter := opts.Filter
	opts.Filter = func(id data.ID) bool {
		if col[id] != user {
			return false
		}
		return baseFilter == nil || baseFilter(id)
	}
	tr := analytics.NewTrajectory()
	out := make(chan TrajectorySnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()
		col, _ = h.ds.StringColumn(userCol)
		err := h.sampleLoop(ctx, q.Rect(), opts,
			func(e data.Entry) { tr.Add(e.Pos) },
			func(done bool) bool {
				select {
				case out <- TrajectorySnapshot{Path: tr.Snapshot(epsilon), Elapsed: time.Since(start), Done: done}:
					return true
				case <-ctx.Done():
					return false
				}
			})
		if err != nil {
			out <- TrajectorySnapshot{Done: true}
		}
	}()
	return out, nil
}

// ClusterSnapshot is one progress report of online spatial clustering.
type ClusterSnapshot struct {
	Clustering *analytics.Clustering
	Elapsed    time.Duration
	Done       bool
}

// ClusterOnline runs online k-means over samples from q: the clustering is
// recomputed at every report point and its quality improves with sample
// size (paper §3.2's clustering remark).
func (h *Handle) ClusterOnline(ctx context.Context, q geo.Range, k int, opts AnalyticOptions) (<-chan ClusterSnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = h.eng.nextSeed()
	}
	km, err := analytics.NewKMeans(k, stats.NewRNG(seed+1))
	if err != nil {
		return nil, err
	}
	out := make(chan ClusterSnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()
		err := h.sampleLoop(ctx, q.Rect(), opts,
			func(e data.Entry) { km.Add(e.Pos) },
			func(done bool) bool {
				select {
				case out <- ClusterSnapshot{Clustering: km.Snapshot(), Elapsed: time.Since(start), Done: done}:
					return true
				case <-ctx.Done():
					return false
				}
			})
		if err != nil {
			out <- ClusterSnapshot{Done: true}
		}
	}()
	return out, nil
}
