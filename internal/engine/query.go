package engine

import (
	"context"
	"fmt"
	"time"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/sampling"
	"storm/internal/stats"
	"storm/internal/wire"
)

// Options controls one online aggregation query.
type Options struct {
	// Kind is the aggregate to estimate.
	Kind estimator.Kind
	// Attr is the numeric attribute to aggregate (ignored for COUNT).
	Attr string
	// QuantileP is the quantile for Kind == Quant (Median fixes it to
	// 0.5); must be in (0, 1).
	QuantileP float64
	// Confidence level for intervals; 0 means 0.95.
	Confidence float64
	// TargetRelError stops the query once the CI half-width divided by
	// the estimate drops to this value (0 disables).
	TargetRelError float64
	// TargetHalfWidth stops the query once the CI half-width drops to
	// this absolute value (0 disables).
	TargetHalfWidth float64
	// TimeBudget stops the query after this duration, returning the best
	// estimate so far — the paper's "best-effort" mode (0 disables).
	TimeBudget time.Duration
	// MaxSamples stops after this many samples (0 disables).
	MaxSamples int
	// Mode selects with/without replacement; the default
	// (WithoutReplacement) converges to the exact answer.
	Mode sampling.Mode
	// Method picks the sampler; Auto consults the query optimizer.
	Method Method
	// Where restricts the aggregate to records whose numeric attributes
	// satisfy every term (the query language's WHERE comparisons, ANDed).
	// Samples stay exactly uniform over the qualifying records, and the
	// reported Population is the qualifying count. Nil means no predicate.
	Where []pred.Term
	// Pushdown overrides the planner's predicate strategy; the zero value
	// (PushdownAuto) picks pushdown or rejection by estimated selectivity.
	Pushdown PushdownStrategy
	// Last restricts the query to records whose event time (the t
	// coordinate, in seconds) lies in the trailing window of this duration
	// ending at the dataset's watermark — the `LAST <dur>` clause. The
	// window is resolved against the watermark once, when the query
	// starts; records streamed in later do not join a running query. 0
	// disables. Composes with Where: the population is the windowed
	// qualifying count.
	Last time.Duration
	// ReportEvery emits a snapshot every this many samples; 0 means 64.
	ReportEvery int
	// Seed overrides the query's sampling seed (0 derives one from the
	// engine seed sequence). Two queries with the same explicit seed,
	// range and options return identical sample streams whether they run
	// serially or concurrently: per-node sample buffers are deterministic
	// in the index state, never in other queries' history.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.ReportEvery == 0 {
		o.ReportEvery = 64
	}
	return o
}

// Snapshot is one progress report of an online query.
type Snapshot struct {
	estimator.Estimate
	// Elapsed is the time since query start.
	Elapsed time.Duration
	// Method is the sampler that served the query.
	Method string
	// IO is the simulated I/O attributed to this query so far. It is
	// counted through a per-query iosim.Counter, so it stays exact even
	// when many queries run concurrently; zero when I/O simulation is
	// disabled. CostUnits is not attributed per query (hit/miss costs are
	// charged on the shared device).
	IO iosim.Stats
	// Done marks the final snapshot: target met, budget spent, sample
	// exhausted, or context cancelled.
	Done bool
	// Degraded marks a distributed query that lost shards mid-stream
	// (crash or retry exhaustion). The estimate then covers the surviving
	// population only: Population has been shrunk by the lost shards'
	// matching counts so the CI stays honest over what can still be
	// sampled (see DESIGN.md §4.3).
	Degraded bool
	// ShardsLost is how many shards the query lost mid-stream; 0 unless
	// Degraded.
	ShardsLost int
	// Recovered marks a distributed query that lost shards mid-stream and
	// re-admitted every one of them after they recovered: the estimate is
	// back over the full population (Population restored, no lost mass).
	// Mutually exclusive with Degraded.
	Recovered bool
	// FailedOver marks a distributed query that lost a shard replica
	// mid-stream and moved its remainder onto a surviving copy. Unlike
	// Degraded, the population is intact — the stream stays exactly
	// uniform over the full matching set, the CI needs no lost-mass
	// widening, and the final answer matches a healthy run's guarantees.
	// A query can be both FailedOver and Degraded when some shard lost
	// every copy while another only lost one (see DESIGN.md §4.8).
	FailedOver bool
	// RejectRatio is the fraction of the sampler's draws that rejection
	// steps discarded (SamplerStats Rejects/Draws): out-of-range or
	// predicate-failing candidates for SampleFirst and the rejection
	// WHERE strategy, weight-consumed non-qualifying draws for pruned
	// RS-tree streams. Zero for exact answers and clean pushdown streams
	// — the headline number the A10 ablation compares across strategies.
	RejectRatio float64
	// Windowed marks a `LAST <dur>` query. WindowLo and WindowHi are the
	// resolved event-time bounds (seconds, anchored at the dataset
	// watermark) the query actually covered; an inverted pair
	// (WindowLo > WindowHi) reports a window resolved against a dataset
	// that has never held a record — an empty population, not an error.
	Windowed bool
	// WindowLo and WindowHi bound the window (see Windowed).
	WindowLo, WindowHi float64
	// LostMassLow and LostMassHigh, set only on degraded AVG/SUM
	// snapshots, are worst-case bounds on the aggregate over the full
	// pre-crash population: the surviving-population CI widened by the
	// lost shards' per-attribute min/max summaries (see
	// estimator.LostMassBounds and DESIGN.md §4.3). Whenever the CI
	// covers the surviving aggregate, [LostMassLow, LostMassHigh] covers
	// the full-population truth. Both zero when unavailable (healthy or
	// recovered query, non-AVG/SUM kind, or no summary for the
	// attribute).
	LostMassLow  float64
	LostMassHigh float64
}

// EstimateOnline executes an online aggregation query, streaming snapshots
// on the returned channel until the query terminates; the final snapshot
// has Done = true and the channel is then closed. Cancel ctx to stop early
// (the paper's interactive-exploration flow: fire the next query without
// waiting for this one).
func (h *Handle) EstimateOnline(ctx context.Context, q geo.Range, opts Options) (<-chan Snapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	if opts.Kind != estimator.Count {
		if opts.Attr == "" {
			return nil, fmt.Errorf("engine: %v requires an attribute", opts.Kind)
		}
		// Column metadata is mutated by Insert; read it under the lock.
		h.mu.RLock()
		ok := h.ds.HasNumeric(opts.Attr)
		h.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("engine: dataset %q has no numeric column %q", h.name, opts.Attr)
		}
	}
	if opts.Kind == estimator.Quant && (opts.QuantileP <= 0 || opts.QuantileP >= 1) {
		return nil, fmt.Errorf("engine: QUANTILE requires 0 < p < 1, got %v", opts.QuantileP)
	}

	out := make(chan Snapshot, 16)
	go func() {
		defer close(out)
		// Read lock: queries share the handle; only updates take the
		// write side.
		h.mu.RLock()
		defer h.mu.RUnlock()
		h.runEstimate(ctx, q.Rect(), opts, out)
	}()
	return out, nil
}

// Estimate runs EstimateOnline to completion and returns the final
// estimate — the non-interactive convenience used by tests and examples.
func (h *Handle) Estimate(ctx context.Context, q geo.Range, opts Options) (Snapshot, error) {
	ch, err := h.EstimateOnline(ctx, q, opts)
	if err != nil {
		return Snapshot{}, err
	}
	var last Snapshot
	for s := range ch {
		last = s
	}
	return last, nil
}

// runEstimate is the evaluator loop. Caller holds h.mu.
func (h *Handle) runEstimate(ctx context.Context, q geo.Rect, opts Options, out chan<- Snapshot) {
	start := time.Now()
	qo := h.beginQuery(start)
	defer qo.end()
	seed := opts.Seed
	if seed == 0 {
		seed = h.eng.nextSeed()
	}
	rng := stats.NewRNG(seed)

	// Resolve the predicate plan and method up front: the population is
	// the qualifying count — for distributed queries the cluster's, which
	// excludes shards that are already down — the honest effective N for
	// the stream the coordinator can deliver.
	plan, emptyPred, err := h.planWhere(opts.Where, opts.Pushdown)
	if err != nil {
		out <- Snapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
		return
	}
	// Resolve the LAST window against the watermark before sizing the
	// population, so estimator CIs, finite-population corrections and
	// exactness all use the windowed count. Local methods narrow the query
	// rectangle's time axis here; the distributed method keeps the rect
	// intact and ships the resolved window as a wire term so every shard
	// narrows its own time axis — identically in-process and over TCP.
	win := h.window(opts.Last)
	windowed, winLo, winHi := win.Set, win.Lo, win.Hi
	if h.cluster == nil {
		// No cluster: narrow before method resolution so the optimizer
		// costs the rectangle the query actually covers.
		q = win.Apply(q)
		win = wire.Window{}
	}
	opts.Method = h.resolveMethod(opts.Method, q)
	if win.Set {
		if opts.Method == MethodDistributed {
			if plan == nil {
				plan = &wherePlan{}
			}
			plan.win = win
		} else {
			q = win.Apply(q)
		}
	}
	population := 0
	if !emptyPred {
		population = h.qualifying(q, opts.Method, plan)
	}

	// Order statistics go through the quantile estimator, which keeps
	// its sample and reports distribution-free order-statistic bounds.
	if opts.Kind == estimator.Median || opts.Kind == estimator.Quant {
		h.runQuantile(ctx, q, opts, population, plan, rng, start, out)
		return
	}

	est, err := estimator.New(opts.Kind, opts.Confidence, population, opts.Mode == sampling.WithoutReplacement)
	if err != nil {
		// Options were validated above; population is always known here,
		// so this is unreachable, but fail loudly rather than silently.
		out <- Snapshot{Done: true}
		return
	}

	var ctr *iosim.Counter
	var deg degrader
	var fo failoverer
	var lmb lostMassBounder
	var srep sampling.StatsReporter
	wasDegraded, wasRecovered, wasFailedOver := false, false, false
	emit := func(done bool, method string) bool {
		var shardsLost int
		recovered := false
		failedOver := fo != nil && fo.Failovers() > 0
		if failedOver && !wasFailedOver {
			wasFailedOver = true
			h.eng.met.queriesFailedOver.Inc()
		}
		if deg != nil {
			lost, lostPop := deg.Degradation()
			// Re-target the estimator at the stream's current effective
			// population before snapshotting: shards that died mid-query
			// shrink it so the point estimate, SUM/COUNT scaling and
			// finite-population correction stay honest over what the
			// stream can still cover, and shards re-admitted after
			// recovering restore it (see DESIGN.md §4.3).
			shardsLost = lost
			est.SetPopulation(population - lostPop)
			if lost > 0 && !wasDegraded {
				wasDegraded = true
				h.eng.met.queriesDegraded.Inc()
			}
			if rm, ok := deg.(readmitter); ok && rm.Readmits() > 0 && lost == 0 {
				// Every lost shard came back: the query has recovered
				// onto the full population.
				recovered = true
				if !wasRecovered {
					wasRecovered = true
					h.eng.met.queriesRecovered.Inc()
				}
			}
		}
		s := Snapshot{
			Estimate:   est.Snapshot(),
			Elapsed:    time.Since(start),
			Method:     method,
			Done:       done,
			Degraded:   shardsLost > 0,
			ShardsLost: shardsLost,
			Recovered:  recovered,
			FailedOver: failedOver,
			Windowed:   windowed,
			WindowLo:   winLo,
			WindowHi:   winHi,
		}
		if shardsLost > 0 && lmb != nil {
			if lo, hi, lostN, ok := lmb.LostMassBounds(opts.Attr); ok {
				if low, high, ok := estimator.LostMassBounds(s.Estimate, lo, hi, lostN); ok {
					s.LostMassLow, s.LostMassHigh = low, high
				}
			}
		}
		if ctr != nil {
			s.IO = ctr.Snapshot()
		}
		if srep != nil {
			if st := srep.SamplerStats(); st.Draws > 0 {
				s.RejectRatio = float64(st.Rejects) / float64(st.Draws)
			}
		}
		qo.ci(s.RelativeErrorBound())
		select {
		case out <- s:
			return true
		case <-ctx.Done():
			return false
		}
	}

	// COUNT is exact via canonical range counting (predicates included:
	// the qualifying population is counted through the pruned traversal):
	// answer immediately.
	if opts.Kind == estimator.Count {
		emit(true, "range-count")
		return
	}
	if population == 0 {
		emit(true, "empty")
		return
	}

	sampler, c, err := h.newSampler(opts.Method, q, opts.Mode, rng, plan)
	if err != nil {
		// Surface the configuration error as a terminal zero snapshot;
		// EstimateOnline validated what it could synchronously.
		emit(true, fmt.Sprintf("error: %v", err))
		return
	}
	defer closeSampler(sampler)
	ctr = c
	deg, _ = sampler.(degrader)
	fo, _ = sampler.(failoverer)
	lmb, _ = sampler.(lostMassBounder)
	srep, _ = sampler.(sampling.StatsReporter)
	col, err := h.ds.NumericColumn(opts.Attr)
	if err != nil {
		emit(true, fmt.Sprintf("error: %v", err))
		return
	}
	// Feed the dataset's contract profile with this query's outcome; the
	// contract planner's rate/CV predictions come from these EWMAs.
	defer func() {
		h.prof.observe(opts.Attr, opts.Confidence, est.Snapshot(), time.Since(start))
	}()

	var deadline time.Time
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
		if d, ok := sampler.(deadliner); ok {
			// Push the budget down to the shard fetch boundary: a
			// distributed sampler then caps per-fetch RPC timeouts and
			// stops retry/backoff at the deadline instead of letting one
			// slow shard run the query past it.
			d.SetDeadline(deadline)
		}
	}

	targetMet := func() bool {
		snap := est.Snapshot()
		if snap.Exact {
			return true
		}
		if opts.TargetHalfWidth > 0 && snap.HalfWidth <= opts.TargetHalfWidth {
			return true
		}
		if opts.TargetRelError > 0 && snap.RelativeErrorBound() <= opts.TargetRelError {
			return true
		}
		return false
	}

	// Samples are pulled in adaptive batches (see batch.go) but folded into
	// the estimator with exactly the serial loop's per-sample report and
	// termination checks, so emitted snapshots and stopping points are
	// unchanged — batching only amortizes sampler and device overheads.
	bufp := getEntryBuf()
	defer putEntryBuf(bufp)
	buf := *bufp
	k := 0
	size := minPullBatch
	for {
		select {
		case <-ctx.Done():
			emit(true, sampler.Name())
			return
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			emit(true, sampler.Name())
			return
		}
		want := size
		if opts.MaxSamples > 0 && want > opts.MaxSamples-k {
			want = opts.MaxSamples - k
		}
		n := sampling.NextBatch(sampler, buf, want)
		qo.batch(sampler, n)
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
			k++
			if k%opts.ReportEvery == 0 {
				if !emit(false, sampler.Name()) {
					return
				}
				if targetMet() {
					emit(true, sampler.Name())
					return
				}
			}
			if opts.MaxSamples > 0 && k >= opts.MaxSamples {
				emit(true, sampler.Name())
				return
			}
		}
		if n < want {
			emit(true, sampler.Name())
			return
		}
		size = nextPullSize(size)
	}
}

// degrader is implemented by samplers whose stream can lose part of its
// population mid-query (the distributed coordinator): Degradation reports
// how many shards were lost and the matching population lost with them.
type degrader interface {
	Degradation() (shardsLost, lostPopulation int)
}

// readmitter is implemented by degradable samplers that can re-admit a
// lost shard after it recovers: Readmits reports how many re-admissions
// the query has made. A query with Readmits > 0 and no currently lost
// shards has recovered onto the full population.
type readmitter interface {
	Readmits() int
}

// deadliner is implemented by samplers that can enforce a wall-clock
// deadline inside their own draw machinery (the distributed coordinator
// caps per-fetch RPC timeouts and abandons retry/backoff at the
// deadline). The evaluator loop installs Options.TimeBudget through it so
// contract deadlines hold at the shard fetch boundary, not just between
// batches.
type deadliner interface {
	SetDeadline(time.Time)
}

// failoverer is implemented by samplers that can move a shard's stream
// remainder onto a surviving replica when the serving copy dies (the
// distributed coordinator at Replicas >= 2): Failovers reports how many
// such moves the query has made. Unlike degradation, a failover keeps
// the population intact — the snapshot surfaces it as FailedOver, not
// Degraded.
type failoverer interface {
	Failovers() int
}

// lostMassBounder is implemented by degradable samplers that can bound
// the attribute values of their lost population from coordinator-side
// per-shard summaries (count/sum/min/max per numeric attribute): every
// lost record's value of attr provably lies in [lo, hi]. The engine
// combines these with the surviving-population CI via
// estimator.LostMassBounds into Snapshot.LostMassLow/High.
type lostMassBounder interface {
	LostMassBounds(attr string) (lo, hi float64, lostPop int, ok bool)
}

// resolveMethod applies the optimizer to Auto and returns any other method
// unchanged. Caller holds h.mu (read side suffices).
func (h *Handle) resolveMethod(m Method, q geo.Rect) Method {
	if m == Auto {
		return h.choose(q)
	}
	return m
}

// runQuantile is the evaluator loop for MEDIAN/QUANTILE queries. Caller
// holds h.mu. The Snapshot's HalfWidth is the wider side of the
// order-statistic confidence bounds.
func (h *Handle) runQuantile(ctx context.Context, q geo.Rect, opts Options, population int, plan *wherePlan, rng *stats.RNG, start time.Time, out chan<- Snapshot) {
	qo := h.beginQuery(start)
	defer qo.end()
	p := opts.QuantileP
	if opts.Kind == estimator.Median {
		p = 0.5
	}
	qe, err := estimator.NewQuantile(p, opts.Confidence)
	if err != nil {
		out <- Snapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
		return
	}
	// The caller already narrowed q (or attached the window to the plan);
	// re-resolving here only feeds the display fields, and is stable under
	// h.mu — the watermark advances only with the write lock held.
	win := h.window(opts.Last)
	if population == 0 {
		out <- Snapshot{
			Estimate: estimator.Estimate{Kind: opts.Kind, Confidence: opts.Confidence},
			Done:     true, Method: "empty",
			Windowed: win.Set, WindowLo: win.Lo, WindowHi: win.Hi,
		}
		return
	}
	sampler, ctr, err := h.newSampler(opts.Method, q, opts.Mode, rng, plan)
	if err != nil {
		out <- Snapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
		return
	}
	defer closeSampler(sampler)
	deg, _ := sampler.(degrader)
	fo, _ := sampler.(failoverer)
	srep, _ := sampler.(sampling.StatsReporter)
	col, err := h.ds.NumericColumn(opts.Attr)
	if err != nil {
		out <- Snapshot{Done: true, Method: fmt.Sprintf("error: %v", err)}
		return
	}
	var deadline time.Time
	if opts.TimeBudget > 0 {
		deadline = start.Add(opts.TimeBudget)
		if d, ok := sampler.(deadliner); ok {
			d.SetDeadline(deadline)
		}
	}

	wasDegraded, wasRecovered, wasFailedOver := false, false, false
	emit := func(done bool) bool {
		// Shard loss shrinks the quantile's effective population the same
		// way runEstimate's does: exhaustion and the reported Population
		// track what the stream can still deliver. Re-admitted shards
		// restore it (lostPop drops back to zero), and the down→up
		// transition is surfaced as Recovered.
		effPop := population
		shardsLost := 0
		recovered := false
		failedOver := fo != nil && fo.Failovers() > 0
		if failedOver && !wasFailedOver {
			wasFailedOver = true
			h.eng.met.queriesFailedOver.Inc()
		}
		if deg != nil {
			lost, lostPop := deg.Degradation()
			shardsLost = lost
			effPop = population - lostPop
			if lost > 0 && !wasDegraded {
				wasDegraded = true
				h.eng.met.queriesDegraded.Inc()
			}
			if rm, ok := deg.(readmitter); ok && rm.Readmits() > 0 && lost == 0 {
				recovered = true
				if !wasRecovered {
					wasRecovered = true
					h.eng.met.queriesRecovered.Inc()
				}
			}
		}
		snap := qe.Snapshot()
		hw := snap.Hi - snap.Value
		if lo := snap.Value - snap.Lo; lo > hw {
			hw = lo
		}
		exhausted := opts.Mode == sampling.WithoutReplacement && snap.Samples >= effPop
		if exhausted {
			hw = 0
		}
		s := Snapshot{
			Estimate: estimator.Estimate{
				Kind:       opts.Kind,
				Value:      snap.Value,
				HalfWidth:  hw,
				Confidence: opts.Confidence,
				Samples:    snap.Samples,
				Population: effPop,
				Exact:      exhausted,
			},
			Elapsed:    time.Since(start),
			Method:     sampler.Name(),
			Done:       done,
			Degraded:   shardsLost > 0,
			ShardsLost: shardsLost,
			Recovered:  recovered,
			FailedOver: failedOver,
			Windowed:   win.Set,
			WindowLo:   win.Lo,
			WindowHi:   win.Hi,
		}
		if ctr != nil {
			s.IO = ctr.Snapshot()
		}
		if srep != nil {
			if st := srep.SamplerStats(); st.Draws > 0 {
				s.RejectRatio = float64(st.Rejects) / float64(st.Draws)
			}
		}
		qo.ci(s.RelativeErrorBound())
		select {
		case out <- s:
			return true
		case <-ctx.Done():
			return false
		}
	}

	// Adaptive batch pulls with the serial loop's per-sample checks (see
	// runEstimate).
	bufp := getEntryBuf()
	defer putEntryBuf(bufp)
	buf := *bufp
	k := 0
	size := minPullBatch
	for {
		select {
		case <-ctx.Done():
			emit(true)
			return
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			emit(true)
			return
		}
		want := size
		if opts.MaxSamples > 0 && want > opts.MaxSamples-k {
			want = opts.MaxSamples - k
		}
		n := sampling.NextBatch(sampler, buf, want)
		qo.batch(sampler, n)
		for _, e := range buf[:n] {
			qe.Add(col[e.ID])
			k++
			if k%opts.ReportEvery == 0 {
				if !emit(false) {
					return
				}
				if opts.TargetHalfWidth > 0 {
					snap := qe.Snapshot()
					if snap.Hi-snap.Lo <= 2*opts.TargetHalfWidth {
						emit(true)
						return
					}
				}
			}
			if opts.MaxSamples > 0 && k >= opts.MaxSamples {
				emit(true)
				return
			}
		}
		if n < want {
			emit(true)
			return
		}
		size = nextPullSize(size)
	}
}

// GroupsSnapshot is one progress report of an online group-by query.
type GroupsSnapshot struct {
	Groups  []estimator.GroupEstimate
	Elapsed time.Duration
	Samples int
	Done    bool
}

// GroupByOnline estimates a per-group aggregate (AVG only, the standard
// online group-by) keyed by a string column, streaming snapshots whose
// group means tighten as samples arrive. Groups appear as soon as a sample
// lands in them.
func (h *Handle) GroupByOnline(ctx context.Context, q geo.Range, attr, groupCol string, opts Options) (<-chan GroupsSnapshot, error) {
	opts = opts.withDefaults()
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	if opts.Kind != estimator.Avg {
		return nil, fmt.Errorf("engine: GROUP BY supports AVG only (per-group population sizes are unknown)")
	}
	h.mu.RLock()
	_, errNum := h.ds.NumericColumn(attr)
	_, errStr := h.ds.StringColumn(groupCol)
	h.mu.RUnlock()
	if errNum != nil {
		return nil, errNum
	}
	if errStr != nil {
		return nil, errStr
	}
	out := make(chan GroupsSnapshot, 8)
	start := time.Now()
	go func() {
		defer close(out)
		h.mu.RLock()
		defer h.mu.RUnlock()
		// Re-fetch the columns under the query's lock: inserts between
		// validation and here may have grown them, and the sampler can
		// return those new records.
		col, _ := h.ds.NumericColumn(attr)
		keys, _ := h.ds.StringColumn(groupCol)
		gb := estimator.NewGroupBy(estimator.Avg, opts.Confidence)
		samples := 0
		err := h.sampleLoop(ctx, q.Rect(), AnalyticOptions{
			TimeBudget:  opts.TimeBudget,
			MaxSamples:  opts.MaxSamples,
			ReportEvery: opts.ReportEvery,
			Method:      opts.Method,
			Mode:        opts.Mode,
			Seed:        opts.Seed,
		},
			func(e data.Entry) {
				gb.Add(keys[e.ID], col[e.ID])
				samples++
			},
			func(done bool) bool {
				select {
				case out <- GroupsSnapshot{Groups: gb.Snapshot(), Elapsed: time.Since(start), Samples: samples, Done: done}:
					return true
				case <-ctx.Done():
					return false
				}
			})
		if err != nil {
			out <- GroupsSnapshot{Done: true}
		}
	}()
	return out, nil
}

// Sample exposes raw online samples from a range: it returns up to k
// entries using the given method (the STORM library/API surface that
// customized analytics build on).
func (h *Handle) Sample(q geo.Range, k int, method Method, mode sampling.Mode, seed int64) ([]data.Entry, error) {
	if !q.Valid() {
		return nil, fmt.Errorf("engine: invalid query range %+v", q)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if seed == 0 {
		seed = h.eng.nextSeed()
	}
	sampler, _, err := h.newSampler(method, q.Rect(), mode, stats.NewRNG(seed), nil)
	if err != nil {
		return nil, err
	}
	defer closeSampler(sampler)
	qo := h.beginQuery(time.Now())
	defer qo.end()
	out := make([]data.Entry, k)
	got := sampling.NextBatch(sampler, out, k)
	qo.batch(sampler, got)
	return out[:got], nil
}
