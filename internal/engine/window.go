package engine

import (
	"math"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/wire"
)

// noteTime advances the dataset watermark — the maximum event time (the
// t coordinate, in seconds) of any indexed record — to t if it is ahead.
// Lock-free CAS max: callers hold the handle in any lock state.
func (h *Handle) noteTime(t float64) {
	if math.IsNaN(t) {
		return
	}
	for {
		cur := h.wm.Load()
		if h.wmSet.Load() && math.Float64frombits(cur) >= t {
			return
		}
		if h.wm.CompareAndSwap(cur, math.Float64bits(t)) {
			h.wmSet.Store(true)
			return
		}
	}
}

// Watermark returns the dataset's event-time watermark — the maximum t
// coordinate ever indexed, the "now" that `LAST <dur>` windows trail
// behind. ok is false for a dataset that has never held a record.
// Deletions do not lower the watermark: a window anchored at the latest
// time the stream reached stays monotone.
func (h *Handle) Watermark() (t float64, ok bool) {
	if !h.wmSet.Load() {
		return 0, false
	}
	return math.Float64frombits(h.wm.Load()), true
}

// WindowRange narrows r's time axis to the trailing window of duration d
// ending at the dataset watermark — the range a `LAST <dur>` query
// actually covers. d <= 0 returns r unchanged. On a dataset with no
// watermark (never held a record) the returned range is time-empty
// (MinT > MaxT), which every index counts and samples as zero.
func (h *Handle) WindowRange(r geo.Range, d time.Duration) geo.Range {
	if d <= 0 {
		return r
	}
	wm, ok := h.Watermark()
	if !ok {
		r.MinT, r.MaxT = 1, 0
		return r
	}
	if lo := wm - d.Seconds(); r.MinT < lo {
		r.MinT = lo
	}
	if r.MaxT > wm {
		r.MaxT = wm
	}
	return r
}

// window resolves Options.Last against the watermark into a wire window
// term. Zero-valued (Set == false) when the query has no LAST clause; a
// window over an empty dataset comes back inverted (Lo > Hi) so that
// intersecting with it yields an empty rect.
func (h *Handle) window(last time.Duration) wire.Window {
	if last <= 0 {
		return wire.Window{}
	}
	wm, ok := h.Watermark()
	if !ok {
		return wire.Window{Set: true, Lo: 1, Hi: 0}
	}
	return wire.Window{Set: true, Lo: wm - last.Seconds(), Hi: wm}
}

// InsertBatch appends a batch of rows and adds them to every index under
// ONE write-lock acquisition — the streaming ingest drain path (package
// ingest). The RS-tree ingests the whole batch as Hilbert-sorted runs
// (rtree.Tree.InsertBatch): one descent per run instead of one per
// record, whole-run leaf splices, and evenly-filled multi-way splits,
// which is what lets the drain keep pace with producer append rates.
// Returned IDs are in the rows' original order.
func (h *Handle) InsertBatch(rows []data.Row) []data.ID {
	if len(rows) == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]data.ID, len(rows))
	entries := make([]data.Entry, len(rows))
	h.ds.Grow(len(rows))
	for i, row := range rows {
		id := h.ds.Append(row)
		ids[i] = id
		entries[i] = data.Entry{ID: id, Pos: row.Pos}
		h.noteTime(row.Pos[2])
	}
	h.rs.InsertBatch(entries) // reorders entries in place
	if h.ls != nil || h.cluster != nil {
		// The secondary indexes keep their per-entry insert paths; the
		// Hilbert order the batch now carries keeps those spatially
		// clustered too.
		for _, e := range entries {
			if h.ls != nil {
				h.ls.Insert(e)
			}
			if h.cluster != nil {
				h.cluster.Insert(e)
			}
		}
	}
	return ids
}
