package engine

import (
	"sync"

	"storm/internal/data"
)

// Adaptive batch-growth policy for the evaluator loops: the first pull is
// small so the first confidence interval reaches the user as fast as a
// per-sample loop would, then the pull size doubles per round up to a cap,
// amortizing sampler and device overheads once the query is clearly going
// to run long. The cap bounds both wasted draws on early termination and
// snapshot latency (a snapshot can lag the newest sample by at most one
// batch).
const (
	minPullBatch = 16
	maxPullBatch = 1024
)

// nextPullSize doubles the batch size up to the cap.
func nextPullSize(size int) int {
	if size >= maxPullBatch {
		return maxPullBatch
	}
	size *= 2
	if size > maxPullBatch {
		size = maxPullBatch
	}
	return size
}

// entryBufPool recycles the per-query pull buffers (maxPullBatch entries,
// ~32 KiB) across queries.
var entryBufPool = sync.Pool{
	New: func() any {
		buf := make([]data.Entry, maxPullBatch)
		return &buf
	},
}

func getEntryBuf() *[]data.Entry    { return entryBufPool.Get().(*[]data.Entry) }
func putEntryBuf(buf *[]data.Entry) { entryBufPool.Put(buf) }
