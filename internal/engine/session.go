package engine

import (
	"context"
	"sync"

	"storm/internal/geo"
)

// Session models the paper's interactive exploration flow: a user keeps
// one query running at a time and may replace it at any moment — zooming
// to a different region or adjusting the time window — without waiting for
// the running query to finish. Starting a new query through a session
// cancels the previous one.
type Session struct {
	mu     sync.Mutex
	handle *Handle
	cancel context.CancelFunc
}

// NewSession returns an interactive session over a dataset.
func NewSession(h *Handle) *Session {
	return &Session{handle: h}
}

// Handle returns the session's dataset handle.
func (s *Session) Handle() *Handle { return s.handle }

// begin cancels any running query and returns a context for the next one.
func (s *Session) begin(parent context.Context) context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
	}
	ctx, cancel := context.WithCancel(parent)
	s.cancel = cancel
	return ctx
}

// Stop cancels the running query, if any.
func (s *Session) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// EstimateOnline starts an online aggregation query, cancelling the
// session's previous query first.
func (s *Session) EstimateOnline(parent context.Context, q geo.Range, opts Options) (<-chan Snapshot, error) {
	return s.handle.EstimateOnline(s.begin(parent), q, opts)
}

// KDEOnline starts an online KDE, cancelling the previous query first.
func (s *Session) KDEOnline(parent context.Context, q geo.Range, kopts KDEOptions, opts AnalyticOptions) (<-chan KDESnapshot, error) {
	return s.handle.KDEOnline(s.begin(parent), q, kopts, opts)
}

// TermsOnline starts online short-text understanding, cancelling the
// previous query first.
func (s *Session) TermsOnline(parent context.Context, q geo.Range, textCol string, topN int, opts AnalyticOptions) (<-chan TermsSnapshot, error) {
	return s.handle.TermsOnline(s.begin(parent), q, textCol, topN, opts)
}
