package engine

import (
	"context"
	"os"
	"testing"

	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/obs"
)

func TestQueryMetricsPopulated(t *testing.T) {
	e, h := buildHandle(t, 20_000, false)
	reg := e.Obs()
	if reg == nil {
		t.Fatal("metrics should be on by default")
	}

	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Method: MethodRSTree, MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Fatal("query did not finish")
	}

	if got := reg.Counter("storm.engine.queries.started").Value(); got != 1 {
		t.Errorf("queries.started = %d, want 1", got)
	}
	if got := reg.Counter("storm.engine.queries.done").Value(); got != 1 {
		t.Errorf("queries.done = %d, want 1", got)
	}
	if got := reg.Gauge("storm.engine.queries.active").Value(); got != 0 {
		t.Errorf("queries.active = %d, want 0 after completion", got)
	}
	if got := reg.Counter("storm.engine.samples.drawn").Value(); got < uint64(snap.Samples) {
		t.Errorf("samples.drawn = %d, want >= %d", got, snap.Samples)
	}
	if bs := reg.Histogram("storm.engine.batch.size", obs.BatchSizeBuckets).Snapshot(); bs.Count == 0 {
		t.Error("batch.size histogram is empty")
	}
	if lat := reg.TuningHistogram("storm.engine.query.latency_ms", 0.1, 16).Snapshot(); lat.Count != 1 {
		t.Errorf("query.latency_ms count = %d, want 1", lat.Count)
	}
	if ci := reg.TuningHistogram("storm.engine.ci.relwidth", 1e-4, 16).Snapshot(); ci.Count == 0 {
		t.Error("ci.relwidth histogram is empty")
	}
	if _, ok := reg.Get("storm.dataset.uniform.records").(obs.Var); !ok {
		t.Error("per-dataset records gauge not published")
	}
	snapMap := reg.Snapshot()
	if v, ok := snapMap["storm.dataset.uniform.records"]; !ok || v.(int) != 20_000 {
		t.Errorf("dataset records = %v, want 20000", v)
	}
}

// TestTTCIMilestones runs a without-replacement AVG to exhaustion: the
// final estimate is exact (relative CI width zero), so every
// time-to-CI-width milestone must have been stamped.
func TestTTCIMilestones(t *testing.T) {
	e, h := buildHandle(t, 5_000, false)
	if _, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", Method: MethodRSTree,
	}); err != nil {
		t.Fatal(err)
	}
	for _, th := range ttciThresholds {
		hist := e.Obs().TuningHistogram("storm.engine."+th.short, 0.1, 16)
		if hist.Snapshot().Count == 0 {
			t.Errorf("milestone %s never stamped", th.short)
		}
	}
}

func TestNoMetrics(t *testing.T) {
	e := New(Config{Seed: 42, Fanout: 32, NoMetrics: true})
	if e.Obs() != nil {
		t.Fatal("NoMetrics engine should have a nil registry")
	}
	ds := gen.Uniform(2_000, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := h.Estimate(context.Background(), testRange, Options{
		Kind: estimator.Avg, Attr: "value", MaxSamples: 500,
	})
	if err != nil || !snap.Done {
		t.Fatalf("query with metrics off failed: %v %+v", err, snap)
	}
	if err := e.Unregister("uniform"); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRegistryAndUnregister(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Seed: 42, Fanout: 32, Obs: reg})
	if e.Obs() != reg {
		t.Fatal("engine should adopt the supplied registry")
	}
	ds := gen.Uniform(1_000, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	if _, err := e.Register(ds, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if reg.Get("storm.dataset.uniform.records") == nil {
		t.Fatal("dataset metrics not published to shared registry")
	}
	if err := e.Unregister("uniform"); err != nil {
		t.Fatal(err)
	}
	if reg.Get("storm.dataset.uniform.records") != nil {
		t.Error("dataset metrics survived Unregister")
	}
	if reg.Get("storm.dataset.uniform.buffer_regens") != nil {
		t.Error("buffer_regens survived Unregister")
	}
}

// benchEstimate is the hot batched path BenchmarkObsOverhead measures: a
// fixed-size AVG over the RS-tree, identical except for Config.NoMetrics.
func benchEstimate(b *testing.B, noMetrics bool) {
	b.Helper()
	e := New(Config{Seed: 42, Fanout: 32, NoMetrics: noMetrics})
	ds := gen.Uniform(50_000, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	h, err := e.Register(ds, IndexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Kind: estimator.Avg, Attr: "value", Method: MethodRSTree, MaxSamples: 4096, Seed: 99}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Estimate(context.Background(), testRange, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead compares the engine's hot batched query path with
// metrics on (the default) and off. The budget is <= 2% — enforced by
// TestObsOverheadBudget when STORM_OBS_OVERHEAD_CHECK=1.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("metrics-on", func(b *testing.B) { benchEstimate(b, false) })
	b.Run("metrics-off", func(b *testing.B) { benchEstimate(b, true) })
}

// TestObsOverheadBudget pins the instrumentation cost of the batched
// query path at <= 2%. Timing-sensitive, so it only runs when
// STORM_OBS_OVERHEAD_CHECK=1 (the CI benchmark smoke sets it); the
// comparison takes the min of several runs to shed scheduler noise.
func TestObsOverheadBudget(t *testing.T) {
	if os.Getenv("STORM_OBS_OVERHEAD_CHECK") != "1" {
		t.Skip("set STORM_OBS_OVERHEAD_CHECK=1 to run the overhead budget check")
	}
	minNs := func(noMetrics bool) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchEstimate(b, noMetrics) })
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	off := minNs(true)
	on := minNs(false)
	overhead := on/off - 1
	t.Logf("metrics-off %.0f ns/op, metrics-on %.0f ns/op, overhead %.2f%%", off, on, overhead*100)
	if overhead > 0.02 {
		t.Errorf("instrumentation overhead %.2f%% exceeds the 2%% budget", overhead*100)
	}
}
