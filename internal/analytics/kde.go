// Package analytics implements STORM's built-in online analytical
// estimators beyond plain aggregates: kernel density estimation, k-means
// clustering over samples, trajectory reconstruction and short-text term
// analysis — the "customized analytics" the paper demonstrates in
// Figures 5 and 6.
//
// Every estimator here follows the same online pattern: it is fed sampled
// records one at a time and can produce a snapshot at any moment whose
// quality improves with the number of samples consumed.
package analytics

import (
	"fmt"
	"math"

	"storm/internal/estimator"
	"storm/internal/geo"
)

// Kernel is a smoothing kernel for density estimation: a non-negative
// function of the distance-to-bandwidth ratio u = d/h with κ(u) = 0 for
// u >= 1 (compact support) or negligible tails (Gaussian).
type Kernel int

// Supported kernels.
const (
	Gaussian Kernel = iota
	Epanechnikov
	Triangular
)

// Eval evaluates the kernel at distance d with bandwidth h.
func (k Kernel) Eval(d, h float64) float64 {
	u := d / h
	switch k {
	case Gaussian:
		return math.Exp(-0.5*u*u) / (h * math.Sqrt(2*math.Pi))
	case Epanechnikov:
		if u >= 1 {
			return 0
		}
		return 0.75 * (1 - u*u) / h
	case Triangular:
		if u >= 1 {
			return 0
		}
		return (1 - u) / h
	default:
		panic(fmt.Sprintf("analytics: unknown kernel %d", int(k)))
	}
}

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Epanechnikov:
		return "epanechnikov"
	case Triangular:
		return "triangular"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// KDE estimates the spatial density surface f(p) = (1/q) Σ_e κ(d(e, p))
// over a regular grid from an online sample. Each grid cell's density is
// itself an average over P ∩ Q, so the same sample-mean machinery used for
// aggregates yields an unbiased per-cell estimate with a confidence
// interval (the paper's Section 3.2 observation).
type KDE struct {
	kernel     Kernel
	bandwidth  float64
	region     geo.Rect
	nx, ny     int
	cells      []estimator.Welford
	confidence float64
	samples    int
}

// NewKDE returns an online KDE over the spatial projection of region with
// an nx-by-ny grid. Bandwidth must be positive.
func NewKDE(region geo.Rect, nx, ny int, kernel Kernel, bandwidth, confidence float64) (*KDE, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("analytics: grid %dx%d invalid", nx, ny)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("analytics: bandwidth %v must be positive", bandwidth)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("analytics: confidence %v outside (0, 1)", confidence)
	}
	return &KDE{
		kernel:     kernel,
		bandwidth:  bandwidth,
		region:     region,
		nx:         nx,
		ny:         ny,
		cells:      make([]estimator.Welford, nx*ny),
		confidence: confidence,
	}, nil
}

// GridSize returns the grid dimensions.
func (k *KDE) GridSize() (nx, ny int) { return k.nx, k.ny }

// CellCenter returns the spatial center of grid cell (i, j).
func (k *KDE) CellCenter(i, j int) (x, y float64) {
	dx := (k.region.Max[0] - k.region.Min[0]) / float64(k.nx)
	dy := (k.region.Max[1] - k.region.Min[1]) / float64(k.ny)
	return k.region.Min[0] + (float64(i)+0.5)*dx, k.region.Min[1] + (float64(j)+0.5)*dy
}

// Add feeds one sampled point: every cell accumulates the kernel-weighted
// contribution, so after k samples each cell holds a size-k sample mean of
// its true density.
func (k *KDE) Add(p geo.Vec) {
	k.samples++
	for j := 0; j < k.ny; j++ {
		for i := 0; i < k.nx; i++ {
			cx, cy := k.CellCenter(i, j)
			d := p.Dist2D(geo.Vec{cx, cy, 0})
			k.cells[j*k.nx+i].Add(k.kernel.Eval(d, k.bandwidth))
		}
	}
}

// Samples returns the number of points consumed.
func (k *KDE) Samples() int { return k.samples }

// DensityMap is a snapshot of an online KDE.
type DensityMap struct {
	Nx, Ny  int
	Density []float64 // row-major, ny rows of nx
	// HalfWidth is the per-cell confidence half-width at the KDE's
	// confidence level.
	HalfWidth []float64
	Samples   int
	// Region is the spatial extent the grid covers.
	Region geo.Rect
}

// At returns the density of cell (i, j).
func (m *DensityMap) At(i, j int) float64 { return m.Density[j*m.Nx+i] }

// MaxDensity returns the largest cell density (useful for rendering).
func (m *DensityMap) MaxDensity() float64 {
	max := 0.0
	for _, v := range m.Density {
		if v > max {
			max = v
		}
	}
	return max
}

// Snapshot returns the current density estimate.
func (k *KDE) Snapshot() *DensityMap {
	m := &DensityMap{
		Nx:        k.nx,
		Ny:        k.ny,
		Density:   make([]float64, len(k.cells)),
		HalfWidth: make([]float64, len(k.cells)),
		Samples:   k.samples,
		Region:    k.region,
	}
	for i := range k.cells {
		c := &k.cells[i]
		m.Density[i] = c.Mean()
		n := c.N()
		if n >= 2 {
			se := math.Sqrt(c.SampleVariance() / float64(n))
			m.HalfWidth[i] = zFor(k.confidence) * se
		} else {
			m.HalfWidth[i] = math.Inf(1)
		}
	}
	return m
}

// MeanAbsError returns the mean absolute difference between two density
// maps of the same shape, the convergence metric the Figure 5 benchmark
// reports. It panics on shape mismatch.
func (m *DensityMap) MeanAbsError(o *DensityMap) float64 {
	if m.Nx != o.Nx || m.Ny != o.Ny {
		panic("analytics: density map shape mismatch")
	}
	var sum float64
	for i := range m.Density {
		sum += math.Abs(m.Density[i] - o.Density[i])
	}
	return sum / float64(len(m.Density))
}

// RelError returns the mean relative error against a reference map,
// normalized by the reference's mean density (cells where the reference is
// zero are skipped).
func (m *DensityMap) RelError(ref *DensityMap) float64 {
	if m.Nx != ref.Nx || m.Ny != ref.Ny {
		panic("analytics: density map shape mismatch")
	}
	var refMean float64
	for _, v := range ref.Density {
		refMean += v
	}
	refMean /= float64(len(ref.Density))
	if refMean == 0 {
		return 0
	}
	var sum float64
	for i := range m.Density {
		sum += math.Abs(m.Density[i] - ref.Density[i])
	}
	return sum / float64(len(m.Density)) / refMean
}
