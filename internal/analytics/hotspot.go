package analytics

import "sort"

// Hotspot is one high-density cell of a density map.
type Hotspot struct {
	// X, Y is the spatial center of the cell.
	X, Y float64
	// Density is the estimated density and HalfWidth its confidence
	// half-width (inherited from the map's per-cell intervals).
	Density   float64
	HalfWidth float64
	// Separated reports that the cell's density CI lies entirely above
	// the next non-hotspot cell's CI — the ranking is statistically
	// resolved at the map's confidence level rather than an artifact of
	// sampling noise.
	Separated bool
}

// Hotspots returns the k densest cells of the map, densest first — an
// online analytic derived from the KDE: with few samples the set is
// volatile, and the Separated flags report which members are already
// statistically distinguishable from the background.
func (m *DensityMap) Hotspots(k int) []Hotspot {
	n := len(m.Density)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.Density[idx[a]] > m.Density[idx[b]] })

	// The densest excluded cell's upper bound decides separation.
	boundary := 0.0
	if k < n {
		j := idx[k]
		boundary = m.Density[j] + m.HalfWidth[j]
	}

	dx := (m.Region.Max[0] - m.Region.Min[0]) / float64(m.Nx)
	dy := (m.Region.Max[1] - m.Region.Min[1]) / float64(m.Ny)
	out := make([]Hotspot, 0, k)
	for _, j := range idx[:k] {
		cx := m.Region.Min[0] + (float64(j%m.Nx)+0.5)*dx
		cy := m.Region.Min[1] + (float64(j/m.Nx)+0.5)*dy
		out = append(out, Hotspot{
			X:         cx,
			Y:         cy,
			Density:   m.Density[j],
			HalfWidth: m.HalfWidth[j],
			Separated: k >= n || m.Density[j]-m.HalfWidth[j] > boundary,
		})
	}
	return out
}
