package analytics

import (
	"sort"
	"strings"
)

// stopwords are filtered out of term statistics; short-text understanding
// cares about content words (the paper's Figure 6(b) highlights "snow",
// "ice", "outage", not "the" and "and").
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true, "but": true,
	"is": true, "are": true, "was": true, "were": true, "be": true, "been": true,
	"to": true, "of": true, "in": true, "on": true, "at": true, "for": true,
	"with": true, "it": true, "its": true, "this": true, "that": true,
	"i": true, "im": true, "me": true, "my": true, "we": true, "you": true,
	"he": true, "she": true, "they": true, "them": true, "their": true,
	"so": true, "just": true, "not": true, "no": true, "do": true, "dont": true,
	"have": true, "has": true, "had": true, "as": true, "by": true, "from": true,
	"up": true, "out": true, "if": true, "all": true, "rt": true, "via": true,
	"will": true, "can": true, "cant": true, "get": true, "got": true, "u": true,
}

// sentimentLexicon assigns a crude polarity to a handful of words; STORM's
// demo uses it to summarize how a sampled population "feels".
var sentimentLexicon = map[string]float64{
	"love": 1, "great": 1, "good": 0.7, "happy": 1, "awesome": 1, "beautiful": 0.8,
	"fun": 0.8, "nice": 0.6, "best": 0.9, "amazing": 1, "excited": 0.8, "thanks": 0.5,
	"hate": -1, "bad": -0.7, "terrible": -1, "awful": -1, "sad": -0.8, "angry": -0.9,
	"worst": -1, "shit": -0.9, "hell": -0.7, "why": -0.3, "stuck": -0.6, "outage": -0.8,
	"cold": -0.4, "frustrated": -0.9, "cancelled": -0.7, "closed": -0.4, "damn": -0.7,
}

// Tokenize lower-cases text and splits it into alphanumeric tokens,
// dropping stop words and single characters.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 {
			tok := b.String()
			if !stopwords[tok] {
				out = append(out, tok)
			}
		}
		b.Reset()
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '#', r == '@':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// TermStats estimates the term-frequency distribution of the text field of
// P ∩ Q from an online sample. The frequency of each term is a population
// proportion, so the estimate is unbiased and tightens like any other
// sample mean; the snapshot reports the current top terms plus an overall
// sentiment score.
type TermStats struct {
	counts  map[string]int
	total   int // total term occurrences
	docs    int // sampled documents
	sentSum float64
}

// NewTermStats returns an empty online term estimator.
func NewTermStats() *TermStats {
	return &TermStats{counts: make(map[string]int)}
}

// Add feeds one sampled document's text.
func (ts *TermStats) Add(text string) {
	ts.docs++
	for _, tok := range Tokenize(text) {
		ts.counts[tok]++
		ts.total++
		ts.sentSum += sentimentLexicon[tok]
	}
}

// Samples returns the number of documents consumed.
func (ts *TermStats) Samples() int { return ts.docs }

// Term is one entry of a term-frequency snapshot.
type Term struct {
	Text string
	// Freq is the estimated fraction of term occurrences.
	Freq  float64
	Count int
}

// TermSnapshot is the current short-text understanding result.
type TermSnapshot struct {
	Top []Term
	// Sentiment is the average lexicon polarity per sampled document;
	// negative values mean the sampled population skews unhappy.
	Sentiment float64
	Samples   int
	Distinct  int
}

// Snapshot returns the top-n terms by estimated frequency. Ties break
// lexicographically for deterministic output.
func (ts *TermStats) Snapshot(n int) *TermSnapshot {
	out := &TermSnapshot{Samples: ts.docs, Distinct: len(ts.counts)}
	if ts.docs > 0 {
		out.Sentiment = ts.sentSum / float64(ts.docs)
	}
	terms := make([]Term, 0, len(ts.counts))
	for t, c := range ts.counts {
		total := ts.total
		if total == 0 {
			total = 1
		}
		terms = append(terms, Term{Text: t, Count: c, Freq: float64(c) / float64(total)})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Count != terms[j].Count {
			return terms[i].Count > terms[j].Count
		}
		return terms[i].Text < terms[j].Text
	})
	if n < len(terms) {
		terms = terms[:n]
	}
	out.Top = terms
	return out
}

// TopTermRecall returns |topK(est) ∩ topK(truth)| / k, the Figure 6(b)
// convergence metric: how much of the true top-k vocabulary the online
// estimate has recovered.
func TopTermRecall(est, truth *TermSnapshot) float64 {
	if len(truth.Top) == 0 {
		return 1
	}
	truthSet := make(map[string]bool, len(truth.Top))
	for _, t := range truth.Top {
		truthSet[t.Text] = true
	}
	hit := 0
	for _, t := range est.Top {
		if truthSet[t.Text] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth.Top))
}
