package analytics

import (
	"fmt"
	"math"

	"storm/internal/geo"
	"storm/internal/stats"
)

// zFor converts a confidence level into a two-sided normal critical value.
func zFor(confidence float64) float64 { return stats.ZScore(confidence) }

// KMeans clusters the spatial projection of sampled points into k groups.
// The paper notes that clustering quality on a sample improves with sample
// size; this implementation accumulates samples and re-runs a k-means++
// seeded Lloyd iteration on demand, which is cheap because the sample is
// small compared to the data.
type KMeans struct {
	k       int
	rng     *stats.RNG
	points  []geo.Vec
	maxIter int
}

// NewKMeans returns an online clusterer for k clusters.
func NewKMeans(k int, rng *stats.RNG) (*KMeans, error) {
	if k < 1 {
		return nil, fmt.Errorf("analytics: k %d must be positive", k)
	}
	return &KMeans{k: k, rng: rng, maxIter: 50}, nil
}

// Add feeds one sampled point.
func (km *KMeans) Add(p geo.Vec) { km.points = append(km.points, p) }

// Samples returns the number of points consumed.
func (km *KMeans) Samples() int { return len(km.points) }

// Cluster is one cluster of a clustering snapshot.
type Cluster struct {
	Center geo.Vec
	Size   int
}

// Clustering is the snapshot result of online k-means.
type Clustering struct {
	Clusters []Cluster
	// Inertia is the sum of squared spatial distances of sample points
	// to their assigned centers (the k-means objective on the sample).
	Inertia float64
	Samples int
}

// Snapshot runs k-means++ followed by Lloyd iterations on the samples seen
// so far. With fewer samples than clusters, each point is its own cluster.
func (km *KMeans) Snapshot() *Clustering {
	n := len(km.points)
	out := &Clustering{Samples: n}
	if n == 0 {
		return out
	}
	k := km.k
	if k > n {
		k = n
	}
	centers := km.seed(k)
	assign := make([]int, n)
	for iter := 0; iter < km.maxIter; iter++ {
		changed := false
		for i, p := range km.points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist2D(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		sums := make([]geo.Vec, k)
		counts := make([]int, k)
		for i, p := range km.points {
			c := assign[i]
			sums[c][0] += p[0]
			sums[c][1] += p[1]
			counts[c]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = geo.Vec{sums[c][0] / float64(counts[c]), sums[c][1] / float64(counts[c]), 0}
			}
		}
	}
	out.Clusters = make([]Cluster, k)
	for c := range centers {
		out.Clusters[c].Center = centers[c]
	}
	for i, p := range km.points {
		c := assign[i]
		out.Clusters[c].Size++
		d := p.Dist2D(centers[c])
		out.Inertia += d * d
	}
	return out
}

// seed picks k initial centers with the k-means++ distance-weighted rule.
func (km *KMeans) seed(k int) []geo.Vec {
	centers := make([]geo.Vec, 0, k)
	first := km.points[km.rng.Intn(len(km.points))]
	centers = append(centers, geo.Vec{first[0], first[1], 0})
	d2 := make([]float64, len(km.points))
	for len(centers) < k {
		var total float64
		for i, p := range km.points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2D(c); d*d < best {
					best = d * d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centers = append(centers, centers[0])
			continue
		}
		r := km.rng.Float64() * total
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				p := km.points[i]
				centers = append(centers, geo.Vec{p[0], p[1], 0})
				break
			}
		}
		if r > 0 {
			p := km.points[len(km.points)-1]
			centers = append(centers, geo.Vec{p[0], p[1], 0})
		}
	}
	return centers
}
