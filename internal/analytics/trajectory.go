package analytics

import (
	"math"
	"sort"

	"storm/internal/geo"
)

// Trajectory reconstructs an approximate movement path for one entity from
// online samples of its time-stamped positions — the paper's Figure 6(a)
// demo ("online approximate trajectory construction" for a twitter user).
// Sampled points are kept sorted by time; a snapshot connects them in
// temporal order, optionally splitting segments across large time gaps and
// simplifying with Douglas–Peucker. More samples → a path closer to the
// ground-truth movement.
type Trajectory struct {
	// GapSplit breaks the path where consecutive samples are more than
	// this many time units apart (0 disables splitting).
	GapSplit float64
	points   []geo.Vec // sorted by time
}

// NewTrajectory returns an empty online trajectory builder.
func NewTrajectory() *Trajectory { return &Trajectory{} }

// Add feeds one sampled (x, y, t) point, keeping temporal order.
func (tr *Trajectory) Add(p geo.Vec) {
	i := sort.Search(len(tr.points), func(i int) bool { return tr.points[i].T() >= p.T() })
	tr.points = append(tr.points, geo.Vec{})
	copy(tr.points[i+1:], tr.points[i:])
	tr.points[i] = p
}

// Samples returns the number of points consumed.
func (tr *Trajectory) Samples() int { return len(tr.points) }

// Path is a reconstructed trajectory: one or more time-ordered segments.
type Path struct {
	Segments [][]geo.Vec
	Samples  int
}

// Points returns all path points flattened in temporal order.
func (p *Path) Points() []geo.Vec {
	var out []geo.Vec
	for _, s := range p.Segments {
		out = append(out, s...)
	}
	return out
}

// Snapshot returns the current reconstruction. epsilon > 0 applies
// Douglas–Peucker simplification with that spatial tolerance.
func (tr *Trajectory) Snapshot(epsilon float64) *Path {
	out := &Path{Samples: len(tr.points)}
	if len(tr.points) == 0 {
		return out
	}
	var seg []geo.Vec
	for i, p := range tr.points {
		if i > 0 && tr.GapSplit > 0 && p.T()-tr.points[i-1].T() > tr.GapSplit {
			out.Segments = append(out.Segments, finishSegment(seg, epsilon))
			seg = nil
		}
		seg = append(seg, p)
	}
	out.Segments = append(out.Segments, finishSegment(seg, epsilon))
	return out
}

func finishSegment(seg []geo.Vec, epsilon float64) []geo.Vec {
	if epsilon > 0 && len(seg) > 2 {
		return douglasPeucker(seg, epsilon)
	}
	cp := make([]geo.Vec, len(seg))
	copy(cp, seg)
	return cp
}

// douglasPeucker simplifies a polyline to within the given spatial
// tolerance, preserving endpoints.
func douglasPeucker(pts []geo.Vec, epsilon float64) []geo.Vec {
	if len(pts) <= 2 {
		cp := make([]geo.Vec, len(pts))
		copy(cp, pts)
		return cp
	}
	maxD, maxI := 0.0, 0
	a, b := pts[0], pts[len(pts)-1]
	for i := 1; i < len(pts)-1; i++ {
		if d := pointSegDist(pts[i], a, b); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= epsilon {
		return []geo.Vec{a, b}
	}
	left := douglasPeucker(pts[:maxI+1], epsilon)
	right := douglasPeucker(pts[maxI:], epsilon)
	return append(left[:len(left)-1], right...)
}

// pointSegDist returns the spatial distance from p to segment ab.
func pointSegDist(p, a, b geo.Vec) float64 {
	abx, aby := b[0]-a[0], b[1]-a[1]
	apx, apy := p[0]-a[0], p[1]-a[1]
	den := abx*abx + aby*aby
	if den == 0 {
		return p.Dist2D(a)
	}
	t := (apx*abx + apy*aby) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := geo.Vec{a[0] + t*abx, a[1] + t*aby, 0}
	return p.Dist2D(proj)
}

// PathError measures how far a reconstructed path deviates from a
// ground-truth path: the average spatial distance from each truth point to
// the nearest reconstructed segment, interpolated in time order. This is
// the Figure 6(a) convergence metric.
func PathError(truth []geo.Vec, approx *Path) float64 {
	pts := approx.Points()
	if len(pts) == 0 || len(truth) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, tp := range truth {
		best := math.Inf(1)
		if len(pts) == 1 {
			best = tp.Dist2D(pts[0])
		}
		for i := 0; i+1 < len(pts); i++ {
			if d := pointSegDist(tp, pts[i], pts[i+1]); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(truth))
}
