package analytics

import (
	"math"
	"testing"

	"storm/internal/geo"
	"storm/internal/stats"
)

func TestKernelProperties(t *testing.T) {
	for _, k := range []Kernel{Gaussian, Epanechnikov, Triangular} {
		// Non-negative and decreasing with distance.
		prev := math.Inf(1)
		for d := 0.0; d <= 2; d += 0.1 {
			v := k.Eval(d, 1)
			if v < 0 {
				t.Errorf("%v kernel negative at d=%v", k, d)
			}
			if v > prev+1e-12 {
				t.Errorf("%v kernel increased at d=%v", k, d)
			}
			prev = v
		}
		// Compact kernels vanish beyond the bandwidth.
		if k != Gaussian && k.Eval(1.5, 1) != 0 {
			t.Errorf("%v kernel should vanish beyond bandwidth", k)
		}
		if k.String() == "" {
			t.Error("empty kernel name")
		}
	}
}

func TestKDEValidation(t *testing.T) {
	r := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{10, 10, 10})
	if _, err := NewKDE(r, 0, 8, Gaussian, 1, 0.95); err == nil {
		t.Error("zero grid should be rejected")
	}
	if _, err := NewKDE(r, 8, 8, Gaussian, 0, 0.95); err == nil {
		t.Error("zero bandwidth should be rejected")
	}
	if _, err := NewKDE(r, 8, 8, Gaussian, 1, 1.5); err == nil {
		t.Error("bad confidence should be rejected")
	}
}

func TestKDEFindsHotspot(t *testing.T) {
	r := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{10, 10, 0})
	kde, err := NewKDE(r, 10, 10, Gaussian, 1.0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	// Cluster at (2.5, 2.5), sparse elsewhere.
	for i := 0; i < 900; i++ {
		kde.Add(geo.Vec{2.5 + rng.NormFloat64()*0.5, 2.5 + rng.NormFloat64()*0.5, 0})
	}
	for i := 0; i < 100; i++ {
		kde.Add(geo.Vec{rng.Uniform(0, 10), rng.Uniform(0, 10), 0})
	}
	m := kde.Snapshot()
	if m.Samples != 1000 {
		t.Fatalf("samples = %d", m.Samples)
	}
	// The cell containing (2.5, 2.5) should be the densest.
	hot := m.At(2, 2)
	cold := m.At(8, 8)
	if hot <= 2*cold {
		t.Errorf("hotspot density %v not dominant over %v", hot, cold)
	}
	if m.MaxDensity() < hot {
		t.Error("MaxDensity below observed cell")
	}
}

func TestKDEConvergesToExact(t *testing.T) {
	r := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{10, 10, 0})
	rng := stats.NewRNG(2)
	pts := make([]geo.Vec, 4000)
	for i := range pts {
		pts[i] = geo.Vec{rng.Uniform(0, 10), rng.NormFloat64()*1.5 + 5, 0}
	}
	exact, _ := NewKDE(r, 8, 8, Epanechnikov, 2.0, 0.95)
	for _, p := range pts {
		exact.Add(p)
	}
	ref := exact.Snapshot()

	small, _ := NewKDE(r, 8, 8, Epanechnikov, 2.0, 0.95)
	big, _ := NewKDE(r, 8, 8, Epanechnikov, 2.0, 0.95)
	perm := rng.Perm(len(pts))
	for i, idx := range perm {
		if i < 50 {
			small.Add(pts[idx])
		}
		if i < 1500 {
			big.Add(pts[idx])
		}
	}
	errSmall := small.Snapshot().RelError(ref)
	errBig := big.Snapshot().RelError(ref)
	if errBig >= errSmall {
		t.Errorf("KDE error should shrink with samples: %v -> %v", errSmall, errBig)
	}
	if errBig > 0.1 {
		t.Errorf("1500-sample KDE error %v too large", errBig)
	}
}

func TestHotspots(t *testing.T) {
	r := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{10, 10, 0})
	kde, _ := NewKDE(r, 10, 10, Gaussian, 1.0, 0.95)
	rng := stats.NewRNG(7)
	for i := 0; i < 800; i++ {
		kde.Add(geo.Vec{7.5 + rng.NormFloat64()*0.4, 2.5 + rng.NormFloat64()*0.4, 0})
	}
	for i := 0; i < 200; i++ {
		kde.Add(geo.Vec{rng.Uniform(0, 10), rng.Uniform(0, 10), 0})
	}
	m := kde.Snapshot()
	spots := m.Hotspots(3)
	if len(spots) != 3 {
		t.Fatalf("hotspots = %d", len(spots))
	}
	// Densest-first and anchored at the injected cluster.
	if spots[0].Density < spots[1].Density || spots[1].Density < spots[2].Density {
		t.Error("hotspots not sorted by density")
	}
	if math.Abs(spots[0].X-7.5) > 1.5 || math.Abs(spots[0].Y-2.5) > 1.5 {
		t.Errorf("top hotspot at (%v, %v), cluster at (7.5, 2.5)", spots[0].X, spots[0].Y)
	}
	// With 1000 samples the top cell should be statistically separated.
	if !spots[0].Separated {
		t.Error("dominant hotspot should be separated")
	}
	// Edge cases.
	if got := m.Hotspots(0); got != nil {
		t.Error("k=0 should be nil")
	}
	if got := m.Hotspots(1000); len(got) != 100 {
		t.Errorf("k beyond cells = %d, want all 100", len(got))
	}
	empty := &DensityMap{}
	if got := empty.Hotspots(3); got != nil {
		t.Error("empty map should give nil")
	}
}

func TestDensityMapErrorsPanicOnShape(t *testing.T) {
	a := &DensityMap{Nx: 2, Ny: 2, Density: make([]float64, 4)}
	b := &DensityMap{Nx: 3, Ny: 3, Density: make([]float64, 9)}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	a.MeanAbsError(b)
}

func TestKMeansRecoverClusters(t *testing.T) {
	rng := stats.NewRNG(3)
	km, err := NewKMeans(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	centers := []geo.Vec{{0, 0, 0}, {10, 0, 0}, {5, 9, 0}}
	for i := 0; i < 600; i++ {
		c := centers[i%3]
		km.Add(geo.Vec{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5, 0})
	}
	res := km.Snapshot()
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	// Every true center must be close to some estimated center.
	for _, truth := range centers {
		best := math.Inf(1)
		for _, c := range res.Clusters {
			if d := truth.Dist2D(c.Center); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("no estimated center near %v (closest %.2f)", truth, best)
		}
	}
	total := 0
	for _, c := range res.Clusters {
		total += c.Size
	}
	if total != 600 {
		t.Errorf("cluster sizes sum to %d", total)
	}
	if res.Inertia <= 0 {
		t.Error("inertia should be positive for noisy clusters")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := NewKMeans(0, stats.NewRNG(1)); err == nil {
		t.Error("k=0 should be rejected")
	}
	km, _ := NewKMeans(5, stats.NewRNG(1))
	if res := km.Snapshot(); res.Samples != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty snapshot = %+v", res)
	}
	// Fewer points than k.
	km.Add(geo.Vec{1, 1, 0})
	km.Add(geo.Vec{2, 2, 0})
	res := km.Snapshot()
	if len(res.Clusters) != 2 {
		t.Errorf("clusters with 2 points = %d, want 2", len(res.Clusters))
	}
	// All points identical.
	km2, _ := NewKMeans(3, stats.NewRNG(2))
	for i := 0; i < 10; i++ {
		km2.Add(geo.Vec{4, 4, 0})
	}
	res2 := km2.Snapshot()
	if res2.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res2.Inertia)
	}
}

func TestTrajectoryOrdering(t *testing.T) {
	tr := NewTrajectory()
	// Insert out of order; snapshot must be time-sorted.
	tr.Add(geo.Vec{3, 3, 30})
	tr.Add(geo.Vec{1, 1, 10})
	tr.Add(geo.Vec{2, 2, 20})
	p := tr.Snapshot(0)
	pts := p.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T() < pts[i-1].T() {
			t.Fatal("points not time-ordered")
		}
	}
}

func TestTrajectoryGapSplit(t *testing.T) {
	tr := NewTrajectory()
	tr.GapSplit = 100
	tr.Add(geo.Vec{0, 0, 0})
	tr.Add(geo.Vec{1, 1, 50})
	tr.Add(geo.Vec{9, 9, 500}) // big gap
	tr.Add(geo.Vec{10, 10, 550})
	p := tr.Snapshot(0)
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(p.Segments))
	}
	if len(p.Segments[0]) != 2 || len(p.Segments[1]) != 2 {
		t.Errorf("segment sizes = %d, %d", len(p.Segments[0]), len(p.Segments[1]))
	}
}

func TestDouglasPeucker(t *testing.T) {
	// Collinear interior points collapse; a sharp corner survives.
	pts := []geo.Vec{{0, 0, 0}, {1, 0.001, 1}, {2, 0, 2}, {3, 0, 3}, {3, 5, 4}}
	simplified := douglasPeucker(pts, 0.1)
	if len(simplified) >= len(pts) {
		t.Errorf("no simplification: %d -> %d", len(pts), len(simplified))
	}
	if simplified[0] != pts[0] || simplified[len(simplified)-1] != pts[len(pts)-1] {
		t.Error("endpoints must be preserved")
	}
	// The corner at (3,0) must survive.
	found := false
	for _, p := range simplified {
		if p[0] == 3 && p[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Error("corner point removed")
	}
}

func TestPathErrorDecreasesWithSamples(t *testing.T) {
	rng := stats.NewRNG(5)
	// Ground truth: a random walk.
	truth := make([]geo.Vec, 200)
	x, y := 0.0, 0.0
	for i := range truth {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		truth[i] = geo.Vec{x, y, float64(i)}
	}
	build := func(k int) *Path {
		tr := NewTrajectory()
		perm := rng.Perm(len(truth))
		for _, idx := range perm[:k] {
			tr.Add(truth[idx])
		}
		return tr.Snapshot(0)
	}
	e10 := PathError(truth, build(10))
	e100 := PathError(truth, build(100))
	if e100 >= e10 {
		t.Errorf("path error should decrease: %v -> %v", e10, e100)
	}
	if full := PathError(truth, build(len(truth))); full > 1e-9 {
		t.Errorf("full reconstruction error %v should be ~0", full)
	}
}

func TestPathErrorEdges(t *testing.T) {
	if !math.IsInf(PathError([]geo.Vec{{0, 0, 0}}, &Path{}), 1) {
		t.Error("empty path error should be +Inf")
	}
	single := &Path{Segments: [][]geo.Vec{{{1, 1, 0}}}}
	if got := PathError([]geo.Vec{{1, 1, 0}}, single); got != 0 {
		t.Errorf("single matching point error = %v", got)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The SNOW is falling, and the power-outage began! #atl @user1")
	want := map[string]bool{"snow": true, "falling": true, "power": true,
		"outage": true, "began": true, "#atl": true, "@user1": true}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if !want[tok] {
			t.Errorf("unexpected token %q", tok)
		}
	}
}

func TestTokenizeEdge(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty text tokens = %v", got)
	}
	if got := Tokenize("a I ! ?"); len(got) != 0 {
		t.Errorf("stopword-only text tokens = %v", got)
	}
}

func TestTermStats(t *testing.T) {
	ts := NewTermStats()
	ts.Add("snow snow ice")
	ts.Add("snow outage")
	snap := ts.Snapshot(2)
	if snap.Samples != 2 || snap.Distinct != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Top) != 2 || snap.Top[0].Text != "snow" || snap.Top[0].Count != 3 {
		t.Fatalf("top = %+v", snap.Top)
	}
	if math.Abs(snap.Top[0].Freq-0.6) > 1e-12 {
		t.Errorf("freq = %v, want 0.6", snap.Top[0].Freq)
	}
	// Snowstorm vocabulary skews negative.
	if snap.Sentiment >= 0 {
		t.Errorf("sentiment = %v, want negative", snap.Sentiment)
	}
}

func TestTermStatsEmpty(t *testing.T) {
	ts := NewTermStats()
	snap := ts.Snapshot(5)
	if snap.Samples != 0 || len(snap.Top) != 0 || snap.Sentiment != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}

func TestTopTermRecall(t *testing.T) {
	truth := &TermSnapshot{Top: []Term{{Text: "a"}, {Text: "b"}, {Text: "c"}, {Text: "d"}}}
	est := &TermSnapshot{Top: []Term{{Text: "a"}, {Text: "x"}, {Text: "c"}, {Text: "y"}}}
	if got := TopTermRecall(est, truth); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
	if got := TopTermRecall(est, &TermSnapshot{}); got != 1 {
		t.Errorf("recall vs empty truth = %v, want 1", got)
	}
}

func TestTermSnapshotDeterministicTies(t *testing.T) {
	ts := NewTermStats()
	ts.Add("zebra apple")
	s1 := ts.Snapshot(2)
	s2 := ts.Snapshot(2)
	if s1.Top[0].Text != s2.Top[0].Text || s1.Top[0].Text != "apple" {
		t.Errorf("ties should break lexicographically: %+v", s1.Top)
	}
}
