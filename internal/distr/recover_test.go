package distr_test

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/obs"
	"storm/internal/stats/statcheck"
)

// TestRecoveredShardResumesStream is the tentpole mechanics test: a shard
// crashes past the fetch retry budget (a genuine mid-query loss), comes
// back on its recover-after schedule, and is re-admitted by the same
// query — which then drains the FULL population exactly once, ending not
// degraded with the effective N restored.
func TestRecoveredShardResumesStream(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		1: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
	}}
	c := distrtest.Build(t, ds, distrtest.FastConfig(4, 5, plan))
	initial := c.Count(q)
	s := c.Sampler(q)

	sawDegraded := false
	seen := make(map[data.ID]bool)
	buf := make([]data.Entry, 48)
	emitted := 0
	for {
		n := s.NextBatch(buf, len(buf))
		for _, e := range buf[:n] {
			if seen[e.ID] {
				t.Fatalf("duplicate sample %d", e.ID)
			}
			seen[e.ID] = true
		}
		emitted += n
		if s.Degraded() {
			sawDegraded = true
			lost, lostPop := s.Degradation()
			if lost != 1 || lostPop <= 0 {
				t.Fatalf("mid-query degradation = (%d, %d), want shard 1 written off", lost, lostPop)
			}
		}
		if n < len(buf) {
			break
		}
	}

	if s.Degraded() {
		t.Fatal("query should have re-admitted the recovered shard")
	}
	if s.Readmits() != 1 {
		t.Errorf("readmits = %d, want 1", s.Readmits())
	}
	if _, lostPop := s.Degradation(); lostPop != 0 {
		t.Errorf("lost population after rejoin = %d, want 0", lostPop)
	}
	if emitted != initial {
		t.Errorf("drained %d samples, want the full pre-crash population %d", emitted, initial)
	}
	st := c.FaultStats()
	if st.Crashes != 1 || st.Readmits != 1 || st.ShardsDown != 0 {
		t.Errorf("fault stats = %+v, want one crash→readmit cycle, no shards down", st)
	}
	// sawDegraded is advisory: with RecoverAfter=4 the loss and rejoin can
	// complete inside one NextBatch call, but the crash itself must have
	// genuinely written the shard off (crashes=1 above proves it).
	_ = sawDegraded
}

// TestRecoveredShardRestoresClusterState: recovery is cluster state, not
// query state. After a crash, coordinator contacts (count rounds) advance
// the recovery clock; once the shard rejoins, Count sees the full
// population again, shards_down drops back to zero, and the readmit is
// visible on the metrics registry.
func TestRecoveredShardRestoresClusterState(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	reg := obs.NewRegistry()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 0, RecoverAfter: 3},
	}}
	cfg := distrtest.FastConfig(4, 5, plan)
	cfg.MaxRetries = -1 // no retries: the crash is lost immediately
	cfg.Obs = reg
	c := distrtest.Build(t, ds, cfg)
	full := c.Count(q)

	// Trigger the crash: the shard dies on its first fetch.
	s := c.Sampler(q)
	buf := make([]data.Entry, 64)
	for i := 0; i < 50 && !s.Degraded(); i++ {
		if s.NextBatch(buf, len(buf)) == 0 {
			break
		}
	}
	if !s.Degraded() {
		t.Fatal("crash never triggered")
	}
	if st := c.FaultStats(); st.Crashes != 1 || st.ShardsDown != 1 {
		t.Fatalf("fault stats after crash = %+v", st)
	}
	if down := c.Count(q); down >= full {
		t.Fatalf("degraded count = %d, want < full %d", down, full)
	}

	// Each count round observes the down shard once; within RecoverAfter
	// observations the shard rejoins and the full population is back.
	after := 0
	for i := 0; i < 10; i++ {
		if after = c.Count(q); after == full {
			break
		}
	}
	if after != full {
		t.Fatalf("count never recovered: %d, want %d", after, full)
	}
	st := c.FaultStats()
	if st.Readmits != 1 || st.ShardsDown != 0 {
		t.Errorf("fault stats after recovery = %+v, want readmits=1, shards_down=0", st)
	}
	snap := reg.Snapshot()
	if got := snap["storm.distr.faults.readmits"]; got != uint64(1) {
		t.Errorf("storm.distr.faults.readmits = %v, want 1", got)
	}
	if got := snap["storm.distr.faults.shards_down"]; got != int64(0) {
		t.Errorf("storm.distr.faults.shards_down = %v, want 0", got)
	}

	// One-shot cycle: a fresh query over the recovered cluster is healthy.
	fresh := c.Sampler(q)
	if got := len(distrtest.DrainBatched(fresh, []int{64})); got != full || fresh.Degraded() {
		t.Errorf("post-recovery query drained %d (degraded=%v), want healthy %d", got, fresh.Degraded(), full)
	}
}

// TestShardSummariesExact pins the coordinator's per-shard digests: after
// Build they are exact per shard (count, sum, min/max of the shard's
// values), and Insert/Delete keep count and sum exact while min/max only
// widen.
func TestShardSummariesExact(t *testing.T) {
	ds := distrtest.Dataset(4000)
	c := distrtest.Build(t, ds, distrtest.FastConfig(4, 5, nil))
	col, err := ds.NumericColumn("value")
	if err != nil {
		t.Fatal(err)
	}
	everything := geo.NewRect(geo.Vec{-1, -1, -1}, geo.Vec{101, 101, 101})
	totalCount := 0
	var totalSum float64
	for i, sh := range c.Shards() {
		sum, ok := c.ShardSummary(i, "value")
		if !ok {
			t.Fatalf("shard %d has no summary for value", i)
		}
		wantCount := 0
		wantSum := 0.0
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for _, e := range sh.Index().Tree().ReportAll(everything) {
			v := col[e.ID]
			wantCount++
			wantSum += v
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
		}
		if sum.Count != wantCount || math.Abs(sum.Sum-wantSum) > 1e-6 {
			t.Errorf("shard %d summary count/sum = %d/%.3f, want %d/%.3f", i, sum.Count, sum.Sum, wantCount, wantSum)
		}
		if sum.Min != wantMin || sum.Max != wantMax {
			t.Errorf("shard %d summary bounds = [%v, %v], want [%v, %v]", i, sum.Min, sum.Max, wantMin, wantMax)
		}
		if sum.NonFinite != 0 {
			t.Errorf("shard %d reports %d non-finite values in a finite fixture", i, sum.NonFinite)
		}
		totalCount += sum.Count
		totalSum += sum.Sum
	}
	if totalCount != ds.Len() {
		t.Fatalf("summaries cover %d records, want %d", totalCount, ds.Len())
	}

	// Insert a record with an out-of-range value: exactly one shard's
	// summary gains it and the cluster-wide max widens to cover it.
	id := ds.AppendFast(geo.Vec{50, 50, 50})
	ds.SetNumeric("value", id, 1e6)
	e := data.Entry{ID: id, Pos: geo.Vec{50, 50, 50}}
	c.Insert(e)
	gotCount, gotSum, gotMax := 0, 0.0, math.Inf(-1)
	for i := range c.Shards() {
		sum, _ := c.ShardSummary(i, "value")
		gotCount += sum.Count
		gotSum += sum.Sum
		gotMax = math.Max(gotMax, sum.Max)
	}
	if gotCount != totalCount+1 || math.Abs(gotSum-(totalSum+1e6)) > 1e-3 || gotMax != 1e6 {
		t.Errorf("after insert: count=%d sum=%.3f max=%v, want %d/%.3f/1e6", gotCount, gotSum, gotMax, totalCount+1, totalSum+1e6)
	}

	// Delete it again: count and sum restore exactly; max stays widened
	// (monotone-conservative, still a sound upper bound).
	if !c.Delete(e) {
		t.Fatal("delete failed")
	}
	gotCount, gotSum, gotMax = 0, 0.0, math.Inf(-1)
	for i := range c.Shards() {
		sum, _ := c.ShardSummary(i, "value")
		gotCount += sum.Count
		gotSum += sum.Sum
		gotMax = math.Max(gotMax, sum.Max)
	}
	if gotCount != totalCount || math.Abs(gotSum-totalSum) > 1e-3 {
		t.Errorf("after delete: count=%d sum=%.3f, want %d/%.3f", gotCount, gotSum, totalCount, totalSum)
	}
	if gotMax != 1e6 {
		t.Errorf("after delete: max = %v, want the widened 1e6 (min/max never shrink)", gotMax)
	}

	if _, ok := c.ShardSummary(99, "value"); ok {
		t.Error("out-of-range shard should have no summary")
	}
	if _, ok := c.ShardSummary(0, "no-such-attr"); ok {
		t.Error("unknown attribute should have no summary")
	}
}

// TestSamplerLostMassBounds pins the query-side bound assembly: a degraded
// query exposes [lo, hi] bounds on its lost population's values from the
// coordinator summaries; healthy queries and unknown attributes do not.
func TestSamplerLostMassBounds(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 0},
	}}
	cfg := distrtest.FastConfig(4, 5, plan)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)

	healthy := c.Sampler(q)
	if _, _, _, ok := healthy.LostMassBounds("value"); ok {
		t.Error("healthy query should expose no lost-mass bounds")
	}

	s := c.Sampler(q)
	buf := make([]data.Entry, 64)
	for i := 0; i < 50 && !s.Degraded(); i++ {
		if s.NextBatch(buf, len(buf)) == 0 {
			break
		}
	}
	if !s.Degraded() {
		t.Fatal("crash never triggered")
	}
	lo, hi, lostN, ok := s.LostMassBounds("value")
	if !ok {
		t.Fatal("degraded query should expose lost-mass bounds for a summarized attribute")
	}
	_, lostPop := s.Degradation()
	if lostN != lostPop {
		t.Errorf("bounds report %d lost records, degradation reports %d", lostN, lostPop)
	}
	sum, _ := c.ShardSummary(2, "value")
	if lo != sum.Min || hi != sum.Max {
		t.Errorf("bounds [%v, %v], want the lost shard's summary [%v, %v]", lo, hi, sum.Min, sum.Max)
	}
	if _, _, _, ok := s.LostMassBounds("no-such-attr"); ok {
		t.Error("unknown attribute should have no bounds")
	}
}

// runRecoveredEstimate drives one kill-then-recover AVG query by hand —
// small NextBatch rounds so re-admit polls interleave with sampling, the
// way the engine's evaluator drives the sampler — and returns the final
// estimate. The shard must have completed a full crash→readmit cycle by
// the end or the test dies: every returned interval really did span the
// down→up transition.
func runRecoveredEstimate(t *testing.T, ds *data.Dataset, q geo.Rect, seed int64, maxSamples int) estimator.Estimate {
	t.Helper()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
	}}
	c := distrtest.Build(t, ds, distrtest.FastConfig(8, seed, plan))
	col, err := ds.NumericColumn("value")
	if err != nil {
		t.Fatal(err)
	}
	population := c.Count(q)
	est, err := estimator.New(estimator.Avg, 0.95, population, true)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sampler(q)
	buf := make([]data.Entry, 32)
	for drawn := 0; drawn < maxSamples; {
		want := maxSamples - drawn
		if want > len(buf) {
			want = len(buf)
		}
		n := s.NextBatch(buf, want)
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
		}
		_, lostPop := s.Degradation()
		est.SetPopulation(population - lostPop)
		drawn += n
		if n < want {
			break
		}
	}
	if s.Readmits() != 1 || s.Degraded() {
		t.Fatalf("seed %d: readmits=%d degraded=%v — the crash→recover cycle did not complete", seed, s.Readmits(), s.Degraded())
	}
	return est.Snapshot()
}

// TestStatRecoveredCICoversFullMean is the headline statistical
// acceptance: across 200 seeded kill-then-recover runs, the 95% CI of an
// in-flight AVG query that lost a shard mid-stream and re-admitted it
// must cover the TRUE FULL-POPULATION mean at the nominal rate. This is
// the unbiasedness-across-the-transition claim: fetch re-weighting
// rebuilds the inclusion distribution over the full population after
// rejoin. The 3% slack absorbs the t-approximation at 320 samples and the
// population transition mid-stream; alpha is statcheck's documented 1e-3
// false-positive budget.
func TestStatRecoveredCICoversFullMean(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	truth, matches := distrtest.FullTruth(ds, q)
	if matches < 500 {
		t.Fatalf("degenerate fixture: %d matches", matches)
	}
	seeds := statcheck.Seeds(7, 200)
	intervals := make([]statcheck.Interval, 0, len(seeds))
	for _, seed := range seeds {
		est := runRecoveredEstimate(t, ds, q, seed, 320)
		if est.Population != matches {
			t.Fatalf("seed %d: effective population %d, want full %d after rejoin", seed, est.Population, matches)
		}
		intervals = append(intervals, statcheck.IntervalAround(est.Value, est.HalfWidth))
	}
	statcheck.Coverage(t, "recovered-ci", truth, intervals, 0.95, 0.03, statcheck.DefaultAlpha)
}

// TestStatPostRejoinFirstSampleUniform: after a full crash→recover cycle,
// a NEW query's first sample must be uniform over the FULL matching
// population — the rejoined shard's records are neither starved nor
// favored. Chi-square over many independent cluster seeds through the
// statcheck harness.
func TestStatPostRejoinFirstSampleUniform(t *testing.T) {
	ds := distrtest.Dataset(400)
	q := distrtest.Query()
	all := make(map[data.ID]bool)
	for i := 0; i < ds.Len(); i++ {
		if q.Contains(ds.Pos(uint64(i))) {
			all[uint64(i)] = true
		}
	}
	nq := len(all)
	if nq < 20 {
		t.Fatalf("degenerate fixture q=%d", nq)
	}
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		1: {Crash: true, CrashAfterFetches: 0, RecoverAfter: 2},
	}}
	counts := make(map[data.ID]int)
	const trials = 6000
	for i := 0; i < trials; i++ {
		cfg := distrtest.FastConfig(4, int64(i), plan)
		cfg.MaxRetries = -1
		c := distrtest.Build(t, ds, cfg)
		// First query: trigger the crash (shard 1 dies on its first fetch).
		first := c.Sampler(q)
		first.NextBatch(make([]data.Entry, 64), 64)
		if !first.Degraded() && first.Readmits() == 0 {
			t.Fatalf("trial %d: crash never triggered", i)
		}
		// Count rounds double as liveness probes until the shard rejoins.
		recovered := false
		for j := 0; j < 10; j++ {
			c.Count(q)
			if st := c.FaultStats(); st.ShardsDown == 0 {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Fatalf("trial %d: shard never rejoined", i)
		}
		// Second query: first sample over the recovered full population.
		e, ok := c.Sampler(q).Next()
		if !ok {
			t.Fatalf("trial %d: no sample", i)
		}
		if !all[e.ID] {
			t.Fatalf("trial %d: sample %d outside query", i, e.ID)
		}
		counts[e.ID]++
	}
	obsCounts := make([]int, 0, nq)
	for id := range all {
		obsCounts = append(obsCounts, counts[id])
	}
	statcheck.Uniform(t, "post-rejoin-first-sample", obsCounts, statcheck.DefaultAlpha)
}

// TestStatDegradedLostMassBoundsCoverFullMean closes the loop on the
// summaries: when the shard does NOT come back, the degraded CI widened
// by the lost-mass bounds must cover the TRUE FULL-POPULATION mean — the
// widening converts "we only know the survivors" into a hard statement
// about everything, because every lost value provably lies inside the
// lost shards' [min, max]. Coverage holds at (at least) the survivors'
// nominal rate.
func TestStatDegradedLostMassBoundsCoverFullMean(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	truth, matches := distrtest.FullTruth(ds, q)
	if matches < 500 {
		t.Fatalf("degenerate fixture: %d matches", matches)
	}
	col, err := ds.NumericColumn("value")
	if err != nil {
		t.Fatal(err)
	}
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 0},
		5: {Crash: true, CrashAfterFetches: 0},
	}}
	seeds := statcheck.Seeds(31, 100)
	intervals := make([]statcheck.Interval, 0, len(seeds))
	for _, seed := range seeds {
		cfg := distrtest.FastConfig(8, seed, plan)
		cfg.MaxRetries = -1
		c := distrtest.Build(t, ds, cfg)
		population := c.Count(q)
		est, err := estimator.New(estimator.Avg, 0.95, population, true)
		if err != nil {
			t.Fatal(err)
		}
		s := c.Sampler(q)
		buf := make([]data.Entry, 300)
		n := s.NextBatch(buf, len(buf))
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
		}
		_, lostPop := s.Degradation()
		est.SetPopulation(population - lostPop)
		if !s.Degraded() {
			t.Fatalf("seed %d: crash never triggered", seed)
		}
		snap := est.Snapshot()
		lo, hi, lostN, ok := s.LostMassBounds("value")
		if !ok {
			t.Fatalf("seed %d: no lost-mass bounds", seed)
		}
		low, high, ok := estimator.LostMassBounds(snap, lo, hi, lostN)
		if !ok {
			t.Fatalf("seed %d: bound widening failed", seed)
		}
		if low > snap.Value-snap.HalfWidth || high < snap.Value+snap.HalfWidth-1e-9 {
			// Not required in general (the widened interval is a weighted
			// mix), but with lost mass present it must extend past the
			// surviving CI on at least one side; a strictly narrower
			// interval would be a sign error.
			if low > snap.Value-snap.HalfWidth && high < snap.Value+snap.HalfWidth {
				t.Fatalf("seed %d: widened interval [%v, %v] strictly inside CI [%v, %v]",
					seed, low, high, snap.Value-snap.HalfWidth, snap.Value+snap.HalfWidth)
			}
		}
		intervals = append(intervals, statcheck.Interval{Low: low, High: high})
	}
	statcheck.Coverage(t, "lost-mass-bounds", truth, intervals, 0.95, 0.03, statcheck.DefaultAlpha)
}
