// Package distrtest holds the shared fixtures and drain helpers used by
// the distributed-layer test suites (internal/distr's external tests and
// internal/engine's distributed tests). Folding them here keeps the
// cluster-builder and stream-drain idioms in one place instead of
// copy-pasted per package: every suite builds the same uniform fixture,
// queries the same rectangle, and compares sample streams the same way.
//
// The package imports distr, so only external test packages
// (package distr_test, package engine) can use it; distr's in-package
// tests would form an import cycle and keep their own minimal helpers.
package distrtest

import (
	"testing"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/wire"
)

// Dataset builds the shared test fixture: n uniform records over a
// 100×100×100 space-time box with the standard numeric columns, under a
// fixed generator seed so every suite sees identical data.
func Dataset(n int) *data.Dataset {
	return gen.Uniform(n, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
}

// Query returns the standard test query: a rectangle covering roughly a
// sixth of the fixture's space-time volume, so it spans shard boundaries
// while leaving plenty of non-matching records.
func Query() geo.Rect {
	return geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})
}

// FastConfig returns a cluster config with retry backoff sleeps disabled
// so fault-injection tests stay fast. An optional replica count sets
// Config.Replicas (default 1, the historical single-copy layout), letting
// the same suites run against replicated clusters without changing any
// existing call site.
func FastConfig(shards int, seed int64, plan *distr.FaultPlan, replicas ...int) distr.Config {
	cfg := distr.Config{Shards: shards, Seed: seed, Faults: plan, RetryBackoff: -1}
	if len(replicas) > 0 {
		cfg.Replicas = replicas[0]
	}
	return cfg
}

// Build constructs a cluster from ds under cfg, failing the test on error.
func Build(t testing.TB, ds *data.Dataset, cfg distr.Config) *distr.Cluster {
	t.Helper()
	c, err := distr.Build(ds, cfg)
	if err != nil {
		t.Fatalf("distr.Build: %v", err)
	}
	return c
}

// BuildTCP constructs a remote cluster against shard hosts serving the
// same dataset over real TCP sockets: one wire.Server per addr, each
// backed by a Host that regenerated the fixture. The servers are torn
// down with the test. cfg.Replicas flows through to placement: with R
// replicas each shard lands on R distinct hosts (pass at least R hosts,
// or the replica sets come up short and the suite quietly runs at a
// lower factor).
func BuildTCP(t testing.TB, ds *data.Dataset, cfg distr.Config, hosts int) *distr.Cluster {
	t.Helper()
	addrs := make([]string, hosts)
	for i := range addrs {
		h := distr.NewHost()
		h.AddDataset(ds)
		srv, err := wire.NewServer("127.0.0.1:0", h)
		if err != nil {
			t.Fatalf("wire.NewServer: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	c, err := distr.BuildRemote(ds, cfg, addrs)
	if err != nil {
		t.Fatalf("distr.BuildRemote: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// DrainSerial pulls every sample one at a time until the stream ends.
func DrainSerial(s *distr.Sampler) []data.Entry {
	var out []data.Entry
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// DrainBatched pulls with NextBatch using the cyclic size pattern,
// stopping at the first short round.
func DrainBatched(s *distr.Sampler, sizes []int) []data.Entry {
	var out []data.Entry
	for i := 0; ; i++ {
		k := sizes[i%len(sizes)]
		buf := make([]data.Entry, k)
		n := s.NextBatch(buf, k)
		out = append(out, buf[:n]...)
		if n < k {
			return out
		}
	}
}

// SameEntries fails the test unless the two drains are byte-identical:
// same length, same IDs in the same order.
func SameEntries(t testing.TB, want, got []data.Entry, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: one drain yields %d samples, the other %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: stream diverges at %d: ID %d vs %d",
				label, i, want[i].ID, got[i].ID)
		}
	}
}

// SurvivingTruth computes the mean of the "value" column over records
// matching q on every shard except the given dead ones — the population a
// degraded stream covers. Shards() returns only the primaries, each of
// which holds its full partition exactly once, so the truth is the same
// at every replication factor.
func SurvivingTruth(c *distr.Cluster, ds *data.Dataset, q geo.Rect, dead map[int]bool) (mean float64, count int) {
	col, _ := ds.NumericColumn("value")
	var sum float64
	for i, sh := range c.Shards() {
		if dead[i] {
			continue
		}
		for _, e := range sh.Index().Tree().ReportAll(q) {
			sum += col[e.ID]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// FullTruth computes the mean of the "value" column over every record in
// ds matching q — the full-population ground truth that recovery and
// lost-mass-bound tests compare against.
func FullTruth(ds *data.Dataset, q geo.Rect) (mean float64, count int) {
	col, _ := ds.NumericColumn("value")
	var sum float64
	for i := 0; i < ds.Len(); i++ {
		if q.Contains(ds.Pos(uint64(i))) {
			sum += col[i]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}
