// The shard-server side of the RPC boundary: shardBackend owns one
// shard's index, summaries and open sample streams, and loopbackClient is
// the in-process ShardClient over it. The same backend serves remote
// coordinators through Host (host.go), so shard behavior is identical
// whichever transport carries the requests.
package distr

import (
	"fmt"
	"sort"
	"sync"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/hilbert"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
	"storm/internal/wire"
)

// partition splits the dataset into contiguous Hilbert ranges — one per
// shard, spatially coherent so selective queries touch few shards. The
// result is fully deterministic in the dataset contents and shard count
// (the sort is over totally-ordered keys with index tie-breaks), so a
// coordinator and a remote shard host partitioning the same dataset agree
// on every shard's contents without shipping them.
func partition(ds *data.Dataset, shards int) (parts [][]data.Entry, bounds geo.Rect, err error) {
	entries := ds.Entries()
	bounds = ds.Bounds()
	if bounds.IsEmpty() {
		bounds = geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1, 1, 1})
	}
	curve := hilbert.MustNew(geo.Dims, 16)
	quant, err := hilbert.NewQuantizer(curve, bounds.Min[:], bounds.Max[:])
	if err != nil {
		return nil, geo.Rect{}, fmt.Errorf("distr: %w", err)
	}
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = quant.Value(e.Pos[0], e.Pos[1], e.Pos[2])
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	parts = make([][]data.Entry, shards)
	per := (len(entries) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if lo > len(entries) {
			lo = len(entries)
		}
		if hi > len(entries) {
			hi = len(entries)
		}
		part := make([]data.Entry, 0, hi-lo)
		for _, idx := range order[lo:hi] {
			part = append(part, entries[idx])
		}
		parts[s] = part
	}
	return parts, bounds, nil
}

// buildShard materializes one shard from its partition: a local RS-tree
// (seeded cfg.Seed + id*7919, the derivation both the in-process cluster
// and remote shard hosts use), an optional simulated device, and the
// per-attribute summaries behind lost-mass bounds.
func buildShard(ds *data.Dataset, part []data.Entry, id int, bounds geo.Rect, cfg Config) (*Shard, error) {
	var dev *iosim.Device
	var acct iosim.Accountant = iosim.Discard
	if cfg.BufferPoolPages > 0 {
		dev = iosim.NewDevice(cfg.BufferPoolPages, iosim.DefaultCostModel())
		acct = dev
	}
	idx, err := rstree.Build(part, rstree.Config{
		Fanout: cfg.Fanout,
		Device: acct,
		Bounds: bounds,
		Seed:   cfg.Seed + int64(id)*7919,
	})
	if err != nil {
		return nil, fmt.Errorf("distr: building shard %d: %w", id, err)
	}
	attrs := rtree.NewSummaries(idx.Tree(), ds)
	attrs.Precompute()
	return &Shard{
		ID: id, index: idx, device: dev, count: len(part),
		summaries: buildSummaries(ds, part), attrs: attrs,
	}, nil
}

// backendStream is one open sample stream on a shard. Each stream has a
// single consumer (the coordinator query that opened it), so its scratch
// buffer for wire fetches is reused across rounds without copying.
type backendStream struct {
	mu sync.Mutex
	sp *rstree.Sampler
	// exclude filters out record IDs the coordinator already holds (set
	// only on a reopen after a shard restart); filtering a uniform
	// without-replacement stream leaves the complement uniform WOR.
	exclude map[data.ID]struct{}
	// scratch backs wire-transport fetch responses (see Host).
	scratch []data.Entry
}

// fetch draws up to n samples into dst, skipping excluded IDs. Caller
// holds the stream lock and the backend's structure read lock.
func (st *backendStream) fetch(dst []data.Entry, n int) int {
	if len(st.exclude) == 0 {
		return st.sp.NextBatch(dst[:n], n)
	}
	got := 0
	for got < n {
		k := st.sp.NextBatch(dst[got:n], n-got)
		if k == 0 {
			break
		}
		w := got
		for _, e := range dst[got : got+k] {
			if _, ex := st.exclude[e.ID]; !ex {
				dst[w] = e
				w++
			}
		}
		got = w
	}
	return got
}

// shardBackend is one shard server's request-handling state: the shard
// itself, a structure lock replacing the old cluster-wide one (each shard
// is an independent server; the documented contract already allows a
// long-lived sampler to mix pre- and post-update state across batches),
// and the table of open sample streams.
type shardBackend struct {
	shard *Shard
	ds    *data.Dataset
	// mu guards the shard's index, count and summaries: stream fetches
	// and counts hold the read side, insert/delete the write side.
	mu sync.RWMutex
	// smu guards the stream table only (never held across index work).
	smu     sync.Mutex
	streams map[uint64]*backendStream
}

func newShardBackend(sh *Shard, ds *data.Dataset) *shardBackend {
	return &shardBackend{shard: sh, ds: ds, streams: make(map[uint64]*backendStream)}
}

// compileWhere compiles the coordinator's predicate terms against the
// shard's dataset and binds them to the shard's local tree summaries.
// Caller holds the structure read lock. A nil result means no predicate.
func (b *shardBackend) compileWhere(where []pred.Term) (*rtree.TreeFilter, error) {
	if len(where) == 0 {
		return nil, nil
	}
	c, err := pred.Normalize(where).Compile(b.ds)
	if err != nil {
		return nil, err
	}
	return rtree.NewTreeFilter(c, b.shard.attrs), nil
}

// count narrows q's time axis to the window before counting — the single
// funnel both transports share, so a windowed count sees the identical
// population in-process and across TCP.
func (b *shardBackend) count(q geo.Rect, where []pred.Term, win wire.Window) (int, error) {
	q = win.Apply(q)
	b.mu.RLock()
	defer b.mu.RUnlock()
	f, err := b.compileWhere(where)
	if err != nil {
		return 0, err
	}
	if f == nil {
		return b.shard.index.Count(q), nil
	}
	return b.shard.index.Tree().CountWhere(q, f), nil
}

// open creates sample stream id over q. The count-then-create sequence
// and the stats.NewRNG(seed) sampler construction are exactly what the
// pre-RPC coordinator did inline, so loopback streams are byte-identical.
// Excluded IDs that still match q (and the predicate, when one rode along)
// are subtracted from the returned count; an excluded record deleted since
// it was emitted would make that subtraction overshoot by one, which only
// ends the stream early — the coordinator's defensive repair absorbs it.
// The window narrows q's time axis up front, exactly as count does, so a
// windowed stream draws from the same records on every transport.
func (b *shardBackend) open(stream uint64, q geo.Rect, seed int64, exclude []data.ID, where []pred.Term, win wire.Window) (int, error) {
	q = win.Apply(q)
	b.mu.RLock()
	f, err := b.compileWhere(where)
	if err != nil {
		b.mu.RUnlock()
		return 0, err
	}
	var n int
	if f == nil {
		n = b.shard.index.Count(q)
	} else {
		n = b.shard.index.Tree().CountWhere(q, f)
	}
	var exmap map[data.ID]struct{}
	if len(exclude) > 0 {
		exmap = make(map[data.ID]struct{}, len(exclude))
		for _, id := range exclude {
			if _, dup := exmap[id]; dup {
				continue
			}
			exmap[id] = struct{}{}
			if int(id) < b.ds.Len() && q.Contains(b.ds.Pos(id)) && f.Match(id) {
				n--
			}
		}
	}
	var sp *rstree.Sampler
	if n > 0 {
		sp = b.shard.index.SamplerWhere(q, sampling.WithoutReplacement, stats.NewRNG(seed), f)
	}
	b.mu.RUnlock()
	if n < 0 {
		n = 0
	}
	if sp == nil {
		return n, nil
	}
	b.smu.Lock()
	b.streams[stream] = &backendStream{sp: sp, exclude: exmap}
	b.smu.Unlock()
	return n, nil
}

func (b *shardBackend) lookup(stream uint64) *backendStream {
	b.smu.Lock()
	defer b.smu.Unlock()
	return b.streams[stream]
}

// fetch draws up to n samples from the stream into dst[:n].
func (b *shardBackend) fetch(stream uint64, dst []data.Entry, n int) (int, error) {
	st := b.lookup(stream)
	if st == nil {
		return 0, ErrUnknownStream
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	return st.fetch(dst, n), nil
}

// fetchScratch is fetch into the stream's reusable scratch buffer — the
// wire-transport path, where the response is serialized before the
// stream's single consumer can issue another fetch.
func (b *shardBackend) fetchScratch(stream uint64, n int) ([]data.Entry, error) {
	st := b.lookup(stream)
	if st == nil {
		return nil, ErrUnknownStream
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if cap(st.scratch) < n {
		st.scratch = make([]data.Entry, n)
	}
	dst := st.scratch[:n]
	b.mu.RLock()
	got := st.fetch(dst, n)
	b.mu.RUnlock()
	return dst[:got], nil
}

func (b *shardBackend) closeStream(stream uint64) {
	b.smu.Lock()
	delete(b.streams, stream)
	b.smu.Unlock()
}

func (b *shardBackend) openStreams() int {
	b.smu.Lock()
	defer b.smu.Unlock()
	return len(b.streams)
}

func (b *shardBackend) insert(e data.Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shard.index.Insert(e)
	b.shard.count++
	summaryAdd(b.ds, b.shard, e)
}

func (b *shardBackend) delete(e data.Entry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.shard.index.Delete(e) {
		return false
	}
	b.shard.count--
	summaryRemove(b.ds, b.shard, e)
	return true
}

func (b *shardBackend) bounds() geo.Rect {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.shard.index.Tree().Bounds()
}

func (b *shardBackend) length() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.shard.count
}

func (b *shardBackend) summary(attr string) (AttrSummary, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.shard.summaries[attr]
	if !ok {
		return AttrSummary{}, false
	}
	return *a, true
}

// loopbackClient is the in-process ShardClient: direct dispatch to the
// backend with no serialization, no deadline and no traffic — the
// loopback transport, byte-identical in behavior, seeds and cost to the
// pre-RPC direct calls (the cluster keeps its simulated NetStats charges
// on this path; see Cluster.charge).
type loopbackClient struct {
	b *shardBackend
}

// Count implements ShardClient.
func (c *loopbackClient) Count(q geo.Rect, where []pred.Term, win wire.Window) (int, error) {
	return c.b.count(q, where, win)
}

// Open implements ShardClient.
func (c *loopbackClient) Open(stream uint64, q geo.Rect, seed int64, exclude []data.ID, where []pred.Term, win wire.Window) (int, error) {
	return c.b.open(stream, q, seed, exclude, where, win)
}

// Fetch implements ShardClient.
func (c *loopbackClient) Fetch(stream uint64, dst []data.Entry, n int) (int, error) {
	return c.b.fetch(stream, dst, n)
}

// CloseStream implements ShardClient.
func (c *loopbackClient) CloseStream(stream uint64) error {
	c.b.closeStream(stream)
	return nil
}

// Insert implements ShardClient.
func (c *loopbackClient) Insert(e data.Entry) error {
	c.b.insert(e)
	return nil
}

// Delete implements ShardClient.
func (c *loopbackClient) Delete(e data.Entry) (bool, error) { return c.b.delete(e), nil }

// Bounds implements ShardClient.
func (c *loopbackClient) Bounds() (geo.Rect, error) { return c.b.bounds(), nil }

// Len implements ShardClient.
func (c *loopbackClient) Len() (int, error) { return c.b.length(), nil }

// Summary implements ShardClient.
func (c *loopbackClient) Summary(attr string) (AttrSummary, bool, error) {
	s, ok := c.b.summary(attr)
	return s, ok, nil
}

// Addr implements ShardClient.
func (c *loopbackClient) Addr() string { return "loopback" }

// Close implements ShardClient.
func (c *loopbackClient) Close() error { return nil }
