// Package distr implements STORM's distributed deployment: the paper runs
// on "a cluster of commodity machines" with a distributed Hilbert R-tree.
// Here a Cluster is a set of simulated shard servers, each holding a
// contiguous Hilbert range of the data with a local RS-tree, and a
// coordinator that answers spatial online sampling queries across shards.
//
// Correctness rests on the same disjointness argument as the RS-tree's
// canonical parts: shards partition P, so drawing the next sample from
// shard s with probability proportional to s's remaining matching count
// yields a uniform without-replacement stream over P ∩ Q.
//
// The simulation charges one network message per Count round and per
// sample batch, so the benchmarks can report message counts and per-shard
// balance alongside sample throughput.
//
// # Concurrency
//
// The coordinator fans shard work out in parallel: Count and a Sampler's
// initialization round contact every shard concurrently, as a real
// coordinator would. Any number of queries (Count, Samplers, EstimateAvg,
// ParallelPartialAvg) may run concurrently; Insert and Delete take the
// cluster's write lock and so serialize against each in-flight shard
// round. A long-lived Sampler that straddles an update may mix pre- and
// post-update state across batches (each batch is internally consistent);
// quiesce updates around a sampler when an exactly-uniform stream over a
// fixed population is required.
package distr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/hilbert"
	"storm/internal/iosim"
	"storm/internal/obs"
	"storm/internal/rstree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// Config controls cluster shape.
type Config struct {
	// Shards is the number of shard servers (>= 1).
	Shards int
	// Fanout is each shard's RS-tree fanout; 0 means the default.
	Fanout int
	// BatchSize is how many samples a shard ships per network message;
	// 0 means 32.
	BatchSize int
	// Seed drives partitioning and sampling randomness.
	Seed int64
	// BufferPoolPages gives each shard a simulated buffer pool of this
	// many pages; 0 disables I/O accounting.
	BufferPoolPages int
	// Obs receives the cluster's metrics (fan-out latency, per-shard
	// fetch latency, live network counters). Nil disables collection at
	// zero cost (see package obs).
	Obs *obs.Registry
	// Faults installs a deterministic fault-injection plan (see
	// FaultPlan); nil leaves the cluster healthy and the fetch path
	// byte-identical to a plan-free build.
	Faults *FaultPlan
	// FetchTimeout is the coordinator's per-fetch deadline: an injected
	// latency spike at or beyond it surfaces as a timeout. 0 means 50ms.
	FetchTimeout time.Duration
	// MaxRetries bounds how many times the coordinator retries a fetch
	// that failed transiently or timed out before abandoning the shard
	// for the query; 0 means 3. Negative disables retries.
	MaxRetries int
	// RetryBackoff is the initial retry backoff, doubled per retry; 0
	// means 200µs. Negative disables backoff sleeps (fast tests).
	RetryBackoff time.Duration
}

// NetStats counts simulated network traffic.
type NetStats struct {
	Messages     uint64
	SamplesMoved uint64
}

// Shard is one simulated shard server.
type Shard struct {
	ID     int
	index  *rstree.Index
	device *iosim.Device
	count  int
	// summaries digests each numeric attribute of the shard's records
	// (count/sum/min/max) for coordinator-side lost-mass bounds; guarded
	// by the cluster's structMu like the index (see summary.go).
	summaries map[string]*AttrSummary
}

// Len returns the number of records on the shard.
func (s *Shard) Len() int { return s.count }

// Index returns the shard's local RS-tree (diagnostics and benchmarks).
func (s *Shard) Index() *rstree.Index { return s.index }

// Device returns the shard's simulated block device (nil when disabled).
func (s *Shard) Device() *iosim.Device { return s.device }

// Cluster is a simulated distributed STORM deployment.
type Cluster struct {
	// mu guards the network counters and the seed sequence only.
	mu sync.Mutex
	// structMu guards the shard indexes: queries hold the read side while
	// they touch shard trees, Insert/Delete take the write side.
	structMu sync.RWMutex
	cfg      Config
	ds       *data.Dataset
	shards   []*Shard
	net      NetStats
	rngSeq   int64
	met      clusterMetrics
	// faults holds the per-shard fault injectors (nil without a plan);
	// ftot is the always-on fault accounting (see fault.go).
	faults []*faultState
	ftot   faultTotals
}

// clusterMetrics holds the cluster's resolved metric handles; all-nil
// (every write a no-op) when Config.Obs is nil.
type clusterMetrics struct {
	// fanoutMS times each coordinator fan-out round: a Count round, a
	// sampler's initialization round, or a scatter/gather partial round.
	fanoutMS *obs.Histogram
	// fetchMS times individual shard sample fetches (one request/response
	// round trip in the simulation).
	fetchMS *obs.Histogram
	// fetches counts shard sample-fetch messages issued by samplers.
	fetches *obs.Counter
}

// registryClusters tracks, per obs registry, every cluster publishing to
// it. Registry.Publish overwrites duplicate names, so per-cluster Funcs
// would expose only the most recently built cluster (a server registers
// one cluster per sharded dataset); instead the storm.distr.* Funcs are
// published once per registry and sum across its clusters at scrape time.
// Entries are never removed — clusters live for the process in this
// simulation — so a replaced cluster keeps contributing its final totals.
var registryClusters = struct {
	sync.Mutex
	m map[*obs.Registry][]*Cluster
}{m: map[*obs.Registry][]*Cluster{}}

// initMetrics resolves the cluster's metrics against cfg.Obs and
// re-exports the network and fault totals as live scrape-time Funcs.
func (c *Cluster) initMetrics() {
	reg := c.cfg.Obs
	c.met = clusterMetrics{
		fanoutMS: reg.Histogram("storm.distr.fanout.latency_ms", obs.LatencyBucketsMS),
		fetchMS:  reg.Histogram("storm.distr.fetch.latency_ms", obs.LatencyBucketsMS),
		fetches:  reg.Counter("storm.distr.fetches"),
	}
	if reg == nil {
		return
	}
	registryClusters.Lock()
	defer registryClusters.Unlock()
	prev := registryClusters.m[reg]
	registryClusters.m[reg] = append(prev, c)
	if prev != nil {
		return // this registry's scrape Funcs are already live
	}
	clusters := func() []*Cluster {
		registryClusters.Lock()
		defer registryClusters.Unlock()
		return registryClusters.m[reg]
	}
	reg.PublishFunc("storm.distr.shards", func() any {
		n := 0
		for _, c := range clusters() {
			n += len(c.shards)
		}
		return n
	})
	reg.PublishFunc("storm.distr.net.messages", func() any {
		var n uint64
		for _, c := range clusters() {
			n += c.Net().Messages
		}
		return n
	})
	reg.PublishFunc("storm.distr.net.samples_moved", func() any {
		var n uint64
		for _, c := range clusters() {
			n += c.Net().SamplesMoved
		}
		return n
	})
	// Fault totals are owned by each cluster's atomics (exact with or
	// without a registry); the registry reads them at scrape time.
	sum := func(read func(*faultTotals) uint64) func() any {
		return func() any {
			var n uint64
			for _, c := range clusters() {
				n += read(&c.ftot)
			}
			return n
		}
	}
	reg.PublishFunc("storm.distr.faults.injected", sum(func(t *faultTotals) uint64 { return t.injected.Load() }))
	reg.PublishFunc("storm.distr.faults.latency", sum(func(t *faultTotals) uint64 { return t.latency.Load() }))
	reg.PublishFunc("storm.distr.faults.transient", sum(func(t *faultTotals) uint64 { return t.transient.Load() }))
	reg.PublishFunc("storm.distr.faults.timeouts", sum(func(t *faultTotals) uint64 { return t.timeouts.Load() }))
	reg.PublishFunc("storm.distr.faults.crashes", sum(func(t *faultTotals) uint64 { return t.crashes.Load() }))
	reg.PublishFunc("storm.distr.faults.retries", sum(func(t *faultTotals) uint64 { return t.retries.Load() }))
	reg.PublishFunc("storm.distr.faults.recoveries", sum(func(t *faultTotals) uint64 { return t.recoveries.Load() }))
	reg.PublishFunc("storm.distr.faults.exhausted", sum(func(t *faultTotals) uint64 { return t.exhausted.Load() }))
	reg.PublishFunc("storm.distr.faults.readmits", sum(func(t *faultTotals) uint64 { return t.readmits.Load() }))
	reg.PublishFunc("storm.distr.faults.shards_down", func() any {
		var n int64
		for _, c := range clusters() {
			n += c.ftot.shardsDown.Load()
		}
		return n
	})
}

// observeMS records elapsed wall time since start into h (no-op on a nil
// histogram).
func observeMS(h *obs.Histogram, start time.Time) {
	if h == nil {
		return
	}
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Build partitions the dataset into contiguous Hilbert ranges and builds a
// local RS-tree per shard. Hilbert partitioning keeps shards spatially
// coherent, so selective queries touch few shards — the distributed
// Hilbert R-tree layout the paper describes.
func Build(ds *data.Dataset, cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("distr: need at least one shard")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("distr: batch size %d invalid", cfg.BatchSize)
	}
	if cfg.FetchTimeout == 0 {
		cfg.FetchTimeout = 50 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 200 * time.Microsecond
	} else if cfg.RetryBackoff < 0 {
		cfg.RetryBackoff = 0
	}
	entries := ds.Entries()
	bounds := ds.Bounds()
	if bounds.IsEmpty() {
		bounds = geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1, 1, 1})
	}
	curve := hilbert.MustNew(geo.Dims, 16)
	quant, err := hilbert.NewQuantizer(curve, bounds.Min[:], bounds.Max[:])
	if err != nil {
		return nil, fmt.Errorf("distr: %w", err)
	}
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = quant.Value(e.Pos[0], e.Pos[1], e.Pos[2])
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	c := &Cluster{cfg: cfg, ds: ds}
	per := (len(entries) + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		lo := s * per
		hi := lo + per
		if lo > len(entries) {
			lo = len(entries)
		}
		if hi > len(entries) {
			hi = len(entries)
		}
		part := make([]data.Entry, 0, hi-lo)
		for _, idx := range order[lo:hi] {
			part = append(part, entries[idx])
		}
		var dev *iosim.Device
		var acct iosim.Accountant = iosim.Discard
		if cfg.BufferPoolPages > 0 {
			dev = iosim.NewDevice(cfg.BufferPoolPages, iosim.DefaultCostModel())
			acct = dev
		}
		idx, err := rstree.Build(part, rstree.Config{
			Fanout: cfg.Fanout,
			Device: acct,
			Bounds: bounds,
			Seed:   cfg.Seed + int64(s)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("distr: building shard %d: %w", s, err)
		}
		c.shards = append(c.shards, &Shard{ID: s, index: idx, device: dev, count: len(part), summaries: c.buildSummaries(part)})
	}
	c.faults = newFaultStates(cfg.Faults, cfg.Shards)
	c.initMetrics()
	return c, nil
}

// Shards returns the shard servers.
func (c *Cluster) Shards() []*Shard { return c.shards }

// Net returns a snapshot of network statistics.
func (c *Cluster) Net() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net
}

// ResetNet zeroes the network counters.
func (c *Cluster) ResetNet() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net = NetStats{}
}

func (c *Cluster) charge(messages, samples uint64) {
	c.mu.Lock()
	c.net.Messages += messages
	c.net.SamplesMoved += samples
	c.mu.Unlock()
}

func (c *Cluster) nextSeed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rngSeq++
	return c.cfg.Seed*101 + c.rngSeq
}

// Insert routes a new record to the shard owning its Hilbert range and
// inserts it into that shard's RS-tree (one request/response message). The
// record must already exist in the shared dataset (its ID addresses the
// attribute columns).
func (c *Cluster) Insert(e data.Entry) {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	// Route by spatial proximity of shard contents: the shard whose tree
	// bounds grow least. With contiguous Hilbert partitions this sends
	// the record to the shard owning its neighborhood.
	best, bestGrow := -1, math.Inf(1)
	for i, sh := range c.shards {
		if c.shardDown(i) {
			continue
		}
		b := sh.index.Tree().Bounds()
		grow := b.Extend(geo.RectFromPoint(e.Pos)).Volume() - b.Volume()
		if grow < bestGrow {
			best, bestGrow = i, grow
		}
	}
	if best < 0 {
		return // every shard down: nowhere to route the record
	}
	c.shards[best].index.Insert(e)
	c.shards[best].count++
	c.summaryAdd(c.shards[best], e)
	c.charge(2, 0)
}

// Delete removes a record from whichever shard holds it; returns false if
// no shard does. Worst case it asks every shard (2 messages each).
func (c *Cluster) Delete(e data.Entry) bool {
	c.structMu.Lock()
	defer c.structMu.Unlock()
	for i, sh := range c.shards {
		if c.shardDown(i) {
			continue
		}
		c.charge(2, 0)
		if sh.index.Delete(e) {
			sh.count--
			c.summaryRemove(sh, e)
			return true
		}
	}
	return false
}

// Count returns |P ∩ q| by fanning the count to every shard in parallel
// (one request and one response message each), as the coordinator of a
// real cluster would. Crashed shards do not answer; their records are
// simply absent from the total, so a degraded cluster reports the
// surviving population — the honest effective N for estimators built on
// top of it.
func (c *Cluster) Count(q geo.Rect) int {
	start := time.Now()
	defer observeMS(c.met.fanoutMS, start)
	c.structMu.RLock()
	defer c.structMu.RUnlock()
	counts := make([]int, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		if c.shardDown(i) {
			continue
		}
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			counts[i] = s.index.Count(q)
		}(i, s)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	c.charge(2*uint64(len(c.shards)), 0)
	return total
}

// Sampler returns a without-replacement online sampler over the cluster.
type Sampler struct {
	cluster *Cluster
	query   geo.Rect
	rng     *stats.RNG
	// per-shard state
	samplers  []*rstree.Sampler
	remaining []int
	buffers   [][]data.Entry
	// heads[i] is the read cursor into buffers[i]; entries before it have
	// been emitted.
	heads []int
	total int
	init  bool
	// degradation state: shards this query lost mid-stream (crashes or
	// retry exhaustion) and the matching population that went with them.
	// lost stashes each lost shard's stream so a crashed shard that comes
	// back can be re-admitted exactly where it left off (see
	// maybeReadmit); readmits counts the re-admissions this query made.
	lostShards int
	lostPop    int
	lost       map[int]lostShard
	readmits   int
	// batch-round scratch (see NextBatch), reused across rounds.
	simRem  []int
	choices []int
	demand  []int
}

// Sampler returns an online sampler for q across all shards.
func (c *Cluster) Sampler(q geo.Rect) *Sampler {
	return &Sampler{cluster: c, query: q, rng: stats.NewRNG(c.nextSeed())}
}

var _ sampling.Sampler = (*Sampler)(nil)

// Name implements sampling.Sampler.
func (s *Sampler) Name() string { return "distributed-rs-tree" }

// initialize runs the coordinator's count round, contacting every shard in
// parallel. Seeds are drawn serially up front so the stream is
// deterministic in the cluster's seed sequence regardless of shard timing.
func (s *Sampler) initialize() {
	start := time.Now()
	s.init = true
	cl := s.cluster
	defer observeMS(cl.met.fanoutMS, start)
	s.samplers = make([]*rstree.Sampler, len(cl.shards))
	s.remaining = make([]int, len(cl.shards))
	s.buffers = make([][]data.Entry, len(cl.shards))
	s.heads = make([]int, len(cl.shards))
	seeds := make([]int64, len(cl.shards))
	for i := range seeds {
		seeds[i] = cl.nextSeed()
	}
	cl.structMu.RLock()
	var wg sync.WaitGroup
	for i, sh := range cl.shards {
		if cl.shardDown(i) {
			// Already-crashed shards do not answer the count round: the
			// query runs over the surviving population from the start
			// (and is not marked degraded — nothing was lost mid-query).
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			s.remaining[i] = sh.index.Count(s.query)
			if s.remaining[i] > 0 {
				s.samplers[i] = sh.index.Sampler(s.query, sampling.WithoutReplacement, stats.NewRNG(seeds[i]))
			}
		}(i, sh)
	}
	wg.Wait()
	cl.structMu.RUnlock()
	for _, rem := range s.remaining {
		s.total += rem
	}
	cl.charge(2*uint64(len(cl.shards)), 0) // count round
}

// buffered returns how many fetched-but-unemitted samples shard has.
func (s *Sampler) buffered(shard int) int {
	return len(s.buffers[shard]) - s.heads[shard]
}

// pop emits the next buffered sample of shard, updating the counts.
func (s *Sampler) pop(shard int) data.Entry {
	e := s.buffers[shard][s.heads[shard]]
	s.heads[shard]++
	s.remaining[shard]--
	s.total--
	return e
}

// Next implements sampling.Sampler: it draws the owning shard with
// probability proportional to its remaining matching count, then consumes
// the next sample from that shard's stream (fetched in batches to amortize
// network messages).
func (s *Sampler) Next() (data.Entry, bool) {
	if !s.init {
		s.initialize()
	}
	s.maybeReadmit()
	if s.total <= 0 {
		return data.Entry{}, false
	}
	r := s.rng.Intn(s.total)
	shard := 0
	for i, rem := range s.remaining {
		if r < rem {
			shard = i
			break
		}
		r -= rem
	}
	if s.buffered(shard) == 0 {
		s.fetchInto(shard, s.cluster.cfg.BatchSize)
		if s.buffered(shard) == 0 {
			// Shard believed to have samples but returned none:
			// defensive consistency repair.
			s.total -= s.remaining[shard]
			s.remaining[shard] = 0
			return s.Next()
		}
	}
	return s.pop(shard), true
}

// NextBatch implements sampling.BatchSampler with the coordinator's
// batched protocol: the round's shard choices are simulated up front with
// the query RNG (consuming it exactly as repeated Next would, so the
// emitted stream is byte-identical), the resulting per-shard allocations
// are fetched with ONE request per shard — sized by the round's demand
// rather than the fixed BatchSize — and the round is assembled from the
// buffered shard streams in choice order. k samples therefore cost at most
// one message round trip per participating shard instead of the serial
// path's per-refill trips.
func (s *Sampler) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	if !s.init {
		s.initialize()
	}
	got := 0
	for got < k {
		// Poll for recovered shards before giving up on an exhausted
		// stream: a crashed shard that came back re-enters the draw
		// distribution here, and the poll itself advances a still-down
		// shard's recovery clock (no-op for healthy queries).
		s.maybeReadmit()
		if s.total <= 0 {
			break
		}
		n := s.batchRound(dst[got:], k-got)
		if n == 0 && s.total <= 0 {
			break
		}
		got += n
	}
	return got
}

// batchRound serves up to k samples: simulate choices, fetch deficits,
// assemble. Returns how many samples were written to dst.
func (s *Sampler) batchRound(dst []data.Entry, k int) int {
	m := k
	if m > s.total {
		m = s.total
	}
	shards := len(s.remaining)
	if cap(s.simRem) < shards {
		s.simRem = make([]int, shards)
		s.demand = make([]int, shards)
	}
	simRem := s.simRem[:shards]
	demand := s.demand[:shards]
	copy(simRem, s.remaining)
	for i := range demand {
		demand[i] = 0
	}
	if cap(s.choices) < m {
		s.choices = make([]int, m)
	}
	choices := s.choices[:m]

	// Phase 1: replay the serial draw sequence against scratch counts.
	total := s.total
	for j := 0; j < m; j++ {
		r := s.rng.Intn(total)
		shard := 0
		for i, rem := range simRem {
			if r < rem {
				shard = i
				break
			}
			r -= rem
		}
		choices[j] = shard
		simRem[shard]--
		total--
		demand[shard]++
	}

	// Phase 2: one demand-sized fetch per shard that needs more samples.
	for i := range demand {
		if deficit := demand[i] - s.buffered(i); deficit > 0 {
			s.fetchInto(i, deficit)
		}
	}

	// Phase 3: assemble in choice order. A shard that under-delivered
	// (bookkeeping said it had samples but it returned none — the serial
	// path's defensive repair case) is zeroed out and its remaining
	// choices skipped; only in that never-expected state can the stream
	// diverge from the serial one.
	got := 0
	for _, shard := range choices {
		if s.remaining[shard] <= 0 {
			continue
		}
		if s.buffered(shard) == 0 {
			s.total -= s.remaining[shard]
			s.remaining[shard] = 0
			continue
		}
		dst[got] = s.pop(shard)
		got++
	}
	return got
}

// fetchInto pulls up to n more samples from the shard into its buffer (one
// request and one response message). It holds the cluster's read lock for
// the fetch, so shard pulls serialize against Insert/Delete but run
// concurrently with other queries' fetches.
func (s *Sampler) fetchInto(shard, n int) {
	sp := s.samplers[shard]
	if sp == nil {
		return
	}
	if n > s.remaining[shard] {
		n = s.remaining[shard]
	}
	if n <= 0 {
		return
	}
	if s.buffered(shard) == 0 {
		s.buffers[shard] = s.buffers[shard][:0]
		s.heads[shard] = 0
	}
	fetchStart := time.Now()
	defer observeMS(s.cluster.met.fetchMS, fetchStart)
	s.cluster.met.fetches.Inc()
	s.cluster.structMu.RLock()
	defer s.cluster.structMu.RUnlock()
	buf := s.buffers[shard]
	start := len(buf)
	if cap(buf) < start+n {
		grown := make([]data.Entry, start, start+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+n]
	got, lost, crashed := s.cluster.shardFetch(shard, sp, buf[start:], n)
	s.buffers[shard] = buf[:start+got]
	if lost {
		s.loseShard(shard, crashed)
		return
	}
	s.cluster.charge(2, uint64(got))
}

// lostShard stashes a lost shard's per-query stream state so a crashed
// shard that recovers can be re-admitted exactly where it left off.
type lostShard struct {
	sampler   *rstree.Sampler
	remaining int
	// crash marks a cluster-wide shard crash (re-admittable when the
	// shard recovers) as opposed to query-local retry exhaustion (the
	// shard server never went down, so there is no recovery to wait for
	// and the loss is final).
	crash bool
}

// loseShard degrades the query after shard became unavailable (crash, or
// retries exhausted): its unemitted matching population is written off,
// which both re-weights the draw distribution over the survivors (draws
// are proportional to per-shard remaining counts) and shrinks the stream's
// effective population so estimators widen their intervals honestly.
// Samples already emitted from the shard stay in the stream. The shard's
// sampler, unemitted count, and fetched-but-unemitted buffer are stashed
// rather than discarded (remaining still counts the buffered entries, so
// the write-off is exact and unreachable entries stay unreachable): if
// the shard was crash-lost and later recovers, maybeReadmit restores the
// stream bit-for-bit from where it stopped.
func (s *Sampler) loseShard(shard int, crash bool) {
	if s.samplers[shard] == nil && s.remaining[shard] == 0 {
		return
	}
	if s.lost == nil {
		s.lost = make(map[int]lostShard)
	}
	s.lost[shard] = lostShard{sampler: s.samplers[shard], remaining: s.remaining[shard], crash: crash}
	s.lostShards++
	s.lostPop += s.remaining[shard]
	s.total -= s.remaining[shard]
	s.remaining[shard] = 0
	s.samplers[shard] = nil
}

// maybeReadmit re-admits crash-lost shards whose servers have come back:
// the stashed shard stream and unemitted matching count are restored, the
// draw distribution re-weights itself back over the full population
// (draws are proportional to per-shard remaining counts, so restoring the
// count IS the re-weighting — every still-unemitted record, on every
// shard, is again equally likely next), and Degradation shrinks so
// estimators re-grow their effective N via SetPopulation. Each poll of a
// still-down shard advances its recovery clock, making a sampling query
// double as the liveness probe. No-op for healthy queries (len(lost) ==
// 0) and for exhaustion-lost shards (nothing to recover from). Queries
// that started while a shard was already down scoped themselves to the
// surviving population at their count round and never re-admit it.
func (s *Sampler) maybeReadmit() {
	if len(s.lost) == 0 {
		return
	}
	for shard, st := range s.lost {
		if !st.crash || s.cluster.shardDown(shard) {
			continue
		}
		delete(s.lost, shard)
		s.samplers[shard] = st.sampler
		s.remaining[shard] = st.remaining
		s.total += st.remaining
		s.lostShards--
		s.lostPop -= st.remaining
		s.readmits++
	}
}

// Readmits reports how many lost shards this query has re-admitted after
// their recovery (see maybeReadmit).
func (s *Sampler) Readmits() int { return s.readmits }

// Degradation reports the query's degraded state: how many shards it lost
// mid-stream and the matching population lost with them. Both are zero for
// a healthy run. Consumers (the engine's evaluator, distr estimators)
// subtract the lost population from the estimator's effective N, keeping
// the estimate unbiased over the surviving population — see DESIGN.md
// §4.3 for the lost-mass caveat.
func (s *Sampler) Degradation() (shardsLost, lostPopulation int) {
	return s.lostShards, s.lostPop
}

// Degraded reports whether the query lost at least one shard mid-stream.
func (s *Sampler) Degraded() bool { return s.lostShards > 0 }

// EstimateAvg runs a distributed online AVG: each sample is drawn through
// the cluster sampler and folded into a single estimator, exactly as a
// coordinator would. It stops after maxSamples samples or exhaustion and
// returns the estimate.
func (c *Cluster) EstimateAvg(q geo.Rect, attr string, maxSamples int, confidence float64) (estimator.Estimate, error) {
	col, err := c.ds.NumericColumn(attr)
	if err != nil {
		return estimator.Estimate{}, err
	}
	population := c.Count(q)
	est, err := estimator.New(estimator.Avg, confidence, population, true)
	if err != nil {
		return estimator.Estimate{}, err
	}
	s := c.Sampler(q)
	// Pull through the batched coordinator protocol: one demand-sized
	// request per shard per round instead of per-refill round trips. The
	// chunk bounds the coordinator's working memory, not the batching win.
	const chunk = 1024
	buf := make([]data.Entry, chunk)
	for drawn := 0; drawn < maxSamples; {
		want := maxSamples - drawn
		if want > chunk {
			want = chunk
		}
		n := s.NextBatch(buf, want)
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
		}
		// Track the stream's effective population every round: shards that
		// died mid-query shrink it so the estimate (and its SUM/COUNT
		// scaling and finite-population correction) covers the surviving
		// shards instead of silently pretending the lost mass was sampled;
		// a crashed shard that recovered and was re-admitted restores it,
		// re-growing the effective N back toward the full population.
		_, lostPop := s.Degradation()
		est.SetPopulation(population - lostPop)
		drawn += n
		if n < want {
			break
		}
	}
	return est.Snapshot(), nil
}

// ParallelPartialAvg demonstrates the scatter/gather alternative: every
// shard draws its own local sample of size proportional to its matching
// count, computes a partial Welford accumulator in parallel, and the
// coordinator merges them. The merged mean is an unbiased estimate of the
// population mean because shard sample sizes are proportional to shard
// populations (self-weighting allocation).
func (c *Cluster) ParallelPartialAvg(q geo.Rect, attr string, totalSamples int) (estimator.Welford, error) {
	col, err := c.ds.NumericColumn(attr)
	if err != nil {
		return estimator.Welford{}, err
	}
	start := time.Now()
	defer observeMS(c.met.fanoutMS, start)
	c.structMu.RLock()
	defer c.structMu.RUnlock()
	counts := make([]int, len(c.shards))
	total := 0
	for i, sh := range c.shards {
		counts[i] = sh.index.Count(q)
		total += counts[i]
	}
	c.charge(2*uint64(len(c.shards)), 0)
	if total == 0 {
		return estimator.Welford{}, nil
	}

	partials := make([]estimator.Welford, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		if counts[i] == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			k := totalSamples * counts[i] / total
			if k < 1 {
				k = 1
			}
			sp := c.shards[i].index.Sampler(q, sampling.WithoutReplacement, stats.NewRNG(seed))
			local := make([]data.Entry, k)
			got := sp.NextBatch(local, k)
			for _, e := range local[:got] {
				partials[i].Add(col[e.ID])
			}
		}(i, c.nextSeed())
	}
	wg.Wait()
	c.charge(2*uint64(len(c.shards)), uint64(0))

	var merged estimator.Welford
	for i := range partials {
		merged.Merge(partials[i])
	}
	return merged, nil
}
