// Package distr implements STORM's distributed deployment: the paper runs
// on "a cluster of commodity machines" with a distributed Hilbert R-tree.
// Here a Cluster is a coordinator that answers spatial online sampling
// queries across a set of shard servers, each holding a contiguous Hilbert
// range of the data with a local RS-tree.
//
// Correctness rests on the same disjointness argument as the RS-tree's
// canonical parts: shards partition P, so drawing the next sample from
// shard s with probability proportional to s's remaining matching count
// yields a uniform without-replacement stream over P ∩ Q.
//
// The coordinator reaches shards only through the ShardClient interface
// (client.go). In-process clusters (Build) use the loopback client —
// direct dispatch, byte-identical in behavior and seeds to a coordinator
// holding the shards itself — and charge simulated network traffic (one
// message per request and response) so benchmarks can report message
// counts and per-shard balance. Remote clusters (BuildRemote) speak the
// wire protocol over TCP to real shard processes and report measured
// traffic instead.
//
// # Concurrency
//
// The coordinator fans shard work out in parallel: Count and a Sampler's
// initialization round contact every shard concurrently, as a real
// coordinator would. Any number of queries (Count, Samplers, EstimateAvg,
// ParallelPartialAvg) may run concurrently; Insert and Delete take each
// shard's write lock and so serialize against in-flight rounds on that
// shard only. A long-lived Sampler that straddles an update may mix pre-
// and post-update state across batches (each batch is internally
// consistent); quiesce updates around a sampler when an exactly-uniform
// stream over a fixed population is required.
package distr

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/estimator"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/obs"
	"storm/internal/pred"
	"storm/internal/rstree"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
	"storm/internal/wire"
)

// Config controls cluster shape.
type Config struct {
	// Shards is the number of shard servers (>= 1).
	Shards int
	// Replicas is how many copies of each shard the cluster keeps (0
	// means 1, the unreplicated layout). Remote placement maps each shard
	// to Replicas distinct hosts — the consistent-hash ring's successor
	// rule, so a pool smaller than Replicas yields fewer copies — and
	// Build clones each in-process shard Replicas times. Updates mirror
	// to every copy, the coordinator's fetch path fails over to a
	// surviving copy when the serving one dies (Sampler.failover), and a
	// query only degrades when every copy of a shard is lost. See
	// DESIGN.md §4.8.
	Replicas int
	// Fanout is each shard's RS-tree fanout; 0 means the default.
	Fanout int
	// BatchSize is how many samples a shard ships per network message;
	// 0 means 32.
	BatchSize int
	// Seed drives partitioning and sampling randomness.
	Seed int64
	// BufferPoolPages gives each shard a simulated buffer pool of this
	// many pages; 0 disables I/O accounting.
	BufferPoolPages int
	// Obs receives the cluster's metrics (fan-out latency, per-shard
	// fetch latency, live network counters). Nil disables collection at
	// zero cost (see package obs).
	Obs *obs.Registry
	// Faults installs a deterministic fault-injection plan (see
	// FaultPlan); nil leaves the cluster healthy and the fetch path
	// byte-identical to a plan-free build. Faults are injected at the
	// ShardClient boundary (a transport decorator), so the same plan
	// drives loopback and TCP clusters identically.
	Faults *FaultPlan
	// FetchTimeout is the coordinator's per-fetch deadline: an injected
	// latency spike at or beyond it surfaces as a timeout, and the TCP
	// transport enforces it as the request deadline. 0 means 50ms.
	FetchTimeout time.Duration
	// MaxRetries bounds how many times the coordinator retries a fetch
	// that failed transiently or timed out before abandoning the shard
	// for the query; 0 means 3. Negative disables retries.
	MaxRetries int
	// RetryBackoff is the initial retry backoff, doubled per retry; 0
	// means 200µs. Negative disables backoff sleeps (fast tests).
	RetryBackoff time.Duration
}

// normalize validates the config and fills in defaults, in place.
func (cfg *Config) normalize() error {
	if cfg.Shards < 1 {
		return fmt.Errorf("distr: need at least one shard")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 1 {
		return fmt.Errorf("distr: replica count %d invalid", cfg.Replicas)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.BatchSize < 1 {
		return fmt.Errorf("distr: batch size %d invalid", cfg.BatchSize)
	}
	if cfg.FetchTimeout == 0 {
		cfg.FetchTimeout = 50 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 200 * time.Microsecond
	} else if cfg.RetryBackoff < 0 {
		cfg.RetryBackoff = 0
	}
	return nil
}

// NetStats counts network traffic: simulated charges on an in-process
// cluster, measured frames and payload bytes on a TCP one (byte counters
// stay zero on the loopback, which moves no bytes).
type NetStats struct {
	Messages     uint64
	SamplesMoved uint64
	BytesSent    uint64
	BytesRecv    uint64
}

// Shard is one in-process shard server.
type Shard struct {
	ID     int
	index  *rstree.Index
	device *iosim.Device
	count  int
	// summaries digests each numeric attribute of the shard's records
	// (count/sum/min/max) for coordinator-side lost-mass bounds; guarded
	// by the owning backend's lock like the index (see summary.go).
	summaries map[string]*AttrSummary
	// attrs maintains per-node attribute digests over the shard's local
	// RS-tree so predicate queries prune shard subtrees without any
	// coordinator round trips; guarded like the index.
	attrs *rtree.Summaries
}

// Len returns the number of records on the shard.
func (s *Shard) Len() int { return s.count }

// Index returns the shard's local RS-tree (diagnostics and benchmarks).
func (s *Shard) Index() *rstree.Index { return s.index }

// Device returns the shard's simulated block device (nil when disabled).
func (s *Shard) Device() *iosim.Device { return s.device }

// Cluster is a distributed STORM deployment: a coordinator plus one
// ShardClient per shard. Build wires the clients to in-process backends
// over the loopback; BuildRemote (remote.go) wires them to shard
// processes over TCP. All coordinator logic is transport-blind.
type Cluster struct {
	// mu guards the simulated network counters, the remote baseline, and
	// the seed sequence.
	mu  sync.Mutex
	cfg Config
	ds  *data.Dataset
	// clients is the coordinator's primary (replica 0) view of the
	// shards, in shard order, with the fault decorator applied when a
	// plan is installed; query, update and metadata traffic starts there
	// and fails over through repl.
	clients []ShardClient
	// repl holds every copy of every shard, indexed [shard][replica],
	// with repl[i][0] == clients[i]. Replicas are exact clones (same
	// partition, same build seed), so any copy can serve any request;
	// the sampler's fetch path moves a stream between copies on failure.
	// Remote replica sets may be shorter than cfg.Replicas when the host
	// pool is smaller — size per-shard loops by len(repl[i]).
	repl [][]ShardClient
	// raw is the primary clients without fault decoration. The
	// scatter/gather partial path uses it: shard-local work there models
	// computation on the shard itself, not coordinator round trips, so
	// injected fetch faults must not perturb it (or its RNG draws).
	raw []ShardClient
	// mirrorMisses[i][r] counts update mirrors (inserts/deletes) that
	// replica r of shard i failed to apply; a failover onto a replica
	// with misses is counted as a stale read.
	mirrorMisses [][]atomic.Uint64
	// shards and backends hold the in-process shard servers; nil on a
	// remote cluster, whose shards live in other processes.
	shards   []*Shard
	backends []*shardBackend
	// remote marks a TCP cluster: simulated charges are off (Net reports
	// measured transport traffic) and samplers keep per-shard emitted
	// IDs so a restarted shard's stream can be reopened with an exclude
	// list.
	remote     bool
	transports []*wire.TCPClient
	netBase    NetStats
	net        NetStats
	// remoteSamples counts samples fetched over real transports
	// (SamplesMoved has no wire-level counterpart to measure).
	remoteSamples atomic.Uint64
	// streamSeq allocates cluster-unique sample stream IDs.
	streamSeq atomic.Uint64
	rngSeq    int64
	met       clusterMetrics
	// faults holds the per-replica fault injectors, indexed
	// [shard][replica] (nil without a plan); ftot is the always-on fault
	// accounting (see fault.go) and rtot the replication accounting.
	faults [][]*faultState
	ftot   faultTotals
	rtot   replTotals
}

// ReplicaStats is a snapshot of cluster-wide replication activity. All
// fields are also published under storm.distr.replicas.* when the cluster
// has an observability registry.
type ReplicaStats struct {
	// Failovers counts fetch-path failovers: a sampler abandoning a dead
	// replica's stream and reopening it on a surviving copy (the query
	// keeps its full population instead of degrading).
	Failovers uint64
	// StaleReads counts failovers that landed on a replica with missed
	// update mirrors, whose stream may not reflect the newest writes.
	StaleReads uint64
	// Rebuilds counts remote shard rebuilds pushed to restarted hosts
	// (an unknown-shard answer re-ships the Build request).
	Rebuilds uint64
}

// replTotals is the cluster's always-on replication accounting (atomics,
// exact with or without an obs registry, which re-exports them as
// scrape-time Funcs).
type replTotals struct {
	failovers  atomic.Uint64
	staleReads atomic.Uint64
	rebuilds   atomic.Uint64
}

// ReplicaStats returns a snapshot of replication activity; all-zero on an
// unreplicated cluster.
func (c *Cluster) ReplicaStats() ReplicaStats {
	return ReplicaStats{
		Failovers:  c.rtot.failovers.Load(),
		StaleReads: c.rtot.staleReads.Load(),
		Rebuilds:   c.rtot.rebuilds.Load(),
	}
}

// Replicas returns the configured replication factor (remote shards may
// hold fewer copies when the host pool is smaller; see ShardStatus).
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// clusterMetrics holds the cluster's resolved metric handles; all-nil
// (every write a no-op) when Config.Obs is nil.
type clusterMetrics struct {
	// fanoutMS times each coordinator fan-out round: a Count round, a
	// sampler's initialization round, or a scatter/gather partial round.
	fanoutMS *obs.TuningHistogram
	// fetchMS times individual shard sample fetches (one request/response
	// round trip).
	fetchMS *obs.TuningHistogram
	// fetches counts shard sample-fetch messages issued by samplers.
	fetches *obs.Counter
}

// registryClusters tracks, per obs registry, every cluster publishing to
// it. Registry.Publish overwrites duplicate names, so per-cluster Funcs
// would expose only the most recently built cluster (a server registers
// one cluster per sharded dataset); instead the storm.distr.* Funcs are
// published once per registry and sum across its clusters at scrape time.
// Entries are never removed — clusters live for the process — so a
// replaced cluster keeps contributing its final totals.
var registryClusters = struct {
	sync.Mutex
	m map[*obs.Registry][]*Cluster
}{m: map[*obs.Registry][]*Cluster{}}

// initMetrics resolves the cluster's metrics against cfg.Obs and
// re-exports the network and fault totals as live scrape-time Funcs.
func (c *Cluster) initMetrics() {
	reg := c.cfg.Obs
	c.met = clusterMetrics{
		fanoutMS: reg.TuningHistogram("storm.distr.fanout.latency_ms", 0.1, 16),
		fetchMS:  reg.TuningHistogram("storm.distr.fetch.latency_ms", 0.1, 16),
		fetches:  reg.Counter("storm.distr.fetches"),
	}
	if reg == nil {
		return
	}
	registryClusters.Lock()
	defer registryClusters.Unlock()
	prev := registryClusters.m[reg]
	registryClusters.m[reg] = append(prev, c)
	if prev != nil {
		return // this registry's scrape Funcs are already live
	}
	clusters := func() []*Cluster {
		registryClusters.Lock()
		defer registryClusters.Unlock()
		return registryClusters.m[reg]
	}
	reg.PublishFunc("storm.distr.shards", func() any {
		n := 0
		for _, c := range clusters() {
			n += len(c.clients)
		}
		return n
	})
	netSum := func(read func(NetStats) uint64) func() any {
		return func() any {
			var n uint64
			for _, c := range clusters() {
				n += read(c.Net())
			}
			return n
		}
	}
	reg.PublishFunc("storm.distr.net.messages", netSum(func(n NetStats) uint64 { return n.Messages }))
	reg.PublishFunc("storm.distr.net.samples_moved", netSum(func(n NetStats) uint64 { return n.SamplesMoved }))
	reg.PublishFunc("storm.distr.net.bytes_sent", netSum(func(n NetStats) uint64 { return n.BytesSent }))
	reg.PublishFunc("storm.distr.net.bytes_recv", netSum(func(n NetStats) uint64 { return n.BytesRecv }))
	// Fault totals are owned by each cluster's atomics (exact with or
	// without a registry); the registry reads them at scrape time.
	sum := func(read func(*faultTotals) uint64) func() any {
		return func() any {
			var n uint64
			for _, c := range clusters() {
				n += read(&c.ftot)
			}
			return n
		}
	}
	reg.PublishFunc("storm.distr.faults.injected", sum(func(t *faultTotals) uint64 { return t.injected.Load() }))
	reg.PublishFunc("storm.distr.faults.latency", sum(func(t *faultTotals) uint64 { return t.latency.Load() }))
	reg.PublishFunc("storm.distr.faults.transient", sum(func(t *faultTotals) uint64 { return t.transient.Load() }))
	reg.PublishFunc("storm.distr.faults.timeouts", sum(func(t *faultTotals) uint64 { return t.timeouts.Load() }))
	reg.PublishFunc("storm.distr.faults.crashes", sum(func(t *faultTotals) uint64 { return t.crashes.Load() }))
	reg.PublishFunc("storm.distr.faults.retries", sum(func(t *faultTotals) uint64 { return t.retries.Load() }))
	reg.PublishFunc("storm.distr.faults.recoveries", sum(func(t *faultTotals) uint64 { return t.recoveries.Load() }))
	reg.PublishFunc("storm.distr.faults.exhausted", sum(func(t *faultTotals) uint64 { return t.exhausted.Load() }))
	reg.PublishFunc("storm.distr.faults.readmits", sum(func(t *faultTotals) uint64 { return t.readmits.Load() }))
	reg.PublishFunc("storm.distr.faults.shards_down", func() any {
		var n int64
		for _, c := range clusters() {
			n += c.ftot.shardsDown.Load()
		}
		return n
	})
	rsum := func(read func(*replTotals) uint64) func() any {
		return func() any {
			var n uint64
			for _, c := range clusters() {
				n += read(&c.rtot)
			}
			return n
		}
	}
	reg.PublishFunc("storm.distr.replicas.failovers", rsum(func(t *replTotals) uint64 { return t.failovers.Load() }))
	reg.PublishFunc("storm.distr.replicas.stale_reads", rsum(func(t *replTotals) uint64 { return t.staleReads.Load() }))
	reg.PublishFunc("storm.distr.replicas.rebuilds", rsum(func(t *replTotals) uint64 { return t.rebuilds.Load() }))
}

// observeMS records elapsed wall time since start into h (no-op on a nil
// histogram).
func observeMS(h *obs.TuningHistogram, start time.Time) {
	if h == nil {
		return
	}
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Build partitions the dataset into contiguous Hilbert ranges, builds a
// local RS-tree per shard, and wires the coordinator to the shards over
// the in-process loopback. Hilbert partitioning keeps shards spatially
// coherent, so selective queries touch few shards — the distributed
// Hilbert R-tree layout the paper describes.
func Build(ds *data.Dataset, cfg Config) (*Cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	parts, bounds, err := partition(ds, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, ds: ds}
	c.faults = newFaultStates(cfg.Faults, cfg.Shards, cfg.Replicas)
	for s, part := range parts {
		// Each replica is an exact clone: same partition, same build seed,
		// so the copies hold identical trees and any of them can serve any
		// stream. Shards() and the scatter/gather raw path see only the
		// primaries; updates mirror to every copy (Insert/Delete).
		reps := make([]ShardClient, 0, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			sh, err := buildShard(ds, part, s, bounds, cfg)
			if err != nil {
				return nil, err
			}
			b := newShardBackend(sh, ds)
			var cl ShardClient = &loopbackClient{b: b}
			if r == 0 {
				c.shards = append(c.shards, sh)
				c.backends = append(c.backends, b)
				c.raw = append(c.raw, cl)
			}
			if c.faults != nil {
				cl = &faultClient{ShardClient: cl, c: c, f: c.faults[s][r]}
			}
			reps = append(reps, cl)
		}
		c.repl = append(c.repl, reps)
		c.clients = append(c.clients, reps[0])
	}
	c.mirrorMisses = newMirrorMisses(c.repl)
	c.initMetrics()
	return c, nil
}

// newMirrorMisses sizes the per-replica missed-mirror counters to the
// cluster's actual replica sets (remote sets may be shorter than the
// configured factor).
func newMirrorMisses(repl [][]ShardClient) [][]atomic.Uint64 {
	mm := make([][]atomic.Uint64, len(repl))
	for i := range repl {
		mm[i] = make([]atomic.Uint64, len(repl[i]))
	}
	return mm
}

// Shards returns the in-process shard servers (nil on a remote cluster).
func (c *Cluster) Shards() []*Shard { return c.shards }

// NumShards returns how many shards the cluster has, local or remote.
func (c *Cluster) NumShards() int { return len(c.clients) }

// Remote reports whether the cluster's shards are remote processes.
func (c *Cluster) Remote() bool { return c.remote }

// transportTotals sums lifetime traffic across the TCP transports.
// Caller holds c.mu.
func (c *Cluster) transportTotals() NetStats {
	var n NetStats
	for _, t := range c.transports {
		ct := t.Counts()
		n.Messages += ct.MsgsSent + ct.MsgsRecv
		n.BytesSent += ct.BytesSent
		n.BytesRecv += ct.BytesRecv
	}
	n.SamplesMoved = c.remoteSamples.Load()
	return n
}

// Net returns a snapshot of network statistics: the simulated charges on
// an in-process cluster, the transports' measured frame and byte counts
// (since the last ResetNet) on a remote one.
func (c *Cluster) Net() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.remote {
		return c.net
	}
	t := c.transportTotals()
	return NetStats{
		Messages:     t.Messages - c.netBase.Messages,
		SamplesMoved: t.SamplesMoved - c.netBase.SamplesMoved,
		BytesSent:    t.BytesSent - c.netBase.BytesSent,
		BytesRecv:    t.BytesRecv - c.netBase.BytesRecv,
	}
}

// ResetNet zeroes the network counters.
func (c *Cluster) ResetNet() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remote {
		c.netBase = c.transportTotals()
		return
	}
	c.net = NetStats{}
}

// charge adds simulated network traffic. On a remote cluster it is a
// no-op: the transports measure the real thing.
func (c *Cluster) charge(messages, samples uint64) {
	if c.remote {
		return
	}
	c.mu.Lock()
	c.net.Messages += messages
	c.net.SamplesMoved += samples
	c.mu.Unlock()
}

// chargeFetch accounts one successful sample fetch of got samples.
func (c *Cluster) chargeFetch(got uint64) {
	if c.remote {
		c.remoteSamples.Add(got)
		return
	}
	c.charge(2, got)
}

func (c *Cluster) nextSeed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rngSeq++
	return c.cfg.Seed*101 + c.rngSeq
}

// Close releases the cluster's transports (a no-op for in-process
// clusters, whose loopback clients hold no resources). Every replica's
// client is closed, not just the primaries.
func (c *Cluster) Close() error {
	var first error
	for _, reps := range c.repl {
		for _, cl := range reps {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, t := range c.transports {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Insert routes a new record to the shard whose tree bounds grow least —
// with contiguous Hilbert partitions, the shard owning its neighborhood —
// and mirrors it into every replica of that shard's RS-tree (one
// request/response message per copy). A replica that fails to apply the
// mirror is charged a missed mirror, so a later failover onto it counts
// as a stale read. The record must already exist in the shared dataset
// (its ID addresses the attribute columns).
func (c *Cluster) Insert(e data.Entry) {
	best, bestGrow := -1, math.Inf(1)
	for i := range c.clients {
		if c.shardDown(i) {
			continue
		}
		b, err := c.shardBounds(i)
		if err != nil {
			continue
		}
		grow := b.Extend(geo.RectFromPoint(e.Pos)).Volume() - b.Volume()
		if grow < bestGrow {
			best, bestGrow = i, grow
		}
	}
	if best < 0 {
		return // every shard down: nowhere to route the record
	}
	for r, cl := range c.repl[best] {
		if err := cl.Insert(e); err != nil {
			c.mirrorMisses[best][r].Add(1)
			continue
		}
		c.charge(2, 0)
	}
}

// shardBounds returns the shard's tree bounds from the first replica that
// answers (replicas hold identical trees, so any copy's answer is the
// shard's).
func (c *Cluster) shardBounds(i int) (geo.Rect, error) {
	var firstErr error
	for _, cl := range c.repl[i] {
		b, err := cl.Bounds()
		if err == nil {
			return b, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return geo.Rect{}, firstErr
}

// Delete removes a record from whichever shard holds it — mirrored to
// every replica of that shard — and returns false if no shard does.
// Worst case it asks every copy of every shard (2 messages each). A
// replica that errored while another copy of the same shard held the
// record is charged a missed mirror.
func (c *Cluster) Delete(e data.Entry) bool {
	for i := range c.clients {
		if c.shardDown(i) {
			continue
		}
		found := false
		var missed []int
		for r, cl := range c.repl[i] {
			c.charge(2, 0)
			ok, err := cl.Delete(e)
			if err != nil {
				missed = append(missed, r)
				continue
			}
			if ok {
				found = true
			}
		}
		if found {
			for _, r := range missed {
				c.mirrorMisses[i][r].Add(1)
			}
			return true
		}
	}
	return false
}

// Count returns |P ∩ q| by fanning the count to every shard in parallel
// (one request and one response message each), as the coordinator of a
// real cluster would. Crashed shards do not answer; their records are
// simply absent from the total, so a degraded cluster reports the
// surviving population — the honest effective N for estimators built on
// top of it.
func (c *Cluster) Count(q geo.Rect) int {
	return c.CountWhere(q, nil)
}

// CountWhere is Count restricted to records satisfying the predicate
// terms: the predicate ships to every shard (a few dozen bytes each), and
// each shard counts with its local summaries pruning the descent — the
// records the predicate rejects never cross the wire.
func (c *Cluster) CountWhere(q geo.Rect, where []pred.Term) int {
	return c.CountWindow(q, where, wire.Window{})
}

// CountWindow is CountWhere further restricted to records in the resolved
// event-time window (zero = none). The window ships as a wire term and each
// shard narrows its own time axis before counting, so windowed counts see
// the identical population on the loopback and over TCP.
func (c *Cluster) CountWindow(q geo.Rect, where []pred.Term, win wire.Window) int {
	start := time.Now()
	defer observeMS(c.met.fanoutMS, start)
	counts := make([]int, len(c.clients))
	var wg sync.WaitGroup
	for i := range c.clients {
		if c.shardDown(i) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Replicas hold identical trees: the first copy that answers
			// speaks for the shard (the primary answers first in the
			// healthy case, keeping the unreplicated path unchanged).
			for _, cl := range c.repl[i] {
				if n, err := cl.Count(q, where, win); err == nil {
					counts[i] = n
					return
				}
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	c.charge(2*uint64(len(c.clients)), 0)
	return total
}

// Sampler returns a without-replacement online sampler over the cluster.
type Sampler struct {
	cluster *Cluster
	query   geo.Rect
	// where is the query's predicate in normal form (nil = none); it rides
	// on every Open — including fault-recovery reopens — so shards prune
	// and filter locally.
	where []pred.Term
	// win is the query's resolved event-time window (zero = none); like the
	// predicate it rides on every Open, so shards narrow their own time
	// axis and the stream draws from the windowed population everywhere.
	win wire.Window
	rng *stats.RNG
	// per-shard state: the sample stream ID each shard serves this query
	// under, whether that stream was opened, and the remaining matching
	// count driving the draw distribution.
	streams   []uint64
	open      []bool
	remaining []int
	buffers   [][]data.Entry
	// heads[i] is the read cursor into buffers[i]; entries before it have
	// been emitted.
	heads []int
	// emitted, on remote or replicated clusters, records each shard's
	// emitted record IDs so a restarted shard's stream can be reopened —
	// or failed over to another replica — with an exclude list (the fresh
	// stream must not redeliver them). Unreplicated loopback streams
	// survive in the backend and never need reopening, so that path skips
	// the bookkeeping.
	emitted [][]data.ID
	// repl[i] is the replica currently serving shard i's stream; the
	// fetch path's failover moves it to a surviving copy (see failover).
	repl   []int
	total  int
	init   bool
	closed bool
	// failovers / staleReads count this query's fetch-path failovers and
	// how many of them landed on a replica with missed update mirrors.
	failovers  int
	staleReads int
	// degradation state: shards this query lost mid-stream (crashes or
	// retry exhaustion) and the matching population that went with them.
	// lost stashes each lost shard's unemitted count so a crashed shard
	// that comes back can be re-admitted exactly where it left off (see
	// maybeReadmit); readmits counts the re-admissions this query made.
	lostShards int
	lostPop    int
	lost       map[int]lostShard
	readmits   int
	// batch-round scratch (see NextBatch), reused across rounds.
	simRem  []int
	choices []int
	demand  []int
	// deadline, when set, bounds the query's wall clock at the fetch
	// boundary (see SetDeadline); deadlineHit latches once it passes so
	// draw loops stop cleanly instead of writing reachable shards off.
	deadline    time.Time
	deadlineHit bool
}

// Sampler returns an online sampler for q across all shards.
func (c *Cluster) Sampler(q geo.Rect) *Sampler {
	return c.SamplerWhere(q, nil)
}

// SamplerWhere returns an online sampler for q restricted to records
// satisfying the predicate terms. The predicate ships with every shard
// stream open, so shards prune with their local summaries and rejected
// records never cross the wire; the merged stream is exactly uniform over
// the cluster's qualifying records. Nil terms are exactly Sampler.
func (c *Cluster) SamplerWhere(q geo.Rect, where []pred.Term) *Sampler {
	return c.SamplerWindow(q, where, wire.Window{})
}

// SamplerWindow is SamplerWhere further restricted to the resolved
// event-time window (zero = none): the window rides on every stream open,
// each shard narrows its own time axis, and the merged stream is exactly
// uniform over the cluster's windowed qualifying records — byte-identical
// across the loopback and TCP transports.
func (c *Cluster) SamplerWindow(q geo.Rect, where []pred.Term, win wire.Window) *Sampler {
	return &Sampler{cluster: c, query: q, where: where, win: win, rng: stats.NewRNG(c.nextSeed())}
}

var _ sampling.Sampler = (*Sampler)(nil)

// Name implements sampling.Sampler.
func (s *Sampler) Name() string { return "distributed-rs-tree" }

// SetDeadline installs a wall-clock deadline enforced at the shard fetch
// boundary: per-fetch RPC timeouts are capped at the time remaining
// (clients implementing deadlineFetcher), retry/backoff cycles stop at
// the deadline, and draw calls return short once it has passed — without
// writing any shard off, since a deadline expiry says nothing about shard
// health. The engine threads Options.TimeBudget (and with it contract
// deadlines) through here so one slow or faulted shard cannot run a
// bounded query past its budget. The zero time clears the deadline.
func (s *Sampler) SetDeadline(t time.Time) {
	s.deadline = t
	s.deadlineHit = false
}

// expired reports (and latches) whether the sampler's deadline passed.
func (s *Sampler) expired() bool {
	if s.deadlineHit {
		return true
	}
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		s.deadlineHit = true
	}
	return s.deadlineHit
}

// initialize runs the coordinator's count round, opening a sample stream
// on every shard in parallel. Seeds are drawn serially up front so the
// stream is deterministic in the cluster's seed sequence regardless of
// shard timing.
func (s *Sampler) initialize() {
	start := time.Now()
	s.init = true
	cl := s.cluster
	defer observeMS(cl.met.fanoutMS, start)
	n := len(cl.clients)
	s.streams = make([]uint64, n)
	s.open = make([]bool, n)
	s.remaining = make([]int, n)
	s.buffers = make([][]data.Entry, n)
	s.heads = make([]int, n)
	s.repl = make([]int, n)
	if cl.remote || cl.cfg.Replicas > 1 {
		s.emitted = make([][]data.ID, n)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = cl.nextSeed()
	}
	for i := range s.streams {
		s.streams[i] = cl.streamSeq.Add(1)
	}
	var wg sync.WaitGroup
	for i := range cl.clients {
		if cl.shardDown(i) {
			// Already-crashed shards do not answer the count round: the
			// query runs over the surviving population from the start
			// (and is not marked degraded — nothing was lost mid-query).
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Open on the first replica that answers (the primary, when
			// healthy — identical to the unreplicated path). A replica that
			// refuses the open is skipped like a pre-crashed shard; only a
			// shard none of whose copies answered is absent from the query.
			for r, rc := range cl.repl[i] {
				got, err := rc.Open(s.streams[i], s.query, seeds[i], nil, s.where, s.win)
				if err != nil {
					continue
				}
				s.repl[i] = r
				s.remaining[i] = got
				s.open[i] = got > 0
				return
			}
		}(i)
	}
	wg.Wait()
	for _, rem := range s.remaining {
		s.total += rem
	}
	cl.charge(2*uint64(n), 0) // count round
}

// buffered returns how many fetched-but-unemitted samples shard has.
func (s *Sampler) buffered(shard int) int {
	return len(s.buffers[shard]) - s.heads[shard]
}

// pop emits the next buffered sample of shard, updating the counts.
func (s *Sampler) pop(shard int) data.Entry {
	e := s.buffers[shard][s.heads[shard]]
	s.heads[shard]++
	s.remaining[shard]--
	s.total--
	if s.emitted != nil {
		s.emitted[shard] = append(s.emitted[shard], e.ID)
	}
	return e
}

// Next implements sampling.Sampler: it draws the owning shard with
// probability proportional to its remaining matching count, then consumes
// the next sample from that shard's stream (fetched in batches to amortize
// network messages).
func (s *Sampler) Next() (data.Entry, bool) {
	if !s.init {
		s.initialize()
	}
	s.maybeReadmit()
	if s.total <= 0 {
		return data.Entry{}, false
	}
	r := s.rng.Intn(s.total)
	shard := 0
	for i, rem := range s.remaining {
		if r < rem {
			shard = i
			break
		}
		r -= rem
	}
	if s.buffered(shard) == 0 {
		s.fetchInto(shard, s.cluster.cfg.BatchSize)
		if s.buffered(shard) == 0 {
			if s.deadlineHit {
				// The fetch was abandoned at the deadline, not refused by
				// the shard: stop the stream without writing the (likely
				// healthy, still-reachable) shard off.
				return data.Entry{}, false
			}
			// Shard believed to have samples but returned none:
			// defensive consistency repair.
			s.total -= s.remaining[shard]
			s.remaining[shard] = 0
			return s.Next()
		}
	}
	return s.pop(shard), true
}

// NextBatch implements sampling.BatchSampler with the coordinator's
// batched protocol: the round's shard choices are simulated up front with
// the query RNG (consuming it exactly as repeated Next would, so the
// emitted stream is byte-identical), the resulting per-shard allocations
// are fetched with ONE request per shard — sized by the round's demand
// rather than the fixed BatchSize — and the round is assembled from the
// buffered shard streams in choice order. k samples therefore cost at most
// one message round trip per participating shard instead of the serial
// path's per-refill trips.
func (s *Sampler) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	if !s.init {
		s.initialize()
	}
	got := 0
	for got < k {
		if s.deadlineHit {
			break
		}
		// Poll for recovered shards before giving up on an exhausted
		// stream: a crashed shard that came back re-enters the draw
		// distribution here, and the poll itself advances a still-down
		// shard's recovery clock (no-op for healthy queries).
		s.maybeReadmit()
		if s.total <= 0 {
			break
		}
		n := s.batchRound(dst[got:], k-got)
		if n == 0 && s.total <= 0 {
			break
		}
		if n == 0 && s.deadlineHit {
			break
		}
		got += n
	}
	return got
}

// batchRound serves up to k samples: simulate choices, fetch deficits,
// assemble. Returns how many samples were written to dst.
func (s *Sampler) batchRound(dst []data.Entry, k int) int {
	m := k
	if m > s.total {
		m = s.total
	}
	shards := len(s.remaining)
	if cap(s.simRem) < shards {
		s.simRem = make([]int, shards)
		s.demand = make([]int, shards)
	}
	simRem := s.simRem[:shards]
	demand := s.demand[:shards]
	copy(simRem, s.remaining)
	for i := range demand {
		demand[i] = 0
	}
	if cap(s.choices) < m {
		s.choices = make([]int, m)
	}
	choices := s.choices[:m]

	// Phase 1: replay the serial draw sequence against scratch counts.
	total := s.total
	for j := 0; j < m; j++ {
		r := s.rng.Intn(total)
		shard := 0
		for i, rem := range simRem {
			if r < rem {
				shard = i
				break
			}
			r -= rem
		}
		choices[j] = shard
		simRem[shard]--
		total--
		demand[shard]++
	}

	// Phase 2: one demand-sized fetch per shard that needs more samples.
	for i := range demand {
		if deficit := demand[i] - s.buffered(i); deficit > 0 {
			s.fetchInto(i, deficit)
		}
	}

	// Phase 3: assemble in choice order. A shard that under-delivered
	// (bookkeeping said it had samples but it returned none — the serial
	// path's defensive repair case) is zeroed out and its remaining
	// choices skipped; only in that never-expected state can the stream
	// diverge from the serial one.
	got := 0
	for _, shard := range choices {
		if s.remaining[shard] <= 0 {
			continue
		}
		if s.buffered(shard) == 0 {
			if s.deadlineHit {
				// The shard's fetch was cut off by the deadline, not
				// refused: abandon the round without zeroing its count.
				break
			}
			s.total -= s.remaining[shard]
			s.remaining[shard] = 0
			continue
		}
		dst[got] = s.pop(shard)
		got++
	}
	return got
}

// fetchInto pulls up to n more samples from the shard's stream into its
// buffer (one request and one response message).
func (s *Sampler) fetchInto(shard, n int) {
	if !s.open[shard] {
		return
	}
	if n > s.remaining[shard] {
		n = s.remaining[shard]
	}
	if n <= 0 {
		return
	}
	if s.buffered(shard) == 0 {
		s.buffers[shard] = s.buffers[shard][:0]
		s.heads[shard] = 0
	}
	fetchStart := time.Now()
	defer observeMS(s.cluster.met.fetchMS, fetchStart)
	s.cluster.met.fetches.Inc()
	buf := s.buffers[shard]
	start := len(buf)
	if cap(buf) < start+n {
		grown := make([]data.Entry, start, start+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+n]
	got, lost, crashed := s.clientFetch(shard, buf[start:], n)
	s.buffers[shard] = buf[:start+got]
	if lost {
		s.loseShard(shard, crashed)
		return
	}
	s.cluster.chargeFetch(uint64(got))
}

// clientFetch performs one fetch against the replica serving the shard's
// stream, retrying transient failures and timeouts with exponential
// backoff up to cfg.MaxRetries. It returns lost = true when the shard is
// unavailable to this query; crashLost distinguishes a down shard
// (cluster-wide — a recoverable one may later be re-admitted via
// maybeReadmit) from retry exhaustion (the server stayed up; the loss is
// query-local and final). A recoverable down replica is retried like a
// transient fault — each probe advances an injected crash's recovery
// clock, so a replica that comes back within the retry budget serves the
// fetch and the stream is untouched.
//
// With replication, every point that would write the shard off first
// tries to fail the stream over to a surviving replica (see failover);
// the shard is lost — and the query degrades — only when no copy can
// serve it. The failover budget of one move per surviving replica per
// fetch bounds ping-ponging when a fault plan is hitting every copy at
// once. On a healthy client the first attempt succeeds and the path is
// byte-identical to a direct backend fetch.
func (s *Sampler) clientFetch(shard int, dst []data.Entry, n int) (got int, lost, crashLost bool) {
	cl := s.cluster
	backoff := cl.cfg.RetryBackoff
	reopened := false
	failoversLeft := len(cl.repl[shard]) - 1
	// tryFailover moves the stream to a surviving replica and restarts
	// the attempt/backoff cycle against it; done (with zero remaining)
	// means the reopened stream has nothing left to deliver — the shard
	// is exhausted, not lost.
	tryFailover := func() (moved, done bool) {
		if failoversLeft <= 0 || !s.failover(shard) {
			return false, false
		}
		failoversLeft--
		return true, s.remaining[shard] == 0
	}
	for attempt := 0; ; attempt++ {
		if s.expired() {
			// Deadline passed before this attempt: give the query back to
			// the evaluator with what it has. The shard is NOT lost —
			// nothing here is evidence against it.
			return 0, false, false
		}
		got, err := s.fetchOnce(shard, dst, n)
		if err == nil {
			if attempt > 0 {
				cl.ftot.recoveries.Add(1)
			}
			return got, false, false
		}
		var down *shardDownError
		switch {
		case errors.As(err, &down):
			if !down.Recoverable || attempt >= cl.cfg.MaxRetries {
				// Permanently down, or down past this fetch's retry
				// budget: fail over to a surviving replica, or — with no
				// copy left — write the shard off. A recoverable shard
				// may still rejoin a later coordinator contact.
				if moved, done := tryFailover(); moved {
					if done {
						return 0, false, false
					}
					attempt, reopened = -1, false
					continue
				}
				return 0, true, true
			}
			cl.charge(1, 0) // probe sent, shard down
		case errors.Is(err, ErrUnknownStream):
			// The shard answered but no longer has the stream — the
			// signature of a shard process restart. Reopen it once,
			// excluding everything already emitted; if the reopen fails
			// (or a reopened stream is unknown again) the stream fails
			// over, or without replicas the shard is written off like a
			// crash so re-admission can retry later.
			if !reopened && s.reopen(shard) {
				reopened = true
				continue
			}
			if moved, done := tryFailover(); moved {
				if done {
					return 0, false, false
				}
				attempt, reopened = -1, false
				continue
			}
			return 0, true, true
		default:
			// Timeouts, transient faults, and transport errors that are
			// not a down verdict: retryable.
			cl.charge(1, 0) // request sent, no usable response
		}
		if attempt >= cl.cfg.MaxRetries {
			if moved, done := tryFailover(); moved {
				if done {
					return 0, false, false
				}
				attempt, reopened = -1, false
				continue
			}
			cl.ftot.exhausted.Add(1)
			return 0, true, false
		}
		cl.ftot.retries.Add(1)
		if backoff > 0 {
			if !s.deadline.IsZero() && !time.Now().Add(backoff).Before(s.deadline) {
				// Sleeping through the deadline helps nobody: stop the
				// retry cycle here (again without losing the shard).
				s.deadlineHit = true
				return 0, false, false
			}
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// client returns the ShardClient currently serving shard's stream: the
// replica the query opened on, or the one it last failed over to.
func (s *Sampler) client(shard int) ShardClient {
	return s.cluster.repl[shard][s.repl[shard]]
}

// fetchOnce performs a single fetch attempt, routing through the client's
// deadline-aware path when the sampler has a deadline and the client
// supports one (the TCP transport then caps the request timeout at the
// time remaining, so a stuck shard cannot hold the query past its
// budget).
func (s *Sampler) fetchOnce(shard int, dst []data.Entry, n int) (int, error) {
	cl := s.client(shard)
	if !s.deadline.IsZero() {
		if df, ok := cl.(deadlineFetcher); ok {
			return df.FetchBefore(s.streams[shard], dst, n, s.deadline)
		}
	}
	return cl.Fetch(s.streams[shard], dst, n)
}

// reopen replaces shard's sample stream after a shard process restart:
// a fresh stream is opened under a new ID with this query's emitted IDs
// excluded, so the merged emissions stay a without-replacement stream.
// The fetched-but-unemitted buffer came from the dead stream and the
// fresh one would redeliver it, so it is dropped and the remaining count
// re-based on the reopened stream's matching count.
func (s *Sampler) reopen(shard int) bool {
	cl := s.cluster
	stream := cl.streamSeq.Add(1)
	var exclude []data.ID
	if s.emitted != nil {
		exclude = s.emitted[shard]
	}
	got, err := s.client(shard).Open(stream, s.query, cl.nextSeed(), exclude, s.where, s.win)
	if err != nil {
		return false
	}
	s.buffers[shard] = s.buffers[shard][:0]
	s.heads[shard] = 0
	s.total += got - s.remaining[shard]
	s.remaining[shard] = got
	s.streams[shard] = stream
	s.open[shard] = got > 0
	return got > 0
}

// failover moves shard's stream to a surviving replica after the serving
// copy died: a fresh stream opens on the next live copy with this query's
// emitted IDs excluded, so the merged emissions stay exactly uniform
// without replacement — filtering a uniform WOR stream by a fixed exclude
// set leaves the complement uniform, the same argument reopen and rejoin
// rest on. The dead copy's fetched-but-unemitted buffer came from the
// abandoned stream and is dropped; the shard's unemitted matching count
// re-enters the draw distribution at the reopened stream's count, so
// nothing is written off, the population does not shrink, and the query
// does not degrade. Returns false when no surviving replica could serve
// the stream (the caller then degrades exactly as an unreplicated
// cluster would); a successful move onto an already-exhausted stream
// (got == 0) still returns true — the shard is drained, not lost.
func (s *Sampler) failover(shard int) bool {
	cl := s.cluster
	reps := cl.repl[shard]
	if len(reps) < 2 {
		return false
	}
	cur := s.repl[shard]
	for step := 1; step < len(reps); step++ {
		r := (cur + step) % len(reps)
		if cl.replicaDown(shard, r) {
			continue
		}
		stream := cl.streamSeq.Add(1)
		var exclude []data.ID
		if s.emitted != nil {
			exclude = s.emitted[shard]
		}
		got, err := reps[r].Open(stream, s.query, cl.nextSeed(), exclude, s.where, s.win)
		if err != nil {
			continue
		}
		s.buffers[shard] = s.buffers[shard][:0]
		s.heads[shard] = 0
		s.total += got - s.remaining[shard]
		s.remaining[shard] = got
		s.streams[shard] = stream
		s.open[shard] = got > 0
		s.repl[shard] = r
		s.failovers++
		cl.rtot.failovers.Add(1)
		if cl.mirrorMisses[shard][r].Load() > 0 {
			s.staleReads++
			cl.rtot.staleReads.Add(1)
		}
		return true
	}
	return false
}

// lostShard stashes a lost shard's unemitted matching count so a crashed
// shard that recovers can be re-admitted exactly where it left off (the
// stream itself survives on the shard side — in the backend's table, or
// reopened on a restarted process with the emitted IDs excluded).
type lostShard struct {
	remaining int
	// crash marks a cluster-wide shard crash (re-admittable when the
	// shard recovers) as opposed to query-local retry exhaustion (the
	// shard server never went down, so there is no recovery to wait for
	// and the loss is final).
	crash bool
}

// loseShard degrades the query after shard became unavailable (crash, or
// retries exhausted): its unemitted matching population is written off,
// which both re-weights the draw distribution over the survivors (draws
// are proportional to per-shard remaining counts) and shrinks the stream's
// effective population so estimators widen their intervals honestly.
// Samples already emitted from the shard stay in the stream. The unemitted
// count is stashed rather than discarded (remaining still counts the
// buffered entries, so the write-off is exact and unreachable entries stay
// unreachable): if the shard was crash-lost and later recovers,
// maybeReadmit restores the stream exactly where it stopped.
func (s *Sampler) loseShard(shard int, crash bool) {
	if !s.open[shard] && s.remaining[shard] == 0 {
		return
	}
	if s.lost == nil {
		s.lost = make(map[int]lostShard)
	}
	s.lost[shard] = lostShard{remaining: s.remaining[shard], crash: crash}
	s.lostShards++
	s.lostPop += s.remaining[shard]
	s.total -= s.remaining[shard]
	s.remaining[shard] = 0
}

// maybeReadmit re-admits crash-lost shards whose servers have come back:
// the stashed unemitted matching count is restored, the draw distribution
// re-weights itself back over the full population (draws are proportional
// to per-shard remaining counts, so restoring the count IS the
// re-weighting — every still-unemitted record, on every shard, is again
// equally likely next), and Degradation shrinks so estimators re-grow
// their effective N via SetPopulation. Each poll of a still-down shard
// advances its recovery clock, making a sampling query double as the
// liveness probe. No-op for healthy queries (len(lost) == 0) and for
// exhaustion-lost shards (nothing to recover from). Queries that started
// while a shard was already down scoped themselves to the surviving
// population at their count round and never re-admit it.
func (s *Sampler) maybeReadmit() {
	if len(s.lost) == 0 {
		return
	}
	for shard, st := range s.lost {
		if !st.crash || s.cluster.shardDown(shard) {
			continue
		}
		delete(s.lost, shard)
		s.remaining[shard] = st.remaining
		s.total += st.remaining
		s.lostShards--
		s.lostPop -= st.remaining
		s.readmits++
	}
}

// Close releases the query's sample streams on every shard (best-effort:
// a down shard's stream dies with its process). Safe to call more than
// once; a sampler that was never initialized has nothing to close.
func (s *Sampler) Close() error {
	if s.closed || !s.init {
		s.closed = true
		return nil
	}
	s.closed = true
	for i, open := range s.open {
		if open {
			_ = s.client(i).CloseStream(s.streams[i])
		}
	}
	return nil
}

// Readmits reports how many lost shards this query has re-admitted after
// their recovery (see maybeReadmit).
func (s *Sampler) Readmits() int { return s.readmits }

// Failovers reports how many times this query's fetch path moved a
// shard's stream to a surviving replica (see failover). The engine stamps
// snapshots FailedOver when this is nonzero.
func (s *Sampler) Failovers() int { return s.failovers }

// StaleReads reports how many of this query's failovers landed on a
// replica that had missed update mirrors.
func (s *Sampler) StaleReads() int { return s.staleReads }

// Degradation reports the query's degraded state: how many shards it lost
// mid-stream and the matching population lost with them. Both are zero for
// a healthy run. Consumers (the engine's evaluator, distr estimators)
// subtract the lost population from the estimator's effective N, keeping
// the estimate unbiased over the surviving population — see DESIGN.md
// §4.3 for the lost-mass caveat.
func (s *Sampler) Degradation() (shardsLost, lostPopulation int) {
	return s.lostShards, s.lostPop
}

// Degraded reports whether the query lost at least one shard mid-stream.
func (s *Sampler) Degraded() bool { return s.lostShards > 0 }

// EstimateAvg runs a distributed online AVG: each sample is drawn through
// the cluster sampler and folded into a single estimator, exactly as a
// coordinator would. It stops after maxSamples samples or exhaustion and
// returns the estimate.
func (c *Cluster) EstimateAvg(q geo.Rect, attr string, maxSamples int, confidence float64) (estimator.Estimate, error) {
	col, err := c.ds.NumericColumn(attr)
	if err != nil {
		return estimator.Estimate{}, err
	}
	population := c.Count(q)
	est, err := estimator.New(estimator.Avg, confidence, population, true)
	if err != nil {
		return estimator.Estimate{}, err
	}
	s := c.Sampler(q)
	defer s.Close()
	// Pull through the batched coordinator protocol: one demand-sized
	// request per shard per round instead of per-refill round trips. The
	// chunk bounds the coordinator's working memory, not the batching win.
	const chunk = 1024
	buf := make([]data.Entry, chunk)
	for drawn := 0; drawn < maxSamples; {
		want := maxSamples - drawn
		if want > chunk {
			want = chunk
		}
		n := s.NextBatch(buf, want)
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
		}
		// Track the stream's effective population every round: shards that
		// died mid-query shrink it so the estimate (and its SUM/COUNT
		// scaling and finite-population correction) covers the surviving
		// shards instead of silently pretending the lost mass was sampled;
		// a crashed shard that recovered and was re-admitted restores it,
		// re-growing the effective N back toward the full population.
		_, lostPop := s.Degradation()
		est.SetPopulation(population - lostPop)
		drawn += n
		if n < want {
			break
		}
	}
	return est.Snapshot(), nil
}

// ParallelPartialAvg demonstrates the scatter/gather alternative: every
// shard draws its own local sample of size proportional to its matching
// count, computes a partial Welford accumulator in parallel, and the
// coordinator merges them. The merged mean is an unbiased estimate of the
// population mean because shard sample sizes are proportional to shard
// populations (self-weighting allocation). Shard-local work goes through
// the undecorated clients: it models computation on the shard, not
// coordinator fetch round trips, so injected fetch faults do not apply.
func (c *Cluster) ParallelPartialAvg(q geo.Rect, attr string, totalSamples int) (estimator.Welford, error) {
	col, err := c.ds.NumericColumn(attr)
	if err != nil {
		return estimator.Welford{}, err
	}
	start := time.Now()
	defer observeMS(c.met.fanoutMS, start)
	counts := make([]int, len(c.raw))
	total := 0
	for i, cl := range c.raw {
		n, err := cl.Count(q, nil, wire.Window{})
		if err != nil {
			n = 0
		}
		counts[i] = n
		total += n
	}
	c.charge(2*uint64(len(c.raw)), 0)
	if total == 0 {
		return estimator.Welford{}, nil
	}

	partials := make([]estimator.Welford, len(c.raw))
	var wg sync.WaitGroup
	for i := range c.raw {
		if counts[i] == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, stream uint64, seed int64) {
			defer wg.Done()
			k := totalSamples * counts[i] / total
			if k < 1 {
				k = 1
			}
			if _, err := c.raw[i].Open(stream, q, seed, nil, nil, wire.Window{}); err != nil {
				return
			}
			local := make([]data.Entry, k)
			got, err := c.raw[i].Fetch(stream, local, k)
			_ = c.raw[i].CloseStream(stream)
			if err != nil {
				return
			}
			for _, e := range local[:got] {
				partials[i].Add(col[e.ID])
			}
		}(i, c.streamSeq.Add(1), c.nextSeed())
	}
	wg.Wait()
	c.charge(2*uint64(len(c.raw)), uint64(0))

	var merged estimator.Welford
	for i := range partials {
		merged.Merge(partials[i])
	}
	return merged, nil
}
