// Shard placement for remote clusters: a consistent-hash ring maps each
// (dataset, shard) pair to a shard-host address. Consistent hashing keeps
// the assignment stable — adding a host to the pool moves only the shards
// that land on its ring points, not the whole layout — and every process
// that hashes the same host list agrees on the placement without any
// coordination.
package distr

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is how many ring points each host address contributes.
// More points smooth the shard distribution across hosts; 64 keeps the
// per-host imbalance within a few percent for the host counts this
// system targets.
const ringVnodes = 64

type ringPoint struct {
	hash uint64
	addr string
}

// hashRing is a consistent-hash ring over shard-host addresses.
type hashRing struct {
	points []ringPoint
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the SplitMix64 finalizer. FNV-1a barely diffuses a change in
// the last input byte — two keys differing only there end up a small
// multiple of the FNV prime (~2^40) apart on the 2^64 ring, inside the
// same vnode gap — so without this the shard keys "ds/0", "ds/1", …
// would all colocate on one host.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring from the host addresses (duplicates collapse).
func newRing(addrs []string) *hashRing {
	seen := make(map[string]struct{}, len(addrs))
	r := &hashRing{}
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(a + "#" + strconv.Itoa(v)), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// lookup returns the host owning key: the first ring point at or after
// the key's hash, wrapping around.
func (r *hashRing) lookup(key string) string {
	addrs := r.lookupN(key, 1)
	if len(addrs) == 0 {
		return ""
	}
	return addrs[0]
}

// lookupN returns the first n distinct hosts at or after the key's hash,
// wrapping around — the key's replica set, primary first. Successors on
// the ring are the classic consistent-hashing replica rule: adding a host
// perturbs only the replica sets whose ring arcs it lands on. Hosts are
// deduplicated (vnodes of the primary interleave with everyone else's),
// so with fewer than n distinct hosts the set is short, never padded:
// callers size per-shard replication by len(result), not by the requested
// factor.
func (r *hashRing) lookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if _, dup := seen[p.addr]; dup {
			continue
		}
		seen[p.addr] = struct{}{}
		out = append(out, p.addr)
	}
	return out
}

// shardPlacementKey is the ring key of one shard of one dataset.
func shardPlacementKey(ds string, shard int) string {
	return ds + "/" + strconv.Itoa(shard)
}

// ShardStatus describes one shard's placement and liveness as the
// coordinator sees it (served by the coordinator's /shards endpoint).
// Addr and Down describe the placement primary (replica 0) and the shard
// as a whole respectively: Down is true only when every replica is down,
// because the coordinator fails over to any live copy. Replicas lists
// each copy individually.
type ShardStatus struct {
	Shard    int             `json:"shard"`
	Addr     string          `json:"addr"`
	Down     bool            `json:"down"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ReplicaStatus is the placement and liveness of one replica of a shard.
type ReplicaStatus struct {
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	Down    bool   `json:"down"`
}

// ShardStatus reports every shard's placement and liveness, per replica.
// The check is a regular coordinator contact: it advances the injected
// recovery clock of every down replica and may probe TCP shards, exactly
// like a query's own liveness checks — polling /shards is itself a
// liveness prober for the whole replica set.
func (c *Cluster) ShardStatus() []ShardStatus {
	out := make([]ShardStatus, len(c.clients))
	for i, cl := range c.clients {
		reps := make([]ReplicaStatus, len(c.repl[i]))
		allDown := true
		for r, rc := range c.repl[i] {
			down := c.replicaDown(i, r)
			reps[r] = ReplicaStatus{Replica: r, Addr: rc.Addr(), Down: down}
			if !down {
				allDown = false
			}
		}
		out[i] = ShardStatus{Shard: i, Addr: cl.Addr(), Down: allDown, Replicas: reps}
	}
	return out
}
