package distr

import (
	"testing"

	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
)

// drainSerial pulls every sample one at a time.
func drainSerial(s *Sampler) []data.Entry {
	var out []data.Entry
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// drainBatched pulls with NextBatch using the cyclic size pattern.
func drainBatched(s *Sampler, sizes []int) []data.Entry {
	var out []data.Entry
	for i := 0; ; i++ {
		k := sizes[i%len(sizes)]
		buf := make([]data.Entry, k)
		n := s.NextBatch(buf, k)
		out = append(out, buf[:n]...)
		if n < k {
			return out
		}
	}
}

func assertSameEntries(t *testing.T, serial, batched []data.Entry, label string) {
	t.Helper()
	if len(serial) != len(batched) {
		t.Fatalf("%s: serial drained %d, batched %d", label, len(serial), len(batched))
	}
	for i := range serial {
		if serial[i].ID != batched[i].ID {
			t.Fatalf("%s: stream diverges at %d: serial ID %d, batched ID %d",
				label, i, serial[i].ID, batched[i].ID)
		}
	}
}

// TestNextBatchMatchesNext checks the coordinator's batched protocol emits
// the byte-identical sample stream as repeated Next for the same seeds,
// across shard counts and batch-size patterns.
func TestNextBatchMatchesNext(t *testing.T) {
	ds := gen.Uniform(6000, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	for _, shards := range []int{1, 3, 8} {
		for _, sizes := range [][]int{{1}, {17}, {500}, {2, 99, 5}} {
			a, err := Build(ds, Config{Shards: shards, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Build(ds, Config{Shards: shards, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			serial := drainSerial(a.Sampler(testQuery))
			batched := drainBatched(b.Sampler(testQuery), sizes)
			assertSameEntries(t, serial, batched, "drain")
		}
	}
}

// TestNextBatchInterleavedWithNext alternates the two pull styles on one
// sampler against a fully serial twin.
func TestNextBatchInterleavedWithNext(t *testing.T) {
	ds := gen.Uniform(5000, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	a, err := Build(ds, Config{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, Config{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	serial := drainSerial(a.Sampler(testQuery))
	s := b.Sampler(testQuery)
	var mixed []data.Entry
	buf := make([]data.Entry, 64)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		mixed = append(mixed, e)
		n := s.NextBatch(buf, 64)
		mixed = append(mixed, buf[:n]...)
		if n < 64 {
			break
		}
	}
	assertSameEntries(t, serial, mixed, "interleaved")
}

// TestNextBatchFewerMessages checks the point of the batched protocol: one
// demand-sized request per shard per round instead of per-refill trips.
func TestNextBatchFewerMessages(t *testing.T) {
	ds := gen.Uniform(20000, 3, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	serialC, _ := Build(ds, Config{Shards: 8, Seed: 1, BatchSize: 32})
	batchC, _ := Build(ds, Config{Shards: 8, Seed: 1, BatchSize: 32})

	s := serialC.Sampler(testQuery)
	for i := 0; i < 4000; i++ {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	serialMsgs := serialC.Net().Messages

	b := batchC.Sampler(testQuery)
	buf := make([]data.Entry, 4000)
	b.NextBatch(buf, 4000)
	batchMsgs := batchC.Net().Messages

	if batchMsgs >= serialMsgs {
		t.Fatalf("batched protocol sent %d messages, serial %d — expected fewer", batchMsgs, serialMsgs)
	}
}
