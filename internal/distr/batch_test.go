package distr_test

import (
	"testing"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/gen"
	"storm/internal/geo"
)

// TestNextBatchMatchesNext checks the coordinator's batched protocol emits
// the byte-identical sample stream as repeated Next for the same seeds,
// across shard counts and batch-size patterns.
func TestNextBatchMatchesNext(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	for _, shards := range []int{1, 3, 8} {
		for _, sizes := range [][]int{{1}, {17}, {500}, {2, 99, 5}} {
			a := distrtest.Build(t, ds, distr.Config{Shards: shards, Seed: 5})
			b := distrtest.Build(t, ds, distr.Config{Shards: shards, Seed: 5})
			serial := distrtest.DrainSerial(a.Sampler(q))
			batched := distrtest.DrainBatched(b.Sampler(q), sizes)
			distrtest.SameEntries(t, serial, batched, "drain")
		}
	}
}

// TestNextBatchInterleavedWithNext alternates the two pull styles on one
// sampler against a fully serial twin.
func TestNextBatchInterleavedWithNext(t *testing.T) {
	ds := gen.Uniform(5000, 7, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	q := distrtest.Query()
	a := distrtest.Build(t, ds, distr.Config{Shards: 4, Seed: 9})
	b := distrtest.Build(t, ds, distr.Config{Shards: 4, Seed: 9})
	serial := distrtest.DrainSerial(a.Sampler(q))
	s := b.Sampler(q)
	var mixed []data.Entry
	buf := make([]data.Entry, 64)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		mixed = append(mixed, e)
		n := s.NextBatch(buf, 64)
		mixed = append(mixed, buf[:n]...)
		if n < 64 {
			break
		}
	}
	distrtest.SameEntries(t, serial, mixed, "interleaved")
}

// TestNextBatchFewerMessages checks the point of the batched protocol: one
// demand-sized request per shard per round instead of per-refill trips.
func TestNextBatchFewerMessages(t *testing.T) {
	ds := gen.Uniform(20000, 3, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	q := distrtest.Query()
	serialC := distrtest.Build(t, ds, distr.Config{Shards: 8, Seed: 1, BatchSize: 32})
	batchC := distrtest.Build(t, ds, distr.Config{Shards: 8, Seed: 1, BatchSize: 32})

	s := serialC.Sampler(q)
	for i := 0; i < 4000; i++ {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	serialMsgs := serialC.Net().Messages

	b := batchC.Sampler(q)
	buf := make([]data.Entry, 4000)
	b.NextBatch(buf, 4000)
	batchMsgs := batchC.Net().Messages

	if batchMsgs >= serialMsgs {
		t.Fatalf("batched protocol sent %d messages, serial %d — expected fewer", batchMsgs, serialMsgs)
	}
}
