// The coordinator↔shard RPC boundary. Everything the coordinator does to
// a shard — count rounds, the batched sample protocol, update mirroring,
// the metadata reads behind routing and lost-mass bounds — goes through
// the ShardClient interface, so the same Cluster/Sampler code runs over
// the in-process loopback (byte-identical to the pre-RPC direct calls),
// over TCP to real shard processes, and under the fault-injection
// decorator that the PR 4–5 robustness suites drive.
package distr

import (
	"errors"
	"fmt"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/wire"
)

// ShardClient is the coordinator's view of one shard server. Every round
// shape the cluster speaks is here:
//
//   - Count is the count round (|P_s ∩ q| for fan-out totals and sampler
//     initialization).
//   - Open/Fetch/CloseStream are the batched sample protocol: Open
//     creates a per-query without-replacement stream (returning its
//     matching count), Fetch pulls a demand-sized batch, CloseStream
//     releases it.
//   - Insert/Delete mirror updates into the shard's index.
//   - Bounds and Len serve insert routing and diagnostics; Summary serves
//     the per-attribute digests behind degraded lost-mass bounds.
//
// Implementations: loopbackClient (in-process, backend.go), wireClient
// (TCP, remote.go), faultClient (fault-injection decorator, fault.go).
// All methods must be safe for concurrent use.
type ShardClient interface {
	// Count returns the shard's matching count for q, restricted to
	// records satisfying the predicate terms (nil = no predicate) and to
	// the event-time window win (zero = none). The shard compiles, prunes
	// and narrows locally.
	Count(q geo.Rect, where []pred.Term, win wire.Window) (int, error)
	// Open creates sample stream id over q, seeded with seed, never
	// emitting the excluded IDs and emitting only records satisfying the
	// predicate terms (nil = no predicate) and lying in the event-time
	// window win (zero = none); it returns the stream's matching count. A
	// zero count opens nothing.
	Open(stream uint64, q geo.Rect, seed int64, exclude []data.ID, where []pred.Term, win wire.Window) (int, error)
	// Fetch pulls up to n samples from an open stream into dst[:n].
	Fetch(stream uint64, dst []data.Entry, n int) (int, error)
	// CloseStream releases an open stream.
	CloseStream(stream uint64) error
	// Insert adds a record to the shard's index (the record's attributes
	// are resolved from the coordinator's dataset).
	Insert(e data.Entry) error
	// Delete removes a record, reporting whether the shard held it.
	Delete(e data.Entry) (bool, error)
	// Bounds returns the shard tree's bounding box (insert routing).
	Bounds() (geo.Rect, error)
	// Len returns the shard's record count.
	Len() (int, error)
	// Summary returns the shard's digest of a numeric attribute; found is
	// false when the shard has no summary for it.
	Summary(attr string) (s AttrSummary, found bool, err error)
	// Addr names the shard's endpoint ("loopback" in-process).
	Addr() string
	// Close releases client resources.
	Close() error
}

// deadlineFetcher is the optional deadline-aware fetch side of a
// ShardClient: FetchBefore is Fetch with an absolute wall-clock deadline
// the attempt must respect — the TCP transport caps its per-request
// timeout at the time remaining (floored at wire.MinCallTimeout), and the
// fault decorator forwards the deadline through to its inner client.
// Samplers running under a deadline (engine time budgets, query
// contracts) route fetches through this when available, so a stuck shard
// cannot hold a bounded query past its budget. Clients without it (the
// plain loopback, which cannot block on a network) are fetched normally.
type deadlineFetcher interface {
	FetchBefore(stream uint64, dst []data.Entry, n int, deadline time.Time) (int, error)
}

// liveChecker is the optional liveness side of a ShardClient. Live
// reports whether the shard is currently down; each call is one
// coordinator observation (it advances an injected crash's recovery
// clock, or rate-limits a real TCP probe), and rejoined is true exactly
// once per recovery — on the observation that brought the shard back.
// Clients without liveness (the plain loopback) are simply never down.
type liveChecker interface {
	Live() (down, rejoined bool)
}

// Fetch-path error taxonomy. The coordinator's retry loop (see
// Sampler.clientFetch) keys off these: shardDownError writes the shard
// off (recoverable crashes are retried as probes first), ErrUnknownStream
// triggers a stream reopen with an exclude list, everything else is
// retried with backoff up to Config.MaxRetries.
var (
	// ErrFetchTimeout reports a fetch that exceeded the per-fetch
	// deadline (injected, or a real transport deadline).
	ErrFetchTimeout = errors.New("distr: fetch timed out")
	// ErrTransient reports a retryable shard-side failure.
	ErrTransient = errors.New("distr: transient shard error")
	// ErrUnknownStream reports a fetch against a stream the shard no
	// longer has — the signature of a shard process restart.
	ErrUnknownStream = errors.New("distr: unknown sample stream")
)

// shardDownError reports a shard that is down. Recoverable marks a shard
// that may come back (an injected crash with a recover-after schedule, or
// any real TCP outage — a process can always be restarted); the
// coordinator then keeps the query's stream stashed for re-admission
// instead of writing the loss off permanently.
type shardDownError struct {
	Recoverable bool
}

func (e *shardDownError) Error() string {
	return fmt.Sprintf("distr: shard down (recoverable=%v)", e.Recoverable)
}
