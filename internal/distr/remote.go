// The TCP side of the ShardClient boundary: wireClient speaks the wire
// protocol to a remote shard host, and BuildRemote assembles a Cluster
// whose shards are real processes. The coordinator logic above the
// interface is untouched — the same Cluster/Sampler code that runs over
// the loopback runs here, with real frames, real deadlines, and measured
// (not simulated) network statistics.
package distr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/pred"
	"storm/internal/wire"
)

const (
	// remoteBuildTimeout bounds a Build RPC: the shard host partitions
	// and indexes its dataset copy, which dwarfs every other request.
	remoteBuildTimeout = 2 * time.Minute
	// remoteOpTimeout bounds metadata requests (count, open, summary,
	// bounds, len, updates) — cheap but index-sized, so they get more
	// room than a sample fetch.
	remoteOpTimeout = 2 * time.Second
	// remoteProbeEvery rate-limits liveness pings against a down shard,
	// so a degraded query's readmit polls don't flood the dead address
	// with connection attempts.
	remoteProbeEvery = 50 * time.Millisecond
)

// wireClient is the ShardClient over one TCP transport to the shard host
// owning this shard. Transports are shared per host address; the client
// adds the shard addressing, the per-request deadlines, the down/rejoin
// bookkeeping for real outages, and a build-time summary cache so
// lost-mass bounds stay answerable while the shard is down — exactly
// when they are needed.
type wireClient struct {
	c    *Cluster
	t    wire.Transport
	addr string
	tgt  wire.Target
	// build is the shard's original Build request, kept so an
	// unknown-shard error (the host restarted and lost the shard) can be
	// answered by rebuilding it in place.
	build wire.Build

	mu        sync.Mutex
	down      bool
	lastProbe time.Time
	sumCache  map[string]AttrSummary
}

// markDown records a transport-level outage: one crash transition per
// down period, mirrored into the cluster's fault totals (crashes and
// shards_down — a real outage, not an injected one, so the injected
// counter is untouched).
func (w *wireClient) markDown() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down {
		return
	}
	w.down = true
	w.lastProbe = time.Now()
	w.c.ftot.crashes.Add(1)
	w.c.ftot.shardsDown.Add(1)
}

// markUp clears the down state after any successful round trip. The
// rejoin accounting happens here — not in Live — because a retried fetch
// can revive the shard without a ping ever being sent.
func (w *wireClient) markUp() {
	w.mu.Lock()
	wasDown := w.down
	w.down = false
	w.mu.Unlock()
	if wasDown {
		w.c.countReadmit()
	}
}

// Live implements liveChecker: a down shard is probed with a Ping at
// most once per remoteProbeEvery. Rejoin accounting is internal to the
// markUp transition, so Live never reports rejoined itself.
func (w *wireClient) Live() (down, rejoined bool) {
	w.mu.Lock()
	if !w.down {
		w.mu.Unlock()
		return false, false
	}
	if time.Since(w.lastProbe) < remoteProbeEvery {
		w.mu.Unlock()
		return true, false
	}
	w.lastProbe = time.Now()
	w.mu.Unlock()
	if _, err := w.t.RoundTrip(&wire.Ping{}, remoteOpTimeout); err != nil {
		return true, false
	}
	w.markUp()
	return false, false
}

// roundTrip sends one request with a deadline, maintaining the
// down/rejoin state: any transport failure surfaces as a recoverable
// down-shard error (a process can always be restarted), any success
// revives the shard.
func (w *wireClient) roundTrip(m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	resp, err := w.t.RoundTrip(m, timeout)
	if err != nil {
		w.markDown()
		return nil, &shardDownError{Recoverable: true}
	}
	w.markUp()
	return resp, nil
}

// call is roundTrip plus protocol-level error mapping: an unknown-shard
// error triggers one in-place rebuild (the host restarted and lost the
// shard) before the request is retried; an unknown-stream error maps to
// ErrUnknownStream so the coordinator reopens the stream.
func (w *wireClient) call(m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	rebuilt := false
	for {
		resp, err := w.roundTrip(m, timeout)
		if err != nil {
			return nil, err
		}
		werr, isErr := resp.(*wire.Error)
		if !isErr {
			return resp, nil
		}
		switch werr.Code {
		case wire.ErrCodeUnknownStream:
			return nil, ErrUnknownStream
		case wire.ErrCodeUnknownShard:
			if rebuilt {
				return nil, werr
			}
			rebuilt = true
			w.c.rtot.rebuilds.Add(1)
			if _, err := w.roundTrip(&w.build, remoteBuildTimeout); err != nil {
				return nil, err
			}
			// Rebuilt (or raced another rebuilder); retry the request.
		default:
			return nil, werr
		}
	}
}

// Count implements ShardClient. The window travels as a wire term — the
// shard narrows locally, so no windowed record filtering happens on the
// coordinator for remote shards.
func (w *wireClient) Count(q geo.Rect, where []pred.Term, win wire.Window) (int, error) {
	resp, err := w.call(&wire.Count{Target: w.tgt, Query: q, Where: where, Window: win}, remoteOpTimeout)
	if err != nil {
		return 0, err
	}
	ok, isOK := resp.(*wire.CountOK)
	if !isOK {
		return 0, fmt.Errorf("distr: unexpected %v response to count", resp.WireKind())
	}
	return int(ok.N), nil
}

// Open implements ShardClient.
func (w *wireClient) Open(stream uint64, q geo.Rect, seed int64, exclude []data.ID, where []pred.Term, win wire.Window) (int, error) {
	resp, err := w.call(&wire.Open{Target: w.tgt, Stream: stream, Query: q, Seed: seed, Exclude: exclude, Where: where, Window: win}, remoteOpTimeout)
	if err != nil {
		return 0, err
	}
	ok, isOK := resp.(*wire.OpenOK)
	if !isOK {
		return 0, fmt.Errorf("distr: unexpected %v response to open", resp.WireKind())
	}
	return int(ok.N), nil
}

// Fetch implements ShardClient. The per-fetch deadline is
// Config.FetchTimeout, enforced by the transport on the connection.
func (w *wireClient) Fetch(stream uint64, dst []data.Entry, n int) (int, error) {
	resp, err := w.call(&wire.Fetch{Target: w.tgt, Stream: stream, N: uint32(n)}, w.c.cfg.FetchTimeout)
	if err != nil {
		return 0, err
	}
	ents, isEnts := resp.(*wire.Entries)
	if !isEnts {
		return 0, fmt.Errorf("distr: unexpected %v response to fetch", resp.WireKind())
	}
	got := copy(dst, ents.Entries)
	return got, nil
}

// FetchBefore implements deadlineFetcher: a Fetch whose transport
// timeout is capped at the time remaining until deadline (never above
// Config.FetchTimeout, never below wire.MinCallTimeout), so a contract
// query's last fetch cannot block past the deadline waiting on a slow
// shard. A zero deadline degrades to a plain Fetch.
func (w *wireClient) FetchBefore(stream uint64, dst []data.Entry, n int, deadline time.Time) (int, error) {
	timeout := w.c.cfg.FetchTimeout
	if !deadline.IsZero() {
		if left := time.Until(deadline); left < timeout {
			timeout = left
		}
		if timeout < wire.MinCallTimeout {
			timeout = wire.MinCallTimeout
		}
	}
	resp, err := w.call(&wire.Fetch{Target: w.tgt, Stream: stream, N: uint32(n)}, timeout)
	if err != nil {
		return 0, err
	}
	ents, isEnts := resp.(*wire.Entries)
	if !isEnts {
		return 0, fmt.Errorf("distr: unexpected %v response to fetch", resp.WireKind())
	}
	got := copy(dst, ents.Entries)
	return got, nil
}

// CloseStream implements ShardClient.
func (w *wireClient) CloseStream(stream uint64) error {
	_, err := w.call(&wire.Close{Target: w.tgt, Stream: stream}, remoteOpTimeout)
	if errors.Is(err, ErrUnknownStream) {
		return nil // restarted host: the stream is already gone
	}
	return err
}

// Insert implements ShardClient, shipping the record's attributes so the
// shard host's dataset copy stays aligned with the coordinator's.
func (w *wireClient) Insert(e data.Entry) error {
	num, str := insertAttrs(w.c.ds, e.ID)
	_, err := w.call(&wire.Insert{Target: w.tgt, ID: e.ID, Pos: e.Pos, Num: num, Str: str}, remoteOpTimeout)
	return err
}

// Delete implements ShardClient.
func (w *wireClient) Delete(e data.Entry) (bool, error) {
	resp, err := w.call(&wire.Delete{Target: w.tgt, ID: e.ID, Pos: e.Pos}, remoteOpTimeout)
	if err != nil {
		return false, err
	}
	ok, isOK := resp.(*wire.DeleteOK)
	if !isOK {
		return false, fmt.Errorf("distr: unexpected %v response to delete", resp.WireKind())
	}
	return ok.Found, nil
}

// Bounds implements ShardClient.
func (w *wireClient) Bounds() (geo.Rect, error) {
	resp, err := w.call(&wire.Bounds{Target: w.tgt}, remoteOpTimeout)
	if err != nil {
		return geo.Rect{}, err
	}
	ok, isOK := resp.(*wire.BoundsOK)
	if !isOK {
		return geo.Rect{}, fmt.Errorf("distr: unexpected %v response to bounds", resp.WireKind())
	}
	return ok.Rect, nil
}

// Len implements ShardClient.
func (w *wireClient) Len() (int, error) {
	resp, err := w.call(&wire.Len{Target: w.tgt}, remoteOpTimeout)
	if err != nil {
		return 0, err
	}
	ok, isOK := resp.(*wire.LenOK)
	if !isOK {
		return 0, fmt.Errorf("distr: unexpected %v response to len", resp.WireKind())
	}
	return int(ok.N), nil
}

// Summary implements ShardClient. A down shard answers from the cached
// digest refreshed on every successful Summary round trip: lost-mass
// bounds are needed exactly while the shard is unreachable, and the
// digest only drifts by Min/Max widening — the cached bounds stay sound
// for every record the coordinator routed before the outage.
func (w *wireClient) Summary(attr string) (AttrSummary, bool, error) {
	w.mu.Lock()
	if w.down {
		s, ok := w.sumCache[attr]
		w.mu.Unlock()
		return s, ok, nil
	}
	w.mu.Unlock()
	resp, err := w.call(&wire.Summary{Target: w.tgt, Attr: attr}, remoteOpTimeout)
	if err != nil {
		w.mu.Lock()
		s, ok := w.sumCache[attr]
		w.mu.Unlock()
		if ok {
			return s, true, nil
		}
		return AttrSummary{}, false, err
	}
	ok, isOK := resp.(*wire.SummaryOK)
	if !isOK {
		return AttrSummary{}, false, fmt.Errorf("distr: unexpected %v response to summary", resp.WireKind())
	}
	if !ok.Found {
		return AttrSummary{}, false, nil
	}
	s := AttrSummary{
		Count:     int(ok.Count),
		Sum:       ok.Sum,
		Min:       ok.Min,
		Max:       ok.Max,
		NonFinite: int(ok.NonFinite),
	}
	w.mu.Lock()
	w.sumCache[attr] = s
	w.mu.Unlock()
	return s, true, nil
}

// Addr implements ShardClient.
func (w *wireClient) Addr() string { return w.addr }

// Close implements ShardClient. The transport is shared by every shard
// on the same host and closed once by Cluster.Close, so the client
// itself holds nothing.
func (w *wireClient) Close() error { return nil }

// buildRemoteShard issues the shard's Build RPC and primes the summary
// cache for every numeric column.
func (w *wireClient) buildRemoteShard(cols []string) error {
	resp, err := w.roundTrip(&w.build, remoteBuildTimeout)
	if err != nil {
		return fmt.Errorf("distr: building shard %d on %s: %w", w.tgt.Shard, w.addr, err)
	}
	if werr, isErr := resp.(*wire.Error); isErr {
		return fmt.Errorf("distr: building shard %d on %s: %w", w.tgt.Shard, w.addr, werr)
	}
	if _, isOK := resp.(*wire.BuildOK); !isOK {
		return fmt.Errorf("distr: unexpected %v response to build", resp.WireKind())
	}
	for _, col := range cols {
		if _, _, err := w.Summary(col); err != nil {
			return fmt.Errorf("distr: priming summary %q for shard %d on %s: %w", col, w.tgt.Shard, w.addr, err)
		}
	}
	return nil
}

// BuildRemote assembles a cluster whose shards live in remote shard-host
// processes. Each shard is placed on cfg.Replicas distinct hosts by
// consistent hashing over addrs (ring successors; a pool smaller than
// the factor yields fewer copies), built on each of them via a Build RPC
// (the host partitions its own dataset copy — partitioning is
// deterministic, so coordinator and hosts agree on every shard's
// contents without shipping them), and reached through one shared TCP
// transport per host. Every replica of a shard answers to the same wire
// Target — replica identity is purely a coordinator-side routing choice,
// so the wire protocol is unchanged by replication. cfg.Shards defaults
// to len(addrs). Fault plans decorate the TCP clients exactly as they
// decorate loopback ones, so the robustness suites run unchanged against
// real processes.
func BuildRemote(ds *data.Dataset, cfg Config, addrs []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distr: remote cluster needs at least one shard host")
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(addrs)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, ds: ds, remote: true}
	c.faults = newFaultStates(cfg.Faults, cfg.Shards, cfg.Replicas)
	ring := newRing(addrs)
	transports := make(map[string]*wire.TCPClient, len(addrs))
	var builders []*wireClient
	for s := 0; s < cfg.Shards; s++ {
		raddrs := ring.lookupN(shardPlacementKey(ds.Name(), s), cfg.Replicas)
		reps := make([]ShardClient, 0, len(raddrs))
		for r, addr := range raddrs {
			t, dialed := transports[addr]
			if !dialed {
				t = wire.NewTCPClient(addr)
				transports[addr] = t
				c.transports = append(c.transports, t)
			}
			w := &wireClient{
				c:        c,
				t:        t,
				addr:     addr,
				tgt:      wire.Target{DS: ds.Name(), Shard: uint32(s)},
				sumCache: make(map[string]AttrSummary),
			}
			w.build = wire.Build{
				Target:    w.tgt,
				Of:        uint32(cfg.Shards),
				Seed:      cfg.Seed,
				Fanout:    uint32(cfg.Fanout),
				PoolPages: uint32(cfg.BufferPoolPages),
			}
			builders = append(builders, w)
			if r == 0 {
				c.raw = append(c.raw, w)
			}
			var cl ShardClient = w
			if c.faults != nil {
				cl = &faultClient{ShardClient: w, c: c, f: c.faults[s][r]}
			}
			reps = append(reps, cl)
		}
		c.repl = append(c.repl, reps)
		c.clients = append(c.clients, reps[0])
	}
	c.mirrorMisses = newMirrorMisses(c.repl)

	cols := ds.NumericColumns()
	errs := make([]error, len(builders))
	var wg sync.WaitGroup
	for i, w := range builders {
		wg.Add(1)
		go func(i int, w *wireClient) {
			defer wg.Done()
			errs[i] = w.buildRemoteShard(cols)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	c.initMetrics()
	return c, nil
}
