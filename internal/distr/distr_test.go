package distr

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/stats"
)

func buildCluster(t testing.TB, n, shards int) (*Cluster, *data.Dataset) {
	t.Helper()
	ds := gen.Uniform(n, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	c, err := Build(ds, Config{Shards: shards, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return c, ds
}

var testQuery = geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})

func TestBuildPartitionsEverything(t *testing.T) {
	c, ds := buildCluster(t, 10000, 4)
	if len(c.Shards()) != 4 {
		t.Fatalf("shards = %d", len(c.Shards()))
	}
	total := 0
	for _, s := range c.Shards() {
		total += s.Len()
	}
	if total != ds.Len() {
		t.Fatalf("shard records sum to %d, want %d", total, ds.Len())
	}
	// Balanced within one slot.
	for _, s := range c.Shards() {
		if s.Len() < ds.Len()/4-1 || s.Len() > ds.Len()/4+ds.Len()%4+1 {
			t.Errorf("shard %d holds %d records (imbalanced)", s.ID, s.Len())
		}
	}
}

func TestCountMatchesBrute(t *testing.T) {
	c, ds := buildCluster(t, 8000, 3)
	want := 0
	for i := 0; i < ds.Len(); i++ {
		if testQuery.Contains(ds.Pos(uint64(i))) {
			want++
		}
	}
	if got := c.Count(testQuery); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if c.Net().Messages == 0 {
		t.Error("count should charge network messages")
	}
}

func TestSamplerCompleteAndUnique(t *testing.T) {
	c, ds := buildCluster(t, 8000, 4)
	want := make(map[data.ID]bool)
	for i := 0; i < ds.Len(); i++ {
		if testQuery.Contains(ds.Pos(uint64(i))) {
			want[uint64(i)] = true
		}
	}
	s := c.Sampler(testQuery)
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if !want[e.ID] {
			t.Fatalf("sample %d outside query", e.ID)
		}
		if got[e.ID] {
			t.Fatalf("duplicate sample %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
}

func TestSamplerUniformAcrossShards(t *testing.T) {
	// Shards hold disjoint Hilbert ranges, so a query spanning shard
	// boundaries checks the coordinator's weighted shard draw: counts per
	// record must be flat.
	ds := gen.Uniform(400, 13, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	want := make(map[data.ID]bool)
	for i := 0; i < ds.Len(); i++ {
		if testQuery.Contains(ds.Pos(uint64(i))) {
			want[uint64(i)] = true
		}
	}
	q := len(want)
	if q < 20 {
		t.Fatalf("degenerate fixture q=%d", q)
	}
	counts := make(map[data.ID]int)
	const trials = 15000
	for i := 0; i < trials; i++ {
		c, err := Build(ds, Config{Shards: 4, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		s := c.Sampler(testQuery)
		e, ok := s.Next()
		if !ok {
			t.Fatal("no sample")
		}
		counts[e.ID]++
	}
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("distributed first-sample chi-square %v > crit %v", stat, crit)
	}
}

func TestEstimateAvg(t *testing.T) {
	c, ds := buildCluster(t, 20000, 4)
	col, _ := ds.NumericColumn("value")
	var sum float64
	cnt := 0
	for i := 0; i < ds.Len(); i++ {
		if testQuery.Contains(ds.Pos(uint64(i))) {
			sum += col[i]
			cnt++
		}
	}
	want := sum / float64(cnt)
	est, err := c.EstimateAvg(testQuery, "value", 2000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-want) > 3*est.HalfWidth+1e-9 {
		t.Errorf("estimate %v ± %v vs truth %v", est.Value, est.HalfWidth, want)
	}
	if est.Samples != 2000 {
		t.Errorf("samples = %d", est.Samples)
	}
	if _, err := c.EstimateAvg(testQuery, "nope", 10, 0.95); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestParallelPartialAvg(t *testing.T) {
	c, ds := buildCluster(t, 20000, 4)
	col, _ := ds.NumericColumn("value")
	var sum float64
	cnt := 0
	for i := 0; i < ds.Len(); i++ {
		if testQuery.Contains(ds.Pos(uint64(i))) {
			sum += col[i]
			cnt++
		}
	}
	want := sum / float64(cnt)
	w, err := c.ParallelPartialAvg(testQuery, "value", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() < 1500 {
		t.Errorf("merged samples = %d", w.N())
	}
	if math.Abs(w.Mean()-want) > 2 {
		t.Errorf("merged mean %v vs truth %v", w.Mean(), want)
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	ds := gen.Uniform(20000, 17, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	small, _ := Build(ds, Config{Shards: 4, Seed: 1, BatchSize: 1})
	big, _ := Build(ds, Config{Shards: 4, Seed: 1, BatchSize: 64})
	run := func(c *Cluster) uint64 {
		c.ResetNet()
		s := c.Sampler(testQuery)
		for i := 0; i < 1000; i++ {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		return c.Net().Messages
	}
	mSmall, mBig := run(small), run(big)
	if mBig*10 > mSmall {
		t.Errorf("batching should cut messages: batch=1 %d vs batch=64 %d", mSmall, mBig)
	}
}

func TestEmptyQueryAcrossShards(t *testing.T) {
	c, _ := buildCluster(t, 1000, 3)
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	s := c.Sampler(empty)
	if _, ok := s.Next(); ok {
		t.Error("empty query should yield nothing")
	}
	w, err := c.ParallelPartialAvg(empty, "value", 100)
	if err != nil || w.N() != 0 {
		t.Errorf("empty partial avg: %d samples, %v", w.N(), err)
	}
}

func TestDistributedInsertDelete(t *testing.T) {
	c, ds := buildCluster(t, 4000, 4)
	before := c.Count(testQuery)
	// New records become part of the shared dataset, then route to shards.
	var inserted []data.Entry
	for i := 0; i < 50; i++ {
		id := ds.AppendFast(geo.Vec{40, 40, 50})
		ds.SetNumeric("value", id, 123)
		e := data.Entry{ID: id, Pos: geo.Vec{40, 40, 50}}
		c.Insert(e)
		inserted = append(inserted, e)
	}
	if got := c.Count(testQuery); got != before+50 {
		t.Fatalf("count after inserts = %d, want %d", got, before+50)
	}
	// Fresh records are sampleable.
	s := c.Sampler(geo.NewRect(geo.Vec{39.9, 39.9, 49}, geo.Vec{40.1, 40.1, 51}))
	found := 0
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if e.Pos == (geo.Vec{40, 40, 50}) {
			found++
		}
	}
	if found != 50 {
		t.Errorf("sampled %d fresh records, want 50", found)
	}
	// Deletes land on the right shard.
	for _, e := range inserted[:20] {
		if !c.Delete(e) {
			t.Fatalf("delete of %d failed", e.ID)
		}
	}
	if got := c.Count(testQuery); got != before+30 {
		t.Errorf("count after deletes = %d, want %d", got, before+30)
	}
	if c.Delete(data.Entry{ID: 999999, Pos: geo.Vec{1, 1, 1}}) {
		t.Error("deleting a missing record should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	ds := gen.Uniform(10, 1, geo.SpatialRange(0, 0, 1, 1))
	if _, err := Build(ds, Config{Shards: 0}); err == nil {
		t.Error("zero shards should be rejected")
	}
	if _, err := Build(ds, Config{Shards: 1, BatchSize: -1}); err == nil {
		t.Error("negative batch should be rejected")
	}
}

func TestMoreShardsThanRecords(t *testing.T) {
	ds := gen.Uniform(3, 2, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	c, err := Build(ds, Config{Shards: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{100, 100, 100})
	s := c.Sampler(all)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("drained %d of 3", n)
	}
}
