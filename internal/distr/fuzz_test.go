package distr_test

import (
	"testing"

	"storm/internal/distr"
)

// FuzzParseFaultPlan fuzzes the operator-facing fault-plan grammar: no
// input may panic the parser, and every accepted input must round-trip
// through the canonical serializer — Parse(spec).String() is a fixpoint
// (parsing the canonical form and re-serializing reproduces it exactly).
// The fixpoint property is the strongest one that holds for free-form
// input: the original spec may normalize (whitespace, leading zeros,
// duplicate segments merge), but the canonical form may not drift.
//
// Run the full fuzzer with:
//
//	go test -run FuzzParseFaultPlan -fuzz FuzzParseFaultPlan -fuzztime 30s ./internal/distr/
//
// Without -fuzz, the checked-in corpus under
// testdata/fuzz/FuzzParseFaultPlan plus the f.Add seeds run as regression
// cases on every ordinary `go test`.
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"  ",
		"*:latency-p=0.05",
		"1:crash-after=40",
		"1:crash-after=40,recover-after=6",
		"3-4:transient-every=7,latency=2ms",
		"0:crash-after=0;2:timeout-every=3;*:transient-p=0.25",
		"1:crash-after=40;1:latency-every=2",
		"7:latency=1h0m0s",
		"1:bogus=3",
		"x:crash-after=1",
		"5-2:latency=1ms",
		"1:transient-p=1.5",
		"1:recover-after=-1",
		";;;",
		"1:",
		":crash-after=1",
		"*:*",
		// Replica targets (DESIGN.md §4.8): '<shard>.<replica>' scripts one
		// copy, '*.<replica>' that copy of every shard; plain targets keep
		// their all-copies meaning alongside them.
		"2.0:crash-after=1",
		"2.1:crash-after=3",
		"*.1:latency-p=0.1,latency=1ms",
		"2:crash-after=40;2.1:crash-after=3",
		"0.0:crash-after=0,recover-after=2;*:transient-p=0.25",
		"1.-1:crash-after=1",
		"1.x:crash-after=1",
		"1-3.1:crash-after=1",
		"2.00:crash-after=1",
		"2.:crash-after=1",
		".1:crash-after=1",
		"2.1.0:crash-after=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := distr.ParseFaultPlan(spec)
		if err != nil {
			if plan != nil {
				t.Fatalf("ParseFaultPlan(%q) returned a plan alongside error %v", spec, err)
			}
			return
		}
		canon := plan.String()
		replan, err := distr.ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if again := replan.String(); again != canon {
			t.Fatalf("String is not a fixpoint for %q: %q -> %q", spec, canon, again)
		}
	})
}
