package distr

import (
	"testing"

	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/obs"
)

// TestClusterMetrics pins the distr observability wiring: fan-out rounds
// and shard fetches land in their histograms and the network totals are
// re-exported live through scrape-time Funcs.
func TestClusterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ds := gen.Uniform(10_000, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	c, err := Build(ds, Config{Shards: 4, Seed: 5, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	c.Count(testQuery)
	s := c.Sampler(testQuery)
	buf := make([]data.Entry, 256)
	if got := s.NextBatch(buf, 256); got == 0 {
		t.Fatal("cluster sampler returned no samples")
	}

	if h := reg.TuningHistogram("storm.distr.fanout.latency_ms", 0.1, 16).Snapshot(); h.Count < 2 {
		t.Errorf("fanout latency observations = %d, want >= 2 (count round + init round)", h.Count)
	}
	if h := reg.TuningHistogram("storm.distr.fetch.latency_ms", 0.1, 16).Snapshot(); h.Count == 0 {
		t.Error("fetch latency histogram is empty")
	}
	if reg.Counter("storm.distr.fetches").Value() == 0 {
		t.Error("fetches counter is zero")
	}

	snap := reg.Snapshot()
	msgs, ok := snap["storm.distr.net.messages"].(uint64)
	if !ok || msgs == 0 {
		t.Errorf("net.messages = %v, want live non-zero count", snap["storm.distr.net.messages"])
	}
	if msgs != c.Net().Messages {
		t.Errorf("net.messages Func = %d, Net() = %d", msgs, c.Net().Messages)
	}
	if shards, ok := snap["storm.distr.shards"].(int); !ok || shards != 4 {
		t.Errorf("shards = %v, want 4", snap["storm.distr.shards"])
	}
}

// TestClusterNoRegistry pins that a nil Config.Obs disables metrics
// without breaking any query path.
func TestClusterNoRegistry(t *testing.T) {
	c, _ := buildCluster(t, 2_000, 2)
	s := c.Sampler(testQuery)
	buf := make([]data.Entry, 64)
	if got := s.NextBatch(buf, 64); got == 0 {
		t.Fatal("sampler with metrics off returned no samples")
	}
}
