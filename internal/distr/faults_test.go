package distr

import (
	"math"
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/obs"
	"storm/internal/stats"
)

// faultTestData builds the shared fault fixture: a uniform dataset whose
// testQuery selectivity leaves a few hundred matches per shard.
func faultTestData(n int) *data.Dataset {
	return gen.Uniform(n, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
}

// fastFaultConfig returns a cluster config with backoff sleeps disabled so
// retry-heavy tests stay fast.
func fastFaultConfig(shards int, seed int64, plan *FaultPlan) Config {
	return Config{Shards: shards, Seed: seed, Faults: plan, RetryBackoff: -1}
}

// survivingTruth computes the mean of col over records matching q on every
// shard except the given dead ones — the population the degraded stream
// covers.
func survivingTruth(c *Cluster, ds *data.Dataset, q geo.Rect, dead map[int]bool) (mean float64, count int) {
	col, _ := ds.NumericColumn("value")
	var sum float64
	for i, sh := range c.Shards() {
		if dead[i] {
			continue
		}
		for _, e := range sh.Index().Tree().ReportAll(q) {
			sum += col[e.ID]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// TestNilAndEmptyPlansAreByteIdentical pins the regression contract: a
// cluster with no fault plan, one with an empty plan, and one whose plan
// only injects recoverable transient faults all emit the byte-identical
// batched sample stream (transient faults are retried against the same
// deterministic shard stream, so recovery reproduces the same data).
func TestNilAndEmptyPlansAreByteIdentical(t *testing.T) {
	ds := faultTestData(6000)
	build := func(plan *FaultPlan) *Sampler {
		c, err := Build(ds, fastFaultConfig(5, 7, plan))
		if err != nil {
			t.Fatal(err)
		}
		return c.Sampler(testQuery)
	}
	base := drainBatched(build(nil), []int{64})
	empty := drainBatched(build(&FaultPlan{}), []int{64})
	transient := drainBatched(build(&FaultPlan{
		Shards: map[int]ShardFaultPlan{ShardAll: {TransientEvery: 3}},
	}), []int{64})
	assertSameEntries(t, base, empty, "empty plan")
	assertSameEntries(t, base, transient, "recovered transient plan")
}

// TestCrashMidQueryDegradesGracefully is the acceptance scenario: 2 of 8
// shards crash mid-query; the coordinator finishes without error, counts
// exactly two crashes under storm.distr.faults.*, re-weights onto the
// survivors, and reports the lost population through Degradation.
func TestCrashMidQueryDegradesGracefully(t *testing.T) {
	ds := faultTestData(8000)
	reg := obs.NewRegistry()
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1},
		5: {Crash: true, CrashAfterFetches: 1},
	}}
	cfg := fastFaultConfig(8, 5, plan)
	cfg.Obs = reg
	c, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sampler(testQuery)
	initial := c.Count(testQuery)

	seen := make(map[data.ID]bool)
	buf := make([]data.Entry, 96)
	emitted := 0
	for {
		n := s.NextBatch(buf, len(buf))
		for _, e := range buf[:n] {
			if !testQuery.Contains(e.Pos) {
				t.Fatalf("sample %d outside query", e.ID)
			}
			if seen[e.ID] {
				t.Fatalf("duplicate sample %d", e.ID)
			}
			seen[e.ID] = true
		}
		emitted += n
		if n < len(buf) {
			break
		}
	}

	st := c.FaultStats()
	if st.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", st.Crashes)
	}
	if st.ShardsDown != 2 {
		t.Errorf("shards down = %d, want 2", st.ShardsDown)
	}
	lost, lostPop := s.Degradation()
	if lost != 2 || !s.Degraded() {
		t.Errorf("degradation reports %d lost shards, want 2", lost)
	}
	if lostPop <= 0 {
		t.Errorf("lost population = %d, want > 0", lostPop)
	}
	if emitted != initial-lostPop {
		t.Errorf("emitted %d samples, want initial %d - lost %d = %d",
			emitted, initial, lostPop, initial-lostPop)
	}
	// The same totals are visible on the metrics registry.
	snap := reg.Snapshot()
	if got := snap["storm.distr.faults.crashes"]; got != uint64(2) {
		t.Errorf("storm.distr.faults.crashes = %v, want 2", got)
	}
	if got := snap["storm.distr.faults.shards_down"]; got != int64(2) {
		t.Errorf("storm.distr.faults.shards_down = %v, want 2", got)
	}
}

// TestTransientFaultsRetryAndRecover checks the retry path bookkeeping:
// periodic transient faults are retried with backoff, every fetch
// eventually succeeds, and nothing is degraded.
func TestTransientFaultsRetryAndRecover(t *testing.T) {
	ds := faultTestData(4000)
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{ShardAll: {TransientEvery: 4}}}
	c, err := Build(ds, fastFaultConfig(4, 3, plan))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sampler(testQuery)
	got := drainBatched(s, []int{128})
	if len(got) != c.Count(testQuery) {
		t.Fatalf("drained %d of %d", len(got), c.Count(testQuery))
	}
	st := c.FaultStats()
	if st.Transient == 0 || st.Retries == 0 || st.Recoveries == 0 {
		t.Errorf("expected transient/retry/recovery activity, got %+v", st)
	}
	if st.Crashes != 0 || st.Exhausted != 0 || s.Degraded() {
		t.Errorf("recoverable faults must not degrade: %+v, degraded=%v", st, s.Degraded())
	}
	if st.Retries < st.Recoveries {
		t.Errorf("retries %d < recoveries %d", st.Retries, st.Recoveries)
	}
}

// TestRetryExhaustionDropsShard: a shard failing every attempt exhausts
// MaxRetries and is dropped from the query (query-local degradation) but
// is not counted as crashed — the shard server is still up.
func TestRetryExhaustionDropsShard(t *testing.T) {
	ds := faultTestData(4000)
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{1: {TransientEvery: 1}}}
	cfg := fastFaultConfig(4, 3, plan)
	cfg.MaxRetries = 2
	c, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sampler(testQuery)
	emitted := len(drainBatched(s, []int{64}))
	st := c.FaultStats()
	if st.Exhausted == 0 {
		t.Error("expected exhausted fetches")
	}
	if st.Crashes != 0 || st.ShardsDown != 0 {
		t.Errorf("retry exhaustion must not count as a crash: %+v", st)
	}
	lost, lostPop := s.Degradation()
	if lost != 1 || lostPop <= 0 {
		t.Errorf("degradation = (%d, %d), want shard 1 dropped", lost, lostPop)
	}
	if emitted != c.Count(testQuery)-lostPop {
		t.Errorf("emitted %d, want %d", emitted, c.Count(testQuery)-lostPop)
	}
}

// TestLatencyFaults: spikes below the per-fetch deadline delay the fetch
// but succeed (counted as latency injections); spikes at or beyond the
// deadline surface as timeouts and are retried.
func TestLatencyFaults(t *testing.T) {
	ds := faultTestData(3000)

	// Small spike: succeeds, stream byte-identical to a healthy run.
	slow := &FaultPlan{Shards: map[int]ShardFaultPlan{ShardAll: {LatencyEvery: 2, Latency: 50 * time.Microsecond}}}
	a, err := Build(ds, fastFaultConfig(3, 9, slow))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, fastFaultConfig(3, 9, nil))
	if err != nil {
		t.Fatal(err)
	}
	assertSameEntries(t, drainBatched(b.Sampler(testQuery), []int{64}),
		drainBatched(a.Sampler(testQuery), []int{64}), "latency plan")
	if st := a.FaultStats(); st.Latency == 0 || st.Timeouts != 0 {
		t.Errorf("expected pure latency injections, got %+v", st)
	}

	// Spike beyond the deadline: timeout, retried; the retry draws a fresh
	// verdict, so alternating spikes still finish the stream.
	deadline := &FaultPlan{Shards: map[int]ShardFaultPlan{ShardAll: {LatencyEvery: 2, Latency: 10 * time.Millisecond}}}
	cfg := fastFaultConfig(3, 9, deadline)
	cfg.FetchTimeout = time.Millisecond
	d, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := len(drainBatched(d.Sampler(testQuery), []int{64}))
	if got != d.Count(testQuery) {
		t.Fatalf("drained %d of %d", got, d.Count(testQuery))
	}
	if st := d.FaultStats(); st.Timeouts == 0 || st.Retries == 0 {
		t.Errorf("expected timeout/retry activity, got %+v", st)
	}
}

// TestCrashedShardExcludedAfterwards: crashes are cluster state. A query
// that starts after the crash sees the surviving population from its count
// round on and is NOT degraded — nothing was lost mid-query.
func TestCrashedShardExcludedAfterwards(t *testing.T) {
	ds := faultTestData(6000)
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{0: {Crash: true, CrashAfterFetches: 0}}}
	c, err := Build(ds, fastFaultConfig(4, 5, plan))
	if err != nil {
		t.Fatal(err)
	}
	before := c.Count(testQuery)
	first := c.Sampler(testQuery)
	drainBatched(first, []int{64}) // triggers the crash mid-query
	if !first.Degraded() {
		t.Fatal("first query should be degraded")
	}
	_, lostPop := first.Degradation()

	after := c.Count(testQuery)
	if after != before-lostPop {
		t.Errorf("post-crash count = %d, want %d - %d", after, before, lostPop)
	}
	second := c.Sampler(testQuery)
	emitted := len(drainBatched(second, []int{64}))
	if second.Degraded() {
		t.Error("a query started after the crash is not degraded")
	}
	if emitted != after {
		t.Errorf("second query drained %d, want surviving %d", emitted, after)
	}
}

// TestDegradedFirstSampleUniformOverSurvivors: after a crash the draw
// distribution re-weights onto the surviving shards. The first sample
// emitted after the crash must be uniform over the surviving matching
// records (chi-square over many independent seeds).
func TestDegradedFirstSampleUniformOverSurvivors(t *testing.T) {
	ds := faultTestData(400)
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{1: {Crash: true, CrashAfterFetches: 0}}}
	ref, err := Build(ds, fastFaultConfig(4, 1, plan))
	if err != nil {
		t.Fatal(err)
	}
	survivors := make(map[data.ID]bool)
	for i, sh := range ref.Shards() {
		if i == 1 {
			continue
		}
		for _, e := range sh.Index().Tree().ReportAll(testQuery) {
			survivors[e.ID] = true
		}
	}
	q := len(survivors)
	if q < 20 {
		t.Fatalf("degenerate fixture q=%d", q)
	}
	counts := make(map[data.ID]int)
	const trials = 6000
	for i := 0; i < trials; i++ {
		c, err := Build(ds, fastFaultConfig(4, int64(i), plan))
		if err != nil {
			t.Fatal(err)
		}
		s := c.Sampler(testQuery)
		e, ok := s.Next()
		if !ok {
			t.Fatal("no sample")
		}
		if !survivors[e.ID] {
			t.Fatalf("sample %d came from the crashed shard", e.ID)
		}
		counts[e.ID]++
	}
	obsCounts := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range survivors {
		obsCounts = append(obsCounts, counts[id])
		exp = append(exp, float64(trials)/float64(q))
	}
	stat := stats.ChiSquareStat(obsCounts, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("degraded first-sample chi-square %v > crit %v", stat, crit)
	}
}

// TestDegradedEstimateCoversSurvivingMean is the coverage acceptance test:
// across many seeds, a 95% CI produced by a query that loses 2 of 8 shards
// mid-query must cover the surviving-population mean at roughly the
// nominal rate. The crashed shards die on their first fetch attempt, so
// the stream is exactly uniform without replacement over the survivors.
func TestDegradedEstimateCoversSurvivingMean(t *testing.T) {
	ds := faultTestData(6000)
	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 0},
		5: {Crash: true, CrashAfterFetches: 0},
	}}
	ref, err := Build(ds, fastFaultConfig(8, 1, plan))
	if err != nil {
		t.Fatal(err)
	}
	truth, surviving := survivingTruth(ref, ds, testQuery, map[int]bool{2: true, 5: true})
	if surviving < 200 {
		t.Fatalf("degenerate fixture: %d surviving matches", surviving)
	}

	const trials = 100
	covered := 0
	for i := 0; i < trials; i++ {
		c, err := Build(ds, fastFaultConfig(8, int64(100+i), plan))
		if err != nil {
			t.Fatal(err)
		}
		est, err := c.EstimateAvg(testQuery, "value", 300, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Population != surviving {
			t.Fatalf("effective population = %d, want surviving %d", est.Population, surviving)
		}
		if math.Abs(est.Value-truth) <= est.HalfWidth {
			covered++
		}
	}
	// Bin(100, 0.95) has sd ≈ 2.2; 86 is more than 4σ below the nominal
	// coverage, so a correct implementation essentially never fails while
	// a biased or over-narrow one reliably does.
	if covered < 86 {
		t.Errorf("95%% CI covered the surviving mean in %d/%d trials", covered, trials)
	}
}

// TestFaultPlanDeterminism: the same plan seed replays the same injected
// fault sequence for an identical workload.
func TestFaultPlanDeterminism(t *testing.T) {
	ds := faultTestData(4000)
	mk := func() FaultStats {
		plan := &FaultPlan{
			Seed:   42,
			Shards: map[int]ShardFaultPlan{ShardAll: {TransientProb: 0.2, LatencyProb: 0.1, Latency: 10 * time.Microsecond}},
		}
		c, err := Build(ds, fastFaultConfig(4, 9, plan))
		if err != nil {
			t.Fatal(err)
		}
		drainBatched(c.Sampler(testQuery), []int{64})
		return c.FaultStats()
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("fault stats diverge across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Injected == 0 {
		t.Error("probabilistic plan injected nothing")
	}
}

// TestParseFaultPlan exercises the operator-facing plan syntax.
func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("1:crash-after=40;3-4:transient-every=7,latency=2ms;*:latency-p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p := plan.Shards[1]; !p.Crash || p.CrashAfterFetches != 40 {
		t.Errorf("shard 1 plan = %+v", p)
	}
	for _, id := range []int{3, 4} {
		if p := plan.Shards[id]; p.TransientEvery != 7 || p.Latency != 2*time.Millisecond {
			t.Errorf("shard %d plan = %+v", id, p)
		}
	}
	if p := plan.Shards[ShardAll]; p.LatencyProb != 0.05 {
		t.Errorf("wildcard plan = %+v", p)
	}
	// The wildcard fills shards without explicit entries; explicit entries win.
	if got := plan.planFor(7); got.LatencyProb != 0.05 {
		t.Errorf("planFor(7) = %+v", got)
	}
	if got := plan.planFor(1); !got.Crash || got.LatencyProb != 0 {
		t.Errorf("planFor(1) = %+v", got)
	}

	if p, err := ParseFaultPlan("  "); err != nil || p != nil {
		t.Errorf("blank spec: plan=%v err=%v", p, err)
	}
	for _, bad := range []string{
		"nonsense",
		"1:bogus=3",
		"x:crash-after=1",
		"1:crash-after=-2",
		"1:transient-p=1.5",
		"5-2:latency=1ms",
		"1:latency=xyz",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

// TestSharedRegistryAggregatesFaultTotals pins the multi-dataset server
// scenario: several clusters publish to one registry (stormd builds one
// cluster per sharded dataset). Registry.Publish overwrites duplicate
// names, so naive per-cluster Funcs would expose only the most recently
// built cluster; the scrape must instead sum across all of them — here a
// faulty cluster's crashes stay visible even though a healthy cluster was
// built afterwards.
func TestSharedRegistryAggregatesFaultTotals(t *testing.T) {
	ds := faultTestData(8000)
	reg := obs.NewRegistry()

	plan := &FaultPlan{Shards: map[int]ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1},
		5: {Crash: true, CrashAfterFetches: 1},
	}}
	cfg := fastFaultConfig(8, 5, plan)
	cfg.Obs = reg
	faulty, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	healthyCfg := fastFaultConfig(4, 9, nil)
	healthyCfg.Obs = reg
	if _, err := Build(faultTestData(2000), healthyCfg); err != nil {
		t.Fatal(err)
	}

	// Drive the faulty cluster past both crash thresholds.
	s := faulty.Sampler(testQuery)
	buf := make([]data.Entry, 96)
	for s.NextBatch(buf, len(buf)) == len(buf) {
	}
	if st := faulty.FaultStats(); st.Crashes != 2 {
		t.Fatalf("cluster crashes = %d, want 2", st.Crashes)
	}

	snap := reg.Snapshot()
	if got := snap["storm.distr.faults.crashes"]; got != uint64(2) {
		t.Errorf("registry crashes = %v, want 2 despite healthy cluster registering later", got)
	}
	if got := snap["storm.distr.faults.shards_down"]; got != int64(2) {
		t.Errorf("registry shards_down = %v, want 2", got)
	}
	if got := snap["storm.distr.shards"]; got != 12 {
		t.Errorf("registry shards = %v, want 12 (8 faulty + 4 healthy)", got)
	}
}
