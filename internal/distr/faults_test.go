package distr_test

import (
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/obs"
	"storm/internal/stats/statcheck"
)

// TestNilAndEmptyPlansAreByteIdentical pins the regression contract: a
// cluster with no fault plan, one with an empty plan, one whose plan only
// injects recoverable transient faults, and one whose every crash
// recovers within the retry budget all emit the byte-identical batched
// sample stream — and the healthy and recovering clusters agree on the
// final estimate too. Recoverable faults are retried against the same
// deterministic shard stream, so recovery reproduces the same data.
func TestNilAndEmptyPlansAreByteIdentical(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	build := func(plan *distr.FaultPlan) *distr.Cluster {
		return distrtest.Build(t, ds, distrtest.FastConfig(5, 7, plan))
	}
	recovering := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		1: {Crash: true, CrashAfterFetches: 0, RecoverAfter: 2},
		3: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 1},
	}}

	base := distrtest.DrainBatched(build(nil).Sampler(q), []int{64})
	empty := distrtest.DrainBatched(build(&distr.FaultPlan{}).Sampler(q), []int{64})
	transient := distrtest.DrainBatched(build(&distr.FaultPlan{
		Shards: map[int]distr.ShardFaultPlan{distr.ShardAll: {TransientEvery: 3}},
	}).Sampler(q), []int{64})
	recCluster := build(recovering)
	recovered := distrtest.DrainBatched(recCluster.Sampler(q), []int{64})
	distrtest.SameEntries(t, base, empty, "empty plan")
	distrtest.SameEntries(t, base, transient, "recovered transient plan")
	distrtest.SameEntries(t, base, recovered, "crash recovered within retry budget")
	if st := recCluster.FaultStats(); st.Crashes != 2 || st.Readmits != 2 || st.ShardsDown != 0 {
		t.Errorf("expected 2 crash→readmit cycles with no shards left down, got %+v", st)
	}

	// Crashes that recover inside the retry budget never degrade the query,
	// so the final estimate matches a fault-free run exactly.
	healthy := build(nil)
	rec := build(recovering)
	wantEst, err := healthy.EstimateAvg(q, "value", 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := rec.EstimateAvg(q, "value", 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if wantEst != gotEst {
		t.Errorf("recovering plan changed the estimate:\nhealthy %+v\nrecover %+v", wantEst, gotEst)
	}
	if st := rec.FaultStats(); st.ShardsDown != 0 || st.Crashes != st.Readmits {
		t.Errorf("every crash should have recovered within its fetch retries, got %+v", st)
	}
}

// TestCrashMidQueryDegradesGracefully is the acceptance scenario: 2 of 8
// shards crash mid-query; the coordinator finishes without error, counts
// exactly two crashes under storm.distr.faults.*, re-weights onto the
// survivors, and reports the lost population through Degradation.
func TestCrashMidQueryDegradesGracefully(t *testing.T) {
	ds := distrtest.Dataset(8000)
	q := distrtest.Query()
	reg := obs.NewRegistry()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1},
		5: {Crash: true, CrashAfterFetches: 1},
	}}
	cfg := distrtest.FastConfig(8, 5, plan)
	cfg.Obs = reg
	c := distrtest.Build(t, ds, cfg)
	s := c.Sampler(q)
	initial := c.Count(q)

	seen := make(map[data.ID]bool)
	buf := make([]data.Entry, 96)
	emitted := 0
	for {
		n := s.NextBatch(buf, len(buf))
		for _, e := range buf[:n] {
			if !q.Contains(e.Pos) {
				t.Fatalf("sample %d outside query", e.ID)
			}
			if seen[e.ID] {
				t.Fatalf("duplicate sample %d", e.ID)
			}
			seen[e.ID] = true
		}
		emitted += n
		if n < len(buf) {
			break
		}
	}

	st := c.FaultStats()
	if st.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", st.Crashes)
	}
	if st.ShardsDown != 2 {
		t.Errorf("shards down = %d, want 2", st.ShardsDown)
	}
	lost, lostPop := s.Degradation()
	if lost != 2 || !s.Degraded() {
		t.Errorf("degradation reports %d lost shards, want 2", lost)
	}
	if lostPop <= 0 {
		t.Errorf("lost population = %d, want > 0", lostPop)
	}
	if emitted != initial-lostPop {
		t.Errorf("emitted %d samples, want initial %d - lost %d = %d",
			emitted, initial, lostPop, initial-lostPop)
	}
	// The same totals are visible on the metrics registry.
	snap := reg.Snapshot()
	if got := snap["storm.distr.faults.crashes"]; got != uint64(2) {
		t.Errorf("storm.distr.faults.crashes = %v, want 2", got)
	}
	if got := snap["storm.distr.faults.shards_down"]; got != int64(2) {
		t.Errorf("storm.distr.faults.shards_down = %v, want 2", got)
	}
}

// TestTransientFaultsRetryAndRecover checks the retry path bookkeeping:
// periodic transient faults are retried with backoff, every fetch
// eventually succeeds, and nothing is degraded.
func TestTransientFaultsRetryAndRecover(t *testing.T) {
	ds := distrtest.Dataset(4000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{distr.ShardAll: {TransientEvery: 4}}}
	c := distrtest.Build(t, ds, distrtest.FastConfig(4, 3, plan))
	s := c.Sampler(q)
	got := distrtest.DrainBatched(s, []int{128})
	if len(got) != c.Count(q) {
		t.Fatalf("drained %d of %d", len(got), c.Count(q))
	}
	st := c.FaultStats()
	if st.Transient == 0 || st.Retries == 0 || st.Recoveries == 0 {
		t.Errorf("expected transient/retry/recovery activity, got %+v", st)
	}
	if st.Crashes != 0 || st.Exhausted != 0 || s.Degraded() {
		t.Errorf("recoverable faults must not degrade: %+v, degraded=%v", st, s.Degraded())
	}
	if st.Retries < st.Recoveries {
		t.Errorf("retries %d < recoveries %d", st.Retries, st.Recoveries)
	}
}

// TestRetryExhaustionDropsShard: a shard failing every attempt exhausts
// MaxRetries and is dropped from the query (query-local degradation) but
// is not counted as crashed — the shard server is still up.
func TestRetryExhaustionDropsShard(t *testing.T) {
	ds := distrtest.Dataset(4000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{1: {TransientEvery: 1}}}
	cfg := distrtest.FastConfig(4, 3, plan)
	cfg.MaxRetries = 2
	c := distrtest.Build(t, ds, cfg)
	s := c.Sampler(q)
	emitted := len(distrtest.DrainBatched(s, []int{64}))
	st := c.FaultStats()
	if st.Exhausted == 0 {
		t.Error("expected exhausted fetches")
	}
	if st.Crashes != 0 || st.ShardsDown != 0 {
		t.Errorf("retry exhaustion must not count as a crash: %+v", st)
	}
	lost, lostPop := s.Degradation()
	if lost != 1 || lostPop <= 0 {
		t.Errorf("degradation = (%d, %d), want shard 1 dropped", lost, lostPop)
	}
	if emitted != c.Count(q)-lostPop {
		t.Errorf("emitted %d, want %d", emitted, c.Count(q)-lostPop)
	}
}

// TestLatencyFaults: spikes below the per-fetch deadline delay the fetch
// but succeed (counted as latency injections); spikes at or beyond the
// deadline surface as timeouts and are retried.
func TestLatencyFaults(t *testing.T) {
	ds := distrtest.Dataset(3000)
	q := distrtest.Query()

	// Small spike: succeeds, stream byte-identical to a healthy run.
	slow := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{distr.ShardAll: {LatencyEvery: 2, Latency: 50 * time.Microsecond}}}
	a := distrtest.Build(t, ds, distrtest.FastConfig(3, 9, slow))
	b := distrtest.Build(t, ds, distrtest.FastConfig(3, 9, nil))
	distrtest.SameEntries(t, distrtest.DrainBatched(b.Sampler(q), []int{64}),
		distrtest.DrainBatched(a.Sampler(q), []int{64}), "latency plan")
	if st := a.FaultStats(); st.Latency == 0 || st.Timeouts != 0 {
		t.Errorf("expected pure latency injections, got %+v", st)
	}

	// Spike beyond the deadline: timeout, retried; the retry draws a fresh
	// verdict, so alternating spikes still finish the stream.
	deadline := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{distr.ShardAll: {LatencyEvery: 2, Latency: 10 * time.Millisecond}}}
	cfg := distrtest.FastConfig(3, 9, deadline)
	cfg.FetchTimeout = time.Millisecond
	d := distrtest.Build(t, ds, cfg)
	got := len(distrtest.DrainBatched(d.Sampler(q), []int{64}))
	if got != d.Count(q) {
		t.Fatalf("drained %d of %d", got, d.Count(q))
	}
	if st := d.FaultStats(); st.Timeouts == 0 || st.Retries == 0 {
		t.Errorf("expected timeout/retry activity, got %+v", st)
	}
}

// TestCrashedShardExcludedAfterwards: crashes are cluster state. A query
// that starts after the crash sees the surviving population from its count
// round on and is NOT degraded — nothing was lost mid-query.
func TestCrashedShardExcludedAfterwards(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{0: {Crash: true, CrashAfterFetches: 0}}}
	c := distrtest.Build(t, ds, distrtest.FastConfig(4, 5, plan))
	before := c.Count(q)
	first := c.Sampler(q)
	distrtest.DrainBatched(first, []int{64}) // triggers the crash mid-query
	if !first.Degraded() {
		t.Fatal("first query should be degraded")
	}
	_, lostPop := first.Degradation()

	after := c.Count(q)
	if after != before-lostPop {
		t.Errorf("post-crash count = %d, want %d - %d", after, before, lostPop)
	}
	second := c.Sampler(q)
	emitted := len(distrtest.DrainBatched(second, []int{64}))
	if second.Degraded() {
		t.Error("a query started after the crash is not degraded")
	}
	if emitted != after {
		t.Errorf("second query drained %d, want surviving %d", emitted, after)
	}
}

// TestStatDegradedFirstSampleUniform: after a crash the draw distribution
// re-weights onto the surviving shards. The first sample emitted after the
// crash must be uniform over the surviving matching records — a chi-square
// check over many independent seeds, run through the statcheck harness at
// its documented false-positive budget.
func TestStatDegradedFirstSampleUniform(t *testing.T) {
	ds := distrtest.Dataset(400)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{1: {Crash: true, CrashAfterFetches: 0}}}
	ref := distrtest.Build(t, ds, distrtest.FastConfig(4, 1, plan))
	survivors := make(map[data.ID]bool)
	for i, sh := range ref.Shards() {
		if i == 1 {
			continue
		}
		for _, e := range sh.Index().Tree().ReportAll(q) {
			survivors[e.ID] = true
		}
	}
	nq := len(survivors)
	if nq < 20 {
		t.Fatalf("degenerate fixture q=%d", nq)
	}
	counts := make(map[data.ID]int)
	const trials = 6000
	for i := 0; i < trials; i++ {
		c := distrtest.Build(t, ds, distrtest.FastConfig(4, int64(i), plan))
		s := c.Sampler(q)
		e, ok := s.Next()
		if !ok {
			t.Fatal("no sample")
		}
		if !survivors[e.ID] {
			t.Fatalf("sample %d came from the crashed shard", e.ID)
		}
		counts[e.ID]++
	}
	obsCounts := make([]int, 0, nq)
	for id := range survivors {
		obsCounts = append(obsCounts, counts[id])
	}
	statcheck.Uniform(t, "degraded-first-sample", obsCounts, statcheck.DefaultAlpha)
}

// TestStatDegradedEstimateCoversSurvivingMean is the coverage acceptance
// test: across many seeds, a 95% CI produced by a query that loses 2 of 8
// shards mid-query must cover the surviving-population mean at the nominal
// rate, checked by statcheck.Coverage. The crashed shards die on their
// first fetch attempt, so the stream is exactly uniform without
// replacement over the survivors; the 3% slack absorbs the
// t-approximation at 300 samples.
func TestStatDegradedEstimateCoversSurvivingMean(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 0},
		5: {Crash: true, CrashAfterFetches: 0},
	}}
	ref := distrtest.Build(t, ds, distrtest.FastConfig(8, 1, plan))
	truth, surviving := distrtest.SurvivingTruth(ref, ds, q, map[int]bool{2: true, 5: true})
	if surviving < 200 {
		t.Fatalf("degenerate fixture: %d surviving matches", surviving)
	}

	seeds := statcheck.Seeds(100, 100)
	intervals := make([]statcheck.Interval, 0, len(seeds))
	for _, seed := range seeds {
		c := distrtest.Build(t, ds, distrtest.FastConfig(8, seed, plan))
		est, err := c.EstimateAvg(q, "value", 300, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Population != surviving {
			t.Fatalf("effective population = %d, want surviving %d", est.Population, surviving)
		}
		intervals = append(intervals, statcheck.IntervalAround(est.Value, est.HalfWidth))
	}
	statcheck.Coverage(t, "degraded-ci", truth, intervals, 0.95, 0.03, statcheck.DefaultAlpha)
}

// TestFaultPlanDeterminism: the same plan seed replays the same injected
// fault sequence for an identical workload.
func TestFaultPlanDeterminism(t *testing.T) {
	ds := distrtest.Dataset(4000)
	q := distrtest.Query()
	mk := func() distr.FaultStats {
		plan := &distr.FaultPlan{
			Seed:   42,
			Shards: map[int]distr.ShardFaultPlan{distr.ShardAll: {TransientProb: 0.2, LatencyProb: 0.1, Latency: 10 * time.Microsecond}},
		}
		c := distrtest.Build(t, ds, distrtest.FastConfig(4, 9, plan))
		distrtest.DrainBatched(c.Sampler(q), []int{64})
		return c.FaultStats()
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("fault stats diverge across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Injected == 0 {
		t.Error("probabilistic plan injected nothing")
	}
}

// TestParseFaultPlan exercises the operator-facing plan syntax.
func TestParseFaultPlan(t *testing.T) {
	plan, err := distr.ParseFaultPlan("1:crash-after=40,recover-after=6;3-4:transient-every=7,latency=2ms;*:latency-p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p := plan.Shards[1]; !p.Crash || p.CrashAfterFetches != 40 || p.RecoverAfter != 6 {
		t.Errorf("shard 1 plan = %+v", p)
	}
	for _, id := range []int{3, 4} {
		if p := plan.Shards[id]; p.TransientEvery != 7 || p.Latency != 2*time.Millisecond {
			t.Errorf("shard %d plan = %+v", id, p)
		}
	}
	if p := plan.Shards[distr.ShardAll]; p.LatencyProb != 0.05 {
		t.Errorf("wildcard plan = %+v", p)
	}
	// The wildcard fills shards without explicit entries; explicit entries win.
	if got := plan.PlanFor(7); got.LatencyProb != 0.05 {
		t.Errorf("PlanFor(7) = %+v", got)
	}
	if got := plan.PlanFor(1); !got.Crash || got.LatencyProb != 0 {
		t.Errorf("PlanFor(1) = %+v", got)
	}

	if p, err := distr.ParseFaultPlan("  "); err != nil || p != nil {
		t.Errorf("blank spec: plan=%v err=%v", p, err)
	}
	for _, bad := range []string{
		"nonsense",
		"1:bogus=3",
		"x:crash-after=1",
		"1:crash-after=-2",
		"1:recover-after=-1",
		"1:transient-p=1.5",
		"5-2:latency=1ms",
		"1:latency=xyz",
	} {
		if _, err := distr.ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

// TestFaultPlanString pins the canonical serialization: String emits a
// spec that parses back to an identical plan, and parsing any valid spec
// then re-serializing reaches a fixpoint (the property the fuzz target
// checks at scale).
func TestFaultPlanString(t *testing.T) {
	if s := (*distr.FaultPlan)(nil).String(); s != "" {
		t.Errorf("nil plan serializes to %q, want empty", s)
	}
	for _, spec := range []string{
		"1:crash-after=40,recover-after=6;3-4:transient-every=7,latency=2ms;*:latency-p=0.05",
		"*:transient-p=0.25",
		"0:crash-after=0;2:timeout-every=3",
	} {
		plan, err := distr.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		canon := plan.String()
		replan, err := distr.ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", canon, spec, err)
		}
		if again := replan.String(); again != canon {
			t.Errorf("String not a fixpoint: %q -> %q -> %q", spec, canon, again)
		}
	}
}

// TestSharedRegistryAggregatesFaultTotals pins the multi-dataset server
// scenario: several clusters publish to one registry (stormd builds one
// cluster per sharded dataset). Registry.Publish overwrites duplicate
// names, so naive per-cluster Funcs would expose only the most recently
// built cluster; the scrape must instead sum across all of them — here a
// faulty cluster's crashes stay visible even though a healthy cluster was
// built afterwards.
func TestSharedRegistryAggregatesFaultTotals(t *testing.T) {
	ds := distrtest.Dataset(8000)
	q := distrtest.Query()
	reg := obs.NewRegistry()

	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		2: {Crash: true, CrashAfterFetches: 1},
		5: {Crash: true, CrashAfterFetches: 1},
	}}
	cfg := distrtest.FastConfig(8, 5, plan)
	cfg.Obs = reg
	faulty := distrtest.Build(t, ds, cfg)

	healthyCfg := distrtest.FastConfig(4, 9, nil)
	healthyCfg.Obs = reg
	distrtest.Build(t, distrtest.Dataset(2000), healthyCfg)

	// Drive the faulty cluster past both crash thresholds.
	s := faulty.Sampler(q)
	buf := make([]data.Entry, 96)
	for s.NextBatch(buf, len(buf)) == len(buf) {
	}
	if st := faulty.FaultStats(); st.Crashes != 2 {
		t.Fatalf("cluster crashes = %d, want 2", st.Crashes)
	}

	snap := reg.Snapshot()
	if got := snap["storm.distr.faults.crashes"]; got != uint64(2) {
		t.Errorf("registry crashes = %v, want 2 despite healthy cluster registering later", got)
	}
	if got := snap["storm.distr.faults.shards_down"]; got != int64(2) {
		t.Errorf("registry shards_down = %v, want 2", got)
	}
	if got := snap["storm.distr.shards"]; got != 12 {
		t.Errorf("registry shards = %v, want 12 (8 faulty + 4 healthy)", got)
	}
}
