// Host is the shard-server request handler: it owns the shard backends
// of one stormd -role=shard process and implements wire.Handler, so the
// same struct serves a wire.Server over TCP and a wire.Loopback in
// transport tests. Shard state is built on demand — the coordinator's
// Build request names a (dataset, shard, of) triple, and the host
// partitions its local copy of the dataset exactly as the coordinator
// would (partition is deterministic), so only sample batches ever cross
// the wire, never shard contents.
package distr

import (
	"fmt"
	"sort"
	"sync"

	"storm/internal/data"
	"storm/internal/wire"
)

type hostKey struct {
	ds    string
	shard uint32
}

// Host serves shard requests for the datasets it holds.
type Host struct {
	// mu guards the maps; dsMu serializes dataset row appends (mirrored
	// inserts) against the exclude-filtering reads in stream opens.
	mu       sync.Mutex
	dsMu     sync.RWMutex
	datasets map[string]*data.Dataset
	backends map[hostKey]*shardBackend
}

// NewHost returns an empty host; add datasets before serving.
func NewHost() *Host {
	return &Host{
		datasets: make(map[string]*data.Dataset),
		backends: make(map[hostKey]*shardBackend),
	}
}

// AddDataset registers a local dataset copy under its name. Shard hosts
// regenerate datasets from the same generator flags and seed as the
// coordinator, so both sides hold identical rows without shipping them.
func (h *Host) AddDataset(ds *data.Dataset) {
	h.mu.Lock()
	h.datasets[ds.Name()] = ds
	h.mu.Unlock()
}

// Shards returns how many shard backends the host currently serves.
func (h *Host) Shards() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.backends)
}

// backend resolves a shard-scoped request's target.
func (h *Host) backend(t wire.Target) *shardBackend {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.backends[hostKey{ds: t.DS, shard: t.Shard}]
}

func errUnknownShard(t wire.Target) wire.Msg {
	return &wire.Error{Code: wire.ErrCodeUnknownShard, Msg: fmt.Sprintf("shard %d of dataset %q not built on this host", t.Shard, t.DS)}
}

// Handle implements wire.Handler: it dispatches one request and returns
// its response (an *wire.Error for failures — transports carry it back
// like any other message).
func (h *Host) Handle(m wire.Msg) wire.Msg {
	switch req := m.(type) {
	case *wire.Ping:
		return &wire.Pong{Shards: uint32(h.Shards())}

	case *wire.Build:
		return h.handleBuild(req)

	case *wire.Count:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		n, err := b.count(req.Query, req.Where, req.Window)
		if err != nil {
			return &wire.Error{Code: wire.ErrCodeBadRequest, Msg: fmt.Sprintf("count predicate: %v", err)}
		}
		return &wire.CountOK{N: uint64(n)}

	case *wire.Open:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		h.dsMu.RLock()
		n, err := b.open(req.Stream, req.Query, req.Seed, req.Exclude, req.Where, req.Window)
		h.dsMu.RUnlock()
		if err != nil {
			return &wire.Error{Code: wire.ErrCodeBadRequest, Msg: fmt.Sprintf("open predicate: %v", err)}
		}
		return &wire.OpenOK{N: uint64(n)}

	case *wire.Fetch:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		ents, err := b.fetchScratch(req.Stream, int(req.N))
		if err != nil {
			return &wire.Error{Code: wire.ErrCodeUnknownStream, Msg: fmt.Sprintf("stream %d not open on shard %d of %q", req.Stream, req.Shard, req.DS)}
		}
		return &wire.Entries{Entries: ents}

	case *wire.Close:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		b.closeStream(req.Stream)
		return &wire.CloseOK{}

	case *wire.Insert:
		return h.handleInsert(req)

	case *wire.Delete:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		return &wire.DeleteOK{Found: b.delete(data.Entry{ID: req.ID, Pos: req.Pos})}

	case *wire.Summary:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		s, found := b.summary(req.Attr)
		return &wire.SummaryOK{
			Found:     found,
			Count:     uint64(s.Count),
			Sum:       s.Sum,
			Min:       s.Min,
			Max:       s.Max,
			NonFinite: uint64(s.NonFinite),
		}

	case *wire.Bounds:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		return &wire.BoundsOK{Rect: b.bounds()}

	case *wire.Len:
		b := h.backend(req.Target)
		if b == nil {
			return errUnknownShard(req.Target)
		}
		return &wire.LenOK{N: uint64(b.length())}

	default:
		return &wire.Error{Code: wire.ErrCodeBadRequest, Msg: fmt.Sprintf("unexpected request kind %v", m.WireKind())}
	}
}

// handleBuild materializes one shard of a local dataset. Rebuilding an
// already-built shard is idempotent (the coordinator re-issues Build
// after an unknown-shard error, e.g. when this process restarted); the
// existing backend — including any post-build inserts — answers.
func (h *Host) handleBuild(req *wire.Build) wire.Msg {
	h.mu.Lock()
	ds, ok := h.datasets[req.DS]
	if !ok {
		h.mu.Unlock()
		return &wire.Error{Code: wire.ErrCodeUnknownDataset, Msg: fmt.Sprintf("dataset %q not on this host", req.DS)}
	}
	if b, built := h.backends[hostKey{ds: req.DS, shard: req.Shard}]; built {
		h.mu.Unlock()
		return &wire.BuildOK{Count: uint64(b.length())}
	}
	h.mu.Unlock()

	if req.Of < 1 || req.Shard >= req.Of {
		return &wire.Error{Code: wire.ErrCodeBadRequest, Msg: fmt.Sprintf("shard %d of %d out of range", req.Shard, req.Of)}
	}
	cfg := Config{
		Shards:          int(req.Of),
		Fanout:          int(req.Fanout),
		Seed:            req.Seed,
		BufferPoolPages: int(req.PoolPages),
	}
	parts, bounds, err := partition(ds, cfg.Shards)
	if err != nil {
		return &wire.Error{Code: wire.ErrCodeGeneric, Msg: err.Error()}
	}
	sh, err := buildShard(ds, parts[req.Shard], int(req.Shard), bounds, cfg)
	if err != nil {
		return &wire.Error{Code: wire.ErrCodeGeneric, Msg: err.Error()}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	key := hostKey{ds: req.DS, shard: req.Shard}
	if b, built := h.backends[key]; built {
		// A concurrent Build for the same shard won the race; answer from
		// the established backend so streams opened on it stay valid.
		return &wire.BuildOK{Count: uint64(b.length())}
	}
	b := newShardBackend(sh, ds)
	h.backends[key] = b
	return &wire.BuildOK{Count: uint64(b.length())}
}

// handleInsert mirrors one inserted record into the owning shard's index
// and appends the row (with its attributes) to the host's dataset copy so
// record IDs keep addressing the attribute columns. Inserts routed to
// shards on other hosts leave gaps here; those IDs are padded with
// placeholder rows that no local shard ever references (the record is on
// no local index, so no stream can emit or exclude it).
func (h *Host) handleInsert(req *wire.Insert) wire.Msg {
	b := h.backend(req.Target)
	if b == nil {
		return errUnknownShard(req.Target)
	}
	h.dsMu.Lock()
	ds := b.ds
	if id := data.ID(ds.Len()); id <= req.ID {
		for ; id < req.ID; id++ {
			ds.Append(data.Row{})
		}
		row := data.Row{Pos: req.Pos}
		if len(req.Num) > 0 {
			row.Num = make(map[string]float64, len(req.Num))
			for _, a := range req.Num {
				row.Num[a.Name] = a.Val
			}
		}
		if len(req.Str) > 0 {
			row.Str = make(map[string]string, len(req.Str))
			for _, a := range req.Str {
				row.Str[a.Name] = a.Val
			}
		}
		ds.Append(row)
	}
	h.dsMu.Unlock()
	b.insert(data.Entry{ID: req.ID, Pos: req.Pos})
	return &wire.InsertOK{}
}

// insertAttrs assembles the attribute payload of a mirrored insert from
// the coordinator's dataset columns, sorted by name so the encoding is
// canonical.
func insertAttrs(ds *data.Dataset, id data.ID) (num []wire.NumAttr, str []wire.StrAttr) {
	ncols := append([]string(nil), ds.NumericColumns()...)
	sort.Strings(ncols)
	for _, name := range ncols {
		col, err := ds.NumericColumn(name)
		if err != nil || id >= data.ID(len(col)) {
			continue
		}
		num = append(num, wire.NumAttr{Name: name, Val: col[id]})
	}
	scols := append([]string(nil), ds.StringColumns()...)
	sort.Strings(scols)
	for _, name := range scols {
		col, err := ds.StringColumn(name)
		if err != nil || id >= data.ID(len(col)) {
			continue
		}
		str = append(str, wire.StrAttr{Name: name, Val: col[id]})
	}
	return num, str
}
