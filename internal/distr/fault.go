// Fault injection and graceful degradation for the simulated cluster.
//
// A FaultPlan scripts, per shard, the failure modes a distributed STORM
// deployment sees in practice — latency spikes, transient fetch errors,
// request timeouts, and hard shard crashes — deterministically in a seed,
// so every robustness test replays bit-for-bit. Faults are injected at the
// ShardClient boundary by a transport decorator (faultClient): the
// coordinator's fetch path observes them exactly where a real coordinator
// observes remote failures, and the same plan drives the in-process
// loopback and a TCP cluster identically.
//
// The coordinator's contract under faults follows BlinkDB-style partial
// failure semantics: it never blocks a query on a lost shard. Transient
// faults and timeouts are retried with exponential backoff up to
// Config.MaxRetries; a crashed shard (or one whose retries are exhausted)
// is dropped from the query, the fetch distribution re-weights itself over
// the surviving shards (draws are proportional to per-shard remaining
// counts, so zeroing the lost shard's count is the re-weighting), and the
// lost population mass is reported through Sampler.Degradation so
// estimators shrink their effective N and keep confidence intervals honest
// over the surviving population instead of silently biasing.
//
// Crashes need not be permanent: a recover-after schedule brings the
// shard back once the coordinator has observed it down that many times,
// and the coordinator re-admits it — cluster-wide (shards_down clears,
// count rounds and routing see it again) and per query (an in-flight
// sampler restores the shard's stashed stream and matching count, so the
// draw distribution re-weights back over the full population and
// estimators re-grow their effective N). See Sampler.maybeReadmit and
// DESIGN.md §4.3.
//
// Every fault event is counted under storm.distr.faults.* when the cluster
// has an obs.Registry, and is always available via Cluster.FaultStats.
package distr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"storm/internal/data"
	"storm/internal/stats"
)

// FaultKind classifies one injected fault event.
type FaultKind int

// The injectable fault kinds, in escalating severity.
const (
	// FaultNone means the fetch proceeds normally.
	FaultNone FaultKind = iota
	// FaultLatency delays the fetch by the plan's Latency; a delay at or
	// beyond the per-fetch deadline is observed by the coordinator as a
	// timeout instead.
	FaultLatency
	// FaultTransient fails the fetch with a retryable error (a dropped
	// connection, a momentary shard overload).
	FaultTransient
	// FaultTimeout makes the fetch exceed the coordinator's per-fetch
	// deadline; retryable.
	FaultTimeout
	// FaultCrash marks the shard down. Without a RecoverAfter schedule the
	// crash is permanent and never retried; with one, the coordinator keeps
	// probing the shard (each probe advances the recovery clock) and
	// re-admits it once it comes back.
	FaultCrash
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultTransient:
		return "transient"
	case FaultTimeout:
		return "timeout"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ShardFaultPlan scripts the faults of one shard. The zero value is a
// healthy shard. Deterministic "every nth fetch attempt" counters and
// seeded per-attempt probabilities may be combined; when several fire on
// the same attempt the most severe wins (crash > timeout > transient >
// latency).
type ShardFaultPlan struct {
	// Crash permanently downs the shard once it has served
	// CrashAfterFetches successful fetches; CrashAfterFetches = 0 crashes
	// it on its first fetch attempt (mid-query: the shard still answers
	// the query's count/init round).
	Crash             bool
	CrashAfterFetches int

	// RecoverAfter, when > 0, brings a crashed shard back after the
	// coordinator has observed it down RecoverAfter times (fetch probes,
	// count rounds, routing checks — every coordinator contact with the
	// down shard advances the clock, so a cluster that keeps getting
	// queried is also the liveness prober). The crash→recover cycle runs
	// once per shard: a recovered shard does not crash again. 0 keeps
	// crashes permanent (the pre-recovery behavior).
	RecoverAfter int

	// TransientEvery fails every nth fetch attempt transiently (0
	// disables). TimeoutEvery and LatencyEvery are analogous.
	TransientEvery int
	TimeoutEvery   int
	LatencyEvery   int

	// TransientProb / TimeoutProb / LatencyProb inject the corresponding
	// fault on each attempt with the given probability, drawn from a
	// per-shard RNG seeded by the plan seed (deterministic per seed).
	TransientProb float64
	TimeoutProb   float64
	LatencyProb   float64

	// Latency is the delay injected by latency faults; 0 means
	// DefaultFaultLatency. Delays at or beyond the coordinator's
	// per-fetch deadline surface as timeouts.
	Latency time.Duration
}

// enabled reports whether the shard plan injects anything at all.
func (p ShardFaultPlan) enabled() bool {
	return p.Crash || p.TransientEvery > 0 || p.TimeoutEvery > 0 || p.LatencyEvery > 0 ||
		p.TransientProb > 0 || p.TimeoutProb > 0 || p.LatencyProb > 0
}

// FaultPlan is a deterministic cluster-wide fault schedule: one
// ShardFaultPlan per shard ID, plus a seed driving the probabilistic
// injections. A nil *FaultPlan (Config.Faults' default) disables injection
// entirely and leaves the fetch path byte-identical to a healthy cluster.
//
// With replication (Config.Replicas > 1) a plain shard script applies to
// every replica of that shard independently — each replica gets its own
// injector running the same script, so "crash shard 2" still crashes the
// whole shard and the pre-replication degradation suites behave
// identically at any R. Scripting a single replica (the failover
// scenarios) uses the Replicas map or the '<shard>.<replica>' spec target.
type FaultPlan struct {
	// Seed drives the probabilistic fault draws; per-shard RNGs are
	// derived from it so concurrent shards stay deterministic.
	Seed int64
	// Shards maps shard ID to that shard's script, applied to all of the
	// shard's replicas. IDs outside the cluster are ignored. ShardAll
	// applies to every shard.
	Shards map[int]ShardFaultPlan
	// Replicas scripts exactly one replica of a shard (Shard may be
	// ShardAll to hit replica Replica of every shard). A replica entry is
	// more specific than a plain shard entry and wins where both match;
	// see PlanForReplica for the full precedence.
	Replicas map[ReplicaTarget]ShardFaultPlan
}

// ReplicaTarget names one replica of one shard in FaultPlan.Replicas.
// Shard may be ShardAll; Replica is a non-negative replica index
// (replica 0 is the placement-primary copy).
type ReplicaTarget struct {
	Shard   int
	Replica int
}

// ShardAll is the FaultPlan.Shards key (and fault-plan spec target "*")
// that applies a script to every shard in the cluster.
const ShardAll = -1

// DefaultFaultLatency is the delay injected by latency faults when the
// shard plan leaves Latency zero.
const DefaultFaultLatency = time.Millisecond

// PlanFor resolves the effective plain script for one shard: an explicit
// per-shard entry wins over a ShardAll wildcard. Replica-scoped scripts
// are not consulted — they resolve through PlanForReplica, which layers
// them over this plain resolution.
func (p *FaultPlan) PlanFor(shard int) ShardFaultPlan {
	if p == nil {
		return ShardFaultPlan{}
	}
	if sp, ok := p.Shards[shard]; ok {
		return sp
	}
	return p.Shards[ShardAll]
}

// PlanForReplica resolves the effective script for one replica of one
// shard. Precedence is most-specific-first:
//
//	Replicas[{shard, r}]  >  Shards[shard]  >  Replicas[{ShardAll, r}]  >  Shards[ShardAll]
//
// so '2.1:crash-after=3' overrides a plain '2:' script for shard 2's
// replica 1 only, a plain '2:' script overrides a '*.1' wildcard for
// shard 2, and a plain '*' script is the fallback for everything. This is
// the single place replica precedence is decided, shared by the runtime
// injectors (newFaultStates) and tests asserting on parsed plans.
func (p *FaultPlan) PlanForReplica(shard, r int) ShardFaultPlan {
	if p == nil {
		return ShardFaultPlan{}
	}
	if sp, ok := p.Replicas[ReplicaTarget{Shard: shard, Replica: r}]; ok {
		return sp
	}
	if sp, ok := p.Shards[shard]; ok {
		return sp
	}
	if sp, ok := p.Replicas[ReplicaTarget{Shard: ShardAll, Replica: r}]; ok {
		return sp
	}
	return p.Shards[ShardAll]
}

// ParseFaultPlan parses the operator-facing fault-plan syntax used by
// stormd's -fault-plan flag:
//
//	plan    := segment (';' segment)*
//	segment := target ':' fault (',' fault)*
//	target  := <shard id> | <lo>-<hi> | '*'
//	         | <shard id> '.' <replica> | '*' '.' <replica>
//	fault   := crash-after=<n> | recover-after=<n>
//	         | transient-every=<n> | timeout-every=<n>
//	         | latency-every=<n> | latency=<duration>
//	         | transient-p=<f> | timeout-p=<f> | latency-p=<f>
//
// Example: "1:crash-after=40;3:crash-after=80,recover-after=20;*:latency-p=0.05,latency=2ms"
// crashes shards 1 and 3 after 40 and 80 fetches, brings shard 3 back
// after the coordinator has observed it down 20 times, and gives every
// shard a 5% chance of a 2ms latency spike per fetch. Set FaultPlan.Seed
// on the result to pin the probabilistic draws.
//
// A dotted target scripts one replica of a replicated shard (replica 0 is
// the placement primary): "2.0:crash-after=5" crashes only the primary
// copy of shard 2, which at Replicas >= 2 makes the coordinator fail over
// to a surviving replica instead of degrading. A plain target applies to
// all replicas of the shard; '2.0' and '2' stay distinct scripts (see
// PlanForReplica for precedence). Replica targets do not combine with
// <lo>-<hi> ranges.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{Shards: make(map[int]ShardFaultPlan)}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		target, faults, ok := strings.Cut(seg, ":")
		if !ok {
			return nil, fmt.Errorf("distr: fault plan segment %q missing ':'", seg)
		}
		ids, replica, err := parseFaultTarget(strings.TrimSpace(target))
		if err != nil {
			return nil, err
		}
		var sp ShardFaultPlan
		for _, f := range strings.Split(faults, ",") {
			if err := parseFaultSpec(strings.TrimSpace(f), &sp); err != nil {
				return nil, err
			}
		}
		for _, id := range ids {
			if replica >= 0 {
				if plan.Replicas == nil {
					plan.Replicas = make(map[ReplicaTarget]ShardFaultPlan)
				}
				rt := ReplicaTarget{Shard: id, Replica: replica}
				merged := plan.Replicas[rt]
				mergeShardFaults(&merged, sp)
				plan.Replicas[rt] = merged
				continue
			}
			merged := plan.Shards[id]
			mergeShardFaults(&merged, sp)
			plan.Shards[id] = merged
		}
	}
	return plan, nil
}

// String renders the plan back into the -fault-plan syntax in a canonical
// form: segments sorted by shard ID with the '*' wildcard first, each
// shard's plain all-replica segment before its replica-scoped segments
// (replicas ascending), fault specs in a fixed key order, and zero-valued
// scripts dropped. The output reparses to an equivalent plan, and
// String∘ParseFaultPlan is a fixpoint
// (Parse(p.String()).String() == p.String()), which the fuzz target
// relies on. The Seed is not part of the grammar (stormd carries it in
// -fault-seed) and is not rendered.
func (p *FaultPlan) String() string {
	if p == nil || (len(p.Shards) == 0 && len(p.Replicas) == 0) {
		return ""
	}
	idSet := make(map[int]struct{}, len(p.Shards)+len(p.Replicas))
	for id := range p.Shards {
		idSet[id] = struct{}{}
	}
	replicasOf := make(map[int][]int)
	for rt := range p.Replicas {
		idSet[rt.Shard] = struct{}{}
		replicasOf[rt.Shard] = append(replicasOf[rt.Shard], rt.Replica)
	}
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	segment := func(target string, specs []string) {
		if len(specs) == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(target)
		b.WriteByte(':')
		b.WriteString(strings.Join(specs, ","))
	}
	for _, id := range ids {
		target := strconv.Itoa(id)
		if id == ShardAll {
			target = "*"
		}
		segment(target, p.Shards[id].specs())
		reps := replicasOf[id]
		sort.Ints(reps)
		for _, r := range reps {
			segment(target+"."+strconv.Itoa(r), p.Replicas[ReplicaTarget{Shard: id, Replica: r}].specs())
		}
	}
	return b.String()
}

// specs renders one shard script as its fault specs, in canonical order;
// empty for a zero-valued (healthy) script.
func (p ShardFaultPlan) specs() []string {
	var out []string
	if p.Crash {
		out = append(out, "crash-after="+strconv.Itoa(p.CrashAfterFetches))
	}
	if p.RecoverAfter > 0 {
		out = append(out, "recover-after="+strconv.Itoa(p.RecoverAfter))
	}
	if p.TransientEvery > 0 {
		out = append(out, "transient-every="+strconv.Itoa(p.TransientEvery))
	}
	if p.TimeoutEvery > 0 {
		out = append(out, "timeout-every="+strconv.Itoa(p.TimeoutEvery))
	}
	if p.LatencyEvery > 0 {
		out = append(out, "latency-every="+strconv.Itoa(p.LatencyEvery))
	}
	if p.TransientProb > 0 {
		out = append(out, "transient-p="+strconv.FormatFloat(p.TransientProb, 'g', -1, 64))
	}
	if p.TimeoutProb > 0 {
		out = append(out, "timeout-p="+strconv.FormatFloat(p.TimeoutProb, 'g', -1, 64))
	}
	if p.LatencyProb > 0 {
		out = append(out, "latency-p="+strconv.FormatFloat(p.LatencyProb, 'g', -1, 64))
	}
	if p.Latency > 0 {
		out = append(out, "latency="+p.Latency.String())
	}
	return out
}

// parseFaultTarget resolves a segment target to shard IDs ('*' → ShardAll)
// plus the replica index of a dotted '<shard>.<replica>' target (-1 for a
// plain all-replica target). Ranges cannot be replica-scoped.
func parseFaultTarget(target string) (ids []int, replica int, err error) {
	replica = -1
	if shard, rep, dotted := strings.Cut(target, "."); dotted {
		r, errR := strconv.Atoi(rep)
		if errR != nil || r < 0 || strings.ContainsAny(rep, "+- ") {
			return nil, 0, fmt.Errorf("distr: fault plan target %q: want <shard>.<replica> with a non-negative replica", target)
		}
		if strings.Contains(shard, "-") {
			return nil, 0, fmt.Errorf("distr: fault plan target %q: ranges cannot take a replica suffix", target)
		}
		ids, _, err = parseFaultTarget(shard)
		if err != nil {
			return nil, 0, err
		}
		return ids, r, nil
	}
	if target == "*" {
		return []int{ShardAll}, replica, nil
	}
	if lo, hi, ok := strings.Cut(target, "-"); ok {
		a, errA := strconv.Atoi(lo)
		b, errB := strconv.Atoi(hi)
		if errA != nil || errB != nil || a < 0 || b < a {
			return nil, 0, fmt.Errorf("distr: fault plan target %q: want <lo>-<hi>", target)
		}
		ids = make([]int, 0, b-a+1)
		for i := a; i <= b; i++ {
			ids = append(ids, i)
		}
		return ids, replica, nil
	}
	id, errID := strconv.Atoi(target)
	if errID != nil || id < 0 {
		return nil, 0, fmt.Errorf("distr: fault plan target %q: want shard id, <lo>-<hi>, '*', or <shard>.<replica>", target)
	}
	return []int{id}, replica, nil
}

// parseFaultSpec applies one key=value fault spec to sp.
func parseFaultSpec(f string, sp *ShardFaultPlan) error {
	key, val, _ := strings.Cut(f, "=")
	intVal := func() (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("distr: fault %q: want a non-negative integer", f)
		}
		return n, nil
	}
	probVal := func() (float64, error) {
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("distr: fault %q: want a probability in [0, 1]", f)
		}
		return p, nil
	}
	var err error
	switch key {
	case "crash-after":
		sp.Crash = true
		sp.CrashAfterFetches, err = intVal()
	case "recover-after":
		sp.RecoverAfter, err = intVal()
	case "transient-every":
		sp.TransientEvery, err = intVal()
	case "timeout-every":
		sp.TimeoutEvery, err = intVal()
	case "latency-every":
		sp.LatencyEvery, err = intVal()
	case "latency":
		sp.Latency, err = time.ParseDuration(val)
		if err == nil && sp.Latency < 0 {
			err = fmt.Errorf("distr: fault %q: negative latency", f)
		}
	case "transient-p":
		sp.TransientProb, err = probVal()
	case "timeout-p":
		sp.TimeoutProb, err = probVal()
	case "latency-p":
		sp.LatencyProb, err = probVal()
	default:
		err = fmt.Errorf("distr: unknown fault %q", f)
	}
	return err
}

// mergeShardFaults folds src into dst, letting later segments add faults
// to a shard already targeted by an earlier one.
func mergeShardFaults(dst *ShardFaultPlan, src ShardFaultPlan) {
	if src.Crash {
		dst.Crash = true
		dst.CrashAfterFetches = src.CrashAfterFetches
	}
	if src.RecoverAfter > 0 {
		dst.RecoverAfter = src.RecoverAfter
	}
	if src.TransientEvery > 0 {
		dst.TransientEvery = src.TransientEvery
	}
	if src.TimeoutEvery > 0 {
		dst.TimeoutEvery = src.TimeoutEvery
	}
	if src.LatencyEvery > 0 {
		dst.LatencyEvery = src.LatencyEvery
	}
	if src.Latency > 0 {
		dst.Latency = src.Latency
	}
	if src.TransientProb > 0 {
		dst.TransientProb = src.TransientProb
	}
	if src.TimeoutProb > 0 {
		dst.TimeoutProb = src.TimeoutProb
	}
	if src.LatencyProb > 0 {
		dst.LatencyProb = src.LatencyProb
	}
}

// faultState is the runtime fault injector of one shard. Crash state is
// cluster-wide (a downed shard server is down for every query), so the
// state lives on the Cluster, one per shard, guarded by its own mutex —
// never by the cluster's structural locks.
type faultState struct {
	plan ShardFaultPlan

	mu       sync.Mutex
	rng      *stats.RNG
	attempts uint64 // fetch attempts seen (drives the Every counters)
	fetches  uint64 // successful fetches served (drives the crash schedule)
	down     bool
	downObs  uint64 // coordinator observations since the crash (recovery clock)
}

// newFaultStates materializes per-replica injectors for a plan, indexed
// [shard][replica]; nil when the plan injects nothing (the
// healthy-cluster fast path). Each replica gets its own injector — a
// plain shard script therefore crashes replicas independently on their
// own fetch/attempt clocks, while a ReplicaTarget script touches exactly
// one copy. Replica 0 keeps the pre-replication RNG stream so single-copy
// clusters replay bit-for-bit.
func newFaultStates(plan *FaultPlan, shards, replicas int) [][]*faultState {
	if plan == nil {
		return nil
	}
	if replicas < 1 {
		replicas = 1
	}
	states := make([][]*faultState, shards)
	any := false
	for i := range states {
		states[i] = make([]*faultState, replicas)
		for r := 0; r < replicas; r++ {
			sp := plan.PlanForReplica(i, r)
			seed := plan.Seed*31 + int64(i)*1009 + 7 + int64(r)*500009
			states[i][r] = &faultState{plan: sp, rng: stats.NewRNG(seed)}
			if sp.enabled() {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return states
}

// tickRecoveryLocked advances a down shard's recovery clock by one
// coordinator observation and performs the rejoin transition once the
// clock reaches RecoverAfter. Returns true when this observation brought
// the shard back. The crash flag is cleared on rejoin so each shard runs
// the crash→recover cycle at most once (a recovered shard stays up).
// Caller holds f.mu.
func (f *faultState) tickRecoveryLocked() bool {
	if f.plan.RecoverAfter <= 0 {
		return false
	}
	f.downObs++
	if f.downObs < uint64(f.plan.RecoverAfter) {
		return false
	}
	f.down = false
	f.downObs = 0
	f.plan.Crash = false
	return true
}

// observe reports whether the shard is down, counting the observation
// against a recoverable shard's recovery clock — every coordinator
// contact (count rounds, routing checks, re-admit polls) is a liveness
// probe. rejoined is true exactly once per recovery: on the observation
// that brought the shard back.
func (f *faultState) observe() (down, rejoined bool) {
	if f == nil {
		return false, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down {
		return false, false
	}
	if f.tickRecoveryLocked() {
		return false, true
	}
	return true, false
}

// recoverable reports whether the shard's plan schedules a recovery.
func (f *faultState) recoverable() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan.RecoverAfter > 0
}

// verdict decides the fate of one fetch attempt. It returns the injected
// fault kind, the latency to add, whether this call crashed the shard,
// and whether it brought a down shard back (both transitions happen
// exactly once, so crash and re-admit counting are exact). A fetch probe
// against a down recoverable shard advances its recovery clock; when the
// probe is the one that revives the shard, the attempt proceeds through
// the normal verdict path (the shard is up again).
func (f *faultState) verdict() (kind FaultKind, delay time.Duration, crashed, rejoined bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		if !f.tickRecoveryLocked() {
			return FaultCrash, 0, false, false
		}
		rejoined = true
	}
	if f.plan.Crash && f.fetches >= uint64(f.plan.CrashAfterFetches) {
		f.down = true
		f.downObs = 0
		return FaultCrash, 0, true, rejoined
	}
	f.attempts++
	every := func(n int) bool { return n > 0 && f.attempts%uint64(n) == 0 }
	prob := func(p float64) bool { return p > 0 && f.rng.Float64() < p }
	switch {
	case every(f.plan.TimeoutEvery) || prob(f.plan.TimeoutProb):
		return FaultTimeout, 0, false, rejoined
	case every(f.plan.TransientEvery) || prob(f.plan.TransientProb):
		return FaultTransient, 0, false, rejoined
	case every(f.plan.LatencyEvery) || prob(f.plan.LatencyProb):
		d := f.plan.Latency
		if d == 0 {
			d = DefaultFaultLatency
		}
		return FaultLatency, d, false, rejoined
	}
	return FaultNone, 0, false, rejoined
}

// served records one successful fetch (advances the crash schedule).
func (f *faultState) served() {
	f.mu.Lock()
	f.fetches++
	f.mu.Unlock()
}

// FaultStats is a snapshot of cluster-wide fault-injection activity. All
// fields are also published under storm.distr.faults.* when the cluster
// has an observability registry.
type FaultStats struct {
	// Injected is the total number of injected fault events (all kinds,
	// including repeated hits on an already-crashed shard).
	Injected uint64
	// Latency / Transient / Timeouts count injected events by kind.
	Latency   uint64
	Transient uint64
	Timeouts  uint64
	// Crashes counts shard crash transitions — each crashed shard exactly
	// once, however many fetches later hit it.
	Crashes uint64
	// Retries counts coordinator fetch retries; Recoveries counts fetches
	// that succeeded after at least one retry.
	Retries    uint64
	Recoveries uint64
	// Exhausted counts fetches abandoned after MaxRetries, which drop the
	// shard from the issuing query (query-local degradation).
	Exhausted uint64
	// Readmits counts shard rejoin transitions — each recovered shard
	// exactly once, when its recover-after clock expired and the
	// coordinator re-registered it.
	Readmits uint64
	// ShardsDown is the number of currently crashed replica instances
	// (on a single-copy cluster, exactly the number of crashed shards);
	// a recovered replica no longer counts. A shard only stops serving —
	// and queries only degrade — when all of its replicas are down at
	// once; see ReplicaStats for failover accounting.
	ShardsDown int
}

// faultTotals is the cluster's always-on fault accounting (atomics, so
// they are exact with or without an obs registry; the registry re-exports
// them as scrape-time Funcs rather than double-counting).
type faultTotals struct {
	injected   atomic.Uint64
	latency    atomic.Uint64
	transient  atomic.Uint64
	timeouts   atomic.Uint64
	crashes    atomic.Uint64
	retries    atomic.Uint64
	recoveries atomic.Uint64
	exhausted  atomic.Uint64
	readmits   atomic.Uint64
	shardsDown atomic.Int64
}

// FaultStats returns a snapshot of fault-injection activity; all-zero on a
// cluster without a fault plan.
func (c *Cluster) FaultStats() FaultStats {
	t := &c.ftot
	return FaultStats{
		Injected:   t.injected.Load(),
		Latency:    t.latency.Load(),
		Transient:  t.transient.Load(),
		Timeouts:   t.timeouts.Load(),
		Crashes:    t.crashes.Load(),
		Retries:    t.retries.Load(),
		Recoveries: t.recoveries.Load(),
		Exhausted:  t.exhausted.Load(),
		Readmits:   t.readmits.Load(),
		ShardsDown: int(t.shardsDown.Load()),
	}
}

// replicaDown reports whether replica r of shard i is down (false for
// clients without liveness — the bare loopback). The check is itself a
// coordinator contact: on a recoverable replica it advances the injected
// recovery clock (or rate-limits a real TCP probe), and the contact that
// revives the replica performs the cluster-wide re-admit accounting.
func (c *Cluster) replicaDown(i, r int) bool {
	lc, ok := c.repl[i][r].(liveChecker)
	if !ok {
		return false
	}
	down, rejoined := lc.Live()
	if rejoined {
		c.countReadmit()
	}
	return down
}

// shardDown reports whether shard i is entirely down — a shard with any
// live replica still serves queries (the fetch path fails over to it).
// Every replica is observed, without short-circuiting, so a single poll
// (a count round, a /shards scrape) advances the recovery clock of every
// down copy, not just the first; with one replica this is exactly the
// pre-replication liveness check.
func (c *Cluster) shardDown(i int) bool {
	allDown := true
	for r := range c.repl[i] {
		if !c.replicaDown(i, r) {
			allDown = false
		}
	}
	return allDown
}

// countReadmit records one shard rejoin transition in the totals.
func (c *Cluster) countReadmit() {
	c.ftot.readmits.Add(1)
	c.ftot.shardsDown.Add(-1)
}

// countFault records one injected event in the totals.
func (c *Cluster) countFault(kind FaultKind, crashed bool) {
	t := &c.ftot
	t.injected.Add(1)
	switch kind {
	case FaultLatency:
		t.latency.Add(1)
	case FaultTransient:
		t.transient.Add(1)
	case FaultTimeout:
		t.timeouts.Add(1)
	case FaultCrash:
		if crashed {
			t.crashes.Add(1)
			t.shardsDown.Add(1)
		}
	}
}

// faultClient decorates a ShardClient with one shard's fault injector.
// Every Fetch passes through the verdict machinery at the transport
// boundary — the injected failure surfaces to the coordinator as the
// same error a real transport would return — so a fault plan exercises
// the identical coordinator retry/degradation code over loopback and TCP.
// All other requests pass through undisturbed (the plans script the
// fetch path; crashed shards are fenced off upstream by shardDown).
type faultClient struct {
	ShardClient
	c *Cluster
	f *faultState
}

// Fetch implements ShardClient, applying the shard's fault verdict before
// (or instead of) the inner fetch. With a FaultNone verdict it is a
// direct pass-through, byte-identical to the undecorated client.
func (fc *faultClient) Fetch(stream uint64, dst []data.Entry, n int) (int, error) {
	return fc.doFetch(stream, dst, n, time.Time{})
}

// FetchBefore implements deadlineFetcher, forwarding the deadline to the
// inner client when it is deadline-aware. The fault verdict still applies
// first — an injected crash or timeout fires identically whether or not
// the query runs under a contract deadline.
func (fc *faultClient) FetchBefore(stream uint64, dst []data.Entry, n int, deadline time.Time) (int, error) {
	return fc.doFetch(stream, dst, n, deadline)
}

func (fc *faultClient) doFetch(stream uint64, dst []data.Entry, n int, deadline time.Time) (int, error) {
	kind, delay, crashed, rejoined := fc.f.verdict()
	if rejoined {
		fc.c.countReadmit()
	}
	if kind != FaultNone {
		fc.c.countFault(kind, crashed)
	}
	switch kind {
	case FaultCrash:
		return 0, &shardDownError{Recoverable: fc.f.recoverable()}
	case FaultTimeout:
		return 0, ErrFetchTimeout
	case FaultTransient:
		return 0, ErrTransient
	case FaultLatency:
		if delay >= fc.c.cfg.FetchTimeout {
			// The spike blows the per-fetch deadline: the coordinator
			// observes a timeout, not a slow success.
			fc.c.ftot.timeouts.Add(1)
			return 0, ErrFetchTimeout
		}
		time.Sleep(delay)
	}
	var got int
	var err error
	if df, ok := fc.ShardClient.(deadlineFetcher); ok && !deadline.IsZero() {
		got, err = df.FetchBefore(stream, dst, n, deadline)
	} else {
		got, err = fc.ShardClient.Fetch(stream, dst, n)
	}
	if err != nil {
		return got, err
	}
	fc.f.served()
	return got, nil
}

// Live implements liveChecker: the injected crash state is consulted
// first (each call is one coordinator observation against the recovery
// clock), then any real liveness the inner client has — so a TCP shard
// can be down for real even when no crash is scripted.
func (fc *faultClient) Live() (down, rejoined bool) {
	down, rejoined = fc.f.observe()
	if down || rejoined {
		return down, rejoined
	}
	if lc, ok := fc.ShardClient.(liveChecker); ok {
		return lc.Live()
	}
	return false, false
}
