// Per-shard attribute summaries: the coordinator's cheap digests that
// turn a degraded confidence interval into a worst-case bound over the
// full pre-crash population.
//
// When a shard crashes mid-query, the estimate keeps covering the
// surviving population only (DESIGN.md §4.3's lost-mass caveat). But the
// coordinator knows, from build time, each shard's per-attribute count,
// sum, and min/max — a few words per shard per column. Whatever the lost
// shard's unreachable records held, every value lies in [Min, Max], so
// the surviving CI can be widened into hard bounds on the full-population
// aggregate (see estimator.LostMassBounds for the arithmetic). The
// summaries are maintained exactly on Insert/Delete for counts and sums;
// Min/Max only widen (a deletion cannot shrink them without a rescan), so
// the bounds stay conservative — never too narrow — under any update mix.
package distr

import (
	"math"

	"storm/internal/data"
)

// AttrSummary is one shard's digest of one numeric attribute: the
// coordinator-side metadata that prices out worst-case lost-mass bounds
// at a few words per shard per column.
type AttrSummary struct {
	// Count is the number of records on the shard carrying a finite
	// value for the attribute; Sum is their sum.
	Count int
	Sum   float64
	// Min and Max bound every finite value the shard has ever held for
	// the attribute. They are exact after Build and widen monotonically
	// under inserts; deletions do not shrink them (that would need a
	// rescan), so they remain sound — possibly loose — bounds.
	Min float64
	Max float64
	// NonFinite counts records whose value is NaN (SQL NULL in this
	// system) or ±Inf. Lost-mass bounds require NonFinite == 0: a NULL
	// contributes nothing to an aggregate, so lost NULLs would make the
	// lost record count overstate the lost contributing mass.
	NonFinite int
}

// add folds one attribute value into the summary.
func (a *AttrSummary) add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		a.NonFinite++
		return
	}
	a.Count++
	a.Sum += v
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

// remove undoes add for a deleted record's value. Min/Max are left as-is
// (monotone-conservative; see AttrSummary).
func (a *AttrSummary) remove(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		a.NonFinite--
		return
	}
	a.Count--
	a.Sum -= v
}

// newAttrSummary returns an empty summary with sentinel bounds.
func newAttrSummary() *AttrSummary {
	return &AttrSummary{Min: math.Inf(1), Max: math.Inf(-1)}
}

// buildSummaries digests one shard partition: one AttrSummary per numeric
// column of the dataset at build time. Columns added after Build are not
// summarized (a partial summary would silently miss the base records), so
// lost-mass bounds are simply unavailable for them. It runs on whichever
// process builds the shard — the coordinator for in-process clusters, the
// shard host for remote ones.
func buildSummaries(ds *data.Dataset, part []data.Entry) map[string]*AttrSummary {
	cols := ds.NumericColumns()
	sums := make(map[string]*AttrSummary, len(cols))
	for _, name := range cols {
		col, err := ds.NumericColumn(name)
		if err != nil {
			continue
		}
		a := newAttrSummary()
		for _, e := range part {
			a.add(col[e.ID])
		}
		sums[name] = a
	}
	return sums
}

// summaryAdd updates shard sh's summaries for a newly inserted record.
// Caller holds the owning backend's write lock.
func summaryAdd(ds *data.Dataset, sh *Shard, e data.Entry) {
	for name, a := range sh.summaries {
		col, err := ds.NumericColumn(name)
		if err != nil || e.ID >= data.ID(len(col)) {
			continue
		}
		a.add(col[e.ID])
	}
}

// summaryRemove updates shard sh's summaries for a deleted record.
// Caller holds the owning backend's write lock.
func summaryRemove(ds *data.Dataset, sh *Shard, e data.Entry) {
	for name, a := range sh.summaries {
		col, err := ds.NumericColumn(name)
		if err != nil || e.ID >= data.ID(len(col)) {
			continue
		}
		a.remove(col[e.ID])
	}
}

// ShardSummary returns shard's digest of attr (count, sum, min/max of the
// records it holds), or ok = false when the shard or attribute is
// unknown. The coordinator reads these summaries through the shard
// clients (a remote client answers from its build-time cache when the
// shard is down — exactly when degraded bounds are needed) so degraded
// estimates can be widened into worst-case bounds over lost shards'
// populations.
func (c *Cluster) ShardSummary(shard int, attr string) (s AttrSummary, ok bool) {
	if shard < 0 || shard >= len(c.clients) {
		return AttrSummary{}, false
	}
	// Replicas digest the same build partition, so the first copy that
	// answers speaks for the shard; a copy is only skipped on error (an
	// unknown attribute is a definitive answer, not a reason to retry).
	for _, cl := range c.repl[shard] {
		s, found, err := cl.Summary(attr)
		if err != nil {
			continue
		}
		if !found {
			return AttrSummary{}, false
		}
		return s, true
	}
	return AttrSummary{}, false
}

// LostMassBounds returns hard bounds [lo, hi] on the attribute values of
// this query's lost population — the lostPop matching records stranded on
// shards the query wrote off — from the coordinator's per-shard
// summaries. ok is false when the query is not degraded, the attribute
// has no summary on some lost shard, or a lost shard holds non-finite
// values (which would make the bounds unsound; see AttrSummary). Callers
// combine [lo, hi] with the surviving-population CI via
// estimator.LostMassBounds to bound the full pre-crash aggregate.
func (s *Sampler) LostMassBounds(attr string) (lo, hi float64, lostPop int, ok bool) {
	if s.lostPop <= 0 || len(s.lost) == 0 {
		return 0, 0, 0, false
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for shard, st := range s.lost {
		if st.remaining <= 0 {
			continue
		}
		sum, found := s.cluster.ShardSummary(shard, attr)
		if !found || sum.NonFinite > 0 || sum.Count == 0 {
			return 0, 0, 0, false
		}
		if sum.Min < lo {
			lo = sum.Min
		}
		if sum.Max > hi {
			hi = sum.Max
		}
	}
	if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
		return 0, 0, 0, false
	}
	return lo, hi, s.lostPop, true
}
