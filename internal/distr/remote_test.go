package distr_test

// The TCP-transport suite: the same coordinator logic that the loopback
// suites validate, run against shard hosts behind real sockets. The
// anchor is TestRemoteMatchesLoopback — the TCP stream is byte-identical
// to the loopback stream under the same seed, so every statistical
// property the statcheck suites establish for loopback (uniformity,
// batching equivalence, degraded re-weighting) transfers to TCP without
// re-running the trials over RPC.

import (
	"testing"
	"time"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/geo"
	"storm/internal/wire"
)

// startHost serves a freshly regenerated copy of the fixture dataset on
// a loopback TCP socket, modeling a real shard process that rebuilds its
// dataset from the same generator flags as the coordinator.
func startHost(t *testing.T, n int, addr string) *wire.Server {
	t.Helper()
	h := distr.NewHost()
	h.AddDataset(distrtest.Dataset(n))
	srv, err := wire.NewServer(addr, h)
	if err != nil {
		t.Fatalf("wire.NewServer(%q): %v", addr, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func buildRemote(t *testing.T, ds *data.Dataset, cfg distr.Config, addrs []string) *distr.Cluster {
	t.Helper()
	c, err := distr.BuildRemote(ds, cfg, addrs)
	if err != nil {
		t.Fatalf("distr.BuildRemote: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRemoteMatchesLoopback: same dataset, same seed, same config — the
// sample stream over TCP is byte-identical to the loopback stream, and
// the remote cluster reports measured (not simulated) traffic.
func TestRemoteMatchesLoopback(t *testing.T) {
	const n = 4000
	ds := distrtest.Dataset(n)
	q := distrtest.Query()
	cfg := distrtest.FastConfig(4, 7, nil)

	local := distrtest.Build(t, ds, cfg)
	remote := buildRemote(t, ds, cfg, []string{
		startHost(t, n, "127.0.0.1:0").Addr(),
		startHost(t, n, "127.0.0.1:0").Addr(),
	})

	if lc, rc := local.Count(q), remote.Count(q); lc != rc {
		t.Fatalf("count over TCP = %d, loopback = %d", rc, lc)
	}

	sizes := []int{17, 64, 1, 33}
	want := distrtest.DrainBatched(local.Sampler(q), sizes)
	got := distrtest.DrainBatched(remote.Sampler(q), sizes)
	distrtest.SameEntries(t, want, got, "loopback vs TCP")

	net := remote.Net()
	if net.Messages == 0 || net.BytesSent == 0 || net.BytesRecv == 0 {
		t.Errorf("remote NetStats = %+v, want measured traffic", net)
	}
	if net.SamplesMoved != uint64(len(got)) {
		t.Errorf("SamplesMoved = %d, want %d drained samples", net.SamplesMoved, len(got))
	}
	remote.ResetNet()
	if after := remote.Net(); after.Messages != 0 || after.BytesSent != 0 {
		t.Errorf("NetStats after reset = %+v, want zero", after)
	}
}

// TestRemoteWindowMatchesLoopback: a `LAST`-windowed query ships the
// window term over the wire and each shard narrows its own time axis —
// the same funnel the loopback transport uses — so the windowed count and
// the windowed sample stream are byte-identical across transports, and
// both equal the stream over the pre-narrowed rectangle.
func TestRemoteWindowMatchesLoopback(t *testing.T) {
	const n = 4000
	ds := distrtest.Dataset(n)
	q := distrtest.Query()
	cfg := distrtest.FastConfig(4, 7, nil)
	// The fixture spans t in [0, 100]; this window keeps roughly the last
	// third of the queried records.
	win := wire.Window{Set: true, Lo: 65, Hi: 100}

	local := distrtest.Build(t, ds, cfg)
	remote := buildRemote(t, ds, cfg, []string{
		startHost(t, n, "127.0.0.1:0").Addr(),
		startHost(t, n, "127.0.0.1:0").Addr(),
	})

	lc := local.CountWindow(q, nil, win)
	rc := remote.CountWindow(q, nil, win)
	narrowed := local.Count(win.Apply(q))
	if lc != rc || lc != narrowed {
		t.Fatalf("windowed counts: loopback %d, TCP %d, narrowed-rect %d", lc, rc, narrowed)
	}
	if full := local.Count(q); lc <= 0 || lc >= full {
		t.Fatalf("window should cut the population: %d of %d", lc, full)
	}

	sizes := []int{17, 64, 1, 33}
	want := distrtest.DrainBatched(local.SamplerWindow(q, nil, win), sizes)
	got := distrtest.DrainBatched(remote.SamplerWindow(q, nil, win), sizes)
	distrtest.SameEntries(t, want, got, "windowed loopback vs TCP")
	for _, e := range want {
		if e.Pos[2] < win.Lo || e.Pos[2] > win.Hi {
			t.Fatalf("sample %d at t=%v escapes window [%v, %v]", e.ID, e.Pos[2], win.Lo, win.Hi)
		}
	}
	if len(want) != lc {
		t.Fatalf("windowed WOR drain yields %d samples, want the full windowed population %d", len(want), lc)
	}
}

// TestRemoteInsertDelete mirrors updates through the wire protocol: the
// shard host appends the routed row (with attributes) to its own dataset
// copy, and delete finds it again.
func TestRemoteInsertDelete(t *testing.T) {
	const n = 3000
	ds := distrtest.Dataset(n)
	q := distrtest.Query()
	c := buildRemote(t, ds, distrtest.FastConfig(4, 7, nil), []string{
		startHost(t, n, "127.0.0.1:0").Addr(),
		startHost(t, n, "127.0.0.1:0").Addr(),
	})

	before := c.Count(q)
	id := ds.Append(data.Row{Pos: geo.Vec{40, 40, 50}, Num: map[string]float64{"value": 42}})
	e := ds.Entry(id)
	c.Insert(e)
	if got := c.Count(q); got != before+1 {
		t.Fatalf("count after insert = %d, want %d", got, before+1)
	}
	if !c.Delete(e) {
		t.Fatal("delete of inserted record failed")
	}
	if got := c.Count(q); got != before {
		t.Fatalf("count after delete = %d, want %d", got, before)
	}
	if c.Delete(e) {
		t.Fatal("second delete should find nothing")
	}
}

// TestRemoteFaultPlanResumesStream is PR 5's crash→recover tentpole run
// over TCP with the faults injected at the transport decorator: the
// shard's real server never dies, so its stream survives the injected
// outage and the re-admitted query drains the full population exactly
// once.
func TestRemoteFaultPlanResumesStream(t *testing.T) {
	const n = 6000
	ds := distrtest.Dataset(n)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		1: {Crash: true, CrashAfterFetches: 1, RecoverAfter: 4},
	}}
	c := buildRemote(t, ds, distrtest.FastConfig(4, 5, plan), []string{
		startHost(t, n, "127.0.0.1:0").Addr(),
		startHost(t, n, "127.0.0.1:0").Addr(),
	})
	initial := c.Count(q)

	s := c.Sampler(q)
	seen := make(map[data.ID]bool)
	buf := make([]data.Entry, 48)
	emitted := 0
	for {
		k := s.NextBatch(buf, len(buf))
		for _, e := range buf[:k] {
			if seen[e.ID] {
				t.Fatalf("duplicate sample %d", e.ID)
			}
			seen[e.ID] = true
		}
		emitted += k
		if k < len(buf) {
			break
		}
	}

	if s.Degraded() {
		t.Fatal("query should have re-admitted the recovered shard")
	}
	if s.Readmits() != 1 {
		t.Errorf("readmits = %d, want 1", s.Readmits())
	}
	if emitted != initial {
		t.Errorf("drained %d samples, want the full pre-crash population %d", emitted, initial)
	}
	st := c.FaultStats()
	if st.Crashes != 1 || st.Readmits != 1 || st.ShardsDown != 0 {
		t.Errorf("fault stats = %+v, want one crash→readmit cycle, no shards down", st)
	}
}

// TestRemoteShardKillRestart is the real-outage version: one shard HOST
// process dies mid-stream (its listener closes), the query degrades over
// the survivors, the host comes back on the same address with empty
// state, and the coordinator re-admits it — rebuilding the shard over
// the wire and reopening the stream with the already-emitted samples
// excluded, so the drain still covers the full population exactly once.
func TestRemoteShardKillRestart(t *testing.T) {
	const n = 6000
	ds := distrtest.Dataset(n)
	q := distrtest.Query()
	cfg := distrtest.FastConfig(4, 5, nil)

	// The ring hashes the hosts' ephemeral addresses, so a given pair can
	// land every shard on one host; retry with fresh listeners until the
	// placement splits and killing host B leaves survivors.
	var (
		c    *distr.Cluster
		srvB *wire.Server
	)
	for attempt := 0; attempt < 20 && c == nil; attempt++ {
		a := startHost(t, n, "127.0.0.1:0")
		b := startHost(t, n, "127.0.0.1:0")
		cand := buildRemote(t, ds, cfg, []string{a.Addr(), b.Addr()})
		onB := 0
		for _, st := range cand.ShardStatus() {
			if st.Addr == b.Addr() {
				onB++
			}
		}
		if onB >= 1 && onB <= 3 {
			c, srvB = cand, b
		}
	}
	if c == nil {
		t.Fatal("placement never split 4 shards across 2 hosts in 20 attempts")
	}
	initial := c.Count(q)

	s := c.Sampler(q)
	seen := make(map[data.ID]bool)
	buf := make([]data.Entry, 48)
	emitted := 0
	drain := func(rounds int) bool {
		for i := 0; i < rounds; i++ {
			k := s.NextBatch(buf, len(buf))
			for _, e := range buf[:k] {
				if seen[e.ID] {
					t.Fatalf("duplicate sample %d", e.ID)
				}
				seen[e.ID] = true
			}
			emitted += k
			if k < len(buf) {
				return true
			}
		}
		return false
	}

	// A few healthy rounds, then the host dies mid-stream.
	drain(3)
	srvB.Close()
	for i := 0; i < 200 && !s.Degraded(); i++ {
		drain(1)
	}
	if !s.Degraded() {
		t.Fatal("killing host B never degraded the stream")
	}
	if st := c.FaultStats(); st.Crashes == 0 || st.ShardsDown == 0 {
		t.Fatalf("fault stats after kill = %+v, want real crash accounted", st)
	}

	// Restart on the same address with a fresh (empty) host, then wait
	// until the coordinator's liveness probes see it back up before
	// draining further — otherwise the survivors can run dry inside the
	// probe's rate-limit window and the stream ends degraded.
	srvB2 := startHost(t, n, srvB.Addr())
	_ = srvB2
	healthy := false
	for wait := 0; wait < 500 && !healthy; wait++ {
		healthy = true
		for _, st := range c.ShardStatus() {
			if st.Down {
				healthy = false
			}
		}
		if !healthy {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !healthy {
		t.Fatal("restarted host never probed back up")
	}

	// The next rounds re-admit the shards, rebuild them over the wire,
	// and reopen the streams with the emitted samples excluded, so the
	// drain completes over the full population.
	done := false
	for i := 0; i < 500 && !done; i++ {
		done = drain(1)
	}
	if !done {
		t.Fatal("stream never completed after host restart")
	}
	if s.Degraded() {
		t.Fatal("query should have re-admitted the restarted host's shards")
	}
	if s.Readmits() == 0 {
		t.Error("readmits = 0, want the restarted shards re-admitted")
	}
	if emitted != initial {
		t.Errorf("drained %d samples, want the full pre-kill population %d", emitted, initial)
	}
	if st := c.FaultStats(); st.ShardsDown != 0 {
		t.Errorf("shards_down = %d after recovery, want 0", st.ShardsDown)
	}
}
