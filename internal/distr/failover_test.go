package distr_test

// The replication/failover test suite (DESIGN.md §4.8). Mechanics tests
// pin the exact-stream invariants — a failed-over drain still delivers
// every matching record exactly once, replica 0 reproduces the
// pre-replication stream byte for byte, plain fault plans keep their
// all-copies semantics — and the TestStatFailover* checks are the
// statistical acceptance: post-failover streams stay exactly uniform
// WOR over the FULL population, so CIs keep nominal coverage with zero
// lost-mass widening and the estimator stays unbiased across the kill.
// They run under `make test-stats` (and the dedicated
// `make test-stats-failover`) with -race.

import (
	"testing"

	"storm/internal/data"
	"storm/internal/distr"
	"storm/internal/distr/distrtest"
	"storm/internal/estimator"
	"storm/internal/gen"
	"storm/internal/geo"
	"storm/internal/stats/statcheck"
	"storm/internal/wire"
)

// killReplica returns a plan crashing one copy of one shard after the
// given number of fetches — the canonical failover scenario. A plain
// shard target would crash every copy (see FaultPlan); scripting the
// single replica is what leaves a survivor to fail over to.
func killReplica(shard, replica, afterFetches int) *distr.FaultPlan {
	return &distr.FaultPlan{Replicas: map[distr.ReplicaTarget]distr.ShardFaultPlan{
		{Shard: shard, Replica: replica}: {Crash: true, CrashAfterFetches: afterFetches},
	}}
}

// TestFailoverFullDrainIntact is the tentpole mechanics test: at R=2,
// killing the serving copy of a shard mid-stream moves the remainder
// onto the survivor and the drain still delivers the FULL matching
// population exactly once — no duplicates, no losses, no degradation.
func TestFailoverFullDrainIntact(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	cfg := distrtest.FastConfig(4, 5, killReplica(1, 0, 1), 2)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)
	full := c.Count(q)

	s := c.Sampler(q)
	seen := make(map[data.ID]bool)
	for _, e := range distrtest.DrainBatched(s, []int{48}) {
		if seen[e.ID] {
			t.Fatalf("duplicate sample %d across the failover", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != full {
		t.Errorf("drained %d samples, want the full population %d", len(seen), full)
	}
	if s.Degraded() {
		t.Error("failover must not degrade the query: a copy survived")
	}
	if s.Failovers() == 0 {
		t.Fatal("replica kill never triggered a failover")
	}
	if _, lostPop := s.Degradation(); lostPop != 0 {
		t.Errorf("lost population = %d, want 0 (no mass is lost on failover)", lostPop)
	}
	if _, _, _, ok := s.LostMassBounds("value"); ok {
		t.Error("failed-over query must expose no lost-mass bounds (nothing was lost)")
	}
	if rs := c.ReplicaStats(); rs.Failovers == 0 {
		t.Errorf("cluster replica stats = %+v, want failovers counted", rs)
	}
}

// TestFailoverMatchesSingleCopyStream pins backward compatibility: with
// no faults, an R=2 cluster serves every query from replica 0 and the
// sample stream is byte-identical to the R=1 cluster under the same
// seed — replication is invisible until a copy dies.
func TestFailoverMatchesSingleCopyStream(t *testing.T) {
	ds := distrtest.Dataset(5000)
	q := distrtest.Query()
	sizes := []int{1, 7, 32, 3}
	single := distrtest.Build(t, ds, distrtest.FastConfig(4, 9, nil))
	double := distrtest.Build(t, ds, distrtest.FastConfig(4, 9, nil, 2))
	want := distrtest.DrainBatched(single.Sampler(q), sizes)
	got := distrtest.DrainBatched(double.Sampler(q), sizes)
	distrtest.SameEntries(t, want, got, "R=1 vs R=2 healthy stream")
}

// TestFailoverPlainPlanStillDegrades pins the fault-plan semantics the
// earlier suites rely on: a PLAIN shard target scripts every copy of the
// shard independently, so a plain crash at R=2 takes down both copies
// and the query genuinely degrades — replication does not quietly
// reinterpret existing plans as single-copy kills.
func TestFailoverPlainPlanStillDegrades(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Shards: map[int]distr.ShardFaultPlan{
		1: {Crash: true, CrashAfterFetches: 0},
	}}
	cfg := distrtest.FastConfig(4, 5, plan, 2)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)

	s := c.Sampler(q)
	buf := make([]data.Entry, 64)
	for i := 0; i < 50 && !s.Degraded(); i++ {
		if s.NextBatch(buf, len(buf)) == 0 {
			break
		}
	}
	if !s.Degraded() {
		t.Fatal("plain crash plan at R=2 should take down every copy and degrade")
	}
	lost, lostPop := s.Degradation()
	if lost != 1 || lostPop <= 0 {
		t.Errorf("degradation = (%d, %d), want shard 1 fully written off", lost, lostPop)
	}
}

// TestFailoverShardStatusReplicaLiveness is the placement/observability
// regression: ShardStatus reports per-replica liveness (one copy down,
// the shard itself still up), and polling it is a coordinator
// observation that advances every down replica's recovery clock — the
// /shards endpoint heals the cluster just by being watched.
func TestFailoverShardStatusReplicaLiveness(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Replicas: map[distr.ReplicaTarget]distr.ShardFaultPlan{
		{Shard: 1, Replica: 0}: {Crash: true, CrashAfterFetches: 0, RecoverAfter: 3},
	}}
	cfg := distrtest.FastConfig(4, 5, plan, 2)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)

	// Trigger the crash: shard 1's serving copy dies on its first fetch
	// and the stream fails over.
	s := c.Sampler(q)
	distrtest.DrainBatched(s, []int{64})
	if s.Failovers() == 0 {
		t.Fatal("replica kill never triggered a failover")
	}

	st := c.ShardStatus()
	if len(st) != 4 {
		t.Fatalf("ShardStatus lists %d shards, want 4", len(st))
	}
	for i, sh := range st {
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d has %d replica statuses, want 2: %+v", i, len(sh.Replicas), sh)
		}
		if sh.Down {
			t.Errorf("shard %d marked down with a live copy: %+v", i, sh)
		}
	}
	if !st[1].Replicas[0].Down {
		t.Fatalf("shard 1 replica 0 not marked down after its crash: %+v", st[1])
	}
	if st[1].Replicas[1].Down {
		t.Fatalf("shard 1 replica 1 (the survivor) marked down: %+v", st[1])
	}

	// Each ShardStatus poll observes the down replica once; within
	// RecoverAfter polls it rejoins.
	recovered := false
	for i := 0; i < 10 && !recovered; i++ {
		st = c.ShardStatus()
		recovered = !st[1].Replicas[0].Down
	}
	if !recovered {
		t.Fatal("replica 0 never rejoined: status polls must advance the recovery clock")
	}
}

// TestFailoverByteIdenticalTCP: the same replica kill produces the SAME
// sample stream over the loopback transport and over real TCP sockets.
// Failover verdicts are observation-count-based, never wall-clock-based,
// so the transport cannot leak into the stream (the property every
// deterministic-replay suite in this package leans on).
func TestFailoverByteIdenticalTCP(t *testing.T) {
	ds := distrtest.Dataset(4000)
	q := distrtest.Query()
	cfg := distrtest.FastConfig(4, 9, killReplica(1, 0, 1), 2)
	cfg.MaxRetries = -1
	sizes := []int{1, 7, 32, 3}

	local := distrtest.Build(t, ds, cfg)
	remote := distrtest.BuildTCP(t, ds, cfg, 4)

	ls := local.Sampler(q)
	rs := remote.Sampler(q)
	want := distrtest.DrainBatched(ls, sizes)
	got := distrtest.DrainBatched(rs, sizes)
	distrtest.SameEntries(t, want, got, "loopback vs TCP failover stream")
	if ls.Failovers() == 0 || rs.Failovers() == 0 {
		t.Fatalf("failovers = %d (loopback), %d (TCP), want both > 0", ls.Failovers(), rs.Failovers())
	}
	if ls.Degraded() || rs.Degraded() {
		t.Errorf("degraded = %v/%v, want neither (a copy survived)", ls.Degraded(), rs.Degraded())
	}
}

// TestStatFailoverFirstSampleUniform: a query whose serving copy of one
// shard dies on its very first fetch must still deliver a FIRST sample
// uniform over the full matching population — failover re-opens the
// remainder on the survivor with the emitted set excluded, which
// preserves the inclusion distribution exactly. Chi-square over many
// independently seeded clusters.
func TestStatFailoverFirstSampleUniform(t *testing.T) {
	ds := distrtest.Dataset(400)
	q := distrtest.Query()
	all := make(map[data.ID]bool)
	for i := 0; i < ds.Len(); i++ {
		if q.Contains(ds.Pos(uint64(i))) {
			all[uint64(i)] = true
		}
	}
	nq := len(all)
	if nq < 20 {
		t.Fatalf("degenerate fixture q=%d", nq)
	}
	counts := make(map[data.ID]int)
	const trials = 6000
	for i := 0; i < trials; i++ {
		cfg := distrtest.FastConfig(4, int64(i), killReplica(1, 0, 0), 2)
		cfg.MaxRetries = -1
		c := distrtest.Build(t, ds, cfg)
		e, ok := c.Sampler(q).Next()
		if !ok {
			t.Fatalf("trial %d: no sample", i)
		}
		if !all[e.ID] {
			t.Fatalf("trial %d: sample %d outside query", i, e.ID)
		}
		counts[e.ID]++
	}
	obsCounts := make([]int, 0, nq)
	for id := range all {
		obsCounts = append(obsCounts, counts[id])
	}
	statcheck.Uniform(t, "failover-first-sample", obsCounts, statcheck.DefaultAlpha)
}

// runFailoverEstimate drives one replica-kill AVG query by hand — small
// NextBatch rounds, the way the engine's evaluator drives the sampler —
// and returns the final estimate. The kill must have triggered a
// failover (and no degradation) by the end, so every returned interval
// really did span the replica loss.
func runFailoverEstimate(t *testing.T, ds *data.Dataset, q geo.Rect, shards int, seed int64, maxSamples int) estimator.Estimate {
	t.Helper()
	cfg := distrtest.FastConfig(shards, seed, killReplica(2, 0, 1), 2)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)
	col, err := ds.NumericColumn("value")
	if err != nil {
		t.Fatal(err)
	}
	population := c.Count(q)
	est, err := estimator.New(estimator.Avg, 0.95, population, true)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sampler(q)
	buf := make([]data.Entry, 32)
	for drawn := 0; drawn < maxSamples; {
		want := maxSamples - drawn
		if want > len(buf) {
			want = len(buf)
		}
		n := s.NextBatch(buf, want)
		for _, e := range buf[:n] {
			est.Add(col[e.ID])
		}
		drawn += n
		if n < want {
			break
		}
	}
	if s.Failovers() == 0 {
		t.Fatalf("seed %d: replica kill never triggered a failover", seed)
	}
	if s.Degraded() {
		t.Fatalf("seed %d: failed-over query degraded", seed)
	}
	if _, _, _, ok := s.LostMassBounds("value"); ok {
		t.Fatalf("seed %d: failed-over query exposes lost-mass bounds", seed)
	}
	return est.Snapshot()
}

// TestStatFailoverCICoversFullMean is the headline statistical
// acceptance: across 200 seeded replica-kill runs, the 95% CI of an AVG
// query that failed over mid-stream must cover the TRUE FULL-POPULATION
// mean at the nominal rate — with ZERO lost-mass widening, because
// nothing was lost. This is the distribution-preservation claim:
// re-opening the remainder on the surviving clone with the emitted set
// excluded leaves the stream exactly uniform WOR over the complement.
// The 3% slack absorbs the t-approximation at 320 samples; alpha is
// statcheck's documented 1e-3 false-positive budget.
func TestStatFailoverCICoversFullMean(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	truth, matches := distrtest.FullTruth(ds, q)
	if matches < 500 {
		t.Fatalf("degenerate fixture: %d matches", matches)
	}
	seeds := statcheck.Seeds(17, 200)
	intervals := make([]statcheck.Interval, 0, len(seeds))
	for _, seed := range seeds {
		est := runFailoverEstimate(t, ds, q, 8, seed, 320)
		if est.Population != matches {
			t.Fatalf("seed %d: effective population %d, want the full %d — failover must not shrink it", seed, est.Population, matches)
		}
		intervals = append(intervals, statcheck.IntervalAround(est.Value, est.HalfWidth))
	}
	statcheck.Coverage(t, "failover-ci", truth, intervals, 0.95, 0.03, statcheck.DefaultAlpha)
}

// TestStatFailoverUnbiasedMean: the mean of independent failed-over AVG
// estimates equals the full-population truth up to sampling noise — the
// replica kill introduces no bias toward or away from the records that
// were in flight on the dead copy.
func TestStatFailoverUnbiasedMean(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	truth, matches := distrtest.FullTruth(ds, q)
	if matches < 500 {
		t.Fatalf("degenerate fixture: %d matches", matches)
	}
	seeds := statcheck.Seeds(23, 150)
	values := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		est := runFailoverEstimate(t, ds, q, 8, seed, 256)
		values = append(values, est.Value)
	}
	// Zero slack: WOR uniformity across the failover is claimed exact.
	statcheck.MeanWithin(t, "failover-mean", truth, values, 0, statcheck.DefaultAlpha)
}

// TestStatFailoverWindowedChurnUniform exercises the ingest-drain +
// failover interaction in one trial: a `LAST <dur>`-style windowed query
// whose serving replica dies mid-drain, with churn (mirrored inserts)
// arriving while the stream is open. The window was resolved once, at
// query start, so the new arrivals — their event times land past the
// window's Hi anchor, the streaming steady state — stay outside the
// running query even when a failover re-opens its remainder on the
// surviving copy. The stream must finish exactly uniform over the
// records the window matched at open, and a later, wider-window query
// must see the mirrored churn on the failed-over placement. (Records
// backfilled INTO a resolved window mid-query are a distr-layer
// visibility question the engine never poses: inserts serialize against
// running queries under the handle's write lock.)
func TestStatFailoverWindowedChurnUniform(t *testing.T) {
	q := distrtest.Query()
	win := wire.Window{Set: true, Lo: 65, Hi: 90}
	wider := wire.Window{Set: true, Lo: 65, Hi: 100}
	base := distrtest.Dataset(800)
	all := make(map[data.ID]bool)
	widerN := 0
	for i := 0; i < base.Len(); i++ {
		p := base.Pos(uint64(i))
		if !q.Contains(p) {
			continue
		}
		if p[2] >= win.Lo && p[2] <= win.Hi {
			all[uint64(i)] = true
		}
		if p[2] >= wider.Lo && p[2] <= wider.Hi {
			widerN++
		}
	}
	nq := len(all)
	if nq < 20 {
		t.Fatalf("degenerate fixture: %d windowed matches", nq)
	}

	counts := make(map[data.ID]int)
	const trials = 3000
	for i := 0; i < trials; i++ {
		// Fresh fixture per trial: churn mutates it. The generator seed is
		// fixed, so every trial's PRE-churn window population is identical
		// and first-sample counts accumulate over one shared support.
		ds := distrtest.Dataset(800)
		cfg := distrtest.FastConfig(4, int64(i), killReplica(1, 0, 0), 2)
		cfg.MaxRetries = -1
		c := distrtest.Build(t, ds, cfg)

		s := c.SamplerWindow(q, nil, win)
		first, ok := s.Next()
		if !ok {
			t.Fatalf("trial %d: no sample", i)
		}
		if !all[first.ID] {
			t.Fatalf("trial %d: first sample %d outside the window population", i, first.ID)
		}
		counts[first.ID]++

		// Churn mid-drain: two new arrivals past the window's Hi anchor
		// (inside the query rect — they mirror to both copies of their
		// shards) and one stale record from before the window.
		arrivals := 0
		for _, pos := range []geo.Vec{{30, 30, 95}, {50, 40, 95}, {30, 30, 10}} {
			id := ds.AppendFast(pos)
			ds.SetNumeric("value", id, 1.0)
			c.Insert(data.Entry{ID: id, Pos: pos})
			if pos[2] > win.Hi {
				arrivals++
			}
		}

		// The open stream finishes over its open-time window population
		// exactly: no duplicates, no churn leakage across the failover
		// reopen, no degradation.
		seen := map[data.ID]bool{first.ID: true}
		for _, e := range distrtest.DrainBatched(s, []int{32}) {
			if seen[e.ID] {
				t.Fatalf("trial %d: duplicate sample %d", i, e.ID)
			}
			if !all[e.ID] {
				t.Fatalf("trial %d: sample %d joined a running stream (churn leak)", i, e.ID)
			}
			seen[e.ID] = true
		}
		if len(seen) != nq {
			t.Fatalf("trial %d: drained %d, want the open-time window population %d", i, len(seen), nq)
		}
		if s.Degraded() {
			t.Fatalf("trial %d: windowed drain degraded across the replica kill", i)
		}

		// A fresh query whose window covers the arrivals sees the churn:
		// the base wider-window population plus the mirrored inserts,
		// served across the failed-over placement.
		fresh := c.SamplerWindow(q, nil, wider)
		if got := len(distrtest.DrainBatched(fresh, []int{32})); got != widerN+arrivals {
			t.Fatalf("trial %d: post-churn drain = %d, want %d", i, got, widerN+arrivals)
		}
	}
	obsCounts := make([]int, 0, nq)
	for id := range all {
		obsCounts = append(obsCounts, counts[id])
	}
	statcheck.Uniform(t, "failover-windowed-first-sample", obsCounts, statcheck.DefaultAlpha)
}

// TestFailoverThreeReplicasSurvivesDoubleKill: at R=3, losing two copies
// of the same shard in sequence still fails over (twice) rather than
// degrading — the failover budget is len(replicas)-1 per fetch, so the
// query walks the whole replica ring before writing anything off.
func TestFailoverThreeReplicasSurvivesDoubleKill(t *testing.T) {
	ds := distrtest.Dataset(6000)
	q := distrtest.Query()
	plan := &distr.FaultPlan{Replicas: map[distr.ReplicaTarget]distr.ShardFaultPlan{
		{Shard: 1, Replica: 0}: {Crash: true, CrashAfterFetches: 1},
		{Shard: 1, Replica: 1}: {Crash: true, CrashAfterFetches: 2},
	}}
	cfg := distrtest.FastConfig(4, 5, plan, 3)
	cfg.MaxRetries = -1
	c := distrtest.Build(t, ds, cfg)
	full := c.Count(q)

	s := c.Sampler(q)
	got := len(distrtest.DrainBatched(s, []int{48}))
	if got != full {
		t.Errorf("drained %d, want the full population %d", got, full)
	}
	if s.Degraded() {
		t.Error("double replica kill at R=3 must not degrade: a copy survived")
	}
	if s.Failovers() < 2 {
		t.Errorf("failovers = %d, want >= 2 (two copies died in sequence)", s.Failovers())
	}
}

// TestFailoverReplicaPlacementDistinctHosts pins the placement
// invariant failover correctness rests on: every shard's replica set
// lands on DISTINCT hosts (or as many as exist), so one host death
// cannot take out a whole replica set while others remain.
func TestFailoverReplicaPlacementDistinctHosts(t *testing.T) {
	ds := gen.Uniform(2000, 11, geo.Range{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, MinT: 0, MaxT: 100})
	c := distrtest.BuildTCP(t, ds, distrtest.FastConfig(8, 5, nil, 2), 4)
	for _, sh := range c.ShardStatus() {
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2: %+v", sh.Shard, len(sh.Replicas), sh)
		}
		if sh.Replicas[0].Addr == sh.Replicas[1].Addr {
			t.Errorf("shard %d replicas share host %s", sh.Shard, sh.Replicas[0].Addr)
		}
	}
}
