// Package statcheck is a reusable statistical correctness harness for the
// sampling and estimation layers: chi-square uniformity checks,
// CI-coverage-rate checks, and unbiasedness checks, each with an explicit,
// documented false-positive budget.
//
// # Why a harness
//
// STORM's correctness claims are statistical — "the sample stream is
// uniform", "the 95% interval covers the truth 95% of the time", "the
// estimator is unbiased across the down→up transition" — so their tests
// must be statistical too. A naive assertion ("coverage ≥ 95% in 100
// runs") is either flaky (the true coverage IS ~95%, so ~half of all runs
// fall below it) or vacuous (a threshold low enough to never flake
// detects nothing). Every check here instead frames the assertion as a
// hypothesis test at significance alpha: the test statistic's
// distribution under the null ("the code is correct") is known, the
// rejection threshold is derived from alpha, and alpha IS the documented
// false-positive budget — with seeded RNGs the draw is made exactly once,
// so a passing seed set passes forever and the budget is spent only when
// a seed or the code changes.
//
// # False-positive budgets
//
// DefaultAlpha (1e-3) bounds each check's probability of failing on
// correct code to 0.1% per (code change, seed set) pair. Under
// continuous-integration reruns of fixed seeds the realized flake rate is
// zero: the randomness is in the seeds, not the scheduler. Callers pass a
// different alpha to trade sensitivity against budget; tightening alpha
// (say 1e-4) widens the acceptance region and weakens detection of real
// bias, so the default is deliberately not microscopic.
package statcheck

import (
	"math"
	"testing"

	"storm/internal/stats"
)

// DefaultAlpha is the per-check false-positive budget used by this
// repository's statistical suites: a check on correct code fails with
// probability at most 1e-3 per seed-set/code revision.
const DefaultAlpha = 1e-3

// Seeds derives n distinct deterministic seeds from base — the fixed seed
// sets the statistical suites run under. Distinctness matters: replicate
// runs must be independent draws, and reusing a seed silently halves the
// effective sample size of a coverage or uniformity check.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*1_000_003 // spaced so derived per-run RNGs don't collide
	}
	return out
}

// Interval is one confidence interval produced by a run under test.
type Interval struct {
	Low, High float64
}

// IntervalAround builds the symmetric interval value ± halfWidth.
func IntervalAround(value, halfWidth float64) Interval {
	return Interval{Low: value - halfWidth, High: value + halfWidth}
}

// Covers reports whether the interval contains truth. Infinite bounds
// count as covering (an honest "don't know yet" interval is not a miss).
func (iv Interval) Covers(truth float64) bool {
	return iv.Low <= truth && truth <= iv.High
}

// Coverage checks a CI coverage rate: of the intervals produced by
// len(intervals) independent seeded runs, at least nominal−slack should
// cover truth. nominal is the intervals' confidence level (e.g. 0.95);
// slack absorbs known, documented approximation error (t-distribution
// asymptotics, mid-stream population transitions) — the acceptance line
// is p0 = nominal − slack. The check rejects only when the observed
// coverage count falls more than z_alpha binomial standard deviations
// below n·p0, so on code whose true coverage is ≥ p0 it fails with
// probability at most alpha (one-sided normal approximation; n ≥ 100
// keeps the approximation honest). Failing the check means the intervals
// are materially under-covering — too narrow or biased — not that one
// unlucky run missed.
func Coverage(t testing.TB, name string, truth float64, intervals []Interval, nominal, slack, alpha float64) {
	t.Helper()
	n := len(intervals)
	if n == 0 {
		t.Fatalf("%s: no intervals to check", name)
	}
	covered := 0
	for _, iv := range intervals {
		if iv.Covers(truth) {
			covered++
		}
	}
	p0 := nominal - slack
	if p0 <= 0 || p0 >= 1 {
		t.Fatalf("%s: nominal %.3f − slack %.3f leaves no testable rate", name, nominal, slack)
	}
	z := stats.NormalQuantile(1 - alpha)
	threshold := float64(n)*p0 - z*math.Sqrt(float64(n)*p0*(1-p0))
	rate := float64(covered) / float64(n)
	if float64(covered) < threshold {
		t.Errorf("%s: CI covered truth %.6g in %d/%d runs (%.1f%%); need ≥ %.1f runs for nominal %.0f%% − slack %.1f%% at alpha %.0e",
			name, truth, covered, n, 100*rate, threshold, 100*nominal, 100*slack, alpha)
		return
	}
	t.Logf("%s: coverage %d/%d (%.1f%%) ≥ threshold %.1f (nominal %.0f%%, slack %.1f%%, alpha %.0e)",
		name, covered, n, 100*rate, threshold, 100*nominal, 100*slack, alpha)
}

// Uniform checks that observed category counts are consistent with a
// uniform distribution over the categories, by a chi-square
// goodness-of-fit test at significance alpha. The classical validity
// rule of thumb wants expected counts ≥ 5 per category; the check fails
// fast when the draw count is too small for the category count rather
// than silently testing nothing.
func Uniform(t testing.TB, name string, observed []int, alpha float64) {
	t.Helper()
	k := len(observed)
	if k < 2 {
		t.Fatalf("%s: need ≥ 2 categories, got %d", name, k)
	}
	total := 0
	for _, c := range observed {
		total += c
	}
	expected := make([]float64, k)
	for i := range expected {
		expected[i] = float64(total) / float64(k)
	}
	GoodnessOfFit(t, name, observed, expected, alpha)
}

// GoodnessOfFit checks observed counts against arbitrary expected counts
// by a chi-square test at significance alpha: the statistic exceeds the
// (1−alpha) chi-square quantile with probability alpha when the code
// draws from the expected distribution, so alpha is the check's
// false-positive budget.
func GoodnessOfFit(t testing.TB, name string, observed []int, expected []float64, alpha float64) {
	t.Helper()
	if len(observed) != len(expected) {
		t.Fatalf("%s: %d observed vs %d expected categories", name, len(observed), len(expected))
	}
	for i, e := range expected {
		if e < 5 {
			t.Fatalf("%s: expected count %.2f in category %d below 5; draw more samples or merge categories (chi-square validity)", name, e, i)
		}
	}
	stat := stats.ChiSquareStat(observed, expected)
	crit := stats.ChiSquareQuantile(1-alpha, len(observed)-1)
	if stat > crit {
		t.Errorf("%s: chi-square %.2f > critical %.2f (df=%d, alpha=%.0e): counts inconsistent with the expected distribution",
			name, stat, crit, len(observed)-1, alpha)
		return
	}
	t.Logf("%s: chi-square %.2f ≤ critical %.2f (df=%d, alpha=%.0e)", name, stat, crit, len(observed)-1, alpha)
}

// MeanWithin checks unbiasedness: the mean of values (one estimate per
// independent seeded run) should equal truth up to sampling noise. The
// acceptance region is truth ± (z_alpha·SE + slack), where SE is the
// values' estimated standard error — a two-sided z-test at significance
// alpha, widened by slack for known, documented approximation error
// (pass 0 when claiming exact unbiasedness). Requires enough runs for
// the CLT normal approximation (n ≥ 30).
func MeanWithin(t testing.TB, name string, truth float64, values []float64, slack, alpha float64) {
	t.Helper()
	n := len(values)
	if n < 30 {
		t.Fatalf("%s: need ≥ 30 runs for the normal approximation, got %d", name, n)
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	se := math.Sqrt(ss / float64(n-1) / float64(n))
	z := stats.NormalQuantile(1 - alpha/2)
	tol := z*se + slack
	if diff := math.Abs(mean - truth); diff > tol {
		t.Errorf("%s: mean of %d runs = %.6g, truth = %.6g, |diff| %.6g > tolerance %.6g (z=%.2f·SE=%.6g + slack %.6g, alpha=%.0e): estimator biased",
			name, n, mean, truth, diff, tol, z, se, slack, alpha)
		return
	}
	t.Logf("%s: mean %.6g within %.6g of truth %.6g over %d runs (alpha=%.0e)", name, mean, tol, truth, n, alpha)
}
