package statcheck

import (
	"math"
	"strings"
	"testing"

	"storm/internal/stats"
)

// recordTB captures failures from the checks under test. The embedded
// testing.TB satisfies the interface's unexported method; every method
// the harness calls is overridden. Fatalf panics with a sentinel (real
// Fatalf never returns), which callers recover via expectFatal.
type recordTB struct {
	testing.TB
	failed bool
	msg    string
}

type fatalSentinel struct{ msg string }

func (r *recordTB) Helper()                         {}
func (r *recordTB) Logf(format string, args ...any) {}
func (r *recordTB) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = format
}
func (r *recordTB) Fatalf(format string, args ...any) {
	panic(fatalSentinel{msg: format})
}

// expectFatal runs fn and reports whether it aborted via Fatalf.
func expectFatal(fn func()) (fatal bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(fatalSentinel); ok {
				fatal = true
				return
			}
			panic(rec)
		}
	}()
	fn()
	return false
}

func TestSeedsDistinct(t *testing.T) {
	seeds := Seeds(42, 500)
	seen := make(map[int64]bool, len(seeds))
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if other := Seeds(42, 500); other[100] != seeds[100] {
		t.Fatalf("Seeds not deterministic: %d vs %d", other[100], seeds[100])
	}
}

func TestIntervalCovers(t *testing.T) {
	iv := IntervalAround(10, 2)
	for _, tc := range []struct {
		truth float64
		want  bool
	}{{10, true}, {8, true}, {12, true}, {7.9, false}, {12.1, false}} {
		if got := iv.Covers(tc.truth); got != tc.want {
			t.Errorf("Covers(%v) = %v, want %v", tc.truth, got, tc.want)
		}
	}
	inf := Interval{Low: math.Inf(-1), High: math.Inf(1)}
	if !inf.Covers(1e300) {
		t.Error("infinite interval should cover everything")
	}
}

// nominalIntervals simulates n runs whose intervals cover truth with
// probability p each — the null model of a correctly calibrated CI.
func nominalIntervals(n int, p float64, truth float64, seed int64) []Interval {
	rng := stats.NewRNG(seed)
	out := make([]Interval, n)
	for i := range out {
		if rng.Float64() < p {
			out[i] = IntervalAround(truth, 1)
		} else {
			out[i] = IntervalAround(truth+3, 1) // miss
		}
	}
	return out
}

func TestCoverageAcceptsNominalRate(t *testing.T) {
	// True coverage exactly at nominal: must pass (up to the alpha budget;
	// the seed is fixed, so this is a one-time draw).
	ivs := nominalIntervals(400, 0.95, 100, 1)
	rec := &recordTB{}
	Coverage(rec, "nominal", 100, ivs, 0.95, 0.02, DefaultAlpha)
	if rec.failed {
		t.Fatalf("Coverage rejected a correctly calibrated CI: %s", rec.msg)
	}
}

func TestCoverageRejectsGrossUndercoverage(t *testing.T) {
	ivs := nominalIntervals(400, 0.70, 100, 2)
	rec := &recordTB{}
	Coverage(rec, "undercovering", 100, ivs, 0.95, 0.02, DefaultAlpha)
	if !rec.failed {
		t.Fatal("Coverage accepted a CI covering only ~70% at nominal 95%")
	}
}

func TestCoverageGuards(t *testing.T) {
	if !expectFatal(func() {
		Coverage(&recordTB{}, "empty", 0, nil, 0.95, 0.02, DefaultAlpha)
	}) {
		t.Error("Coverage should refuse an empty interval set")
	}
	if !expectFatal(func() {
		Coverage(&recordTB{}, "no-rate", 0, make([]Interval, 10), 0.5, 0.5, DefaultAlpha)
	}) {
		t.Error("Coverage should refuse nominal − slack ≤ 0")
	}
}

func TestUniformAcceptsUniformCounts(t *testing.T) {
	rng := stats.NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[rng.Intn(10)]++
	}
	rec := &recordTB{}
	Uniform(rec, "uniform", counts, DefaultAlpha)
	if rec.failed {
		t.Fatalf("Uniform rejected uniform counts: %s", rec.msg)
	}
}

func TestUniformRejectsSkewedCounts(t *testing.T) {
	rng := stats.NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		// Category 0 drawn twice as often as each other category.
		r := rng.Intn(11)
		if r == 10 {
			r = 0
		}
		counts[r]++
	}
	rec := &recordTB{}
	Uniform(rec, "skewed", counts, DefaultAlpha)
	if !rec.failed {
		t.Fatal("Uniform accepted a 2x-skewed category")
	}
}

func TestGoodnessOfFitValidityGuard(t *testing.T) {
	if !expectFatal(func() {
		GoodnessOfFit(&recordTB{}, "sparse", []int{1, 2, 3}, []float64{2, 2, 2}, DefaultAlpha)
	}) {
		t.Error("GoodnessOfFit should refuse expected counts below 5")
	}
	if !expectFatal(func() {
		Uniform(&recordTB{}, "one-category", []int{10}, DefaultAlpha)
	}) {
		t.Error("Uniform should refuse a single category")
	}
}

func TestMeanWithinAcceptsUnbiased(t *testing.T) {
	rng := stats.NewRNG(5)
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 50 + rng.NormFloat64()
	}
	rec := &recordTB{}
	MeanWithin(rec, "unbiased", 50, vals, 0, DefaultAlpha)
	if rec.failed {
		t.Fatalf("MeanWithin rejected an unbiased estimator: %s", rec.msg)
	}
}

func TestMeanWithinRejectsBiased(t *testing.T) {
	rng := stats.NewRNG(6)
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 51 + rng.NormFloat64() // bias of 1 ≈ 17 standard errors at n=300
	}
	rec := &recordTB{}
	MeanWithin(rec, "biased", 50, vals, 0, DefaultAlpha)
	if !rec.failed {
		t.Fatal("MeanWithin accepted a clearly biased estimator")
	}
}

func TestMeanWithinGuard(t *testing.T) {
	if !expectFatal(func() {
		MeanWithin(&recordTB{}, "few", 0, make([]float64, 5), 0, DefaultAlpha)
	}) {
		t.Error("MeanWithin should refuse fewer than 30 runs")
	}
}

// TestMessagesNameTheCheck pins that failure messages carry the caller's
// check name, since one statistical suite runs many named checks.
func TestMessagesNameTheCheck(t *testing.T) {
	ivs := nominalIntervals(400, 0.5, 100, 7)
	rec := &recordTB{}
	Coverage(rec, "my-check", 100, ivs, 0.95, 0.02, DefaultAlpha)
	if !rec.failed || !strings.Contains(rec.msg, "%s") && !strings.Contains(rec.msg, "my-check") {
		// rec.msg stores the format string; the name is its first verb.
		if !strings.HasPrefix(rec.msg, "%s") {
			t.Errorf("failure message should lead with the check name, got format %q", rec.msg)
		}
	}
}
