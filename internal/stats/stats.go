// Package stats provides the statistical substrate for STORM's online
// estimators and samplers: seeded random number generation, distribution
// quantiles for confidence intervals, shuffles, and weighted sampling via
// the alias method.
package stats

import (
	"math"
	"math/rand"
)

// RNG is the random source used across STORM. It wraps math/rand so every
// sampler and generator can be seeded deterministically, which keeps the
// statistical tests and benchmark figures reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence, i.e. a Geometric(p) variate on {0, 1, 2, ...}.
// Used by the LS-tree to pick the highest level a new record reaches.
func (g *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inverse transform: floor(log(U) / log(1-p)).
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf returns a Zipf-distributed value in [0, n) with exponent s >= 1.
func (g *RNG) Zipf(s float64, n uint64) uint64 {
	z := rand.NewZipf(g.r, s, 1, n-1)
	return z.Uint64()
}

// Shuffle performs a Fisher–Yates shuffle driven by swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// ShuffleInts shuffles xs in place.
func (g *RNG) ShuffleInts(xs []int) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// NormalQuantile returns the standard normal quantile Phi^{-1}(p) for
// p in (0, 1) using Acklam's rational approximation (relative error below
// 1.15e-9), which is more than enough precision for confidence intervals.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	const phigh = 1 - plow

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One step of Halley's method against the erfc-based CDF to polish.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalCDF returns the standard normal CDF Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ZScore returns the two-sided critical value z such that a standard normal
// variate lands in [-z, z] with the given confidence (e.g. 0.95 -> 1.96).
func ZScore(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0, 1)")
	}
	return NormalQuantile(0.5 + confidence/2)
}

// StudentTQuantile returns the two-sided critical value of Student's t
// distribution with nu degrees of freedom at the given confidence level.
// Online aggregation uses t-based intervals while the sample is small and
// converges to z-based intervals as nu grows.
func StudentTQuantile(confidence float64, nu int) float64 {
	if nu <= 0 {
		panic("stats: degrees of freedom must be positive")
	}
	if nu > 200 {
		return ZScore(confidence)
	}
	// Solve F(t) = 0.5 + confidence/2 by bisection on the CDF. The CDF is
	// evaluated through the regularized incomplete beta function.
	target := 0.5 + confidence/2
	lo, hi := 0.0, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if studentTCDF(mid, float64(nu)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// studentTCDF returns P(T <= t) for Student's t with nu degrees of freedom.
func studentTCDF(t, nu float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	ib := regIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x)
	}
	// Symmetry relation.
	lbetaSym := math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta) / b
	return 1 - lbetaSym*betacf(b, a, 1-x)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300

	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
