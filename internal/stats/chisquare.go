package stats

import "math"

// ChiSquareQuantile returns the approximate quantile of the chi-square
// distribution with k degrees of freedom at probability p, using the
// Wilson–Hilferty transformation. Accuracy is within a fraction of a
// percent for k >= 3, which is sufficient for the uniformity tests the
// samplers run against themselves.
func ChiSquareQuantile(p float64, k int) float64 {
	if k <= 0 {
		panic("stats: chi-square degrees of freedom must be positive")
	}
	z := NormalQuantile(p)
	kf := float64(k)
	t := 1 - 2/(9*kf) + z*math.Sqrt(2/(9*kf))
	return kf * t * t * t
}

// ChiSquareStat computes the chi-square goodness-of-fit statistic for
// observed counts against expected counts. The slices must have equal
// length and every expected count must be positive.
func ChiSquareStat(observed []int, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: observed/expected length mismatch")
	}
	var stat float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic("stats: expected count must be positive")
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}
