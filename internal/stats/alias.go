package stats

import "fmt"

// Alias implements Vose's alias method for O(1) sampling from a discrete
// distribution after O(n) preprocessing. The RS-tree sampler uses it to pick
// canonical-set nodes with probability proportional to their subtree counts.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights. At
// least one weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: negative weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: all weights are zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Draw returns an index sampled with probability proportional to its weight.
func (a *Alias) Draw(g *RNG) int {
	i := g.Intn(len(a.prob))
	if g.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of categories in the table.
func (a *Alias) Len() int { return len(a.prob) }
