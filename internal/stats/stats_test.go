package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p    float64
		want float64
		tol  float64
	}{
		{0.5, 0, 1e-9},
		{0.975, 1.959964, 1e-5},
		{0.995, 2.575829, 1e-5},
		{0.84134, 0.99998, 1e-3},
		{0.025, -1.959964, 1e-5},
		{0.001, -3.090232, 1e-5},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("quantile at 0 should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 1 should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range p should give NaN")
	}
}

// Property: NormalCDF(NormalQuantile(p)) == p.
func TestNormalQuantileInverse(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-6 || p > 1-1e-6 {
			return true
		}
		got := NormalCDF(NormalQuantile(p))
		return math.Abs(got-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestZScore(t *testing.T) {
	if got := ZScore(0.95); math.Abs(got-1.959964) > 1e-4 {
		t.Errorf("ZScore(0.95) = %v", got)
	}
	if got := ZScore(0.99); math.Abs(got-2.575829) > 1e-4 {
		t.Errorf("ZScore(0.99) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ZScore(1.5) should panic")
		}
	}()
	ZScore(1.5)
}

func TestStudentTQuantile(t *testing.T) {
	// Reference values from standard t tables (two-sided 95%).
	cases := []struct {
		nu   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{100, 1.984},
	}
	for _, c := range cases {
		got := StudentTQuantile(0.95, c.nu)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("t(0.95, %d) = %v, want %v", c.nu, got, c.want)
		}
	}
	// Large nu converges to z.
	if got := StudentTQuantile(0.95, 500); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("t with large nu = %v, want ~1.96", got)
	}
}

func TestGeometric(t *testing.T) {
	g := NewRNG(42)
	const trials = 200000
	var sum float64
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		v := g.Geometric(0.5)
		if v < 0 {
			t.Fatalf("negative geometric value %d", v)
		}
		sum += float64(v)
		counts[v]++
	}
	// Mean of Geometric(1/2) on {0,1,...} is 1.
	mean := sum / trials
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("geometric mean = %v, want ~1", mean)
	}
	// P(0) should be about 1/2.
	p0 := float64(counts[0]) / trials
	if math.Abs(p0-0.5) > 0.01 {
		t.Errorf("P(X=0) = %v, want ~0.5", p0)
	}
	if g.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	g := NewRNG(1)
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) should panic", p)
				}
			}()
			g.Geometric(p)
		}()
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	g := NewRNG(11)
	const trials = 400000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[a.Draw(g)]++
	}
	for i, w := range weights {
		want := w / 10 * trials
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("category %d: got %v draws, want ~%v", i, got, want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights should error")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if got := a.Draw(g); got != 1 {
			t.Fatalf("drew zero-weight category %d", got)
		}
	}
}

func TestChiSquareQuantile(t *testing.T) {
	// Reference values: chi2(0.95, k).
	cases := []struct {
		k    int
		want float64
	}{
		{5, 11.070},
		{10, 18.307},
		{50, 67.505},
		{100, 124.342},
	}
	for _, c := range cases {
		got := ChiSquareQuantile(0.95, c.k)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("chi2(0.95, %d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestChiSquareStat(t *testing.T) {
	obs := []int{10, 20, 30}
	exp := []float64{20, 20, 20}
	got := ChiSquareStat(obs, exp)
	want := 100.0/20 + 0 + 100.0/20
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ChiSquareStat = %v, want %v", got, want)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(21)
	counts := make(map[uint64]int)
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := g.Zipf(1.5, 100)
		if v >= 100 {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 10 heavily under s=1.5.
	if counts[0] < 5*counts[10] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
}

func TestDistributionalHelpers(t *testing.T) {
	g := NewRNG(22)
	var expSum, normSum float64
	const n = 100000
	for i := 0; i < n; i++ {
		expSum += g.ExpFloat64()
		normSum += g.NormFloat64()
	}
	if m := expSum / n; math.Abs(m-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", m)
	}
	if m := normSum / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if g.Int63() < 0 {
		t.Error("Int63 must be non-negative")
	}
	perm := g.Perm(10)
	seen := map[int]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Perm not a permutation: %v", perm)
	}
}

func TestBernoulliRates(t *testing.T) {
	g := NewRNG(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("bernoulli rate = %v", rate)
	}
}

func TestChiSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths should panic")
		}
	}()
	ChiSquareStat([]int{1}, []float64{1, 2})
}

func TestChiSquareZeroExpectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero expected should panic")
		}
	}()
	ChiSquareStat([]int{1}, []float64{0})
}

func TestChiSquareQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	ChiSquareQuantile(0.95, 0)
}

func TestStudentTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nu=0 should panic")
		}
	}()
	StudentTQuantile(0.95, 0)
}

func TestShuffleIntsPermutes(t *testing.T) {
	g := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	g.ShuffleInts(xs)
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %d", v)
		}
	}
}
