package rstree

// fenwick is a binary indexed tree over int weights supporting point
// updates, prefix sums and weighted search. The RS-tree sampler keeps one
// per query to draw canonical parts with probability proportional to their
// remaining (unconsumed) subtree cardinality in O(log n) per draw, with
// weights that shrink as samples are consumed and grow as parts are
// appended by lazy explosion.
type fenwick struct {
	tree    []int // 1-based partial sums
	weights []int // current weight per slot
	total   int
}

// newFenwick returns an empty tree with the given capacity hint.
func newFenwick(capacity int) *fenwick {
	if capacity < 4 {
		capacity = 4
	}
	return &fenwick{tree: make([]int, capacity+1), weights: make([]int, 0, capacity)}
}

// Len returns the number of slots.
func (f *fenwick) Len() int { return len(f.weights) }

// Total returns the sum of all weights.
func (f *fenwick) Total() int { return f.total }

// Get returns the weight of slot i.
func (f *fenwick) Get(i int) int { return f.weights[i] }

// Append adds a new slot with the given weight and returns its index.
func (f *fenwick) Append(w int) int {
	f.weights = append(f.weights, w)
	n := len(f.weights) // 1-based position of the new slot
	if n+1 > len(f.tree) {
		grown := make([]int, 2*len(f.tree))
		copy(grown, f.tree)
		f.tree = grown
	}
	// A new BIT cell covers the range (n - lowbit(n), n]; seed it with the
	// already-known prefix sums so later queries see a consistent tree.
	lb := n & (-n)
	f.tree[n] = f.prefix(n-1) - f.prefix(n-lb) + w
	f.total += w
	return n - 1
}

// Add changes the weight of slot i by delta.
func (f *fenwick) Add(i, delta int) {
	f.weights[i] += delta
	f.addRaw(i, delta)
	f.total += delta
}

// Set sets the weight of slot i.
func (f *fenwick) Set(i, w int) {
	f.Add(i, w-f.weights[i])
}

func (f *fenwick) addRaw(i, delta int) {
	for j := i + 1; j <= len(f.weights); j += j & (-j) {
		f.tree[j] += delta
	}
}

// prefix returns the sum of weights of slots [0, i) (i is 1-based count).
func (f *fenwick) prefix(i int) int {
	var s int
	for j := i; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// Find returns the index of the slot selected by a weighted draw with
// target ∈ [0, Total()): the smallest i whose prefix sum through slot i
// exceeds target. It runs in O(log n).
func (f *fenwick) Find(target int) int {
	idx := 0
	bit := 1
	n := len(f.weights)
	for bit<<1 <= n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= n && f.tree[next] <= target {
			idx = next
			target -= f.tree[next]
		}
	}
	return idx
}
