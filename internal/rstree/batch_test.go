package rstree

import (
	"sync"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// drawSerial reads n samples (or the whole stream if n < 0) via Next.
func drawSerial(idx *Index, mode sampling.Mode, seed int64, n int) []data.ID {
	s := idx.Sampler(testQuery, mode, stats.NewRNG(seed))
	var out []data.ID
	for n < 0 || len(out) < n {
		e, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, e.ID)
	}
	return out
}

// drawBatched reads the same stream via NextBatch with a cycling pattern of
// batch sizes, exercising batch boundaries at many offsets.
func drawBatched(idx *Index, mode sampling.Mode, seed int64, n int, sizes []int) []data.ID {
	s := idx.Sampler(testQuery, mode, stats.NewRNG(seed))
	var out []data.ID
	buf := make([]data.Entry, 512)
	for i := 0; n < 0 || len(out) < n; i++ {
		k := sizes[i%len(sizes)]
		if n >= 0 && k > n-len(out) {
			k = n - len(out)
		}
		got := s.NextBatch(buf, k)
		for _, e := range buf[:got] {
			out = append(out, e.ID)
		}
		if got < k {
			break
		}
	}
	return out
}

func assertSameStream(t *testing.T, label string, want, got []data.ID) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: stream lengths differ: serial %d, batched %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: streams diverge at %d: serial %d, batched %d", label, i, want[i], got[i])
		}
	}
}

// TestNextBatchMatchesNextWithoutReplacement is the determinism contract:
// for a fixed seed, the NextBatch stream must be byte-identical to the Next
// stream — including across buffer exhaustion and materialization
// boundaries, which the tiny BufferSize forces constantly.
func TestNextBatchMatchesNextWithoutReplacement(t *testing.T) {
	entries := genEntries(9000, 23)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 4, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	serial := drawSerial(idx, sampling.WithoutReplacement, 77, -1)
	if len(serial) == 0 {
		t.Fatal("empty reference stream")
	}
	for _, sizes := range [][]int{{1}, {7}, {64}, {512}, {1, 3, 17, 256}} {
		batched := drawBatched(idx, sampling.WithoutReplacement, 77, -1, sizes)
		assertSameStream(t, "without-replacement", serial, batched)
	}
}

// TestNextBatchMatchesNextWithReplacement covers the weighted-descent mode.
func TestNextBatchMatchesNextWithReplacement(t *testing.T) {
	entries := genEntries(9000, 31)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 8, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	serial := drawSerial(idx, sampling.WithReplacement, 99, 3000)
	batched := drawBatched(idx, sampling.WithReplacement, 99, 3000, []int{5, 250, 11})
	assertSameStream(t, "with-replacement", serial, batched)
}

// TestNextBatchInterleavedWithNext mixes the two APIs on one sampler: the
// combined stream must equal the pure-serial stream, because NextBatch may
// not consume RNG or sampler state any differently than Next.
func TestNextBatchInterleavedWithNext(t *testing.T) {
	entries := genEntries(6000, 41)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	serial := drawSerial(idx, sampling.WithoutReplacement, 5, -1)

	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(5))
	var mixed []data.ID
	buf := make([]data.Entry, 64)
	for turn := 0; ; turn++ {
		if turn%2 == 0 {
			e, ok := s.Next()
			if !ok {
				break
			}
			mixed = append(mixed, e.ID)
			continue
		}
		got := s.NextBatch(buf, 1+turn%17)
		for _, e := range buf[:got] {
			mixed = append(mixed, e.ID)
		}
		if got == 0 {
			break
		}
	}
	assertSameStream(t, "interleaved", serial, mixed)
}

// TestNextBatchConcurrentIdentical runs batched same-seed streams
// concurrently with cache-perturbing other-seed streams (under -race via
// make race): batching shares the node buffer cache and the scratch pools
// across queries, neither of which may leak query state.
func TestNextBatchConcurrentIdentical(t *testing.T) {
	entries := genEntries(8000, 17)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 8, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	const dup = 6
	ref := drawBatched(idx, sampling.WithoutReplacement, 42, 400, []int{37})
	streams := make([][]data.ID, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 1 {
				_ = drawBatched(idx, sampling.WithoutReplacement, int64(1000+i), 400, []int{64})
			}
			streams[i] = drawBatched(idx, sampling.WithoutReplacement, 42, 400, []int{37})
		}(i)
	}
	wg.Wait()
	for i, got := range streams {
		if len(got) != len(ref) {
			t.Fatalf("stream %d: %d samples, reference %d", i, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("stream %d diverges at %d: %d vs %d", i, j, got[j], ref[j])
			}
		}
	}
}

// clusteredEntries builds a heavily skewed point set: most mass in a few
// tight clusters, the rest uniform background — the adversarial layout for
// samplers whose per-node buffers could bias toward dense regions.
func clusteredEntries(n int, seed int64) []data.Entry {
	rng := stats.NewRNG(seed)
	centers := [][2]float64{{12, 18}, {15, 80}, {55, 55}, {83, 22}, {90, 91}}
	out := make([]data.Entry, n)
	for i := range out {
		var x, y float64
		if rng.Bernoulli(0.9) {
			c := centers[rng.Intn(len(centers))]
			x = c[0] + rng.Uniform(-1.5, 1.5)
			y = c[1] + rng.Uniform(-1.5, 1.5)
		} else {
			x = rng.Uniform(0, 100)
			y = rng.Uniform(0, 100)
		}
		out[i] = data.Entry{ID: data.ID(i), Pos: geo.Vec{x, y, rng.Uniform(0, 100)}}
	}
	return out
}

// TestBatchUniformityChiSquare is the statistical regression guard: samples
// drawn in batches from the clustered set must stay uniform over P ∩ Q. The
// matching records are split into contiguous-ordinal buckets and the
// with-replacement batch stream's bucket counts are chi-square tested
// against the uniform expectation.
func TestBatchUniformityChiSquare(t *testing.T) {
	entries := clusteredEntries(40000, 71)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 8, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	// A query straddling two clusters plus background: skewed density
	// inside the range.
	q := geo.NewRect(geo.Vec{5, 5, 0}, geo.Vec{60, 65, 100})

	bucketOf := make(map[data.ID]int)
	matchCount := 0
	for _, e := range entries {
		if q.Contains(e.Pos) {
			bucketOf[e.ID] = matchCount
			matchCount++
		}
	}
	const buckets = 32
	if matchCount < buckets*50 {
		t.Fatalf("query too selective for the test: %d matches", matchCount)
	}

	s := idx.Sampler(q, sampling.WithReplacement, stats.NewRNG(101))
	const draws = 40000
	buf := make([]data.Entry, 1000)
	observed := make([]int, buckets)
	for got := 0; got < draws; {
		n := s.NextBatch(buf, len(buf))
		if n == 0 {
			t.Fatal("stream ended early")
		}
		for _, e := range buf[:n] {
			ord, ok := bucketOf[e.ID]
			if !ok {
				t.Fatalf("sample %d outside query", e.ID)
			}
			observed[ord*buckets/matchCount]++
		}
		got += n
	}

	expected := make([]float64, buckets)
	for id, ord := range bucketOf {
		_ = id
		expected[ord*buckets/matchCount]++
	}
	for i := range expected {
		expected[i] *= float64(draws) / float64(matchCount)
	}
	stat := stats.ChiSquareStat(observed, expected)
	crit := stats.ChiSquareQuantile(0.999, buckets-1)
	if stat > crit {
		t.Errorf("chi-square %0.1f exceeds 99.9%% critical value %0.1f: batch stream is biased", stat, crit)
	}
}
