// Package rstree implements STORM's second and primary sampling index, the
// RS-tree: a single Hilbert R-tree augmented with per-node sample buffers.
//
// Where the LS-tree maintains O(log N) separate trees, the RS-tree keeps
// one tree and attaches to every node u a buffer S(u): a uniform
// without-replacement sample of the points below u, stored in random order
// (leaves buffer all of their entries). The paper's three ideas map onto
// this implementation as follows:
//
//   - Sample buffering: S(u) is precomputed at build time and stored with
//     the node (as its on-disk page layout would), tagged with the node's
//     version so updates invalidate it and the next query regenerates it
//     lazily. Its size is the tree fanout, so a buffer occupies about one
//     disk page alongside its node.
//
//   - Acceptance/rejection + weighted node selection: a query maintains a
//     set of active "parts" (disjoint subtrees covering P ∩ Q) and draws
//     the next sample from part u with probability proportional to the
//     number of not-yet-consumed points below u, using a Fenwick tree for
//     O(log·) weighted draws. Buffer entries that fall outside Q (possible
//     only for boundary parts) are consumed-and-rejected, which is exactly
//     the acceptance/rejection step that keeps the output uniform on P ∩ Q.
//
//   - Lazy exploration: the query frontier stops at fully-contained
//     subtrees and at small boundary subtrees, never expanding them up
//     front. A part's subtree is read in full (one sequential range
//     report, then served from memory) only when sampling pressure
//     exhausts its stored buffer — which happens with probability
//     proportional to how many samples actually land in it, so subtrees
//     the sample stream never reaches are never read at all.
//
// Drawing k samples touches the frontier node pages repeatedly instead of
// k random leaf pages, so with any reasonable buffer pool the I/O cost
// stays near O(r(N) + k/B) versus RandomPath's Ω(k) (paper Figure 3a),
// and is bounded by one full range report no matter how large k grows.
//
// # Concurrency
//
// The index splits its state into a shared-immutable part and a
// query-local part. The tree structure and the published per-node sample
// buffers are shared and never mutated in place: a stale buffer (node
// version moved past the buffer's) is regenerated off to the side and
// published with an atomic swap, and its contents are a pure function of
// (index seed, node page, node version), so racing regenerations produce
// byte-identical buffers and either publication is correct. Everything a
// query mutates — the frontier, Fenwick weights, per-part permutation
// cursors, the consumed set, materialized part contents — lives in the
// Sampler. Any number of Samplers may therefore run concurrently against
// one Index. Mutations (Insert, Delete) must still be serialized against
// in-flight samplers by the caller; package engine does this with a
// per-dataset RWMutex.
package rstree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/rtree"
	"storm/internal/stats"
)

// Config controls RS-tree construction.
type Config struct {
	// Fanout is the underlying Hilbert R-tree fanout; 0 means
	// rtree.DefaultFanout.
	Fanout int
	// BufferSize is the per-node sample buffer size; 0 means Fanout.
	BufferSize int
	// Device charges page accesses; nil disables accounting.
	Device iosim.Accountant
	// Bounds is the coordinate space for Hilbert quantization. Empty
	// bounds are computed from the build entries.
	Bounds geo.Rect
	// Seed drives buffer generation randomness.
	Seed int64
	// LazyCutoff is the subtree size below which a query keeps a
	// partially-intersecting subtree whole instead of descending into it
	// (the paper's lazy exploration: "avoid exploring small subtrees in
	// R_Q which are expensive yet relatively useless"). Samples drawn
	// from such a subtree that land outside the query are rejected —
	// acceptance/rejection trades a few wasted (cheap, buffered) draws
	// for never materializing boundary leaves the query may not need.
	// 0 means Fanout², i.e. boundary subtrees stay whole at the
	// leaf-parent level.
	LazyCutoff int
	// LazyBuffers defers per-node sample generation to first query use.
	// By default buffers are precomputed at build time, matching the
	// paper's design where S(u) is stored alongside node u on disk;
	// updates always regenerate affected buffers lazily.
	LazyBuffers bool
	// Packing is the bulk-load sort order passed through to the
	// underlying R-tree; the zero value is STR (see rtree.Packing).
	Packing rtree.Packing
}

// Index is an RS-tree over a point set. Any number of Samplers may run
// against one Index concurrently: cached node buffers are immutable once
// published and regenerated copy-on-write (see the package comment).
// Insert and Delete must be externally serialized against in-flight
// samplers.
type Index struct {
	cfg  Config
	tree *rtree.Tree
	// regens counts lazy buffer regenerations (a stale or absent S(u)
	// rebuilt by a query). Atomic: concurrent queries race to regenerate
	// the same buffer, and each racer's build counts — the duplicated
	// work is exactly what this metric makes visible.
	regens atomic.Uint64
}

// BufferRegens returns how many per-node sample buffers have been
// (re)generated lazily by queries since the index was built — update
// invalidation pressure plus, under LazyBuffers, first-touch generation.
func (x *Index) BufferRegens() uint64 { return x.regens.Load() }

// Build constructs an RS-tree over the given entries.
func Build(entries []data.Entry, cfg Config) (*Index, error) {
	if cfg.Fanout == 0 {
		cfg.Fanout = rtree.DefaultFanout
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = cfg.Fanout
	}
	if cfg.BufferSize < 2 {
		return nil, fmt.Errorf("rstree: BufferSize must be at least 2")
	}
	if cfg.LazyCutoff == 0 {
		cfg.LazyCutoff = cfg.Fanout * cfg.Fanout
	}
	if cfg.Device == nil {
		cfg.Device = iosim.Discard
	}
	bounds := cfg.Bounds
	if bounds.IsEmpty() || bounds == (geo.Rect{}) {
		bounds = rtree.EntryBounds(entries)
	}
	if bounds.IsEmpty() || bounds == (geo.Rect{}) {
		// Empty data set (or every point at the origin): use a unit box
		// so the quantizer is valid; it clamps out-of-box coordinates.
		bounds = geo.NewRect(geo.Vec{0, 0, 0}, geo.Vec{1, 1, 1})
	}
	t, err := rtree.New(rtree.Config{
		Fanout:  cfg.Fanout,
		Device:  cfg.Device,
		Hilbert: true,
		Bounds:  bounds,
		Packing: cfg.Packing,
	})
	if err != nil {
		return nil, fmt.Errorf("rstree: %w", err)
	}
	t.BulkLoad(entries)
	idx := &Index{cfg: cfg, tree: t}
	if !cfg.LazyBuffers {
		idx.precomputeBuffers(t.Root())
	}
	return idx, nil
}

// precomputeBuffers materializes every node's sample buffer at build time,
// as the on-disk layout would: S(u) is written next to u once, so queries
// only ever *read* buffers. Leaf buffers double as the shuffled entry
// list, so only internal nodes need generation work here.
func (x *Index) precomputeBuffers(n *rtree.Node) {
	x.bufferFor(n, x.tree.Device())
	for _, c := range n.Children() {
		x.precomputeBuffers(c)
	}
}

// Tree exposes the underlying Hilbert R-tree (for counting, reporting and
// structural tests).
func (x *Index) Tree() *rtree.Tree { return x.tree }

// Len returns the number of indexed records.
func (x *Index) Len() int { return x.tree.Len() }

// Count returns |P ∩ q| exactly.
func (x *Index) Count(q geo.Rect) int { return x.tree.Count(q) }

// Insert adds a record. Buffers along the insertion path are invalidated
// by the node version bump and regenerated lazily by the next query.
func (x *Index) Insert(e data.Entry) { x.tree.Insert(e) }

// InsertBatch adds a batch of records in one pass — Hilbert-sorted run
// merging instead of per-entry descents (see rtree.Tree.InsertBatch).
// The entries slice is reordered in place. Stale sample buffers along the
// touched paths invalidate by version, exactly as with Insert.
func (x *Index) InsertBatch(entries []data.Entry) { x.tree.InsertBatch(entries) }

// Delete removes a record, returning true if it existed.
func (x *Index) Delete(e data.Entry) bool { return x.tree.Delete(e) }

// buffer is the cached per-node sample attachment. Once published through
// Node.SetAux it is immutable: regeneration builds a fresh buffer and swaps
// it in, so concurrent queries reading the old one are never disturbed.
type buffer struct {
	version uint64
	entries []data.Entry // uniform without-replacement sample, random order
}

// bufferSeed derives the RNG seed for generating node n's buffer at its
// current version. Making the seed — and therefore the buffer contents — a
// pure function of (index seed, node page, node version) gives two
// guarantees at once: racing regenerations by concurrent queries produce
// identical buffers (so an atomic last-write-wins publish is correct), and
// a query's sample stream depends only on its own RNG, never on which
// other queries happened to touch the cache first (seed reproducibility).
// The mixing is splitmix64-style so nearby pages and versions decorrelate.
func (x *Index) bufferSeed(n *rtree.Node) int64 {
	z := uint64(x.cfg.Seed) ^ uint64(n.PageID())*0x9E3779B97F4A7C15 ^ n.Version()*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}

// bufferFor returns node n's sample buffer, regenerating it when the node
// has changed since the buffer was built. Reading the buffer charges one
// access of the node's page (the buffer is stored with the node); the
// charge and any regeneration I/O go to acct, the accountant of whichever
// query triggered the read. Regeneration is generate-then-publish: the new
// buffer is built off to the side and swapped in atomically, never mutating
// the previously published one.
func (x *Index) bufferFor(n *rtree.Node, acct iosim.Accountant) []data.Entry {
	if b, ok := n.Aux().(*buffer); ok && b.version == n.Version() {
		return b.entries
	}
	x.regens.Add(1)
	s := x.cfg.BufferSize
	if n.IsLeaf() {
		// Leaf buffers hold every entry (in random order): the leaf is
		// the explosion base case, so its buffer must be exhaustive.
		s = n.Count()
	}
	ent := x.sampleSubtree(n, s, acct)
	n.SetAux(&buffer{version: n.Version(), entries: ent})
	return ent
}

// sampleSubtree draws a uniform without-replacement sample of size at most
// s from the points below n, in random order. It works by drawing s
// distinct positions in the subtree's canonical enumeration (children in
// order, then leaf entries in order) and descending only into children that
// own a drawn position, so generation costs O(s · height) node visits. The
// randomness comes from a private RNG seeded by (node, version), so the
// result is deterministic for a given tree state.
func (x *Index) sampleSubtree(n *rtree.Node, s int, acct iosim.Accountant) []data.Entry {
	count := n.Count()
	if count == 0 {
		return nil
	}
	if s > count {
		s = count
	}
	rng := stats.NewRNG(x.bufferSeed(n))
	positions := distinctPositions(rng, count, s)
	sort.Ints(positions)
	out := make([]data.Entry, 0, s)
	x.collectPositions(n, positions, 0, &out, acct)
	putInts(positions)
	// The positions were sorted for the descent; shuffle the collected
	// entries so the buffer order is uniform.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// distinctPositions returns s distinct uniform values in [0, count) in a
// pooled slice (return it with putInts).
func distinctPositions(rng *stats.RNG, count, s int) []int {
	if s*2 >= count {
		// Dense case: partial Fisher–Yates over the full range.
		all := getInts(count)
		for i := range all {
			all[i] = i
		}
		for i := 0; i < s; i++ {
			j := i + rng.Intn(count-i)
			all[i], all[j] = all[j], all[i]
		}
		return all[:s]
	}
	seen := make(map[int]struct{}, s)
	out := getInts(s)[:0]
	for len(out) < s {
		p := rng.Intn(count)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// collectPositions resolves sorted subtree positions to entries, charging
// visited pages to acct. positions are absolute within the subtree whose
// enumeration starts at base; passing the offset down instead of copying
// re-based sub-slices keeps the descent allocation-free.
func (x *Index) collectPositions(n *rtree.Node, positions []int, base int, out *[]data.Entry, acct iosim.Accountant) {
	if len(positions) == 0 {
		return
	}
	acct.Access(n.PageID())
	if n.IsLeaf() {
		entries := n.Entries()
		for _, p := range positions {
			*out = append(*out, entries[p-base])
		}
		return
	}
	lo := base
	idx := 0
	for _, c := range n.Children() {
		hi := lo + c.Count()
		start := idx
		for idx < len(positions) && positions[idx] < hi {
			idx++
		}
		if idx > start {
			x.collectPositions(c, positions[start:idx], lo, out, acct)
		}
		lo = hi
		if idx == len(positions) {
			break
		}
	}
}
