package rstree

import (
	"sync"
	"testing"

	"storm/internal/data"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// TestConcurrentSamplers runs many samplers over one index at once (run
// with -race): each stream must stay a valid without-replacement sample —
// in range, duplicate-free, complete — while all of them share, and race
// to regenerate, the same lazy node buffers.
func TestConcurrentSamplers(t *testing.T) {
	entries := genEntries(8000, 11)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	truth := matching(entries, testQuery)

	const workers = 8
	var wg sync.WaitGroup
	streams := make([][]data.Entry, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(int64(100+i)))
			var got []data.Entry
			for {
				e, ok := s.Next()
				if !ok {
					break
				}
				got = append(got, e)
			}
			streams[i] = got
		}(i)
	}
	wg.Wait()

	for i, got := range streams {
		if len(got) != len(truth) {
			t.Errorf("sampler %d: %d samples, want %d", i, len(got), len(truth))
			continue
		}
		seen := make(map[data.ID]bool, len(got))
		for _, e := range got {
			if !truth[e.ID] {
				t.Errorf("sampler %d: entry %d outside query", i, e.ID)
			}
			if seen[e.ID] {
				t.Errorf("sampler %d: duplicate entry %d", i, e.ID)
			}
			seen[e.ID] = true
		}
	}
}

// TestConcurrentSamplersSameSeedIdentical checks buffer-cache independence:
// samplers with the same RNG seed must produce identical streams even when
// they race against each other and against differently-seeded samplers
// that perturb which node buffers are cached. Per-node buffers are seeded
// by (page, version), never by query history, which is what makes this
// hold.
func TestConcurrentSamplersSameSeedIdentical(t *testing.T) {
	entries := genEntries(8000, 17)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 8, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}

	const dup = 6
	const k = 400
	draw := func(seed int64) []data.ID {
		s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(seed))
		out := make([]data.ID, 0, k)
		for len(out) < k {
			e, ok := s.Next()
			if !ok {
				break
			}
			out = append(out, e.ID)
		}
		return out
	}

	ref := draw(42)
	streams := make([][]data.ID, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 1 {
				_ = draw(int64(1000 + i)) // cache perturbation
			}
			streams[i] = draw(42)
		}(i)
	}
	wg.Wait()

	for i, s := range streams {
		if len(s) != len(ref) {
			t.Fatalf("stream %d: %d samples, reference %d", i, len(s), len(ref))
		}
		for j := range s {
			if s[j] != ref[j] {
				t.Fatalf("stream %d diverges at %d: %d vs %d", i, j, s[j], ref[j])
			}
		}
	}
}
