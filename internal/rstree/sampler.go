package rstree

import (
	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/pred"
	"storm/internal/rtree"
	"storm/internal/sampling"
	"storm/internal/stats"
)

// part is one active element of a query's canonical decomposition: a
// disjoint subtree from which samples are drawn. A part starts in buffered
// state, serving draws from the node's stored sample S(u); if sampling
// pressure exhausts the buffer, the part is *materialized*: its subtree is
// range-reported once (sequential page reads), filtered against the query
// and the already-consumed set, shuffled, and served from memory. Parts
// are never split, so the canonical decomposition stays disjoint by
// construction.
type part struct {
	node *rtree.Node
	// buf is the active sample source: initially the node's stored
	// buffer, after materialization the remaining matching entries.
	buf    []data.Entry
	order  []int // query-local lazy Fisher–Yates permutation of buf
	cursor int
	// materialized marks that buf holds the exact remaining entries.
	materialized bool
	// contained marks a subtree entirely inside the query: its draws are
	// accepted without a per-entry containment test.
	contained bool
	// predAll marks a subtree whose attribute digests prove every record
	// satisfies the query predicate: its draws skip the per-entry
	// predicate test. Always true when the query has no predicate.
	predAll bool
}

// Sampler is the RS-tree's online sample stream for one query. It
// implements sampling.Sampler and sampling.BatchSampler. Without-
// replacement mode emits every record of P ∩ Q exactly once in uniformly
// random prefix order; with-replacement mode emits independent uniform
// samples via weighted random descent.
//
// A Sampler owns all of its query's mutable state, so any number of
// Samplers may run concurrently against the same Index; each individual
// Sampler is single-goroutine (wrap it if a query fans out).
type Sampler struct {
	index *Index
	query geo.Rect
	mode  sampling.Mode
	rng   *stats.RNG
	// acct receives this query's page charges; defaults to the tree's
	// shared device and can be redirected via AttributeIO for race-free
	// per-query I/O accounting.
	acct iosim.Accountant
	// chg is the active charge target: acct normally, the run-length
	// batcher while a NextBatch call is in flight. Swapping the target —
	// never the charge sequence — is what lets a batch take the device
	// lock once per flush while keeping stats identical to serial draws.
	chg   iosim.Accountant
	batch *iosim.Batcher
	// filter is the query's predicate pushdown state; nil means no
	// predicate. Subtrees it rules out never enter the frontier, and
	// draws failing the predicate are consumed-and-rejected, which keeps
	// the cross-part draw distribution exact over qualifying records.
	filter *rtree.TreeFilter

	// without-replacement state
	parts []*part
	fen   *fenwick
	seen  *sampling.IDSet
	init  bool

	// with-replacement state
	wrNodes     []*rtree.Node
	wrContained []bool
	wrPredAll   []bool
	wrWeights   []int
	wrAlias     *stats.Alias
	// MaxAttempts bounds with-replacement rejection retries (a query
	// with q = 0 would otherwise never terminate).
	MaxAttempts int

	// instrumentation
	explosions uint64
	rejects    uint64
	draws      uint64
}

// Explosions returns how many parts were materialized (their subtrees
// bulk-loaded) so far — the exploration pressure that the sample-buffer
// size controls.
func (s *Sampler) Explosions() uint64 { return s.explosions }

// Rejects returns how many consumed draws fell outside the query (the
// acceptance/rejection overhead of keeping boundary subtrees whole).
func (s *Sampler) Rejects() uint64 { return s.rejects }

// SamplerStats implements sampling.StatsReporter.
func (s *Sampler) SamplerStats() sampling.SamplerStats {
	st := sampling.SamplerStats{
		Draws:      s.draws,
		Rejects:    s.rejects,
		Explosions: s.explosions,
	}
	if s.filter != nil {
		st.Pruned = s.filter.Pruned
	}
	return st
}

// Sampler returns an online sampler for q. Samplers of the same Index may
// run concurrently: shared node buffers are published copy-on-write, and
// all query-progress state lives in the Sampler itself. rng drives only
// this query's draws, so a fixed rng seed reproduces the same stream
// regardless of what other queries run beside it.
func (x *Index) Sampler(q geo.Rect, mode sampling.Mode, rng *stats.RNG) *Sampler {
	return x.SamplerWhere(q, mode, rng, nil)
}

// SamplerWhere returns an online sampler for q restricted to records
// satisfying f's predicate: subtrees whose digests rule the predicate out
// never enter the frontier, predicate-failing draws are consumed-and-
// rejected (keeping the accepted stream exactly uniform over qualifying
// records), and materialized parts hold only qualifying entries. A nil
// filter is exactly Sampler.
func (x *Index) SamplerWhere(q geo.Rect, mode sampling.Mode, rng *stats.RNG, f *rtree.TreeFilter) *Sampler {
	s := &Sampler{
		index:       x,
		query:       q,
		mode:        mode,
		rng:         rng,
		acct:        x.tree.Device(),
		filter:      f,
		MaxAttempts: 1 << 22,
	}
	s.chg = s.acct
	return s
}

// AttributeIO redirects this query's page charges to a. Pass an
// iosim.Counter forwarding to the shared device to attribute I/O to this
// query without racing other queries' attribution.
func (s *Sampler) AttributeIO(a iosim.Accountant) {
	if a != nil {
		s.acct = a
		s.chg = a
		s.batch = nil
	}
}

// charge accounts one logical access of n's page to this query.
func (s *Sampler) charge(n *rtree.Node) { s.chg.Access(n.PageID()) }

var _ sampling.Sampler = (*Sampler)(nil)
var _ sampling.BatchSampler = (*Sampler)(nil)

// Name implements sampling.Sampler.
func (s *Sampler) Name() string { return "RS-tree" }

// Next implements sampling.Sampler.
func (s *Sampler) Next() (data.Entry, bool) {
	if !s.init {
		s.initialize()
	}
	if s.mode == sampling.WithReplacement {
		return s.nextWithReplacement()
	}
	return s.nextWithoutReplacement()
}

// NextBatch implements sampling.BatchSampler: it draws up to min(k,
// len(dst)) samples using exactly the per-draw logic (and RNG consumption)
// of Next, so the stream is byte-identical, while amortizing the per-draw
// overheads across the batch: page charges are coalesced into run-length
// batches (one device lock per flush instead of per draw), node buffers
// regenerated during the batch are visited at most once, and steady-state
// draws allocate nothing (scratch comes from pools).
func (s *Sampler) NextBatch(dst []data.Entry, k int) int {
	if k > len(dst) {
		k = len(dst)
	}
	if k <= 0 {
		return 0
	}
	s.beginBatch()
	defer s.endBatch()
	if !s.init {
		s.initialize()
	}
	got := 0
	if s.mode == sampling.WithReplacement {
		for got < k {
			e, ok := s.nextWithReplacement()
			if !ok {
				break
			}
			dst[got] = e
			got++
		}
		return got
	}
	for got < k {
		e, ok := s.nextWithoutReplacement()
		if !ok {
			break
		}
		dst[got] = e
		got++
	}
	return got
}

// beginBatch swaps the charge target to the query's run-length batcher.
func (s *Sampler) beginBatch() {
	if s.batch == nil || s.batch.Target() != s.acct {
		s.batch = iosim.NewBatcher(s.acct)
	}
	s.chg = s.batch
}

// endBatch flushes pending charges and restores per-draw charging.
func (s *Sampler) endBatch() {
	s.batch.Flush()
	s.chg = s.acct
}

// initialize builds the query frontier: the maximal subtrees fully inside
// the query, plus partially-intersecting subtrees that are either leaves
// or small enough (count <= LazyCutoff) to keep whole — the lazy
// exploration rule that avoids descending into boundary subtrees that may
// contribute few samples. A part's subtree is only ever read in full if
// sampling pressure exhausts its stored buffer.
func (s *Sampler) initialize() {
	s.init = true
	if s.mode == sampling.WithoutReplacement {
		s.fen = newFenwick(64)
		s.seen = sampling.NewIDSet(s.index.Len())
	}
	s.frontier(s.index.tree.Root())
	if s.mode == sampling.WithReplacement && len(s.wrNodes) > 0 {
		weights := make([]float64, len(s.wrWeights))
		for i, w := range s.wrWeights {
			weights[i] = float64(w)
		}
		alias, err := stats.NewAlias(weights)
		if err == nil {
			s.wrAlias = alias
		}
	}
}

func (s *Sampler) frontier(n *rtree.Node) {
	s.charge(n)
	if n.Count() == 0 || !n.MBR().Intersects(s.query) {
		return
	}
	v := s.filter.Verdict(n)
	if v == pred.None {
		return
	}
	contained := s.query.ContainsRect(n.MBR())
	if contained || n.IsLeaf() || n.Count() <= s.index.cfg.LazyCutoff {
		s.addPart(n, contained, v == pred.All)
		return
	}
	for _, c := range n.Children() {
		s.frontier(c)
	}
}

// addPart registers a subtree as an active part. Its weight is the full
// subtree cardinality: boundary parts include out-of-query (or predicate-
// failing) mass, which is burned off through consumed-and-rejected draws
// (or dropped wholesale at materialization).
func (s *Sampler) addPart(n *rtree.Node, contained, predAll bool) {
	if s.mode == sampling.WithReplacement {
		s.wrNodes = append(s.wrNodes, n)
		s.wrContained = append(s.wrContained, contained)
		s.wrPredAll = append(s.wrPredAll, predAll)
		s.wrWeights = append(s.wrWeights, n.Count())
		return
	}
	p := &part{node: n, buf: s.index.bufferFor(n, s.chg), contained: contained, predAll: predAll}
	s.fen.Append(n.Count())
	s.parts = append(s.parts, p)
}

// nextWithoutReplacement draws the next element of a uniform random
// permutation of P ∩ Q. Each iteration picks a part with probability
// proportional to its remaining unconsumed count, consumes the next
// element of its buffer, and accepts it if it lies inside the query.
// Rejected draws still consume weight, which keeps the cross-part draw
// distribution exact.
func (s *Sampler) nextWithoutReplacement() (data.Entry, bool) {
	for s.fen.Total() > 0 {
		r := s.rng.Intn(s.fen.Total())
		i := s.fen.Find(r)
		p := s.parts[i]
		s.charge(p.node)
		e, ok := s.nextFromBuffer(p)
		if !ok {
			if p.materialized || (p.node.IsLeaf() && len(p.buf) == p.node.Count()) {
				// The exact remaining set is exhausted.
				s.retirePart(p, i)
				continue
			}
			s.materialize(p, i)
			continue
		}
		s.seen.Add(e.ID)
		s.fen.Add(i, -1)
		if p.materialized ||
			((p.contained || s.query.Contains(e.Pos)) &&
				(p.predAll || s.filter.Match(e.ID))) {
			s.draws++
			return e, true
		}
		s.rejects++
	}
	return data.Entry{}, false
}

// retirePart zeroes an exhausted part's weight and recycles its scratch.
func (s *Sampler) retirePart(p *part, slot int) {
	s.fen.Set(slot, 0)
	if p.order != nil {
		putInts(p.order)
		p.order = nil
	}
	p.buf = nil
}

// nextFromBuffer returns the next not-yet-consumed entry of p's buffer in
// query-local random order, or ok=false when the buffer is exhausted.
func (s *Sampler) nextFromBuffer(p *part) (data.Entry, bool) {
	if p.order == nil {
		p.order = getInts(len(p.buf))
		for i := range p.order {
			p.order[i] = i
		}
	}
	for p.cursor < len(p.buf) {
		j := p.cursor + s.rng.Intn(len(p.buf)-p.cursor)
		p.order[p.cursor], p.order[j] = p.order[j], p.order[p.cursor]
		e := p.buf[p.order[p.cursor]]
		p.cursor++
		if s.seen.Contains(e.ID) {
			// Defensive: stored buffers and materialized lists are
			// disjoint from consumed entries by construction.
			continue
		}
		return e, true
	}
	return data.Entry{}, false
}

// materialize bulk-loads an exhausted part: one sequential range report of
// its subtree (each page read once), filtered to unconsumed matching
// entries. Subsequent draws from the part are free of page access beyond
// the part's own page. This keeps the total I/O of a long-running query
// bounded by r(N) plus the pages of the subtrees the sample stream
// actually drained — never more than a full range report.
func (s *Sampler) materialize(p *part, slot int) {
	s.explosions++
	remaining := make([]data.Entry, 0, p.node.Count())
	s.collectMatching(p.node, p.contained, p.predAll, &remaining)
	p.buf = remaining
	if p.order != nil {
		putInts(p.order)
		p.order = nil
	}
	p.cursor = 0
	p.materialized = true
	s.fen.Set(slot, len(remaining))
}

// collectMatching appends the subtree's unconsumed matching entries in
// depth-first order, using a pooled explicit stack (materialization scans
// whole subtrees; recursion and per-call slices would be the dominant
// allocations of a large query). contained skips the per-entry containment
// test for subtrees known to lie inside the query; predAll likewise skips
// the per-entry predicate test, and predicate-pruned child subtrees are
// dropped from the scan entirely.
func (s *Sampler) collectMatching(root *rtree.Node, contained, predAll bool, out *[]data.Entry) {
	stack := getNodeStack()
	stack = append(stack, root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.charge(n)
		if n.IsLeaf() {
			for _, e := range n.Entries() {
				if !contained && !s.query.Contains(e.Pos) {
					continue
				}
				if !predAll && !s.filter.Match(e.ID) {
					continue
				}
				if s.seen.Contains(e.ID) {
					continue
				}
				*out = append(*out, e)
			}
			continue
		}
		kids := n.Children()
		// Reverse push keeps the pop order equal to recursive DFS order.
		for i := len(kids) - 1; i >= 0; i-- {
			if !contained && !kids[i].MBR().Intersects(s.query) {
				continue
			}
			if !predAll && s.filter.Verdict(kids[i]) == pred.None {
				continue
			}
			stack = append(stack, kids[i])
		}
	}
	putNodeStack(stack)
}

// nextWithReplacement draws an independent uniform sample of P ∩ Q by
// picking a frontier subtree with probability proportional to its size and
// descending uniformly by subtree counts; draws landing outside the query
// (boundary subtrees only) are rejected and retried.
func (s *Sampler) nextWithReplacement() (data.Entry, bool) {
	if s.wrAlias == nil {
		return data.Entry{}, false
	}
	for tries := 0; tries < s.MaxAttempts; tries++ {
		i := s.wrAlias.Draw(s.rng)
		n := s.wrNodes[i]
		pos := s.rng.Intn(n.Count())
		e := s.entryAt(n, pos)
		if (s.wrContained[i] || s.query.Contains(e.Pos)) &&
			(s.wrPredAll[i] || s.filter.Match(e.ID)) {
			s.draws++
			return e, true
		}
		s.rejects++
	}
	return data.Entry{}, false
}

// entryAt returns the entry at the given position of n's canonical
// enumeration (children in order, then leaf entries).
func (s *Sampler) entryAt(n *rtree.Node, pos int) data.Entry {
	s.charge(n)
	for !n.IsLeaf() {
		for _, c := range n.Children() {
			if pos < c.Count() {
				n = c
				break
			}
			pos -= c.Count()
		}
		s.charge(n)
	}
	return n.Entries()[pos]
}
