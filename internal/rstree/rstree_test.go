package rstree

import (
	"math"
	"testing"

	"storm/internal/data"
	"storm/internal/geo"
	"storm/internal/iosim"
	"storm/internal/sampling"
	"storm/internal/stats"
)

func genEntries(n int, seed int64) []data.Entry {
	rng := stats.NewRNG(seed)
	out := make([]data.Entry, n)
	for i := range out {
		out[i] = data.Entry{
			ID:  data.ID(i),
			Pos: geo.Vec{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)},
		}
	}
	return out
}

func matching(entries []data.Entry, q geo.Rect) map[data.ID]bool {
	m := make(map[data.ID]bool)
	for _, e := range entries {
		if q.Contains(e.Pos) {
			m[e.ID] = true
		}
	}
	return m
}

var testQuery = geo.NewRect(geo.Vec{20, 20, 0}, geo.Vec{60, 60, 100})

func TestBuild(t *testing.T) {
	entries := genEntries(5000, 1)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Tree().Validate(); err != nil {
		t.Fatalf("underlying tree invalid: %v", err)
	}
	if got := idx.Count(testQuery); got != len(matching(entries, testQuery)) {
		t.Errorf("Count = %d", got)
	}
}

func TestWithoutReplacementComplete(t *testing.T) {
	entries := genEntries(8000, 2)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(9))
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if !want[e.ID] {
			t.Fatalf("sample %d outside query", e.ID)
		}
		if got[e.ID] {
			t.Fatalf("duplicate sample %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d samples, want exactly %d", len(got), len(want))
	}
}

// TestWithoutReplacementCompleteSmallBuffers forces heavy lazy explosion by
// shrinking buffers: every internal part's buffer exhausts quickly, so the
// consumed-attribution logic is exercised hard.
func TestWithoutReplacementCompleteSmallBuffers(t *testing.T) {
	entries := genEntries(4000, 3)
	idx, err := Build(entries, Config{Fanout: 16, BufferSize: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(11))
	got := make(map[data.ID]bool)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if !want[e.ID] || got[e.ID] {
			t.Fatalf("bad or duplicate sample %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d samples, want %d", len(got), len(want))
	}
}

// TestUniformFirstSample checks marginal uniformity: the RS-tree buffers of
// internal canonical nodes hold a fixed random subset of their subtree, so
// the uniformity guarantee is over buffer-generation randomness as well as
// query randomness — each trial rebuilds the index with a fresh seed.
func TestUniformFirstSample(t *testing.T) {
	entries := genEntries(300, 4)
	want := matching(entries, testQuery)
	q := len(want)
	if q < 10 {
		t.Fatalf("fixture degenerate: q=%d", q)
	}
	counts := make(map[data.ID]int)
	const trials = 15000
	for i := 0; i < trials; i++ {
		idx, err := Build(entries, Config{Fanout: 8, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(int64(1000+i)))
		e, ok := s.Next()
		if !ok {
			t.Fatal("no first sample")
		}
		counts[e.ID]++
	}
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("first-sample chi-square %v > crit %v: not uniform", stat, crit)
	}
}

// TestUniformDeepSample verifies uniformity beyond the first draw: the
// 20th sample must also be uniform over the remaining records, which
// exercises the dynamic weight bookkeeping. We test the weaker but easily
// checkable property that the 20-sample prefix hits every record equally.
func TestUniformPrefix(t *testing.T) {
	entries := genEntries(200, 5)
	want := matching(entries, testQuery)
	q := len(want)
	if q < 25 {
		t.Fatalf("fixture degenerate: q=%d", q)
	}
	const k = 20
	const trials = 10000
	counts := make(map[data.ID]int)
	for i := 0; i < trials; i++ {
		idx, err := Build(entries, Config{Fanout: 8, BufferSize: 8, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(int64(5000+i)))
		for j := 0; j < k; j++ {
			e, ok := s.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			counts[e.ID]++
		}
	}
	// Each record should appear in the prefix with probability k/q.
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)*k/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("prefix chi-square %v > crit %v: prefix not uniform", stat, crit)
	}
}

func TestWithReplacement(t *testing.T) {
	entries := genEntries(2000, 6)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	s := idx.Sampler(testQuery, sampling.WithReplacement, stats.NewRNG(21))
	seen := make(map[data.ID]int)
	n := 3 * len(want)
	for i := 0; i < n; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("with-replacement stream ended")
		}
		if !want[e.ID] {
			t.Fatalf("sample %d outside query", e.ID)
		}
		seen[e.ID]++
	}
	// With 3q draws, duplicates are essentially certain.
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("with-replacement should produce duplicates")
	}
}

func TestWithReplacementUniform(t *testing.T) {
	entries := genEntries(300, 7)
	idx, err := Build(entries, Config{Fanout: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	q := len(want)
	counts := make(map[data.ID]int)
	const trials = 30000
	s := idx.Sampler(testQuery, sampling.WithReplacement, stats.NewRNG(29))
	for i := 0; i < trials; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		counts[e.ID]++
	}
	obs := make([]int, 0, q)
	exp := make([]float64, 0, q)
	for id := range want {
		obs = append(obs, counts[id])
		exp = append(exp, float64(trials)/float64(q))
	}
	stat := stats.ChiSquareStat(obs, exp)
	crit := stats.ChiSquareQuantile(0.999, q-1)
	if stat > crit {
		t.Errorf("with-replacement chi-square %v > crit %v", stat, crit)
	}
}

func TestEmptyRange(t *testing.T) {
	entries := genEntries(1000, 8)
	idx, err := Build(entries, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := geo.NewRect(geo.Vec{-10, -10, -10}, geo.Vec{-5, -5, -5})
	for _, mode := range []sampling.Mode{sampling.WithoutReplacement, sampling.WithReplacement} {
		s := idx.Sampler(empty, mode, stats.NewRNG(1))
		s.MaxAttempts = 1000
		if _, ok := s.Next(); ok {
			t.Fatalf("mode %v: empty range should yield nothing", mode)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, err := Build(nil, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(1))
	if _, ok := s.Next(); ok {
		t.Fatal("empty index should yield nothing")
	}
}

func TestInsertThenSample(t *testing.T) {
	entries := genEntries(3000, 9)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	// Warm the buffers with a partial query first, so stale-buffer
	// regeneration is exercised by the post-insert query.
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(33))
	for i := 0; i < 50; i++ {
		s.Next()
	}

	for j := 0; j < 200; j++ {
		e := data.Entry{ID: data.ID(90000 + j), Pos: geo.Vec{40, 40, 50}}
		idx.Insert(e)
		want[e.ID] = true
	}
	if err := idx.Tree().Validate(); err != nil {
		t.Fatalf("tree invalid after inserts: %v", err)
	}

	s2 := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(37))
	got := make(map[data.ID]bool)
	for {
		e, ok := s2.Next()
		if !ok {
			break
		}
		if !want[e.ID] || got[e.ID] {
			t.Fatalf("bad or duplicate sample %d after insert", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d (inserted records must be sampleable)", len(got), len(want))
	}
}

func TestDeleteThenSample(t *testing.T) {
	entries := genEntries(3000, 10)
	idx, err := Build(entries, Config{Fanout: 16, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	// Warm buffers.
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(43))
	for i := 0; i < 50; i++ {
		s.Next()
	}
	// Delete a third of the matching records.
	i := 0
	for id := range want {
		if i%3 == 0 {
			if !idx.Delete(entries[id]) {
				t.Fatal("delete failed")
			}
			delete(want, id)
		}
		i++
	}
	s2 := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(47))
	got := make(map[data.ID]bool)
	for {
		e, ok := s2.Next()
		if !ok {
			break
		}
		if !want[e.ID] {
			t.Fatalf("deleted record %d still sampled", e.ID)
		}
		if got[e.ID] {
			t.Fatalf("duplicate %d", e.ID)
		}
		got[e.ID] = true
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
}

func TestSampleMeanUnbiased(t *testing.T) {
	entries := genEntries(10000, 11)
	idx, err := Build(entries, Config{Fanout: 32, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	want := matching(entries, testQuery)
	var trueMean float64
	for _, e := range entries {
		if want[e.ID] {
			trueMean += e.Pos.X()
		}
	}
	trueMean /= float64(len(want))
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(59))
	var sum float64
	k := 400
	for i := 0; i < k; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		sum += e.Pos.X()
	}
	got := sum / float64(k)
	if math.Abs(got-trueMean) > 2 {
		t.Errorf("sample mean %v too far from %v", got, trueMean)
	}
}

func TestBufferReuseAcrossDraws(t *testing.T) {
	// Drawing many samples from a small canonical set must hit the buffer
	// pool: the distinct pages touched should be far fewer than the draws.
	entries := genEntries(20000, 12)
	dev := iosim.NewDevice(4096, iosim.DefaultCostModel())
	idx, err := Build(entries, Config{Fanout: 32, Device: dev, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	s := idx.Sampler(testQuery, sampling.WithoutReplacement, stats.NewRNG(67))
	k := 500
	for i := 0; i < k; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("exhausted early")
		}
	}
	st := dev.Stats()
	if st.Reads >= uint64(k) {
		t.Errorf("RS-tree did %d physical reads for %d samples; expected locality", st.Reads, k)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build(nil, Config{BufferSize: 1}); err == nil {
		t.Error("BufferSize 1 should be rejected")
	}
	if _, err := Build(nil, Config{Fanout: 2}); err == nil {
		t.Error("fanout 2 should propagate rtree error")
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(2)
	idx := make([]int, 0)
	for _, w := range []int{5, 0, 3, 7, 2} {
		idx = append(idx, f.Append(w))
	}
	if f.Total() != 17 {
		t.Fatalf("Total = %d", f.Total())
	}
	// Weighted find boundaries.
	cases := []struct {
		target int
		want   int
	}{
		{0, 0}, {4, 0}, {5, 2}, {7, 2}, {8, 3}, {14, 3}, {15, 4}, {16, 4},
	}
	for _, c := range cases {
		if got := f.Find(c.target); got != c.want {
			t.Errorf("Find(%d) = %d, want %d", c.target, got, c.want)
		}
	}
	f.Add(0, -5) // zero out slot 0
	if got := f.Find(0); got != 2 {
		t.Errorf("after zeroing slot 0, Find(0) = %d, want 2", got)
	}
	f.Set(3, 0)
	if f.Total() != 5 {
		t.Fatalf("Total after updates = %d", f.Total())
	}
	if got := f.Find(3); got != 4 {
		t.Errorf("Find(3) = %d, want 4", got)
	}
}

func TestFenwickWeightedDrawDistribution(t *testing.T) {
	f := newFenwick(4)
	weights := []int{1, 2, 3, 4}
	for _, w := range weights {
		f.Append(w)
	}
	rng := stats.NewRNG(71)
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[f.Find(rng.Intn(f.Total()))]++
	}
	for i, w := range weights {
		want := float64(trials) * float64(w) / 10
		if math.Abs(float64(counts[i])-want)/want > 0.05 {
			t.Errorf("slot %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}
