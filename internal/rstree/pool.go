package rstree

import (
	"sync"

	"storm/internal/rtree"
)

// Scratch pools for the sampler hot paths. Per-part permutation slices and
// the materialization traversal stack are the only transient allocations a
// long-running query makes repeatedly; recycling them keeps the steady-state
// batch loop allocation-free and takes pressure off the GC when many
// queries run concurrently.

var intPool sync.Pool

// getInts returns an int slice of length n (contents unspecified).
func getInts(n int) []int {
	if v := intPool.Get(); v != nil {
		s := *(v.(*[]int))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int, n)
}

// putInts recycles a slice obtained from getInts.
func putInts(s []int) {
	if cap(s) == 0 {
		return
	}
	intPool.Put(&s)
}

var nodePool sync.Pool

// getNodeStack returns an empty node stack with spare capacity.
func getNodeStack() []*rtree.Node {
	if v := nodePool.Get(); v != nil {
		return (*(v.(*[]*rtree.Node)))[:0]
	}
	return make([]*rtree.Node, 0, 64)
}

// putNodeStack recycles a traversal stack, clearing its node pointers so a
// pooled stack never pins a discarded tree in memory.
func putNodeStack(s []*rtree.Node) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil
	}
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	nodePool.Put(&s)
}
