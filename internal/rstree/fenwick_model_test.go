package rstree

import (
	"testing"

	"storm/internal/stats"
)

// naiveWeights is the reference model for the Fenwick tree.
type naiveWeights struct{ w []int }

func (n *naiveWeights) append(w int) { n.w = append(n.w, w) }
func (n *naiveWeights) add(i, d int) { n.w[i] += d }
func (n *naiveWeights) total() int {
	s := 0
	for _, v := range n.w {
		s += v
	}
	return s
}
func (n *naiveWeights) find(target int) int {
	for i, v := range n.w {
		if target < v {
			return i
		}
		target -= v
	}
	return len(n.w) - 1
}

// TestFenwickModel drives random operation sequences against the Fenwick
// tree and the naive model and checks every observable agrees.
func TestFenwickModel(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 50; trial++ {
		f := newFenwick(2)
		m := &naiveWeights{}
		for op := 0; op < 400; op++ {
			switch {
			case f.Len() == 0 || rng.Bernoulli(0.2):
				w := rng.Intn(20)
				f.Append(w)
				m.append(w)
			case rng.Bernoulli(0.5):
				i := rng.Intn(f.Len())
				// Never drive a weight negative.
				d := rng.Intn(10) - min(5, m.w[i])
				f.Add(i, d)
				m.add(i, d)
			default:
				i := rng.Intn(f.Len())
				w := rng.Intn(25)
				f.Set(i, w)
				m.w[i] = w
			}
			if f.Total() != m.total() {
				t.Fatalf("trial %d op %d: total %d != model %d", trial, op, f.Total(), m.total())
			}
			for i := 0; i < f.Len(); i++ {
				if f.Get(i) != m.w[i] {
					t.Fatalf("trial %d op %d: weight[%d] %d != model %d", trial, op, i, f.Get(i), m.w[i])
				}
			}
			if tot := f.Total(); tot > 0 {
				target := rng.Intn(tot)
				if got, want := f.Find(target), m.find(target); got != want {
					t.Fatalf("trial %d op %d: Find(%d) = %d, model %d (weights %v)",
						trial, op, target, got, want, m.w)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
