// Package viz renders STORM's online analytics as terminal graphics — the
// reproduction's stand-in for the paper's web map UI (Figures 4–6):
// density heat maps, trajectory plots, term tables, and the benchmark
// harness's aligned tables and log-scale series.
package viz

import (
	"fmt"
	"math"
	"strings"

	"storm/internal/analytics"
)

// shades order cells from empty to dense.
var shades = []rune(" .:-=+*#%@")

// Heatmap renders a density map as ASCII art, one character per cell,
// darkest character = densest cell. maxDensity scales the palette; pass 0
// to scale by the map's own maximum (useful to compare two maps, pass the
// shared max).
func Heatmap(m *analytics.DensityMap, maxDensity float64) string {
	if maxDensity <= 0 {
		maxDensity = m.MaxDensity()
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", m.Nx) + "+\n")
	// Row 0 is the south edge; render north-up.
	for j := m.Ny - 1; j >= 0; j-- {
		b.WriteByte('|')
		for i := 0; i < m.Nx; i++ {
			v := m.At(i, j)
			idx := 0
			if maxDensity > 0 {
				idx = int(v / maxDensity * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				if idx < 0 {
					idx = 0
				}
			}
			b.WriteRune(shades[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", m.Nx) + "+")
	return b.String()
}

// TermTable formats a term snapshot the way the STORM demo highlights
// sampled vocabulary, including the sentiment summary.
func TermTable(s *analytics.TermSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "top terms over %d sampled documents (%d distinct terms):\n", s.Samples, s.Distinct)
	for i, t := range s.Top {
		bar := strings.Repeat("#", int(t.Freq*200))
		fmt.Fprintf(&b, "%3d. %-14s %6.2f%%  %s\n", i+1, t.Text, t.Freq*100, bar)
	}
	mood := "neutral"
	switch {
	case s.Sentiment < -0.2:
		mood = "unhappy"
	case s.Sentiment > 0.2:
		mood = "happy"
	}
	fmt.Fprintf(&b, "sentiment: %+.3f (%s)\n", s.Sentiment, mood)
	return b.String()
}

// TrajectoryPlot draws a path on a w-by-h character canvas; segment points
// are marked with '*' and endpoints with 'S' and 'E'.
func TrajectoryPlot(p *analytics.Path, w, h int) string {
	pts := p.Points()
	if len(pts) == 0 {
		return "(empty trajectory)"
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, pt := range pts {
		minX = math.Min(minX, pt.X())
		maxX = math.Max(maxX, pt.X())
		minY = math.Min(minY, pt.Y())
		maxY = math.Max(maxY, pt.Y())
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(pt [3]float64, c byte) {
		i := int((pt[0] - minX) / (maxX - minX) * float64(w-1))
		j := int((pt[1] - minY) / (maxY - minY) * float64(h-1))
		canvas[h-1-j][i] = c
	}
	for _, pt := range pts {
		plot(pt, '*')
	}
	plot(pts[0], 'S')
	plot(pts[len(pts)-1], 'E')
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range canvas {
		b.WriteString("|" + string(row) + "|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+")
	return b.String()
}

// Table renders rows with aligned columns; the first row is the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := range r {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Series renders (x, y) points as "x<TAB>y" lines with a title — the
// machine-readable form the benchmark harness emits for each figure curve.
func Series(title string, xs, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	for i := range xs {
		fmt.Fprintf(&b, "%g\t%g\n", xs[i], ys[i])
	}
	return b.String()
}

// LogBars renders a log-scale horizontal bar chart: one row per label with
// its value, bars proportional to log10 of the value. Used by the Figure
// 3(a) harness where curves span four orders of magnitude.
func LogBars(title string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxLog := 0.0
	for _, v := range values {
		if v > 0 {
			maxLog = math.Max(maxLog, math.Log10(v))
		}
	}
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, l := range labels {
		v := values[i]
		bars := 0
		if v > 0 && maxLog > 0 {
			bars = int(math.Log10(v) / maxLog * 40)
			if bars < 1 {
				bars = 1
			}
		}
		fmt.Fprintf(&b, "  %-*s %12.4g %s %s\n", width, l, v, unit, strings.Repeat("█", bars))
	}
	return b.String()
}
