package viz

import (
	"strings"
	"testing"

	"storm/internal/analytics"
	"storm/internal/geo"
)

func TestHeatmap(t *testing.T) {
	m := &analytics.DensityMap{
		Nx: 3, Ny: 2,
		Density: []float64{0, 0.5, 1.0, 0, 0, 0},
	}
	out := Heatmap(m, 0)
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// North-up: row j=1 (all zero) renders first.
	if lines[1] != "|   |" {
		t.Errorf("top row = %q", lines[1])
	}
	// Densest cell renders the darkest shade.
	if !strings.Contains(lines[2], "@") {
		t.Errorf("bottom row = %q lacks max shade", lines[2])
	}
	// Explicit scaling halves the apparent density.
	out2 := Heatmap(m, 2.0)
	if strings.Contains(out2, "@") {
		t.Error("rescaled map should not reach max shade")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	m := &analytics.DensityMap{Nx: 2, Ny: 2, Density: make([]float64, 4)}
	out := Heatmap(m, 0)
	if strings.ContainsAny(out, "@#%") {
		t.Errorf("zero map rendered shade:\n%s", out)
	}
}

func TestTermTable(t *testing.T) {
	s := &analytics.TermSnapshot{
		Top:       []analytics.Term{{Text: "snow", Freq: 0.3, Count: 30}},
		Sentiment: -0.5,
		Samples:   100,
		Distinct:  42,
	}
	out := TermTable(s)
	for _, want := range []string{"snow", "30.00%", "unhappy", "100 sampled", "42 distinct"} {
		if !strings.Contains(out, want) {
			t.Errorf("term table missing %q:\n%s", want, out)
		}
	}
	s.Sentiment = 0.5
	if !strings.Contains(TermTable(s), "happy") {
		t.Error("positive sentiment should render happy")
	}
	s.Sentiment = 0
	if !strings.Contains(TermTable(s), "neutral") {
		t.Error("zero sentiment should render neutral")
	}
}

func TestTrajectoryPlot(t *testing.T) {
	p := &analytics.Path{Segments: [][]geo.Vec{{
		{0, 0, 0}, {5, 5, 1}, {10, 10, 2},
	}}}
	out := TrajectoryPlot(p, 20, 10)
	if !strings.Contains(out, "S") || !strings.Contains(out, "E") {
		t.Errorf("plot missing endpoints:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 12 {
		t.Errorf("plot rows = %d", len(lines))
	}
	if TrajectoryPlot(&analytics.Path{}, 10, 5) != "(empty trajectory)" {
		t.Error("empty trajectory should say so")
	}
	// Single point (degenerate extent) must not panic.
	one := &analytics.Path{Segments: [][]geo.Vec{{{3, 3, 0}}}}
	if out := TrajectoryPlot(one, 10, 5); !strings.Contains(out, "E") {
		t.Errorf("single-point plot:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"method", "time"},
		{"rs-tree", "1.5"},
		{"random-path", "200"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "method") || !strings.Contains(lines[0], "time") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if Table(nil) != "" {
		t.Error("empty table should be empty string")
	}
}

func TestSeries(t *testing.T) {
	out := Series("fig3a rs-tree", []float64{0.01, 0.02}, []float64{5, 9})
	if !strings.Contains(out, "# fig3a rs-tree") {
		t.Errorf("series header missing:\n%s", out)
	}
	if !strings.Contains(out, "0.01\t5") || !strings.Contains(out, "0.02\t9") {
		t.Errorf("series rows missing:\n%s", out)
	}
}

func TestLogBars(t *testing.T) {
	out := LogBars("query cost", []string{"rs-tree", "range-report"}, []float64{10, 100000}, "ms")
	if !strings.Contains(out, "rs-tree") || !strings.Contains(out, "range-report") {
		t.Errorf("labels missing:\n%s", out)
	}
	// Bigger value gets a longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Errorf("log bars not proportional:\n%s", out)
	}
	// Zero values render without panicking.
	LogBars("z", []string{"a"}, []float64{0}, "")
}
