package connector

import (
	"io"
	"strings"
	"testing"
)

func stringOpener(s string) func() (io.Reader, error) {
	return func() (io.Reader, error) { return strings.NewReader(s), nil }
}

const sampleCSV = `lon,lat,time,temp,station
-111.9,40.76,2014-01-05 10:00:00,-3.5,KSLC
-111.8,40.60,2014-01-05 11:00:00,-2.1,KPVU
-74.0,40.71,2014-01-05 10:30:00,1.2,KNYC
`

func TestCSVSchemaDiscovery(t *testing.T) {
	src := NewCSVSource("weather", ',', stringOpener(sampleCSV))
	schema, err := DiscoverSchema(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if schema.X != "lon" || schema.Y != "lat" || schema.T != "time" {
		t.Errorf("roles: x=%q y=%q t=%q", schema.X, schema.Y, schema.T)
	}
	if f := schema.Field("temp"); f == nil || f.Type != NumberField {
		t.Errorf("temp field = %+v", f)
	}
	if f := schema.Field("station"); f == nil || f.Type != StringField {
		t.Errorf("station field = %+v", f)
	}
	if f := schema.Field("time"); f == nil || f.Type != TimeField {
		t.Errorf("time field = %+v", f)
	}
}

func TestCSVImport(t *testing.T) {
	src := NewCSVSource("weather", ',', stringOpener(sampleCSV))
	res, err := Import(src, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 || res.Dataset.Len() != 3 {
		t.Fatalf("rows = %d", res.Rows)
	}
	p := res.Dataset.Pos(0)
	if p.X() != -111.9 || p.Y() != 40.76 {
		t.Errorf("pos = %v", p)
	}
	if p.T() <= 0 {
		t.Errorf("time not parsed: %v", p.T())
	}
	v, err := res.Dataset.Numeric("temp", 0)
	if err != nil || v != -3.5 {
		t.Errorf("temp = %v, %v", v, err)
	}
	st, err := res.Dataset.String("station", 2)
	if err != nil || st != "KNYC" {
		t.Errorf("station = %q, %v", st, err)
	}
}

func TestTSV(t *testing.T) {
	tsv := "x\ty\tv\n1.5\t2.5\thello\n"
	src := NewCSVSource("tsv", '\t', stringOpener(tsv))
	res, err := Import(src, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.Dataset.Pos(0).X() != 1.5 {
		t.Errorf("x = %v", res.Dataset.Pos(0).X())
	}
}

func TestImportSkipInvalid(t *testing.T) {
	// One bad row among many good ones: the column is still discovered as
	// numeric (>90% parse), and the bad row is the import's problem.
	csv := "lon,lat\n1,2\n3,4\n5,6\n7,8\n9,10\n11,12\n13,14\n15,16\n17,18\nbad,20\n21,22\n23,24\n"
	src := NewCSVSource("c", ',', stringOpener(csv))
	if _, err := Import(src, Mapping{}); err == nil {
		t.Error("invalid row should fail without SkipInvalid")
	}
	src2 := NewCSVSource("c", ',', stringOpener(csv))
	res, err := Import(src2, Mapping{SkipInvalid: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 11 || res.Skipped != 1 {
		t.Errorf("rows=%d skipped=%d", res.Rows, res.Skipped)
	}
}

func TestImportNoSpatialColumns(t *testing.T) {
	src := NewCSVSource("c", ',', stringOpener("a,b\n1,2\n"))
	if _, err := Import(src, Mapping{}); err == nil {
		t.Error("missing spatial columns should error")
	}
	// Explicit mapping rescues it.
	src2 := NewCSVSource("c", ',', stringOpener("a,b\n1,2\n"))
	res, err := Import(src2, Mapping{X: "a", Y: "b"})
	if err != nil || res.Rows != 1 {
		t.Errorf("explicit mapping: %v, %v", res, err)
	}
}

func TestEmptySource(t *testing.T) {
	src := NewCSVSource("empty", ',', stringOpener(""))
	if _, err := DiscoverSchema(src, 0); err == nil {
		t.Error("empty source should error")
	}
}

const sampleJSONL = `{"lng": -111.9, "lat": 40.7, "user": {"name": "alice"}, "retweets": 3}
{"lng": -74.0, "lat": 40.7, "user": {"name": "bob"}, "retweets": 0}
`

func TestJSONLFlattening(t *testing.T) {
	src := NewJSONLSource("tweets", stringOpener(sampleJSONL))
	res, err := Import(src, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
	name, err := res.Dataset.String("user.name", 0)
	if err != nil || name != "alice" {
		t.Errorf("nested field = %q, %v", name, err)
	}
	rt, err := res.Dataset.Numeric("retweets", 0)
	if err != nil || rt != 3 {
		t.Errorf("retweets = %v, %v", rt, err)
	}
}

func TestJSONLMalformed(t *testing.T) {
	src := NewJSONLSource("bad", stringOpener(`{"lng": 1, "lat": 2}
{not json`))
	err := src.Rows(func(map[string]string) error { return nil })
	if err == nil {
		t.Error("malformed JSON should error")
	}
}

const sampleSQL = `
CREATE TABLE points (
  id INT,
  lon DOUBLE,
  lat DOUBLE,
  name VARCHAR(32),
  PRIMARY KEY (id)
);
INSERT INTO points (id, lon, lat, name) VALUES
  (1, -111.9, 40.7, 'slc'),
  (2, -74.0, 40.7, 'o''hara');
INSERT INTO points VALUES (3, -87.6, 41.9, NULL);
`

func TestSQLDump(t *testing.T) {
	src := NewSQLDumpSource("mysql", stringOpener(sampleSQL))
	res, err := Import(src, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 {
		t.Fatalf("rows = %d", res.Rows)
	}
	// Quote escaping.
	name, err := res.Dataset.String("name", 1)
	if err != nil || name != "o'hara" {
		t.Errorf("name = %q, %v", name, err)
	}
	// NULL becomes empty.
	name3, _ := res.Dataset.String("name", 2)
	if name3 != "" {
		t.Errorf("NULL name = %q", name3)
	}
	id, err := res.Dataset.Numeric("id", 0)
	if err != nil || id != 1 {
		t.Errorf("id = %v, %v", id, err)
	}
}

func TestSQLDumpErrors(t *testing.T) {
	src := NewSQLDumpSource("bad", stringOpener("INSERT INTO t VALUES (1);"))
	if err := src.Rows(func(map[string]string) error { return nil }); err == nil {
		t.Error("dump without CREATE TABLE should error")
	}
	src2 := NewSQLDumpSource("bad2", stringOpener("CREATE TABLE t (a INT);\nINSERT INTO t VALUES (1, 2);"))
	if err := src2.Rows(func(map[string]string) error { return nil }); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestKVSource(t *testing.T) {
	kv := "k1\t{\"lon\": 1.5, \"lat\": 2.5, \"v\": \"a\"}\nk2\t{\"lon\": 3, \"lat\": 4, \"v\": \"b\"}\n"
	src := NewKVSource("cassandra", stringOpener(kv))
	res, err := Import(src, Mapping{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
	key, err := res.Dataset.String("_key", 0)
	if err != nil || key != "k1" {
		t.Errorf("_key = %q, %v", key, err)
	}
}

func TestKVSourceErrors(t *testing.T) {
	src := NewKVSource("bad", stringOpener("no-tab-here\n"))
	if err := src.Rows(func(map[string]string) error { return nil }); err == nil {
		t.Error("line without tab should error")
	}
	src2 := NewKVSource("bad2", stringOpener("k\tnot-json\n"))
	if err := src2.Rows(func(map[string]string) error { return nil }); err == nil {
		t.Error("non-JSON value should error")
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"2014-02-10T12:00:00Z", true},
		{"2014-02-10 12:00:00", true},
		{"2014-02-10", true},
		{"1391990400", true},
		{"02/10/2014", true},
		{"not a time", false},
		{"", false},
	}
	for _, c := range cases {
		_, ok := parseTime(c.in)
		if ok != c.ok {
			t.Errorf("parseTime(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
	}
}

func TestSchemaGenericXYFallback(t *testing.T) {
	src := NewCSVSource("xy", ',', stringOpener("X,Y,v\n1,2,3\n4,5,6\n"))
	schema, err := DiscoverSchema(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if schema.X != "X" || schema.Y != "Y" {
		t.Errorf("fallback roles: x=%q y=%q", schema.X, schema.Y)
	}
}

func TestLatLonRangeSanityCheck(t *testing.T) {
	// A column named "lat" with out-of-range values must not be chosen.
	src := NewCSVSource("c", ',', stringOpener("lon,lat\n500,1000\n600,2000\n"))
	schema, err := DiscoverSchema(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if schema.X == "lon" || schema.Y == "lat" {
		t.Errorf("out-of-range geo columns accepted: x=%q y=%q", schema.X, schema.Y)
	}
}
